/// Debug-as-a-service end to end, in one process:
///
/// 1. Host a DebugService with the builtin DBLP dataset and serve it on
///    an AF_UNIX socket with DebugServer (what rain_debugd does).
/// 2. Connect two DebugClients and open one session each — both sessions
///    share the registered dataset through copy-on-write views.
/// 3. Step both sessions to completion over the wire and show that the
///    concurrent tenants converge to identical deletion counts.
#include <cstdio>
#include <unistd.h>

#include "serve/builtin_datasets.h"
#include "serve/client.h"
#include "serve/server.h"

using namespace rain;        // NOLINT
using namespace rain::serve; // NOLINT

int main() {
  // --- 1. Service + socket front-end. ---
  ServiceOptions service_options;
  service_options.admission_capacity = 16;
  DebugService service(service_options);
  std::printf("registering builtin dblp dataset (trains a clean model)...\n");
  if (!service.RegisterDataset(MakeDblpHostedDataset()).ok()) return 1;

  ServerOptions server_options;
  server_options.socket_path =
      "/tmp/rain_serve_example_" + std::to_string(::getpid()) + ".sock";
  DebugServer server(&service, server_options);
  if (!server.Start().ok()) return 1;
  std::printf("serving on %s\n", server.socket_path().c_str());

  // --- 2. Two tenants. ---
  auto a = DebugClient::Connect(server.socket_path());
  auto b = DebugClient::Connect(server.socket_path());
  if (!a.ok() || !b.ok()) return 1;

  const std::string spec = "parallelism=2 max_deletions=600 max_iterations=100";
  auto sid_a = a->Open("dblp", spec);
  auto sid_b = b->Open("dblp", spec);
  if (!sid_a.ok() || !sid_b.ok()) {
    std::printf("open failed: %s / %s\n", sid_a.status().ToString().c_str(),
                sid_b.status().ToString().c_str());
    return 1;
  }
  std::printf("opened sessions %llu and %llu over one shared dataset\n",
              static_cast<unsigned long long>(*sid_a),
              static_cast<unsigned long long>(*sid_b));

  // --- 3. Drive both over the wire. ---
  auto step_a = a->Step(*sid_a, 200);
  auto step_b = b->Step(*sid_b, 200);
  if (!step_a.ok() || !step_b.ok()) {
    std::printf("step failed: %s / %s\n", step_a.status().ToString().c_str(),
                step_b.status().ToString().c_str());
    return 1;
  }
  std::printf("session %llu: %s after %lld iterations, %lld deletions\n",
              static_cast<unsigned long long>(*sid_a), step_a->status.c_str(),
              static_cast<long long>(step_a->steps),
              static_cast<long long>(step_a->total_deletions));
  std::printf("session %llu: %s after %lld iterations, %lld deletions\n",
              static_cast<unsigned long long>(*sid_b), step_b->status.c_str(),
              static_cast<long long>(step_b->steps),
              static_cast<long long>(step_b->total_deletions));

  const bool match = step_a->total_deletions == step_b->total_deletions &&
                     step_a->resolved == step_b->resolved;
  std::printf("tenants %s\n",
              match ? "converged identically (deterministic multi-tenancy)"
                    : "DIVERGED — this would be a bug");

  a->Quit();
  b->Quit();
  server.Stop();
  service.Shutdown();
  return match ? 0 : 1;
}
