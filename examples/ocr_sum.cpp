/// Appendix B scenario: optical character recognition of a multi-digit
/// number. Each digit image sits at a position; the numeric value is
///
///   SELECT SUM(weight * predict(image)) FROM digits
///
/// where weight = 10^position. The relaxation of this query is
/// sum_i 10^i * sum_j j * p_ij(theta) — Rain supports model predictions
/// inside arithmetic aggregate arguments, so a complaint on the *numeric
/// value of the whole number* can drive training-data debugging.
#include <cstdio>

#include "common/rng.h"
#include "core/complaint.h"
#include "core/session.h"
#include "core/pipeline.h"
#include "core/ranker.h"
#include "data/corruption.h"
#include "data/mnist.h"
#include "ml/softmax_regression.h"
#include "sql/planner.h"

using namespace rain;  // NOLINT

int main() {
  MnistConfig cfg;
  cfg.train_size = 600;
  cfg.query_size = 300;
  MnistData mnist = MakeMnist(cfg);

  // The handwritten number: pick query images spelling out 3 digits.
  // Find one image of each digit we need.
  const int wanted[3] = {1, 4, 1};  // the number 141, most-significant first
  std::vector<size_t> picks;
  for (int pos = 0; pos < 3; ++pos) {
    for (size_t i = 0; i < mnist.query.size(); ++i) {
      if (mnist.query.label(i) == wanted[pos] &&
          std::find(picks.begin(), picks.end(), i) == picks.end()) {
        picks.push_back(i);
        break;
      }
    }
  }
  if (picks.size() != 3) return 1;

  // digits table: position (from the right) and weight = 10^position.
  Table digits(Schema({Field{"position", DataType::kInt64, ""},
                       Field{"weight", DataType::kDouble, ""}}));
  Matrix feats(3, mnist.query.num_features());
  std::vector<int> labels(3);
  for (int pos = 0; pos < 3; ++pos) {
    const size_t src = picks[2 - pos];  // least-significant digit first
    for (size_t f = 0; f < mnist.query.num_features(); ++f) {
      feats.At(pos, f) = mnist.query.features().At(src, f);
    }
    labels[pos] = mnist.query.label(src);
    double w = 1.0;
    for (int p = 0; p < pos; ++p) w *= 10.0;
    digits.AppendRowUnchecked({Value(static_cast<int64_t>(pos)), Value(w)});
  }
  Dataset digit_features(std::move(feats), std::move(labels), 10);

  // Systematic corruption: 1s labeled as 7s in the training set.
  Rng rng(31);
  auto corrupted =
      CorruptLabels(&mnist.train, IndicesWithLabel(mnist.train, 1), 0.6, 7, &rng);
  std::printf("corrupted %zu training digit labels (1 -> 7)\n", corrupted.size());

  Catalog catalog;
  if (!catalog.AddTable("digits", std::move(digits), std::move(digit_features)).ok()) {
    return 1;
  }
  Query2Pipeline pipeline(std::move(catalog),
                          std::make_unique<SoftmaxRegression>(64, 10),
                          std::move(mnist.train));
  if (!pipeline.Train().ok()) return 1;

  const std::string sql =
      "SELECT SUM(weight * predict(*)) AS number FROM digits";
  auto before = pipeline.ExecuteSql(sql, false);
  if (!before.ok()) {
    std::printf("query failed: %s\n", before.status().ToString().c_str());
    return 1;
  }
  std::printf("OCR read the number as: %.0f (truth: 141)\n",
              before->table.rows[0][0].AsDouble());

  // Complain that the number should be 141 and debug.
  auto plan = sql::PlanQuery(sql, pipeline.catalog());
  if (!plan.ok()) return 1;
  QueryComplaints qc;
  qc.query = *plan;
  qc.complaints = {ComplaintSpec::ValueEq("number", 141.0)};

  auto session = DebugSessionBuilder(&pipeline)
                     .ranker(MakeHolisticRanker())
                     .top_k_per_iter(10)
                     .max_deletions(static_cast<int>(corrupted.size()))
                     .workload({qc})
                     .Build();
  if (!session.ok()) {
    std::printf("building the session failed: %s\n",
                session.status().ToString().c_str());
    return 1;
  }
  auto report = (*session)->RunToCompletion();
  if (!report.ok()) {
    std::printf("debugging failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::vector<bool> truth(pipeline.train_data()->size(), false);
  for (size_t i : corrupted) truth[i] = true;
  size_t hits = 0;
  for (size_t i : report->deletions) hits += truth[i];
  std::printf("Rain flagged %zu training digits; %zu were the mislabeled 1s\n",
              report->deletions.size(), hits);

  auto after = pipeline.ExecuteSql(sql, false);
  if (after.ok()) {
    std::printf("OCR reads the number as: %.0f after debugging\n",
                after->table.rows[0][0].AsDouble());
  }
  return 0;
}
