/// Quickstart: the smallest end-to-end Rain session.
///
/// 1. Build a queried table + feature dataset and register them.
/// 2. Train a logistic regression inside a Query2Pipeline.
/// 3. Run a Query 2.0 SQL statement embedding model inference.
/// 4. File a complaint about the aggregate, build a DebugSession, and
///    step the train-rank-fix loop while streaming progress — the session
///    returns the training records whose removal best addresses the
///    complaint.
#include <cstdio>

#include "common/rng.h"
#include "core/complaint.h"
#include "core/pipeline.h"
#include "core/ranker.h"
#include "core/session.h"
#include "ml/logistic_regression.h"
#include "sql/planner.h"

using namespace rain;  // NOLINT

/// Streams the per-iteration progress of the session as it runs.
class QuickstartObserver : public DebugObserver {
 public:
  void OnPhaseComplete(int iteration, DebugPhase phase, double seconds) override {
    std::printf("  iter %d: %-5s %.3fs\n", iteration, DebugPhaseName(phase), seconds);
  }
};

int main() {
  // --- 1. Synthesize a tiny binary task: y = [x0 + x1 > 0]. ---
  Rng rng(42);
  auto make_split = [&](size_t n) {
    Matrix x(n, 2);
    std::vector<int> y(n);
    for (size_t i = 0; i < n; ++i) {
      x.At(i, 0) = rng.Gaussian();
      x.At(i, 1) = rng.Gaussian();
      y[i] = x.At(i, 0) + x.At(i, 1) > 0 ? 1 : 0;
    }
    return Dataset(std::move(x), std::move(y), 2);
  };
  Dataset train = make_split(400);
  Dataset queried = make_split(200);

  // Count the true positives for the complaint later.
  int64_t true_count = 0;
  for (size_t i = 0; i < queried.size(); ++i) true_count += queried.label(i);

  // Corrupt: flip 40% of the positive training labels (systematic error).
  std::vector<size_t> corrupted;
  for (size_t i = 0; i < train.size(); ++i) {
    if (train.label(i) == 1 && rng.Bernoulli(0.4)) {
      train.set_label(i, 0);
      corrupted.push_back(i);
    }
  }
  std::printf("injected %zu corrupted training labels\n", corrupted.size());

  // --- 2. Register the queried table (id column + aligned features). ---
  Table users(Schema({Field{"id", DataType::kInt64, ""}}));
  for (size_t i = 0; i < queried.size(); ++i) {
    users.AppendRowUnchecked({Value(static_cast<int64_t>(i))});
  }
  Catalog catalog;
  if (!catalog.AddTable("users", std::move(users), std::move(queried)).ok()) return 1;

  Query2Pipeline pipeline(std::move(catalog),
                          std::make_unique<LogisticRegression>(2), std::move(train));
  if (!pipeline.Train().ok()) return 1;

  // --- 3. Query 2.0: SQL with embedded model inference. ---
  const std::string sql = "SELECT COUNT(*) AS positives FROM users WHERE predict(*) = 1";
  auto result = pipeline.ExecuteSql(sql, /*debug=*/false);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const int64_t observed = result->table.rows[0][0].AsInt64();
  std::printf("query: %s\n  -> %lld (ground truth would be %lld)\n", sql.c_str(),
              static_cast<long long>(observed), static_cast<long long>(true_count));

  // --- 4. Complain and debug. ---
  auto plan = sql::PlanQuery(sql, pipeline.catalog());
  if (!plan.ok()) return 1;
  QueryComplaints qc;
  qc.query = *plan;
  qc.complaints = {
      ComplaintSpec::ValueEq("positives", static_cast<double>(true_count))};

  QuickstartObserver progress;
  auto session = DebugSessionBuilder(&pipeline)
                     .ranker(MakeHolisticRanker())
                     .top_k_per_iter(10)
                     .max_deletions(static_cast<int>(corrupted.size()))
                     .set_execution(ExecutionOptions().add_observer(&progress))
                     .workload({qc})
                     .Build();
  if (!session.ok()) {
    std::printf("building the session failed: %s\n",
                session.status().ToString().c_str());
    return 1;
  }

  // Drive the loop one observable iteration at a time. Between steps the
  // session can be cancelled, given a deadline, or handed more complaints
  // (AddComplaints) — here we just step until it finishes.
  while (!(*session)->finished()) {
    auto step = (*session)->Step();
    if (!step.ok()) {
      std::printf("debugging failed: %s\n", step.status().ToString().c_str());
      return 1;
    }
    if (!step->new_deletions.empty()) {
      std::printf("  iter %d removed %zu records (|D|=%zu)\n",
                  (*session)->iterations_completed() - 1,
                  step->new_deletions.size(), step->stats.deletions_after);
    }
  }
  const DebugReport& report = (*session)->report();

  size_t hits = 0;
  {
    std::vector<bool> truth(pipeline.train_data()->size(), false);
    for (size_t i : corrupted) truth[i] = true;
    for (size_t i : report.deletions) hits += truth[i];
  }
  std::printf("debugger removed %zu records; %zu were true corruptions (%.0f%%)\n",
              report.deletions.size(), hits,
              100.0 * hits / report.deletions.size());

  auto after = pipeline.ExecuteSql(sql, false);
  if (after.ok()) {
    std::printf("count after debugging: %lld\n",
                static_cast<long long>(after->table.rows[0][0].AsInt64()));
  }
  return 0;
}
