/// Hot-dog classifier scenario (Section 2.1, "Image Analysis").
///
/// An engineer labels images with a programmatic labeling function and
/// trains a binary hot-dog classifier. She equi-joins a hot-dog dataset
/// with a non-hot-dog dataset on the predicted label and plots the
/// count — which should be zero. It is not, because the labeling
/// function systematically mislabels a cluster of images. She complains
/// `count = 0` and Rain surfaces the mislabeled training images.
#include <cstdio>

#include "common/rng.h"
#include "core/complaint.h"
#include "core/session.h"
#include "core/pipeline.h"
#include "core/ranker.h"
#include "ml/logistic_regression.h"
#include "sql/planner.h"

using namespace rain;  // NOLINT

namespace {

constexpr size_t kPixels = 36;  // 6x6 "images"

/// Two visual clusters per class; cluster 3 (a hot-dog-like sandwich) is
/// the one the labeling function gets wrong.
Dataset MakeImages(size_t n, Rng* rng, std::vector<int>* cluster_out = nullptr) {
  Matrix x(n, kPixels);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    const int cluster = static_cast<int>(rng->UniformInt(4));
    const bool hotdog = cluster < 2;
    y[i] = hotdog ? 1 : 0;
    for (size_t p = 0; p < kPixels; ++p) {
      const double base = (p % 4) == static_cast<size_t>(cluster) ? 1.2 : -0.4;
      x.At(i, p) = base + 0.5 * rng->Gaussian();
    }
    if (cluster_out != nullptr) cluster_out->push_back(cluster);
  }
  return Dataset(std::move(x), std::move(y), 2);
}

Table IdTable(size_t n) {
  Table t(Schema({Field{"id", DataType::kInt64, ""}}));
  for (size_t i = 0; i < n; ++i) t.AppendRowUnchecked({Value(static_cast<int64_t>(i))});
  return t;
}

}  // namespace

int main() {
  Rng rng(99);
  std::vector<int> train_clusters;
  Dataset train = MakeImages(700, &rng, &train_clusters);

  // Distant supervision gone wrong: the labeling function marks cluster-3
  // sandwiches as hot dogs.
  std::vector<size_t> corrupted;
  for (size_t i = 0; i < train.size(); ++i) {
    if (train_clusters[i] == 3 && train.label(i) == 0 && rng.Bernoulli(0.85)) {
      train.set_label(i, 1);
      corrupted.push_back(i);
    }
  }
  std::printf("labeling function mislabeled %zu sandwich images as hot dogs\n",
              corrupted.size());

  // Curated evaluation sets: 30 hot dogs and 30 non-hot-dogs.
  auto curate = [&](int label, size_t want) {
    Matrix x(want, kPixels);
    std::vector<int> y(want, label);
    size_t got = 0;
    while (got < want) {
      Dataset batch = MakeImages(8, &rng);
      for (size_t i = 0; i < batch.size() && got < want; ++i) {
        if (batch.label(i) != label) continue;
        for (size_t p = 0; p < kPixels; ++p) x.At(got, p) = batch.features().At(i, p);
        ++got;
      }
    }
    return Dataset(std::move(x), std::move(y), 2);
  };
  Dataset hotdogs = curate(1, 30);
  Dataset others = curate(0, 30);

  Catalog catalog;
  Table hotdog_ids = IdTable(hotdogs.size());
  Table other_ids = IdTable(others.size());
  if (!catalog.AddTable("hotdogs", std::move(hotdog_ids), std::move(hotdogs)).ok() ||
      !catalog.AddTable("others", std::move(other_ids), std::move(others)).ok()) {
    return 1;
  }
  Query2Pipeline pipeline(std::move(catalog),
                          std::make_unique<LogisticRegression>(kPixels),
                          std::move(train));
  if (!pipeline.Train().ok()) return 1;

  // Equi-join the two datasets on the predicted label: any result is a
  // contradiction (one side is certainly not a hot dog).
  const std::string sql =
      "SELECT COUNT(*) AS collisions FROM hotdogs H, others O "
      "WHERE predict(H.*) = predict(O.*)";
  auto before = pipeline.ExecuteSql(sql, false);
  if (!before.ok()) {
    std::printf("query failed: %s\n", before.status().ToString().c_str());
    return 1;
  }
  std::printf("join collisions reported: %lld (should be 0)\n",
              static_cast<long long>(before->table.rows[0][0].AsInt64()));

  auto plan = sql::PlanQuery(sql, pipeline.catalog());
  if (!plan.ok()) return 1;
  QueryComplaints qc;
  qc.query = *plan;
  qc.complaints = {ComplaintSpec::ValueEq("collisions", 0.0)};

  auto session = DebugSessionBuilder(&pipeline)
                     .ranker(MakeHolisticRanker())
                     .top_k_per_iter(10)
                     .max_deletions(static_cast<int>(corrupted.size()))
                     .workload({qc})
                     .Build();
  if (!session.ok()) {
    std::printf("building the session failed: %s\n",
                session.status().ToString().c_str());
    return 1;
  }
  auto report = (*session)->RunToCompletion();
  if (!report.ok()) {
    std::printf("debugging failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::vector<bool> truth(pipeline.train_data()->size(), false);
  for (size_t i : corrupted) truth[i] = true;
  size_t hits = 0;
  for (size_t i : report->deletions) hits += truth[i];
  std::printf("Rain flagged %zu images; %zu were mislabeled sandwiches\n",
              report->deletions.size(), hits);

  auto after = pipeline.ExecuteSql(sql, false);
  if (after.ok()) {
    std::printf("join collisions after debugging: %lld\n",
                static_cast<long long>(after->table.rows[0][0].AsInt64()));
  }
  return 0;
}
