/// CompanyX churn-cohort scenario (Figure 1 of the paper).
///
/// A marketing pipeline joins Users with Logins, keeps users active last
/// month, and counts those the model predicts will churn:
///
///   SELECT COUNT(*) FROM Users U JOIN Logins L ON U.id = L.uid
///   WHERE L.active_last_month AND M.predict(U.*) = 1
///
/// A website change breaks the scraper: transactions stop being logged
/// for a slice of customers, so the retrained model labels similar users
/// as churners. The customer sees the cohort size jump in the monitoring
/// chart and complains; Rain traces the complaint back to the corrupted
/// training records.
#include <cstdio>

#include "common/rng.h"
#include "core/complaint.h"
#include "core/session.h"
#include "core/pipeline.h"
#include "core/ranker.h"
#include "ml/logistic_regression.h"
#include "sql/planner.h"

using namespace rain;  // NOLINT

namespace {

constexpr size_t kProfileFeatures = 8;

/// User profiles: churners have low engagement features.
Dataset MakeUsers(size_t n, Rng* rng) {
  Matrix x(n, kProfileFeatures);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    const bool churn = rng->Bernoulli(0.25);
    y[i] = churn ? 1 : 0;
    for (size_t f = 0; f < kProfileFeatures; ++f) {
      x.At(i, f) = rng->Gaussian(churn ? -0.8 : 0.8, 1.0);
    }
  }
  return Dataset(std::move(x), std::move(y), 2);
}

}  // namespace

int main() {
  Rng rng(2024);
  Dataset train = MakeUsers(900, &rng);
  Dataset users_features = MakeUsers(500, &rng);

  int64_t true_cohort = 0;

  // Users table: id + plan tier (unused by the model, queryable).
  Table users(Schema({Field{"id", DataType::kInt64, ""},
                      Field{"tier", DataType::kString, ""}}));
  // Logins table: uid + active_last_month.
  Table logins(Schema({Field{"uid", DataType::kInt64, ""},
                       Field{"active_last_month", DataType::kBool, ""}}));
  std::vector<bool> active(users_features.size());
  for (size_t i = 0; i < users_features.size(); ++i) {
    active[i] = rng.Bernoulli(0.7);
    users.AppendRowUnchecked(
        {Value(static_cast<int64_t>(i)),
         Value(std::string(rng.Bernoulli(0.3) ? "premium" : "basic"))});
    logins.AppendRowUnchecked({Value(static_cast<int64_t>(i)), Value(active[i])});
    if (active[i] && users_features.label(i) == 1) ++true_cohort;
  }

  // Systematic scraper breakage: a slice of *retained* users (label 0)
  // with high engagement suddenly gets labeled churn (label 1).
  std::vector<size_t> corrupted;
  for (size_t i = 0; i < train.size(); ++i) {
    if (train.label(i) == 0 && train.features().At(i, 0) > 0.9 &&
        rng.Bernoulli(0.8)) {
      train.set_label(i, 1);
      corrupted.push_back(i);
    }
  }
  std::printf("scraper breakage corrupted %zu training labels\n", corrupted.size());

  Catalog catalog;
  if (!catalog.AddTable("users", std::move(users), std::move(users_features)).ok() ||
      !catalog.AddTable("logins", std::move(logins)).ok()) {
    return 1;
  }
  Query2Pipeline pipeline(std::move(catalog),
                          std::make_unique<LogisticRegression>(kProfileFeatures),
                          std::move(train));
  if (!pipeline.Train().ok()) return 1;

  const std::string sql =
      "SELECT COUNT(*) AS cohort FROM users U JOIN logins L ON U.id = L.uid "
      "WHERE L.active_last_month AND M.predict(U.*) = 1";
  auto before = pipeline.ExecuteSql(sql, false);
  if (!before.ok()) {
    std::printf("query failed: %s\n", before.status().ToString().c_str());
    return 1;
  }
  std::printf("cohort size reported: %lld (customer expected about %lld)\n",
              static_cast<long long>(before->table.rows[0][0].AsInt64()),
              static_cast<long long>(true_cohort));

  // The customer's complaint: "the cohort should be ~true_cohort".
  auto plan = sql::PlanQuery(sql, pipeline.catalog());
  if (!plan.ok()) return 1;
  QueryComplaints qc;
  qc.query = *plan;
  qc.complaints = {ComplaintSpec::ValueEq("cohort", static_cast<double>(true_cohort))};

  auto session = DebugSessionBuilder(&pipeline)
                     .ranker(MakeHolisticRanker())
                     .top_k_per_iter(10)
                     .max_deletions(static_cast<int>(corrupted.size()))
                     .workload({qc})
                     .Build();
  if (!session.ok()) {
    std::printf("building the session failed: %s\n",
                session.status().ToString().c_str());
    return 1;
  }
  auto report = (*session)->RunToCompletion();
  if (!report.ok()) {
    std::printf("debugging failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::vector<bool> truth(pipeline.train_data()->size(), false);
  for (size_t i : corrupted) truth[i] = true;
  size_t hits = 0;
  for (size_t i : report->deletions) hits += truth[i];
  std::printf(
      "Rain flagged %zu training records; %zu of them were scraper-corrupted\n",
      report->deletions.size(), hits);

  auto after = pipeline.ExecuteSql(sql, false);
  if (after.ok()) {
    std::printf("cohort size after removing flagged records: %lld\n",
                static_cast<long long>(after->table.rows[0][0].AsInt64()));
  }
  return 0;
}
