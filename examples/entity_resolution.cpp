/// Entity-resolution scenario (Section 2.1): a classifier used as a join
/// condition over two business listings.
///
///   SELECT * FROM listings1 A, listings2 B
///   WHERE predict(A.*) = predict(B.*) AND A.category = B.category
///
/// Here the model predicts a business "type" from listing features; the
/// data scientist notices the dining category has suspiciously many
/// cross-listing matches that should not exist, files tuple complaints,
/// and Rain identifies the mislabeled training listings.
#include <cstdio>

#include "common/rng.h"
#include "core/complaint.h"
#include "core/session.h"
#include "core/pipeline.h"
#include "core/ranker.h"
#include "ml/softmax_regression.h"
#include "sql/planner.h"

using namespace rain;  // NOLINT

namespace {

constexpr size_t kListingFeatures = 12;
constexpr int kTypes = 4;  // dining=0, retail=1, services=2, lodging=3

/// Listings: features cluster by business type.
Dataset MakeListings(size_t n, Rng* rng) {
  Matrix x(n, kListingFeatures);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    const int type = static_cast<int>(rng->UniformInt(kTypes));
    y[i] = type;
    for (size_t f = 0; f < kListingFeatures; ++f) {
      const double mean = (f % kTypes) == static_cast<size_t>(type) ? 1.5 : -0.5;
      x.At(i, f) = rng->Gaussian(mean, 0.8);
    }
  }
  return Dataset(std::move(x), std::move(y), kTypes);
}

Table MakeListingTable(const Dataset& listings, const char* city) {
  Table t(Schema({Field{"id", DataType::kInt64, ""},
                  Field{"city", DataType::kString, ""},
                  Field{"truth", DataType::kInt64, ""}}));
  for (size_t i = 0; i < listings.size(); ++i) {
    t.AppendRowUnchecked({Value(static_cast<int64_t>(i)), Value(std::string(city)),
                          Value(static_cast<int64_t>(listings.label(i)))});
  }
  return t;
}

}  // namespace

int main() {
  Rng rng(7);
  Dataset train = MakeListings(800, &rng);
  Dataset left = MakeListings(40, &rng);
  Dataset right = MakeListings(40, &rng);

  // Systematic labeling error: most dining listings were labeled retail
  // by a broken scrape of the category page.
  std::vector<size_t> corrupted;
  for (size_t i = 0; i < train.size(); ++i) {
    if (train.label(i) == 0 && rng.Bernoulli(0.6)) {
      train.set_label(i, 1);
      corrupted.push_back(i);
    }
  }
  std::printf("broken category scrape corrupted %zu training labels\n",
              corrupted.size());

  Catalog catalog;
  Table left_table = MakeListingTable(left, "sf");
  Table right_table = MakeListingTable(right, "nyc");
  if (!catalog.AddTable("listings1", std::move(left_table), std::move(left)).ok() ||
      !catalog.AddTable("listings2", std::move(right_table), std::move(right)).ok()) {
    return 1;
  }
  Query2Pipeline pipeline(
      std::move(catalog),
      std::make_unique<SoftmaxRegression>(kListingFeatures, kTypes),
      std::move(train));
  if (!pipeline.Train().ok()) return 1;

  const std::string sql =
      "SELECT * FROM listings1 A, listings2 B WHERE predict(A.*) = predict(B.*)";
  auto result = pipeline.ExecuteSql(sql, /*debug=*/false);
  if (!result.ok()) {
    std::printf("join failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Count join pairs whose *true* types disagree: spurious matches.
  QueryComplaints qc;
  auto plan = sql::PlanQuery(sql, pipeline.catalog());
  if (!plan.ok()) return 1;
  qc.query = *plan;
  size_t spurious = 0;
  for (size_t row = 0; row < result->table.num_rows(); ++row) {
    if (!result->table.concrete[row]) continue;
    const int64_t lt = result->table.rows[row][2].AsInt64();  // A.truth
    const int64_t rt = result->table.rows[row][5].AsInt64();  // B.truth
    if (lt == rt) continue;
    ++spurious;
    qc.complaints.push_back(ComplaintSpec::TupleNotExists(
        {"A.id", "B.id"},
        std::vector<Value>{result->table.rows[row][0], result->table.rows[row][3]}));
  }
  std::printf("join produced %zu rows, %zu of them spurious -> %zu tuple complaints\n",
              result->table.NumConcrete(), spurious, qc.complaints.size());
  if (qc.complaints.empty()) {
    std::printf("nothing to complain about; done\n");
    return 0;
  }

  auto session = DebugSessionBuilder(&pipeline)
                     .ranker(MakeHolisticRanker())
                     .top_k_per_iter(10)
                     .max_deletions(static_cast<int>(corrupted.size()))
                     .workload({qc})
                     .Build();
  if (!session.ok()) {
    std::printf("building the session failed: %s\n",
                session.status().ToString().c_str());
    return 1;
  }
  auto report = (*session)->RunToCompletion();
  if (!report.ok()) {
    std::printf("debugging failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::vector<bool> truth(pipeline.train_data()->size(), false);
  for (size_t i : corrupted) truth[i] = true;
  size_t hits = 0;
  for (size_t i : report->deletions) hits += truth[i];
  std::printf("Rain flagged %zu records; %zu were mislabeled dining listings\n",
              report->deletions.size(), hits);

  auto after = pipeline.ExecuteSql(sql, false);
  if (after.ok()) {
    size_t still_spurious = 0;
    for (size_t row = 0; row < after->table.num_rows(); ++row) {
      if (!after->table.concrete[row]) continue;
      if (after->table.rows[row][2].AsInt64() != after->table.rows[row][5].AsInt64()) {
        ++still_spurious;
      }
    }
    std::printf("spurious join rows after debugging: %zu (was %zu)\n", still_spurious,
                spurious);
  }
  return 0;
}
