#!/usr/bin/env python3
"""Markdown link checker for the repo docs.

Scans README.md, docs/*.md, and the other top-level markdown files for
inline links/images `[text](target)` and verifies that every relative
target exists on disk (anchors are stripped; http/https/mailto targets
are skipped). CI runs this on every push so docs rot is caught at review
time instead of by the next reader.

Exit status: 0 when every link resolves, 1 otherwise (each broken link is
reported as `file:line: broken link -> target`).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Inline markdown link or image: [text](target) — conservative about
# nested parens, which the docs do not use.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files():
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    for extra in ("ROADMAP.md", "CHANGES.md", "PAPER.md", "PAPERS.md"):
        path = REPO / extra
        if path.exists():
            files.append(path)
    return [f for f in files if f.exists()]


def check_file(path: Path):
    broken = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main() -> int:
    total_links = 0
    failures = []
    for path in markdown_files():
        broken = check_file(path)
        text = path.read_text(encoding="utf-8")
        total_links += sum(
            1
            for m in LINK_RE.finditer(text)
            if not m.group(1).startswith(SKIP_SCHEMES + ("#",))
        )
        for lineno, target in broken:
            failures.append(f"{path.relative_to(REPO)}:{lineno}: broken link -> {target}")
    if failures:
        print("\n".join(failures))
        print(f"\n{len(failures)} broken link(s).")
        return 1
    print(f"all {total_links} relative links resolve across "
          f"{len(markdown_files())} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
