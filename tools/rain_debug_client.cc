/// rain_debug_client: thin command-line client for rain_debugd.
///
/// Two modes:
///   rain_debug_client --socket PATH                 # REPL over stdin
///   rain_debug_client --socket PATH -c "open adult" -c "step 1 100" ...
///
/// Each request line is sent verbatim (see src/serve/wire.h for the
/// grammar); the raw JSON response is printed to stdout. In -c mode the
/// exit code is 1 if any response was {"ok":false,...}.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "serve/client.h"

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/rain_debugd.sock";
  std::vector<std::string> commands;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "-c") == 0 && i + 1 < argc) {
      commands.push_back(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: rain_debug_client [--socket PATH] [-c CMD]...\n");
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  auto client = rain::serve::DebugClient::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "rain_debug_client: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  int exit_code = 0;
  auto run_one = [&](const std::string& line) {
    auto response = client->Call(line);
    if (!response.ok()) {
      std::fprintf(stderr, "rain_debug_client: %s\n",
                   response.status().ToString().c_str());
      exit_code = 1;
      return false;
    }
    std::printf("%s\n", response->c_str());
    std::fflush(stdout);
    if (!rain::serve::StatusFromResponse(*response).ok()) exit_code = 1;
    return true;
  };

  if (!commands.empty()) {
    for (const std::string& command : commands) {
      if (!run_one(command)) break;
    }
    client->Quit();
    return exit_code;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "quit") break;
    if (!run_one(line)) break;
  }
  client->Quit();
  return exit_code;
}
