#!/usr/bin/env bash
# Smoke test for the serve layer: start rain_debugd, open two concurrent
# client sessions over the same hosted dataset, drive both to completion,
# and check both converged (finished + resolved). Usage:
#
#   tools/serve_smoke.sh [BUILD_DIR]
#
# BUILD_DIR defaults to ./build and must contain rain_debugd and
# rain_debug_client.
set -euo pipefail

BUILD_DIR="${1:-build}"
SOCK="$(mktemp -u /tmp/rain_smoke_XXXXXX.sock)"
DAEMON_LOG="$(mktemp /tmp/rain_smoke_daemon_XXXXXX.log)"

"${BUILD_DIR}/rain_debugd" --socket "${SOCK}" --drivers 2 --admission 16 \
  2>"${DAEMON_LOG}" &
DAEMON_PID=$!
cleanup() {
  kill "${DAEMON_PID}" 2>/dev/null || true
  wait "${DAEMON_PID}" 2>/dev/null || true
  rm -f "${SOCK}" "${DAEMON_LOG}" "${DAEMON_LOG}".[ab]
}
trap cleanup EXIT

# The daemon synthesizes + trains the builtin datasets before listening.
for _ in $(seq 1 300); do
  [[ -S "${SOCK}" ]] && break
  if ! kill -0 "${DAEMON_PID}" 2>/dev/null; then
    echo "serve_smoke: daemon died during startup" >&2
    cat "${DAEMON_LOG}" >&2
    exit 1
  fi
  sleep 0.2
done
if [[ ! -S "${SOCK}" ]]; then
  echo "serve_smoke: daemon never created ${SOCK}" >&2
  cat "${DAEMON_LOG}" >&2
  exit 1
fi

# Drives one interactive client: open -> step to completion -> status.
# The daemon assigns the sid, so parse it from the open response.
run_session() {
  local dataset="$1"
  coproc CLIENT { "${BUILD_DIR}/rain_debug_client" --socket "${SOCK}"; }
  local out_fd="${CLIENT[0]}" in_fd="${CLIENT[1]}"

  echo "open ${dataset} parallelism=2 max_deletions=800 max_iterations=200" >&"${in_fd}"
  local open_resp
  read -r open_resp <&"${out_fd}"
  echo "${open_resp}"
  local sid
  sid="$(sed -n 's/.*"sid":\([0-9]*\).*/\1/p' <<<"${open_resp}")"
  if [[ -z "${sid}" ]]; then
    echo "serve_smoke: no sid in open response: ${open_resp}" >&2
    return 1
  fi

  echo "step ${sid} 300" >&"${in_fd}"
  local step_resp
  read -r step_resp <&"${out_fd}"
  echo "${step_resp}"

  echo "status ${sid}" >&"${in_fd}"
  local status_resp
  read -r status_resp <&"${out_fd}"
  echo "${status_resp}"

  grep -q '"finished":true' <<<"${status_resp}" || {
    echo "serve_smoke: ${dataset} session ${sid} did not finish" >&2
    return 1
  }
  grep -q '"resolved":true' <<<"${status_resp}" || {
    echo "serve_smoke: ${dataset} session ${sid} did not resolve" >&2
    return 1
  }

  # Update round trip: a label delta reopens the resolved session through
  # the incremental path; re-stepping must converge again.
  echo "update ${sid} label 0 1 policy=incremental" >&"${in_fd}"
  local update_resp
  read -r update_resp <&"${out_fd}"
  echo "${update_resp}"
  grep -q '"ok":true' <<<"${update_resp}" || {
    echo "serve_smoke: ${dataset} session ${sid} update refused: ${update_resp}" >&2
    return 1
  }
  grep -q '"incremental":true' <<<"${update_resp}" || {
    echo "serve_smoke: update did not take the incremental path: ${update_resp}" >&2
    return 1
  }
  grep -q '"reopened":true' <<<"${update_resp}" || {
    echo "serve_smoke: update did not reopen the resolved session: ${update_resp}" >&2
    return 1
  }

  echo "step ${sid} 300" >&"${in_fd}"
  local restep_resp
  read -r restep_resp <&"${out_fd}"
  echo "${restep_resp}"

  echo "status ${sid}" >&"${in_fd}"
  local restatus_resp
  read -r restatus_resp <&"${out_fd}"
  echo "${restatus_resp}"

  echo "quit" >&"${in_fd}"
  wait "${CLIENT_PID}" 2>/dev/null || true

  grep -q '"finished":true' <<<"${restatus_resp}" || {
    echo "serve_smoke: ${dataset} session ${sid} did not re-finish after update" >&2
    return 1
  }
}

# Two concurrent clients over the same shared dataset.
run_session adult >"${DAEMON_LOG}.a" 2>&1 &
A=$!
run_session adult >"${DAEMON_LOG}.b" 2>&1 &
B=$!
FAIL=0
wait "${A}" || FAIL=1
wait "${B}" || FAIL=1
cat "${DAEMON_LOG}.a" "${DAEMON_LOG}.b"
if [[ "${FAIL}" != 0 ]]; then
  echo "serve_smoke: FAILED" >&2
  exit 1
fi
echo "serve_smoke: OK (two concurrent sessions converged; update round trip re-converged)"
