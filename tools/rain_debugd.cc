/// rain_debugd: debug-as-a-service daemon.
///
/// Hosts a DebugService with the builtin benchmark datasets and serves
/// the line-delimited wire protocol (see src/serve/wire.h) on an AF_UNIX
/// socket. Runs until SIGINT/SIGTERM.
///
///   rain_debugd --socket /tmp/rain.sock [--max-sessions N]
///               [--admission N] [--drivers N]
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "serve/builtin_datasets.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

bool NextIntFlag(int argc, char** argv, int* i, int* out) {
  if (*i + 1 >= argc) return false;
  *out = std::atoi(argv[++*i]);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/rain_debugd.sock";
  rain::serve::ServiceOptions service_options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(arg, "--max-sessions") == 0) {
      if (!NextIntFlag(argc, argv, &i, &service_options.max_sessions)) return 2;
    } else if (std::strcmp(arg, "--admission") == 0) {
      if (!NextIntFlag(argc, argv, &i, &service_options.admission_capacity)) {
        return 2;
      }
    } else if (std::strcmp(arg, "--drivers") == 0) {
      if (!NextIntFlag(argc, argv, &i, &service_options.num_drivers)) return 2;
    } else {
      std::fprintf(stderr,
                   "usage: rain_debugd [--socket PATH] [--max-sessions N] "
                   "[--admission N] [--drivers N]\n");
      return std::strcmp(arg, "--help") == 0 ? 0 : 2;
    }
  }

  rain::serve::DebugService service(service_options);
  std::fprintf(stderr, "rain_debugd: building builtin datasets...\n");
  const rain::Status registered =
      rain::serve::RegisterBuiltinDatasets(&service);
  if (!registered.ok()) {
    std::fprintf(stderr, "rain_debugd: %s\n", registered.ToString().c_str());
    return 1;
  }

  rain::serve::ServerOptions server_options;
  server_options.socket_path = socket_path;
  rain::serve::DebugServer server(&service, server_options);
  const rain::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "rain_debugd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "rain_debugd: listening on %s (admission capacity %d)\n",
               socket_path.c_str(), service.admission_capacity());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    timespec tick = {0, 200 * 1000 * 1000};  // poll the stop flag at 5 Hz
    nanosleep(&tick, nullptr);
  }
  std::fprintf(stderr, "rain_debugd: shutting down\n");
  server.Stop();
  service.Shutdown();
  return 0;
}
