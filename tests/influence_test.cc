#include <cmath>
#include <cstdlib>

#include "common/logging.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "influence/conjugate_gradient.h"
#include "influence/influence.h"
#include "ml/logistic_regression.h"
#include "ml/sharded_dataset.h"
#include "ml/trainer.h"

namespace rain {
namespace {

TEST(ConjugateGradientTest, SolvesDiagonalSystem) {
  // A = diag(1..5), b = ones.
  LinearOperator op = [](const Vec& v, Vec* out) {
    out->resize(v.size());
    for (size_t i = 0; i < v.size(); ++i) (*out)[i] = static_cast<double>(i + 1) * v[i];
  };
  auto r = ConjugateGradient(op, Vec(5, 1.0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  for (size_t i = 0; i < 5; ++i) EXPECT_NEAR(r->x[i], 1.0 / (i + 1), 1e-8);
}

TEST(ConjugateGradientTest, SolvesDenseSpdSystem) {
  // A = M^T M + I for random M: SPD.
  Rng rng(3);
  const size_t n = 8;
  std::vector<Vec> m(n, Vec(n));
  for (auto& row : m) {
    for (double& v : row) v = rng.Gaussian();
  }
  auto apply = [&](const Vec& v, Vec* out) {
    Vec mv(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) mv[i] += m[i][j] * v[j];
    }
    out->assign(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) (*out)[j] += m[i][j] * mv[i];
      (*out)[i] += v[i];
    }
  };
  Vec b(n);
  for (double& v : b) v = rng.Gaussian();
  auto r = ConjugateGradient(LinearOperator(apply), b);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->converged);
  // Verify residual directly.
  Vec ax;
  apply(r->x, &ax);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-6);
}

TEST(ConjugateGradientTest, ZeroRhsReturnsZero) {
  LinearOperator op = [](const Vec& v, Vec* out) { *out = v; };
  auto r = ConjugateGradient(op, Vec(3, 0.0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  for (double v : r->x) EXPECT_EQ(v, 0.0);
}

TEST(ConjugateGradientTest, RejectsIndefiniteOperator) {
  LinearOperator op = [](const Vec& v, Vec* out) {
    *out = v;
    for (double& x : *out) x = -x;
  };
  auto r = ConjugateGradient(op, Vec(3, 1.0));
  EXPECT_FALSE(r.ok());
}

TEST(ConjugateGradientTest, EmptyRhsIsError) {
  LinearOperator op = [](const Vec& v, Vec* out) { *out = v; };
  EXPECT_FALSE(ConjugateGradient(op, Vec{}).ok());
}

/// Builds a small trained logistic model for influence checks.
struct TrainedSetup {
  Dataset train;
  LogisticRegression model{0};
  double l2 = 1e-2;
};

TrainedSetup MakeTrained(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, d);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < d; ++f) x.At(i, f) = rng.Gaussian();
    double s = 0.0;
    for (size_t f = 0; f < d; ++f) s += x.At(i, f);
    y[i] = s + 0.5 * rng.Gaussian() > 0 ? 1 : 0;
  }
  TrainedSetup setup{Dataset(std::move(x), std::move(y), 2), LogisticRegression(d)};
  TrainConfig cfg;
  cfg.l2 = setup.l2;
  cfg.grad_tol = 1e-10;
  cfg.max_iters = 2000;
  RAIN_CHECK(TrainModel(&setup.model, setup.train, cfg).ok());
  return setup;
}

TEST(InfluenceTest, PrepareRequiresMatchingSize) {
  TrainedSetup s = MakeTrained(30, 3, 7);
  InfluenceScorer scorer(&s.model, &s.train);
  EXPECT_FALSE(scorer.Prepare(Vec(2, 1.0)).ok());
}

TEST(InfluenceTest, ScoresApproximateLeaveOneOutEffect) {
  // q(theta) = p_1(x_q; theta) for a probe point. The influence
  // prediction of removing record z is (1/n) * score contribution;
  // compare its *sign and ranking* against true leave-one-out retraining.
  TrainedSetup s = MakeTrained(60, 3, 9);
  Rng rng(10);
  Vec xq{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};

  auto q_value = [&](const Model& m) {
    double p[2];
    m.PredictProba(xq.data(), p);
    return p[1];
  };

  InfluenceOptions opts;
  opts.l2 = s.l2;
  InfluenceScorer scorer(&s.model, &s.train, opts);
  Vec q_grad(s.model.num_params(), 0.0);
  s.model.AddProbaGradient(xq.data(), Vec{0.0, 1.0}, &q_grad);
  ASSERT_TRUE(scorer.Prepare(q_grad).ok());

  const double q0 = q_value(s.model);
  const double n = static_cast<double>(s.train.num_active());
  TrainConfig cfg;
  cfg.l2 = s.l2;
  cfg.grad_tol = 1e-10;
  cfg.max_iters = 2000;

  double corr_num = 0.0, pred_sq = 0.0, true_sq = 0.0;
  for (size_t i = 0; i < 12; ++i) {
    const double predicted_delta = scorer.Score(i) / n;  // score = -grad q H^-1 grad l
    LogisticRegression retrained(3);
    Dataset copy = s.train;
    copy.Deactivate(i);
    ASSERT_TRUE(TrainModel(&retrained, copy, cfg).ok());
    const double true_delta = -(q_value(retrained) - q0);
    corr_num += predicted_delta * true_delta;
    pred_sq += predicted_delta * predicted_delta;
    true_sq += true_delta * true_delta;
  }
  const double corr = corr_num / std::sqrt(pred_sq * true_sq + 1e-30);
  EXPECT_GT(corr, 0.9) << "influence predictions should correlate with true LOO";
}

TEST(InfluenceTest, InactiveRecordsScoreZero) {
  TrainedSetup s = MakeTrained(20, 3, 11);
  s.train.Deactivate(5);
  InfluenceOptions opts;
  opts.l2 = s.l2;
  InfluenceScorer scorer(&s.model, &s.train, opts);
  Vec grad(s.model.num_params(), 0.5);
  ASSERT_TRUE(scorer.Prepare(grad).ok());
  auto scores = scorer.ScoreAll();
  EXPECT_EQ(scores[5], 0.0);
}

TEST(InfluenceTest, SelfInfluenceIsNonPositive) {
  TrainedSetup s = MakeTrained(25, 3, 13);
  InfluenceOptions opts;
  opts.l2 = s.l2;
  InfluenceScorer scorer(&s.model, &s.train, opts);
  auto self = scorer.SelfInfluenceAll();
  ASSERT_TRUE(self.ok());
  for (size_t i = 0; i < s.train.size(); ++i) {
    EXPECT_LE((*self)[i], 1e-9) << "self influence must be <= 0 (PSD Hessian)";
  }
}

TEST(InfluenceTest, ParallelScoreAllIsBitwiseIdenticalToSequential) {
  TrainedSetup s = MakeTrained(200, 4, 17);
  s.train.Deactivate(3);
  s.train.Deactivate(77);
  InfluenceOptions opts;
  opts.l2 = s.l2;
  InfluenceScorer scorer(&s.model, &s.train, opts);
  Vec q_grad(s.model.num_params(), 0.0);
  Rng rng(18);
  for (double& g : q_grad) g = rng.Gaussian();
  ASSERT_TRUE(scorer.Prepare(q_grad).ok());

  scorer.set_parallelism(1);
  const std::vector<double> sequential = scorer.ScoreAll();
  for (int par : {2, 4, 8}) {
    scorer.set_parallelism(par);
    const std::vector<double> parallel = scorer.ScoreAll();
    ASSERT_EQ(parallel.size(), sequential.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      // Per-record scores involve no cross-record reduction, so the
      // parallel partition reproduces the sequential result exactly.
      EXPECT_EQ(parallel[i], sequential[i]) << "parallelism=" << par << " i=" << i;
    }
  }
  EXPECT_EQ(sequential[3], 0.0);
  EXPECT_EQ(sequential[77], 0.0);
}

TEST(InfluenceTest, ParallelSelfInfluenceMatchesSequential) {
  TrainedSetup s = MakeTrained(40, 3, 19);
  InfluenceOptions opts;
  opts.l2 = s.l2;
  InfluenceScorer sequential_scorer(&s.model, &s.train, opts);
  auto sequential = sequential_scorer.SelfInfluenceAll();
  ASSERT_TRUE(sequential.ok());

  opts.parallelism = 4;
  InfluenceScorer parallel_scorer(&s.model, &s.train, opts);
  auto parallel = parallel_scorer.SelfInfluenceAll();
  ASSERT_TRUE(parallel.ok());
  for (size_t i = 0; i < s.train.size(); ++i) {
    // Each record's CG solve is independent; only the solver-internal
    // chunked reductions differ, so agreement is to tight epsilon.
    EXPECT_NEAR((*parallel)[i], (*sequential)[i], 1e-9) << "i=" << i;
  }
}

TEST(InfluenceTest, ShardedScoringBitwiseIdenticalToSequential) {
  // Honors RAIN_TEST_SHARDS (the CI sharded leg sets 4) so the suite's
  // sharded run exercises this shard count; defaults to 3.
  int shards = 3;
  if (const char* env = std::getenv("RAIN_TEST_SHARDS")) {
    const int s = std::atoi(env);
    if (s >= 1) shards = s;
  }
  TrainedSetup s = MakeTrained(120, 4, 20);
  s.train.Deactivate(7);
  ShardedDataset view(&s.train, ShardPlan::Uniform(s.train.size(), shards));

  InfluenceOptions opts;
  opts.l2 = s.l2;
  InfluenceScorer sequential(&s.model, &s.train, opts);
  Vec q_grad(s.model.num_params(), 0.0);
  Rng rng(21);
  for (double& g : q_grad) g = rng.Gaussian();
  ASSERT_TRUE(sequential.Prepare(q_grad).ok());

  opts.shards = &view;
  InfluenceScorer sharded(&s.model, &s.train, opts);
  ASSERT_TRUE(sharded.Prepare(q_grad).ok());
  // The prepared CG solutions (sharded HVPs, pinned vector kernels) and
  // the per-record scores are bit-for-bit the sequential ones.
  EXPECT_EQ(sharded.ScoreAll(), sequential.ScoreAll());

  auto self_seq = sequential.SelfInfluenceAll();
  auto self_sharded = sharded.SelfInfluenceAll();
  ASSERT_TRUE(self_seq.ok());
  ASSERT_TRUE(self_sharded.ok());
  EXPECT_EQ(*self_sharded, *self_seq);
}

TEST(InfluenceTest, DampingEnablesNonConvexSolves) {
  TrainedSetup s = MakeTrained(20, 3, 15);
  InfluenceOptions opts;
  opts.l2 = s.l2;
  opts.damping = 0.1;
  InfluenceScorer scorer(&s.model, &s.train, opts);
  Vec grad(s.model.num_params(), 1.0);
  EXPECT_TRUE(scorer.Prepare(grad).ok());
  EXPECT_GT(scorer.cg_iterations(), 0);
}

}  // namespace
}  // namespace rain
