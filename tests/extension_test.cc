/// Tests for the extension features beyond the paper's core: ORDER BY /
/// LIMIT and CSV dataset/table I/O.
#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "data/csv_io.h"
#include "gtest/gtest.h"
#include "provenance/prediction_store.h"
#include "relational/catalog.h"
#include "relational/executor.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace rain {
namespace {

class OrderLimitFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Table t(Schema({Field{"id", DataType::kInt64, ""},
                    Field{"score", DataType::kDouble, ""},
                    Field{"name", DataType::kString, ""}}));
    t.AppendRowUnchecked({Value(int64_t{0}), Value(3.0), Value(std::string("c"))});
    t.AppendRowUnchecked({Value(int64_t{1}), Value(1.0), Value(std::string("a"))});
    t.AppendRowUnchecked({Value(int64_t{2}), Value(2.0), Value(std::string("b"))});
    t.AppendRowUnchecked({Value(int64_t{3}), Value(2.0), Value(std::string("d"))});
    Matrix f(4, 2, 0.0);
    ASSERT_TRUE(
        catalog_.AddTable("items", std::move(t), Dataset(std::move(f), {0, 1, 1, 0}, 2))
            .ok());
    Matrix probs(4, 2);
    probs.SetRow(0, {0.9, 0.1});
    probs.SetRow(1, {0.2, 0.8});
    probs.SetRow(2, {0.3, 0.7});
    probs.SetRow(3, {0.6, 0.4});
    preds_.SetPredictions(0, std::move(probs));
  }

  Result<ExecResult> RunSql(const std::string& q, bool debug = false) {
    auto plan = sql::PlanQuery(q, catalog_);
    if (!plan.ok()) return plan.status();
    Executor ex(&catalog_, &preds_, &arena_);
    ExecOptions o;
    o.debug_mode = debug;
    return ex.Run(*plan, o);
  }

  Catalog catalog_;
  PredictionStore preds_;
  PolyArena arena_;
};

TEST_F(OrderLimitFixture, OrderByAscending) {
  auto r = RunSql("SELECT id, score FROM items ORDER BY score");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table.num_rows(), 4u);
  EXPECT_EQ(r->table.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(r->table.rows[3][0].AsInt64(), 0);
}

TEST_F(OrderLimitFixture, OrderByDescendingWithTieBreak) {
  auto r = RunSql("SELECT id FROM items ORDER BY score DESC, name ASC");
  ASSERT_TRUE(r.ok());
  // scores: 3(c,id0), 2(b,id2), 2(d,id3), 1(a,id1).
  EXPECT_EQ(r->table.rows[0][0].AsInt64(), 0);
  EXPECT_EQ(r->table.rows[1][0].AsInt64(), 2);
  EXPECT_EQ(r->table.rows[2][0].AsInt64(), 3);
  EXPECT_EQ(r->table.rows[3][0].AsInt64(), 1);
}

TEST_F(OrderLimitFixture, LimitTruncates) {
  auto r = RunSql("SELECT id FROM items ORDER BY score LIMIT 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->table.num_rows(), 2u);
  EXPECT_EQ(r->table.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(r->table.rows[1][0].AsInt64(), 2);
}

TEST_F(OrderLimitFixture, LimitLargerThanResultIsNoop) {
  auto r = RunSql("SELECT id FROM items LIMIT 99");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 4u);
}

TEST_F(OrderLimitFixture, OrderByOverAggregate) {
  auto r = RunSql(
      "SELECT name, COUNT(*) AS n FROM items GROUP BY name ORDER BY name DESC "
      "LIMIT 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table.num_rows(), 2u);
  EXPECT_EQ(r->table.rows[0][0].AsString(), "d");
  EXPECT_EQ(r->table.rows[1][0].AsString(), "c");
}

TEST_F(OrderLimitFixture, OrderByOverAggregatePermutesPolys) {
  auto r = RunSql(
      "SELECT name, COUNT(*) AS n FROM items WHERE predict(*) = 1 "
      "GROUP BY name ORDER BY name DESC",
      /*debug=*/true);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Every row's count polynomial must evaluate to the row's concrete cell
  // after the permutation.
  const Vec assign = preds_.ConcreteAssignment(arena_);
  for (size_t row = 0; row < r->table.num_rows(); ++row) {
    if (!r->table.concrete[row]) continue;
    const double poly_val = arena_.Evaluate(r->agg_polys[row][0], assign);
    EXPECT_DOUBLE_EQ(poly_val, static_cast<double>(r->table.rows[row][1].AsInt64()))
        << "row " << row;
  }
}

TEST_F(OrderLimitFixture, OrderByPredictionRejected) {
  auto r = RunSql("SELECT id FROM items ORDER BY predict(*)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnimplemented());
}

TEST_F(OrderLimitFixture, LimitOverDebugCandidatesRejected) {
  auto r = RunSql("SELECT id FROM items WHERE predict(*) = 1 LIMIT 1",
                  /*debug=*/true);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnimplemented());
}

TEST_F(OrderLimitFixture, ParserRejectsBadOrderLimit) {
  EXPECT_FALSE(RunSql("SELECT id FROM items ORDER score").ok());
  EXPECT_FALSE(RunSql("SELECT id FROM items LIMIT x").ok());
}

// ---------------------------------------------------------------------------
// CSV I/O.
// ---------------------------------------------------------------------------

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CsvIoTest, DatasetRoundTrip) {
  Rng rng(3);
  Matrix x(7, 3);
  std::vector<int> y(7);
  for (size_t i = 0; i < 7; ++i) {
    for (size_t f = 0; f < 3; ++f) x.At(i, f) = rng.Gaussian();
    y[i] = static_cast<int>(rng.UniformInt(2));
  }
  Dataset original(std::move(x), std::move(y), 2);

  const std::string path = TempPath("rain_dataset_roundtrip.csv");
  ASSERT_TRUE(WriteDatasetCsv(original, path).ok());
  auto loaded = ReadDatasetCsv(path, 2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_EQ(loaded->num_features(), original.num_features());
  EXPECT_EQ(loaded->labels(), original.labels());
  for (size_t i = 0; i < original.size(); ++i) {
    for (size_t f = 0; f < 3; ++f) {
      EXPECT_DOUBLE_EQ(loaded->features().At(i, f), original.features().At(i, f));
    }
  }
  std::remove(path.c_str());
}

TEST(CsvIoTest, DatasetRejectsMissingLabelColumn) {
  const std::string path = TempPath("rain_nolabel.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("a,b\n1,2\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadDatasetCsv(path, 2).ok());
  std::remove(path.c_str());
}

TEST(CsvIoTest, DatasetRejectsBadLabels) {
  const std::string path = TempPath("rain_badlabel.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("a,label\n1,5\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadDatasetCsv(path, 2).ok());
  std::remove(path.c_str());
}

TEST(CsvIoTest, DatasetRejectsRaggedRows) {
  const std::string path = TempPath("rain_ragged.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("a,label\n1,0\n2\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadDatasetCsv(path, 2).ok());
  std::remove(path.c_str());
}

TEST(CsvIoTest, TableRoundTripWithQuoting) {
  Table t(Schema({Field{"id", DataType::kInt64, ""},
                  Field{"note", DataType::kString, ""},
                  Field{"w", DataType::kDouble, ""},
                  Field{"ok", DataType::kBool, ""}}));
  t.AppendRowUnchecked({Value(int64_t{1}), Value(std::string("plain")), Value(1.5),
                        Value(true)});
  t.AppendRowUnchecked({Value(int64_t{2}), Value(std::string("has,comma")),
                        Value(-0.25), Value(false)});
  t.AppendRowUnchecked({Value(int64_t{3}), Value(std::string("say \"hi\"")),
                        Value(0.0), Value(true)});

  const std::string path = TempPath("rain_table_roundtrip.csv");
  ASSERT_TRUE(WriteTableCsv(t, path).ok());
  auto loaded = ReadTableCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 3u);
  EXPECT_EQ(loaded->Get(1, 1).AsString(), "has,comma");
  EXPECT_EQ(loaded->Get(2, 1).AsString(), "say \"hi\"");
  EXPECT_EQ(loaded->Get(2, 0).AsInt64(), 3);
  EXPECT_DOUBLE_EQ(loaded->Get(1, 2).AsDouble(), -0.25);
  EXPECT_TRUE(loaded->Get(2, 3).AsBool());
  std::remove(path.c_str());
}

TEST(CsvIoTest, TableRejectsUnknownType) {
  const std::string path = TempPath("rain_badtype.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("a:blob\nx\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadTableCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvIoTest, MissingFileIsNotFound) {
  auto r = ReadDatasetCsv("/nonexistent/rain.csv", 2);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

}  // namespace
}  // namespace rain
