#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"
#include "core/complaint.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "core/ranker.h"
#include "core/session.h"
#include "data/corruption.h"
#include "data/dblp.h"
#include "gtest/gtest.h"
#include "ml/logistic_regression.h"

namespace rain {
namespace {

TEST(MetricsTest, RecallCurveBasics) {
  // 4 corruptions {0,1,2,3}; deletions hit 2 of the first 4.
  auto curve = RecallCurve({0, 9, 1, 8}, {0, 1, 2, 3});
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0], 0.25);
  EXPECT_DOUBLE_EQ(curve[1], 0.25);
  EXPECT_DOUBLE_EQ(curve[2], 0.5);
  EXPECT_DOUBLE_EQ(curve[3], 0.5);
}

TEST(MetricsTest, PerfectRecallAuccrIsNearOne) {
  std::vector<size_t> deletions{0, 1, 2, 3, 4};
  std::vector<size_t> corrupted{0, 1, 2, 3, 4};
  const double auc = Auccr(deletions, corrupted);
  EXPECT_NEAR(auc, 1.0, 0.21);  // (2/K) sum k/K = (K+1)/K
  EXPECT_GE(auc, 1.0);
}

TEST(MetricsTest, ZeroRecallAuccrIsZero) {
  EXPECT_DOUBLE_EQ(Auccr({10, 11, 12}, {0, 1, 2}), 0.0);
}

TEST(MetricsTest, ShortDeletionSequencePads) {
  auto curve = RecallCurve({0}, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(curve[0], 0.25);
  EXPECT_DOUBLE_EQ(curve[3], 0.25);
}

TEST(MetricsTest, EmptyCorruptions) {
  EXPECT_TRUE(RecallCurve({1, 2}, {}).empty());
  EXPECT_DOUBLE_EQ(Auccr(std::vector<double>{}), 0.0);
}

/// End-to-end fixture: a DBLP-style pipeline with systematic corruptions
/// and a COUNT query.
class CoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DblpConfig cfg;
    cfg.train_size = 400;
    cfg.query_size = 200;
    cfg.seed = 99;
    DblpData dblp = MakeDblp(cfg);
    true_count_ = 0;
    for (size_t i = 0; i < dblp.query.size(); ++i) true_count_ += dblp.query.label(i);

    Rng rng(3);
    corrupted_ = CorruptLabels(&dblp.train, IndicesWithLabel(dblp.train, 1), 0.5, 0,
                               &rng);

    Catalog catalog;
    ASSERT_TRUE(
        catalog.AddTable("dblp", std::move(dblp.query_table), std::move(dblp.query))
            .ok());
    auto model = std::make_unique<LogisticRegression>(kDblpFeatures);
    TrainConfig tc;
    tc.l2 = 1e-3;
    pipeline_ = std::make_unique<Query2Pipeline>(std::move(catalog), std::move(model),
                                                 std::move(dblp.train), tc);
    ASSERT_TRUE(pipeline_->Train().ok());
  }

  PlanPtr CountQuery() {
    return PlanNode::Aggregate(
        PlanNode::Filter(PlanNode::Scan("dblp", "D"),
                         Expr::Eq(Expr::Predict("D"), Expr::LitInt(1))),
        {}, {}, {AggSpec{AggFunc::kCount, nullptr, "cnt"}});
  }

  std::unique_ptr<Query2Pipeline> pipeline_;
  std::vector<size_t> corrupted_;
  int64_t true_count_ = 0;
};

TEST_F(CoreFixture, PipelineExecutesSqlAndPlans) {
  auto via_sql =
      pipeline_->ExecuteSql("SELECT COUNT(*) AS cnt FROM dblp WHERE predict(*) = 1",
                            /*debug=*/false);
  ASSERT_TRUE(via_sql.ok());
  auto via_plan = pipeline_->Execute(CountQuery(), /*debug=*/false);
  ASSERT_TRUE(via_plan.ok());
  EXPECT_EQ(via_sql->table.rows[0][0].AsInt64(), via_plan->table.rows[0][0].AsInt64());
}

TEST_F(CoreFixture, CorruptionSuppressesCount) {
  auto r = pipeline_->Execute(CountQuery(), false);
  ASSERT_TRUE(r.ok());
  // Half the match labels were flipped to non-match, so the model
  // under-predicts matches.
  EXPECT_LT(r->table.rows[0][0].AsInt64(), true_count_);
}

TEST_F(CoreFixture, ValueComplaintBinds) {
  auto r = pipeline_->Execute(CountQuery(), true);
  ASSERT_TRUE(r.ok());
  auto spec = ComplaintSpec::ValueEq("cnt", static_cast<double>(true_count_));
  auto bound = BindComplaint(spec, *r, pipeline_->arena(), pipeline_->predictions(),
                             pipeline_->catalog());
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->size(), 1u);
  EXPECT_TRUE((*bound)[0].violated);
  EXPECT_NE((*bound)[0].poly, kInvalidPoly);
  EXPECT_LT((*bound)[0].current, (*bound)[0].target);
}

TEST_F(CoreFixture, SatisfiedInequalityComplaintNotViolated) {
  auto r = pipeline_->Execute(CountQuery(), true);
  ASSERT_TRUE(r.ok());
  auto spec = ComplaintSpec::ValueGe("cnt", 0.0);  // trivially satisfied
  auto bound = BindComplaint(spec, *r, pipeline_->arena(), pipeline_->predictions(),
                             pipeline_->catalog());
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE((*bound)[0].violated);
}

TEST_F(CoreFixture, UnknownAggregateNameFails) {
  auto r = pipeline_->Execute(CountQuery(), true);
  ASSERT_TRUE(r.ok());
  auto spec = ComplaintSpec::ValueEq("missing", 1.0);
  EXPECT_FALSE(BindComplaint(spec, *r, pipeline_->arena(), pipeline_->predictions(),
                             pipeline_->catalog())
                   .ok());
}

TEST_F(CoreFixture, PointComplaintBinds) {
  auto spec = ComplaintSpec::Point("dblp", 3, 1);
  ExecResult dummy;
  auto bound = BindComplaint(spec, dummy, pipeline_->arena(),
                             pipeline_->predictions(), pipeline_->catalog());
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->size(), 1u);
  EXPECT_EQ(pipeline_->arena()->node((*bound)[0].poly).op, PolyOp::kVar);
}

TEST_F(CoreFixture, PointComplaintRangeChecks) {
  ExecResult dummy;
  EXPECT_FALSE(BindComplaint(ComplaintSpec::Point("dblp", 1 << 20, 1), dummy,
                             pipeline_->arena(), pipeline_->predictions(),
                             pipeline_->catalog())
                   .ok());
  EXPECT_FALSE(BindComplaint(ComplaintSpec::Point("dblp", 0, 7), dummy,
                             pipeline_->arena(), pipeline_->predictions(),
                             pipeline_->catalog())
                   .ok());
  EXPECT_FALSE(BindComplaint(ComplaintSpec::Point("nope", 0, 1), dummy,
                             pipeline_->arena(), pipeline_->predictions(),
                             pipeline_->catalog())
                   .ok());
}

// Regression: multi-query failures must be attributable. The error for a
// missing feature dataset / out-of-range row names the table and row
// instead of the old anonymous "queried table lacks a feature dataset".
TEST_F(CoreFixture, AccumulateProbaGradientsErrorsNameTableAndRow) {
  std::map<std::pair<int32_t, int64_t>, Vec> weights;
  Vec grad(pipeline_->model()->num_params(), 0.0);

  // Unknown table id.
  weights[{42, 7}] = Vec{1.0, 0.0};
  Status unknown = AccumulateProbaGradients(pipeline_->catalog(),
                                            *pipeline_->model(), weights, &grad);
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.message().find("id=42"), std::string::npos) << unknown.message();
  EXPECT_NE(unknown.message().find("7"), std::string::npos) << unknown.message();

  // Row out of range on a real table: names the table and both numbers.
  weights.clear();
  weights[{0, 123456}] = Vec{1.0, 0.0};
  Status oor = AccumulateProbaGradients(pipeline_->catalog(), *pipeline_->model(),
                                        weights, &grad);
  ASSERT_FALSE(oor.ok());
  EXPECT_TRUE(oor.IsOutOfRange());
  EXPECT_NE(oor.message().find("123456"), std::string::npos) << oor.message();
  EXPECT_NE(oor.message().find("dblp"), std::string::npos) << oor.message();

  // A failed call never leaves grad partially accumulated.
  for (double g : grad) EXPECT_EQ(g, 0.0);
}

TEST_F(CoreFixture, AccumulateProbaGradientsErrorNamesTableWithoutFeatures) {
  // A catalog table registered without features cannot back-propagate; the
  // message must say which table and which row wanted it.
  Catalog catalog;
  Table plain;  // empty relational table, no feature dataset
  ASSERT_TRUE(catalog.AddTable("no_features", std::move(plain)).ok());
  std::map<std::pair<int32_t, int64_t>, Vec> weights;
  weights[{0, 5}] = Vec{1.0};
  Vec grad(pipeline_->model()->num_params(), 0.0);
  Status s =
      AccumulateProbaGradients(catalog, *pipeline_->model(), weights, &grad);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInternal());
  EXPECT_NE(s.message().find("no_features"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("row 5"), std::string::npos) << s.message();
}

TEST_F(CoreFixture, AccumulateProbaGradientsParallelMatchesSequentialBitwise) {
  // Seeds over several hundred rows (crossing the internal row-block
  // size): the per-row-partial parallel reduction must reproduce the
  // sequential accumulation bit for bit at every worker count.
  std::map<std::pair<int32_t, int64_t>, Vec> weights;
  const int64_t num_rows =
      static_cast<int64_t>(pipeline_->catalog().FindById(0)->features->size());
  for (int64_t row = 0; row < num_rows; ++row) {
    weights[{0, row}] = Vec{0.01 * static_cast<double>(row + 1),
                            -0.02 * static_cast<double>(row + 1)};
  }
  ASSERT_GT(num_rows, 128) << "must cross the internal row-block size";
  Vec seq(pipeline_->model()->num_params(), 0.5);  // nonzero start: accumulate
  ASSERT_TRUE(AccumulateProbaGradients(pipeline_->catalog(), *pipeline_->model(),
                                       weights, &seq, 1)
                  .ok());
  for (int threads : {2, 4, 8}) {
    Vec par(pipeline_->model()->num_params(), 0.5);
    ASSERT_TRUE(AccumulateProbaGradients(pipeline_->catalog(), *pipeline_->model(),
                                         weights, &par, threads)
                    .ok());
    EXPECT_EQ(par, seq) << "threads " << threads;
  }
}

TEST_F(CoreFixture, SelectApproachHeuristic) {
  auto r = pipeline_->Execute(CountQuery(), true);
  ASSERT_TRUE(r.ok());
  auto agg = BindComplaint(ComplaintSpec::ValueEq("cnt", 1.0), *r, pipeline_->arena(),
                           pipeline_->predictions(), pipeline_->catalog());
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(SelectApproach(*pipeline_->arena(), *agg), Approach::kHolistic);

  ExecResult dummy;
  auto pt = BindComplaint(ComplaintSpec::Point("dblp", 0, 1), dummy,
                          pipeline_->arena(), pipeline_->predictions(),
                          pipeline_->catalog());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(SelectApproach(*pipeline_->arena(), *pt), Approach::kTwoStep);
}

TEST_F(CoreFixture, MakeRankerFactory) {
  for (const char* name : {"loss", "infloss", "twostep", "holistic"}) {
    auto r = MakeRanker(name);
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_EQ((*r)->name(), name);
  }
  EXPECT_FALSE(MakeRanker("alchemy").ok());
}

TEST_F(CoreFixture, HolisticDebuggerRecoversCorruptions) {
  QueryComplaints qc;
  qc.query = CountQuery();
  qc.complaints = {ComplaintSpec::ValueEq("cnt", static_cast<double>(true_count_))};
  auto session = DebugSessionBuilder(pipeline_.get())
                     .ranker(MakeHolisticRanker())
                     .top_k_per_iter(20)
                     .max_deletions(static_cast<int>(corrupted_.size()))
                     .workload({qc})
                     .Build();
  ASSERT_TRUE(session.ok());
  auto report = (*session)->RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deletions.size(), corrupted_.size());
  const double auc = Auccr(report->deletions, corrupted_);
  EXPECT_GT(auc, 0.8) << "Holistic should recover systematic corruptions";
  // Timings recorded for every iteration.
  ASSERT_FALSE(report->iterations.empty());
  EXPECT_GT(report->iterations[0].train_seconds, 0.0);
}

TEST_F(CoreFixture, LossRankerUnderperformsHolistic) {
  QueryComplaints qc;
  qc.query = CountQuery();
  qc.complaints = {ComplaintSpec::ValueEq("cnt", static_cast<double>(true_count_))};
  auto run_with = [&](const std::string& method) {
    auto session = DebugSessionBuilder(pipeline_.get())
                       .ranker(method)
                       .top_k_per_iter(20)
                       .max_deletions(static_cast<int>(corrupted_.size()))
                       .workload({qc})
                       .Build();
    RAIN_CHECK(session.ok());
    return (*session)->RunToCompletion();
  };
  auto loss_report = run_with("loss");
  ASSERT_TRUE(loss_report.ok());
  const double loss_auc = Auccr(loss_report->deletions, corrupted_);

  pipeline_->train_data()->ReactivateAll();
  auto hol_report = run_with("holistic");
  ASSERT_TRUE(hol_report.ok());
  const double hol_auc = Auccr(hol_report->deletions, corrupted_);
  EXPECT_GT(hol_auc, loss_auc);
}

TEST_F(CoreFixture, DebuggerStopsWhenResolved) {
  QueryComplaints qc;
  qc.query = CountQuery();
  // Complain with the *current* (already satisfied) count: resolves at once.
  auto r = pipeline_->Execute(CountQuery(), false);
  ASSERT_TRUE(r.ok());
  qc.complaints = {ComplaintSpec::ValueEq(
      "cnt", static_cast<double>(r->table.rows[0][0].AsInt64()))};
  auto session = DebugSessionBuilder(pipeline_.get())
                     .ranker(MakeHolisticRanker())
                     .top_k_per_iter(10)
                     .max_deletions(1000)
                     .stop_when_resolved()
                     .workload({qc})
                     .Build();
  ASSERT_TRUE(session.ok());
  auto report = (*session)->RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->complaints_resolved);
  EXPECT_TRUE(report->deletions.empty());
  EXPECT_TRUE((*session)->finished());
  EXPECT_EQ((*session)->finish_status(), StepStatus::kResolved);
}

TEST_F(CoreFixture, TwoStepRankerRunsOnCountComplaint) {
  QueryComplaints qc;
  qc.query = CountQuery();
  qc.complaints = {ComplaintSpec::ValueEq("cnt", static_cast<double>(true_count_))};
  auto session = DebugSessionBuilder(pipeline_.get())
                     .ranker(MakeTwoStepRanker())
                     .top_k_per_iter(20)
                     .max_deletions(40)
                     .workload({qc})
                     .Build();
  ASSERT_TRUE(session.ok());
  auto report = (*session)->RunToCompletion();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->deletions.size(), 40u);
}

TEST_F(CoreFixture, DeletionsAreDistinctAndDeactivated) {
  QueryComplaints qc;
  qc.query = CountQuery();
  qc.complaints = {ComplaintSpec::ValueEq("cnt", static_cast<double>(true_count_))};
  auto session = DebugSessionBuilder(pipeline_.get())
                     .ranker(MakeLossRanker())
                     .top_k_per_iter(10)
                     .max_deletions(30)
                     .workload({qc})
                     .Build();
  ASSERT_TRUE(session.ok());
  auto report = (*session)->RunToCompletion();
  ASSERT_TRUE(report.ok());
  std::set<size_t> uniq(report->deletions.begin(), report->deletions.end());
  EXPECT_EQ(uniq.size(), report->deletions.size());
  for (size_t i : report->deletions) {
    EXPECT_FALSE(pipeline_->train_data()->active(i));
  }
}

}  // namespace
}  // namespace rain
