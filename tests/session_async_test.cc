/// Pipelined (async) DebugSession semantics: the speculation/replay
/// pipeline must produce deletion sequences bitwise-identical to
/// synchronous stepping on the Fig. 5 DBLP and the Section 6.5 Adult
/// multi-query workloads at every worker count, with the phase overlap
/// (iteration i+1's train starting before iteration i's fix completes)
/// actually observed; observer callbacks must arrive in the same
/// deterministic order as synchronous stepping, and cancellation — from
/// observers, or mid-train via the token plumbed into the L-BFGS loop —
/// must be honored promptly.
#include <atomic>
#include <cstdlib>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/complaint.h"
#include "core/debugger.h"
#include "core/pipeline.h"
#include "core/session.h"
#include "data/adult.h"
#include "data/corruption.h"
#include "data/dblp.h"
#include "gtest/gtest.h"
#include "ml/logistic_regression.h"
#include "sql/planner.h"

namespace rain {
namespace {

// ------------------------------------------------- Fig. 5 DBLP workload

/// The Fig. 5 runtime workload, scaled to test size: DBLP with 50% of the
/// match labels flipped, complained about through a COUNT query.
/// Construction is fully seeded, so two setups are bit-identical.
struct DblpSetup {
  std::unique_ptr<Query2Pipeline> pipeline;
  int64_t true_count = 0;
};

DblpSetup MakeCorruptedDblp(bool pretrain = true) {
  DblpConfig cfg;
  cfg.train_size = 400;
  cfg.query_size = 200;
  cfg.seed = 99;
  DblpData dblp = MakeDblp(cfg);
  DblpSetup setup;
  for (size_t i = 0; i < dblp.query.size(); ++i) {
    setup.true_count += dblp.query.label(i);
  }
  Rng rng(3);
  CorruptLabels(&dblp.train, IndicesWithLabel(dblp.train, 1), 0.5, 0, &rng);
  Catalog catalog;
  RAIN_CHECK(
      catalog.AddTable("dblp", std::move(dblp.query_table), std::move(dblp.query))
          .ok());
  TrainConfig tc;
  tc.l2 = 1e-3;
  setup.pipeline = std::make_unique<Query2Pipeline>(
      std::move(catalog), std::make_unique<LogisticRegression>(kDblpFeatures),
      std::move(dblp.train), tc);
  if (pretrain) RAIN_CHECK(setup.pipeline->Train().ok());
  return setup;
}

QueryComplaints DblpCountComplaint(double target) {
  QueryComplaints qc;
  qc.query = PlanNode::Aggregate(
      PlanNode::Filter(PlanNode::Scan("dblp", "D"),
                       Expr::Eq(Expr::Predict("D"), Expr::LitInt(1))),
      {}, {}, {AggSpec{AggFunc::kCount, nullptr, "cnt"}});
  qc.complaints = {ComplaintSpec::ValueEq("cnt", target)};
  return qc;
}

// -------------------------------------- Section 6.5 Adult multi-query

/// A scaled-down AdultMultiQuery("both", 0.3) (bench/workloads.cc): two
/// grouped-AVG queries with ground-truth targets from a clean pipeline,
/// plus a batch of point complaints, over the same corrupted training
/// set. Fully seeded: every call builds bit-identical state.
struct AdultSetup {
  std::vector<QueryComplaints> workload;
  /// Fresh, identical corrupted pipelines (one per session under test).
  std::function<std::unique_ptr<Query2Pipeline>()> make_pipeline;
};

double GroupValue(Query2Pipeline* pipeline, const std::string& sql,
                  const Value& key) {
  auto r = pipeline->ExecuteSql(sql, /*debug=*/false);
  RAIN_CHECK(r.ok()) << r.status().ToString();
  for (const auto& row : r->table.rows) {
    if (row[0] == key) return *row[1].ToNumeric();
  }
  RAIN_CHECK(false) << "group not found";
  return 0.0;
}

AdultSetup MakeAdultMultiQuery() {
  AdultConfig cfg;
  cfg.train_size = 600;
  cfg.query_size = 400;
  cfg.seed = 13;
  AdultData data = MakeAdult(cfg);

  const std::string gender_sql =
      "SELECT gender, AVG(predict(*)) AS avg_income FROM adult GROUP BY gender";
  const std::string age_sql =
      "SELECT agedecade, AVG(predict(*)) AS avg_income FROM adult GROUP BY agedecade";

  auto factory = [](const AdultData& d) {
    return [table = d.query_table, query = d.query, train = d.train]() {
      Catalog catalog;
      RAIN_CHECK(catalog.AddTable("adult", table, query).ok());
      TrainConfig tc;
      tc.l2 = 1e-3;
      return std::make_unique<Query2Pipeline>(
          std::move(catalog), std::make_unique<LogisticRegression>(kAdultFeatures),
          train, tc);
    };
  };

  // Ground-truth targets from the clean pipeline (Section 6.1.4).
  double male_target = 0.0;
  double aged_target = 0.0;
  {
    auto clean = factory(data)();
    RAIN_CHECK(clean->Train().ok());
    male_target = GroupValue(clean.get(), gender_sql, Value(std::string("Male")));
    aged_target = GroupValue(clean.get(), age_sql, Value(int64_t{4}));
  }

  Rng rng(cfg.seed + 1);
  CorruptLabels(&data.train, AdultCorruptionCandidates(data), 0.3, 1, &rng);

  AdultSetup setup;
  setup.make_pipeline = factory(data);
  auto planning = setup.make_pipeline();  // catalog for SQL planning only

  QueryComplaints gender_qc;
  gender_qc.query = *sql::PlanQuery(gender_sql, planning->catalog());
  gender_qc.complaints = {ComplaintSpec::ValueEq("avg_income", male_target,
                                                 {Value(std::string("Male"))})};
  QueryComplaints age_qc;
  age_qc.query = *sql::PlanQuery(age_sql, planning->catalog());
  age_qc.complaints = {
      ComplaintSpec::ValueEq("avg_income", aged_target, {Value(int64_t{4})})};
  QueryComplaints points;  // no query: bind directly against predictions
  points.complaints = {ComplaintSpec::Point("adult", 3, 0),
                       ComplaintSpec::Point("adult", 11, 0)};
  setup.workload = {gender_qc, age_qc, points};
  return setup;
}

// ------------------------------------------- bitwise async-equivalence

Result<std::unique_ptr<DebugSession>> BuildSession(
    Query2Pipeline* pipeline, std::vector<QueryComplaints> workload, int threads,
    int max_deletions, DebugObserver* observer = nullptr) {
  DebugSessionBuilder builder(pipeline);
  ExecutionOptions exec;
  exec.set_parallelism(threads);
  // RAIN_TEST_SHARDS (the CI sharded leg sets 4) runs the whole async
  // suite sharded; results are bitwise-identical either way.
  if (const char* env = std::getenv("RAIN_TEST_SHARDS")) {
    exec.set_num_shards(std::atoi(env));
  }
  if (observer != nullptr) exec.add_observer(observer);
  builder.ranker("holistic")
      .top_k_per_iter(10)
      .max_deletions(max_deletions)
      .set_execution(std::move(exec))
      .workload(std::move(workload));
  return builder.Build();
}

TEST(SessionAsyncTest, BitwiseIdenticalToSyncOnDblpAtEveryWorkerCount) {
  for (int threads : {1, 2, 8}) {
    DblpSetup sync_side = MakeCorruptedDblp();
    DblpSetup async_side = MakeCorruptedDblp();
    const auto target = static_cast<double>(sync_side.true_count);

    auto sync_session = BuildSession(sync_side.pipeline.get(),
                                     {DblpCountComplaint(target)}, threads, 30);
    ASSERT_TRUE(sync_session.ok());
    auto sync_report = (*sync_session)->RunToCompletion();
    ASSERT_TRUE(sync_report.ok());

    auto async_session = BuildSession(async_side.pipeline.get(),
                                      {DblpCountComplaint(target)}, threads, 30);
    ASSERT_TRUE(async_session.ok());
    auto async_report = (*async_session)->RunToCompletionAsync().Get();
    ASSERT_TRUE(async_report.ok()) << async_report.status().ToString();

    EXPECT_EQ(async_report->deletions, sync_report->deletions)
        << "threads " << threads
        << ": pipelined deletions must be bitwise identical";
    ASSERT_EQ(async_report->iterations.size(), sync_report->iterations.size())
        << "threads " << threads;
    for (size_t i = 0; i < sync_report->iterations.size(); ++i) {
      EXPECT_EQ(async_report->iterations[i].deletions_after,
                sync_report->iterations[i].deletions_after)
          << "threads " << threads << " iteration " << i;
      EXPECT_EQ(async_report->iterations[i].violated_complaints,
                sync_report->iterations[i].violated_complaints)
          << "threads " << threads << " iteration " << i;
    }
    EXPECT_GE((*async_session)->async_stats().speculations_launched, 1)
        << "threads " << threads;
    // Regardless of commit vs replay, both sessions must end at the same
    // trained model (bind/rank consumed identical state throughout).
    EXPECT_EQ(async_side.pipeline->model()->params(),
              sync_side.pipeline->model()->params())
        << "threads " << threads;
  }
}

TEST(SessionAsyncTest, BitwiseIdenticalToSyncOnAdultMultiQuery) {
  AdultSetup setup = MakeAdultMultiQuery();
  for (int threads : {1, 2, 8}) {
    auto sync_pipeline = setup.make_pipeline();
    ASSERT_TRUE(sync_pipeline->Train().ok());
    auto sync_session =
        BuildSession(sync_pipeline.get(), setup.workload, threads, 20);
    ASSERT_TRUE(sync_session.ok());
    auto sync_report = (*sync_session)->RunToCompletion();
    ASSERT_TRUE(sync_report.ok());
    ASSERT_FALSE(sync_report->deletions.empty());

    auto async_pipeline = setup.make_pipeline();
    ASSERT_TRUE(async_pipeline->Train().ok());
    auto async_session =
        BuildSession(async_pipeline.get(), setup.workload, threads, 20);
    ASSERT_TRUE(async_session.ok());
    auto async_report = (*async_session)->RunToCompletionAsync().Get();
    ASSERT_TRUE(async_report.ok()) << async_report.status().ToString();

    EXPECT_EQ(async_report->deletions, sync_report->deletions)
        << "threads " << threads;
    EXPECT_EQ(async_report->iterations.size(), sync_report->iterations.size())
        << "threads " << threads;
  }
}

TEST(SessionAsyncTest, SpeculationOverlapsTrainWithPreviousFix) {
  DblpSetup setup = MakeCorruptedDblp();
  auto session =
      BuildSession(setup.pipeline.get(),
                   {DblpCountComplaint(static_cast<double>(setup.true_count))},
                   /*threads=*/2, /*max_deletions=*/30);
  ASSERT_TRUE(session.ok());
  auto report = (*session)->RunToCompletionAsync().Get();
  ASSERT_TRUE(report.ok());

  const AsyncStats& stats = (*session)->async_stats();
  // 3 iterations of 10 deletions: speculation launches during rank 1 —
  // rank 0 has no prior scores to predict from (the empty-prediction
  // gate skips it) and rank 2's prediction would exhaust the budget.
  EXPECT_GE(stats.speculations_launched, 1);
  // The acceptance assertion: iteration i+1's train started before
  // iteration i's fix completed, for every launched speculation.
  EXPECT_GE(stats.overlapped_iterations, 1);
  EXPECT_EQ(stats.overlapped_iterations, stats.speculations_launched);
  // Every launched speculation was consumed one way or the other.
  EXPECT_EQ(stats.speculations_committed + stats.speculations_replayed,
            stats.speculations_launched);
}

/// Scores fixed a priori (descending by record id), independent of the
/// model: the fix selection is then identical every iteration, so the
/// deletion predictor is right from iteration 1 on and the speculative
/// train COMMITS — exercising the adopt-parameters path deterministically.
class FixedScoreRanker : public Ranker {
 public:
  std::string name() const override { return "fixed"; }
  Result<RankOutput> Rank(const RankContext& ctx) override {
    RankOutput out;
    const size_t n = ctx.train->size();
    out.scores.resize(n);
    for (size_t i = 0; i < n; ++i) {
      out.scores[i] = static_cast<double>(n - i);
    }
    return out;
  }
};

TEST(SessionAsyncTest, CommittedSpeculationAdoptsBitwiseIdenticalModel) {
  DblpSetup sync_side = MakeCorruptedDblp();
  DblpSetup async_side = MakeCorruptedDblp();
  const auto target = static_cast<double>(sync_side.true_count);

  auto build = [&](Query2Pipeline* pipeline) {
    return DebugSessionBuilder(pipeline)
        .ranker(std::make_unique<FixedScoreRanker>())
        .top_k_per_iter(10)
        .max_deletions(30)
        .workload({DblpCountComplaint(target)})
        .Build();
  };
  auto sync_session = build(sync_side.pipeline.get());
  auto async_session = build(async_side.pipeline.get());
  ASSERT_TRUE(sync_session.ok() && async_session.ok());

  auto sync_report = (*sync_session)->RunToCompletion();
  auto async_report = (*async_session)->RunToCompletionAsync().Get();
  ASSERT_TRUE(sync_report.ok());
  ASSERT_TRUE(async_report.ok());

  // Iteration 1's prediction (from iteration 0's fixed scores) matches
  // the actual fix exactly, so at least one speculation commits.
  EXPECT_GE((*async_session)->async_stats().speculations_committed, 1);
  EXPECT_EQ(async_report->deletions, sync_report->deletions);
  // The committed clone-trained parameters (and the prediction views the
  // bind phase sees) must be bitwise what the synchronous retrain
  // produced — same warm start, same active rows, same L-BFGS.
  EXPECT_EQ(async_side.pipeline->model()->params(),
            sync_side.pipeline->model()->params());
  ASSERT_EQ(async_report->iterations.size(), sync_report->iterations.size());
  for (size_t i = 0; i < sync_report->iterations.size(); ++i) {
    EXPECT_EQ(async_report->iterations[i].violated_complaints,
              sync_report->iterations[i].violated_complaints)
        << "iteration " << i << ": bind must see identical prediction views";
  }
}

TEST(SessionAsyncTest, SpeculationDisabledStillMatchesSync) {
  DblpSetup sync_side = MakeCorruptedDblp();
  DblpSetup async_side = MakeCorruptedDblp();
  const auto target = static_cast<double>(sync_side.true_count);

  auto sync_session =
      BuildSession(sync_side.pipeline.get(), {DblpCountComplaint(target)}, 1, 20);
  ASSERT_TRUE(sync_session.ok());
  auto sync_report = (*sync_session)->RunToCompletion();
  ASSERT_TRUE(sync_report.ok());

  auto async_session =
      BuildSession(async_side.pipeline.get(), {DblpCountComplaint(target)}, 1, 20);
  ASSERT_TRUE(async_session.ok());
  AsyncOptions options;
  options.speculate = false;
  auto async_report =
      (*async_session)->RunToCompletionAsync(StopCondition(), options).Get();
  ASSERT_TRUE(async_report.ok());
  EXPECT_EQ(async_report->deletions, sync_report->deletions);
  EXPECT_EQ((*async_session)->async_stats().speculations_launched, 0);
  EXPECT_EQ((*async_session)->async_stats().overlapped_iterations, 0);
}

// ---------------------------------------------------- observer semantics

/// Records every callback as a compact tag, e.g. "start:0", "train:0",
/// "del:0".
class RecordingObserver : public DebugObserver {
 public:
  void OnIterationStart(int iteration, const DebugReport&) override {
    events.push_back("start:" + std::to_string(iteration));
  }
  void OnPhaseComplete(int iteration, DebugPhase phase, double) override {
    events.push_back(std::string(DebugPhaseName(phase)) + ":" +
                     std::to_string(iteration));
  }
  void OnDeletion(int iteration, size_t, double) override {
    events.push_back("del:" + std::to_string(iteration));
  }
  std::vector<std::string> events;
};

TEST(SessionAsyncTest, ObserverOrderIdenticalToSyncStepping) {
  DblpSetup sync_side = MakeCorruptedDblp();
  DblpSetup async_side = MakeCorruptedDblp();
  const auto target = static_cast<double>(sync_side.true_count);

  RecordingObserver sync_recorder;
  auto sync_session = BuildSession(sync_side.pipeline.get(),
                                   {DblpCountComplaint(target)}, 2, 20,
                                   &sync_recorder);
  ASSERT_TRUE(sync_session.ok());
  ASSERT_TRUE((*sync_session)->RunToCompletion().ok());

  RecordingObserver async_recorder;
  auto async_session = BuildSession(async_side.pipeline.get(),
                                    {DblpCountComplaint(target)}, 2, 20,
                                    &async_recorder);
  ASSERT_TRUE(async_session.ok());
  ASSERT_TRUE((*async_session)->RunToCompletionAsync().Get().ok());

  // Speculative work must never leak into the observer stream: the async
  // event sequence is exactly the synchronous one — including the
  // speculated train phases, delivered at their canonical slots.
  EXPECT_EQ(async_recorder.events, sync_recorder.events);

  // And that shared sequence is the canonical per-iteration stream.
  std::vector<std::string> expected;
  for (int iter = 0; iter < 2; ++iter) {
    const std::string i = std::to_string(iter);
    expected.push_back("start:" + i);
    expected.push_back("train:" + i);
    expected.push_back("bind:" + i);
    expected.push_back("rank:" + i);
    for (int d = 0; d < 10; ++d) expected.push_back("del:" + i);
    expected.push_back("fix:" + i);
  }
  EXPECT_EQ(sync_recorder.events, expected);
}

/// Cancels the session from inside a callback once `phase` completes.
class CancelAfterPhase : public DebugObserver {
 public:
  CancelAfterPhase(DebugSession** session, DebugPhase phase)
      : session_(session), phase_(phase) {}
  void OnPhaseComplete(int, DebugPhase phase, double) override {
    if (phase == phase_) (*session_)->Cancel();
  }

 private:
  DebugSession** session_;
  DebugPhase phase_;
};

TEST(SessionAsyncTest, ObserverCancelFromCallbackHonoredOnAsyncPath) {
  DblpSetup setup = MakeCorruptedDblp();
  DebugSession* raw = nullptr;
  CancelAfterPhase canceller(&raw, DebugPhase::kTrain);
  auto session =
      BuildSession(setup.pipeline.get(),
                   {DblpCountComplaint(static_cast<double>(setup.true_count))}, 1,
                   50, &canceller);
  ASSERT_TRUE(session.ok());
  raw = session->get();

  auto report = (*session)->RunToCompletionAsync().Get();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE((*session)->finished());
  EXPECT_EQ((*session)->finish_status(), StepStatus::kCancelled);
  ASSERT_EQ(report->iterations.size(), 1u);
  EXPECT_TRUE(report->deletions.empty());
  EXPECT_NE(report->iterations[0].note.find("cancelled after train"),
            std::string::npos)
      << "note: " << report->iterations[0].note;
}

// ------------------------------------------------ mid-phase cancellation

/// Forwards everything to an inner LogisticRegression, counting
/// per-example gradient calls; once the count passes `cancel_after` (and
/// a session is attached), cancels the session MID-train — the
/// regression for in-loop token polling.
class CancellingModel : public Model {
 public:
  CancellingModel(std::unique_ptr<Model> inner, int cancel_after,
                  std::atomic<int>* calls)
      : inner_(std::move(inner)), cancel_after_(cancel_after), calls_(calls) {}

  void set_session(DebugSession* session) { session_ = session; }

  int num_classes() const override { return inner_->num_classes(); }
  size_t num_features() const override { return inner_->num_features(); }
  size_t num_params() const override { return inner_->num_params(); }
  const Vec& params() const override { return inner_->params(); }
  void set_params(const Vec& theta) override { inner_->set_params(theta); }
  void PredictProba(const double* x, double* probs) const override {
    inner_->PredictProba(x, probs);
  }
  double ExampleLoss(const double* x, int y) const override {
    return inner_->ExampleLoss(x, y);
  }
  void AddExampleLossGradient(const double* x, int y, Vec* grad) const override {
    const int n = ++*calls_;
    if (session_ != nullptr && n >= cancel_after_) session_->Cancel();
    inner_->AddExampleLossGradient(x, y, grad);
  }
  void AddProbaGradient(const double* x, const Vec& class_weights,
                        Vec* grad) const override {
    inner_->AddProbaGradient(x, class_weights, grad);
  }
  void HessianVectorProduct(const Dataset& data, const Vec& v, double l2,
                            Vec* out) const override {
    inner_->HessianVectorProduct(data, v, l2, out);
  }
  std::unique_ptr<Model> Clone() const override {
    auto clone =
        std::make_unique<CancellingModel>(inner_->Clone(), cancel_after_, calls_);
    clone->session_ = session_;
    return clone;
  }

 private:
  std::unique_ptr<Model> inner_;
  int cancel_after_;
  std::atomic<int>* calls_;
  DebugSession* session_ = nullptr;
};

TEST(SessionAsyncTest, CancelMidTrainStopsWithinOneOptimizerRound) {
  // Fresh (never-trained) pipeline so the first TrainPhase has real work;
  // the model cancels the session 50 gradient rows into the very first
  // objective evaluation.
  DblpConfig cfg;
  cfg.train_size = 400;
  cfg.query_size = 200;
  cfg.seed = 99;
  DblpData dblp = MakeDblp(cfg);
  Rng rng(3);
  CorruptLabels(&dblp.train, IndicesWithLabel(dblp.train, 1), 0.5, 0, &rng);
  Catalog catalog;
  RAIN_CHECK(
      catalog.AddTable("dblp", std::move(dblp.query_table), std::move(dblp.query))
          .ok());
  std::atomic<int> calls{0};
  auto model = std::make_unique<CancellingModel>(
      std::make_unique<LogisticRegression>(kDblpFeatures), /*cancel_after=*/50,
      &calls);
  CancellingModel* raw_model = model.get();
  auto pipeline = std::make_unique<Query2Pipeline>(std::move(catalog),
                                                   std::move(model), dblp.train);

  auto session = BuildSession(pipeline.get(), {DblpCountComplaint(100)}, 1, 50);
  ASSERT_TRUE(session.ok());
  raw_model->set_session(session->get());

  auto step = (*session)->Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->status, StepStatus::kCancelled);
  EXPECT_TRUE((*session)->finished());

  // Cancelled mid-evaluation at call 50; the L-BFGS loop polls the token
  // at the head of the next iteration, so exactly the one in-flight
  // 400-row evaluation completes — nothing close to a full 300-iteration
  // train (which costs tens of thousands of gradient calls).
  EXPECT_LE(calls.load(), 450);

  // The partial iteration is still recorded, and the note pins down both
  // that training stopped mid-optimization and where the step ended.
  const DebugReport& report = (*session)->report();
  ASSERT_EQ(report.iterations.size(), 1u);
  EXPECT_TRUE(report.deletions.empty());
  EXPECT_NE(report.iterations[0].note.find("train stopped mid-optimization"),
            std::string::npos)
      << "note: " << report.iterations[0].note;
  EXPECT_NE(report.iterations[0].note.find("cancelled after train phase"),
            std::string::npos)
      << "note: " << report.iterations[0].note;
  EXPECT_GT(report.iterations[0].train_seconds, 0.0);
}

// --------------------------------------------------- StepAsync / guards

TEST(SessionAsyncTest, StepAsyncMatchesSyncStepByStep) {
  DblpSetup sync_side = MakeCorruptedDblp();
  DblpSetup async_side = MakeCorruptedDblp();
  const auto target = static_cast<double>(sync_side.true_count);

  auto sync_session =
      BuildSession(sync_side.pipeline.get(), {DblpCountComplaint(target)}, 1, 30);
  auto async_session =
      BuildSession(async_side.pipeline.get(), {DblpCountComplaint(target)}, 1, 30);
  ASSERT_TRUE(sync_session.ok() && async_session.ok());

  for (int step = 0; step < 3; ++step) {
    auto sync_result = (*sync_session)->Step();
    ASSERT_TRUE(sync_result.ok());
    auto async_result = (*async_session)->StepAsync().Get();
    ASSERT_TRUE(async_result.ok()) << async_result.status().ToString();
    EXPECT_EQ(async_result->status, sync_result->status) << "step " << step;
    EXPECT_EQ(async_result->new_deletions, sync_result->new_deletions)
        << "step " << step;
  }
  EXPECT_EQ((*async_session)->report().deletions,
            (*sync_session)->report().deletions);
}

/// Blocks the driver thread inside the first OnIterationStart until
/// released, making "async in flight" a deterministic state to test.
class GateObserver : public DebugObserver {
 public:
  void OnIterationStart(int, const DebugReport&) override {
    std::unique_lock<std::mutex> lock(mu_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(SessionAsyncTest, SyncEntryPointsRejectedWhileAsyncInFlight) {
  DblpSetup setup = MakeCorruptedDblp();
  GateObserver gate;
  auto session =
      BuildSession(setup.pipeline.get(),
                   {DblpCountComplaint(static_cast<double>(setup.true_count))}, 1,
                   10, &gate);
  ASSERT_TRUE(session.ok());

  auto future = (*session)->RunToCompletionAsync();
  gate.AwaitEntered();
  EXPECT_TRUE((*session)->async_in_flight());

  auto step = (*session)->Step();
  EXPECT_FALSE(step.ok());
  EXPECT_TRUE(step.status().IsInvalidArgument());
  auto run = (*session)->RunToCompletion();
  EXPECT_FALSE(run.ok());
  auto second_async = (*session)->StepAsync();
  EXPECT_FALSE(second_async.Get().ok()) << "one async drive at a time";

  gate.Release();
  ASSERT_TRUE(future.Get().ok());
  EXPECT_FALSE((*session)->async_in_flight());
  // The session is reusable synchronously after the drive completed.
  auto after = (*session)->Step();
  ASSERT_TRUE(after.ok());
}

// ------------------------------------------------------- declared stages

TEST(SessionAsyncTest, StagesDeclareTheIterationDataflow) {
  const auto& stages = DebugSession::Stages();
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[0].phase, DebugPhase::kTrain);
  EXPECT_EQ(stages[1].phase, DebugPhase::kBind);
  EXPECT_EQ(stages[2].phase, DebugPhase::kRank);
  EXPECT_EQ(stages[3].phase, DebugPhase::kFix);
  for (const auto& stage : stages) {
    EXPECT_NE(stage.inputs, nullptr);
    EXPECT_NE(stage.outputs, nullptr);
    EXPECT_GT(std::string(stage.inputs).size(), 0u);
    EXPECT_GT(std::string(stage.outputs).size(), 0u);
  }
  // The cross-iteration edge the speculation pipeline breaks: fix
  // produces the active set train consumes.
  EXPECT_NE(std::string(stages[3].outputs).find("deletions"), std::string::npos);
  EXPECT_NE(std::string(stages[0].inputs).find("train_set"), std::string::npos);
}

}  // namespace
}  // namespace rain
