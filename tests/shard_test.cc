/// Sharded-pipeline semantics: ShardPlan partitioning, ShardedDataset
/// deletion routing and in-place bookkeeping, the shard-exact
/// loss/gradient/HVP kernels of all three models, shard-parallel
/// influence scoring (TaskGraph task per shard), cancellation mid-shard,
/// and the end-to-end contract — deletion sequences from sharded
/// DebugSessions (1/2/4 shards x 1/2/8 workers, sync and async, DBLP +
/// Adult multi-query) bitwise-identical to the unsharded sequential path.
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/complaint.h"
#include "core/debugger.h"
#include "core/pipeline.h"
#include "core/session.h"
#include "data/adult.h"
#include "data/corruption.h"
#include "data/dblp.h"
#include "gtest/gtest.h"
#include "influence/influence.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/sharded_dataset.h"
#include "ml/softmax_regression.h"
#include "ml/trainer.h"
#include "sql/planner.h"

namespace rain {
namespace {

/// Shard counts exercised by the kernel-level tests; RAIN_TEST_SHARDS
/// (the CI sharded leg sets 4) is appended when it names another value.
std::vector<int> KernelShardCounts() {
  std::vector<int> counts = {1, 2, 3, 4, 7};
  if (const char* env = std::getenv("RAIN_TEST_SHARDS")) {
    const int s = std::atoi(env);
    bool seen = false;
    for (int c : counts) seen = seen || c == s;
    if (s >= 1 && !seen) counts.push_back(s);
  }
  return counts;
}

// ------------------------------------------------------------ ShardPlan

TEST(ShardPlanTest, UniformCoversContiguouslyWithBalancedSizes) {
  for (size_t n : {1u, 5u, 64u, 100u, 1001u}) {
    for (int shards : {1, 2, 3, 7, 16}) {
      const ShardPlan plan = ShardPlan::Uniform(n, shards);
      const size_t expect_shards =
          std::min<size_t>(static_cast<size_t>(shards), n);
      ASSERT_EQ(plan.num_shards(), expect_shards) << "n=" << n;
      EXPECT_EQ(plan.num_rows(), n);
      size_t prev_end = 0;
      size_t min_size = n, max_size = 0;
      for (size_t s = 0; s < plan.num_shards(); ++s) {
        const ShardPlan::Range r = plan.shard_range(s);
        EXPECT_EQ(r.begin, prev_end) << "shards must tile [0, n) in order";
        EXPECT_GT(r.size(), 0u) << "no empty shards";
        prev_end = r.end;
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
        for (size_t i = r.begin; i < r.end; ++i) {
          EXPECT_EQ(plan.OwnerOf(i), s);
        }
      }
      EXPECT_EQ(prev_end, n);
      EXPECT_LE(max_size - min_size, 1u) << "balanced to within one row";
    }
  }
}

TEST(ShardPlanTest, ClampsShardCountToRows) {
  const ShardPlan plan = ShardPlan::Uniform(3, 8);
  EXPECT_EQ(plan.num_shards(), 3u);
  EXPECT_EQ(plan.shard_range(2).size(), 1u);
}

// ------------------------------------------------------- ShardedDataset

Dataset SmallDataset(size_t n, size_t d, uint64_t seed, int classes = 2) {
  Rng rng(seed);
  Matrix x(n, d);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < d; ++f) x.At(i, f) = rng.Gaussian();
    y[i] = static_cast<int>(rng.Uniform(0.0, 1.0) * classes) % classes;
  }
  return Dataset(std::move(x), std::move(y), classes);
}

TEST(ShardedDatasetTest, RoutesDeletionsToOwningShard) {
  Dataset data = SmallDataset(10, 2, 5);
  ShardedDataset view(&data, ShardPlan::Uniform(data.size(), 3));
  ASSERT_EQ(view.num_shards(), 3u);
  // 10 rows over 3 shards: sizes 4, 3, 3.
  EXPECT_EQ(view.shard_num_active(0), 4u);
  EXPECT_EQ(view.shard_num_active(1), 3u);
  EXPECT_EQ(view.shard_num_active(2), 3u);

  view.Deactivate(0);
  view.Deactivate(5);
  view.Deactivate(5);  // idempotent
  EXPECT_EQ(view.shard_num_active(0), 3u);
  EXPECT_EQ(view.shard_num_active(1), 2u);
  EXPECT_EQ(view.shard_num_active(2), 3u);
  EXPECT_FALSE(data.active(0));
  EXPECT_FALSE(data.active(5));
  EXPECT_EQ(data.num_active(), 8u);

  view.Reactivate(5);
  EXPECT_EQ(view.shard_num_active(1), 3u);
  EXPECT_TRUE(data.active(5));

  // Out-of-band base mutation leaves counts stale until Resync.
  data.Deactivate(9);
  EXPECT_EQ(view.shard_num_active(2), 3u);
  view.Resync();
  EXPECT_EQ(view.shard_num_active(2), 2u);
}

// ------------------------------------------- shard-exact model kernels

/// Asserts the sharded loss/gradient/HVP of `model` over `data` is
/// bitwise-identical to the sequential (parallelism 1) kernels at every
/// shard count x worker count.
void ExpectShardKernelsBitwise(Model* model, Dataset* data, double l2,
                               uint64_t seed) {
  // A couple of inactive rows so the active-mask handling is exercised.
  data->Deactivate(1);
  data->Deactivate(data->size() / 2);

  Rng rng(seed);
  Vec v(model->num_params());
  for (double& x : v) x = rng.Gaussian();

  model->set_parallelism(1);
  const double loss_ref = model->MeanLoss(*data, l2);
  Vec grad_ref;
  model->MeanLossGradient(*data, l2, &grad_ref);
  Vec hvp_ref;
  model->HessianVectorProduct(*data, v, l2, &hvp_ref);

  for (int shards : KernelShardCounts()) {
    ShardedDataset view(data, ShardPlan::Uniform(data->size(), shards));
    for (int workers : {1, 4}) {
      model->set_parallelism(workers);
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " workers=" + std::to_string(workers));
      EXPECT_EQ(model->ShardedMeanLoss(view, l2), loss_ref);
      Vec grad;
      model->ShardedMeanLossGradient(view, l2, &grad);
      EXPECT_EQ(grad, grad_ref);
      Vec hvp;
      model->ShardedHessianVectorProduct(view, v, l2, &hvp);
      EXPECT_EQ(hvp, hvp_ref);
    }
  }
  model->set_parallelism(1);
}

TEST(ShardKernelsTest, LogisticBitwiseAtEveryShardAndWorkerCount) {
  Dataset data = SmallDataset(97, 5, 21);
  LogisticRegression model(5);
  TrainConfig cfg;
  cfg.max_iters = 30;
  ASSERT_TRUE(TrainModel(&model, data, cfg).ok());
  ExpectShardKernelsBitwise(&model, &data, 1e-3, 31);
}

TEST(ShardKernelsTest, SoftmaxBitwiseAtEveryShardAndWorkerCount) {
  Dataset data = SmallDataset(83, 4, 22, /*classes=*/3);
  SoftmaxRegression model(4, 3);
  TrainConfig cfg;
  cfg.max_iters = 30;
  ASSERT_TRUE(TrainModel(&model, data, cfg).ok());
  ExpectShardKernelsBitwise(&model, &data, 1e-3, 32);
}

TEST(ShardKernelsTest, MlpBitwiseAtEveryShardAndWorkerCount) {
  Dataset data = SmallDataset(71, 6, 23, /*classes=*/3);
  Mlp model(6, 5, 3, /*seed=*/7);
  TrainConfig cfg;
  cfg.max_iters = 10;
  ASSERT_TRUE(TrainModel(&model, data, cfg).ok());
  ExpectShardKernelsBitwise(&model, &data, 1e-3, 33);
}

TEST(ShardKernelsTest, ShardedTrainingMatchesSequentialBitwise) {
  Dataset data = SmallDataset(120, 4, 24);
  TrainConfig cfg;
  cfg.l2 = 1e-3;
  cfg.max_iters = 200;

  LogisticRegression reference(4);
  ASSERT_TRUE(TrainModel(&reference, data, cfg).ok());

  for (int shards : {1, 3, 4}) {
    ShardedDataset view(&data, ShardPlan::Uniform(data.size(), shards));
    TrainConfig sharded = cfg;
    sharded.shards = &view;
    sharded.parallelism = 4;  // scheduling only: arithmetic is pinned
    LogisticRegression model(4);
    ASSERT_TRUE(TrainModel(&model, data, sharded).ok());
    EXPECT_EQ(model.params(), reference.params()) << "shards=" << shards;
  }
}

TEST(ShardKernelsTest, CancelledShardedTrainingReportsInterrupted) {
  Dataset data = SmallDataset(120, 4, 27);
  ShardedDataset view(&data, ShardPlan::Uniform(data.size(), 3));
  CancellationToken token;
  token.Cancel();
  TrainConfig cfg;
  cfg.shards = &view;
  cfg.cancel = &token;
  LogisticRegression model(4);
  const Vec warm_start = model.params();
  auto report = TrainModel(&model, data, cfg);
  ASSERT_TRUE(report.ok());
  // A cancelled sharded objective is poisoned (+inf), never accepted as
  // an iterate, and the run reconciles to interrupted — not to a
  // spurious zero-gradient "convergence" on fabricated values.
  EXPECT_TRUE(report->interrupted);
  EXPECT_FALSE(report->converged);
  EXPECT_EQ(model.params(), warm_start)
      << "an interrupted train must keep the last genuine iterate";
}

TEST(ShardKernelsTest, TrainRejectsForeignShardView) {
  Dataset data = SmallDataset(20, 3, 25);
  Dataset other = SmallDataset(20, 3, 26);
  ShardedDataset view(&other, ShardPlan::Uniform(other.size(), 2));
  TrainConfig cfg;
  cfg.shards = &view;
  LogisticRegression model(3);
  EXPECT_FALSE(TrainModel(&model, data, cfg).ok());
}

// --------------------------------------------- shard-parallel influence

struct ScorerSetup {
  Dataset train;
  LogisticRegression model{0};
  Vec q_grad;
  double l2 = 1e-3;
};

ScorerSetup MakeScorerSetup(size_t n, uint64_t seed) {
  ScorerSetup s{SmallDataset(n, 4, seed), LogisticRegression(4), {}, 1e-3};
  TrainConfig cfg;
  cfg.l2 = s.l2;
  cfg.max_iters = 100;
  RAIN_CHECK(TrainModel(&s.model, s.train, cfg).ok());
  s.train.Deactivate(2);
  Rng rng(seed + 1);
  s.q_grad.resize(s.model.num_params());
  for (double& g : s.q_grad) g = rng.Gaussian();
  return s;
}

TEST(InfluenceShardTest, ScoreAllBitwiseIdenticalToSequential) {
  ScorerSetup s = MakeScorerSetup(150, 41);

  InfluenceOptions seq_opts;
  seq_opts.l2 = s.l2;
  InfluenceScorer sequential(&s.model, &s.train, seq_opts);
  ASSERT_TRUE(sequential.Prepare(s.q_grad).ok());
  const std::vector<double> ref = sequential.ScoreAll();

  for (int shards : KernelShardCounts()) {
    ShardedDataset view(&s.train, ShardPlan::Uniform(s.train.size(), shards));
    InfluenceOptions opts;
    opts.l2 = s.l2;
    opts.shards = &view;
    opts.parallelism = 8;  // ignored arithmetic-wise under sharding
    InfluenceScorer scorer(&s.model, &s.train, opts);
    // The CG solve behind Prepare runs over sharded HVPs (bitwise equal
    // to sequential) with pinned vector kernels: same s_, same scores.
    ASSERT_TRUE(scorer.Prepare(s.q_grad).ok());
    EXPECT_EQ(scorer.ScoreAll(), ref) << "shards=" << shards;
  }
}

TEST(InfluenceShardTest, SelfInfluenceBitwiseIdenticalToSequential) {
  ScorerSetup s = MakeScorerSetup(40, 42);

  InfluenceOptions seq_opts;
  seq_opts.l2 = s.l2;
  InfluenceScorer sequential(&s.model, &s.train, seq_opts);
  auto ref = sequential.SelfInfluenceAll();
  ASSERT_TRUE(ref.ok());

  for (int shards : {2, 4}) {
    ShardedDataset view(&s.train, ShardPlan::Uniform(s.train.size(), shards));
    InfluenceOptions opts;
    opts.l2 = s.l2;
    opts.shards = &view;
    InfluenceScorer scorer(&s.model, &s.train, opts);
    auto got = scorer.SelfInfluenceAll();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *ref) << "shards=" << shards;
  }
}

/// Cancels a shared token after a fixed number of per-record gradient
/// evaluations — a deterministic way to trip the cancel mid-scoring.
class CancelAfterNGradients : public LogisticRegression {
 public:
  CancelAfterNGradients(const LogisticRegression& base, int n,
                        CancellationToken token)
      : LogisticRegression(base), remaining_(n), token_(std::move(token)) {}

  void AddExampleLossGradient(const double* x, int y, Vec* grad) const override {
    if (remaining_.fetch_sub(1) == 1) token_.Cancel();
    LogisticRegression::AddExampleLossGradient(x, y, grad);
  }

 private:
  mutable std::atomic<int> remaining_;
  mutable CancellationToken token_;
};

TEST(InfluenceShardTest, CancelMidShardStopsWithinOneShardTask) {
  ScorerSetup s = MakeScorerSetup(200, 43);
  ShardedDataset view(&s.train, ShardPlan::Uniform(s.train.size(), 4));

  // Uncancelled sharded reference: every active row scores nonzero for
  // this workload (generic q_grad, no degenerate gradients).
  InfluenceOptions ref_opts;
  ref_opts.l2 = s.l2;
  ref_opts.shards = &view;
  InfluenceScorer reference(&s.model, &s.train, ref_opts);
  ASSERT_TRUE(reference.Prepare(s.q_grad).ok());
  const std::vector<double> full = reference.ScoreAll();
  size_t active_nonzero = 0;
  for (size_t i = 0; i < full.size(); ++i) {
    if (s.train.active(i) && full[i] != 0.0) ++active_nonzero;
  }
  ASSERT_EQ(active_nonzero, s.train.num_active());

  CancellationToken token;
  CancelAfterNGradients model(s.model, /*n=*/5, token);
  InfluenceOptions opts;
  opts.l2 = s.l2;
  opts.shards = &view;
  opts.cancel = &token;
  InfluenceScorer scorer(&model, &s.train, opts);
  ASSERT_TRUE(scorer.Prepare(s.q_grad).ok());
  const std::vector<double> partial = scorer.ScoreAll();

  // The stop lands within one shard task: scoring halts per record, so
  // some active rows stay unscored, and everything that was scored
  // matches the uncancelled run exactly (per-record independence).
  size_t scored = 0;
  for (size_t i = 0; i < partial.size(); ++i) {
    if (partial[i] != 0.0) {
      EXPECT_EQ(partial[i], full[i]) << "i=" << i;
      ++scored;
    }
  }
  EXPECT_LT(scored, s.train.num_active())
      << "cancellation must stop scoring before the dataset is exhausted";

  // A stop request surfaces as Status::Cancelled from the Result-bearing
  // sharded entry point.
  auto self = scorer.SelfInfluenceAll();
  ASSERT_FALSE(self.ok());
  EXPECT_TRUE(self.status().IsCancelled()) << self.status().ToString();
}

// ----------------------------------------------- end-to-end (sessions)

/// The Fig. 5 runtime workload, scaled to test size (identical to the
/// session_test setup; construction is fully seeded).
struct DblpSetup {
  std::unique_ptr<Query2Pipeline> pipeline;
  int64_t true_count = 0;
};

DblpSetup MakeCorruptedDblp() {
  DblpConfig cfg;
  cfg.train_size = 400;
  cfg.query_size = 200;
  cfg.seed = 99;
  DblpData dblp = MakeDblp(cfg);
  DblpSetup setup;
  for (size_t i = 0; i < dblp.query.size(); ++i) {
    setup.true_count += dblp.query.label(i);
  }
  Rng rng(3);
  CorruptLabels(&dblp.train, IndicesWithLabel(dblp.train, 1), 0.5, 0, &rng);
  Catalog catalog;
  RAIN_CHECK(
      catalog.AddTable("dblp", std::move(dblp.query_table), std::move(dblp.query))
          .ok());
  TrainConfig tc;
  tc.l2 = 1e-3;
  setup.pipeline = std::make_unique<Query2Pipeline>(
      std::move(catalog), std::make_unique<LogisticRegression>(kDblpFeatures),
      std::move(dblp.train), tc);
  RAIN_CHECK(setup.pipeline->Train().ok());
  return setup;
}

QueryComplaints DblpCountComplaint(double target) {
  QueryComplaints qc;
  qc.query = PlanNode::Aggregate(
      PlanNode::Filter(PlanNode::Scan("dblp", "D"),
                       Expr::Eq(Expr::Predict("D"), Expr::LitInt(1))),
      {}, {}, {AggSpec{AggFunc::kCount, nullptr, "cnt"}});
  qc.complaints = {ComplaintSpec::ValueEq("cnt", target)};
  return qc;
}

Result<std::unique_ptr<DebugSession>> BuildDblpSession(DblpSetup* setup,
                                                       int shards, int workers) {
  return DebugSessionBuilder(setup->pipeline.get())
      .ranker("holistic")
      .top_k_per_iter(10)
      .max_deletions(30)
      .set_execution(
          ExecutionOptions().set_num_shards(shards).set_parallelism(workers))
      .workload({DblpCountComplaint(static_cast<double>(setup->true_count))})
      .Build();
}

TEST(SessionShardTest, DeletionSequencesBitwiseIdenticalToUnsharded) {
  // The reference: unsharded, fully sequential.
  DblpSetup ref_setup = MakeCorruptedDblp();
  auto ref_session = BuildDblpSession(&ref_setup, /*shards=*/0, /*workers=*/1);
  ASSERT_TRUE(ref_session.ok());
  auto ref_report = (*ref_session)->RunToCompletion();
  ASSERT_TRUE(ref_report.ok());
  ASSERT_EQ(ref_report->deletions.size(), 30u);

  for (int shards : {1, 2, 4}) {
    for (int workers : {1, 2, 8}) {
      DblpSetup setup = MakeCorruptedDblp();
      auto session = BuildDblpSession(&setup, shards, workers);
      ASSERT_TRUE(session.ok());
      EXPECT_EQ((*session)->config().num_shards, shards);
      ASSERT_NE(setup.pipeline->shards(), nullptr);
      auto report = (*session)->RunToCompletion();
      ASSERT_TRUE(report.ok());
      EXPECT_EQ(report->deletions, ref_report->deletions)
          << "shards=" << shards << " workers=" << workers;
      // The strong form of the contract: not just the deletions — the
      // final trained parameters are bit-for-bit the sequential ones.
      EXPECT_EQ(setup.pipeline->model()->params(),
                ref_setup.pipeline->model()->params())
          << "shards=" << shards << " workers=" << workers;
      // In-place bookkeeping stayed consistent with the mask.
      size_t shard_active = 0;
      for (size_t s = 0; s < setup.pipeline->shards()->num_shards(); ++s) {
        shard_active += setup.pipeline->shards()->shard_num_active(s);
      }
      EXPECT_EQ(shard_active, setup.pipeline->train_data()->num_active());
    }
  }
}

TEST(SessionShardTest, BuilderAdoptsAndReusesThePipelinePlan) {
  DblpSetup setup = MakeCorruptedDblp();
  // A plan installed directly on the pipeline survives a builder that
  // expresses no shard opinion (default 0 = adopt, not clear).
  EXPECT_EQ(setup.pipeline->set_num_shards(4), 4);
  const ShardedDataset* view = setup.pipeline->shards();
  ASSERT_NE(view, nullptr);
  auto adopted = BuildDblpSession(&setup, /*shards=*/0, /*workers=*/1);
  ASSERT_TRUE(adopted.ok());
  EXPECT_EQ((*adopted)->config().num_shards, 4);
  EXPECT_EQ(setup.pipeline->shards(), view)
      << "same shard count must keep the existing view alive";
  // Re-building at the same count keeps the view object too.
  auto rebuilt = BuildDblpSession(&setup, /*shards=*/4, /*workers=*/1);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(setup.pipeline->shards(), view);
  // An explicit pipeline-level clear turns sharding off for later
  // no-opinion builders.
  EXPECT_EQ(setup.pipeline->set_num_shards(0), 0);
  EXPECT_EQ(setup.pipeline->shards(), nullptr);
  auto unsharded = BuildDblpSession(&setup, /*shards=*/0, /*workers=*/1);
  ASSERT_TRUE(unsharded.ok());
  EXPECT_EQ((*unsharded)->config().num_shards, 0);
}

TEST(SessionShardTest, AsyncShardedBitwiseIdenticalToUnshardedSync) {
  DblpSetup ref_setup = MakeCorruptedDblp();
  auto ref_session = BuildDblpSession(&ref_setup, /*shards=*/0, /*workers=*/1);
  ASSERT_TRUE(ref_session.ok());
  auto ref_report = (*ref_session)->RunToCompletion();
  ASSERT_TRUE(ref_report.ok());

  for (int shards : {1, 2, 4}) {
    for (int workers : {1, 8}) {
      DblpSetup setup = MakeCorruptedDblp();
      auto session = BuildDblpSession(&setup, shards, workers);
      ASSERT_TRUE(session.ok());
      auto report = (*session)->RunToCompletionAsync().Get();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(report->deletions, ref_report->deletions)
          << "shards=" << shards << " workers=" << workers;
      EXPECT_EQ(setup.pipeline->model()->params(),
                ref_setup.pipeline->model()->params())
          << "shards=" << shards << " workers=" << workers;
      // The speculative trains ran over shard views rebound to their
      // snapshots; they must have been launched and consumed as usual.
      const AsyncStats& stats = (*session)->async_stats();
      EXPECT_GE(stats.speculations_launched, 1);
      EXPECT_EQ(stats.speculations_committed + stats.speculations_replayed,
                stats.speculations_launched);
    }
  }
}

TEST(SessionShardTest, CancelDuringShardedRankRecordsPartialIteration) {
  /// Cancels the session when the bind phase of iteration 1 completes,
  /// so the stop lands inside the sharded rank phase's CG/scoring loops.
  class CancelAtRank : public DebugObserver {
   public:
    explicit CancelAtRank(DebugSession** session) : session_(session) {}
    void OnPhaseComplete(int iteration, DebugPhase phase, double) override {
      if (iteration == 1 && phase == DebugPhase::kBind) (*session_)->Cancel();
    }

   private:
    DebugSession** session_;
  };

  DblpSetup setup = MakeCorruptedDblp();
  DebugSession* handle = nullptr;
  CancelAtRank observer(&handle);
  auto session =
      DebugSessionBuilder(setup.pipeline.get())
          .ranker("holistic")
          .top_k_per_iter(10)
          .max_deletions(30)
          .set_execution(
              ExecutionOptions().set_num_shards(4).add_observer(&observer))
          .workload({DblpCountComplaint(static_cast<double>(setup.true_count))})
          .Build();
  ASSERT_TRUE(session.ok());
  handle = session->get();

  auto report = (*session)->RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE((*session)->finished());
  EXPECT_EQ((*session)->finish_status(), StepStatus::kCancelled);
  // Iteration 0 ran fully; iteration 1 is recorded as a partial.
  ASSERT_EQ(report->iterations.size(), 2u);
  EXPECT_EQ(report->deletions.size(), 10u);
  EXPECT_NE(report->iterations.back().note.find("cancelled after"),
            std::string::npos)
      << "note: " << report->iterations.back().note;
}

// ----------------------------- Adult multi-query (Section 6.5) sharded

struct AdultSetup {
  std::vector<QueryComplaints> workload;
  std::function<std::unique_ptr<Query2Pipeline>()> make_pipeline;
};

double GroupValue(Query2Pipeline* pipeline, const std::string& sql,
                  const Value& key) {
  auto r = pipeline->ExecuteSql(sql, /*debug=*/false);
  RAIN_CHECK(r.ok()) << r.status().ToString();
  for (const auto& row : r->table.rows) {
    if (row[0] == key) return *row[1].ToNumeric();
  }
  RAIN_CHECK(false) << "group not found";
  return 0.0;
}

AdultSetup MakeAdultMultiQuery() {
  AdultConfig cfg;
  cfg.train_size = 600;
  cfg.query_size = 400;
  cfg.seed = 13;
  AdultData data = MakeAdult(cfg);

  const std::string gender_sql =
      "SELECT gender, AVG(predict(*)) AS avg_income FROM adult GROUP BY gender";
  const std::string age_sql =
      "SELECT agedecade, AVG(predict(*)) AS avg_income FROM adult GROUP BY "
      "agedecade";

  auto factory = [](const AdultData& d) {
    return [table = d.query_table, query = d.query, train = d.train]() {
      Catalog catalog;
      RAIN_CHECK(catalog.AddTable("adult", table, query).ok());
      TrainConfig tc;
      tc.l2 = 1e-3;
      return std::make_unique<Query2Pipeline>(
          std::move(catalog), std::make_unique<LogisticRegression>(kAdultFeatures),
          train, tc);
    };
  };

  double male_target = 0.0;
  double aged_target = 0.0;
  {
    auto clean = factory(data)();
    RAIN_CHECK(clean->Train().ok());
    male_target = GroupValue(clean.get(), gender_sql, Value(std::string("Male")));
    aged_target = GroupValue(clean.get(), age_sql, Value(int64_t{4}));
  }

  Rng rng(cfg.seed + 1);
  CorruptLabels(&data.train, AdultCorruptionCandidates(data), 0.3, 1, &rng);

  AdultSetup setup;
  setup.make_pipeline = factory(data);
  auto planning = setup.make_pipeline();

  QueryComplaints gender_qc;
  gender_qc.query = *sql::PlanQuery(gender_sql, planning->catalog());
  gender_qc.complaints = {ComplaintSpec::ValueEq("avg_income", male_target,
                                                 {Value(std::string("Male"))})};
  QueryComplaints age_qc;
  age_qc.query = *sql::PlanQuery(age_sql, planning->catalog());
  age_qc.complaints = {
      ComplaintSpec::ValueEq("avg_income", aged_target, {Value(int64_t{4})})};
  QueryComplaints points;
  points.complaints = {ComplaintSpec::Point("adult", 3, 0),
                       ComplaintSpec::Point("adult", 11, 0)};
  setup.workload = {gender_qc, age_qc, points};
  return setup;
}

TEST(SessionShardTest, AdultMultiQueryShardedBitwiseSyncAndAsync) {
  AdultSetup setup = MakeAdultMultiQuery();

  auto run = [&](int shards, int workers, bool async) {
    auto pipeline = setup.make_pipeline();
    RAIN_CHECK(pipeline->Train().ok());
    auto session = DebugSessionBuilder(pipeline.get())
                       .ranker("holistic")
                       .top_k_per_iter(10)
                       .max_deletions(20)
                       .set_execution(ExecutionOptions()
                                          .set_num_shards(shards)
                                          .set_parallelism(workers))
                       .workload(setup.workload)
                       .Build();
    RAIN_CHECK(session.ok()) << session.status().ToString();
    auto report = async ? (*session)->RunToCompletionAsync().Get()
                        : (*session)->RunToCompletion();
    RAIN_CHECK(report.ok()) << report.status().ToString();
    return report->deletions;
  };

  const std::vector<size_t> ref = run(/*shards=*/0, /*workers=*/1, false);
  ASSERT_FALSE(ref.empty());
  for (int shards : {2, 4}) {
    for (int workers : {1, 8}) {
      EXPECT_EQ(run(shards, workers, /*async=*/false), ref)
          << "sync shards=" << shards << " workers=" << workers;
    }
    EXPECT_EQ(run(shards, /*workers=*/8, /*async=*/true), ref)
        << "async shards=" << shards;
  }
}

}  // namespace
}  // namespace rain
