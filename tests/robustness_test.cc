/// Robustness and edge-case coverage: debugger boundary configs,
/// inequality complaints through the full loop, LIKE predicates across
/// joins, and pipeline error paths.
#include "common/logging.h"
#include "common/rng.h"
#include "core/complaint.h"
#include "core/pipeline.h"
#include "core/ranker.h"
#include "core/session.h"
#include "data/corruption.h"
#include "data/enron.h"
#include "gtest/gtest.h"
#include "ml/logistic_regression.h"
#include "sql/planner.h"

namespace rain {
namespace {

class RobustnessFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    EnronConfig cfg;
    cfg.train_size = 400;
    cfg.query_size = 200;
    cfg.vocab_size = 40;
    EnronData enron = MakeEnron(cfg);
    vocab_ = cfg.vocab_size;
    corrupted_ = CorruptAll(&enron.train, TrainEmailsContaining(enron, "http"), 1);
    Catalog catalog;
    ASSERT_TRUE(catalog
                    .AddTable("enron", std::move(enron.query_table),
                              std::move(enron.query))
                    .ok());
    pipeline_ = std::make_unique<Query2Pipeline>(
        std::move(catalog), std::make_unique<LogisticRegression>(cfg.vocab_size),
        std::move(enron.train));
    ASSERT_TRUE(pipeline_->Train().ok());
  }

  QueryComplaints CountComplaint(double target, ComplaintOp op) {
    QueryComplaints qc;
    auto plan = sql::PlanQuery(
        "SELECT COUNT(*) AS cnt FROM enron WHERE predict(*) = 1",
        pipeline_->catalog());
    RAIN_CHECK(plan.ok());
    qc.query = *plan;
    ComplaintSpec spec = ComplaintSpec::ValueEq("cnt", target);
    spec.op = op;
    qc.complaints = {spec};
    return qc;
  }

  /// Finishes a fluent builder chain: installs the workload, builds the
  /// session, and runs it to completion.
  Result<DebugReport> RunSession(DebugSessionBuilder& builder,
                                 std::vector<QueryComplaints> workload) {
    auto session = builder.workload(std::move(workload)).Build();
    RAIN_CHECK(session.ok()) << session.status().ToString();
    return (*session)->RunToCompletion();
  }

  size_t vocab_ = 0;
  std::vector<size_t> corrupted_;
  std::unique_ptr<Query2Pipeline> pipeline_;
};

TEST_F(RobustnessFixture, ZeroMaxDeletionsIsNoop) {
  DebugSessionBuilder b(pipeline_.get());
  b.ranker("holistic").max_deletions(0);
  auto r = RunSession(b, {CountComplaint(10, ComplaintOp::kEq)});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->deletions.empty());
  EXPECT_EQ(pipeline_->train_data()->num_active(), pipeline_->train_data()->size());
}

TEST_F(RobustnessFixture, MaxIterationsBoundsTheLoop) {
  DebugSessionBuilder b(pipeline_.get());
  b.ranker("holistic").max_deletions(1000).max_iterations(2).top_k_per_iter(5);
  auto r = RunSession(b, {CountComplaint(10, ComplaintOp::kEq)});
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->deletions.size(), 10u);
  EXPECT_LE(r->iterations.size(), 2u);
}

TEST_F(RobustnessFixture, InequalityComplaintSkippedWhenSatisfied) {
  // "count >= 0" is always satisfied: the complaint never drives ranking
  // and the debugger reports immediate resolution.
  DebugSessionBuilder b(pipeline_.get());
  b.ranker("holistic").max_deletions(10).stop_when_resolved();
  auto r = RunSession(b, {CountComplaint(0, ComplaintOp::kGe)});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->complaints_resolved);
  EXPECT_TRUE(r->deletions.empty());
}

TEST_F(RobustnessFixture, LowerThanComplaintDrivesDeletions) {
  // The http rule-corruption inflates the spam count; "count <= clean/2"
  // is violated and must produce deletions.
  auto before = pipeline_->ExecuteSql(
      "SELECT COUNT(*) AS cnt FROM enron WHERE predict(*) = 1", false);
  ASSERT_TRUE(before.ok());
  const double observed = static_cast<double>(before->table.rows[0][0].AsInt64());
  ASSERT_GT(observed, 2.0);

  DebugSessionBuilder b(pipeline_.get());
  b.ranker("holistic").max_deletions(20).top_k_per_iter(10);
  auto r = RunSession(b, {CountComplaint(observed / 2.0, ComplaintOp::kLe)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->deletions.size(), 20u);
  EXPECT_GT(r->iterations[0].violated_complaints, 0);
}

TEST_F(RobustnessFixture, LikePredicateAcrossSelfJoin) {
  // LIKE + predictions + self join in one query.
  auto r = pipeline_->ExecuteSql(
      "SELECT COUNT(*) AS c FROM enron A, enron B "
      "WHERE A.id < B.id AND A.text LIKE '%http%' AND B.text LIKE '%http%' "
      "AND predict(A.*) = predict(B.*)",
      /*debug=*/false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->table.rows[0][0].AsInt64(), 0);
}

TEST_F(RobustnessFixture, TwoStepRecoversFromInfeasibleThenFeasible) {
  // An impossible equality (count = train size * 10) makes the ILP
  // infeasible; the debugger surfaces the error rather than looping.
  DebugSessionBuilder b(pipeline_.get());
  b.ranker("twostep").max_deletions(10);
  auto r = RunSession(b, {CountComplaint(1e6, ComplaintOp::kEq)});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST_F(RobustnessFixture, HolisticHandlesImpossibleTargetGracefully) {
  // Holistic has no feasibility notion: an unreachable target still
  // yields a gradient direction (push the count up) and deletions.
  DebugSessionBuilder b(pipeline_.get());
  b.ranker("holistic").max_deletions(10);
  auto r = RunSession(b, {CountComplaint(1e6, ComplaintOp::kEq)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->deletions.size(), 10u);
}

TEST_F(RobustnessFixture, AutoRankerPicksHolisticForAggregates) {
  DebugSessionBuilder b(pipeline_.get());
  b.ranker("auto").max_deletions(10);
  auto r = RunSession(b, {CountComplaint(5, ComplaintOp::kEq)});
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->iterations.empty());
  EXPECT_NE(r->iterations[0].note.find("auto->holistic"), std::string::npos)
      << "note: " << r->iterations[0].note;
}

TEST_F(RobustnessFixture, AutoRankerPicksTwoStepForPointComplaints) {
  // Find a mispredicted queried row to complain about.
  const Catalog::Entry* entry = pipeline_->catalog().Find("enron");
  int64_t row = -1;
  int truth = -1;
  for (size_t i = 0; i < entry->features->size(); ++i) {
    const int t = entry->features->label(i);
    if (pipeline_->predictions().PredictedClass(entry->table_id,
                                                static_cast<int64_t>(i)) != t) {
      row = static_cast<int64_t>(i);
      truth = t;
      break;
    }
  }
  if (row < 0) GTEST_SKIP() << "model is perfect on the querying set";
  QueryComplaints qc;
  qc.complaints = {ComplaintSpec::Point("enron", row, truth)};
  DebugSessionBuilder b(pipeline_.get());
  b.ranker("auto").max_deletions(10);
  auto r = RunSession(b, {qc});
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->iterations.empty());
  EXPECT_NE(r->iterations[0].note.find("auto->twostep"), std::string::npos)
      << "note: " << r->iterations[0].note;
}

TEST_F(RobustnessFixture, DebuggerExhaustsTrainingSetGracefully) {
  DebugSessionBuilder b(pipeline_.get());
  b.ranker("loss")
      .max_deletions(static_cast<int>(pipeline_->train_data()->size()) + 100)
      .top_k_per_iter(200);
  auto r = RunSession(b, {CountComplaint(10, ComplaintOp::kEq)});
  // Training must never be attempted on an empty set; the loop stops
  // while at least one record remains (or errors cleanly).
  if (r.ok()) {
    EXPECT_GE(pipeline_->train_data()->num_active(), 1u);
  }
}

}  // namespace
}  // namespace rain
