#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "provenance/poly.h"
#include "relax/relaxed_poly.h"

namespace rain {
namespace {

TEST(RelaxedPolyTest, AndRelaxesToProduct) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  RelaxedPoly p(&a, a.And({x, y}));
  EXPECT_DOUBLE_EQ(p.Evaluate({0.3, 0.5}), 0.15);
}

TEST(RelaxedPolyTest, OrRelaxesToComplementProduct) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  RelaxedPoly p(&a, a.Or({x, y}));
  EXPECT_DOUBLE_EQ(p.Evaluate({0.3, 0.5}), 1.0 - 0.7 * 0.5);
}

TEST(RelaxedPolyTest, NotRelaxesToComplement) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  RelaxedPoly p(&a, a.Not(x));
  EXPECT_DOUBLE_EQ(p.Evaluate({0.25}), 0.75);
}

TEST(RelaxedPolyTest, SingleOccurrenceMatchesExactExpectation) {
  // When every variable appears once, the relaxation equals the true
  // expectation (Section 5.3.1 / [29]). E[x AND (y OR NOT z)] with
  // independent Bernoulli variables:
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  const PolyId z = a.Var(PredVar{0, 2, 1});
  const PolyId expr = a.And({x, a.Or({y, a.Not(z)})});
  RelaxedPoly p(&a, expr);
  const double px = 0.4, py = 0.6, pz = 0.2;
  // Exact: px * (1 - (1-py) * pz).
  const double expected = px * (1.0 - (1.0 - py) * pz);
  EXPECT_NEAR(p.Evaluate({px, py, pz}), expected, 1e-12);
  // Brute-force expectation over the 8 boolean assignments.
  double brute = 0.0;
  for (int xb = 0; xb <= 1; ++xb) {
    for (int yb = 0; yb <= 1; ++yb) {
      for (int zb = 0; zb <= 1; ++zb) {
        const double prob = (xb ? px : 1 - px) * (yb ? py : 1 - py) * (zb ? pz : 1 - pz);
        const bool val = xb && (yb || !zb);
        brute += prob * (val ? 1.0 : 0.0);
      }
    }
  }
  EXPECT_NEAR(p.Evaluate({px, py, pz}), brute, 1e-12);
}

TEST(RelaxedPolyTest, BooleanInputsRecoverExactSemantics) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  const PolyId expr = a.Add({a.And({x, y}), a.Not(x), a.Or({x, y})});
  RelaxedPoly p(&a, expr);
  for (int xb = 0; xb <= 1; ++xb) {
    for (int yb = 0; yb <= 1; ++yb) {
      const double expect = (xb && yb ? 1 : 0) + (xb ? 0 : 1) + (xb || yb ? 1 : 0);
      EXPECT_DOUBLE_EQ(
          p.Evaluate({static_cast<double>(xb), static_cast<double>(yb)}), expect);
    }
  }
}

TEST(RelaxedPolyTest, DivNode) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  RelaxedPoly p(&a, a.Div(a.Add({x, y}), a.Const(2.0)));
  EXPECT_DOUBLE_EQ(p.Evaluate({0.2, 0.6}), 0.4);
}

TEST(RelaxedPolyTest, GradientOfProduct) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  RelaxedPoly p(&a, a.And({x, y}));
  Vec grad;
  const double v = p.Gradient({0.3, 0.5}, &grad);
  EXPECT_DOUBLE_EQ(v, 0.15);
  EXPECT_DOUBLE_EQ(grad[0], 0.5);  // d(xy)/dx = y
  EXPECT_DOUBLE_EQ(grad[1], 0.3);
}

TEST(RelaxedPolyTest, GradientWithZeroFactorUsesPrefixSuffix) {
  // d(xyz)/dx at y=0 must still be y*z = 0, but d/dy = x*z must survive
  // the zero (naive value/child division would produce NaN).
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  const PolyId z = a.Var(PredVar{0, 2, 1});
  RelaxedPoly p(&a, a.And({x, y, z}));
  Vec grad;
  p.Gradient({0.5, 0.0, 0.8}, &grad);
  EXPECT_DOUBLE_EQ(grad[0], 0.0);
  EXPECT_DOUBLE_EQ(grad[1], 0.4);  // x*z
  EXPECT_DOUBLE_EQ(grad[2], 0.0);
  for (double g : grad) EXPECT_TRUE(std::isfinite(g));
}

TEST(RelaxedPolyTest, GradientOfOrAtSaturation) {
  // OR with one input at 1: derivative w.r.t. the other inputs is 0.
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  RelaxedPoly p(&a, a.Or({x, y}));
  Vec grad;
  p.Gradient({1.0, 0.5}, &grad);
  EXPECT_DOUBLE_EQ(grad[1], 0.0);
  EXPECT_DOUBLE_EQ(grad[0], 0.5);  // 1 - y
}

TEST(RelaxedPolyTest, SharedSubexpressionAccumulatesAdjoint) {
  // f = x + x*y: df/dx = 1 + y.
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  RelaxedPoly p(&a, a.Add({x, a.Mul({x, y})}));
  Vec grad;
  p.Gradient({0.2, 0.7}, &grad);
  EXPECT_DOUBLE_EQ(grad[0], 1.7);
  EXPECT_DOUBLE_EQ(grad[1], 0.2);
}

/// Builds a random polynomial DAG over `nv` variables and checks the
/// reverse-mode gradient against central finite differences — the
/// property-based sweep for the AD engine.
class RelaxGradientPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelaxGradientPropertyTest, MatchesFiniteDifference) {
  Rng rng(GetParam());
  PolyArena a;
  const int nv = 6;
  std::vector<PolyId> pool;
  for (int v = 0; v < nv; ++v) pool.push_back(a.Var(PredVar{0, v, 1}));
  pool.push_back(a.Const(0.5));
  // Random DAG growth.
  for (int step = 0; step < 25; ++step) {
    const int op = static_cast<int>(rng.UniformInt(5));
    const PolyId c1 = pool[rng.UniformInt(pool.size())];
    const PolyId c2 = pool[rng.UniformInt(pool.size())];
    switch (op) {
      case 0:
        pool.push_back(a.And({c1, c2}));
        break;
      case 1:
        pool.push_back(a.Or({c1, c2}));
        break;
      case 2:
        pool.push_back(a.Not(c1));
        break;
      case 3:
        pool.push_back(a.Add({c1, c2}));
        break;
      case 4:
        pool.push_back(a.Mul({c1, c2}));
        break;
    }
  }
  const PolyId root = pool.back();
  RelaxedPoly p(&a, root);

  Vec vals(nv);
  for (double& v : vals) v = rng.Uniform(0.05, 0.95);
  Vec grad;
  p.Gradient(vals, &grad);

  const double eps = 1e-6;
  for (int v = 0; v < nv; ++v) {
    Vec vp = vals, vm = vals;
    vp[v] += eps;
    vm[v] -= eps;
    const double fd = (p.Evaluate(vp) - p.Evaluate(vm)) / (2 * eps);
    EXPECT_NEAR(grad[v], fd, 1e-5 * std::max(1.0, std::fabs(fd))) << "var " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, RelaxGradientPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(RelaxedPolyTest, VariablesListsReachableOnly) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  a.Var(PredVar{0, 1, 1});  // in arena but not in the poly
  RelaxedPoly p(&a, a.Not(x));
  EXPECT_EQ(p.variables().size(), 1u);
}

TEST(RelaxedPolyTest, ConstantPolyHasZeroGradient) {
  PolyArena a;
  RelaxedPoly p(&a, a.Const(3.0));
  Vec grad;
  EXPECT_DOUBLE_EQ(p.Gradient({}, &grad), 3.0);
}

// ------------------------------------------------------------- batch API

/// A random multi-root DAG sharing subexpressions across roots, plus a
/// random assignment — the shape of a multi-complaint encode phase.
struct BatchCase {
  PolyArena arena;
  std::vector<PolyId> roots;
  Vec vals;
};

BatchCase MakeBatchCase(uint64_t seed, int nv = 8, int num_roots = 5) {
  BatchCase c;
  Rng rng(seed);
  std::vector<PolyId> pool;
  for (int v = 0; v < nv; ++v) pool.push_back(c.arena.Var(PredVar{0, v, 1}));
  pool.push_back(c.arena.Const(0.5));
  for (int step = 0; step < 40; ++step) {
    const int op = static_cast<int>(rng.UniformInt(5));
    const PolyId c1 = pool[rng.UniformInt(pool.size())];
    const PolyId c2 = pool[rng.UniformInt(pool.size())];
    switch (op) {
      case 0:
        pool.push_back(c.arena.And({c1, c2}));
        break;
      case 1:
        pool.push_back(c.arena.Or({c1, c2}));
        break;
      case 2:
        pool.push_back(c.arena.Not(c1));
        break;
      case 3:
        pool.push_back(c.arena.Add({c1, c2}));
        break;
      case 4:
        pool.push_back(c.arena.Mul({c1, c2}));
        break;
    }
  }
  for (int r = 0; r < num_roots; ++r) {
    c.roots.push_back(pool[pool.size() - 1 - static_cast<size_t>(rng.UniformInt(10))]);
  }
  c.vals.resize(static_cast<size_t>(nv));
  for (double& v : c.vals) v = rng.Uniform(0.05, 0.95);
  return c;
}

TEST(RelaxedPolyBatchTest, EvaluateBatchMatchesSingleRootBitwise) {
  // Forward values depend only on child values, never on sweep order, so
  // the shared-sweep batch is bitwise-identical to per-root evaluation.
  for (uint64_t seed : {21u, 22u, 23u}) {
    BatchCase c = MakeBatchCase(seed);
    RelaxedPoly batch(&c.arena, c.roots);
    const std::vector<double> vals = batch.EvaluateBatch(c.vals);
    ASSERT_EQ(vals.size(), c.roots.size());
    for (size_t k = 0; k < c.roots.size(); ++k) {
      RelaxedPoly single(&c.arena, c.roots[k]);
      EXPECT_EQ(vals[k], single.Evaluate(c.vals)) << "seed " << seed << " root " << k;
    }
  }
}

TEST(RelaxedPolyBatchTest, GradientBatchMatchesSingleRootGradients) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    BatchCase c = MakeBatchCase(seed);
    RelaxedPoly batch(&c.arena, c.roots);
    std::vector<Vec> grads;
    const std::vector<double> vals = batch.GradientBatch(c.vals, &grads);
    ASSERT_EQ(grads.size(), c.roots.size());
    for (size_t k = 0; k < c.roots.size(); ++k) {
      RelaxedPoly single(&c.arena, c.roots[k]);
      Vec g;
      const double v = single.Gradient(c.vals, &g);
      EXPECT_DOUBLE_EQ(vals[k], v);
      ASSERT_EQ(grads[k].size(), g.size());
      for (size_t i = 0; i < g.size(); ++i) {
        // The batch reverse sweep runs over the union topological order;
        // adjoint contributions at shared nodes may sum in a different
        // order than the standalone sweep, so compare numerically.
        EXPECT_NEAR(grads[k][i], g[i], 1e-12 * std::max(1.0, std::fabs(g[i])))
            << "seed " << seed << " root " << k << " var " << i;
      }
    }
  }
}

TEST(RelaxedPolyBatchTest, GradientBatchBitwiseStableAcrossThreadCounts) {
  // The deterministic-chunk contract: per-root sweeps are independent, so
  // any worker count produces the exact same bits.
  for (uint64_t seed : {41u, 42u}) {
    BatchCase c = MakeBatchCase(seed, /*nv=*/8, /*num_roots=*/9);
    RelaxedPoly batch(&c.arena, c.roots);
    std::vector<Vec> ref_grads;
    const std::vector<double> ref_vals = batch.GradientBatch(c.vals, &ref_grads, 1);
    for (int threads : {2, 8}) {
      std::vector<Vec> grads;
      const std::vector<double> vals = batch.GradientBatch(c.vals, &grads, threads);
      EXPECT_EQ(vals, ref_vals) << "threads " << threads;
      ASSERT_EQ(grads.size(), ref_grads.size());
      for (size_t k = 0; k < grads.size(); ++k) {
        EXPECT_EQ(grads[k], ref_grads[k]) << "threads " << threads << " root " << k;
      }
    }
  }
}

TEST(RelaxedPolyBatchTest, LinearOrModeAppliesToBatch) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  RelaxedPoly batch(&a, std::vector<PolyId>{a.Or({x, y}), a.And({x, y})},
                    RelaxMode::kLinearOr);
  const std::vector<double> vals = batch.EvaluateBatch({0.3, 0.5});
  EXPECT_DOUBLE_EQ(vals[0], 0.8);  // linear OR: x + y
  EXPECT_DOUBLE_EQ(vals[1], 0.15);
}

TEST(RelaxedPolyBatchTest, EmptyAndDuplicateRoots) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  RelaxedPoly empty(&a, std::vector<PolyId>{});
  std::vector<Vec> grads;
  EXPECT_TRUE(empty.EvaluateBatch({0.5}).empty());
  EXPECT_TRUE(empty.GradientBatch({0.5}, &grads).empty());
  EXPECT_TRUE(grads.empty());
  EXPECT_EQ(empty.num_reachable_nodes(), 0u);

  // Duplicate roots stay positional: both entries carry the full result.
  RelaxedPoly dup(&a, std::vector<PolyId>{x, x});
  const std::vector<double> vals = dup.EvaluateBatch({0.25});
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0], vals[1]);
  std::vector<Vec> dup_grads;
  dup.GradientBatch({0.25}, &dup_grads, 2);
  ASSERT_EQ(dup_grads.size(), 2u);
  EXPECT_EQ(dup_grads[0], dup_grads[1]);
  EXPECT_DOUBLE_EQ(dup_grads[0][0], 1.0);
}

TEST(RelaxedPolyBatchTest, GradientBatchBitwiseAcrossBackends) {
  // The whole batched gradient path — shared forward sweep, shared
  // edge-weight pass, per-root GatherDot reverse sweeps, Gather +
  // ScatterAxpy writeback — composes only ELEMENTWISE and
  // SHAPED-REDUCTION kernels, so the results are one bit pattern on
  // every SIMD tier and under the scalar fallback.
  for (uint64_t seed : {51u, 52u}) {
    BatchCase c = MakeBatchCase(seed, /*nv=*/8, /*num_roots=*/7);
    RelaxedPoly batch(&c.arena, c.roots);
    std::vector<Vec> ref_grads;
    const std::vector<double> ref_vals =
        batch.GradientBatch(c.vals, &ref_grads, 1);
    for (const char* tier : {"scalar", "avx2", "avx512"}) {
      if (!vec::simd::ForceBackend(tier)) continue;
      std::vector<Vec> grads;
      const std::vector<double> vals = batch.GradientBatch(c.vals, &grads, 1);
      EXPECT_EQ(vals, ref_vals) << tier;
      ASSERT_EQ(grads.size(), ref_grads.size());
      for (size_t k = 0; k < grads.size(); ++k) {
        EXPECT_EQ(grads[k], ref_grads[k]) << tier << " root " << k;
      }
    }
    vec::simd::ForceBackend(nullptr);
    const bool prev = vec::simd::ForceScalar(true);
    std::vector<Vec> grads;
    const std::vector<double> vals = batch.GradientBatch(c.vals, &grads, 1);
    vec::simd::ForceScalar(prev);
    EXPECT_EQ(vals, ref_vals) << "ForceScalar";
    for (size_t k = 0; k < grads.size(); ++k) {
      EXPECT_EQ(grads[k], ref_grads[k]) << "ForceScalar root " << k;
    }
  }
}

TEST(RelaxedPolyBatchTest, GradientSharesTapeReverseWithBatchEntryZero) {
  // Gradient and GradientBatch run the same ComputeEdgeWeights +
  // ReverseSweep code on the same tape, so on the SAME object the
  // single-root result is bitwise equal to batch entry 0 (a separately
  // constructed single-root tape has narrower parent lists and is only
  // 1e-12-near; GradientBatchMatchesSingleRootGradients covers that).
  for (uint64_t seed : {55u, 56u, 57u}) {
    BatchCase c = MakeBatchCase(seed);
    RelaxedPoly batch(&c.arena, c.roots);
    std::vector<Vec> grads;
    const std::vector<double> vals = batch.GradientBatch(c.vals, &grads);
    Vec g;
    const double v = batch.Gradient(c.vals, &g);
    EXPECT_EQ(v, vals[0]) << "seed " << seed;
    EXPECT_EQ(g, grads[0]) << "seed " << seed;
  }
}

TEST(RelaxedPolyBatchTest, Fig5CountWorkloadBatchGradients) {
  // The Fig. 5 DBLP encode shape: COUNT(*) complaints relax to ADD over
  // per-row prediction vars, several complaints sharing rows. The batched
  // gradient of an ADD root is the 0/1 reachability indicator — and
  // shared rows must get it from ONE edge-weight pass.
  PolyArena a;
  std::vector<PolyId> vars;
  for (int64_t r = 0; r < 300; ++r) {
    vars.push_back(a.Var(PredVar{0, r, 1}));
  }
  std::vector<PolyId> roots;
  for (int q = 0; q < 6; ++q) {
    // Query q counts rows [25*q, 25*q + 150): adjacent queries overlap.
    std::vector<PolyId> terms(vars.begin() + 25 * q,
                              vars.begin() + 25 * q + 150);
    roots.push_back(a.Add(std::move(terms)));
  }
  RelaxedPoly batch(&a, roots);
  Rng rng(58);
  Vec vals(a.num_vars());
  for (double& v : vals) v = rng.Uniform(0.05, 0.95);
  std::vector<Vec> grads;
  const std::vector<double> sums = batch.GradientBatch(vals, &grads, 4);
  ASSERT_EQ(sums.size(), roots.size());
  for (int q = 0; q < 6; ++q) {
    double expect = 0.0;
    for (int r = 25 * q; r < 25 * q + 150; ++r) expect += vals[static_cast<size_t>(r)];
    EXPECT_NEAR(sums[static_cast<size_t>(q)], expect, 1e-9) << "query " << q;
    for (int r = 0; r < 300; ++r) {
      const bool in_window = r >= 25 * q && r < 25 * q + 150;
      EXPECT_EQ(grads[static_cast<size_t>(q)][static_cast<size_t>(r)],
                in_window ? 1.0 : 0.0)
          << "query " << q << " row " << r;
    }
  }
}

}  // namespace
}  // namespace rain
