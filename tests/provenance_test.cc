#include "gtest/gtest.h"
#include "provenance/poly.h"
#include "provenance/prediction_store.h"

namespace rain {
namespace {

TEST(PolyArenaTest, ConstFolding) {
  PolyArena a;
  EXPECT_EQ(a.Const(0.0), a.False());
  EXPECT_EQ(a.Const(1.0), a.True());
  EXPECT_TRUE(a.IsConst(a.Const(2.5)));
  EXPECT_DOUBLE_EQ(a.ConstValue(a.Const(2.5)), 2.5);
}

TEST(PolyArenaTest, VarRegistryDeduplicates) {
  PolyArena a;
  const VarId v1 = a.GetOrCreateVar(PredVar{0, 3, 1});
  const VarId v2 = a.GetOrCreateVar(PredVar{0, 3, 1});
  const VarId v3 = a.GetOrCreateVar(PredVar{0, 3, 2});
  EXPECT_EQ(v1, v2);
  EXPECT_NE(v1, v3);
  EXPECT_EQ(a.num_vars(), 2u);
  EXPECT_EQ(a.FindVar(PredVar{0, 3, 1}), v1);
  EXPECT_EQ(a.FindVar(PredVar{9, 9, 9}), -1);
}

TEST(PolyArenaTest, AndFolding) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  EXPECT_EQ(a.And({a.True(), x}), x);             // identity
  EXPECT_EQ(a.And({a.False(), x}), a.False());    // absorbing
  EXPECT_EQ(a.And({}), a.True());                 // empty
  EXPECT_EQ(a.And({x}), x);                       // singleton
}

TEST(PolyArenaTest, OrFolding) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  EXPECT_EQ(a.Or({a.False(), x}), x);
  EXPECT_EQ(a.Or({a.True(), x}), a.True());
  EXPECT_EQ(a.Or({}), a.False());
}

TEST(PolyArenaTest, NotFolding) {
  PolyArena a;
  EXPECT_EQ(a.Not(a.True()), a.False());
  EXPECT_EQ(a.Not(a.False()), a.True());
  const PolyId x = a.Var(PredVar{0, 0, 1});
  EXPECT_EQ(a.Not(a.Not(x)), x);  // double negation
}

TEST(PolyArenaTest, AddMulFolding) {
  PolyArena a;
  EXPECT_DOUBLE_EQ(a.ConstValue(a.Add({a.Const(2.0), a.Const(3.0)})), 5.0);
  EXPECT_DOUBLE_EQ(a.ConstValue(a.Mul({a.Const(2.0), a.Const(3.0)})), 6.0);
  const PolyId x = a.Var(PredVar{0, 0, 1});
  EXPECT_EQ(a.Mul({a.Const(0.0), x}), a.False());  // annihilation
  EXPECT_EQ(a.Mul({a.Const(1.0), x}), x);          // identity
  EXPECT_EQ(a.Add({a.Const(0.0), x}), x);
}

TEST(PolyArenaTest, DivFoldsConstants) {
  PolyArena a;
  EXPECT_DOUBLE_EQ(a.ConstValue(a.Div(a.Const(6.0), a.Const(3.0))), 2.0);
}

TEST(PolyArenaTest, BooleanEvaluation) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  const PolyId expr = a.Or({a.And({x, a.Not(y)}), a.And({a.Not(x), y})});  // XOR
  for (int xb = 0; xb <= 1; ++xb) {
    for (int yb = 0; yb <= 1; ++yb) {
      Vec vals{static_cast<double>(xb), static_cast<double>(yb)};
      EXPECT_DOUBLE_EQ(a.Evaluate(expr, vals), static_cast<double>(xb ^ yb));
    }
  }
}

TEST(PolyArenaTest, CountPolynomialEvaluation) {
  // count = x + (1-y) + 1.
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  const PolyId count = a.Add({x, a.Not(y), a.True()});
  EXPECT_DOUBLE_EQ(a.Evaluate(count, {1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(a.Evaluate(count, {0.0, 1.0}), 1.0);
  // Relaxed semantics: probabilities.
  EXPECT_NEAR(a.Evaluate(count, {0.3, 0.6}), 0.3 + 0.4 + 1.0, 1e-12);
}

TEST(PolyArenaTest, RatioEvaluation) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId avg = a.Div(x, a.Const(4.0));
  EXPECT_DOUBLE_EQ(a.Evaluate(avg, {2.0}), 0.5);
  // Division by zero evaluates to 0 by convention (empty group).
  const PolyId bad = a.Div(a.Const(3.0), a.Var(PredVar{0, 1, 0}));
  EXPECT_DOUBLE_EQ(a.Evaluate(bad, {0.0, 0.0}), 0.0);
}

TEST(PolyArenaTest, ReachableVars) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{1, 5, 2});
  a.Var(PredVar{2, 2, 0});  // unreachable from expr
  const PolyId expr = a.And({x, y});
  auto vars = a.ReachableVars(expr);
  EXPECT_EQ(vars.size(), 2u);
}

TEST(PolyArenaTest, ToStringRendersStructure) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 3, 1});
  const std::string s = a.ToString(a.Not(x));
  EXPECT_EQ(s, "!v(0,3,1)");
}

// ------------------------------------------------------------------ splice

/// One "query worth" of arena construction; `salt` varies the shape.
/// Applied either directly to a shared arena (the sequential reference) or
/// to a fresh staging arena that is spliced in afterwards (the batched
/// path) — the two must agree bit for bit.
PolyId BuildSequence(PolyArena* a, int salt) {
  const PolyId x = a->Var(PredVar{0, salt, 1});
  const PolyId y = a->Var(PredVar{0, salt + 1, 1});
  const PolyId shared = a->Var(PredVar{7, 0, 1});  // same var in every query
  const PolyId cond = a->Or({a->And({x, y}), a->Not(shared)});
  return a->Add({a->Mul({cond, a->Const(2.5)}), a->Const(static_cast<double>(salt))});
}

TEST(PolyArenaSpliceTest, OrderedSpliceReproducesSequentialBuildBitwise) {
  // Sequential reference: three build sequences appended directly.
  PolyArena sequential;
  std::vector<PolyId> seq_roots;
  for (int q = 0; q < 3; ++q) seq_roots.push_back(BuildSequence(&sequential, q));

  // Batched path: each sequence into its own staging arena, then spliced
  // in the same order.
  PolyArena merged;
  std::vector<PolyId> spliced_roots;
  for (int q = 0; q < 3; ++q) {
    PolyArena staging;
    const PolyId root = BuildSequence(&staging, q);
    const PolyArena::SpliceMap map = merged.Splice(staging);
    spliced_roots.push_back(map.node_map[root]);
  }

  ASSERT_EQ(merged.num_nodes(), sequential.num_nodes());
  ASSERT_EQ(merged.num_vars(), sequential.num_vars());
  EXPECT_EQ(spliced_roots, seq_roots);
  for (size_t i = 0; i < sequential.num_nodes(); ++i) {
    const PolyNode& s = sequential.node(static_cast<PolyId>(i));
    const PolyNode& m = merged.node(static_cast<PolyId>(i));
    EXPECT_EQ(m.op, s.op) << "node " << i;
    EXPECT_EQ(m.value, s.value) << "node " << i;
    EXPECT_EQ(m.var, s.var) << "node " << i;
    EXPECT_EQ(m.children, s.children) << "node " << i;
  }
  for (size_t v = 0; v < sequential.num_vars(); ++v) {
    EXPECT_TRUE(merged.var(static_cast<VarId>(v)) ==
                sequential.var(static_cast<VarId>(v)))
        << "var " << v;
  }
}

TEST(PolyArenaSpliceTest, SingletonsAndSharedVariablesDeduplicate) {
  PolyArena target;
  const VarId pre = target.GetOrCreateVar(PredVar{7, 0, 1});

  PolyArena staging;
  const PolyId v = staging.Var(PredVar{7, 0, 1});   // known to target already
  const PolyId w = staging.Var(PredVar{9, 4, 0});   // new to target
  const PolyId t = staging.True();
  const PolyId f = staging.False();
  const PolyId expr = staging.And({v, w});

  const PolyArena::SpliceMap map = target.Splice(staging);
  // Singletons map onto the target's singletons, never duplicate.
  EXPECT_EQ(map.node_map[t], target.True());
  EXPECT_EQ(map.node_map[f], target.False());
  // The shared variable keeps its pre-existing target id.
  EXPECT_EQ(target.node(map.node_map[v]).var, pre);
  EXPECT_EQ(target.num_vars(), 2u);
  // Structure survives the remap.
  EXPECT_EQ(target.ToString(map.node_map[expr]), "(v(7,0,1) & v(9,4,0))");
  EXPECT_EQ(target.node(map.node_map[expr]).children.size(), 2u);
  EXPECT_EQ(map.node_map[w], target.node(map.node_map[expr]).children[1]);
}

TEST(PolyArenaSpliceTest, EmptyStagingSplicesNothing) {
  PolyArena target;
  target.Var(PredVar{0, 0, 1});
  const size_t nodes_before = target.num_nodes();
  PolyArena staging;
  const PolyArena::SpliceMap map = target.Splice(staging);
  EXPECT_EQ(target.num_nodes(), nodes_before);
  EXPECT_TRUE(map.var_map.empty());
  EXPECT_EQ(map.node_map.size(), 2u);  // just the singletons
}

TEST(PredictionStoreTest, ArgmaxAndProbability) {
  PredictionStore store;
  Matrix probs(2, 3);
  probs.SetRow(0, {0.2, 0.5, 0.3});
  probs.SetRow(1, {0.7, 0.1, 0.2});
  store.SetPredictions(4, std::move(probs));
  EXPECT_TRUE(store.HasTable(4));
  EXPECT_FALSE(store.HasTable(5));
  EXPECT_EQ(store.NumRows(4), 2u);
  EXPECT_EQ(store.NumClasses(4), 3);
  EXPECT_EQ(store.PredictedClass(4, 0), 1);
  EXPECT_EQ(store.PredictedClass(4, 1), 0);
  EXPECT_DOUBLE_EQ(store.Probability(4, 0, 2), 0.3);
}

TEST(PredictionStoreTest, AssignmentsMatchSemantics) {
  PredictionStore store;
  Matrix probs(2, 2);
  probs.SetRow(0, {0.9, 0.1});
  probs.SetRow(1, {0.4, 0.6});
  store.SetPredictions(0, std::move(probs));

  PolyArena arena;
  arena.Var(PredVar{0, 0, 1});
  arena.Var(PredVar{0, 1, 1});
  arena.Var(PredVar{0, 1, 0});

  const Vec concrete = store.ConcreteAssignment(arena);
  EXPECT_DOUBLE_EQ(concrete[0], 0.0);  // row 0 predicted class 0
  EXPECT_DOUBLE_EQ(concrete[1], 1.0);  // row 1 predicted class 1
  EXPECT_DOUBLE_EQ(concrete[2], 0.0);

  const Vec relaxed = store.RelaxedAssignment(arena);
  EXPECT_DOUBLE_EQ(relaxed[0], 0.1);
  EXPECT_DOUBLE_EQ(relaxed[1], 0.6);
  EXPECT_DOUBLE_EQ(relaxed[2], 0.4);
}

TEST(PredictionStoreTest, ReplacePredictionsRefreshesArgmax) {
  PredictionStore store;
  Matrix p1(1, 2);
  p1.SetRow(0, {0.8, 0.2});
  store.SetPredictions(0, std::move(p1));
  EXPECT_EQ(store.PredictedClass(0, 0), 0);
  Matrix p2(1, 2);
  p2.SetRow(0, {0.3, 0.7});
  store.SetPredictions(0, std::move(p2));
  EXPECT_EQ(store.PredictedClass(0, 0), 1);
}

}  // namespace
}  // namespace rain
