/// Incremental engine semantics (src/incremental/, DebugSession::ApplyUpdate):
/// delta application, auto/incremental/full policy, incremental-vs-full
/// deletion-sequence equivalence on DBLP and Adult, worker/shard invariance
/// of the incremental path, delta-proportional bind work, exact train-skip
/// memoization, tombstoning, influence-score patching, COW label-edit
/// isolation, and validation atomicity.
#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/complaint.h"
#include "core/pipeline.h"
#include "core/session.h"
#include "data/corruption.h"
#include "data/dblp.h"
#include "gtest/gtest.h"
#include "incremental/update.h"
#include "influence/influence.h"
#include "ml/logistic_regression.h"
#include "serve/builtin_datasets.h"
#include "serve/debug_service.h"
#include "tensor/vector_ops.h"

namespace rain {
namespace {

/// Same seeded fixture as session_test: DBLP with 50% of the match labels
/// flipped, complained about through a COUNT query. Two constructions are
/// bitwise-identical, which is what makes pairwise session comparisons
/// meaningful.
struct DblpSetup {
  std::unique_ptr<Query2Pipeline> pipeline;
  std::vector<size_t> corrupted;
  int64_t true_count = 0;
};

DblpSetup MakeCorruptedDblp() {
  DblpConfig cfg;
  cfg.train_size = 400;
  cfg.query_size = 200;
  cfg.seed = 99;
  DblpData dblp = MakeDblp(cfg);
  DblpSetup setup;
  for (size_t i = 0; i < dblp.query.size(); ++i) {
    setup.true_count += dblp.query.label(i);
  }
  Rng rng(3);
  setup.corrupted =
      CorruptLabels(&dblp.train, IndicesWithLabel(dblp.train, 1), 0.5, 0, &rng);
  Catalog catalog;
  RAIN_CHECK(
      catalog.AddTable("dblp", std::move(dblp.query_table), std::move(dblp.query))
          .ok());
  TrainConfig tc;
  tc.l2 = 1e-3;
  setup.pipeline = std::make_unique<Query2Pipeline>(
      std::move(catalog), std::make_unique<LogisticRegression>(kDblpFeatures),
      std::move(dblp.train), tc);
  RAIN_CHECK(setup.pipeline->Train().ok());
  return setup;
}

PlanPtr CountQuery() {
  return PlanNode::Aggregate(
      PlanNode::Filter(PlanNode::Scan("dblp", "D"),
                       Expr::Eq(Expr::Predict("D"), Expr::LitInt(1))),
      {}, {}, {AggSpec{AggFunc::kCount, nullptr, "cnt"}});
}

QueryComplaints CountComplaint(double target) {
  QueryComplaints qc;
  qc.query = CountQuery();
  qc.complaints = {ComplaintSpec::ValueEq("cnt", target)};
  return qc;
}

/// A complaint that holds under any model: COUNT >= 0.
QueryComplaints TriviallySatisfiedComplaint() {
  QueryComplaints qc;
  qc.query = CountQuery();
  qc.complaints = {ComplaintSpec::ValueEq("cnt", 0)};
  qc.complaints[0].op = ComplaintOp::kGe;
  return qc;
}

/// Suite-wide shard count: RAIN_TEST_SHARDS when set (the CI sharded leg
/// runs this suite at 4), else 0. Sharded execution is bitwise-identical
/// to unsharded, so every assertion must hold for any value.
int TestShards() {
  const char* env = std::getenv("RAIN_TEST_SHARDS");
  return env != nullptr ? std::atoi(env) : 0;
}

std::unique_ptr<DebugSession> BuildSession(Query2Pipeline* pipeline,
                                           double target, int max_deletions,
                                           int parallelism = 1,
                                           int num_shards = -1) {
  if (num_shards < 0) num_shards = TestShards();
  auto built = DebugSessionBuilder(pipeline)
                   .ranker("holistic")
                   .top_k_per_iter(10)
                   .max_deletions(max_deletions)
                   .max_iterations(100)
                   .set_execution(ExecutionOptions()
                                      .set_parallelism(parallelism)
                                      .set_num_shards(num_shards))
                   .workload({CountComplaint(target)})
                   .Build();
  RAIN_CHECK(built.ok()) << built.status().ToString();
  return std::move(*built);
}

/// Reverts the first `k` corrupted labels back to 1 — a realistic
/// "the analyst fixed some rows upstream" delta.
UpdateBatch RevertCorruptionBatch(const std::vector<size_t>& corrupted,
                                  size_t k) {
  UpdateBatch batch;
  for (size_t i = 0; i < k && i < corrupted.size(); ++i) {
    batch.label_edits.push_back(LabelEdit{corrupted[i], 1});
  }
  return batch;
}

// ------------------------------------------------- incremental vs full

/// The core acceptance property: after the same delta, the O(delta)
/// incremental path and the from-scratch full path converge to the same
/// deletion sequence. (Intermediate training trajectories may differ in
/// low-order bits — warm vs cold L-BFGS starts — which is why the
/// contract compares deletion sequences, not floats.)
TEST(IncrementalVsFull, SameDeletionSequenceAfterLabelDeltaDblp) {
  DblpSetup a = MakeCorruptedDblp();
  DblpSetup b = MakeCorruptedDblp();
  const double target = static_cast<double>(a.true_count);
  auto inc = BuildSession(a.pipeline.get(), target, 80);
  auto full = BuildSession(b.pipeline.get(), target, 80);

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(inc->Step().ok());
    ASSERT_TRUE(full->Step().ok());
  }
  ASSERT_EQ(inc->report().deletions, full->report().deletions);

  const UpdateBatch batch = RevertCorruptionBatch(a.corrupted, 8);
  UpdateOptions inc_opts;
  inc_opts.policy = UpdatePolicy::kIncremental;
  UpdateOptions full_opts;
  full_opts.policy = UpdatePolicy::kFull;
  auto inc_rep = inc->ApplyUpdate(batch, inc_opts);
  auto full_rep = full->ApplyUpdate(batch, full_opts);
  ASSERT_TRUE(inc_rep.ok());
  ASSERT_TRUE(full_rep.ok());
  EXPECT_TRUE(inc_rep->incremental);
  EXPECT_FALSE(full_rep->incremental);
  EXPECT_EQ(inc_rep->touched_rows, 8u);
  // The incremental session kept its primed bind cache; the full session
  // dropped everything.
  EXPECT_GT(inc_rep->entries_cached, 0u);
  EXPECT_EQ(full_rep->entries_cached, 0u);

  ASSERT_TRUE(inc->RunToCompletion().ok());
  ASSERT_TRUE(full->RunToCompletion().ok());
  EXPECT_EQ(inc->report().deletions, full->report().deletions);
}

TEST(IncrementalVsFull, SameDeletionSequenceAfterLabelDeltaAdult) {
  serve::HostedDataset hosted =
      serve::MakeAdultHostedDataset(600, 300, 0.3, 13);
  auto pa = serve::MakeSessionPipeline(hosted);
  auto pb = serve::MakeSessionPipeline(hosted);
  auto build = [&](Query2Pipeline* p) {
    auto built = DebugSessionBuilder(p)
                     .ranker("holistic")
                     .top_k_per_iter(10)
                     .max_deletions(60)
                     .max_iterations(50)
                     .workload(hosted.default_workload)
                     .Build();
    RAIN_CHECK(built.ok()) << built.status().ToString();
    return std::move(*built);
  };
  auto inc = build(pa.get());
  auto full = build(pb.get());
  ASSERT_TRUE(inc->Step().ok());
  ASSERT_TRUE(full->Step().ok());
  ASSERT_EQ(inc->report().deletions, full->report().deletions);

  // A 16-row delta: flip the first 16 training labels to class 1.
  UpdateBatch batch;
  for (size_t r = 0; r < 16; ++r) batch.label_edits.push_back(LabelEdit{r, 1});
  UpdateOptions inc_opts;
  inc_opts.policy = UpdatePolicy::kIncremental;
  UpdateOptions full_opts;
  full_opts.policy = UpdatePolicy::kFull;
  ASSERT_TRUE(inc->ApplyUpdate(batch, inc_opts).ok());
  ASSERT_TRUE(full->ApplyUpdate(batch, full_opts).ok());

  ASSERT_TRUE(inc->RunToCompletion().ok());
  ASSERT_TRUE(full->RunToCompletion().ok());
  EXPECT_EQ(inc->report().deletions, full->report().deletions);
}

/// Within the incremental path, results are bitwise-invariant across
/// worker and shard counts (the deterministic-chunk + ordered-replay
/// contracts extend to the delta machinery).
TEST(IncrementalVsFull, IncrementalPathInvariantAcrossWorkersAndShards) {
  std::vector<size_t> reference;
  for (int shards : {1, 4}) {
    for (int workers : {1, 2, 8}) {
      DblpSetup setup = MakeCorruptedDblp();
      auto session = BuildSession(setup.pipeline.get(),
                                  static_cast<double>(setup.true_count), 60,
                                  workers, shards);
      ASSERT_TRUE(session->Step().ok());
      UpdateOptions opts;
      opts.policy = UpdatePolicy::kIncremental;
      ASSERT_TRUE(
          session->ApplyUpdate(RevertCorruptionBatch(setup.corrupted, 8), opts)
              .ok());
      ASSERT_TRUE(session->RunToCompletion().ok());
      if (reference.empty()) {
        reference = session->report().deletions;
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(session->report().deletions, reference)
            << "workers=" << workers << " shards=" << shards;
      }
    }
  }
}

// ------------------------------------------------- delta-proportional bind

/// The AddComplaints regression (satellite): appending one complaint to a
/// primed session re-executes ONLY the new entry; the existing entries are
/// refreshed from the bind cache.
TEST(DeltaBind, AddComplaintsBindsOnlyTheDelta) {
  DblpSetup setup = MakeCorruptedDblp();
  auto session = BuildSession(setup.pipeline.get(),
                              static_cast<double>(setup.true_count), 80);
  ASSERT_TRUE(session->Step().ok());
  const BindCacheStats& stats = session->bind_cache_stats();
  EXPECT_EQ(stats.full_binds, 1u);
  EXPECT_EQ(stats.entries_rebound, 1u);
  EXPECT_EQ(stats.entries_reused, 0u);

  session->AddComplaints(TriviallySatisfiedComplaint());
  ASSERT_TRUE(session->Step().ok());
  // One more rebound entry (the delta), one reuse (the original): bind
  // work proportional to the delta, not the workload.
  EXPECT_EQ(stats.full_binds, 1u);
  EXPECT_EQ(stats.entries_rebound, 2u);
  EXPECT_EQ(stats.entries_reused, 1u);

  ASSERT_TRUE(session->Step().ok());
  // Steady state: everything reuses, nothing re-executes.
  EXPECT_EQ(stats.entries_rebound, 2u);
  EXPECT_EQ(stats.entries_reused, 3u);
  // The encode cache kicked in once roots stabilized across rank turns.
  EXPECT_GT(session->encode_reuses(), 0u);
}

TEST(DeltaBind, RemoveQueryTombstonesWithoutFullRebind) {
  DblpSetup setup = MakeCorruptedDblp();
  auto built = DebugSessionBuilder(setup.pipeline.get())
                   .ranker("holistic")
                   .top_k_per_iter(10)
                   .max_deletions(60)
                   .max_iterations(100)
                   .workload({CountComplaint(static_cast<double>(setup.true_count)),
                              TriviallySatisfiedComplaint()})
                   .Build();
  ASSERT_TRUE(built.ok());
  auto session = std::move(*built);
  ASSERT_TRUE(session->Step().ok());
  const BindCacheStats& stats = session->bind_cache_stats();
  EXPECT_EQ(stats.full_binds, 1u);
  EXPECT_EQ(stats.tombstoned_complaints, 0u);

  ASSERT_TRUE(session->RemoveQuery(1));
  EXPECT_GE(stats.tombstoned_complaints, 1u);
  ASSERT_TRUE(session->Step().ok());
  // The retraction tombstoned arena nodes in place: no full rebind, the
  // surviving entry was served from the cache.
  EXPECT_EQ(stats.full_binds, 1u);
  EXPECT_GE(stats.entries_reused, 1u);
}

// ------------------------------------------------- train-skip memoization

/// A workload-only delta keeps the converged training state: the next
/// turn's train phase is an exact no-op (L-BFGS re-entered at a converged
/// point returns the parameters untouched, so skipping it is bitwise).
TEST(TrainMemo, WorkloadOnlyUpdateSkipsRetraining) {
  DblpSetup setup = MakeCorruptedDblp();
  auto built = DebugSessionBuilder(setup.pipeline.get())
                   .ranker("holistic")
                   .top_k_per_iter(10)
                   .max_deletions(400)
                   .max_iterations(100)
                   .stop_when_resolved()
                   .workload({TriviallySatisfiedComplaint()})
                   .Build();
  ASSERT_TRUE(built.ok());
  auto session = std::move(*built);
  auto first = session->Step();
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->status, StepStatus::kResolved);
  EXPECT_GT(first->stats.train_seconds, 0.0);

  UpdateBatch batch;
  batch.add_queries.push_back(TriviallySatisfiedComplaint());
  auto rep = session->ApplyUpdate(batch);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->incremental);
  EXPECT_TRUE(rep->reopened);
  EXPECT_EQ(rep->touched_rows, 0u);
  ASSERT_FALSE(session->finished());

  auto second = session->Step();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, StepStatus::kResolved);
  // Exact train skip: no data delta invalidated the memo.
  EXPECT_EQ(second->stats.train_seconds, 0.0);
}

TEST(TrainMemo, DataDeltaInvalidatesTheMemo) {
  DblpSetup setup = MakeCorruptedDblp();
  auto built = DebugSessionBuilder(setup.pipeline.get())
                   .ranker("holistic")
                   .max_deletions(400)
                   .max_iterations(100)
                   .stop_when_resolved()
                   .workload({TriviallySatisfiedComplaint()})
                   .Build();
  ASSERT_TRUE(built.ok());
  auto session = std::move(*built);
  ASSERT_TRUE(session->Step().ok());

  UpdateBatch batch = RevertCorruptionBatch(setup.corrupted, 4);
  auto rep = session->ApplyUpdate(batch);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->incremental);
  auto second = session->Step();
  ASSERT_TRUE(second.ok());
  // The labels changed, so the warm retrain actually ran.
  EXPECT_GT(second->stats.train_seconds, 0.0);
}

// ------------------------------------------------- policy + delta log

TEST(UpdatePolicyTest, AutoThresholdsOnTouchedFraction) {
  DblpSetup setup = MakeCorruptedDblp();
  auto session = BuildSession(setup.pipeline.get(),
                              static_cast<double>(setup.true_count), 60);
  ASSERT_TRUE(session->Step().ok());

  // 1 touched row out of 400: far below the default 25% threshold.
  auto small = session->ApplyUpdate(RevertCorruptionBatch(setup.corrupted, 1));
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(small->incremental);

  // 200 touched rows out of 400: above the threshold, auto goes full.
  UpdateBatch big;
  for (size_t r = 0; r < 200; ++r) {
    big.label_edits.push_back(LabelEdit{r, setup.pipeline->train_data()->label(r)});
  }
  auto large = session->ApplyUpdate(big);
  ASSERT_TRUE(large.ok());
  EXPECT_FALSE(large->incremental);
  EXPECT_EQ(large->entries_cached, 0u);
  EXPECT_TRUE(session->last_influence_solution().empty());

  // Both batches (plus nothing else) are journaled.
  EXPECT_EQ(session->delta_log().size(), 2u);
  EXPECT_EQ(session->delta_log().total_touched(), 201u);
  // The session survives a full reset mid-flight.
  ASSERT_TRUE(session->RunToCompletion().ok());
}

// ------------------------------------------------- influence patching

/// PatchInfluenceScores reproduces InfluenceScorer's arithmetic exactly:
/// patching every row against the scorer's own CG solution recovers
/// ScoreAll() bitwise, and patching a subset touches only that subset.
TEST(InfluencePatch, MatchesScorerBitwise) {
  DblpSetup setup = MakeCorruptedDblp();
  Query2Pipeline* pipeline = setup.pipeline.get();
  const Model* model = pipeline->model();
  const Dataset* train = pipeline->train_data();

  InfluenceScorer scorer(model, train);
  Vec q_grad(model->num_params(), 1.0);
  ASSERT_TRUE(scorer.Prepare(q_grad).ok());
  const std::vector<double> reference = scorer.ScoreAll();
  ASSERT_FALSE(scorer.solution().empty());

  std::vector<size_t> all(train->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<double> patched(train->size(), 0.0);
  EXPECT_EQ(PatchInfluenceScores(*model, *train, scorer.solution(), all,
                                 &patched),
            train->size());
  EXPECT_EQ(patched, reference);  // bitwise, element for element

  // Subset patch after a data delta: touched rows get the fresh value,
  // untouched rows keep the old one.
  Dataset mutated = train->View();
  mutated.set_label(setup.corrupted[0], 1);
  mutated.Deactivate(setup.corrupted[1]);
  const std::vector<size_t> touched = {setup.corrupted[0], setup.corrupted[1]};
  std::vector<double> full_rescore(train->size(), 0.0);
  PatchInfluenceScores(*model, mutated, scorer.solution(), all, &full_rescore);
  std::vector<double> subset = reference;
  EXPECT_EQ(PatchInfluenceScores(*model, mutated, scorer.solution(), touched,
                                 &subset),
            2u);
  for (size_t i = 0; i < subset.size(); ++i) {
    const bool is_touched =
        std::find(touched.begin(), touched.end(), i) != touched.end();
    EXPECT_EQ(subset[i], is_touched ? full_rescore[i] : reference[i]) << i;
  }
  EXPECT_EQ(subset[setup.corrupted[1]], 0.0);  // deactivated rows score 0
}

TEST(InfluencePatch, ApplyUpdatePreviewPatchesTouchedRows) {
  DblpSetup setup = MakeCorruptedDblp();
  auto session = BuildSession(setup.pipeline.get(),
                              static_cast<double>(setup.true_count), 60);
  ASSERT_TRUE(session->Step().ok());  // a rank turn caches the CG solution
  ASSERT_FALSE(session->last_influence_solution().empty());

  auto rep = session->ApplyUpdate(RevertCorruptionBatch(setup.corrupted, 5));
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->incremental);
  EXPECT_EQ(rep->patched_scores, 5u);

  UpdateOptions no_preview;
  no_preview.preview_influence = false;
  auto rep2 = session->ApplyUpdate(RevertCorruptionBatch(setup.corrupted, 5),
                                   no_preview);
  ASSERT_TRUE(rep2.ok());
  EXPECT_EQ(rep2->patched_scores, 0u);
}

// ------------------------------------------------- COW label isolation

/// Dataset::set_label detaches shared storage: a hosted session editing
/// its COW view never leaks the edit to sibling views or the registered
/// base dataset, while its own incremental path sees it immediately.
TEST(CowIsolation, LabelEditDetachesFromSiblings) {
  serve::HostedDataset hosted = serve::MakeDblpHostedDataset(300, 150, 0.3, 7);
  const int original = hosted.train.label(5);

  auto pipeline = serve::MakeSessionPipeline(hosted);
  Dataset sibling = hosted.train.View();
  ASSERT_TRUE(sibling.SharesStorageWith(hosted.train));

  auto built = DebugSessionBuilder(pipeline.get())
                   .ranker("holistic")
                   .max_deletions(40)
                   .max_iterations(20)
                   .workload(hosted.default_workload)
                   .Build();
  ASSERT_TRUE(built.ok());
  auto session = std::move(*built);
  ASSERT_TRUE(session->Step().ok());

  UpdateBatch batch;
  batch.label_edits.push_back(LabelEdit{5, 1 - original});
  ASSERT_TRUE(session->ApplyUpdate(batch).ok());

  // The detaching session sees the edit...
  EXPECT_EQ(pipeline->train_data()->label(5), 1 - original);
  EXPECT_FALSE(pipeline->train_data()->SharesStorageWith(hosted.train));
  // ...and nobody else does.
  EXPECT_EQ(hosted.train.label(5), original);
  EXPECT_EQ(sibling.label(5), original);
  EXPECT_TRUE(sibling.SharesStorageWith(hosted.train));

  // The session keeps debugging the edited view.
  ASSERT_TRUE(session->RunToCompletion().ok());
}

// ------------------------------------------------- validation atomicity

TEST(UpdateValidation, ErrorsLeaveTheSessionUnchanged) {
  DblpSetup setup = MakeCorruptedDblp();
  auto session = BuildSession(setup.pipeline.get(),
                              static_cast<double>(setup.true_count), 60);
  ASSERT_TRUE(session->Step().ok());
  const size_t n = setup.pipeline->train_data()->size();
  const int label0 = setup.pipeline->train_data()->label(0);

  // A batch mixing one valid edit with one invalid row must apply NOTHING.
  UpdateBatch bad_row;
  bad_row.label_edits.push_back(LabelEdit{0, 1 - label0});
  bad_row.deactivate_rows.push_back(n + 7);
  EXPECT_EQ(session->ApplyUpdate(bad_row).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(setup.pipeline->train_data()->label(0), label0);

  UpdateBatch bad_label;
  bad_label.label_edits.push_back(LabelEdit{0, 99});
  EXPECT_EQ(session->ApplyUpdate(bad_label).status().code(),
            StatusCode::kInvalidArgument);

  UpdateBatch bad_remove;
  bad_remove.remove_queries.push_back(42);
  EXPECT_EQ(session->ApplyUpdate(bad_remove).status().code(),
            StatusCode::kInvalidArgument);

  // Failed updates are not journaled.
  EXPECT_EQ(session->delta_log().size(), 0u);
  ASSERT_TRUE(session->RunToCompletion().ok());
}

}  // namespace
}  // namespace rain
