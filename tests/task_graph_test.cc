/// TaskGraph / Future / CancellationToken semantics: value and exception
/// flow through futures, dependency-edge ordering, graph-level
/// cooperative cancellation, token trees and deadlines, and the
/// cancellable CG solve (sync + async task form).
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "influence/conjugate_gradient.h"

namespace rain {
namespace {

// ---------------------------------------------------------------- tokens

TEST(CancellationTokenTest, FreshTokenDoesNotStop) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadline_passed());
  EXPECT_FALSE(token.ShouldStop());
}

TEST(CancellationTokenTest, CancelIsStickyAndSharedAcrossCopies) {
  CancellationToken token;
  CancellationToken copy = token;
  token.Cancel();
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_TRUE(copy.cancelled()) << "copies view the same state";
}

TEST(CancellationTokenTest, DeadlineArmsAndClears) {
  CancellationToken token;
  token.set_deadline(std::chrono::steady_clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(token.deadline_passed());
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_FALSE(token.cancelled()) << "a deadline is not a cancel";
  token.clear_deadline();
  EXPECT_FALSE(token.ShouldStop());
  token.set_deadline(std::chrono::steady_clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(token.deadline_passed());
}

TEST(CancellationTokenTest, ChildStopsWithParentButNotViceVersa) {
  CancellationToken parent;
  CancellationToken child = parent.MakeChild();
  CancellationToken sibling = parent.MakeChild();

  child.Cancel();
  EXPECT_TRUE(child.ShouldStop());
  EXPECT_FALSE(parent.cancelled()) << "cancelling a child leaves the parent";
  EXPECT_FALSE(sibling.cancelled()) << "...and its siblings";

  parent.Cancel();
  EXPECT_TRUE(sibling.cancelled()) << "parent cancellation reaches every child";

  CancellationToken deadline_parent;
  CancellationToken grandchild = deadline_parent.MakeChild().MakeChild();
  deadline_parent.set_deadline(std::chrono::steady_clock::now() -
                               std::chrono::seconds(1));
  EXPECT_TRUE(grandchild.ShouldStop()) << "deadlines propagate down the tree";
}

// --------------------------------------------------------------- futures

TEST(FutureTest, ValueFlowsFromPromise) {
  Promise<int> promise;
  Future<int> future = promise.future();
  EXPECT_FALSE(future.Ready());
  promise.Set(42);
  EXPECT_TRUE(future.Ready());
  EXPECT_EQ(future.Get(), 42);
}

TEST(FutureTest, ExceptionRethrownAtGet) {
  Promise<int> promise;
  Future<int> future = promise.future();
  promise.SetException(std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_THROW((void)future.Get(), std::runtime_error);
}

// ------------------------------------------------------------ task graph

TEST(TaskGraphTest, RunsTasksAndReturnsValues) {
  TaskGraph graph;
  Future<int> a = graph.Submit("a", {}, [](const CancellationToken&) { return 7; });
  Future<std::string> b =
      graph.Submit("b", {}, [](const CancellationToken&) { return std::string("x"); });
  EXPECT_EQ(a.Get(), 7);
  EXPECT_EQ(b.Get(), "x");
  graph.WaitAll();
  EXPECT_EQ(graph.num_submitted(), 2u);
  EXPECT_EQ(graph.num_completed(), 2u);
}

TEST(TaskGraphTest, DependencyEdgesOrderExecution) {
  // A chain a -> b -> c and a diamond (d, e) -> f: each task appends its
  // tag after asserting its dependencies already ran.
  TaskGraph graph;
  std::mutex mu;
  std::vector<std::string> trace;
  auto record = [&](const std::string& tag) {
    std::lock_guard<std::mutex> lock(mu);
    trace.push_back(tag);
  };
  auto index_of = [&](const std::string& tag) {
    for (size_t i = 0; i < trace.size(); ++i) {
      if (trace[i] == tag) return static_cast<ptrdiff_t>(i);
    }
    return static_cast<ptrdiff_t>(-1);
  };

  TaskGraph::TaskId a_id, b_id, d_id, e_id;
  graph.Submit("a", {}, [&](const CancellationToken&) { record("a"); return 0; },
               &a_id);
  graph.Submit("b", {a_id},
               [&](const CancellationToken&) { record("b"); return 0; }, &b_id);
  Future<int> c = graph.Submit(
      "c", {b_id}, [&](const CancellationToken&) { record("c"); return 0; });
  graph.Submit("d", {}, [&](const CancellationToken&) { record("d"); return 0; },
               &d_id);
  graph.Submit("e", {}, [&](const CancellationToken&) { record("e"); return 0; },
               &e_id);
  Future<int> f = graph.Submit(
      "f", {d_id, e_id}, [&](const CancellationToken&) { record("f"); return 0; });
  c.Get();
  f.Get();
  graph.WaitAll();

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_LT(index_of("a"), index_of("b"));
  EXPECT_LT(index_of("b"), index_of("c"));
  EXPECT_LT(index_of("d"), index_of("f"));
  EXPECT_LT(index_of("e"), index_of("f"));
}

TEST(TaskGraphTest, DependingOnCompletedTaskRunsImmediately) {
  TaskGraph graph;
  TaskGraph::TaskId a_id;
  Future<int> a =
      graph.Submit("a", {}, [](const CancellationToken&) { return 1; }, &a_id);
  EXPECT_EQ(a.Get(), 1);  // a certainly completed
  Future<int> b =
      graph.Submit("b", {a_id}, [](const CancellationToken&) { return 2; });
  EXPECT_EQ(b.Get(), 2);
}

TEST(TaskGraphTest, ManyTasksAllComplete) {
  TaskGraph graph;
  std::atomic<int> ran{0};
  std::vector<Future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(graph.Submit(
        "t" + std::to_string(i), {},
        [&ran, i](const CancellationToken&) { ++ran; return i; }));
  }
  graph.WaitAll();
  EXPECT_EQ(ran.load(), 64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[static_cast<size_t>(i)].Get(), i);
}

TEST(TaskGraphTest, ExceptionInTaskSurfacesThroughFuture) {
  TaskGraph graph;
  Future<int> f = graph.Submit("throws", {}, [](const CancellationToken&) -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW((void)f.Get(), std::runtime_error);
  graph.WaitAll();  // the failed task still counts as completed
  EXPECT_EQ(graph.num_completed(), 1u);
}

TEST(TaskGraphTest, CancelReachesTaskBodiesCooperatively) {
  TaskGraph graph;
  graph.Cancel();
  // Bodies still run (futures must resolve) but see the stop request.
  Future<bool> saw = graph.Submit(
      "obedient", {},
      [](const CancellationToken& token) { return token.ShouldStop(); });
  EXPECT_TRUE(saw.Get());
}

// ------------------------------------------------- cancellable CG solve

/// SPD operator A = diag(2) with an op-call counter and an optional
/// trigger that cancels `token` after `cancel_after` products.
struct CountingOperator {
  std::atomic<int>* calls;
  CancellationToken* token = nullptr;
  int cancel_after = -1;

  void operator()(const Vec& v, Vec* out) const {
    const int n = ++*calls;
    if (token != nullptr && cancel_after >= 0 && n >= cancel_after) token->Cancel();
    out->assign(v.size(), 0.0);
    for (size_t i = 0; i < v.size(); ++i) (*out)[i] = 2.0 * v[i];
  }
};

TEST(CancellableCgTest, UncancelledSolveIsUnaffectedByToken) {
  Vec b(32, 1.0);
  CgOptions plain;
  auto ref = ConjugateGradient([](const Vec& v, Vec* out) {
    out->assign(v.size(), 0.0);
    for (size_t i = 0; i < v.size(); ++i) (*out)[i] = 2.0 * v[i];
  }, b, plain);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(ref->converged);

  CancellationToken token;
  CgOptions with_token = plain;
  with_token.cancel = &token;
  std::atomic<int> calls{0};
  auto solved = ConjugateGradient(CountingOperator{&calls}, b, with_token);
  ASSERT_TRUE(solved.ok());
  EXPECT_EQ(solved->x, ref->x) << "an idle token must not perturb the solve";
}

TEST(CancellableCgTest, MidSolveCancelStopsWithinOneProduct) {
  // A 64-dim random-ish SPD problem that needs many CG iterations would
  // converge in 1 for diag(2); build a harder diagonal instead.
  const size_t n = 64;
  Vec diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = 1.0 + static_cast<double>(i % 17);
  Vec b(n);
  for (size_t i = 0; i < n; ++i) b[i] = std::sin(static_cast<double>(i) + 1.0);

  CancellationToken token;
  std::atomic<int> calls{0};
  CgOptions options;
  options.cancel = &token;
  options.tol = 1e-14;  // force many iterations
  auto op = [&](const Vec& v, Vec* out) {
    const int c = ++calls;
    if (c >= 3) token.Cancel();
    out->assign(n, 0.0);
    for (size_t i = 0; i < n; ++i) (*out)[i] = diag[i] * v[i];
  };
  auto solved = ConjugateGradient(op, b, options);
  ASSERT_FALSE(solved.ok());
  EXPECT_TRUE(solved.status().IsCancelled()) << solved.status().ToString();
  // Cancelled on product 3, observed at the head of the next iteration:
  // at most one further product can have been issued.
  EXPECT_LE(calls.load(), 4);
}

TEST(CancellableCgTest, AsyncTaskFormMatchesSyncResult) {
  const size_t n = 48;
  Vec b(n);
  for (size_t i = 0; i < n; ++i) b[i] = std::cos(static_cast<double>(i));
  auto op = [](const Vec& v, Vec* out) {
    out->assign(v.size(), 0.0);
    for (size_t i = 0; i < v.size(); ++i) {
      (*out)[i] = (3.0 + static_cast<double>(i % 5)) * v[i];
    }
  };
  CgOptions options;
  auto sync = ConjugateGradient(op, b, options);
  ASSERT_TRUE(sync.ok());

  TaskGraph graph;
  Future<Result<CgReport>> future = ConjugateGradientAsync(&graph, op, b, options);
  Result<CgReport> async = future.Get();
  ASSERT_TRUE(async.ok());
  EXPECT_EQ(async->x, sync->x) << "task-form solve must be bitwise identical";
  EXPECT_EQ(async->iterations, sync->iterations);
}

TEST(CancellableCgTest, GraphCancelAbortsAsyncSolve) {
  const size_t n = 48;
  Vec b(n, 1.0);
  TaskGraph graph;
  graph.Cancel();  // cancelled before the task even starts
  auto op = [](const Vec& v, Vec* out) {
    out->assign(v.size(), 0.0);
    for (size_t i = 0; i < v.size(); ++i) (*out)[i] = 2.0 * v[i];
  };
  CgOptions options;
  options.tol = 1e-14;
  Future<Result<CgReport>> future = ConjugateGradientAsync(&graph, op, b, options);
  Result<CgReport> report = future.Get();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCancelled()) << report.status().ToString();
}

}  // namespace
}  // namespace rain
