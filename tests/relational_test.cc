#include "gtest/gtest.h"
#include "provenance/poly.h"
#include "provenance/prediction_store.h"
#include "relational/catalog.h"
#include "relational/executor.h"
#include "relational/expression.h"
#include "relational/plan.h"
#include "relational/table.h"
#include "relational/value.h"

namespace rain {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value(int64_t{3}).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value(std::string("x")).is_string());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_EQ(Value(int64_t{3}).AsInt64(), 3);
  EXPECT_EQ(Value(std::string("x")).AsString(), "x");
}

TEST(ValueTest, NumericWidening) {
  EXPECT_DOUBLE_EQ(*Value(int64_t{3}).ToNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(*Value(true).ToNumeric(), 1.0);
  EXPECT_FALSE(Value(std::string("x")).ToNumeric().ok());
}

TEST(ValueTest, CompareAcrossNumericKinds) {
  EXPECT_EQ(*Value(int64_t{3}).Compare(Value(3.0)), 0);
  EXPECT_EQ(*Value(int64_t{2}).Compare(Value(3.0)), -1);
  EXPECT_EQ(*Value(std::string("b")).Compare(Value(std::string("a"))), 1);
  EXPECT_FALSE(Value(std::string("a")).Compare(Value(int64_t{1})).ok());
}

TEST(SchemaTest, FindFieldWithQualifier) {
  Schema s({Field{"id", DataType::kInt64, "L"}, Field{"id", DataType::kInt64, "R"},
            Field{"name", DataType::kString, "L"}});
  EXPECT_EQ(s.FindField("id"), -1);  // ambiguous
  EXPECT_EQ(s.FindField("id", "L"), 0);
  EXPECT_EQ(s.FindField("id", "R"), 1);
  EXPECT_EQ(s.FindField("name"), 2);
  EXPECT_EQ(s.FindField("missing"), -1);
}

TEST(TableTest, AppendAndGet) {
  Table t(Schema({Field{"id", DataType::kInt64, ""}, Field{"name", DataType::kString, ""}}));
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value(std::string("a"))}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2}), Value(std::string("b"))}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Get(1, 1).AsString(), "b");
  EXPECT_EQ(t.GetRow(0)[0].AsInt64(), 1);
}

TEST(TableTest, AppendRowChecksTypes) {
  Table t(Schema({Field{"id", DataType::kInt64, ""}}));
  EXPECT_FALSE(t.AppendRow({Value(1.5)}).ok());
  EXPECT_FALSE(t.AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
}

/// Fixture: a catalog with a "users" table (id, score, city) whose rows
/// feed a 2-class model, and a "logins" table (uid, active). Predictions
/// are installed manually to make provenance deterministic.
class ExecFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Table users(Schema({Field{"id", DataType::kInt64, ""},
                        Field{"score", DataType::kDouble, ""},
                        Field{"city", DataType::kString, ""}}));
    // 4 users.
    users.AppendRowUnchecked({Value(int64_t{0}), Value(1.0), Value(std::string("ny"))});
    users.AppendRowUnchecked({Value(int64_t{1}), Value(2.0), Value(std::string("sf"))});
    users.AppendRowUnchecked({Value(int64_t{2}), Value(3.0), Value(std::string("ny"))});
    users.AppendRowUnchecked({Value(int64_t{3}), Value(4.0), Value(std::string("la"))});
    Matrix feats(4, 2, 0.0);
    Dataset user_features(std::move(feats), {0, 1, 1, 0}, 2);
    ASSERT_TRUE(catalog_.AddTable("users", std::move(users), std::move(user_features)).ok());

    Table logins(Schema({Field{"uid", DataType::kInt64, ""},
                         Field{"active", DataType::kBool, ""}}));
    logins.AppendRowUnchecked({Value(int64_t{0}), Value(true)});
    logins.AppendRowUnchecked({Value(int64_t{1}), Value(true)});
    logins.AppendRowUnchecked({Value(int64_t{2}), Value(false)});
    logins.AppendRowUnchecked({Value(int64_t{3}), Value(true)});
    ASSERT_TRUE(catalog_.AddTable("logins", std::move(logins)).ok());

    // Predictions for users: rows 1, 2 predicted class 1 ("churn").
    Matrix probs(4, 2);
    probs.SetRow(0, {0.8, 0.2});
    probs.SetRow(1, {0.3, 0.7});
    probs.SetRow(2, {0.1, 0.9});
    probs.SetRow(3, {0.6, 0.4});
    predictions_.SetPredictions(0, std::move(probs));
  }

  Result<ExecResult> Run(const PlanPtr& plan, bool debug) {
    Executor executor(&catalog_, &predictions_, &arena_);
    ExecOptions opts;
    opts.debug_mode = debug;
    return executor.Run(plan, opts);
  }

  Catalog catalog_;
  PredictionStore predictions_;
  PolyArena arena_;
};

TEST_F(ExecFixture, ScanProducesAllRows) {
  auto r = Run(PlanNode::Scan("users", "U"), false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 4u);
  EXPECT_EQ(r->table.NumConcrete(), 4u);
  EXPECT_EQ(r->table.schema.field(0).qualifier, "U");
}

TEST_F(ExecFixture, ScanUnknownTableFails) {
  EXPECT_FALSE(Run(PlanNode::Scan("nope"), false).ok());
}

TEST_F(ExecFixture, FilterOnConcreteColumn) {
  auto plan = PlanNode::Filter(
      PlanNode::Scan("users", "U"),
      Expr::Eq(Expr::Column("city"), Expr::LitString("ny")));
  auto r = Run(plan, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 2u);
}

TEST_F(ExecFixture, FilterOnPredictionConcrete) {
  auto plan = PlanNode::Filter(
      PlanNode::Scan("users", "U"),
      Expr::Eq(Expr::Predict("U"), Expr::LitInt(1)));
  auto r = Run(plan, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 2u);  // users 1 and 2 predicted churn
}

TEST_F(ExecFixture, DebugFilterKeepsCandidates) {
  auto plan = PlanNode::Filter(
      PlanNode::Scan("users", "U"),
      Expr::Eq(Expr::Predict("U"), Expr::LitInt(1)));
  auto r = Run(plan, true);
  ASSERT_TRUE(r.ok());
  // All 4 rows remain candidates (any user *could* be predicted churn)...
  EXPECT_EQ(r->table.num_rows(), 4u);
  // ...but only 2 are concrete.
  EXPECT_EQ(r->table.NumConcrete(), 2u);
  // Conditions are single prediction variables v(row, 1).
  for (size_t i = 0; i < 4; ++i) {
    const PolyNode& n = arena_.node(r->table.cond[i]);
    EXPECT_EQ(n.op, PolyOp::kVar);
    EXPECT_EQ(arena_.var(n.var).cls, 1);
  }
}

TEST_F(ExecFixture, DebugFilterMixedPredicate) {
  // predict = 1 AND city = 'ny': city is concrete, so candidates are only
  // the 'ny' rows (0 and 2); concrete output is row 2 alone.
  auto plan = PlanNode::Filter(
      PlanNode::Scan("users", "U"),
      Expr::And(Expr::Eq(Expr::Predict("U"), Expr::LitInt(1)),
                Expr::Eq(Expr::Column("city"), Expr::LitString("ny"))));
  auto r = Run(plan, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 2u);
  EXPECT_EQ(r->table.NumConcrete(), 1u);
}

TEST_F(ExecFixture, HashJoinOnConcreteKeys) {
  auto plan = PlanNode::Join(
      PlanNode::Scan("users", "U"), PlanNode::Scan("logins", "L"),
      Expr::Eq(Expr::Column("id", "U"), Expr::Column("uid", "L")));
  auto r = Run(plan, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 4u);
  EXPECT_EQ(r->table.schema.num_fields(), 5u);
}

TEST_F(ExecFixture, JoinWithResidualPredicate) {
  auto pred = Expr::And(
      Expr::Eq(Expr::Column("id", "U"), Expr::Column("uid", "L")),
      Expr::Eq(Expr::Column("active", "L"), Expr::LitBool(true)));
  auto plan = PlanNode::Join(PlanNode::Scan("users", "U"),
                             PlanNode::Scan("logins", "L"), pred);
  auto r = Run(plan, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 3u);  // login row 2 is inactive
}

TEST_F(ExecFixture, GlobalCountAggregate) {
  auto plan = PlanNode::Aggregate(
      PlanNode::Filter(PlanNode::Scan("users", "U"),
                       Expr::Eq(Expr::Predict("U"), Expr::LitInt(1))),
      {}, {}, {AggSpec{AggFunc::kCount, nullptr, "cnt"}});
  auto r = Run(plan, true);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->is_aggregate);
  ASSERT_EQ(r->table.num_rows(), 1u);
  EXPECT_EQ(r->table.rows[0][0].AsInt64(), 2);  // concrete count

  // The count polynomial is sum of 4 prediction vars: under concrete
  // assignment it evaluates to 2, under relaxed to sum of p(row,1).
  const PolyId poly = r->agg_polys[0][0];
  const Vec concrete = predictions_.ConcreteAssignment(arena_);
  EXPECT_DOUBLE_EQ(arena_.Evaluate(poly, concrete), 2.0);
  const Vec relaxed = predictions_.RelaxedAssignment(arena_);
  EXPECT_NEAR(arena_.Evaluate(poly, relaxed), 0.2 + 0.7 + 0.9 + 0.4, 1e-12);
}

TEST_F(ExecFixture, SumAndAvgAggregates) {
  auto plan = PlanNode::Aggregate(
      PlanNode::Scan("users", "U"), {}, {},
      {AggSpec{AggFunc::kSum, Expr::Column("score"), "s"},
       AggSpec{AggFunc::kAvg, Expr::Column("score"), "a"}});
  auto r = Run(plan, false);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->table.rows[0][0].AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(r->table.rows[0][1].AsDouble(), 2.5);
}

TEST_F(ExecFixture, GroupByConcreteColumn) {
  auto plan = PlanNode::Aggregate(
      PlanNode::Scan("users", "U"), {Expr::Column("city")}, {"city"},
      {AggSpec{AggFunc::kCount, nullptr, "cnt"}});
  auto r = Run(plan, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 3u);  // ny, sf, la
  int64_t total = 0;
  for (const auto& row : r->table.rows) total += row[1].AsInt64();
  EXPECT_EQ(total, 4);
}

TEST_F(ExecFixture, AvgOfPredictionGroupedByCity) {
  // AVG(predict(U)) GROUP BY city — the Q6/Q7 shape.
  auto plan = PlanNode::Aggregate(
      PlanNode::Scan("users", "U"), {Expr::Column("city")}, {"city"},
      {AggSpec{AggFunc::kAvg, Expr::Predict("U"), "avg_churn"}});
  auto r = Run(plan, true);
  ASSERT_TRUE(r.ok());
  // ny = users {0, 2}: predictions {0, 1} -> avg 0.5.
  bool found_ny = false;
  for (size_t i = 0; i < r->table.num_rows(); ++i) {
    if (r->table.rows[i][0].AsString() == "ny") {
      found_ny = true;
      EXPECT_DOUBLE_EQ(r->table.rows[i][1].AsDouble(), 0.5);
      // Relaxed value: (p0 + p2)/2 = (0.2 + 0.9)/2.
      const Vec relaxed = predictions_.RelaxedAssignment(arena_);
      EXPECT_NEAR(arena_.Evaluate(r->agg_polys[i][0], relaxed), 0.55, 1e-12);
    }
  }
  EXPECT_TRUE(found_ny);
}

TEST_F(ExecFixture, GroupByPredictionExpandsCandidates) {
  // GROUP BY predict(U) — the Q5 shape. Debug mode yields one group per
  // class with candidate membership for every row.
  auto plan = PlanNode::Aggregate(
      PlanNode::Scan("users", "U"), {Expr::Predict("U")}, {"cls"},
      {AggSpec{AggFunc::kCount, nullptr, "cnt"}});
  auto r = Run(plan, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 2u);  // classes 0 and 1
  const Vec concrete = predictions_.ConcreteAssignment(arena_);
  for (size_t i = 0; i < 2; ++i) {
    const int64_t cls = r->table.rows[i][0].AsInt64();
    const int64_t cnt = r->table.rows[i][1].AsInt64();
    EXPECT_EQ(cnt, 2);  // 2 users per predicted class
    EXPECT_DOUBLE_EQ(arena_.Evaluate(r->agg_polys[i][0], concrete),
                     static_cast<double>(cnt))
        << "class " << cls;
  }
}

TEST_F(ExecFixture, ProjectComputesExpressions) {
  auto plan = PlanNode::Project(
      PlanNode::Scan("users", "U"),
      {Expr::Column("id"), Expr::Arith(ArithOp::kMul, Expr::Column("score"),
                                       Expr::LitDouble(2.0))},
      {"id", "double_score"});
  auto r = Run(plan, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.schema.field(1).name, "double_score");
  EXPECT_DOUBLE_EQ(r->table.rows[3][1].AsDouble(), 8.0);
}

TEST_F(ExecFixture, SelfJoinOnPredictions) {
  // users U join users V on predict(U) = predict(V) AND U.id < V.id.
  auto pred = Expr::And(
      Expr::Eq(Expr::Predict("U"), Expr::Predict("V")),
      Expr::Compare(CompareOp::kLt, Expr::Column("id", "U"), Expr::Column("id", "V")));
  auto plan = PlanNode::Join(PlanNode::Scan("users", "U"),
                             PlanNode::Scan("users", "V"), pred);
  auto r = Run(plan, true);
  ASSERT_TRUE(r.ok());
  // Concrete matches: (0,3) both class 0; (1,2) both class 1.
  EXPECT_EQ(r->table.NumConcrete(), 2u);
  // Candidates: all 6 ordered pairs (id predicate is concrete).
  EXPECT_EQ(r->table.num_rows(), 6u);
  // Same-base-row variables are shared between the two aliases: the
  // arena should only hold vars for 4 rows x 2 classes.
  EXPECT_LE(arena_.num_vars(), 8u);
}

TEST_F(ExecFixture, TupleConditionEvaluatesCorrectly) {
  auto pred = Expr::Eq(Expr::Predict("U"), Expr::Predict("V"));
  auto plan = PlanNode::Join(PlanNode::Scan("users", "U"),
                             PlanNode::Scan("users", "V"), pred);
  auto r = Run(plan, true);
  ASSERT_TRUE(r.ok());
  const Vec concrete = predictions_.ConcreteAssignment(arena_);
  for (size_t i = 0; i < r->table.num_rows(); ++i) {
    const double v = arena_.Evaluate(r->table.cond[i], concrete);
    EXPECT_DOUBLE_EQ(v, r->table.concrete[i] ? 1.0 : 0.0);
  }
}

TEST_F(ExecFixture, AggregateOnlyAtRoot) {
  auto agg = PlanNode::Aggregate(PlanNode::Scan("users", "U"), {}, {},
                                 {AggSpec{AggFunc::kCount, nullptr, "c"}});
  auto plan = PlanNode::Filter(
      agg, Expr::Compare(CompareOp::kGt, Expr::Column("c"), Expr::LitInt(0)));
  EXPECT_FALSE(Run(plan, false).ok());
}

TEST_F(ExecFixture, EmptyGlobalAggregateStillEmitsRow) {
  auto plan = PlanNode::Aggregate(
      PlanNode::Filter(PlanNode::Scan("users", "U"),
                       Expr::Eq(Expr::Column("city"), Expr::LitString("tokyo"))),
      {}, {}, {AggSpec{AggFunc::kCount, nullptr, "cnt"}});
  auto r = Run(plan, false);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->table.num_rows(), 1u);
  EXPECT_EQ(r->table.rows[0][0].AsInt64(), 0);
}

TEST_F(ExecFixture, DuplicateAliasRejected) {
  auto plan = PlanNode::Join(PlanNode::Scan("users", "U"),
                             PlanNode::Scan("users", "U"), Expr::LitBool(true));
  EXPECT_FALSE(Run(plan, false).ok());
}

TEST(ExpressionTest, BindResolvesColumns) {
  Schema s({Field{"a", DataType::kInt64, "T"}, Field{"b", DataType::kDouble, "T"}});
  auto e = Expr::Eq(Expr::Column("a"), Expr::LitInt(1));
  auto bound = BindExpr(e, s, {});
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ((*bound)->children[0]->column_index, 0);
  EXPECT_FALSE(BindExpr(Expr::Column("zz"), s, {}).ok());
}

TEST(ExpressionTest, EvalArithmeticAndLogic) {
  Schema s({Field{"x", DataType::kDouble, ""}});
  std::vector<Value> row{Value(3.0)};
  EvalContext ctx;
  ctx.values = &row;
  auto e = Expr::Arith(ArithOp::kAdd, Expr::Column("x"), Expr::LitDouble(2.0));
  auto bound = BindExpr(e, s, {});
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(EvalExpr(**bound, ctx)->AsDouble(), 5.0);

  auto cmp = BindExpr(Expr::Compare(CompareOp::kGe, Expr::Column("x"), Expr::LitInt(3)),
                      s, {});
  ASSERT_TRUE(cmp.ok());
  EXPECT_TRUE(EvalExpr(**cmp, ctx)->AsBool());
}

TEST(ExpressionTest, DivisionByZeroIsError) {
  Schema s;
  std::vector<Value> row;
  EvalContext ctx;
  ctx.values = &row;
  auto e = Expr::Arith(ArithOp::kDiv, Expr::LitDouble(1.0), Expr::LitDouble(0.0));
  EXPECT_FALSE(EvalExpr(*e, ctx).ok());
}

TEST(ExpressionTest, IsModelDependent) {
  EXPECT_TRUE(Expr::Eq(Expr::Predict("T"), Expr::LitInt(1))->IsModelDependent());
  EXPECT_FALSE(Expr::Eq(Expr::Column("a"), Expr::LitInt(1))->IsModelDependent());
}

TEST(ExpressionTest, ToStringRenders) {
  auto e = Expr::And(Expr::Eq(Expr::Predict("U"), Expr::LitInt(1)),
                     Expr::Like(Expr::Column("text"), "%http%"));
  EXPECT_EQ(e->ToString(), "((predict(U) = 1) AND (text LIKE '%http%'))");
}

}  // namespace
}  // namespace rain
