#include "common/rng.h"
#include "common/string_util.h"
#include "core/complaint.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "core/ranker.h"
#include "core/session.h"
#include "data/adult.h"
#include "data/corruption.h"
#include "data/enron.h"
#include "data/mnist.h"
#include "gtest/gtest.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/softmax_regression.h"
#include "sql/planner.h"

namespace rain {
namespace {

/// ENRON Q2-style: COUNT(*) WHERE predict = spam AND text LIKE '%http%'.
TEST(IntegrationTest, EnronLikeQueryWithRuleCorruption) {
  EnronConfig cfg;
  cfg.train_size = 800;
  cfg.query_size = 500;
  EnronData enron = MakeEnron(cfg);
  auto corrupted = CorruptAll(&enron.train, TrainEmailsContaining(enron, "http"), 1);
  ASSERT_GT(corrupted.size(), 5u);

  // Ground-truth count for the complaint.
  int64_t true_count = 0;
  for (size_t i = 0; i < enron.query.size(); ++i) {
    const std::string text = enron.query_table.Get(i, 1).AsString();
    if (enron.query.label(i) == 1 && LikeMatch(text, "%http%")) ++true_count;
  }

  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable("enron", std::move(enron.query_table),
                            std::move(enron.query))
                  .ok());
  Query2Pipeline pipeline(std::move(catalog),
                          std::make_unique<LogisticRegression>(cfg.vocab_size),
                          std::move(enron.train));
  ASSERT_TRUE(pipeline.Train().ok());

  auto r = pipeline.ExecuteSql(
      "SELECT COUNT(*) AS cnt FROM enron WHERE predict(*) = 1 AND text LIKE '%http%'",
      /*debug=*/true);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The rule corruption inflates spam predictions among http emails.
  const int64_t observed = r->table.rows[0][0].AsInt64();
  EXPECT_GT(observed, true_count);

  // Debug with Holistic against the ground-truth count.
  auto plan_result = pipeline.ExecuteSql(
      "SELECT COUNT(*) AS cnt FROM enron WHERE predict(*) = 1 AND text LIKE '%http%'",
      false);
  ASSERT_TRUE(plan_result.ok());
  QueryComplaints qc;
  // Re-plan through SQL each iteration via a stored plan:
  auto plan = sql::PlanQuery(
      "SELECT COUNT(*) AS cnt FROM enron WHERE predict(*) = 1 AND text LIKE '%http%'",
      pipeline.catalog());
  ASSERT_TRUE(plan.ok());
  qc.query = *plan;
  qc.complaints = {ComplaintSpec::ValueEq("cnt", static_cast<double>(true_count))};
  auto session = DebugSessionBuilder(&pipeline)
                     .ranker(MakeHolisticRanker())
                     .top_k_per_iter(10)
                     .max_deletions(static_cast<int>(corrupted.size()))
                     .workload({qc})
                     .Build();
  ASSERT_TRUE(session.ok());
  auto report = (*session)->RunToCompletion();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const double auc = Auccr(report->deletions, corrupted);
  EXPECT_GT(auc, 0.35) << "Holistic should beat random on the http corruption";
}

/// MNIST Q3-style join with tuple complaints (Section 6.3, scaled down).
TEST(IntegrationTest, MnistJoinTupleComplaints) {
  MnistConfig cfg;
  cfg.train_size = 600;
  cfg.query_size = 400;
  MnistData mnist = MakeMnist(cfg);
  Rng rng(5);
  auto corrupted =
      CorruptLabels(&mnist.train, IndicesWithLabel(mnist.train, 1), 0.5, 7, &rng);
  ASSERT_GT(corrupted.size(), 10u);

  MnistSubset ones = SelectByTrueDigit(mnist, {1}, 25);
  MnistSubset sevens = SelectByTrueDigit(mnist, {7}, 25);

  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("lefts", std::move(ones.table), std::move(ones.features)).ok());
  ASSERT_TRUE(
      catalog.AddTable("rights", std::move(sevens.table), std::move(sevens.features)).ok());
  Query2Pipeline pipeline(std::move(catalog),
                          std::make_unique<SoftmaxRegression>(64, 10),
                          std::move(mnist.train));
  ASSERT_TRUE(pipeline.Train().ok());

  // The join of disjoint digit sets should be empty; corruption makes
  // 1-images predicted 7 and vice versa, producing join results.
  auto plan = sql::PlanQuery(
      "SELECT * FROM lefts L, rights R WHERE predict(L.*) = predict(R.*)",
      pipeline.catalog());
  ASSERT_TRUE(plan.ok());
  auto r = pipeline.Execute(*plan, /*debug=*/true);
  ASSERT_TRUE(r.ok());
  const size_t offending = r->table.NumConcrete();
  ASSERT_GT(offending, 0u) << "corruption should produce spurious join rows";

  // Tuple complaints: every concrete join row should not exist. Keys on
  // both ids identify the rows declaratively across iterations.
  QueryComplaints qc;
  qc.query = *plan;
  for (size_t row = 0; row < r->table.num_rows(); ++row) {
    if (!r->table.concrete[row]) continue;
    qc.complaints.push_back(ComplaintSpec::TupleNotExists(
        {"L.id", "R.id"},
        std::vector<Value>{r->table.rows[row][0], r->table.rows[row][2]}));
  }

  auto session = DebugSessionBuilder(&pipeline)
                     .ranker(MakeHolisticRanker())
                     .top_k_per_iter(10)
                     .max_deletions(static_cast<int>(corrupted.size()))
                     .workload({qc})
                     .Build();
  ASSERT_TRUE(session.ok());
  auto report = (*session)->RunToCompletion();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const double auc = Auccr(report->deletions, corrupted);
  EXPECT_GT(auc, 0.5);
}

/// Adult Q6/Q7-style multi-query complaints (Section 6.5, scaled down).
TEST(IntegrationTest, AdultMultiQueryComplaints) {
  AdultConfig cfg;
  cfg.train_size = 2000;
  cfg.query_size = 1200;
  AdultData adult = MakeAdult(cfg);
  Rng rng(7);
  auto candidates = AdultCorruptionCandidates(adult);

  // Complaint targets come from a clean-model run (the paper generates
  // complaints from ground truth, i.e. what the uncorrupted pipeline
  // would report).
  double male_target = 0.0, aged_target = 0.0;
  {
    Catalog clean_catalog;
    Table clean_table = adult.query_table;
    Dataset clean_query = adult.query;
    ASSERT_TRUE(clean_catalog
                    .AddTable("adult", std::move(clean_table), std::move(clean_query))
                    .ok());
    Query2Pipeline clean(std::move(clean_catalog),
                         std::make_unique<LogisticRegression>(kAdultFeatures),
                         adult.train);
    ASSERT_TRUE(clean.Train().ok());
    auto g = clean.ExecuteSql(
        "SELECT gender, AVG(predict(*)) AS a FROM adult GROUP BY gender", false);
    ASSERT_TRUE(g.ok());
    for (const auto& row : g->table.rows) {
      if (row[0].AsString() == "Male") male_target = row[1].AsDouble();
    }
    auto ag = clean.ExecuteSql(
        "SELECT agedecade, AVG(predict(*)) AS a FROM adult GROUP BY agedecade", false);
    ASSERT_TRUE(ag.ok());
    for (const auto& row : ag->table.rows) {
      if (row[0].AsInt64() == 4) aged_target = row[1].AsDouble();
    }
  }

  auto corrupted = CorruptLabels(&adult.train, candidates, 0.5, 1, &rng);
  ASSERT_GT(corrupted.size(), 20u);

  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable("adult", std::move(adult.query_table),
                            std::move(adult.query))
                  .ok());
  Query2Pipeline pipeline(std::move(catalog),
                          std::make_unique<LogisticRegression>(kAdultFeatures),
                          std::move(adult.train));
  ASSERT_TRUE(pipeline.Train().ok());

  auto q6 = sql::PlanQuery(
      "SELECT gender, AVG(predict(*)) AS avg_income FROM adult GROUP BY gender",
      pipeline.catalog());
  ASSERT_TRUE(q6.ok());
  auto q7 = sql::PlanQuery(
      "SELECT agedecade, AVG(predict(*)) AS avg_income FROM adult GROUP BY agedecade",
      pipeline.catalog());
  ASSERT_TRUE(q7.ok());

  QueryComplaints c6;
  c6.query = *q6;
  c6.complaints = {ComplaintSpec::ValueEq("avg_income", male_target,
                                          {Value(std::string("Male"))})};
  QueryComplaints c7;
  c7.query = *q7;
  c7.complaints = {ComplaintSpec::ValueEq("avg_income", aged_target,
                                          {Value(int64_t{4})})};

  auto session = DebugSessionBuilder(&pipeline)
                     .ranker(MakeHolisticRanker())
                     .top_k_per_iter(20)
                     .max_deletions(static_cast<int>(corrupted.size()))
                     .add_complaints(c6)
                     .add_complaints(c7)
                     .Build();
  ASSERT_TRUE(session.ok());
  auto report = (*session)->RunToCompletion();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Duplicate feature vectors cap attainable recall (the Section 6.5
  // phenomenon): corrupted records are indistinguishable from clean
  // high-income duplicates. Holistic should still (a) beat random and
  // (b) concentrate deletions inside the corrupted subspace.
  const double auc_both = Auccr(report->deletions, corrupted);
  EXPECT_GT(auc_both, 0.15);
  size_t in_subspace = 0;
  for (size_t i : report->deletions) {
    in_subspace += adult.train_gender[i] == 1 && adult.train_age_decade[i] == 4;
  }
  EXPECT_GT(static_cast<double>(in_subspace) / report->deletions.size(), 0.6);
}

/// Theorem C.1 flavor: with many systematic corruptions the corrupted
/// records' losses collapse toward 0, so the Loss baseline ranks them at
/// the bottom while a complaint-driven ranker still finds them.
TEST(IntegrationTest, OverfittingDefeatsLossBaseline) {
  // Bias-free logistic model; corrupted records live on a dedicated
  // orthogonal axis (feature d-1), clean records on the others.
  Rng rng(11);
  const size_t d = 6;
  const size_t n_clean = 150, n_noise = 60;
  Matrix x(n_clean + n_noise, d, 0.0);
  std::vector<int> y(n_clean + n_noise);
  for (size_t i = 0; i < n_clean; ++i) {
    for (size_t f = 0; f + 1 < d; ++f) x.At(i, f) = rng.Gaussian();
    double s = 0.0;
    for (size_t f = 0; f + 1 < d; ++f) s += x.At(i, f);
    y[i] = s > 0 ? 1 : 0;
  }
  for (size_t i = n_clean; i < n_clean + n_noise; ++i) {
    x.At(i, d - 1) = 1.0 + 0.05 * rng.Gaussian();
    y[i] = 1;  // systematically mislabeled: truth is 0
  }
  Dataset train(std::move(x), std::move(y), 2);

  LogisticRegression model(d, /*fit_intercept=*/false);
  TrainConfig tc;
  tc.l2 = 1e-3;
  ASSERT_TRUE(TrainModel(&model, train, tc).ok());

  // The model fits the corrupted cluster: losses of corrupted records
  // are tiny.
  double max_corrupt_loss = 0.0;
  for (size_t i = n_clean; i < n_clean + n_noise; ++i) {
    max_corrupt_loss = std::max(max_corrupt_loss,
                                model.ExampleLoss(train.row(i), train.label(i)));
  }
  double mean_clean_loss = 0.0;
  for (size_t i = 0; i < n_clean; ++i) {
    mean_clean_loss += model.ExampleLoss(train.row(i), train.label(i));
  }
  mean_clean_loss /= n_clean;
  EXPECT_LT(max_corrupt_loss, mean_clean_loss)
      << "systematic corruptions are fit better than clean data";

  // A complaint on a queried record parallel to the noise axis assigns
  // positive influence scores to all corrupted records (Appendix C).
  Matrix qx(1, d, 0.0);
  qx.At(0, d - 1) = 1.0;
  Dataset probe(std::move(qx), {0}, 2);
  InfluenceOptions opts;
  opts.l2 = tc.l2;
  InfluenceScorer scorer(&model, &train, opts);
  Vec q_grad(model.num_params(), 0.0);
  // q = p_1(probe): want it to go DOWN (true class is 0).
  model.AddProbaGradient(probe.row(0), Vec{0.0, 1.0}, &q_grad);
  ASSERT_TRUE(scorer.Prepare(q_grad).ok());
  for (size_t i = n_clean; i < n_clean + n_noise; ++i) {
    EXPECT_GT(scorer.Score(i), 0.0) << "corrupted record " << i;
  }
  // Clean records (orthogonal) get ~zero scores.
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(scorer.Score(i), 0.0, 1e-6);
  }
}

/// Appendix D flavor: the debugger runs with a non-convex MLP model.
TEST(IntegrationTest, MlpPipelineDebugs) {
  MnistConfig cfg;
  cfg.train_size = 300;
  cfg.query_size = 200;
  MnistData mnist = MakeMnist(cfg);
  Rng rng(13);
  auto corrupted =
      CorruptLabels(&mnist.train, IndicesWithLabel(mnist.train, 1), 0.5, 7, &rng);
  int64_t true_ones = 0;
  for (size_t i = 0; i < mnist.query.size(); ++i) true_ones += mnist.query.label(i) == 1;

  Table q(Schema({Field{"id", DataType::kInt64, ""}}));
  for (size_t i = 0; i < mnist.query.size(); ++i) {
    q.AppendRowUnchecked({Value(static_cast<int64_t>(i))});
  }
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("mnist", std::move(q), std::move(mnist.query)).ok());
  TrainConfig tc;
  tc.l2 = 1e-3;
  tc.max_iters = 150;
  Query2Pipeline pipeline(std::move(catalog), std::make_unique<Mlp>(64, 16, 10),
                          std::move(mnist.train), tc);
  ASSERT_TRUE(pipeline.Train().ok());

  auto plan = sql::PlanQuery("SELECT COUNT(*) AS cnt FROM mnist WHERE predict(*) = 1",
                             pipeline.catalog());
  ASSERT_TRUE(plan.ok());
  InfluenceOptions influence;
  influence.damping = 0.05;  // non-convex model needs damping
  QueryComplaints qc;
  qc.query = *plan;
  qc.complaints = {ComplaintSpec::ValueEq("cnt", static_cast<double>(true_ones))};
  auto session = DebugSessionBuilder(&pipeline)
                     .ranker(MakeHolisticRanker())
                     .top_k_per_iter(10)
                     .max_deletions(20)
                     .influence(influence)
                     .workload({qc})
                     .Build();
  ASSERT_TRUE(session.ok());
  auto report = (*session)->RunToCompletion();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->deletions.size(), 20u);
  // Most of the first 20 deletions should be true corruptions.
  size_t hits = 0;
  std::set<size_t> truth(corrupted.begin(), corrupted.end());
  for (size_t i : report->deletions) hits += truth.count(i);
  EXPECT_GT(hits, 10u);
}

}  // namespace
}  // namespace rain
