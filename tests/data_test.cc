#include <set>

#include "common/rng.h"
#include "common/string_util.h"
#include "data/adult.h"
#include "data/corruption.h"
#include "data/dblp.h"
#include "data/enron.h"
#include "data/mnist.h"
#include "gtest/gtest.h"
#include "ml/eval.h"
#include "ml/logistic_regression.h"
#include "ml/softmax_regression.h"
#include "ml/trainer.h"

namespace rain {
namespace {

TEST(CorruptionTest, IndicesWithLabel) {
  Matrix x(4, 1, 0.0);
  Dataset d(std::move(x), {0, 1, 0, 1}, 2);
  auto ones = IndicesWithLabel(d, 1);
  EXPECT_EQ(ones, (std::vector<size_t>{1, 3}));
}

TEST(CorruptionTest, FractionalCorruptionCountsAndRecords) {
  Matrix x(100, 1, 0.0);
  Dataset d(std::move(x), std::vector<int>(100, 1), 2);
  Rng rng(5);
  std::vector<size_t> candidates(100);
  for (size_t i = 0; i < 100; ++i) candidates[i] = i;
  auto corrupted = CorruptLabels(&d, candidates, 0.3, 0, &rng);
  EXPECT_EQ(corrupted.size(), 30u);
  for (size_t i : corrupted) EXPECT_EQ(d.label(i), 0);
  // Exactly 30 labels changed overall.
  size_t zeros = IndicesWithLabel(d, 0).size();
  EXPECT_EQ(zeros, 30u);
}

TEST(CorruptionTest, CorruptAllSkipsAlreadyMatching) {
  Matrix x(4, 1, 0.0);
  Dataset d(std::move(x), {0, 1, 0, 1}, 2);
  auto changed = CorruptAll(&d, {0, 1, 2, 3}, 1);
  EXPECT_EQ(changed, (std::vector<size_t>{0, 2}));
}

TEST(DblpTest, ShapesAndDeterminism) {
  DblpConfig cfg;
  cfg.train_size = 300;
  cfg.query_size = 150;
  DblpData a = MakeDblp(cfg);
  DblpData b = MakeDblp(cfg);
  EXPECT_EQ(a.train.size(), 300u);
  EXPECT_EQ(a.query.size(), 150u);
  EXPECT_EQ(a.train.num_features(), kDblpFeatures);
  EXPECT_EQ(a.query_table.num_rows(), 150u);
  // Determinism: same seed, same labels and features.
  EXPECT_EQ(a.train.labels(), b.train.labels());
  EXPECT_DOUBLE_EQ(a.train.features().At(7, 3), b.train.features().At(7, 3));
}

TEST(DblpTest, MatchRateApproximatelyHolds) {
  DblpConfig cfg;
  cfg.train_size = 4000;
  DblpData d = MakeDblp(cfg);
  const double rate =
      static_cast<double>(IndicesWithLabel(d.train, 1).size()) / d.train.size();
  EXPECT_NEAR(rate, cfg.match_rate, 0.03);
}

TEST(DblpTest, Learnable) {
  DblpData d = MakeDblp({});
  LogisticRegression m(kDblpFeatures);
  ASSERT_TRUE(TrainModel(&m, d.train).ok());
  EXPECT_GT(Evaluate(m, d.query).f1, 0.9);
}

TEST(EnronTest, SpecialTokenMarginalsMatchPaper) {
  EnronConfig cfg;
  cfg.train_size = 6000;
  EnronData d = MakeEnron(cfg);
  const auto http = TrainEmailsContaining(d, "http");
  const auto deal = TrainEmailsContaining(d, "deal");
  const double p_http = static_cast<double>(http.size()) / d.train.size();
  const double p_deal = static_cast<double>(deal.size()) / d.train.size();
  EXPECT_NEAR(p_http, 0.13, 0.02);
  EXPECT_NEAR(p_deal, 0.18, 0.02);
  // Spam fraction among http-emails ~ 0.76; among deal-emails ~ 0.027.
  size_t http_spam = 0;
  for (size_t i : http) http_spam += d.train.label(i) == 1;
  EXPECT_NEAR(static_cast<double>(http_spam) / http.size(), 0.76, 0.06);
  size_t deal_spam = 0;
  for (size_t i : deal) deal_spam += d.train.label(i) == 1;
  EXPECT_NEAR(static_cast<double>(deal_spam) / deal.size(), 0.027, 0.03);
}

TEST(EnronTest, TextMatchesFeatures) {
  EnronData d = MakeEnron({});
  for (size_t i = 0; i < 50; ++i) {
    const bool has_http = d.train.features().At(i, d.http_feature) != 0.0;
    EXPECT_EQ(LikeMatch(d.train_texts[i], "%http%"), has_http) << "email " << i;
  }
}

TEST(EnronTest, RuleCorruptionFlipsExpectedFraction) {
  // "Label all http emails spam": ~13% * 24% ham = ~3.1% of labels flip.
  EnronConfig cfg;
  cfg.train_size = 6000;
  EnronData d = MakeEnron(cfg);
  auto changed = CorruptAll(&d.train, TrainEmailsContaining(d, "http"), 1);
  EXPECT_NEAR(static_cast<double>(changed.size()) / d.train.size(), 0.031, 0.012);
  // "deal" flips ~17.5%.
  EnronData d2 = MakeEnron(cfg);
  auto changed2 = CorruptAll(&d2.train, TrainEmailsContaining(d2, "deal"), 1);
  EXPECT_NEAR(static_cast<double>(changed2.size()) / d2.train.size(), 0.175, 0.03);
}

TEST(AdultTest, FeatureEncodingOneHot) {
  AdultData d = MakeAdult({});
  for (size_t i = 0; i < 20; ++i) {
    double sum = 0.0;
    for (size_t f = 0; f < kAdultFeatures; ++f) sum += d.train.features().At(i, f);
    EXPECT_DOUBLE_EQ(sum, 3.0);  // one hot per attribute group
  }
}

TEST(AdultTest, DuplicateFeatureVectorsDominate) {
  AdultConfig cfg;
  cfg.train_size = 6500;
  AdultData d = MakeAdult(cfg);
  std::set<std::vector<double>> uniq;
  for (size_t i = 0; i < d.train.size(); ++i) {
    std::vector<double> row(d.train.row(i), d.train.row(i) + kAdultFeatures);
    uniq.insert(std::move(row));
  }
  // The domain has at most 8*8*2 = 128 distinct vectors (paper: 118/6512).
  EXPECT_LE(uniq.size(), 128u);
  EXPECT_GE(uniq.size(), 60u);
}

TEST(AdultTest, CorruptionPredicateSelectivity) {
  AdultConfig cfg;
  cfg.train_size = 6500;
  AdultData d = MakeAdult(cfg);
  auto candidates = AdultCorruptionCandidates(d);
  const double rate = static_cast<double>(candidates.size()) / d.train.size();
  EXPECT_NEAR(rate, 0.082, 0.03);  // paper: 8.2% of the training set
  for (size_t i : candidates) {
    EXPECT_EQ(d.train.label(i), 0);
    EXPECT_EQ(d.train_gender[i], 1);
    EXPECT_EQ(d.train_age_decade[i], 4);
  }
}

TEST(AdultTest, GenderAgeSelectivitiesMatchPaper) {
  AdultConfig cfg;
  cfg.train_size = 20000;
  AdultData d = MakeAdult(cfg);
  size_t male = 0, dec4 = 0, male_dec4 = 0;
  for (size_t i = 0; i < d.train.size(); ++i) {
    const bool m = d.train_gender[i] == 1;
    const bool a4 = d.train_age_decade[i] == 4;
    male += m;
    dec4 += a4;
    male_dec4 += m && a4;
  }
  // 23.1% of males are 40-50; 71.3% of 40-50 are male.
  EXPECT_NEAR(static_cast<double>(male_dec4) / male, 0.231, 0.02);
  EXPECT_NEAR(static_cast<double>(male_dec4) / dec4, 0.713, 0.02);
}

TEST(MnistTest, ShapesAndLearnability) {
  MnistConfig cfg;
  cfg.train_size = 800;
  cfg.query_size = 400;
  MnistData d = MakeMnist(cfg);
  EXPECT_EQ(d.train.num_features(), 64u);
  EXPECT_EQ(d.train.num_classes(), 10);
  SoftmaxRegression m(64, 10);
  ASSERT_TRUE(TrainModel(&m, d.train).ok());
  EXPECT_GT(Evaluate(m, d.query).accuracy, 0.9);
}

TEST(MnistTest, SubsetSelection) {
  MnistData d = MakeMnist({});
  MnistSubset ones = SelectByTrueDigit(d, {1});
  for (size_t i = 0; i < ones.features.size(); ++i) {
    EXPECT_EQ(ones.features.label(i), 1);
  }
  EXPECT_EQ(ones.table.num_rows(), ones.features.size());
  // Disjoint subsets via skip.
  MnistSubset sevens = SelectByTrueDigit(d, {7}, 0, ones.source_rows);
  std::set<size_t> a(ones.source_rows.begin(), ones.source_rows.end());
  for (size_t s : sevens.source_rows) EXPECT_EQ(a.count(s), 0u);
}

TEST(MnistTest, SubsetMaxPerDigit) {
  MnistData d = MakeMnist({});
  MnistSubset s = SelectByTrueDigit(d, {1, 2, 3}, 5);
  EXPECT_LE(s.features.size(), 15u);
}

TEST(MnistTest, MixMovesRows) {
  MnistData d = MakeMnist({});
  MnistSubset left = SelectByTrueDigit(d, {1, 2, 3, 4, 5});
  MnistSubset right = SelectByTrueDigit(d, {6, 7, 8, 9, 0});
  const size_t left_before = left.features.size();
  const size_t right_before = right.features.size();
  Rng rng(3);
  const size_t moved = MixSubsets(&left, &right, d, 1, 0.25, &rng);
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(left.features.size(), left_before - moved);
  EXPECT_EQ(right.features.size(), right_before + moved);
  // Moved rows are digit-1 rows now in the right subset.
  size_t right_ones = 0;
  for (size_t i = 0; i < right.features.size(); ++i) {
    right_ones += right.features.label(i) == 1;
  }
  EXPECT_EQ(right_ones, moved);
}

}  // namespace
}  // namespace rain
