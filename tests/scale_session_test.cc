/// End-to-end determinism on a generated scale-N workload
/// (src/data/scale_gen.h, scale 0.1 = 10^4 Adult training rows): the
/// debugger's deletion sequence must be bitwise identical to the
/// 1-worker unsharded sync reference at every worker count x shard
/// count, sync and async. This is the session-level pin for the
/// fixed-cost work (grain-size control, scratch reuse, shard fan-out):
/// none of it may move a single deletion.
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/session.h"
#include "data/scale_gen.h"
#include "gtest/gtest.h"
#include "ml/logistic_regression.h"
#include "ml/trainer.h"

namespace rain {
namespace {

/// Shard counts for the sync sweep: RAIN_TEST_SHARDS when set (the CI
/// sharded leg runs the suite at exactly that count), else {1, 4}.
std::vector<int> TestShardCounts() {
  if (const char* env = std::getenv("RAIN_TEST_SHARDS")) {
    const int s = std::atoi(env);
    if (s >= 1) return {s};
  }
  return {1, 4};
}

/// The scale-0.1 Adult workload, generated once for the whole suite
/// (generation itself is pinned worker-invariant by scale_gen_test).
const scale::ScaledWorkload& Workload() {
  static const scale::ScaledWorkload* workload = [] {
    scale::ScaleConfig config;
    config.scale = 0.1;
    config.seed = 29;
    config.workers = 2;
    return new scale::ScaledWorkload(scale::ScaledAdult(config));
  }();
  return *workload;
}

std::unique_ptr<Query2Pipeline> MakePipeline(const scale::ScaledWorkload& w) {
  Catalog catalog;
  for (const scale::ScaledTable& t : w.tables) {
    RAIN_CHECK(catalog.AddTable(t.name, t.table, t.features).ok());
  }
  // Capped iterations keep the repeated retrains cheap; every run uses
  // the same cap, so the theta sequence is identical across configs.
  TrainConfig tc;
  tc.max_iters = 60;
  auto model = std::make_unique<LogisticRegression>(w.train.num_features());
  return std::make_unique<Query2Pipeline>(std::move(catalog), std::move(model),
                                          w.train, tc);
}

/// One full debug run; returns the deletion sequence. `shards` 0 =
/// unsharded, >= 1 = sharded execution at that count.
std::vector<size_t> RunOnce(int workers, int shards, bool async) {
  const scale::ScaledWorkload& w = Workload();
  auto pipeline = MakePipeline(w);
  RAIN_CHECK(pipeline->Train().ok());
  auto session = DebugSessionBuilder(pipeline.get())
                     .ranker("holistic")
                     .top_k_per_iter(10)
                     .max_deletions(20)
                     .set_execution(ExecutionOptions()
                                        .set_parallelism(workers)
                                        .set_num_shards(shards))
                     .workload(w.workload)
                     .Build();
  RAIN_CHECK(session.ok()) << session.status().ToString();
  auto report = async ? (*session)->RunToCompletionAsync().Get()
                      : (*session)->RunToCompletion();
  RAIN_CHECK(report.ok()) << report.status().ToString();
  return report->deletions;
}

class ScaleSessionTest : public ::testing::Test {
 protected:
  /// Reference: 1 worker, unsharded, synchronous.
  static const std::vector<size_t>& Reference() {
    static const std::vector<size_t> ref = RunOnce(1, 0, /*async=*/false);
    return ref;
  }
};

TEST_F(ScaleSessionTest, ReferenceRunDeletesCorruptedRows) {
  const std::vector<size_t>& ref = Reference();
  ASSERT_FALSE(ref.empty());
  // The workload is debuggable, not just runnable: the complaint-driven
  // ranking must actually surface planted corruption.
  size_t hits = 0;
  for (size_t d : ref) {
    for (size_t c : Workload().corrupted) hits += (d == c);
  }
  EXPECT_GT(hits, 0u) << "no deleted row was a corrupted row";
}

TEST_F(ScaleSessionTest, SyncDeletionSequenceInvariantAcrossWorkersAndShards) {
  for (int workers : {1, 2, 8}) {
    for (int shards : TestShardCounts()) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " shards=" + std::to_string(shards));
      EXPECT_EQ(RunOnce(workers, shards, /*async=*/false), Reference());
    }
  }
}

TEST_F(ScaleSessionTest, AsyncPipelinedRunMatchesReference) {
  const std::vector<int> shard_counts = TestShardCounts();
  // The speculative train/rank overlap must not move a deletion either;
  // two corners of the grid keep the async runs affordable.
  EXPECT_EQ(RunOnce(2, shard_counts.front(), /*async=*/true), Reference());
  EXPECT_EQ(RunOnce(8, shard_counts.back(), /*async=*/true), Reference());
}

}  // namespace
}  // namespace rain
