/// Determinism properties of the scale-N workload generator
/// (src/data/scale_gen.h): same (seed, scale) must produce
/// bitwise-identical output at any generator worker count, different
/// seeds must corrupt different rows, and the corruption ground truth
/// must be exactly recoverable.
#include <cstdlib>

#include "data/scale_gen.h"
#include "gtest/gtest.h"

namespace rain {
namespace scale {
namespace {

/// Bitwise workload equality: features, labels, corruption ground truth,
/// relational tables, and complaint specs.
void ExpectIdentical(const ScaledWorkload& a, const ScaledWorkload& b) {
  EXPECT_EQ(a.train.features().data(), b.train.features().data());
  EXPECT_EQ(a.train.labels(), b.train.labels());
  EXPECT_EQ(a.clean_labels, b.clean_labels);
  EXPECT_EQ(a.corrupted, b.corrupted);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t t = 0; t < a.tables.size(); ++t) {
    EXPECT_EQ(a.tables[t].name, b.tables[t].name);
    ASSERT_EQ(a.tables[t].table.num_rows(), b.tables[t].table.num_rows());
    for (size_t r = 0; r < a.tables[t].table.num_rows(); ++r) {
      EXPECT_EQ(a.tables[t].table.GetRow(r), b.tables[t].table.GetRow(r))
          << "table " << t << " row " << r;
    }
    ASSERT_EQ(a.tables[t].features.has_value(), b.tables[t].features.has_value());
    if (a.tables[t].features.has_value()) {
      EXPECT_EQ(a.tables[t].features->features().data(),
                b.tables[t].features->features().data());
      EXPECT_EQ(a.tables[t].features->labels(), b.tables[t].features->labels());
    }
  }
  ASSERT_EQ(a.workload.size(), b.workload.size());
  for (size_t w = 0; w < a.workload.size(); ++w) {
    ASSERT_EQ(a.workload[w].complaints.size(), b.workload[w].complaints.size());
    for (size_t c = 0; c < a.workload[w].complaints.size(); ++c) {
      const ComplaintSpec& ca = a.workload[w].complaints[c];
      const ComplaintSpec& cb = b.workload[w].complaints[c];
      EXPECT_EQ(ca.kind, cb.kind);
      EXPECT_EQ(ca.agg_name, cb.agg_name);
      EXPECT_EQ(ca.group_keys, cb.group_keys);
      EXPECT_EQ(ca.target, cb.target);  // bitwise (==, not NEAR)
      EXPECT_EQ(ca.point_table, cb.point_table);
      EXPECT_EQ(ca.point_row, cb.point_row);
      EXPECT_EQ(ca.point_class, cb.point_class);
    }
  }
}

ScaleConfig SmallConfig(int workers, uint64_t seed = 29) {
  ScaleConfig config;
  config.scale = 0.02;  // 2000 Adult training rows: fast but multi-block-free
  config.seed = seed;
  config.workers = workers;
  return config;
}

TEST(ScaleGenTest, AdultWorkerCountNeverChangesOutput) {
  const ScaledWorkload ref = ScaledAdult(SmallConfig(1));
  for (int workers : {2, 8}) {
    SCOPED_TRACE(workers);
    ExpectIdentical(ref, ScaledAdult(SmallConfig(workers)));
  }
}

TEST(ScaleGenTest, DblpJoinWorkerCountNeverChangesOutput) {
  const ScaledWorkload ref = ScaledDblpJoin(SmallConfig(1));
  for (int workers : {2, 8}) {
    SCOPED_TRACE(workers);
    ExpectIdentical(ref, ScaledDblpJoin(SmallConfig(workers)));
  }
}

TEST(ScaleGenTest, MultiBlockScaleIsWorkerInvariant) {
  // Scale 0.15 = 15000 training rows = two generation blocks: the
  // cross-block boundary must also be layout-independent.
  ScaleConfig config;
  config.scale = 0.15;
  config.workers = 1;
  const ScaledWorkload ref = ScaledAdult(config);
  ASSERT_GT(ref.train.size(), size_t{8192}) << "test must span >1 block";
  config.workers = 8;
  ExpectIdentical(ref, ScaledAdult(config));
}

TEST(ScaleGenTest, DifferentSeedsCorruptDifferentRows) {
  const ScaledWorkload a = ScaledAdult(SmallConfig(1, 29));
  const ScaledWorkload b = ScaledAdult(SmallConfig(1, 30));
  ASSERT_FALSE(a.corrupted.empty());
  ASSERT_FALSE(b.corrupted.empty());
  // Different seeds draw different datasets AND different corruption
  // masks over them.
  EXPECT_NE(a.train.features().data(), b.train.features().data());
  EXPECT_NE(a.corrupted, b.corrupted);
}

TEST(ScaleGenTest, CorruptionGroundTruthExactlyRecoverable) {
  for (const ScaledWorkload& w :
       {ScaledAdult(SmallConfig(1)), ScaledDblpJoin(SmallConfig(1))}) {
    ASSERT_EQ(w.clean_labels.size(), w.train.size());
    ASSERT_FALSE(w.corrupted.empty());
    // Corrupted rows differ from ground truth; everything else matches.
    std::vector<bool> is_corrupted(w.train.size(), false);
    for (size_t i : w.corrupted) {
      ASSERT_LT(i, w.train.size());
      is_corrupted[i] = true;
    }
    for (size_t i = 0; i < w.train.size(); ++i) {
      if (is_corrupted[i]) {
        EXPECT_NE(w.train.label(i), w.clean_labels[i]) << "row " << i;
      } else {
        EXPECT_EQ(w.train.label(i), w.clean_labels[i]) << "row " << i;
      }
    }
    // Flip-back restores the clean label vector exactly.
    Dataset restored = w.train;
    for (size_t i : w.corrupted) restored.set_label(i, w.clean_labels[i]);
    EXPECT_EQ(restored.labels(), w.clean_labels);
    // Ascending and duplicate-free, as documented.
    for (size_t k = 1; k < w.corrupted.size(); ++k) {
      EXPECT_LT(w.corrupted[k - 1], w.corrupted[k]);
    }
  }
}

TEST(ScaleGenTest, DimsScaleMonotonically) {
  const ScaleDims small = DimsFor(0.1);
  const ScaleDims paper = DimsFor(1.0);
  const ScaleDims big = DimsFor(100.0);
  EXPECT_EQ(paper.adult_train, size_t{100000});
  EXPECT_EQ(big.adult_train, size_t{10000000});
  EXPECT_LT(small.adult_train, paper.adult_train);
  EXPECT_LT(small.dblp_train, paper.dblp_train);
  EXPECT_LT(paper.dblp_train, big.dblp_train);
  EXPECT_LE(small.point_complaints, paper.point_complaints);
  EXPECT_GE(small.point_complaints, size_t{8});
  EXPECT_LE(big.point_complaints, size_t{4096});
  // Floors keep tiny scales trainable instead of degenerate.
  EXPECT_GE(DimsFor(1e-4).adult_train, size_t{512});
  EXPECT_GE(DimsFor(1e-4).adult_query, size_t{256});
}

TEST(ScaleGenTest, WorkloadShapeFollowsDims) {
  const ScaleConfig config = SmallConfig(1);
  const ScaleDims dims = DimsFor(config.scale);
  const ScaledWorkload adult = ScaledAdult(config);
  EXPECT_EQ(adult.train.size(), dims.adult_train);
  ASSERT_EQ(adult.tables.size(), 1u);
  EXPECT_EQ(adult.tables[0].table.num_rows(), dims.adult_query);
  ASSERT_EQ(adult.workload.size(), 3u);
  EXPECT_EQ(adult.workload[2].complaints.size(), dims.point_complaints);
  EXPECT_EQ(adult.workload[2].query, nullptr) << "pure point-complaint entry";
  for (const ComplaintSpec& c : adult.workload[2].complaints) {
    EXPECT_EQ(c.kind, ComplaintSpec::Kind::kPoint);
  }

  const ScaledWorkload dblp = ScaledDblpJoin(config);
  EXPECT_EQ(dblp.train.size(), dims.dblp_train);
  ASSERT_EQ(dblp.tables.size(), 2u);
  EXPECT_TRUE(dblp.tables[0].features.has_value());
  EXPECT_FALSE(dblp.tables[1].features.has_value());
  ASSERT_EQ(dblp.workload.size(), 2u);
  EXPECT_EQ(dblp.workload[1].complaints.size(), dims.point_complaints);
}

TEST(ScaleGenTest, ScaleFromEnvReadsAndValidates) {
  unsetenv("RAIN_BENCH_SCALE");
  EXPECT_EQ(ScaleFromEnv(2.5), 2.5);
  setenv("RAIN_BENCH_SCALE", "0.75", 1);
  EXPECT_EQ(ScaleFromEnv(2.5), 0.75);
  setenv("RAIN_BENCH_SCALE", "", 1);
  EXPECT_EQ(ScaleFromEnv(1.5), 1.5);
  unsetenv("RAIN_BENCH_SCALE");
}

}  // namespace
}  // namespace scale
}  // namespace rain
