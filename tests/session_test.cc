/// DebugSession semantics: stepping, convergence no-ops, cancellation
/// between phases, observer ordering, workload mutation, deadline
/// handling, parallelism inheritance, and equivalence of the legacy
/// `Debugger::Run` shim with a directly driven session on the Fig. 5
/// (DBLP 50% corruption) workload.
#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "common/deprecation.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/complaint.h"
#include "core/debugger.h"
#include "core/pipeline.h"
#include "core/ranker.h"
#include "core/session.h"
#include "data/corruption.h"
#include "data/dblp.h"
#include "gtest/gtest.h"
#include "ml/logistic_regression.h"

namespace rain {
namespace {

/// The Fig. 5 runtime workload, scaled to test size: DBLP with 50% of the
/// match labels flipped, complained about through a COUNT query.
/// Construction is fully seeded, so two setups are bit-identical.
struct DblpSetup {
  std::unique_ptr<Query2Pipeline> pipeline;
  std::vector<size_t> corrupted;
  int64_t true_count = 0;
};

DblpSetup MakeCorruptedDblp() {
  DblpConfig cfg;
  cfg.train_size = 400;
  cfg.query_size = 200;
  cfg.seed = 99;
  DblpData dblp = MakeDblp(cfg);
  DblpSetup setup;
  for (size_t i = 0; i < dblp.query.size(); ++i) {
    setup.true_count += dblp.query.label(i);
  }
  Rng rng(3);
  setup.corrupted =
      CorruptLabels(&dblp.train, IndicesWithLabel(dblp.train, 1), 0.5, 0, &rng);
  Catalog catalog;
  RAIN_CHECK(
      catalog.AddTable("dblp", std::move(dblp.query_table), std::move(dblp.query))
          .ok());
  TrainConfig tc;
  tc.l2 = 1e-3;
  setup.pipeline = std::make_unique<Query2Pipeline>(
      std::move(catalog), std::make_unique<LogisticRegression>(kDblpFeatures),
      std::move(dblp.train), tc);
  RAIN_CHECK(setup.pipeline->Train().ok());
  return setup;
}

PlanPtr CountQuery() {
  return PlanNode::Aggregate(
      PlanNode::Filter(PlanNode::Scan("dblp", "D"),
                       Expr::Eq(Expr::Predict("D"), Expr::LitInt(1))),
      {}, {}, {AggSpec{AggFunc::kCount, nullptr, "cnt"}});
}

QueryComplaints CountComplaint(double target) {
  QueryComplaints qc;
  qc.query = CountQuery();
  qc.complaints = {ComplaintSpec::ValueEq("cnt", target)};
  return qc;
}

/// Shard count applied to the session flows under test: RAIN_TEST_SHARDS
/// when set (the CI sharded leg runs this suite at 4), else 0 (unsharded).
/// Sharded execution is bitwise-identical to the sequential unsharded
/// path, so every assertion below must hold for any value.
int TestShards() {
  const char* env = std::getenv("RAIN_TEST_SHARDS");
  return env != nullptr ? std::atoi(env) : 0;
}

/// A DebugSessionBuilder with the suite-wide shard setting applied.
/// Tests that assert specific knob inheritance (which sharding overrides
/// by design) construct DebugSessionBuilder directly instead.
DebugSessionBuilder TestSessionBuilder(Query2Pipeline* pipeline) {
  DebugSessionBuilder builder(pipeline);
  builder.set_execution(ExecutionOptions().set_num_shards(TestShards()));
  return builder;
}

class SessionFixture : public ::testing::Test {
 protected:
  void SetUp() override { setup_ = MakeCorruptedDblp(); }

  Query2Pipeline* pipeline() { return setup_.pipeline.get(); }
  DblpSetup setup_;
};

// ---------------------------------------------------------------- stepping

TEST_F(SessionFixture, StepDrivesOneIterationAtATime) {
  auto session = TestSessionBuilder(pipeline())
                     .ranker("holistic")
                     .top_k_per_iter(10)
                     .max_deletions(30)
                     .workload({CountComplaint(static_cast<double>(setup_.true_count))})
                     .Build();
  ASSERT_TRUE(session.ok());
  for (int i = 1; i <= 3; ++i) {
    auto step = (*session)->Step();
    ASSERT_TRUE(step.ok());
    EXPECT_EQ(step->status, StepStatus::kIterated);
    EXPECT_EQ(step->new_deletions.size(), 10u);
    EXPECT_EQ((*session)->iterations_completed(), i);
    EXPECT_EQ((*session)->report().deletions.size(), 10u * i);
    EXPECT_GT(step->stats.train_seconds, 0.0);
  }
  // The 4th step hits the deletion budget without doing work.
  auto done = (*session)->Step();
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->status, StepStatus::kBudgetExhausted);
  EXPECT_TRUE(done->new_deletions.empty());
  EXPECT_TRUE((*session)->finished());
}

TEST_F(SessionFixture, StepAfterConvergenceIsNoop) {
  // A trivially satisfied complaint resolves on the first step.
  QueryComplaints qc = CountComplaint(0);
  qc.complaints[0].op = ComplaintOp::kGe;
  auto session = TestSessionBuilder(pipeline())
                     .ranker("holistic")
                     .max_deletions(50)
                     .stop_when_resolved()
                     .workload({qc})
                     .Build();
  ASSERT_TRUE(session.ok());
  auto first = (*session)->Step();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, StepStatus::kResolved);
  EXPECT_TRUE(first->complaints_resolved);
  EXPECT_TRUE((*session)->finished());
  EXPECT_EQ((*session)->finish_status(), StepStatus::kResolved);

  const size_t iterations_before = (*session)->report().iterations.size();
  const size_t active_before = pipeline()->train_data()->num_active();
  auto second = (*session)->Step();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, StepStatus::kAlreadyFinished);
  EXPECT_TRUE(second->new_deletions.empty());
  EXPECT_EQ((*session)->report().iterations.size(), iterations_before);
  EXPECT_EQ(pipeline()->train_data()->num_active(), active_before);
}

TEST_F(SessionFixture, RunToCompletionPausesOnStopConditionAndResumes) {
  auto session = TestSessionBuilder(pipeline())
                     .ranker("holistic")
                     .top_k_per_iter(10)
                     .max_deletions(30)
                     .workload({CountComplaint(static_cast<double>(setup_.true_count))})
                     .Build();
  ASSERT_TRUE(session.ok());
  auto paused = (*session)->RunToCompletion(StopAfterIterations(1));
  ASSERT_TRUE(paused.ok());
  EXPECT_EQ(paused->iterations.size(), 1u);
  EXPECT_FALSE((*session)->finished()) << "a paused session is resumable";

  // Resuming with an already-satisfied condition must not run (and delete
  // records in) an extra iteration: the condition is checked pre-step.
  auto still_paused = (*session)->RunToCompletion(StopAfterDeletions(5));
  ASSERT_TRUE(still_paused.ok());
  EXPECT_EQ(still_paused->deletions.size(), 10u);
  EXPECT_EQ(still_paused->iterations.size(), 1u);

  auto rest = (*session)->RunToCompletion();
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->deletions.size(), 30u);
}

// ------------------------------------------------------------ cancellation

/// Cancels the session from inside a callback once `phase` completes.
class CancelAfterPhase : public DebugObserver {
 public:
  CancelAfterPhase(DebugSession** session, DebugPhase phase)
      : session_(session), phase_(phase) {}
  void OnPhaseComplete(int, DebugPhase phase, double) override {
    if (phase == phase_) (*session_)->Cancel();
  }

 private:
  DebugSession** session_;
  DebugPhase phase_;
};

TEST_F(SessionFixture, CancelBetweenPhasesYieldsValidPartialReport) {
  DebugSession* raw = nullptr;
  CancelAfterPhase canceller(&raw, DebugPhase::kTrain);
  auto session = TestSessionBuilder(pipeline())
                     .ranker("holistic")
                     .top_k_per_iter(10)
                     .max_deletions(50)
                     .set_execution(ExecutionOptions()
                                        .set_num_shards(TestShards())
                                        .add_observer(&canceller))
                     .workload({CountComplaint(static_cast<double>(setup_.true_count))})
                     .Build();
  ASSERT_TRUE(session.ok());
  raw = session->get();

  auto report = (*session)->RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE((*session)->finished());
  EXPECT_EQ((*session)->finish_status(), StepStatus::kCancelled);
  // The partial iteration is recorded: training ran, nothing was deleted,
  // and the note says where the loop stopped.
  ASSERT_EQ(report->iterations.size(), 1u);
  EXPECT_GT(report->iterations[0].train_seconds, 0.0);
  EXPECT_EQ(report->iterations[0].rank_seconds, 0.0);
  EXPECT_TRUE(report->deletions.empty());
  EXPECT_NE(report->iterations[0].note.find("cancelled after train"),
            std::string::npos)
      << "note: " << report->iterations[0].note;
  EXPECT_EQ(pipeline()->train_data()->num_active(), pipeline()->train_data()->size());

  // Cancellation is sticky: further steps are no-ops.
  auto step = (*session)->Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->status, StepStatus::kAlreadyFinished);
}

TEST_F(SessionFixture, DeadlineInThePastStopsBeforeAnyWork) {
  auto session = TestSessionBuilder(pipeline())
                     .ranker("holistic")
                     .max_deletions(50)
                     .set_execution(ExecutionOptions()
                                        .set_num_shards(TestShards())
                                        .set_deadline(std::chrono::steady_clock::now() -
                                                      std::chrono::seconds(1)))
                     .workload({CountComplaint(static_cast<double>(setup_.true_count))})
                     .Build();
  ASSERT_TRUE(session.ok());
  auto step = (*session)->Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->status, StepStatus::kDeadlineExceeded);
  EXPECT_TRUE((*session)->report().iterations.empty());
  EXPECT_TRUE((*session)->finished());

  // Extending the deadline reopens the session.
  (*session)->set_deadline(std::chrono::steady_clock::now() +
                           std::chrono::hours(1));
  EXPECT_FALSE((*session)->finished());
  auto resumed = (*session)->Step();
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->status, StepStatus::kIterated);
}

// -------------------------------------------------------------- observers

/// Records every callback as a compact tag, e.g. "start:0", "train:0",
/// "del:0".
class RecordingObserver : public DebugObserver {
 public:
  void OnIterationStart(int iteration, const DebugReport&) override {
    events.push_back("start:" + std::to_string(iteration));
  }
  void OnPhaseComplete(int iteration, DebugPhase phase, double) override {
    events.push_back(std::string(DebugPhaseName(phase)) + ":" +
                     std::to_string(iteration));
  }
  void OnDeletion(int iteration, size_t, double) override {
    events.push_back("del:" + std::to_string(iteration));
  }
  std::vector<std::string> events;
};

TEST_F(SessionFixture, ObserverCallbacksFireInPhaseOrder) {
  RecordingObserver recorder;
  auto session = TestSessionBuilder(pipeline())
                     .ranker("holistic")
                     .top_k_per_iter(5)
                     .max_deletions(10)
                     .set_execution(ExecutionOptions()
                                        .set_num_shards(TestShards())
                                        .add_observer(&recorder))
                     .workload({CountComplaint(static_cast<double>(setup_.true_count))})
                     .Build();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->RunToCompletion().ok());

  // Two iterations of 5 deletions each: per iteration the exact stream is
  // start, train, bind, rank, 5 deletions, fix.
  std::vector<std::string> expected;
  for (int iter = 0; iter < 2; ++iter) {
    const std::string i = std::to_string(iter);
    expected.push_back("start:" + i);
    expected.push_back("train:" + i);
    expected.push_back("bind:" + i);
    expected.push_back("rank:" + i);
    for (int d = 0; d < 5; ++d) expected.push_back("del:" + i);
    expected.push_back("fix:" + i);
  }
  EXPECT_EQ(recorder.events, expected);
}

// ------------------------------------------------------ workload mutation

TEST_F(SessionFixture, AddComplaintsReopensResolvedSession) {
  // Start with a satisfied complaint: resolves immediately.
  QueryComplaints satisfied = CountComplaint(0);
  satisfied.complaints[0].op = ComplaintOp::kGe;
  auto session = TestSessionBuilder(pipeline())
                     .ranker("holistic")
                     .top_k_per_iter(10)
                     .max_deletions(20)
                     .stop_when_resolved()
                     .workload({satisfied})
                     .Build();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->RunToCompletion().ok());
  EXPECT_EQ((*session)->finish_status(), StepStatus::kResolved);
  EXPECT_TRUE((*session)->report().deletions.empty());

  // Growing the workload with a violated complaint resumes the loop on
  // the same session — no from-scratch re-run. The unreachable target
  // keeps the complaint violated through the whole deletion budget.
  const size_t slot = (*session)->AddComplaints(CountComplaint(1e6));
  EXPECT_EQ(slot, 1u);
  EXPECT_FALSE((*session)->finished());
  auto report = (*session)->RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deletions.size(), 20u);

  // RemoveQuery: the violated complaint goes away, leaving the satisfied
  // one; the next step resolves again.
  EXPECT_TRUE((*session)->RemoveQuery(slot));
  EXPECT_FALSE((*session)->RemoveQuery(7));
  EXPECT_EQ((*session)->workload().size(), 1u);
}

// -------------------------------------------------- parallelism plumbing

TEST_F(SessionFixture, ParallelismInheritsToTrainInfluenceAndCg) {
  auto session = DebugSessionBuilder(pipeline())
                     .ranker("holistic")
                     .set_execution(ExecutionOptions().set_parallelism(8))
                     .workload({CountComplaint(static_cast<double>(setup_.true_count))})
                     .Build();
  ASSERT_TRUE(session.ok());
  // One builder call fans out to all three layers.
  EXPECT_EQ((*session)->config().parallelism, 8);
  EXPECT_EQ((*session)->config().influence.parallelism, 8);
  EXPECT_EQ((*session)->config().influence.cg.parallelism, 8);
  EXPECT_EQ(pipeline()->train_config().parallelism, 8);
}

TEST_F(SessionFixture, ExplicitFineGrainedKnobsAreNotOverridden) {
  InfluenceOptions influence;
  influence.parallelism = 2;
  auto session = DebugSessionBuilder(pipeline())
                     .ranker("holistic")
                     .set_execution(ExecutionOptions().set_parallelism(8))
                     .influence(influence)
                     .Build();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->config().influence.parallelism, 2);
  // cg was left at default, so it follows the influence-level knob.
  EXPECT_EQ((*session)->config().influence.cg.parallelism, 2);
  EXPECT_EQ(pipeline()->train_config().parallelism, 8);
}

TEST_F(SessionFixture, SetParallelismReturnsClampedValueVisibly) {
  EXPECT_EQ(pipeline()->set_parallelism(4), 4);
  EXPECT_EQ(pipeline()->train_config().parallelism, 4);
  // Misconfiguration is clamped (and logged), not silently swallowed.
  EXPECT_EQ(pipeline()->set_parallelism(0), 1);
  EXPECT_EQ(pipeline()->set_parallelism(-3), 1);
  EXPECT_EQ(pipeline()->train_config().parallelism, 1);
}

TEST_F(SessionFixture, BuilderRejectsMissingRankerAndBadNames) {
  EXPECT_FALSE(DebugSessionBuilder(pipeline()).Build().ok());
  EXPECT_FALSE(DebugSessionBuilder(pipeline()).ranker("alchemy").Build().ok());
  EXPECT_FALSE(DebugSessionBuilder(nullptr).ranker("loss").Build().ok());
  // Recovering from a bad name with a real ranker clears the stale error.
  EXPECT_TRUE(DebugSessionBuilder(pipeline())
                  .ranker("alchemy")
                  .ranker(MakeLossRanker())
                  .Build()
                  .ok());
  EXPECT_TRUE(DebugSessionBuilder(pipeline())
                  .ranker("alchemy")
                  .ranker("loss")
                  .Build()
                  .ok());
}

// --------------------------------------------------------- batched bind

/// A Section 6.5-style multi-query workload over the DBLP pipeline: two
/// aggregate queries (equality + inequality complaints) plus a query-less
/// entry of point complaints.
std::vector<QueryComplaints> MultiQueryWorkload(int64_t true_count) {
  std::vector<QueryComplaints> workload;
  workload.push_back(CountComplaint(static_cast<double>(true_count)));
  QueryComplaints ge;
  ge.query = CountQuery();
  ge.complaints = {ComplaintSpec::ValueGe("cnt", static_cast<double>(true_count)),
                   ComplaintSpec::ValueLe("cnt", 1.0)};
  workload.push_back(ge);
  QueryComplaints points;  // no query: bind directly against predictions
  points.complaints = {ComplaintSpec::Point("dblp", 3, 1),
                       ComplaintSpec::Point("dblp", 11, 0)};
  workload.push_back(points);
  return workload;
}

/// The legacy sequential bind (pre-batching code path), inlined as the
/// reference: execute each query against the shared arena in order and
/// bind its complaints immediately.
Result<std::vector<BoundComplaint>> SequentialBindReference(
    Query2Pipeline* pipeline, const std::vector<QueryComplaints>& workload) {
  std::vector<BoundComplaint> bound;
  for (const QueryComplaints& qc : workload) {
    ExecResult result;
    if (qc.query != nullptr) {
      RAIN_ASSIGN_OR_RETURN(result, pipeline->Execute(qc.query, /*debug=*/true));
    }
    for (const ComplaintSpec& spec : qc.complaints) {
      RAIN_ASSIGN_OR_RETURN(
          std::vector<BoundComplaint> bc,
          BindComplaint(spec, result, pipeline->arena(), pipeline->predictions(),
                        pipeline->catalog()));
      bound.insert(bound.end(), bc.begin(), bc.end());
    }
  }
  return bound;
}

TEST_F(SessionFixture, BindWorkloadMatchesSequentialReferenceBitwise) {
  const std::vector<QueryComplaints> workload =
      MultiQueryWorkload(setup_.true_count);

  // Sequential reference on a fresh arena.
  pipeline()->ResetDebugState();
  auto ref = SequentialBindReference(pipeline(), workload);
  ASSERT_TRUE(ref.ok());
  ASSERT_FALSE(ref->empty());
  const size_t ref_nodes = pipeline()->arena()->num_nodes();
  const size_t ref_vars = pipeline()->arena()->num_vars();
  std::vector<std::string> ref_polys;
  for (const BoundComplaint& c : *ref) {
    ref_polys.push_back(pipeline()->arena()->ToString(c.poly));
  }

  // The batched bind must reproduce the arena and the bound complaints —
  // ids included — bit for bit, at every worker count.
  for (int threads : {1, 2, 8}) {
    pipeline()->ResetDebugState();
    auto batched = BindWorkload(pipeline(), workload, threads);
    ASSERT_TRUE(batched.ok()) << "threads " << threads;
    ASSERT_EQ(batched->size(), ref->size()) << "threads " << threads;
    EXPECT_EQ(pipeline()->arena()->num_nodes(), ref_nodes) << "threads " << threads;
    EXPECT_EQ(pipeline()->arena()->num_vars(), ref_vars) << "threads " << threads;
    for (size_t i = 0; i < ref->size(); ++i) {
      const BoundComplaint& r = (*ref)[i];
      const BoundComplaint& b = (*batched)[i];
      EXPECT_EQ(b.poly, r.poly) << "threads " << threads << " complaint " << i;
      EXPECT_EQ(b.op, r.op) << "complaint " << i;
      EXPECT_EQ(b.target, r.target) << "complaint " << i;
      EXPECT_EQ(b.current, r.current) << "complaint " << i;
      EXPECT_EQ(b.violated, r.violated) << "complaint " << i;
      EXPECT_EQ(pipeline()->arena()->ToString(b.poly), ref_polys[i])
          << "threads " << threads << " complaint " << i;
    }
  }
}

TEST_F(SessionFixture, BindWorkloadSurfacesFirstErrorInWorkloadOrder) {
  std::vector<QueryComplaints> workload = MultiQueryWorkload(setup_.true_count);
  // Entry 1 asks for an aggregate the query does not produce; entry 2 has
  // an out-of-range point complaint. The earlier error must win at every
  // worker count, regardless of which staged bind fails first.
  workload[1].complaints[0] = ComplaintSpec::ValueEq("no_such_agg", 1.0);
  workload[2].complaints[0] = ComplaintSpec::Point("dblp", 1 << 30, 1);
  for (int threads : {1, 8}) {
    pipeline()->ResetDebugState();
    const size_t nodes_before = pipeline()->arena()->num_nodes();
    auto bound = BindWorkload(pipeline(), workload, threads);
    ASSERT_FALSE(bound.ok()) << "threads " << threads;
    EXPECT_NE(bound.status().message().find("no_such_agg"), std::string::npos)
        << "threads " << threads << ": " << bound.status().message();
    // A failed bind must not leak partial provenance into the shared arena.
    EXPECT_EQ(pipeline()->arena()->num_nodes(), nodes_before)
        << "threads " << threads;
  }
}

// ----------------------------------------------- encode-phase parallelism

TEST(EncodeParallelismTest, DeletionSequenceBitwiseOnFig5Workload) {
  // Drives the train-rank-fix loop manually on twin pipelines so ONLY the
  // bind+encode worker count differs (training and the CG/influence solve
  // stay at 1 worker on both sides): the batched parallel encode must
  // reproduce the sequential deletion sequence bit for bit.
  DblpSetup seq = MakeCorruptedDblp();
  DblpSetup par = MakeCorruptedDblp();
  const std::vector<QueryComplaints> seq_workload =
      MultiQueryWorkload(seq.true_count);
  const std::vector<QueryComplaints> par_workload =
      MultiQueryWorkload(par.true_count);

  auto ranker = MakeHolisticRanker();
  std::vector<size_t> seq_deletions, par_deletions;
  constexpr int kTopK = 10;
  for (int iter = 0; iter < 3; ++iter) {
    auto run_side = [&](Query2Pipeline* pipeline,
                        const std::vector<QueryComplaints>& workload,
                        int encode_threads) -> std::vector<double> {
      EXPECT_TRUE(pipeline->Train().ok());
      pipeline->ResetDebugState();
      auto bound = BindWorkload(pipeline, workload, encode_threads);
      EXPECT_TRUE(bound.ok());
      RankContext ctx;
      ctx.model = pipeline->model();
      ctx.train = pipeline->train_data();
      ctx.catalog = &pipeline->catalog();
      ctx.arena = pipeline->arena();
      ctx.predictions = &pipeline->predictions();
      ctx.complaints = &*bound;
      ctx.influence.l2 = 1e-3;
      ctx.parallelism = encode_threads;  // bind+encode only; influence stays 1
      auto out = ranker->Rank(ctx);
      EXPECT_TRUE(out.ok());
      return out->scores;
    };
    const std::vector<double> seq_scores = run_side(seq.pipeline.get(), seq_workload, 1);
    const std::vector<double> par_scores = run_side(par.pipeline.get(), par_workload, 8);
    ASSERT_EQ(seq_scores, par_scores) << "iteration " << iter;

    // Fix phase: delete the top-k on both sides (identical by the above).
    std::vector<size_t> order(seq_scores.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return seq_scores[a] > seq_scores[b];
    });
    int removed = 0;
    for (size_t idx : order) {
      if (removed >= kTopK) break;
      if (!seq.pipeline->train_data()->active(idx)) continue;
      seq.pipeline->train_data()->Deactivate(idx);
      par.pipeline->train_data()->Deactivate(idx);
      seq_deletions.push_back(idx);
      par_deletions.push_back(idx);
      ++removed;
    }
  }
  EXPECT_EQ(seq_deletions.size(), 30u);
  EXPECT_EQ(seq_deletions, par_deletions);
}

// ------------------------------------------------------- shim equivalence

TEST(DebuggerShimTest, RunMatchesSessionBitwiseOnFig5Workload) {
  // Two bit-identical pipelines; the legacy blocking call on one, a
  // directly driven session on the other. The deletion sequences (and
  // per-iteration bookkeeping) must agree element for element.
  DblpSetup legacy = MakeCorruptedDblp();
  DblpSetup modern = MakeCorruptedDblp();

  DebugConfig cfg;
  cfg.top_k_per_iter = 10;
  cfg.max_deletions = 50;

  Debugger debugger(legacy.pipeline.get(), MakeHolisticRanker(), cfg);
  RAIN_SUPPRESS_DEPRECATION_BEGIN
  auto legacy_report =
      debugger.Run({CountComplaint(static_cast<double>(legacy.true_count))});
  RAIN_SUPPRESS_DEPRECATION_END
  ASSERT_TRUE(legacy_report.ok());

  auto session =
      DebugSessionBuilder(modern.pipeline.get())
          .ranker("holistic")
          .config(cfg)
          .workload({CountComplaint(static_cast<double>(modern.true_count))})
          .Build();
  ASSERT_TRUE(session.ok());
  auto modern_report = (*session)->RunToCompletion();
  ASSERT_TRUE(modern_report.ok());

  EXPECT_EQ(legacy_report->deletions, modern_report->deletions);
  ASSERT_EQ(legacy_report->iterations.size(), modern_report->iterations.size());
  for (size_t i = 0; i < legacy_report->iterations.size(); ++i) {
    EXPECT_EQ(legacy_report->iterations[i].violated_complaints,
              modern_report->iterations[i].violated_complaints)
        << "iteration " << i;
    EXPECT_EQ(legacy_report->iterations[i].deletions_after,
              modern_report->iterations[i].deletions_after)
        << "iteration " << i;
  }
  EXPECT_EQ(legacy_report->complaints_resolved, modern_report->complaints_resolved);
}

// --------------------------------------------------- ExecutionOptions API

/// The deprecated knob setters are shims over ExecutionOptions; a session
/// configured through them must be bitwise-identical to one configured
/// through set_execution with the same bundle.
TEST(ExecutionOptionsTest, LegacySettersBitwiseEquivalentToSetExecution) {
  DblpSetup legacy_setup = MakeCorruptedDblp();
  RecordingObserver legacy_observer;
  RAIN_SUPPRESS_DEPRECATION_BEGIN
  auto legacy = DebugSessionBuilder(legacy_setup.pipeline.get())
                    .ranker("holistic")
                    .top_k_per_iter(10)
                    .max_deletions(30)
                    .parallelism(2)
                    .set_num_shards(2)
                    .observer(&legacy_observer)
                    .workload({CountComplaint(
                        static_cast<double>(legacy_setup.true_count))})
                    .Build();
  RAIN_SUPPRESS_DEPRECATION_END
  ASSERT_TRUE(legacy.ok());
  auto legacy_report = (*legacy)->RunToCompletion();
  ASSERT_TRUE(legacy_report.ok());

  DblpSetup modern_setup = MakeCorruptedDblp();
  RecordingObserver modern_observer;
  auto modern = DebugSessionBuilder(modern_setup.pipeline.get())
                    .ranker("holistic")
                    .top_k_per_iter(10)
                    .max_deletions(30)
                    .set_execution(ExecutionOptions()
                                       .set_parallelism(2)
                                       .set_num_shards(2)
                                       .add_observer(&modern_observer))
                    .workload({CountComplaint(
                        static_cast<double>(modern_setup.true_count))})
                    .Build();
  ASSERT_TRUE(modern.ok());
  auto modern_report = (*modern)->RunToCompletion();
  ASSERT_TRUE(modern_report.ok());

  EXPECT_EQ(legacy_report->deletions, modern_report->deletions);
  EXPECT_EQ(legacy_report->complaints_resolved,
            modern_report->complaints_resolved);
  EXPECT_EQ(legacy_observer.events, modern_observer.events)
      << "observer streams must match event-for-event";
}

/// set_execution replaces the whole bundle; later legacy setter calls
/// still merge field-by-field on top (last write wins per knob).
TEST(ExecutionOptionsTest, LastWriteWinsAcrossOldAndNewApi) {
  DblpSetup setup = MakeCorruptedDblp();
  RAIN_SUPPRESS_DEPRECATION_BEGIN
  auto session =
      DebugSessionBuilder(setup.pipeline.get())
          .ranker("holistic")
          .max_deletions(10)
          .parallelism(7)  // overridden by the bundle below
          .set_execution(ExecutionOptions().set_parallelism(3))
          .set_num_shards(2)  // merges on top of the bundle
          .workload({CountComplaint(static_cast<double>(setup.true_count))})
          .Build();
  RAIN_SUPPRESS_DEPRECATION_END
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->config().parallelism, 3);
  EXPECT_EQ((*session)->config().num_shards, 2);
}

// --------------------------------------------- observer re-entrancy guard

#if defined(__SANITIZE_THREAD__)
#define RAIN_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RAIN_TSAN_BUILD 1
#endif
#endif

// Death tests fork, which TSan's runtime does not support reliably.
#ifndef RAIN_TSAN_BUILD

/// An observer that (incorrectly) re-enters the session from a callback.
class ReentrantObserver : public DebugObserver {
 public:
  explicit ReentrantObserver(DebugSession** session) : session_(session) {}
  void OnPhaseComplete(int, DebugPhase, double) override {
    (void)(*session_)->Step();  // contract violation: must RAIN_CHECK-fail
  }

 private:
  DebugSession** session_;
};

TEST(ObserverReentrancyDeathTest, ReenteringStepFromCallbackIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DblpSetup setup = MakeCorruptedDblp();
  DebugSession* raw = nullptr;
  ReentrantObserver evil(&raw);
  auto session =
      DebugSessionBuilder(setup.pipeline.get())
          .ranker("holistic")
          .max_deletions(10)
          .set_execution(ExecutionOptions().add_observer(&evil))
          .workload({CountComplaint(static_cast<double>(setup.true_count))})
          .Build();
  ASSERT_TRUE(session.ok());
  raw = session->get();
  EXPECT_DEATH((void)raw->Step(), "re-entered from a DebugObserver callback");
}

#endif  // RAIN_TSAN_BUILD

}  // namespace
}  // namespace rain
