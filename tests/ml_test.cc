#include <cmath>
#include <cstring>
#include <memory>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "ml/dataset.h"
#include "ml/eval.h"
#include "ml/lbfgs.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/model.h"
#include "ml/softmax_regression.h"
#include "ml/trainer.h"

namespace rain {
namespace {

Dataset RandomDataset(size_t n, size_t d, int classes, uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, d);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < d; ++f) x.At(i, f) = rng.Gaussian();
    y[i] = static_cast<int>(rng.UniformInt(classes));
  }
  return Dataset(std::move(x), std::move(y), classes);
}

void RandomizeParams(Model* model, uint64_t seed, double scale = 0.3) {
  Rng rng(seed);
  Vec theta(model->num_params());
  for (double& t : theta) t = scale * rng.Gaussian();
  model->set_params(theta);
}

/// Finite-difference check of the mean-loss gradient.
void CheckLossGradient(Model* model, const Dataset& data, double l2) {
  const double eps = 1e-6;
  Vec grad;
  model->MeanLossGradient(data, l2, &grad);
  Vec theta = model->params();
  for (size_t j = 0; j < theta.size(); j += std::max<size_t>(1, theta.size() / 13)) {
    Vec tp = theta, tm = theta;
    tp[j] += eps;
    tm[j] -= eps;
    model->set_params(tp);
    const double fp = model->MeanLoss(data, l2);
    model->set_params(tm);
    const double fm = model->MeanLoss(data, l2);
    model->set_params(theta);
    const double fd = (fp - fm) / (2 * eps);
    EXPECT_NEAR(grad[j], fd, 1e-4) << "param " << j;
  }
}

/// Finite-difference check of the HVP: H v vs (g(theta+eps v)-g(theta-eps v))/2eps.
void CheckHvp(Model* model, const Dataset& data, double l2, uint64_t seed) {
  Rng rng(seed);
  Vec v(model->num_params());
  for (double& x : v) x = rng.Gaussian();
  Vec hv;
  model->HessianVectorProduct(data, v, l2, &hv);

  const double eps = 1e-5;
  Vec theta = model->params();
  Vec tp = theta, tm = theta;
  for (size_t j = 0; j < theta.size(); ++j) {
    tp[j] += eps * v[j];
    tm[j] -= eps * v[j];
  }
  Vec gp, gm;
  model->set_params(tp);
  model->MeanLossGradient(data, l2, &gp);
  model->set_params(tm);
  model->MeanLossGradient(data, l2, &gm);
  model->set_params(theta);
  for (size_t j = 0; j < theta.size(); j += std::max<size_t>(1, theta.size() / 17)) {
    const double fd = (gp[j] - gm[j]) / (2 * eps);
    EXPECT_NEAR(hv[j], fd, 1e-3 * std::max(1.0, std::fabs(fd))) << "param " << j;
  }
}

/// Finite-difference check of AddProbaGradient with random class weights.
void CheckProbaGradient(Model* model, const Dataset& data, uint64_t seed) {
  Rng rng(seed);
  const int c = model->num_classes();
  Vec w(c);
  for (double& x : w) x = rng.Gaussian();
  const double* x0 = data.row(0);

  Vec grad(model->num_params(), 0.0);
  model->AddProbaGradient(x0, w, &grad);

  auto weighted = [&]() {
    std::vector<double> p(c);
    model->PredictProba(x0, p.data());
    double s = 0.0;
    for (int k = 0; k < c; ++k) s += w[k] * p[k];
    return s;
  };
  const double eps = 1e-6;
  Vec theta = model->params();
  for (size_t j = 0; j < theta.size(); j += std::max<size_t>(1, theta.size() / 13)) {
    Vec tp = theta, tm = theta;
    tp[j] += eps;
    tm[j] -= eps;
    model->set_params(tp);
    const double fp = weighted();
    model->set_params(tm);
    const double fm = weighted();
    model->set_params(theta);
    EXPECT_NEAR(grad[j], (fp - fm) / (2 * eps), 1e-4) << "param " << j;
  }
}

TEST(DatasetTest, ConstructionAndDeactivation) {
  Dataset d = RandomDataset(10, 3, 2, 1);
  EXPECT_EQ(d.size(), 10u);
  EXPECT_EQ(d.num_active(), 10u);
  d.Deactivate(4);
  d.Deactivate(4);  // idempotent
  EXPECT_EQ(d.num_active(), 9u);
  EXPECT_FALSE(d.active(4));
  auto idx = d.ActiveIndices();
  EXPECT_EQ(idx.size(), 9u);
  EXPECT_EQ(std::count(idx.begin(), idx.end(), 4u), 0);
  d.ReactivateAll();
  EXPECT_EQ(d.num_active(), 10u);
}

TEST(DatasetTest, SetLabel) {
  Dataset d = RandomDataset(5, 2, 3, 2);
  d.set_label(2, 1);
  EXPECT_EQ(d.label(2), 1);
}

TEST(LogisticTest, SigmoidStable) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
}

TEST(LogisticTest, ProbaSumsToOne) {
  LogisticRegression m(4);
  RandomizeParams(&m, 3);
  Rng rng(4);
  Vec x{rng.Gaussian(), rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
  double p[2];
  m.PredictProba(x.data(), p);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(LogisticTest, GradientMatchesFiniteDifference) {
  Dataset d = RandomDataset(40, 5, 2, 5);
  LogisticRegression m(5);
  RandomizeParams(&m, 6);
  CheckLossGradient(&m, d, 1e-3);
}

TEST(LogisticTest, GradientNoIntercept) {
  Dataset d = RandomDataset(40, 5, 2, 7);
  LogisticRegression m(5, /*fit_intercept=*/false);
  EXPECT_EQ(m.num_params(), 5u);
  RandomizeParams(&m, 8);
  CheckLossGradient(&m, d, 1e-3);
}

TEST(LogisticTest, HvpMatchesFiniteDifference) {
  Dataset d = RandomDataset(30, 4, 2, 9);
  LogisticRegression m(4);
  RandomizeParams(&m, 10);
  CheckHvp(&m, d, 1e-2, 11);
}

TEST(LogisticTest, ProbaGradientMatchesFiniteDifference) {
  Dataset d = RandomDataset(10, 4, 2, 12);
  LogisticRegression m(4);
  RandomizeParams(&m, 13);
  CheckProbaGradient(&m, d, 14);
}

TEST(LogisticTest, HvpRespectsActiveMask) {
  Dataset d = RandomDataset(20, 3, 2, 15);
  LogisticRegression m(3);
  RandomizeParams(&m, 16);
  Vec v(m.num_params(), 1.0);
  Vec hv_full;
  m.HessianVectorProduct(d, v, 0.0, &hv_full);
  for (size_t i = 10; i < 20; ++i) d.Deactivate(i);
  Vec hv_half;
  m.HessianVectorProduct(d, v, 0.0, &hv_half);
  // Different training sets -> different Hessians (almost surely).
  EXPECT_GT(vec::MaxAbsDiff(hv_full, hv_half), 1e-9);
}

TEST(SoftmaxTest, ProbaSumsToOne) {
  SoftmaxRegression m(6, 4);
  RandomizeParams(&m, 20);
  Rng rng(21);
  Vec x(6);
  for (double& v : x) v = rng.Gaussian();
  Vec p(4);
  m.PredictProba(x.data(), p.data());
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SoftmaxTest, GradientMatchesFiniteDifference) {
  Dataset d = RandomDataset(30, 4, 3, 22);
  SoftmaxRegression m(4, 3);
  RandomizeParams(&m, 23);
  CheckLossGradient(&m, d, 1e-3);
}

TEST(SoftmaxTest, HvpMatchesFiniteDifference) {
  Dataset d = RandomDataset(25, 3, 4, 24);
  SoftmaxRegression m(3, 4);
  RandomizeParams(&m, 25);
  CheckHvp(&m, d, 1e-2, 26);
}

TEST(SoftmaxTest, ProbaGradientMatchesFiniteDifference) {
  Dataset d = RandomDataset(10, 3, 5, 27);
  SoftmaxRegression m(3, 5);
  RandomizeParams(&m, 28);
  CheckProbaGradient(&m, d, 29);
}

TEST(SoftmaxTest, BinaryAgreesWithLogisticShape) {
  // A 2-class softmax and binary logistic should produce identical
  // training behaviour on the same data (up to parameterization).
  Dataset d = RandomDataset(60, 4, 2, 30);
  SoftmaxRegression sm(4, 2);
  LogisticRegression lr(4);
  TrainConfig cfg;
  ASSERT_TRUE(TrainModel(&sm, d, cfg).ok());
  ASSERT_TRUE(TrainModel(&lr, d, cfg).ok());
  int agree = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    agree += sm.PredictClass(d.row(i)) == lr.PredictClass(d.row(i));
  }
  EXPECT_GE(agree, static_cast<int>(d.size()) - 3);
}

TEST(MlpTest, GradientMatchesFiniteDifference) {
  Dataset d = RandomDataset(20, 5, 3, 31);
  Mlp m(5, 7, 3, /*seed=*/32);
  CheckLossGradient(&m, d, 1e-3);
}

TEST(MlpTest, PearlmutterHvpMatchesFiniteDifference) {
  Dataset d = RandomDataset(15, 4, 3, 33);
  Mlp m(4, 6, 3, /*seed=*/34);
  CheckHvp(&m, d, 1e-2, 35);
}

TEST(MlpTest, ProbaGradientMatchesFiniteDifference) {
  Dataset d = RandomDataset(8, 4, 3, 36);
  Mlp m(4, 5, 3, /*seed=*/37);
  CheckProbaGradient(&m, d, 38);
}

TEST(MlpTest, CloneIsIndependent) {
  Mlp m(3, 4, 2, 40);
  auto c = m.Clone();
  Vec theta = m.params();
  theta[0] += 1.0;
  m.set_params(theta);
  EXPECT_NE(m.params()[0], c->params()[0]);
}

TEST(LbfgsTest, MinimizesQuadratic) {
  // f(x) = 0.5 (x - a)^T D (x - a), D diagonal positive.
  const Vec a{1.0, -2.0, 3.0};
  const Vec diag{2.0, 5.0, 0.5};
  Objective f = [&](const Vec& x, Vec* g) {
    double fx = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      fx += 0.5 * diag[i] * (x[i] - a[i]) * (x[i] - a[i]);
      (*g)[i] = diag[i] * (x[i] - a[i]);
    }
    return fx;
  };
  LbfgsResult r = LbfgsMinimize(f, Vec{0.0, 0.0, 0.0});
  EXPECT_TRUE(r.converged);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(r.x[i], a[i], 1e-5);
}

TEST(LbfgsTest, MinimizesRosenbrock) {
  Objective f = [](const Vec& x, Vec* g) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    (*g)[0] = -2.0 * a - 400.0 * x[0] * b;
    (*g)[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  };
  LbfgsOptions opts;
  opts.max_iters = 2000;
  opts.grad_tol = 1e-8;
  LbfgsResult r = LbfgsMinimize(f, Vec{-1.2, 1.0}, opts);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 1.0, 1e-4);
}

TEST(TrainerTest, LearnsSeparableProblem) {
  // Linearly separable data: y = [x0 + x1 > 0].
  Rng rng(50);
  Matrix x(200, 2);
  std::vector<int> y(200);
  for (size_t i = 0; i < 200; ++i) {
    x.At(i, 0) = rng.Gaussian();
    x.At(i, 1) = rng.Gaussian();
    y[i] = x.At(i, 0) + x.At(i, 1) > 0 ? 1 : 0;
  }
  Dataset d(std::move(x), std::move(y), 2);
  LogisticRegression m(2);
  TrainConfig cfg;
  cfg.l2 = 1e-4;
  auto report = TrainModel(&m, d, cfg);
  ASSERT_TRUE(report.ok());
  EvalReport eval = Evaluate(m, d);
  EXPECT_GT(eval.accuracy, 0.97);
  EXPECT_GT(eval.f1, 0.97);
}

TEST(TrainerTest, RejectsEmptyTrainingSet) {
  Dataset d = RandomDataset(3, 2, 2, 51);
  for (size_t i = 0; i < 3; ++i) d.Deactivate(i);
  LogisticRegression m(2);
  EXPECT_FALSE(TrainModel(&m, d).ok());
}

TEST(TrainerTest, RejectsShapeMismatch) {
  Dataset d = RandomDataset(10, 3, 2, 52);
  LogisticRegression m(4);
  EXPECT_FALSE(TrainModel(&m, d).ok());
}

TEST(TrainerTest, WarmStartConvergesFasterOrEqual) {
  Dataset d = RandomDataset(100, 4, 2, 53);
  LogisticRegression m(4);
  TrainConfig cfg;
  auto first = TrainModel(&m, d, cfg);
  ASSERT_TRUE(first.ok());
  auto second = TrainModel(&m, d, cfg);
  ASSERT_TRUE(second.ok());
  EXPECT_LE(second->iterations, first->iterations);
}

/// Parallel loss / gradient / HVP must agree with the sequential path for
/// every model family (deterministic chunked reductions, ε from reordering).
void CheckParallelMatchesSequential(Model* model, const Dataset& data, double l2,
                                    uint64_t seed) {
  Rng rng(seed);
  Vec v(model->num_params());
  for (double& x : v) x = rng.Gaussian();

  model->set_parallelism(1);
  const double loss_seq = model->MeanLoss(data, l2);
  Vec grad_seq, hvp_seq;
  model->MeanLossGradient(data, l2, &grad_seq);
  model->HessianVectorProduct(data, v, l2, &hvp_seq);

  for (int par : {2, 4, 8}) {
    model->set_parallelism(par);
    EXPECT_NEAR(model->MeanLoss(data, l2), loss_seq, 1e-10) << "parallelism=" << par;
    Vec grad_par, hvp_par;
    model->MeanLossGradient(data, l2, &grad_par);
    model->HessianVectorProduct(data, v, l2, &hvp_par);
    EXPECT_LT(vec::MaxAbsDiff(grad_par, grad_seq), 1e-10) << "parallelism=" << par;
    EXPECT_LT(vec::MaxAbsDiff(hvp_par, hvp_seq), 1e-10) << "parallelism=" << par;
  }
  model->set_parallelism(1);
}

TEST(LogisticTest, ParallelKernelsMatchSequential) {
  Dataset d = RandomDataset(120, 5, 2, 61);
  d.Deactivate(7);
  LogisticRegression m(5);
  RandomizeParams(&m, 62);
  CheckParallelMatchesSequential(&m, d, 1e-3, 63);
}

TEST(SoftmaxTest, ParallelKernelsMatchSequential) {
  Dataset d = RandomDataset(120, 5, 3, 67);
  SoftmaxRegression m(5, 3);
  RandomizeParams(&m, 68);
  CheckParallelMatchesSequential(&m, d, 1e-3, 69);
}

TEST(MlpTest, ParallelKernelsMatchSequential) {
  Dataset d = RandomDataset(90, 6, 3, 71);
  Mlp m(6, 8, 3, /*seed=*/72);
  CheckParallelMatchesSequential(&m, d, 1e-3, 73);
}

TEST(MlpTest, CloneKeepsParallelism) {
  Mlp m(4, 3, 2);
  m.set_parallelism(4);
  std::unique_ptr<Model> clone = m.Clone();
  EXPECT_EQ(clone->parallelism(), 4);
}

/// \brief The blocked HVP bodies batch runs of consecutive ACTIVE rows
/// into Gemv/GemmNT projections; the per-row HvpCoeffs + ApplyHvpCoeffs
/// replay must still reproduce the direct path BITWISE (the sharded
/// debugging paths depend on it).
///
/// The hole pattern is chosen against the block caps (64 logistic, 32
/// softmax, 16 MLP): a hole at row 0, a short run, a run of exactly 64,
/// a triple hole, a run longer than every cap (block restarts mid-run),
/// and a hole at the last row.
void CheckHvpMatchesCoeffReplayBitwise(Model* model, uint64_t seed) {
  Dataset data = RandomDataset(200, 7, model->num_classes(), seed);
  for (size_t hole : {0u, 5u, 70u, 71u, 72u, 127u, 199u}) data.Deactivate(hole);
  Rng rng(seed + 1);
  Vec v(model->num_params());
  for (double& x : v) x = rng.Gaussian();
  const double l2 = 1e-3;

  Vec direct;
  model->HessianVectorProduct(data, v, l2, &direct);

  ASSERT_GT(model->hvp_coeff_size(), 0u);
  Vec coeffs(model->hvp_coeff_size());
  Vec replay(model->num_params(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (!data.active(i)) continue;
    model->HvpCoeffs(data.row(i), data.label(i), v, coeffs.data());
    model->ApplyHvpCoeffs(data.row(i), coeffs.data(), &replay);
  }
  // Same mean + regularizer statements as HessianVectorProduct.
  const double inv_n = 1.0 / static_cast<double>(data.num_active());
  for (double& o : replay) o *= inv_n;
  vec::Axpy(2.0 * l2, v, &replay);

  ASSERT_EQ(replay.size(), direct.size());
  EXPECT_EQ(std::memcmp(replay.data(), direct.data(),
                        direct.size() * sizeof(double)),
            0);
}

TEST(LogisticTest, HvpMatchesCoeffReplayBitwiseWithHoles) {
  LogisticRegression m(7);
  RandomizeParams(&m, 91);
  CheckHvpMatchesCoeffReplayBitwise(&m, 92);
}

TEST(SoftmaxTest, HvpMatchesCoeffReplayBitwiseWithHoles) {
  SoftmaxRegression m(7, 4);
  RandomizeParams(&m, 93);
  CheckHvpMatchesCoeffReplayBitwise(&m, 94);
}

TEST(MlpTest, HvpMatchesCoeffReplayBitwiseWithHoles) {
  Mlp m(7, 9, 4, /*seed=*/95);
  CheckHvpMatchesCoeffReplayBitwise(&m, 96);
}

TEST(TrainerTest, ParallelTrainingReachesSequentialLoss) {
  Dataset d = RandomDataset(200, 4, 2, 79);
  TrainConfig cfg;
  cfg.grad_tol = 1e-8;

  LogisticRegression seq(4);
  auto seq_report = TrainModel(&seq, d, cfg);
  ASSERT_TRUE(seq_report.ok());

  cfg.parallelism = 4;
  LogisticRegression par(4);
  auto par_report = TrainModel(&par, d, cfg);
  ASSERT_TRUE(par_report.ok());
  EXPECT_EQ(par.parallelism(), 4) << "trainer must install the knob on the model";
  EXPECT_NEAR(par_report->final_loss, seq_report->final_loss, 1e-6);
  EXPECT_LT(vec::MaxAbsDiff(par.params(), seq.params()), 1e-4);
}

TEST(DatasetCowTest, CopiesAndViewsShareStorage) {
  Matrix x(3, 2);
  Dataset base(std::move(x), {0, 1, 0}, 2);
  Dataset copy = base;
  Dataset view = base.View();
  EXPECT_TRUE(copy.SharesStorageWith(base));
  EXPECT_TRUE(view.SharesStorageWith(base));
  EXPECT_EQ(view.features().Row(1), base.features().Row(1))
      << "a view must alias the base feature storage, not copy it";
}

TEST(DatasetCowTest, ViewDeactivationsAreInvisibleToSiblings) {
  Matrix x(4, 1);
  Dataset base(std::move(x), {0, 1, 0, 1}, 2);
  Dataset a = base.View();
  Dataset b = base.View();
  a.Deactivate(2);
  EXPECT_EQ(a.num_active(), 3u);
  EXPECT_EQ(b.num_active(), 4u) << "sibling views own independent masks";
  EXPECT_EQ(base.num_active(), 4u);
  EXPECT_TRUE(a.SharesStorageWith(b)) << "mask edits never detach storage";
}

TEST(DatasetCowTest, ViewResetsTheMaskButCopyPreservesIt) {
  Matrix x(3, 1);
  Dataset base(std::move(x), {0, 1, 0}, 2);
  base.Deactivate(0);
  Dataset copy = base;
  Dataset view = base.View();
  EXPECT_EQ(copy.num_active(), 2u) << "a copy is a snapshot of the mask";
  EXPECT_EQ(view.num_active(), 3u) << "a view starts all-active";
}

TEST(DatasetCowTest, SetLabelDetachesSharedStorage) {
  Matrix x(3, 1);
  Dataset base(std::move(x), {0, 1, 0}, 2);
  Dataset view = base.View();
  view.set_label(1, 0);
  EXPECT_FALSE(view.SharesStorageWith(base))
      << "writing a label must detach, not mutate shared storage";
  EXPECT_EQ(view.label(1), 0);
  EXPECT_EQ(base.label(1), 1) << "the base must never observe the write";
  // Unshared storage writes in place — no detach churn.
  view.set_label(2, 1);
  EXPECT_EQ(view.label(2), 1);
}

TEST(EvalTest, PerfectAndWorstMetrics) {
  Matrix x(4, 1);
  x.At(0, 0) = -2.0;
  x.At(1, 0) = -1.0;
  x.At(2, 0) = 1.0;
  x.At(3, 0) = 2.0;
  Dataset d(std::move(x), {0, 0, 1, 1}, 2);
  LogisticRegression m(1, /*fit_intercept=*/false);
  m.set_params({5.0});
  EvalReport good = Evaluate(m, d);
  EXPECT_DOUBLE_EQ(good.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(good.f1, 1.0);
  m.set_params({-5.0});
  EvalReport bad = Evaluate(m, d);
  EXPECT_DOUBLE_EQ(bad.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(bad.f1, 0.0);
}

}  // namespace
}  // namespace rain
