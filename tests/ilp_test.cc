#include <set>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "ilp/problem.h"
#include "ilp/solver.h"
#include "ilp/tiresias.h"
#include "provenance/poly.h"
#include "provenance/prediction_store.h"

namespace rain {
namespace {

IlpSolveOptions NoRandom() {
  IlpSolveOptions o;
  o.randomize = false;
  return o;
}

TEST(IlpProblemTest, ObjectiveAndFeasibility) {
  IlpProblem p;
  const int a = p.AddVar(1.0, "a");
  const int b = p.AddVar(2.0, "b");
  p.AddCardinality({a, b}, ConstraintSense::kGe, 1.0);
  EXPECT_EQ(p.num_vars(), 2u);
  EXPECT_DOUBLE_EQ(p.ObjectiveValue({1, 1}), 3.0);
  EXPECT_TRUE(p.IsFeasible({1, 0}));
  EXPECT_FALSE(p.IsFeasible({0, 0}));
}

TEST(IlpSolverTest, PicksCheapestCover) {
  // min a + 2b st a + b >= 1 -> a=1, b=0.
  IlpProblem p;
  const int a = p.AddVar(1.0);
  const int b = p.AddVar(2.0);
  p.AddCardinality({a, b}, ConstraintSense::kGe, 1.0);
  auto sol = SolveIlp(p, NoRandom());
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->optimal);
  EXPECT_DOUBLE_EQ(sol->objective, 1.0);
  EXPECT_EQ(sol->values[a], 1);
  EXPECT_EQ(sol->values[b], 0);
}

TEST(IlpSolverTest, EqualityCardinality) {
  IlpProblem p;
  std::vector<int> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(p.AddVar(1.0));
  p.AddCardinality(vars, ConstraintSense::kEq, 3.0);
  auto sol = SolveIlp(p, NoRandom());
  ASSERT_TRUE(sol.ok());
  int ones = 0;
  for (auto v : sol->values) ones += v;
  EXPECT_EQ(ones, 3);
  EXPECT_DOUBLE_EQ(sol->objective, 3.0);
}

TEST(IlpSolverTest, InfeasibleReported) {
  IlpProblem p;
  const int a = p.AddVar(1.0);
  p.AddCardinality({a}, ConstraintSense::kGe, 2.0);  // impossible
  auto sol = SolveIlp(p, NoRandom());
  EXPECT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsResourceExhausted());
}

TEST(IlpSolverTest, NegativeCoefficients) {
  // min x st x - y >= 0, y = 1 -> x = 1.
  IlpProblem p;
  const int x = p.AddVar(1.0);
  const int y = p.AddVar(0.0);
  LinearConstraint c;
  c.terms = {{x, 1.0}, {y, -1.0}};
  c.sense = ConstraintSense::kGe;
  c.rhs = 0.0;
  p.AddConstraint(c);
  p.AddCardinality({y}, ConstraintSense::kEq, 1.0);
  auto sol = SolveIlp(p, NoRandom());
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->values[x], 1);
}

TEST(IlpSolverTest, PropagationFixesChain) {
  // z = AND(a, b) forced to 1 by constraint -> a = b = z = 1.
  IlpProblem p;
  const int a = p.AddVar(1.0);
  const int b = p.AddVar(1.0);
  const int z = p.AddVar(0.0);
  // z <= a; z <= b; z >= a + b - 1.
  p.AddConstraint({{{z, 1.0}, {a, -1.0}}, ConstraintSense::kLe, 0.0});
  p.AddConstraint({{{z, 1.0}, {b, -1.0}}, ConstraintSense::kLe, 0.0});
  p.AddConstraint({{{a, 1.0}, {b, 1.0}, {z, -1.0}}, ConstraintSense::kLe, 1.0});
  p.AddCardinality({z}, ConstraintSense::kEq, 1.0);
  auto sol = SolveIlp(p, NoRandom());
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->values[a], 1);
  EXPECT_EQ(sol->values[b], 1);
}

TEST(IlpSolverTest, BudgetExhaustionWithoutSolutionIsError) {
  // A deliberately thorny infeasible-ish instance with a 0-node budget.
  IlpProblem p;
  std::vector<int> vars;
  for (int i = 0; i < 30; ++i) vars.push_back(p.AddVar(1.0));
  for (int i = 0; i + 1 < 30; ++i) {
    p.AddConstraint({{{vars[i], 1.0}, {vars[i + 1], 1.0}}, ConstraintSense::kEq, 1.0});
  }
  p.AddCardinality(vars, ConstraintSense::kEq, 14.0);  // parity conflict
  IlpSolveOptions opts = NoRandom();
  opts.max_nodes = 100000;
  auto sol = SolveIlp(p, opts);
  // Alternating chain forces 15 ones; Eq 14 is infeasible.
  EXPECT_FALSE(sol.ok());
}

TEST(IlpSolverTest, DecompositionMatchesBnbOptimum) {
  // Independent per-row one-hots + a coupling cardinality — exactly the
  // Tiresias COUNT shape. The decomposition fast path and plain B&B must
  // agree on the optimal objective.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    IlpProblem p;
    std::vector<int> class1;
    const int rows = 12;
    for (int r = 0; r < rows; ++r) {
      const int cur = static_cast<int>(rng.UniformInt(2));
      const int v0 = p.AddVar(cur == 0 ? 0.0 : 1.0);
      const int v1 = p.AddVar(cur == 1 ? 0.0 : 1.0);
      p.AddCardinality({v0, v1}, ConstraintSense::kEq, 1.0);
      class1.push_back(v1);
    }
    p.AddCardinality(class1, ConstraintSense::kEq, 7.0);
    const int coupling = static_cast<int>(p.num_constraints()) - 1;

    IlpSolveOptions with_decomp = NoRandom();
    with_decomp.coupling_constraint = coupling;
    auto fast = SolveIlp(p, with_decomp);
    ASSERT_TRUE(fast.ok());
    EXPECT_TRUE(fast->used_decomposition);

    auto slow = SolveIlp(p, NoRandom());
    ASSERT_TRUE(slow.ok());
    EXPECT_DOUBLE_EQ(fast->objective, slow->objective) << "seed " << seed;
    EXPECT_TRUE(p.IsFeasible(fast->values));
    EXPECT_TRUE(p.IsFeasible(slow->values));
  }
}

TEST(IlpSolverTest, RandomizationSamplesDifferentOptima) {
  // 6 identical rows, flip 3: many optima; randomized runs should not all
  // return the same solution.
  IlpProblem p;
  std::vector<int> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(p.AddVar(1.0));
  p.AddCardinality(vars, ConstraintSense::kEq, 3.0);
  std::set<std::vector<uint8_t>> seen;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    IlpSolveOptions opts;
    opts.randomize = true;
    opts.seed = seed;
    opts.coupling_constraint = 0;
    auto sol = SolveIlp(p, opts);
    ASSERT_TRUE(sol.ok());
    EXPECT_DOUBLE_EQ(sol->objective, 3.0);
    seen.insert(sol->values);
  }
  EXPECT_GT(seen.size(), 1u) << "randomized solver must sample distinct optima";
}

// ---------------------------------------------------------------------------
// Warm starts.
// ---------------------------------------------------------------------------

/// Chain cover: x_i + x_{i+1} >= 1, alternating costs. Big enough that
/// branch-and-bound does real work.
IlpProblem ChainCover(int n) {
  IlpProblem p;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(p.AddVar(i % 2 == 0 ? 1.1 : 1.0));
  }
  for (int i = 0; i + 1 < n; ++i) {
    p.AddCardinality({vars[i], vars[i + 1]}, ConstraintSense::kGe, 1.0);
  }
  return p;
}

TEST(IlpSolverTest, WarmStartSameOptimumFewerNodes) {
  const IlpProblem p = ChainCover(16);
  auto cold = SolveIlp(p, NoRandom());
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->optimal);
  EXPECT_FALSE(cold->warm_start_used);

  IlpSolveOptions opts = NoRandom();
  opts.warm_start = cold->values;
  auto warm = SolveIlp(p, opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->optimal);
  EXPECT_TRUE(warm->warm_start_used);
  EXPECT_DOUBLE_EQ(warm->objective, cold->objective);
  // Seeding the incumbent can only tighten the bound pruning.
  EXPECT_LE(warm->nodes_explored, cold->nodes_explored);
}

TEST(IlpSolverTest, WarmStartSurvivesBudgetExhaustion) {
  // 3000 vars, exactly 1500 ones: the cheap-first dive assigns zeros and
  // cannot reach a leaf before the budget check fires (every 1024 nodes),
  // so a 1-node budget starves the cold solver.
  IlpProblem p;
  std::vector<int> vars;
  for (int i = 0; i < 3000; ++i) vars.push_back(p.AddVar(1.0));
  p.AddCardinality(vars, ConstraintSense::kEq, 1500.0);
  IlpSolveOptions opts = NoRandom();
  opts.max_nodes = 1;
  auto starved = SolveIlp(p, opts);
  EXPECT_FALSE(starved.ok()) << "no incumbent within budget must error";

  // A feasible warm start turns the same starved run into a usable
  // anytime answer.
  opts.warm_start.assign(p.num_vars(), 0);
  for (int i = 0; i < 1500; ++i) opts.warm_start[i] = 1;
  auto warm = SolveIlp(p, opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->feasible);
  EXPECT_TRUE(warm->warm_start_used);
  EXPECT_FALSE(warm->optimal);
  EXPECT_DOUBLE_EQ(warm->objective, p.ObjectiveValue(opts.warm_start));
}

TEST(IlpSolverTest, InfeasibleOrWrongSizeWarmStartIgnored) {
  const IlpProblem p = ChainCover(8);
  IlpSolveOptions opts = NoRandom();
  opts.warm_start.assign(p.num_vars(), 0);  // violates every cover
  auto sol = SolveIlp(p, opts);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->warm_start_used);
  EXPECT_TRUE(sol->optimal);

  opts.warm_start.assign(p.num_vars() + 3, 1);  // wrong size
  auto sol2 = SolveIlp(p, opts);
  ASSERT_TRUE(sol2.ok());
  EXPECT_FALSE(sol2->warm_start_used);
  EXPECT_DOUBLE_EQ(sol2->objective, sol->objective);
}

// ---------------------------------------------------------------------------
// Multi-coupling decomposition.
// ---------------------------------------------------------------------------

/// Fig. 8 "both"-shaped instance: one-hot binary rows plus two
/// overlapping cardinality couplings over the class-1 vars. Current
/// prediction is class 0 everywhere, so flipping row r costs 1.
struct BothShaped {
  IlpProblem p;
  std::vector<int> cls1;  // class-1 var of each row
  int c1 = -1, c2 = -1;   // coupling constraint indices
};

BothShaped MakeBothShaped(double rhs2 = 2.0) {
  BothShaped b;
  for (int r = 0; r < 8; ++r) {
    const int v0 = b.p.AddVar(0.0);
    const int v1 = b.p.AddVar(1.0);
    b.p.AddCardinality({v0, v1}, ConstraintSense::kEq, 1.0);
    b.cls1.push_back(v1);
  }
  // Coupling 1: rows 0..5 contribute 3; coupling 2: rows 3..7 contribute 2.
  // With a/b/c counts in {0..2}/{3..5}/{6..7}: a+b=3, b+c=2, cost 5-b,
  // so the optimum takes b=2 -> cost 3.
  b.p.AddCardinality({b.cls1[0], b.cls1[1], b.cls1[2], b.cls1[3], b.cls1[4],
                      b.cls1[5]},
                     ConstraintSense::kEq, 3.0);
  b.c1 = static_cast<int>(b.p.num_constraints()) - 1;
  b.p.AddCardinality({b.cls1[3], b.cls1[4], b.cls1[5], b.cls1[6], b.cls1[7]},
                     ConstraintSense::kEq, rhs2);
  b.c2 = static_cast<int>(b.p.num_constraints()) - 1;
  return b;
}

TEST(IlpSolverTest, MultiCouplingDecompositionMatchesBnb) {
  BothShaped b = MakeBothShaped();
  auto bnb = SolveIlp(b.p, NoRandom());
  ASSERT_TRUE(bnb.ok());
  ASSERT_TRUE(bnb->optimal);
  EXPECT_DOUBLE_EQ(bnb->objective, 3.0);

  IlpSolveOptions opts = NoRandom();
  opts.coupling_constraints = {b.c1, b.c2};
  auto dec = SolveIlp(b.p, opts);
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(dec->optimal);
  EXPECT_TRUE(dec->used_decomposition);
  EXPECT_DOUBLE_EQ(dec->objective, 3.0);
  EXPECT_TRUE(b.p.IsFeasible(dec->values));
}

TEST(IlpSolverTest, MultiCouplingInfeasibleTargetDetected) {
  // Coupling 2 demands more class-1 rows than its 5 members can supply.
  BothShaped b = MakeBothShaped(/*rhs2=*/6.0);
  IlpSolveOptions opts = NoRandom();
  opts.coupling_constraints = {b.c1, b.c2};
  auto dec = SolveIlp(b.p, opts);
  // Infeasibility surfaces as an error, matching the BnB convention.
  ASSERT_FALSE(dec.ok());
  EXPECT_TRUE(dec.status().IsResourceExhausted());
}

TEST(IlpSolverTest, MultiCouplingRandomizedSamplesDistinctOptima) {
  std::set<std::vector<uint8_t>> seen;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    BothShaped b = MakeBothShaped();
    IlpSolveOptions opts;
    opts.randomize = true;
    opts.seed = seed;
    opts.coupling_constraints = {b.c1, b.c2};
    auto sol = SolveIlp(b.p, opts);
    ASSERT_TRUE(sol.ok());
    EXPECT_DOUBLE_EQ(sol->objective, 3.0);
    EXPECT_TRUE(b.p.IsFeasible(sol->values));
    seen.insert(sol->values);
  }
  EXPECT_GT(seen.size(), 1u) << "multi-coupling DP must sample distinct optima";
}

// ---------------------------------------------------------------------------
// Tiresias encoding tests.
// ---------------------------------------------------------------------------

struct TiresiasFixture : public ::testing::Test {
  void SetUp() override {
    // 4 queried rows, binary model; rows 1, 2 predicted class 1.
    Matrix probs(4, 2);
    probs.SetRow(0, {0.8, 0.2});
    probs.SetRow(1, {0.3, 0.7});
    probs.SetRow(2, {0.1, 0.9});
    probs.SetRow(3, {0.6, 0.4});
    preds.SetPredictions(0, std::move(probs));
  }
  PolyArena arena;
  PredictionStore preds;
};

TEST_F(TiresiasFixture, CountComplaintEncodesEquationFive) {
  // count = sum_r v(r, 1); complaint count = 3 while current count is 2.
  std::vector<PolyId> terms;
  for (int64_t r = 0; r < 4; ++r) terms.push_back(arena.Var(PredVar{0, r, 1}));
  const PolyId count = arena.Add(terms);

  auto enc = EncodeTiresias(&arena, preds, {{count, ConstraintSense::kEq, 3.0}});
  ASSERT_TRUE(enc.ok());
  // 4 rows x 2 classes variables + one-hots + complaint constraint.
  EXPECT_EQ(enc->problem.num_vars(), 8u);
  EXPECT_EQ(enc->problem.num_constraints(), 5u);
  EXPECT_GE(enc->coupling_constraint, 0);

  IlpSolveOptions opts;
  opts.randomize = false;
  opts.coupling_constraint = enc->coupling_constraint;
  auto sol = SolveIlp(enc->problem, opts);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->objective, 1.0);  // one flip

  auto marked = DecodeMarkedPredictions(*enc, *sol);
  ASSERT_EQ(marked.size(), 1u);
  EXPECT_EQ(marked[0].assigned_class, 1);
  // The flipped row must be one currently predicted 0 (rows 0 or 3).
  EXPECT_TRUE(marked[0].row == 0 || marked[0].row == 3);
}

TEST_F(TiresiasFixture, TupleComplaintForcesRepair) {
  // Join tuple (row 1, row 2) exists because both predict class 1;
  // complaint: should not exist. Minimal repair flips one of them.
  const PolyId both = arena.And(
      {arena.Var(PredVar{0, 1, 1}), arena.Var(PredVar{0, 2, 1})});
  auto enc = EncodeTiresias(&arena, preds, {{both, ConstraintSense::kEq, 0.0}});
  ASSERT_TRUE(enc.ok());
  auto sol = SolveIlp(enc->problem, NoRandom());
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->objective, 1.0);
  auto marked = DecodeMarkedPredictions(*enc, *sol);
  ASSERT_EQ(marked.size(), 1u);
  EXPECT_TRUE(marked[0].row == 1 || marked[0].row == 2);
  EXPECT_EQ(marked[0].assigned_class, 0);
}

TEST_F(TiresiasFixture, MultiClassJoinEquality) {
  // 10-class predictions for two rows of table 1; complaint: the join
  // tuple OR_c(v_l,c AND v_r,c) should not exist.
  Matrix probs(2, 10, 0.05);
  probs.At(0, 1) = 0.55;  // row 0 predicted 1
  probs.At(1, 1) = 0.55;  // row 1 predicted 1
  preds.SetPredictions(1, std::move(probs));
  std::vector<PolyId> ors;
  for (int c = 0; c < 10; ++c) {
    ors.push_back(arena.And(
        {arena.Var(PredVar{1, 0, c}), arena.Var(PredVar{1, 1, c})}));
  }
  const PolyId tuple = arena.Or(ors);
  auto enc = EncodeTiresias(&arena, preds, {{tuple, ConstraintSense::kEq, 0.0}});
  ASSERT_TRUE(enc.ok());
  auto sol = SolveIlp(enc->problem, NoRandom());
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->objective, 1.0);  // flip one of the two rows
  auto marked = DecodeMarkedPredictions(*enc, *sol);
  ASSERT_EQ(marked.size(), 1u);
  EXPECT_NE(marked[0].assigned_class, 1);
}

TEST_F(TiresiasFixture, WeightedSumComplaintNormalizes) {
  // AVG-style polynomial: (v0 + v1 + v2 + v3) / 4 = 0.75 -> cardinality 3.
  std::vector<PolyId> terms;
  for (int64_t r = 0; r < 4; ++r) terms.push_back(arena.Var(PredVar{0, r, 1}));
  const PolyId avg = arena.Div(arena.Add(terms), arena.Const(4.0));
  auto enc = EncodeTiresias(&arena, preds, {{avg, ConstraintSense::kEq, 0.75}});
  ASSERT_TRUE(enc.ok());
  auto sol = SolveIlp(enc->problem, NoRandom());
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->objective, 1.0);
}

TEST_F(TiresiasFixture, InfeasibleComplaintSurfaces) {
  std::vector<PolyId> terms;
  for (int64_t r = 0; r < 4; ++r) terms.push_back(arena.Var(PredVar{0, r, 1}));
  const PolyId count = arena.Add(terms);
  auto enc = EncodeTiresias(&arena, preds, {{count, ConstraintSense::kEq, 9.0}});
  ASSERT_TRUE(enc.ok());
  EXPECT_FALSE(SolveIlp(enc->problem, NoRandom()).ok());
}

TEST_F(TiresiasFixture, RatioWithModelDenominatorUnsupported) {
  const PolyId num = arena.Var(PredVar{0, 0, 1});
  const PolyId den = arena.Add({arena.Var(PredVar{0, 1, 1}), arena.True()});
  const PolyId avg = arena.Div(num, den);
  EXPECT_FALSE(EncodeTiresias(&arena, preds, {{avg, ConstraintSense::kEq, 0.5}}).ok());
}

TEST_F(TiresiasFixture, EmptyComplaintListRejected) {
  EXPECT_FALSE(EncodeTiresias(&arena, preds, {}).ok());
}

TEST_F(TiresiasFixture, ComplaintConstraintsRecordedAndWarmStartFeasible) {
  // count = 3 while current count is 2: the greedy repair must reach a
  // feasible candidate (one flip), which the solver then uses to seed
  // its incumbent.
  std::vector<PolyId> terms;
  for (int64_t r = 0; r < 4; ++r) terms.push_back(arena.Var(PredVar{0, r, 1}));
  const PolyId count = arena.Add(terms);
  auto enc = EncodeTiresias(&arena, preds, {{count, ConstraintSense::kEq, 3.0}});
  ASSERT_TRUE(enc.ok());
  ASSERT_EQ(enc->complaint_constraints.size(), 1u);
  EXPECT_EQ(enc->complaint_constraints[0], enc->coupling_constraint);

  const std::vector<uint8_t> warm = BuildTiresiasWarmStart(*enc);
  ASSERT_EQ(warm.size(), enc->problem.num_vars());
  EXPECT_TRUE(enc->problem.IsFeasible(warm));

  IlpSolveOptions opts = NoRandom();
  opts.warm_start = warm;
  auto sol = SolveIlp(enc->problem, opts);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->warm_start_used);
  EXPECT_DOUBLE_EQ(sol->objective, 1.0);
}

TEST_F(TiresiasFixture, WarmStartEmptyWhenEncodingHasAuxVars) {
  // An AND introduces a Tseitin auxiliary, which the repair cannot
  // assign: the builder must decline rather than hand back a bogus
  // candidate.
  const PolyId both = arena.And(
      {arena.Var(PredVar{0, 1, 1}), arena.Var(PredVar{0, 2, 1})});
  auto enc = EncodeTiresias(&arena, preds, {{both, ConstraintSense::kEq, 0.0}});
  ASSERT_TRUE(enc.ok());
  if (enc->problem.num_vars() == 0) GTEST_SKIP();
  const std::vector<uint8_t> warm = BuildTiresiasWarmStart(*enc);
  if (!warm.empty()) {
    // Acceptable only if the encoding turned out aux-free AND feasible.
    EXPECT_TRUE(enc->problem.IsFeasible(warm));
  }
}

}  // namespace
}  // namespace rain
