#include "gtest/gtest.h"
#include "provenance/prediction_store.h"
#include "relational/catalog.h"
#include "relational/executor.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace rain {
namespace {

using sql::Lex;
using sql::ParseSelect;
using sql::PlanQuery;
using sql::SelectStmt;
using sql::Token;
using sql::TokenKind;

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto toks = Lex("select FROM WhErE");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*toks)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*toks)[2].IsKeyword("WHERE"));
  EXPECT_EQ((*toks)[3].kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersAndStrings) {
  auto toks = Lex("42 3.14 'it''s'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*toks)[0].text, "42");
  EXPECT_EQ((*toks)[1].kind, TokenKind::kFloat);
  EXPECT_EQ((*toks)[2].kind, TokenKind::kString);
  EXPECT_EQ((*toks)[2].text, "it's");
}

TEST(LexerTest, OperatorsIncludingTwoChar) {
  auto toks = Lex("<> != <= >= < > = ( ) , . *");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "<>");
  EXPECT_EQ((*toks)[1].text, "<>");  // != normalizes
  EXPECT_EQ((*toks)[2].text, "<=");
  EXPECT_EQ((*toks)[3].text, ">=");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("SELECT 'oops").ok());
}

TEST(LexerTest, UnexpectedCharFails) { EXPECT_FALSE(Lex("SELECT #").ok()); }

TEST(ParserTest, CountStar) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM R WHERE predict(*) = 1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_TRUE(stmt->items[0].is_aggregate);
  EXPECT_EQ(stmt->items[0].agg_func, AggFunc::kCount);
  EXPECT_EQ(stmt->items[0].expr, nullptr);
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].table, "R");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_TRUE(stmt->where->IsModelDependent());
}

TEST(ParserTest, ModelQualifiedPredict) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM Users U WHERE M.predict(U.*) = 'Churn'");
  ASSERT_TRUE(stmt.ok());
  // The predicate references the alias U via predict.
  EXPECT_EQ(stmt->where->children[0]->predict_alias, "U");
}

TEST(ParserTest, GroupByAndAvg) {
  auto stmt = ParseSelect(
      "SELECT gender, AVG(predict(*)) AS churn FROM Adult GROUP BY gender");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items.size(), 2u);
  EXPECT_FALSE(stmt->items[0].is_aggregate);
  EXPECT_TRUE(stmt->items[1].is_aggregate);
  EXPECT_EQ(stmt->items[1].agg_func, AggFunc::kAvg);
  EXPECT_EQ(stmt->items[1].alias, "churn");
  EXPECT_EQ(stmt->group_by.size(), 1u);
}

TEST(ParserTest, CommaJoinAndExplicitJoin) {
  auto comma = ParseSelect("SELECT * FROM A, B WHERE A.x = B.y");
  ASSERT_TRUE(comma.ok());
  EXPECT_TRUE(comma->select_star);
  EXPECT_EQ(comma->from.size(), 2u);
  EXPECT_EQ(comma->from[1].join_on, nullptr);

  auto join = ParseSelect("SELECT * FROM A JOIN B ON A.x = B.y");
  ASSERT_TRUE(join.ok());
  ASSERT_EQ(join->from.size(), 2u);
  EXPECT_NE(join->from[1].join_on, nullptr);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseSelect("SELECT * FROM T WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  // OR binds loosest: (a=1) OR ((b=2) AND (c=3)).
  EXPECT_EQ(stmt->where->logic, LogicalOp::kOr);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = ParseSelect("SELECT a + b * 2 AS v FROM T");
  ASSERT_TRUE(stmt.ok());
  const ExprPtr& e = stmt->items[0].expr;
  EXPECT_EQ(e->arith, ArithOp::kAdd);
  EXPECT_EQ(e->children[1]->arith, ArithOp::kMul);
}

TEST(ParserTest, LikePredicate) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM Enron WHERE text LIKE '%http%'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind, ExprKind::kLike);
  EXPECT_EQ(stmt->where->like_pattern, "%http%");
}

TEST(ParserTest, RejectsBadSyntax) {
  EXPECT_FALSE(ParseSelect("FROM T").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) FROM T").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM T WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM T trailing garbage (").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM T GROUP BY").ok());
}

/// Planner fixture with two tables, one of them predictable.
class PlannerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Table users(Schema({Field{"id", DataType::kInt64, ""},
                        Field{"city", DataType::kString, ""}}));
    users.AppendRowUnchecked({Value(int64_t{0}), Value(std::string("ny"))});
    users.AppendRowUnchecked({Value(int64_t{1}), Value(std::string("sf"))});
    Matrix f(2, 2, 0.0);
    ASSERT_TRUE(
        catalog_.AddTable("users", std::move(users), Dataset(std::move(f), {0, 1}, 2))
            .ok());
    Table logins(Schema({Field{"uid", DataType::kInt64, ""},
                         Field{"active", DataType::kBool, ""}}));
    logins.AppendRowUnchecked({Value(int64_t{0}), Value(true)});
    logins.AppendRowUnchecked({Value(int64_t{1}), Value(false)});
    ASSERT_TRUE(catalog_.AddTable("logins", std::move(logins)).ok());

    Matrix probs(2, 2);
    probs.SetRow(0, {0.9, 0.1});
    probs.SetRow(1, {0.2, 0.8});
    predictions_.SetPredictions(0, std::move(probs));
  }

  Result<ExecResult> RunSql(const std::string& q, bool debug = false) {
    auto plan = PlanQuery(q, catalog_);
    if (!plan.ok()) return plan.status();
    Executor ex(&catalog_, &predictions_, &arena_);
    ExecOptions opts;
    opts.debug_mode = debug;
    return ex.Run(*plan, opts);
  }

  Catalog catalog_;
  PredictionStore predictions_;
  PolyArena arena_;
};

TEST_F(PlannerFixture, SimpleCount) {
  auto r = RunSql("SELECT COUNT(*) FROM users");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.rows[0][0].AsInt64(), 2);
}

TEST_F(PlannerFixture, PredictStarResolvesSingleTable) {
  auto r = RunSql("SELECT COUNT(*) FROM users WHERE predict(*) = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.rows[0][0].AsInt64(), 1);
}

TEST_F(PlannerFixture, PredictStarAmbiguousWithTwoTables) {
  EXPECT_FALSE(
      RunSql("SELECT COUNT(*) FROM users, logins WHERE predict(*) = 1").ok());
}

TEST_F(PlannerFixture, CommaJoinPushesEquiPredicate) {
  auto r = RunSql(
      "SELECT COUNT(*) FROM users U, logins L WHERE U.id = L.uid AND L.active");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.rows[0][0].AsInt64(), 1);
}

TEST_F(PlannerFixture, ExplicitJoinWithWhere) {
  auto r = RunSql(
      "SELECT COUNT(*) FROM users U JOIN logins L ON U.id = L.uid "
      "WHERE L.active AND M.predict(U.*) = 1");
  ASSERT_TRUE(r.ok());
  // Only user 0 is active, and it is predicted class 0 -> count 0.
  EXPECT_EQ(r->table.rows[0][0].AsInt64(), 0);
}

TEST_F(PlannerFixture, SelectStarProjectsJoin) {
  auto r = RunSql("SELECT * FROM users U, logins L WHERE U.id = L.uid");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.schema.num_fields(), 4u);
  EXPECT_EQ(r->table.num_rows(), 2u);
}

TEST_F(PlannerFixture, ProjectionWithAliases) {
  auto r = RunSql("SELECT id AS uid, city FROM users");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.schema.field(0).name, "uid");
  EXPECT_EQ(r->table.schema.field(1).name, "city");
}

TEST_F(PlannerFixture, GroupBySql) {
  auto r = RunSql("SELECT city, COUNT(*) AS n FROM users GROUP BY city");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 2u);
}

TEST_F(PlannerFixture, NonGroupKeySelectItemRejected) {
  EXPECT_FALSE(RunSql("SELECT id, COUNT(*) FROM users GROUP BY city").ok());
}

TEST_F(PlannerFixture, UnknownTableRejected) {
  EXPECT_FALSE(RunSql("SELECT COUNT(*) FROM missing").ok());
}

TEST_F(PlannerFixture, UnknownColumnRejected) {
  EXPECT_FALSE(RunSql("SELECT COUNT(*) FROM users WHERE salary > 3").ok());
}

TEST_F(PlannerFixture, DebugModeCapturesPolyViaSql) {
  auto r = RunSql("SELECT COUNT(*) AS cnt FROM users WHERE predict(*) = 1", true);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->is_aggregate);
  ASSERT_EQ(r->agg_polys.size(), 1u);
  const Vec relaxed = predictions_.RelaxedAssignment(arena_);
  EXPECT_NEAR(arena_.Evaluate(r->agg_polys[0][0], relaxed), 0.1 + 0.8, 1e-12);
}

TEST_F(PlannerFixture, PredictionJoinSql) {
  auto r = RunSql(
      "SELECT COUNT(*) FROM users U, users2 V WHERE predict(U.*) = predict(V.*)");
  // users2 does not exist.
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace rain
