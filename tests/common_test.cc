#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"

namespace rain {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesRoundTripNames) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::AlreadyExists("x").ToString(), "AlreadyExists: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OutOfRange: x");
  EXPECT_EQ(Status::Unimplemented("x").ToString(), "Unimplemented: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
  EXPECT_EQ(Status::ResourceExhausted("x").ToString(), "ResourceExhausted: x");
  EXPECT_EQ(Status::ParseError("x").ToString(), "ParseError: x");
  EXPECT_EQ(Status::TypeError("x").ToString(), "TypeError: x");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  RAIN_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok = ParsePositive(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 4);

  Result<int> err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntUnbiasedSmallRange) {
  Rng rng(9);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BetaMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Beta(6.0, 2.0);
  EXPECT_NEAR(sum / n, 0.75, 0.01);  // alpha / (alpha + beta)
}

TEST(RngTest, BernoulliRate) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.13);
  EXPECT_NEAR(hits / 20000.0, 0.13, 0.01);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  auto picks = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(picks.size(), 30u);
  std::set<size_t> uniq(picks.begin(), picks.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t p : picks) EXPECT_LT(p, 100u);
}

TEST(RngTest, SampleMoreThanNClamps) {
  Rng rng(19);
  auto picks = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(picks.size(), 5u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("SeLeCt * FROM T1"), "select * from t1");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "llo"));
  EXPECT_FALSE(EndsWith("hello", "hell"));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

struct LikeCase {
  const char* text;
  const char* pattern;
  bool expected;
};

class LikeMatchTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(LikeMatch(c.text, c.pattern), c.expected)
      << "text='" << c.text << "' pattern='" << c.pattern << "'";
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, LikeMatchTest,
    ::testing::Values(
        LikeCase{"hello", "hello", true}, LikeCase{"hello", "h%", true},
        LikeCase{"hello", "%o", true}, LikeCase{"hello", "%ell%", true},
        LikeCase{"hello", "h_llo", true}, LikeCase{"hello", "h__lo", true},
        LikeCase{"hello", "h__l", false}, LikeCase{"hello", "hell_o", false},
        LikeCase{"hello", "%", true}, LikeCase{"", "%", true},
        LikeCase{"", "_", false}, LikeCase{"abc", "a%b%c", true},
        LikeCase{"abc", "%a%b%c%", true}, LikeCase{"axxbyyc", "a%b%c", true},
        LikeCase{"acb", "a%b%c", false},
        LikeCase{"tok1 http tok2", "%http%", true},
        LikeCase{"tok1 htt tok2", "%http%", false},
        LikeCase{"deal", "%deal%", true}, LikeCase{"deadline", "%deal%", false},
        LikeCase{"aaa", "a%a", true}, LikeCase{"ab", "ab%", true},
        LikeCase{"ab", "%%ab", true}, LikeCase{"mississippi", "%ss%ss%", true},
        LikeCase{"mississippi", "%ss%ss%ss%", false}));

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", "x"), "x");
}

TEST(TablePrinterTest, AlignedTextAndCsv) {
  TablePrinter t({"method", "auccr"});
  t.AddRow({"holistic", TablePrinter::Num(0.991, 3)});
  t.AddRow({"loss", TablePrinter::Num(0.35, 3)});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("| method   | auccr |"), std::string::npos);
  EXPECT_NE(text.find("| holistic | 0.991 |"), std::string::npos);
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("method,auccr\n"), std::string::npos);
  EXPECT_NE(csv.find("holistic,0.991\n"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(RngTest, GaussianMatchesBoxMullerRecomputation) {
  // Regression for the C++17 port of rng.cc: Gaussian() must use pi (the
  // seed code pulled it from C++20 <numbers>). Recompute Box-Muller by hand
  // from the same uniform stream and require exact agreement.
  Rng gen(99);
  const double g = gen.Gaussian();
  Rng ref(99);
  const double u1 = ref.Uniform();
  const double u2 = ref.Uniform();
  constexpr double kPi = 3.14159265358979323846;
  const double expected =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
  EXPECT_DOUBLE_EQ(g, expected);
}

TEST(SplitSeedTest, DeterministicAndStreamSeparated) {
  EXPECT_EQ(SplitSeed(42, 0), SplitSeed(42, 0));
  std::set<uint64_t> seeds;
  for (uint64_t stream = 0; stream < 64; ++stream) {
    seeds.insert(SplitSeed(42, stream));
  }
  EXPECT_EQ(seeds.size(), 64u) << "streams must not collide";
  EXPECT_NE(SplitSeed(1, 0), SplitSeed(2, 0));
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      if (count.fetch_add(1) + 1 == 100) {
        // Notify under the lock: the waiter cannot re-check its predicate
        // (and destroy cv on test exit) until this worker is out of
        // notify_one — keeps ThreadSanitizer's destruction race away.
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return count.load() == 100; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelForTest, MatchesSequentialForAnyParallelism) {
  const size_t n = 10000;
  std::vector<double> expected(n);
  for (size_t i = 0; i < n; ++i) expected[i] = static_cast<double>(i) * 0.5;
  for (int par : {1, 2, 4, 8, 13}) {
    std::vector<double> out(n, 0.0);
    ParallelFor(par, n, [&out](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) out[i] = static_cast<double>(i) * 0.5;
    });
    EXPECT_EQ(out, expected) << "parallelism=" << par;
  }
}

TEST(ParallelForTest, ChunksCoverRangeExactlyOnce) {
  const size_t n = 103;  // not divisible by the chunk count
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h = 0;
  ParallelFor(7, n, [&hits](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelForTest, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(4, 1000,
                  [](size_t begin, size_t, size_t) {
                    if (begin >= 250) throw std::runtime_error("chunk failed");
                  }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> ok{0};
  ParallelForEach(4, 64, [&ok](size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 64);
}

TEST(ParallelForTest, NestedParallelSectionsDoNotDeadlock) {
  std::atomic<int> total{0};
  ParallelFor(4, 8, [&total](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      ParallelForEach(4, 16, [&total](size_t) { total.fetch_add(1); });
    }
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelChunkCountTest, PureFunctionOfKnobs) {
  // No grain (<= 1): min(parallelism, n), parallelism clamped to >= 1.
  EXPECT_EQ(ParallelChunkCount(4, 100, 0), 4u);
  EXPECT_EQ(ParallelChunkCount(4, 100, 1), 4u);
  EXPECT_EQ(ParallelChunkCount(8, 3, 1), 3u);
  EXPECT_EQ(ParallelChunkCount(-2, 100, 1), 1u);
  EXPECT_EQ(ParallelChunkCount(4, 0, 1), 0u);
  // Grain caps the chunk count at n / min_grain (floor), never below 1.
  EXPECT_EQ(ParallelChunkCount(8, 1000, 100), 8u);   // 1000/100 = 10 >= 8
  EXPECT_EQ(ParallelChunkCount(8, 1000, 250), 4u);   // 1000/250 = 4
  EXPECT_EQ(ParallelChunkCount(8, 1000, 300), 3u);   // floor(1000/300) = 3
  EXPECT_EQ(ParallelChunkCount(8, 1000, 1000), 1u);
  EXPECT_EQ(ParallelChunkCount(8, 99, 100), 1u);     // n < grain: one chunk
  EXPECT_EQ(ParallelChunkCount(8, 100000, 5000), 8u);
}

TEST(ParallelForGrainTest, ChunkedMatchesSequentialAtEveryGrain) {
  const size_t n = 10007;  // prime: uneven chunk boundaries at every layout
  std::vector<double> expected(n);
  for (size_t i = 0; i < n; ++i) expected[i] = static_cast<double>(i) * 1.25;
  for (int par : {2, 8}) {
    for (size_t grain : {size_t{1}, size_t{2}, size_t{64}, size_t{1000},
                         size_t{5000}, size_t{100000}}) {
      std::vector<double> out(n, 0.0);
      ParallelFor(par, n, grain, [&out](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i)
          out[i] = static_cast<double>(i) * 1.25;
      });
      EXPECT_EQ(out, expected) << "parallelism=" << par << " grain=" << grain;
    }
  }
}

TEST(ParallelForGrainTest, EveryChunkMeetsTheGrainWhenSplit) {
  const size_t n = 1003;
  for (size_t grain : {size_t{2}, size_t{100}, size_t{400}}) {
    std::mutex mu;
    std::vector<size_t> sizes;
    ParallelFor(8, n, grain, [&](size_t begin, size_t end, size_t) {
      std::lock_guard<std::mutex> lock(mu);
      sizes.push_back(end - begin);
    });
    EXPECT_EQ(sizes.size(), ParallelChunkCount(8, n, grain));
    if (sizes.size() > 1) {
      for (size_t s : sizes) EXPECT_GE(s, grain) << "grain=" << grain;
    }
  }
}

TEST(ParallelForGrainTest, DefaultOverloadKeepsLegacyLayout) {
  // The grain knob defaults to 1 everywhere: the two overloads must
  // produce the identical chunk layout, or recorded bitwise baselines of
  // chunk-ordered reductions would shift under callers' feet.
  const size_t n = 103;
  auto layout = [n](bool with_grain) {
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    auto body = [&](size_t begin, size_t end, size_t chunk) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(chunk, begin);
      (void)end;
    };
    if (with_grain) {
      ParallelFor(7, n, size_t{1}, body);
    } else {
      ParallelFor(7, n, body);
    }
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  EXPECT_EQ(layout(true), layout(false));
}

TEST(ParallelSumGrainTest, DeterministicPerGrainAndCloseToSequential) {
  const size_t n = 20000;
  std::vector<double> v(n);
  Rng rng(11);
  for (double& x : v) x = rng.Uniform(-1.0, 1.0);
  auto chunk_sum = [&v](size_t begin, size_t end) {
    double acc = 0.0;
    for (size_t i = begin; i < end; ++i) acc += v[i];
    return acc;
  };
  const double seq = ParallelSum(1, n, chunk_sum);
  for (size_t grain : {size_t{1}, size_t{128}, size_t{4096}, size_t{30000}}) {
    const double a = ParallelSum(8, n, grain, chunk_sum);
    const double b = ParallelSum(8, n, grain, chunk_sum);
    EXPECT_EQ(a, b) << "same (parallelism, grain) must reproduce bitwise";
    EXPECT_NEAR(a, seq, 1e-9) << "grain=" << grain;
  }
  // Grain big enough to collapse to one chunk is bitwise sequential.
  EXPECT_EQ(ParallelSum(8, n, size_t{30000}, chunk_sum), seq);
  // Default overload == explicit grain 1 (same partial grouping).
  EXPECT_EQ(ParallelSum(8, n, size_t{1}, chunk_sum), ParallelSum(8, n, chunk_sum));
}

TEST(ParallelForCancellableGrainTest, UncancelledRunsEverythingOnce) {
  const size_t n = 501;
  CancellationToken cancel;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h = 0;
  EXPECT_TRUE(ParallelForCancellable(
      8, n, size_t{64}, &cancel, [&hits](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      }));
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  cancel.Cancel();
  EXPECT_FALSE(ParallelForCancellable(8, n, size_t{64}, &cancel,
                                      [](size_t, size_t, size_t) {}));
}

TEST(ParallelSumTest, DeterministicAndCloseToSequential) {
  const size_t n = 20000;
  std::vector<double> v(n);
  Rng rng(5);
  for (double& x : v) x = rng.Uniform(-1.0, 1.0);
  auto chunk_sum = [&v](size_t begin, size_t end) {
    double acc = 0.0;
    for (size_t i = begin; i < end; ++i) acc += v[i];
    return acc;
  };
  const double seq = ParallelSum(1, n, chunk_sum);
  EXPECT_DOUBLE_EQ(seq, std::accumulate(v.begin(), v.end(), 0.0));
  for (int par : {2, 4, 8}) {
    const double a = ParallelSum(par, n, chunk_sum);
    const double b = ParallelSum(par, n, chunk_sum);
    EXPECT_EQ(a, b) << "same knob must reproduce bitwise, parallelism=" << par;
    EXPECT_NEAR(a, seq, 1e-9);
  }
}

TEST(ParallelForSeededTest, ReproducibleForFixedSeedAndParallelism) {
  const size_t n = 1000;
  auto draw = [n](int par, uint64_t seed) {
    std::vector<double> out(n, 0.0);
    ParallelForSeeded(par, n, seed,
                      [&out](size_t begin, size_t end, size_t, Rng& rng) {
                        for (size_t i = begin; i < end; ++i) out[i] = rng.Uniform();
                      });
    return out;
  };
  EXPECT_EQ(draw(4, 7), draw(4, 7)) << "identical (seed, parallelism) must reproduce";
  EXPECT_NE(draw(4, 7), draw(4, 8)) << "different seeds must differ";
  EXPECT_NE(draw(2, 7), draw(4, 7))
      << "chunk layout is part of the determinism contract";
  // Chunk c draws from Rng(SplitSeed(seed, c)): verify against a manual
  // recomputation of the first chunk.
  std::vector<double> out = draw(4, 7);
  Rng chunk0(SplitSeed(7, 0));
  for (size_t i = 0; i < n / 4; ++i) EXPECT_EQ(out[i], chunk0.Uniform());
}

TEST(StatusCodeNameTest, RoundTripsEveryCode) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kResourceExhausted, StatusCode::kParseError,
        StatusCode::kTypeError, StatusCode::kCancelled}) {
    EXPECT_EQ(StatusCodeFromName(StatusCodeName(code)), code);
  }
  // Unknown names take the fallback — the wire must never invent codes.
  EXPECT_EQ(StatusCodeFromName("NoSuchCode"), StatusCode::kInternal);
  EXPECT_EQ(StatusCodeFromName("NoSuchCode", StatusCode::kNotFound),
            StatusCode::kNotFound);
}

TEST(AdmissionControllerTest, AcquireReleaseAndRefusal) {
  AdmissionController admission(4);
  EXPECT_EQ(admission.capacity(), 4);
  EXPECT_TRUE(admission.TryAcquire(3));
  EXPECT_EQ(admission.acquired(), 3);
  EXPECT_FALSE(admission.TryAcquire(2)) << "3 + 2 > 4 must refuse";
  EXPECT_TRUE(admission.TryAcquire(1));
  EXPECT_FALSE(admission.TryAcquire(1)) << "full";
  admission.Release(3);
  EXPECT_TRUE(admission.TryAcquire(2));
  admission.Release(2);
  admission.Release(1);
  EXPECT_EQ(admission.acquired(), 0);
}

TEST(AdmissionControllerTest, SingleOverCapacityRequestIsRefused) {
  AdmissionController admission(4);
  // A request larger than TOTAL capacity can never be admitted; refusing
  // it immediately (instead of deadlocking a would-be waiter) is part of
  // the admission contract.
  EXPECT_FALSE(admission.TryAcquire(5));
  EXPECT_EQ(admission.acquired(), 0);
}

TEST(AdmissionControllerTest, CapacityClampedToOne) {
  AdmissionController admission(0);
  EXPECT_EQ(admission.capacity(), 1);
  EXPECT_TRUE(admission.TryAcquire(1));
}

TEST(TablePrinterTest, CsvEscapesCommasAndQuotes) {
  TablePrinter t({"a"});
  t.AddRow({"x,y"});
  t.AddRow({"he said \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

}  // namespace
}  // namespace rain
