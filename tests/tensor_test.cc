#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "tensor/matrix.h"
#include "tensor/vector_ops.h"

namespace rain {
namespace {

TEST(VectorOpsTest, Zeros) {
  Vec z = vec::Zeros(4);
  EXPECT_EQ(z.size(), 4u);
  for (double v : z) EXPECT_EQ(v, 0.0);
}

TEST(VectorOpsTest, Dot) {
  Vec x{1.0, 2.0, 3.0};
  Vec y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(vec::Dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOpsTest, Axpy) {
  Vec x{1.0, 2.0};
  Vec y{10.0, 20.0};
  vec::Axpy(3.0, x, &y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(VectorOpsTest, ScaleNormAddSub) {
  Vec x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(vec::Norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(vec::NormSq(x), 25.0);
  vec::Scale(2.0, &x);
  EXPECT_DOUBLE_EQ(x[0], 6.0);
  Vec y{1.0, 1.0};
  Vec s = vec::Sub(x, y);
  EXPECT_DOUBLE_EQ(s[0], 5.0);
  Vec a = vec::Add(x, y);
  EXPECT_DOUBLE_EQ(a[1], 9.0);
  EXPECT_DOUBLE_EQ(vec::MaxAbsDiff(x, y), 7.0);
}

TEST(MatrixTest, RowAccessAndSetRow) {
  Matrix m(2, 3);
  m.SetRow(0, {1.0, 2.0, 3.0});
  m.SetRow(1, {4.0, 5.0, 6.0});
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6.0);
  Vec r = m.RowVec(0);
  EXPECT_EQ(r, (Vec{1.0, 2.0, 3.0}));
  m.Row(1)[0] = 7.0;
  EXPECT_DOUBLE_EQ(m.At(1, 0), 7.0);
}

TEST(MatrixTest, MatVecAndTranspose) {
  Matrix m(2, 3);
  m.SetRow(0, {1.0, 0.0, 2.0});
  m.SetRow(1, {0.0, 3.0, 1.0});
  Vec x{1.0, 2.0, 3.0};
  Vec mx = m.MatVec(x);
  ASSERT_EQ(mx.size(), 2u);
  EXPECT_DOUBLE_EQ(mx[0], 7.0);
  EXPECT_DOUBLE_EQ(mx[1], 9.0);

  Vec y{1.0, 2.0};
  Vec mty = m.MatTVec(y);
  ASSERT_EQ(mty.size(), 3u);
  EXPECT_DOUBLE_EQ(mty[0], 1.0);
  EXPECT_DOUBLE_EQ(mty[1], 6.0);
  EXPECT_DOUBLE_EQ(mty[2], 4.0);
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(3, 2, 1.5);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 1.5);
  }
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m.At(r, c) = rng.Gaussian();
  }
  return m;
}

TEST(VectorOpsTest, ParallelReductionsMatchSequential) {
  const size_t n = 50000;  // above kParallelGrain so the parallel path runs
  Vec x(n), y(n);
  Rng rng(23);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-1.0, 1.0);
    y[i] = rng.Uniform(-1.0, 1.0);
  }
  const double dot_seq = vec::Dot(x, y);
  const double nsq_seq = vec::NormSq(x);
  for (int par : {2, 4, 8}) {
    EXPECT_NEAR(vec::Dot(x, y, par), dot_seq, 1e-9 * n);
    EXPECT_NEAR(vec::NormSq(x, par), nsq_seq, 1e-9 * n);
    EXPECT_EQ(vec::Dot(x, y, par), vec::Dot(x, y, par)) << "must be deterministic";
  }
  // Parallel Axpy writes disjoint ranges: bitwise identical.
  Vec seq = y;
  vec::Axpy(0.25, x, &seq);
  Vec par_out = y;
  vec::Axpy(0.25, x, &par_out, 4);
  EXPECT_EQ(par_out, seq);
}

TEST(MatrixTest, ParallelMatVecBitwiseIdentical) {
  Matrix m = RandomMatrix(300, 40, 29);
  Vec x(40);
  Rng rng(31);
  for (double& v : x) v = rng.Gaussian();
  const Vec seq = m.MatVec(x);
  for (int par : {2, 4, 8}) {
    EXPECT_EQ(m.MatVec(x, par), seq) << "parallelism=" << par;
  }
}

TEST(MatrixTest, ParallelMatTVecMatchesSequential) {
  Matrix m = RandomMatrix(300, 40, 37);
  Vec y(300);
  Rng rng(41);
  for (double& v : y) v = rng.Gaussian();
  const Vec seq = m.MatTVec(y);
  for (int par : {2, 4, 8}) {
    const Vec out = m.MatTVec(y, par);
    ASSERT_EQ(out.size(), seq.size());
    for (size_t c = 0; c < out.size(); ++c) EXPECT_NEAR(out[c], seq[c], 1e-10);
  }
}

TEST(MatrixTest, MatMulMatchesNaiveAndIsParallelSafe) {
  Matrix a = RandomMatrix(37, 53, 43);
  Matrix b = RandomMatrix(53, 29, 47);
  Matrix naive(37, 29);
  for (size_t r = 0; r < 37; ++r) {
    for (size_t c = 0; c < 29; ++c) {
      double acc = 0.0;
      for (size_t k = 0; k < 53; ++k) acc += a.At(r, k) * b.At(k, c);
      naive.At(r, c) = acc;
    }
  }
  const Matrix seq = MatMul(a, b);
  for (size_t r = 0; r < 37; ++r) {
    for (size_t c = 0; c < 29; ++c) {
      EXPECT_NEAR(seq.At(r, c), naive.At(r, c), 1e-10);
    }
  }
  for (int par : {2, 4, 8}) {
    const Matrix out = MatMul(a, b, par);
    // Row partitions write disjoint output blocks with identical per-row
    // arithmetic: bitwise equal to the single-chunk result.
    EXPECT_EQ(out.data(), seq.data()) << "parallelism=" << par;
  }
}

// ------------------------------------------------- SIMD dispatch (vec)

/// RAII guard restoring the SIMD force-scalar hook.
class ForceScalarGuard {
 public:
  explicit ForceScalarGuard(bool force) : prev_(vec::simd::ForceScalar(force)) {}
  ~ForceScalarGuard() { vec::simd::ForceScalar(prev_); }

 private:
  bool prev_;
};

TEST(SimdTest, BackendReportsAndForceScalarWorks) {
  const std::string backend = vec::simd::Backend();
  EXPECT_TRUE(backend == "avx512" || backend == "avx2-fma" ||
              backend == "scalar")
      << backend;
  ForceScalarGuard guard(true);
  EXPECT_STREQ(vec::simd::Backend(), "scalar");
}

TEST(SimdTest, ForceBackendRoundTrip) {
  const std::string dispatched = vec::simd::Backend();
  // "scalar" is always available; success means the cap is active.
  EXPECT_TRUE(vec::simd::ForceBackend("scalar"));
  EXPECT_STREQ(vec::simd::Backend(), "scalar");
  // A higher tier succeeds only when the CPU has it; either way the
  // reported backend must be a real tier, never the raw request.
  const bool has_avx512 = vec::simd::ForceBackend("avx512");
  if (has_avx512) {
    EXPECT_STREQ(vec::simd::Backend(), "avx512");
  }
  // Unknown names clear the cap and report failure.
  EXPECT_FALSE(vec::simd::ForceBackend("sse9000"));
  EXPECT_EQ(vec::simd::Backend(), dispatched);
  // nullptr clears the cap back to runtime dispatch.
  vec::simd::ForceBackend("scalar");
  vec::simd::ForceBackend(nullptr);
  EXPECT_EQ(vec::simd::Backend(), dispatched);
  // ForceScalar trumps any cap.
  vec::simd::ForceBackend("avx2");
  ForceScalarGuard guard(true);
  EXPECT_STREQ(vec::simd::Backend(), "scalar");
  vec::simd::ForceBackend(nullptr);
}

TEST(SimdTest, RainSimdEnvRoundTrip) {
  const std::string dispatched = vec::simd::Backend();
  ASSERT_EQ(setenv("RAIN_SIMD", "scalar", 1), 0);
  vec::simd::ReloadBackendEnv();
  EXPECT_STREQ(vec::simd::Backend(), "scalar");
  // An env cap above the CPU's best tier clamps down instead of lying.
  ASSERT_EQ(setenv("RAIN_SIMD", "avx512", 1), 0);
  vec::simd::ReloadBackendEnv();
  const std::string capped = vec::simd::Backend();
  EXPECT_TRUE(capped == "avx512" || capped == "avx2-fma" ||
              capped == "scalar")
      << capped;
  // Unrecognized values fall back to runtime dispatch.
  ASSERT_EQ(setenv("RAIN_SIMD", "definitely-not-a-tier", 1), 0);
  vec::simd::ReloadBackendEnv();
  EXPECT_EQ(vec::simd::Backend(), dispatched);
  ASSERT_EQ(unsetenv("RAIN_SIMD"), 0);
  vec::simd::ReloadBackendEnv();
  EXPECT_EQ(vec::simd::Backend(), dispatched);
}

TEST(SimdTest, ScalarFallbackBitwiseMatchesReferenceLoops) {
  // The dispatch's scalar path must be the exact pre-SIMD loops: compare
  // bit for bit against inline reference folds, across sizes that cover
  // every vector-width tail.
  ForceScalarGuard guard(true);
  for (size_t n : {0u, 1u, 3u, 4u, 7u, 128u, 1001u}) {
    Vec x(n), y(n);
    Rng rng(100 + n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(-2.0, 2.0);
      y[i] = rng.Uniform(-2.0, 2.0);
    }
    double ref_dot = 0.0;
    for (size_t i = 0; i < n; ++i) ref_dot += x[i] * y[i];
    EXPECT_EQ(vec::Dot(x, y), ref_dot) << "n=" << n;

    Vec ref_axpy = y;
    for (size_t i = 0; i < n; ++i) ref_axpy[i] += 0.37 * x[i];
    Vec got = y;
    vec::Axpy(0.37, x, &got);
    EXPECT_EQ(got, ref_axpy) << "n=" << n;
  }
}

TEST(SimdTest, SimdPathDeterministicAndNearScalar) {
  if (std::string(vec::simd::Backend()) == "scalar") {
    GTEST_SKIP() << "no SIMD tier on this host";
  }
  const size_t n = 4099;  // odd: exercises the vector tail
  Vec x(n), y(n);
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-1.0, 1.0);
    y[i] = rng.Uniform(-1.0, 1.0);
  }
  const double simd1 = vec::Dot(x, y);
  const double simd2 = vec::Dot(x, y);
  EXPECT_EQ(simd1, simd2) << "SIMD dot must be deterministic";
  double scalar;
  {
    ForceScalarGuard guard(true);
    scalar = vec::Dot(x, y);
  }
  EXPECT_NEAR(simd1, scalar, 1e-12 * n) << "lane regrouping only";
}

TEST(SimdTest, AxpyChunkInvariantUnderSimd) {
  // The chunked Axpy overload must stay bitwise-identical to sequential
  // on the SIMD path too: every element is one fused rounding regardless
  // of where a chunk boundary (and hence a register/tail boundary) falls.
  const size_t n = vec::kParallelGrain * 3 + 5;  // force the parallel path
  Vec x(n), y(n);
  Rng rng(8);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-1.0, 1.0);
    y[i] = rng.Uniform(-1.0, 1.0);
  }
  Vec seq = y;
  vec::Axpy(0.25, x, &seq);
  for (int par : {2, 3, 7, 8}) {
    Vec par_out = y;
    vec::Axpy(0.25, x, &par_out, par);
    EXPECT_EQ(par_out, seq) << "parallelism=" << par;
  }
}

// --------------------------------------- kernel determinism contracts

/// Runs `fn` under every backend tier this CPU supports (always at least
/// "scalar"), restoring runtime dispatch afterwards.
template <typename Fn>
void ForEachTier(Fn&& fn) {
  for (const char* tier : {"scalar", "avx2", "avx512"}) {
    if (!vec::simd::ForceBackend(tier)) continue;
    fn(vec::simd::Backend());
  }
  vec::simd::ForceBackend(nullptr);
}

Vec RandomVecT(size_t n, uint64_t seed) {
  Rng rng(seed);
  Vec v(n);
  for (double& x : v) x = rng.Uniform(-2.0, 2.0);
  return v;
}

bool SameBits(const Vec& a, const Vec& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(SimdTest, MulAdd4BitwiseEqualsFourMulAddsOnEveryTier) {
  const size_t n = 1003;  // odd: covers the 256- and 512-bit tails
  const Vec b0 = RandomVecT(n, 60), b1 = RandomVecT(n, 61),
            b2 = RandomVecT(n, 62), b3 = RandomVecT(n, 63);
  const Vec y0 = RandomVecT(n, 64);
  const double coef[4] = {1.7, -0.4, 0.0, 3.1};
  Vec ref = y0;  // scalar four-statement reference
  {
    ForceScalarGuard guard(true);
    vec::simd::MulAdd4(coef, b0.data(), b1.data(), b2.data(), b3.data(),
                       ref.data(), n);
  }
  ForEachTier([&](const char* tier) {
    Vec got = y0;
    vec::simd::MulAdd4(coef, b0.data(), b1.data(), b2.data(), b3.data(),
                       got.data(), n);
    EXPECT_TRUE(SameBits(got, ref)) << tier;
    Vec seq = y0;
    const double* bs[4] = {b0.data(), b1.data(), b2.data(), b3.data()};
    for (int j = 0; j < 4; ++j) vec::simd::MulAdd(coef[j], bs[j], seq.data(), n);
    EXPECT_TRUE(SameBits(seq, ref)) << tier << " vs 4x MulAdd";
  });
}

TEST(SimdTest, MulGatherScatterAxpyBitwiseOnEveryTier) {
  const size_t n = 517;
  const Vec x = RandomVecT(n, 65), y = RandomVecT(n, 66);
  std::vector<int32_t> idx(n);
  Rng rng(67);
  for (size_t i = 0; i < n; ++i) {
    idx[i] = static_cast<int32_t>(rng.UniformInt(n));  // duplicates likely
  }
  Vec mul_ref(n), gather_ref(n), scatter_ref;
  {
    ForceScalarGuard guard(true);
    vec::simd::Mul(x.data(), y.data(), mul_ref.data(), n);
    vec::simd::Gather(x.data(), idx.data(), gather_ref.data(), n);
    scatter_ref = y;
    vec::simd::ScatterAxpy(0.81, x.data(), idx.data(), scatter_ref.data(), n);
  }
  ForEachTier([&](const char* tier) {
    Vec mul_got(n), gather_got(n), scatter_got = y;
    vec::simd::Mul(x.data(), y.data(), mul_got.data(), n);
    vec::simd::Gather(x.data(), idx.data(), gather_got.data(), n);
    vec::simd::ScatterAxpy(0.81, x.data(), idx.data(), scatter_got.data(), n);
    EXPECT_TRUE(SameBits(mul_got, mul_ref)) << tier;
    EXPECT_TRUE(SameBits(gather_got, gather_ref)) << tier;
    EXPECT_TRUE(SameBits(scatter_got, scatter_ref)) << tier;
  });
}

TEST(SimdTest, GemmPackedBitwiseMatchesGemmOnEveryTier) {
  // Sizes straddle the packing panel boundaries (kc=192, nc=256) and the
  // 4-row register tile; ~25% exact zeros exercise the zero-skip path in
  // both kernels.
  for (const size_t m : {1u, 5u, 64u}) {
    for (const size_t k : {3u, 200u}) {
      for (const size_t n : {1u, 7u, 300u}) {
        Vec a = RandomVecT(m * k, 70 + m + k);
        Rng rng(71 + n);
        for (double& v : a) {
          if (rng.UniformInt(4) == 0) v = 0.0;
        }
        const Vec b = RandomVecT(k * n, 72 + n);
        Vec ref(m * n, 0.25);
        {
          ForceScalarGuard guard(true);
          vec::simd::Gemm(a.data(), m, k, b.data(), n, ref.data());
        }
        ForEachTier([&](const char* tier) {
          Vec unpacked(m * n, 0.25), packed(m * n, 0.25);
          vec::simd::Gemm(a.data(), m, k, b.data(), n, unpacked.data());
          vec::simd::GemmPacked(a.data(), m, k, b.data(), n, packed.data());
          EXPECT_TRUE(SameBits(unpacked, ref))
              << tier << " m=" << m << " k=" << k << " n=" << n;
          EXPECT_TRUE(SameBits(packed, ref))
              << tier << " m=" << m << " k=" << k << " n=" << n;
        });
      }
    }
  }
}

TEST(MatrixTest, MatMulBitwiseAcrossWorkersAndBackends) {
  // Matrix::MatMul routes through GemmPacked; the product must be one
  // bit pattern across 1/2/8 workers and every backend tier (zeros
  // included — the zero-skip must not depend on the row partition).
  Matrix a = RandomMatrix(61, 83, 81);
  {
    Rng rng(82);
    for (size_t r = 0; r < 61; ++r) {
      for (size_t c = 0; c < 83; ++c) {
        if (rng.UniformInt(5) == 0) a.At(r, c) = 0.0;
      }
    }
  }
  Matrix b = RandomMatrix(83, 59, 83);
  const Matrix ref = MatMul(a, b, 1);
  ForEachTier([&](const char* tier) {
    for (int par : {1, 2, 8}) {
      const Matrix out = MatMul(a, b, par);
      EXPECT_TRUE(SameBits(out.data(), ref.data()))
          << tier << " parallelism=" << par;
    }
  });
  ForceScalarGuard guard(true);
  const Matrix scalar = MatMul(a, b, 4);
  EXPECT_TRUE(SameBits(scalar.data(), ref.data()));
}

TEST(SimdTest, GemmNTBitwiseEqualsPerRowDot) {
  // GemmNT's contract: every output element IS the Dot kernel (this is
  // what lets the model HVPs batch projections without changing bits).
  const size_t m = 19, n = 11, k = 157, lda = 160, ldb = 163;
  const Vec a = RandomVecT(m * lda, 75), b = RandomVecT(n * ldb, 76);
  ForEachTier([&](const char* tier) {
    Vec out(m * n);
    vec::simd::GemmNT(a.data(), m, lda, b.data(), n, ldb, k, out.data(), n);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        EXPECT_EQ(out[i * n + j],
                  vec::simd::Dot(a.data() + i * lda, b.data() + j * ldb, k))
            << tier << " i=" << i << " j=" << j;
      }
    }
  });
}

TEST(SimdTest, GatherKernelsBitwiseAtCutoffBoundary) {
  // kGatherSimdCutoff is a pure performance knob: for every n around the
  // boundary, the SIMD gathers and the shaped scalar loop must produce
  // the same bits (otherwise the cutoff value would leak into results).
  const size_t kMax = vec::kGatherSimdCutoff + 3;
  const Vec v = RandomVecT(4 * kMax, 77);
  Vec probs = v;
  for (double& p : probs) p = 0.5 + 0.4 * std::tanh(p);
  const Vec w = RandomVecT(kMax, 78);
  std::vector<int32_t> idx(kMax);
  Rng rng(79);
  for (size_t i = 0; i < kMax; ++i) {
    idx[i] = static_cast<int32_t>(rng.UniformInt(4 * kMax));
  }
  for (size_t n = vec::kGatherSimdCutoff - 3; n <= kMax; ++n) {
    double sum_ref, prod_ref, one_minus_ref, dot_ref;
    {
      ForceScalarGuard guard(true);
      sum_ref = vec::simd::GatherSum(probs.data(), idx.data(), n);
      prod_ref = vec::simd::GatherProd(probs.data(), idx.data(), n);
      one_minus_ref = vec::simd::GatherProdOneMinus(probs.data(), idx.data(), n);
      dot_ref = vec::simd::GatherDot(probs.data(), idx.data(), w.data(), n);
    }
    ForEachTier([&](const char* tier) {
      EXPECT_EQ(vec::simd::GatherSum(probs.data(), idx.data(), n), sum_ref)
          << tier << " n=" << n;
      EXPECT_EQ(vec::simd::GatherProd(probs.data(), idx.data(), n), prod_ref)
          << tier << " n=" << n;
      EXPECT_EQ(vec::simd::GatherProdOneMinus(probs.data(), idx.data(), n),
                one_minus_ref)
          << tier << " n=" << n;
      EXPECT_EQ(vec::simd::GatherDot(probs.data(), idx.data(), w.data(), n),
                dot_ref)
          << tier << " n=" << n;
    });
  }
}

TEST(SimdTest, PrefixSuffixProductsExactRunningProducts) {
  const size_t k = 17;
  const Vec c = RandomVecT(k, 80);
  Vec pre(k + 1), suf(k + 1);
  vec::simd::PrefixSuffixProducts(c.data(), k, pre.data(), suf.data());
  EXPECT_EQ(pre[0], 1.0);
  EXPECT_EQ(suf[k], 1.0);
  for (size_t j = 0; j < k; ++j) {
    EXPECT_EQ(pre[j + 1], pre[j] * c[j]) << j;
    EXPECT_EQ(suf[j], suf[j + 1] * c[j]) << j;
  }
}

}  // namespace
}  // namespace rain
