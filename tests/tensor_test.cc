#include <cmath>

#include "gtest/gtest.h"
#include "tensor/matrix.h"
#include "tensor/vector_ops.h"

namespace rain {
namespace {

TEST(VectorOpsTest, Zeros) {
  Vec z = vec::Zeros(4);
  EXPECT_EQ(z.size(), 4u);
  for (double v : z) EXPECT_EQ(v, 0.0);
}

TEST(VectorOpsTest, Dot) {
  Vec x{1.0, 2.0, 3.0};
  Vec y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(vec::Dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOpsTest, Axpy) {
  Vec x{1.0, 2.0};
  Vec y{10.0, 20.0};
  vec::Axpy(3.0, x, &y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(VectorOpsTest, ScaleNormAddSub) {
  Vec x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(vec::Norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(vec::NormSq(x), 25.0);
  vec::Scale(2.0, &x);
  EXPECT_DOUBLE_EQ(x[0], 6.0);
  Vec y{1.0, 1.0};
  Vec s = vec::Sub(x, y);
  EXPECT_DOUBLE_EQ(s[0], 5.0);
  Vec a = vec::Add(x, y);
  EXPECT_DOUBLE_EQ(a[1], 9.0);
  EXPECT_DOUBLE_EQ(vec::MaxAbsDiff(x, y), 7.0);
}

TEST(MatrixTest, RowAccessAndSetRow) {
  Matrix m(2, 3);
  m.SetRow(0, {1.0, 2.0, 3.0});
  m.SetRow(1, {4.0, 5.0, 6.0});
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6.0);
  Vec r = m.RowVec(0);
  EXPECT_EQ(r, (Vec{1.0, 2.0, 3.0}));
  m.Row(1)[0] = 7.0;
  EXPECT_DOUBLE_EQ(m.At(1, 0), 7.0);
}

TEST(MatrixTest, MatVecAndTranspose) {
  Matrix m(2, 3);
  m.SetRow(0, {1.0, 0.0, 2.0});
  m.SetRow(1, {0.0, 3.0, 1.0});
  Vec x{1.0, 2.0, 3.0};
  Vec mx = m.MatVec(x);
  ASSERT_EQ(mx.size(), 2u);
  EXPECT_DOUBLE_EQ(mx[0], 7.0);
  EXPECT_DOUBLE_EQ(mx[1], 9.0);

  Vec y{1.0, 2.0};
  Vec mty = m.MatTVec(y);
  ASSERT_EQ(mty.size(), 3u);
  EXPECT_DOUBLE_EQ(mty[0], 1.0);
  EXPECT_DOUBLE_EQ(mty[1], 6.0);
  EXPECT_DOUBLE_EQ(mty[2], 4.0);
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(3, 2, 1.5);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 1.5);
  }
}

}  // namespace
}  // namespace rain
