#include <cmath>
#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "tensor/matrix.h"
#include "tensor/vector_ops.h"

namespace rain {
namespace {

TEST(VectorOpsTest, Zeros) {
  Vec z = vec::Zeros(4);
  EXPECT_EQ(z.size(), 4u);
  for (double v : z) EXPECT_EQ(v, 0.0);
}

TEST(VectorOpsTest, Dot) {
  Vec x{1.0, 2.0, 3.0};
  Vec y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(vec::Dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOpsTest, Axpy) {
  Vec x{1.0, 2.0};
  Vec y{10.0, 20.0};
  vec::Axpy(3.0, x, &y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(VectorOpsTest, ScaleNormAddSub) {
  Vec x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(vec::Norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(vec::NormSq(x), 25.0);
  vec::Scale(2.0, &x);
  EXPECT_DOUBLE_EQ(x[0], 6.0);
  Vec y{1.0, 1.0};
  Vec s = vec::Sub(x, y);
  EXPECT_DOUBLE_EQ(s[0], 5.0);
  Vec a = vec::Add(x, y);
  EXPECT_DOUBLE_EQ(a[1], 9.0);
  EXPECT_DOUBLE_EQ(vec::MaxAbsDiff(x, y), 7.0);
}

TEST(MatrixTest, RowAccessAndSetRow) {
  Matrix m(2, 3);
  m.SetRow(0, {1.0, 2.0, 3.0});
  m.SetRow(1, {4.0, 5.0, 6.0});
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6.0);
  Vec r = m.RowVec(0);
  EXPECT_EQ(r, (Vec{1.0, 2.0, 3.0}));
  m.Row(1)[0] = 7.0;
  EXPECT_DOUBLE_EQ(m.At(1, 0), 7.0);
}

TEST(MatrixTest, MatVecAndTranspose) {
  Matrix m(2, 3);
  m.SetRow(0, {1.0, 0.0, 2.0});
  m.SetRow(1, {0.0, 3.0, 1.0});
  Vec x{1.0, 2.0, 3.0};
  Vec mx = m.MatVec(x);
  ASSERT_EQ(mx.size(), 2u);
  EXPECT_DOUBLE_EQ(mx[0], 7.0);
  EXPECT_DOUBLE_EQ(mx[1], 9.0);

  Vec y{1.0, 2.0};
  Vec mty = m.MatTVec(y);
  ASSERT_EQ(mty.size(), 3u);
  EXPECT_DOUBLE_EQ(mty[0], 1.0);
  EXPECT_DOUBLE_EQ(mty[1], 6.0);
  EXPECT_DOUBLE_EQ(mty[2], 4.0);
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(3, 2, 1.5);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 1.5);
  }
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m.At(r, c) = rng.Gaussian();
  }
  return m;
}

TEST(VectorOpsTest, ParallelReductionsMatchSequential) {
  const size_t n = 50000;  // above kParallelGrain so the parallel path runs
  Vec x(n), y(n);
  Rng rng(23);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-1.0, 1.0);
    y[i] = rng.Uniform(-1.0, 1.0);
  }
  const double dot_seq = vec::Dot(x, y);
  const double nsq_seq = vec::NormSq(x);
  for (int par : {2, 4, 8}) {
    EXPECT_NEAR(vec::Dot(x, y, par), dot_seq, 1e-9 * n);
    EXPECT_NEAR(vec::NormSq(x, par), nsq_seq, 1e-9 * n);
    EXPECT_EQ(vec::Dot(x, y, par), vec::Dot(x, y, par)) << "must be deterministic";
  }
  // Parallel Axpy writes disjoint ranges: bitwise identical.
  Vec seq = y;
  vec::Axpy(0.25, x, &seq);
  Vec par_out = y;
  vec::Axpy(0.25, x, &par_out, 4);
  EXPECT_EQ(par_out, seq);
}

TEST(MatrixTest, ParallelMatVecBitwiseIdentical) {
  Matrix m = RandomMatrix(300, 40, 29);
  Vec x(40);
  Rng rng(31);
  for (double& v : x) v = rng.Gaussian();
  const Vec seq = m.MatVec(x);
  for (int par : {2, 4, 8}) {
    EXPECT_EQ(m.MatVec(x, par), seq) << "parallelism=" << par;
  }
}

TEST(MatrixTest, ParallelMatTVecMatchesSequential) {
  Matrix m = RandomMatrix(300, 40, 37);
  Vec y(300);
  Rng rng(41);
  for (double& v : y) v = rng.Gaussian();
  const Vec seq = m.MatTVec(y);
  for (int par : {2, 4, 8}) {
    const Vec out = m.MatTVec(y, par);
    ASSERT_EQ(out.size(), seq.size());
    for (size_t c = 0; c < out.size(); ++c) EXPECT_NEAR(out[c], seq[c], 1e-10);
  }
}

TEST(MatrixTest, MatMulMatchesNaiveAndIsParallelSafe) {
  Matrix a = RandomMatrix(37, 53, 43);
  Matrix b = RandomMatrix(53, 29, 47);
  Matrix naive(37, 29);
  for (size_t r = 0; r < 37; ++r) {
    for (size_t c = 0; c < 29; ++c) {
      double acc = 0.0;
      for (size_t k = 0; k < 53; ++k) acc += a.At(r, k) * b.At(k, c);
      naive.At(r, c) = acc;
    }
  }
  const Matrix seq = MatMul(a, b);
  for (size_t r = 0; r < 37; ++r) {
    for (size_t c = 0; c < 29; ++c) {
      EXPECT_NEAR(seq.At(r, c), naive.At(r, c), 1e-10);
    }
  }
  for (int par : {2, 4, 8}) {
    const Matrix out = MatMul(a, b, par);
    // Row partitions write disjoint output blocks with identical per-row
    // arithmetic: bitwise equal to the single-chunk result.
    EXPECT_EQ(out.data(), seq.data()) << "parallelism=" << par;
  }
}

// ------------------------------------------------- SIMD dispatch (vec)

/// RAII guard restoring the SIMD force-scalar hook.
class ForceScalarGuard {
 public:
  explicit ForceScalarGuard(bool force) : prev_(vec::simd::ForceScalar(force)) {}
  ~ForceScalarGuard() { vec::simd::ForceScalar(prev_); }

 private:
  bool prev_;
};

TEST(SimdTest, BackendReportsAndForceScalarWorks) {
  const std::string backend = vec::simd::Backend();
  EXPECT_TRUE(backend == "avx2-fma" || backend == "scalar") << backend;
  ForceScalarGuard guard(true);
  EXPECT_STREQ(vec::simd::Backend(), "scalar");
}

TEST(SimdTest, ScalarFallbackBitwiseMatchesReferenceLoops) {
  // The dispatch's scalar path must be the exact pre-SIMD loops: compare
  // bit for bit against inline reference folds, across sizes that cover
  // every vector-width tail.
  ForceScalarGuard guard(true);
  for (size_t n : {0u, 1u, 3u, 4u, 7u, 128u, 1001u}) {
    Vec x(n), y(n);
    Rng rng(100 + n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(-2.0, 2.0);
      y[i] = rng.Uniform(-2.0, 2.0);
    }
    double ref_dot = 0.0;
    for (size_t i = 0; i < n; ++i) ref_dot += x[i] * y[i];
    EXPECT_EQ(vec::Dot(x, y), ref_dot) << "n=" << n;

    Vec ref_axpy = y;
    for (size_t i = 0; i < n; ++i) ref_axpy[i] += 0.37 * x[i];
    Vec got = y;
    vec::Axpy(0.37, x, &got);
    EXPECT_EQ(got, ref_axpy) << "n=" << n;
  }
}

TEST(SimdTest, SimdPathDeterministicAndNearScalar) {
  if (std::string(vec::simd::Backend()) != "avx2-fma") {
    GTEST_SKIP() << "no AVX2/FMA on this host";
  }
  const size_t n = 4099;  // odd: exercises the vector tail
  Vec x(n), y(n);
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-1.0, 1.0);
    y[i] = rng.Uniform(-1.0, 1.0);
  }
  const double simd1 = vec::Dot(x, y);
  const double simd2 = vec::Dot(x, y);
  EXPECT_EQ(simd1, simd2) << "SIMD dot must be deterministic";
  double scalar;
  {
    ForceScalarGuard guard(true);
    scalar = vec::Dot(x, y);
  }
  EXPECT_NEAR(simd1, scalar, 1e-12 * n) << "lane regrouping only";
}

TEST(SimdTest, AxpyChunkInvariantUnderSimd) {
  // The chunked Axpy overload must stay bitwise-identical to sequential
  // on the SIMD path too: every element is one fused rounding regardless
  // of where a chunk boundary (and hence a register/tail boundary) falls.
  const size_t n = vec::kParallelGrain * 3 + 5;  // force the parallel path
  Vec x(n), y(n);
  Rng rng(8);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-1.0, 1.0);
    y[i] = rng.Uniform(-1.0, 1.0);
  }
  Vec seq = y;
  vec::Axpy(0.25, x, &seq);
  for (int par : {2, 3, 7, 8}) {
    Vec par_out = y;
    vec::Axpy(0.25, x, &par_out, par);
    EXPECT_EQ(par_out, seq) << "parallelism=" << par;
  }
}

}  // namespace
}  // namespace rain
