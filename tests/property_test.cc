/// Cross-cutting property tests: randomized instances checked against
/// brute-force oracles and internal-consistency invariants.
#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/ranker.h"
#include "gtest/gtest.h"
#include "ilp/problem.h"
#include "ilp/solver.h"
#include "provenance/poly.h"
#include "provenance/prediction_store.h"
#include "relational/catalog.h"
#include "relational/executor.h"
#include "relax/relaxed_poly.h"
#include "sql/planner.h"

namespace rain {
namespace {

// ---------------------------------------------------------------------------
// ILP solver vs exhaustive enumeration on random small instances.
// ---------------------------------------------------------------------------

struct BruteResult {
  bool feasible = false;
  double objective = 0.0;
};

BruteResult BruteForce(const IlpProblem& p) {
  BruteResult best;
  const size_t n = p.num_vars();
  std::vector<uint8_t> x(n);
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    for (size_t i = 0; i < n; ++i) x[i] = (mask >> i) & 1;
    if (!p.IsFeasible(x)) continue;
    const double obj = p.ObjectiveValue(x);
    if (!best.feasible || obj < best.objective) {
      best.feasible = true;
      best.objective = obj;
    }
  }
  return best;
}

class IlpVsBruteForceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IlpVsBruteForceTest, OptimaAgree) {
  Rng rng(GetParam());
  IlpProblem p;
  const size_t n = 4 + rng.UniformInt(8);  // 4..11 vars
  for (size_t v = 0; v < n; ++v) {
    p.AddVar(rng.Uniform(-2.0, 3.0));  // mixed-sign objective
  }
  const size_t m = 2 + rng.UniformInt(5);
  for (size_t c = 0; c < m; ++c) {
    LinearConstraint lc;
    const size_t terms = 1 + rng.UniformInt(std::min<size_t>(n, 4));
    for (size_t t = 0; t < terms; ++t) {
      lc.terms.push_back(LinearTerm{static_cast<int>(rng.UniformInt(n)),
                                    std::floor(rng.Uniform(-3.0, 4.0))});
    }
    lc.sense = static_cast<ConstraintSense>(rng.UniformInt(3));
    lc.rhs = std::floor(rng.Uniform(-2.0, 5.0));
    p.AddConstraint(std::move(lc));
  }

  const BruteResult truth = BruteForce(p);
  IlpSolveOptions opts;
  opts.randomize = GetParam() % 2 == 0;
  opts.seed = GetParam();
  auto sol = SolveIlp(p, opts);
  if (!truth.feasible) {
    EXPECT_FALSE(sol.ok()) << "solver found a solution to an infeasible ILP";
    return;
  }
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_TRUE(sol->optimal);
  EXPECT_NEAR(sol->objective, truth.objective, 1e-6);
  EXPECT_TRUE(p.IsFeasible(sol->values));
}

INSTANTIATE_TEST_SUITE_P(RandomIlps, IlpVsBruteForceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{31}));

// ---------------------------------------------------------------------------
// Decomposition fast path vs B&B on random Tiresias-shaped instances.
// ---------------------------------------------------------------------------

class DecompositionAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecompositionAgreementTest, ObjectiveMatchesBnb) {
  Rng rng(GetParam());
  IlpProblem p;
  const int rows = 4 + static_cast<int>(rng.UniformInt(6));
  const int classes = 2 + static_cast<int>(rng.UniformInt(3));
  std::vector<int> tracked;
  for (int r = 0; r < rows; ++r) {
    const int cur = static_cast<int>(rng.UniformInt(classes));
    std::vector<int> one_hot;
    for (int c = 0; c < classes; ++c) {
      one_hot.push_back(p.AddVar(c == cur ? 0.0 : 1.0));
    }
    p.AddCardinality(one_hot, ConstraintSense::kEq, 1.0);
    tracked.push_back(one_hot[1]);  // count class-1 assignments
  }
  const double target = static_cast<double>(rng.UniformInt(rows + 1));
  p.AddCardinality(tracked, ConstraintSense::kEq, target);
  const int coupling = static_cast<int>(p.num_constraints()) - 1;

  IlpSolveOptions fast_opts;
  fast_opts.randomize = true;
  fast_opts.seed = GetParam();
  fast_opts.coupling_constraint = coupling;
  auto fast = SolveIlp(p, fast_opts);

  IlpSolveOptions slow_opts;
  slow_opts.randomize = false;
  auto slow = SolveIlp(p, slow_opts);

  ASSERT_EQ(fast.ok(), slow.ok());
  if (!fast.ok()) return;
  EXPECT_TRUE(fast->used_decomposition);
  EXPECT_NEAR(fast->objective, slow->objective, 1e-6);
  EXPECT_TRUE(p.IsFeasible(fast->values));
}

INSTANTIATE_TEST_SUITE_P(RandomCardinality, DecompositionAgreementTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

// ---------------------------------------------------------------------------
// Executor invariant: the concrete rows of a debug-mode run equal the
// non-debug output, and every row condition evaluates (under the current
// predictions) to its concrete bit.
// ---------------------------------------------------------------------------

class DebugConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DebugConsistencyTest, ConcreteRowsMatchAndCondsAgree) {
  Rng rng(GetParam());
  // Random small catalog: one predictable table, one plain table.
  const size_t n = 6 + rng.UniformInt(8);
  Table items(Schema({Field{"id", DataType::kInt64, ""},
                      Field{"grp", DataType::kInt64, ""},
                      Field{"val", DataType::kDouble, ""}}));
  Matrix feats(n, 3);
  std::vector<int> labels(n);
  Matrix probs(n, 3);
  for (size_t i = 0; i < n; ++i) {
    items.AppendRowUnchecked({Value(static_cast<int64_t>(i)),
                              Value(static_cast<int64_t>(rng.UniformInt(3))),
                              Value(rng.Uniform())});
    for (int f = 0; f < 3; ++f) feats.At(i, f) = rng.Gaussian();
    labels[i] = static_cast<int>(rng.UniformInt(3));
    double a = rng.Uniform(0.05, 1.0), b = rng.Uniform(0.05, 1.0),
           c = rng.Uniform(0.05, 1.0);
    const double s = a + b + c;
    probs.SetRow(i, {a / s, b / s, c / s});
  }
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("items", std::move(items),
                               Dataset(std::move(feats), std::move(labels), 3))
                  .ok());
  PredictionStore preds;
  preds.SetPredictions(0, std::move(probs));

  const char* queries[] = {
      "SELECT COUNT(*) AS c FROM items WHERE predict(*) = 1",
      "SELECT COUNT(*) AS c FROM items WHERE predict(*) = 1 OR grp = 0",
      "SELECT grp, COUNT(*) AS c FROM items WHERE predict(*) <> 2 GROUP BY grp",
      "SELECT SUM(val) AS s FROM items WHERE predict(*) >= 1",
      "SELECT * FROM items A, items B WHERE predict(A.*) = predict(B.*) "
      "AND A.id < B.id",
      "SELECT AVG(predict(*)) AS a FROM items GROUP BY grp",
      "SELECT predict(*), COUNT(*) AS c FROM items GROUP BY predict(*)",
  };
  for (const char* q : queries) {
    auto plan = sql::PlanQuery(q, catalog);
    ASSERT_TRUE(plan.ok()) << q << ": " << plan.status().ToString();

    PolyArena arena;
    Executor debug_exec(&catalog, &preds, &arena);
    ExecOptions debug_opts;
    debug_opts.debug_mode = true;
    auto debug_run = debug_exec.Run(*plan, debug_opts);
    ASSERT_TRUE(debug_run.ok()) << q << ": " << debug_run.status().ToString();

    Executor plain_exec(&catalog, &preds, nullptr);
    auto plain_run = plain_exec.Run(*plan, ExecOptions{});
    ASSERT_TRUE(plain_run.ok()) << q;

    // Concrete rows of debug mode == plain output rows (as multisets of
    // stringified rows).
    auto stringify = [](const ExecTable& t, bool only_concrete) {
      std::vector<std::string> rows;
      for (size_t r = 0; r < t.num_rows(); ++r) {
        if (only_concrete && !t.concrete[r]) continue;
        std::string s;
        for (const Value& v : t.rows[r]) s += v.ToString() + "|";
        rows.push_back(std::move(s));
      }
      std::sort(rows.begin(), rows.end());
      return rows;
    };
    EXPECT_EQ(stringify(debug_run->table, true), stringify(plain_run->table, true))
        << q;

    // Row conditions evaluate to the concrete bit under the concrete
    // prediction assignment.
    const Vec assignment = preds.ConcreteAssignment(arena);
    for (size_t r = 0; r < debug_run->table.num_rows(); ++r) {
      const PolyId cond = debug_run->table.cond[r];
      if (cond == kInvalidPoly) continue;
      const double v = arena.Evaluate(cond, assignment);
      EXPECT_DOUBLE_EQ(v, debug_run->table.concrete[r] ? 1.0 : 0.0)
          << q << " row " << r;
    }
    // Aggregate polynomials evaluate to the concrete cell values.
    if (debug_run->is_aggregate) {
      for (size_t r = 0; r < debug_run->table.num_rows(); ++r) {
        if (!debug_run->table.concrete[r]) continue;
        for (size_t a = 0; a < debug_run->agg_polys.size() && a < 1; ++a) {
          // (checked per row below)
        }
        for (size_t a = 0; a < debug_run->agg_polys[r].size(); ++a) {
          const double poly_val =
              arena.Evaluate(debug_run->agg_polys[r][a], assignment);
          const double cell = *debug_run->table.rows[r]
                                   [debug_run->num_group_cols + a]
                                       .ToNumeric();
          EXPECT_NEAR(poly_val, cell, 1e-9) << q << " row " << r << " agg " << a;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCatalogs, DebugConsistencyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// ---------------------------------------------------------------------------
// Relaxation invariants.
// ---------------------------------------------------------------------------

TEST(RelaxModeTest, LinearOrDiffersOnlyOnDisjunction) {
  PolyArena a;
  const PolyId x = a.Var(PredVar{0, 0, 1});
  const PolyId y = a.Var(PredVar{0, 1, 1});
  const Vec vals{0.5, 0.5};
  {
    RelaxedPoly ind(&a, a.And({x, y}), RelaxMode::kIndependent);
    RelaxedPoly lin(&a, a.And({x, y}), RelaxMode::kLinearOr);
    EXPECT_DOUBLE_EQ(ind.Evaluate(vals), lin.Evaluate(vals));
  }
  {
    RelaxedPoly ind(&a, a.Or({x, y}), RelaxMode::kIndependent);
    RelaxedPoly lin(&a, a.Or({x, y}), RelaxMode::kLinearOr);
    EXPECT_DOUBLE_EQ(ind.Evaluate(vals), 0.75);
    EXPECT_DOUBLE_EQ(lin.Evaluate(vals), 1.0);  // unclipped union bound
  }
}

TEST(RelaxModeTest, BoundedInUnitCubeForBooleanPolys) {
  // The independent-product relaxation of any AND/OR/NOT formula over
  // probabilities stays in [0, 1].
  Rng rng(77);
  PolyArena a;
  std::vector<PolyId> pool;
  for (int v = 0; v < 5; ++v) pool.push_back(a.Var(PredVar{0, v, 1}));
  for (int step = 0; step < 30; ++step) {
    const PolyId c1 = pool[rng.UniformInt(pool.size())];
    const PolyId c2 = pool[rng.UniformInt(pool.size())];
    switch (rng.UniformInt(3)) {
      case 0:
        pool.push_back(a.And({c1, c2}));
        break;
      case 1:
        pool.push_back(a.Or({c1, c2}));
        break;
      default:
        pool.push_back(a.Not(c1));
        break;
    }
  }
  RelaxedPoly poly(&a, pool.back());
  for (int trial = 0; trial < 50; ++trial) {
    Vec vals(5);
    for (double& v : vals) v = rng.Uniform();
    const double out = poly.Evaluate(vals);
    EXPECT_GE(out, -1e-12);
    EXPECT_LE(out, 1.0 + 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Auto ranker (Section 5.1 optimizer heuristic).
// ---------------------------------------------------------------------------

TEST(AutoRankerTest, FactoryAndName) {
  auto r = MakeRanker("auto");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->name(), "auto");
}

}  // namespace
}  // namespace rain
