/// Serve-layer semantics: wire protocol round-trips, the unified
/// Status error surface, admission control, round-robin fairness, the
/// multi-session bitwise stress (hosted == standalone at every worker
/// count), deadline quotas, complaints between turns, and
/// client-disconnect cancellation over a real socket.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.h"
#include "gtest/gtest.h"
#include "serve/builtin_datasets.h"
#include "serve/client.h"
#include "serve/debug_service.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace rain {
namespace serve {
namespace {

// ------------------------------------------------------------------ wire

TEST(WireTest, ParseRequestSplitsVerbAndArgs) {
  auto req = ParseRequest("  OPEN adult parallelism=2  timeout=1.5 ");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->verb, "open");
  ASSERT_EQ(req->args.size(), 3u);
  EXPECT_EQ(req->args[0], "adult");
  EXPECT_EQ(FindOption(req->args, "parallelism").value_or(""), "2");
  EXPECT_EQ(FindOption(req->args, "timeout").value_or(""), "1.5");
  EXPECT_FALSE(FindOption(req->args, "shards").has_value());
  EXPECT_FALSE(ParseRequest("   ").ok());
}

TEST(WireTest, FindOptionIsLastWriteWins) {
  auto req = ParseRequest("open adult parallelism=2 parallelism=8");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(FindOption(req->args, "parallelism").value_or(""), "8");
}

TEST(WireTest, JsonObjectRoundTripsThroughGetters) {
  const std::string line = OkResponse(JsonObject()
                                          .Add("sid", uint64_t{42})
                                          .Add("dataset", "adult")
                                          .Add("finished", false)
                                          .Add("note", "a \"quoted\"\nline"));
  EXPECT_EQ(JsonGetBool(line, "ok").value_or(false), true);
  EXPECT_EQ(JsonGetInt(line, "sid").value_or(0), 42);
  EXPECT_EQ(JsonGetString(line, "dataset").value_or(""), "adult");
  EXPECT_EQ(JsonGetBool(line, "finished").value_or(true), false);
  EXPECT_EQ(JsonGetString(line, "note").value_or(""), "a \"quoted\"\nline");
  EXPECT_FALSE(JsonGetInt(line, "absent").has_value());
  EXPECT_TRUE(StatusFromResponse(line).ok());
}

TEST(WireTest, ErrorResponseCarriesTheStatusContract) {
  const std::string line =
      ErrorResponse(Status::ResourceExhausted("no shares for \"you\""));
  EXPECT_EQ(JsonGetBool(line, "ok").value_or(true), false);
  const Status status = StatusFromResponse(line);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.message(), "no shares for \"you\"");
  // Malformed / truncated responses degrade to kInternal, never OK.
  EXPECT_EQ(StatusFromResponse("{\"garbage\":1}").code(),
            StatusCode::kInternal);
}

TEST(WireTest, StepStatusMapping) {
  EXPECT_EQ(StepStatusToStatus(StepStatus::kCancelled).code(),
            StatusCode::kCancelled);
  EXPECT_EQ(StepStatusToStatus(StepStatus::kDeadlineExceeded).code(),
            StatusCode::kResourceExhausted);
  for (StepStatus s :
       {StepStatus::kIterated, StepStatus::kResolved, StepStatus::kNoProgress,
        StepStatus::kBudgetExhausted, StepStatus::kIterationLimit,
        StepStatus::kAlreadyFinished}) {
    EXPECT_TRUE(StepStatusToStatus(s).ok()) << StepStatusName(s);
  }
}

// ------------------------------------------------------------- fixtures

/// One small Adult bundle shared by every service test in this binary
/// (clean-pipeline target derivation trains a model, so build it once).
const HostedDataset& SmallAdult() {
  static const HostedDataset* dataset = new HostedDataset(
      MakeAdultHostedDataset(/*train_size=*/800, /*query_size=*/400,
                             /*corruption=*/0.3, /*seed=*/13));
  return *dataset;
}

SessionSpec SmallSpec(int parallelism) {
  SessionSpec spec;
  spec.dataset = "adult";
  spec.top_k_per_iter = 10;
  spec.max_deletions = 50;
  spec.max_iterations = 5;
  spec.exec.set_parallelism(parallelism);
  return spec;
}

/// Runs the same spec standalone (no service): the bitwise reference.
DebugReport StandaloneReference(const SessionSpec& spec) {
  auto pipeline = MakeSessionPipeline(SmallAdult());
  auto session = DebugSessionBuilder(pipeline.get())
                     .ranker(spec.ranker)
                     .top_k_per_iter(spec.top_k_per_iter)
                     .max_deletions(spec.max_deletions)
                     .max_iterations(spec.max_iterations)
                     .stop_when_resolved(spec.stop_when_resolved)
                     .set_execution(spec.exec)
                     .workload(SmallAdult().default_workload)
                     .Build();
  RAIN_CHECK(session.ok()) << session.status().ToString();
  auto report = (*session)->RunToCompletion();
  RAIN_CHECK(report.ok()) << report.status().ToString();
  return *report;
}

// ------------------------------------------------- multi-session stress

/// The tentpole guarantee: N >= 8 sessions stepping concurrently over ONE
/// shared dataset, at mixed worker counts, each produces the exact
/// deletion sequence of a standalone run with the same spec — tenants
/// cannot perturb each other even at the bitwise level.
TEST(DebugServiceStressTest, EightConcurrentSessionsBitwiseMatchStandalone) {
  const std::vector<int> worker_counts = {1, 2, 8};
  std::vector<DebugReport> references;
  for (int workers : worker_counts) {
    references.push_back(StandaloneReference(SmallSpec(workers)));
  }
  // Sanity: different parallelism must actually change something once in
  // a while; if all three references coincide the stress proves little.
  // (Equal sequences are still correct, so don't assert inequality.)

  ServiceOptions options;
  options.admission_capacity = 64;
  options.num_drivers = 3;
  DebugService service(options);
  ASSERT_TRUE(service.RegisterDataset(SmallAdult()).ok());

  constexpr int kSessions = 9;  // 3 per worker count
  std::vector<uint64_t> sids;
  std::vector<int> flavors;
  for (int i = 0; i < kSessions; ++i) {
    const int flavor = i % static_cast<int>(worker_counts.size());
    auto sid = service.Open(SmallSpec(worker_counts[flavor]));
    ASSERT_TRUE(sid.ok()) << sid.status().ToString();
    sids.push_back(*sid);
    flavors.push_back(flavor);
  }
  EXPECT_EQ(service.num_open_sessions(), static_cast<size_t>(kSessions));

  // Fire everything at once; turns interleave round-robin on the shared
  // pool while each session keeps its own parallelism knob.
  std::vector<Future<Result<StepOutcome>>> futures;
  for (uint64_t sid : sids) {
    futures.push_back(service.StepAsync(sid, /*steps=*/100));
  }
  for (int i = 0; i < kSessions; ++i) {
    auto outcome = futures[i].Get();
    ASSERT_TRUE(outcome.ok()) << "session " << sids[i] << ": "
                              << outcome.status().ToString();
    EXPECT_TRUE(outcome->finished);
  }

  for (int i = 0; i < kSessions; ++i) {
    auto report = service.Report(sids[i]);
    ASSERT_TRUE(report.ok());
    const DebugReport& reference = references[static_cast<size_t>(flavors[i])];
    EXPECT_EQ(report->deletions, reference.deletions)
        << "session " << sids[i] << " (parallelism "
        << worker_counts[flavors[i]]
        << ") diverged from its standalone reference";
    EXPECT_EQ(report->complaints_resolved, reference.complaints_resolved);
    ASSERT_EQ(report->iterations.size(), reference.iterations.size());
    for (size_t it = 0; it < reference.iterations.size(); ++it) {
      EXPECT_EQ(report->iterations[it].deletions_after,
                reference.iterations[it].deletions_after)
          << "session " << sids[i] << " iteration " << it;
    }
    EXPECT_TRUE(service.Close(sids[i]).ok());
  }
  EXPECT_EQ(service.num_open_sessions(), 0u);
  EXPECT_EQ(service.admission_acquired(), 0);
}

// ------------------------------------------------------------ admission

TEST(DebugServiceTest, AdmissionRefusesWithResourceExhausted) {
  ServiceOptions options;
  options.admission_capacity = 4;
  DebugService service(options);
  ASSERT_TRUE(service.RegisterDataset(SmallAdult()).ok());

  auto first = service.Open(SmallSpec(3));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(service.admission_acquired(), 3);

  auto refused = service.Open(SmallSpec(2));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted)
      << refused.status().ToString();

  // A single request larger than TOTAL capacity is refused outright.
  auto oversized = service.Open(SmallSpec(100));
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kResourceExhausted);

  // Closing the admitted session releases its shares; the refused spec
  // now fits.
  ASSERT_TRUE(service.Close(*first).ok());
  EXPECT_EQ(service.admission_acquired(), 0);
  auto retry = service.Open(SmallSpec(2));
  EXPECT_TRUE(retry.ok());
}

TEST(DebugServiceTest, SessionCapRefusesWithResourceExhausted) {
  ServiceOptions options;
  options.max_sessions = 1;
  options.admission_capacity = 64;
  DebugService service(options);
  ASSERT_TRUE(service.RegisterDataset(SmallAdult()).ok());
  ASSERT_TRUE(service.Open(SmallSpec(1)).ok());
  auto refused = service.Open(SmallSpec(1));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

TEST(DebugServiceTest, UnknownDatasetAndSessionAreNotFound) {
  DebugService service;
  ASSERT_TRUE(service.RegisterDataset(SmallAdult()).ok());
  EXPECT_EQ(service.Open(SessionSpec{}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Step(999, 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.GetStatus(999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Close(999).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.RegisterDataset(SmallAdult()).code(),
            StatusCode::kAlreadyExists);
}

// ------------------------------------------------------------- fairness

/// With one driver and a recorded turn log, two 4-step requests must
/// interleave: round-robin re-enqueues the remainder at the tail after
/// every single iteration, so neither request can monopolize the driver.
TEST(DebugServiceTest, RoundRobinTurnsInterleaveSessions) {
  ServiceOptions options;
  options.num_drivers = 1;
  options.record_turn_log = true;
  options.admission_capacity = 64;
  DebugService service(options);
  ASSERT_TRUE(service.RegisterDataset(SmallAdult()).ok());

  SessionSpec spec = SmallSpec(1);
  spec.max_iterations = 100;  // budget: exactly the turns we request
  spec.max_deletions = 1000;
  auto a = service.Open(spec);
  auto b = service.Open(spec);
  ASSERT_TRUE(a.ok() && b.ok());

  auto fa = service.StepAsync(*a, 4);
  auto fb = service.StepAsync(*b, 4);
  ASSERT_TRUE(fa.Get().ok());
  ASSERT_TRUE(fb.Get().ok());

  const std::vector<uint64_t> log = service.turn_log();
  ASSERT_EQ(log.size(), 8u);
  EXPECT_EQ(std::count(log.begin(), log.end(), *a), 4);
  EXPECT_EQ(std::count(log.begin(), log.end(), *b), 4);
  // Strict round-robin allows at most 2 consecutive turns of one session
  // (only around the enqueue race at the start); a sequential scheduler
  // would run 4 in a row.
  int longest_run = 1;
  int run = 1;
  for (size_t i = 1; i < log.size(); ++i) {
    run = log[i] == log[i - 1] ? run + 1 : 1;
    longest_run = std::max(longest_run, run);
  }
  EXPECT_LE(longest_run, 2) << "a session monopolized the driver";
}

// ----------------------------------------------------- deadlines/quotas

TEST(DebugServiceTest, DeadlineMidPhaseSurfacesAsResourceExhausted) {
  ServiceOptions options;
  options.admission_capacity = 64;
  DebugService service(options);
  ASSERT_TRUE(service.RegisterDataset(SmallAdult()).ok());

  SessionSpec spec = SmallSpec(1);
  spec.max_iterations = 10000;
  spec.exec.set_timeout_seconds(0.005);  // expires inside the first phases
  auto sid = service.Open(spec);
  ASSERT_TRUE(sid.ok());

  auto outcome = service.Step(*sid, 1000);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->last_status, StepStatus::kDeadlineExceeded);
  EXPECT_TRUE(outcome->finished);
  // The unified error surface: a blown time quota maps onto the same code
  // admission refusals use.
  EXPECT_EQ(StepStatusToStatus(outcome->last_status).code(),
            StatusCode::kResourceExhausted);

  auto status = service.GetStatus(*sid);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, SessionState::kFinished);
  EXPECT_EQ(status->finish_status, StepStatus::kDeadlineExceeded);
}

TEST(DebugServiceTest, CancelMidStepFinishesAsCancelled) {
  ServiceOptions options;
  options.admission_capacity = 64;
  DebugService service(options);
  ASSERT_TRUE(service.RegisterDataset(SmallAdult()).ok());

  SessionSpec spec = SmallSpec(1);
  spec.max_iterations = 10000;
  spec.max_deletions = 10000;
  auto sid = service.Open(spec);
  ASSERT_TRUE(sid.ok());
  auto future = service.StepAsync(*sid, 10000);
  ASSERT_TRUE(service.Cancel(*sid).ok());
  auto outcome = future.Get();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->last_status, StepStatus::kCancelled);
  EXPECT_EQ(StepStatusToStatus(outcome->last_status).code(),
            StatusCode::kCancelled);
}

// ------------------------------------------------- complaints and state

TEST(DebugServiceTest, ComplainBetweenTurnsReopensButNotInFlight) {
  ServiceOptions options;
  options.admission_capacity = 64;
  DebugService service(options);
  ASSERT_TRUE(service.RegisterDataset(SmallAdult()).ok());
  auto sid = service.Open(SmallSpec(1));
  ASSERT_TRUE(sid.ok());

  // Between turns: allowed.
  QueryComplaints points;  // query-less: binds against predictions
  points.complaints = {ComplaintSpec::Point("adult", 3, 1)};
  ASSERT_TRUE(service.Step(*sid, 1).ok());
  EXPECT_TRUE(service.Complain(*sid, points).ok());

  // While a turn is in flight: kInvalidArgument (the unified surface
  // distinguishes caller mistakes from resource refusals).
  auto future = service.StepAsync(*sid, 50);
  const Status in_flight = service.Complain(*sid, points);
  EXPECT_FALSE(in_flight.ok());
  EXPECT_EQ(in_flight.code(), StatusCode::kInvalidArgument);
  const Status report_in_flight = service.Report(*sid).status();
  EXPECT_EQ(report_in_flight.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(future.Get().ok());
}

/// The incremental-update surface: a hosted session's label delta detaches
/// its COW view, so sibling tenants (running or opened later) stay
/// bitwise on the registered storage; the updated session itself reopens
/// and re-debugs.
TEST(DebugServiceTest, UpdateIsolatesSiblingTenantsAndReopens) {
  ServiceOptions options;
  options.admission_capacity = 64;
  DebugService service(options);
  ASSERT_TRUE(service.RegisterDataset(SmallAdult()).ok());

  // A gets a budget large enough to RESOLVE (reopening is defined for
  // resolved sessions); B keeps the small budget as the bitwise sibling.
  SessionSpec resolve_spec = SmallSpec(1);
  resolve_spec.max_iterations = 200;
  resolve_spec.max_deletions = 600;
  auto a = service.Open(resolve_spec);
  auto b = service.Open(SmallSpec(1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto a_run = service.Step(*a, 300);
  ASSERT_TRUE(a_run.ok());
  ASSERT_TRUE(a_run->resolved);
  ASSERT_TRUE(service.Step(*b, 100).ok());
  auto b_before = service.Report(*b);
  ASSERT_TRUE(b_before.ok());

  // While a turn is in flight the update is refused, like Complain.
  SessionSpec long_spec = SmallSpec(1);
  long_spec.max_iterations = 10000;
  long_spec.max_deletions = 10000;
  auto c = service.Open(long_spec);
  ASSERT_TRUE(c.ok());
  auto future = service.StepAsync(*c, 10000);
  UpdateBatch batch;
  batch.label_edits.push_back(LabelEdit{0, 1});
  const Status in_flight = service.Update(*c, batch).status();
  EXPECT_EQ(in_flight.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(service.Cancel(*c).ok());
  (void)future.Get();

  // Between turns: the delta lands on A's COW view only.
  const int registered_label = SmallAdult().train.label(0);
  batch.label_edits[0].new_label = 1 - registered_label;
  auto report = service.Update(*a, batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->incremental);
  EXPECT_EQ(report->touched_rows, 1u);
  EXPECT_TRUE(report->reopened);
  // The registered bundle and the sibling are untouched.
  EXPECT_EQ(SmallAdult().train.label(0), registered_label);
  auto b_after = service.Report(*b);
  ASSERT_TRUE(b_after.ok());
  EXPECT_EQ(b_after->deletions, b_before->deletions);

  // A fresh tenant opened AFTER the update still bitwise-matches the
  // standalone reference over the pristine storage.
  auto d = service.Open(SmallSpec(1));
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(service.Step(*d, 100).ok());
  auto d_report = service.Report(*d);
  ASSERT_TRUE(d_report.ok());
  EXPECT_EQ(d_report->deletions, StandaloneReference(SmallSpec(1)).deletions);

  // The updated session re-debugs to a terminal state.
  auto redebug = service.Step(*a, 100);
  ASSERT_TRUE(redebug.ok()) << redebug.status().ToString();
  EXPECT_TRUE(redebug->finished);
}

TEST(DebugServiceTest, ShutdownFailsPendingTurnsAndClosesSessions) {
  ServiceOptions options;
  options.admission_capacity = 64;
  auto service = std::make_unique<DebugService>(options);
  ASSERT_TRUE(service->RegisterDataset(SmallAdult()).ok());
  SessionSpec spec = SmallSpec(1);
  spec.max_iterations = 10000;
  spec.max_deletions = 10000;
  auto sid = service->Open(spec);
  ASSERT_TRUE(sid.ok());
  auto future = service->StepAsync(*sid, 10000);
  service->Shutdown();
  auto outcome = future.Get();
  // Either the driver finished the turn with a cancelled session or the
  // queue drained it as an error; both speak kCancelled.
  if (outcome.ok()) {
    EXPECT_EQ(outcome->last_status, StepStatus::kCancelled);
  } else {
    EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
  }
  EXPECT_EQ(service->num_open_sessions(), 0u);
}

// ------------------------------------------------------- socket serving

class ServeSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = "/tmp/rain_serve_test_" + std::to_string(::getpid()) +
                   "_" + std::to_string(counter_++) + ".sock";
    ServiceOptions options;
    options.admission_capacity = 64;
    service_ = std::make_unique<DebugService>(options);
    ASSERT_TRUE(service_->RegisterDataset(SmallAdult()).ok());
    ServerOptions server_options;
    server_options.socket_path = socket_path_;
    server_ = std::make_unique<DebugServer>(service_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Stop();
    service_->Shutdown();
  }

  static int counter_;
  std::string socket_path_;
  std::unique_ptr<DebugService> service_;
  std::unique_ptr<DebugServer> server_;
};

int ServeSocketTest::counter_ = 0;

TEST_F(ServeSocketTest, OpenStepStatusCloseRoundTrip) {
  auto client = DebugClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto sid = client->Open("adult", "parallelism=2 max_iterations=3");
  ASSERT_TRUE(sid.ok()) << sid.status().ToString();

  auto step = client->Step(*sid, 2);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  EXPECT_EQ(step->steps, 2);
  EXPECT_GT(step->new_deletions, 0);

  auto status = client->GetStatus(*sid);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->dataset, "adult");
  EXPECT_EQ(status->iterations, 2);

  EXPECT_TRUE(client->ComplainPoint(*sid, "adult", 3, 1).ok());
  EXPECT_TRUE(client->Close(*sid).ok());
  EXPECT_EQ(client->GetStatus(*sid).status().code(), StatusCode::kNotFound);
  client->Quit();
}

TEST_F(ServeSocketTest, WireErrorsCarryServiceStatusCodes) {
  auto client = DebugClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client->Open("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client->Step(424242, 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client->Open("adult", "parallelism=100").status().code(),
            StatusCode::kResourceExhausted)
      << "admission refusals must cross the wire intact";
  auto garbage = client->Call("frobnicate 1 2 3");
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(StatusFromResponse(*garbage).code(), StatusCode::kInvalidArgument);
  client->Quit();
}

TEST_F(ServeSocketTest, UpdateVerbRoundTrip) {
  auto client = DebugClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto sid = client->Open("adult", "max_iterations=3");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(client->Step(*sid, 1).ok());

  auto update = client->UpdateLabel(*sid, 0, 1, "incremental");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(update->incremental);
  EXPECT_EQ(update->touched_rows, 1);
  EXPECT_GT(update->entries_cached, 0);

  auto deactivate = client->Deactivate(*sid, 7);
  ASSERT_TRUE(deactivate.ok());
  EXPECT_EQ(deactivate->touched_rows, 1);
  auto reactivate = client->Reactivate(*sid, 7);
  ASSERT_TRUE(reactivate.ok());

  // Errors cross the wire with the service's Status codes.
  EXPECT_EQ(client->UpdateLabel(424242, 0, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client->UpdateLabel(*sid, 1 << 30, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client->UpdateLabel(*sid, 0, 1, "sideways").status().code(),
            StatusCode::kInvalidArgument);
  auto malformed = client->Call("update " + std::to_string(*sid) + " label");
  ASSERT_TRUE(malformed.ok());
  EXPECT_EQ(StatusFromResponse(*malformed).code(),
            StatusCode::kInvalidArgument);

  // The updated session keeps stepping over the socket.
  auto step = client->Step(*sid, 1);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  EXPECT_TRUE(client->Close(*sid).ok());
  client->Quit();
}

TEST_F(ServeSocketTest, AbruptDisconnectCancelsAndClosesSessions) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path_.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  const std::string open_req =
      "open adult max_iterations=100000 max_deletions=100000\n";
  ASSERT_GT(::send(fd, open_req.data(), open_req.size(), MSG_NOSIGNAL), 0);
  char buffer[512];
  const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  ASSERT_GT(n, 0);
  ASSERT_TRUE(StatusFromResponse(std::string(buffer, static_cast<size_t>(n)))
                  .ok());
  EXPECT_EQ(service_->num_open_sessions(), 1u);

  // Kick off a step that would run for a very long time, then vanish
  // without reading the response.
  const std::string step_req = "step 1 100000\n";
  ASSERT_GT(::send(fd, step_req.data(), step_req.size(), MSG_NOSIGNAL), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::close(fd);

  // The watcher notices the hangup, cancels the session mid-step, and the
  // handler closes it — long before the deletion budget could drain.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (service_->num_open_sessions() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(service_->num_open_sessions(), 0u)
      << "disconnect did not cancel + close the hosted session";
  EXPECT_EQ(service_->admission_acquired(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace rain
