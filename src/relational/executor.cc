#include "relational/executor.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace rain {

size_t ExecTable::NumConcrete() const {
  size_t n = 0;
  for (uint8_t c : concrete) n += c;
  return n;
}

Table ExecTable::ToTable() const {
  Table out(schema);
  for (size_t r = 0; r < rows.size(); ++r) {
    if (concrete[r]) out.AppendRowUnchecked(rows[r]);
  }
  return out;
}

namespace {

/// Symbolic evaluation value: the concrete result plus, when the
/// expression depends on model predictions, a polynomial (boolean or
/// numeric) or a reference to a raw prediction (kept unexpanded so that
/// comparisons like predict(L) = predict(R) translate precisely).
struct SymValue {
  enum class Kind { kConcrete, kBoolPoly, kNumPoly, kPredictRef };
  Kind kind = Kind::kConcrete;
  Value concrete;                // always populated
  PolyId poly = kInvalidPoly;    // kBoolPoly / kNumPoly
  int32_t pred_table = -1;       // kPredictRef
  int64_t pred_row = -1;
  int pred_classes = 0;
};

using SymKind = SymValue::Kind;

struct SymContext {
  PolyArena* arena = nullptr;
  const PredictionStore* predictions = nullptr;
  const std::vector<Value>* values = nullptr;
  const RowLineage* lineage = nullptr;
};

SymValue MakeConcrete(Value v) {
  SymValue s;
  s.kind = SymKind::kConcrete;
  s.concrete = std::move(v);
  return s;
}

/// Converts a symbolic value into a boolean polynomial (existence
/// condition semantics).
Result<PolyId> ToBoolPoly(const SymValue& s, SymContext* ctx) {
  switch (s.kind) {
    case SymKind::kConcrete: {
      RAIN_ASSIGN_OR_RETURN(const bool b, s.concrete.ToBool());
      return b ? ctx->arena->True() : ctx->arena->False();
    }
    case SymKind::kBoolPoly:
      return s.poly;
    case SymKind::kPredictRef: {
      // Truthiness of a raw prediction: class != 0 (for a binary model
      // this is exactly "predicted class 1", matching Q2-style filters).
      return ctx->arena->Not(ctx->arena->Var(PredVar{s.pred_table, s.pred_row, 0}));
    }
    case SymKind::kNumPoly:
      return Status::Unimplemented(
          "cannot use a numeric model-dependent expression as a boolean predicate");
  }
  return Status::Internal("unreachable");
}

/// Converts a symbolic value into a numeric polynomial (aggregation
/// value semantics). A raw prediction becomes sum_c c * v(row, c).
Result<PolyId> ToNumPoly(const SymValue& s, SymContext* ctx) {
  switch (s.kind) {
    case SymKind::kConcrete: {
      RAIN_ASSIGN_OR_RETURN(const double d, s.concrete.ToNumeric());
      return ctx->arena->Const(d);
    }
    case SymKind::kBoolPoly:
    case SymKind::kNumPoly:
      return s.poly;
    case SymKind::kPredictRef: {
      std::vector<PolyId> terms;
      for (int c = 1; c < s.pred_classes; ++c) {
        terms.push_back(ctx->arena->Mul(
            {ctx->arena->Const(static_cast<double>(c)),
             ctx->arena->Var(PredVar{s.pred_table, s.pred_row, c})}));
      }
      return ctx->arena->Add(std::move(terms));
    }
  }
  return Status::Internal("unreachable");
}

bool ClassSatisfies(CompareOp op, int cls, int64_t k) {
  switch (op) {
    case CompareOp::kEq:
      return cls == k;
    case CompareOp::kNe:
      return cls != k;
    case CompareOp::kLt:
      return cls < k;
    case CompareOp::kLe:
      return cls <= k;
    case CompareOp::kGt:
      return cls > k;
    case CompareOp::kGe:
      return cls >= k;
  }
  return false;
}

Result<SymValue> SymbolicEval(const Expr& expr, SymContext* ctx);

/// Comparison of a raw prediction against a concrete integer: the OR of
/// the class indicator variables whose class satisfies the comparison.
Result<SymValue> ComparePredictToConst(const SymValue& pred, CompareOp op, int64_t k,
                                       const Value& concrete_result, SymContext* ctx) {
  std::vector<PolyId> sat;
  for (int c = 0; c < pred.pred_classes; ++c) {
    if (ClassSatisfies(op, c, k)) {
      sat.push_back(ctx->arena->Var(PredVar{pred.pred_table, pred.pred_row, c}));
    }
  }
  SymValue out;
  out.kind = SymKind::kBoolPoly;
  out.concrete = concrete_result;
  out.poly = ctx->arena->Or(std::move(sat));
  return out;
}

/// Comparison of two raw predictions: OR over class pairs (c1 op c2) of
/// v(l, c1) AND v(r, c2). For kEq this is the paper's join relaxation
/// OR_c (v_l,c AND v_r,c).
Result<SymValue> ComparePredictToPredict(const SymValue& l, CompareOp op,
                                         const SymValue& r,
                                         const Value& concrete_result,
                                         SymContext* ctx) {
  std::vector<PolyId> sat;
  for (int c1 = 0; c1 < l.pred_classes; ++c1) {
    for (int c2 = 0; c2 < r.pred_classes; ++c2) {
      if (!ClassSatisfies(op, c1, c2)) continue;
      const PolyId vl = ctx->arena->Var(PredVar{l.pred_table, l.pred_row, c1});
      const PolyId vr = ctx->arena->Var(PredVar{r.pred_table, r.pred_row, c2});
      sat.push_back(ctx->arena->And({vl, vr}));
    }
  }
  SymValue out;
  out.kind = SymKind::kBoolPoly;
  out.concrete = concrete_result;
  out.poly = ctx->arena->Or(std::move(sat));
  return out;
}

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

Result<SymValue> EvalCompareSym(const Expr& expr, SymContext* ctx) {
  RAIN_ASSIGN_OR_RETURN(SymValue l, SymbolicEval(*expr.children[0], ctx));
  RAIN_ASSIGN_OR_RETURN(SymValue r, SymbolicEval(*expr.children[1], ctx));

  // Concrete result, shared by all branches.
  RAIN_ASSIGN_OR_RETURN(const int c3, l.concrete.Compare(r.concrete));
  bool cres = false;
  switch (expr.cmp) {
    case CompareOp::kEq:
      cres = c3 == 0;
      break;
    case CompareOp::kNe:
      cres = c3 != 0;
      break;
    case CompareOp::kLt:
      cres = c3 < 0;
      break;
    case CompareOp::kLe:
      cres = c3 <= 0;
      break;
    case CompareOp::kGt:
      cres = c3 > 0;
      break;
    case CompareOp::kGe:
      cres = c3 >= 0;
      break;
  }
  const Value concrete_result(cres);

  if (l.kind == SymKind::kConcrete && r.kind == SymKind::kConcrete) {
    return MakeConcrete(concrete_result);
  }
  if (l.kind == SymKind::kPredictRef && r.kind == SymKind::kConcrete) {
    RAIN_ASSIGN_OR_RETURN(const double k, r.concrete.ToNumeric());
    return ComparePredictToConst(l, expr.cmp, static_cast<int64_t>(k),
                                 concrete_result, ctx);
  }
  if (l.kind == SymKind::kConcrete && r.kind == SymKind::kPredictRef) {
    RAIN_ASSIGN_OR_RETURN(const double k, l.concrete.ToNumeric());
    return ComparePredictToConst(r, FlipCompare(expr.cmp), static_cast<int64_t>(k),
                                 concrete_result, ctx);
  }
  if (l.kind == SymKind::kPredictRef && r.kind == SymKind::kPredictRef) {
    return ComparePredictToPredict(l, expr.cmp, r, concrete_result, ctx);
  }
  return Status::Unimplemented(
      "comparisons over derived model-dependent expressions are not supported "
      "(see Appendix B of the paper): " +
      expr.ToString());
}

Result<SymValue> SymbolicEval(const Expr& expr, SymContext* ctx) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
    case ExprKind::kLike: {
      EvalContext ec;
      ec.values = ctx->values;
      ec.lineage = ctx->lineage;
      ec.predictions = ctx->predictions;
      RAIN_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, ec));
      return MakeConcrete(std::move(v));
    }
    case ExprKind::kPredict: {
      RAIN_CHECK(expr.predict_alias_id >= 0) << "unbound predict()";
      const RowLineageEntry* entry = nullptr;
      for (const RowLineageEntry& e : *ctx->lineage) {
        if (e.alias_id == expr.predict_alias_id) {
          entry = &e;
          break;
        }
      }
      if (entry == nullptr) {
        return Status::Internal("row lineage lacks alias for predict()");
      }
      SymValue s;
      s.kind = SymKind::kPredictRef;
      s.pred_table = entry->table_id;
      s.pred_row = entry->row;
      s.pred_classes = ctx->predictions->NumClasses(entry->table_id);
      s.concrete = Value(static_cast<int64_t>(
          ctx->predictions->PredictedClass(entry->table_id, entry->row)));
      return s;
    }
    case ExprKind::kCompare:
      return EvalCompareSym(expr, ctx);
    case ExprKind::kLogical: {
      if (expr.logic == LogicalOp::kNot) {
        RAIN_ASSIGN_OR_RETURN(SymValue c, SymbolicEval(*expr.children[0], ctx));
        if (c.kind == SymKind::kConcrete) {
          RAIN_ASSIGN_OR_RETURN(const bool b, c.concrete.ToBool());
          return MakeConcrete(Value(!b));
        }
        RAIN_ASSIGN_OR_RETURN(const PolyId p, ToBoolPoly(c, ctx));
        SymValue out;
        out.kind = SymKind::kBoolPoly;
        RAIN_ASSIGN_OR_RETURN(const bool cb, c.concrete.ToBool());
        out.concrete = Value(!cb);
        out.poly = ctx->arena->Not(p);
        return out;
      }
      RAIN_ASSIGN_OR_RETURN(SymValue l, SymbolicEval(*expr.children[0], ctx));
      RAIN_ASSIGN_OR_RETURN(SymValue r, SymbolicEval(*expr.children[1], ctx));
      RAIN_ASSIGN_OR_RETURN(const bool lb, l.concrete.ToBool());
      RAIN_ASSIGN_OR_RETURN(const bool rb, r.concrete.ToBool());
      const bool cb = expr.logic == LogicalOp::kAnd ? (lb && rb) : (lb || rb);
      if (l.kind == SymKind::kConcrete && r.kind == SymKind::kConcrete) {
        return MakeConcrete(Value(cb));
      }
      RAIN_ASSIGN_OR_RETURN(const PolyId lp, ToBoolPoly(l, ctx));
      RAIN_ASSIGN_OR_RETURN(const PolyId rp, ToBoolPoly(r, ctx));
      SymValue out;
      out.kind = SymKind::kBoolPoly;
      out.concrete = Value(cb);
      out.poly = expr.logic == LogicalOp::kAnd ? ctx->arena->And({lp, rp})
                                               : ctx->arena->Or({lp, rp});
      return out;
    }
    case ExprKind::kArith: {
      RAIN_ASSIGN_OR_RETURN(SymValue l, SymbolicEval(*expr.children[0], ctx));
      RAIN_ASSIGN_OR_RETURN(SymValue r, SymbolicEval(*expr.children[1], ctx));
      RAIN_ASSIGN_OR_RETURN(const double ld, l.concrete.ToNumeric());
      RAIN_ASSIGN_OR_RETURN(const double rd, r.concrete.ToNumeric());
      double cres = 0.0;
      switch (expr.arith) {
        case ArithOp::kAdd:
          cres = ld + rd;
          break;
        case ArithOp::kSub:
          cres = ld - rd;
          break;
        case ArithOp::kMul:
          cres = ld * rd;
          break;
        case ArithOp::kDiv:
          if (rd == 0.0) return Status::InvalidArgument("division by zero");
          cres = ld / rd;
          break;
      }
      if (l.kind == SymKind::kConcrete && r.kind == SymKind::kConcrete) {
        return MakeConcrete(Value(cres));
      }
      RAIN_ASSIGN_OR_RETURN(const PolyId lp, ToNumPoly(l, ctx));
      RAIN_ASSIGN_OR_RETURN(const PolyId rp, ToNumPoly(r, ctx));
      SymValue out;
      out.kind = SymKind::kNumPoly;
      out.concrete = Value(cres);
      switch (expr.arith) {
        case ArithOp::kAdd:
          out.poly = ctx->arena->Add({lp, rp});
          break;
        case ArithOp::kSub:
          out.poly = ctx->arena->Add({lp, ctx->arena->Mul({ctx->arena->Const(-1.0), rp})});
          break;
        case ArithOp::kMul:
          out.poly = ctx->arena->Mul({lp, rp});
          break;
        case ArithOp::kDiv:
          out.poly = ctx->arena->Div(lp, rp);
          break;
      }
      return out;
    }
  }
  return Status::Internal("unreachable");
}

/// Flattens a conjunctive predicate into its top-level conjuncts.
void FlattenConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind == ExprKind::kLogical && expr->logic == LogicalOp::kAnd) {
    FlattenConjuncts(expr->children[0], out);
    FlattenConjuncts(expr->children[1], out);
    return;
  }
  out->push_back(expr);
}

/// String key for hash-join buckets / group-by maps.
std::string EncodeKey(const std::vector<Value>& vals) {
  std::string key;
  for (const Value& v : vals) {
    key += DataTypeName(v.type());
    key += ':';
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

}  // namespace

Executor::Executor(const Catalog* catalog, const PredictionStore* predictions,
                   PolyArena* arena)
    : catalog_(catalog), predictions_(predictions), arena_(arena) {
  RAIN_CHECK(catalog_ != nullptr);
}

Status Executor::CollectAliases(const PlanPtr& plan) {
  if (plan->kind == PlanKind::kScan) {
    const Catalog::Entry* entry = catalog_->Find(plan->table_name);
    if (entry == nullptr) {
      return Status::NotFound("table '" + plan->table_name + "' not in catalog");
    }
    if (alias_ids_.count(plan->alias) != 0) {
      return Status::InvalidArgument("duplicate alias '" + plan->alias + "'");
    }
    const int id = static_cast<int>(alias_tables_.size());
    alias_ids_[plan->alias] = id;
    alias_tables_.push_back(entry->table_id);
  }
  for (const PlanPtr& c : plan->children) RAIN_RETURN_NOT_OK(CollectAliases(c));
  return Status::OK();
}

Result<ExecResult> Executor::Run(const PlanPtr& plan, const ExecOptions& options) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  if (options.debug_mode && arena_ == nullptr) {
    return Status::InvalidArgument("debug mode requires a PolyArena");
  }
  alias_ids_.clear();
  alias_tables_.clear();
  RAIN_RETURN_NOT_OK(CollectAliases(plan));

  // Peel Sort/Limit wrappers off the root so they can also apply to
  // aggregate results (whose agg polynomials must be permuted along).
  std::vector<const PlanNode*> wrappers;
  const PlanPtr* core = &plan;
  while ((*core)->kind == PlanKind::kSort || (*core)->kind == PlanKind::kLimit) {
    wrappers.push_back(core->get());
    core = &(*core)->children[0];
  }

  ExecResult result;
  if ((*core)->kind == PlanKind::kAggregate) {
    RAIN_ASSIGN_OR_RETURN(ExecTable input,
                          RunNode((*core)->children[0], options.debug_mode));
    RAIN_ASSIGN_OR_RETURN(result,
                          RunAggregate(**core, std::move(input), options.debug_mode));
  } else {
    RAIN_ASSIGN_OR_RETURN(result.table, RunNode(*core, options.debug_mode));
  }
  for (auto it = wrappers.rbegin(); it != wrappers.rend(); ++it) {
    RAIN_RETURN_NOT_OK(ApplyWrapper(**it, options.debug_mode, &result));
  }
  return result;
}

namespace {

/// Sorts an ExecTable in place by the (bound) key expressions; the
/// optional agg-poly rows are permuted alongside.
Status SortExecTable(const PlanNode& node, const std::vector<ExprPtr>& keys,
                     const PredictionStore* predictions, ExecTable* table,
                     std::vector<std::vector<PolyId>>* agg_polys) {
  ExecTable& t = *table;
  std::vector<std::vector<Value>> key_vals(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    key_vals[r].resize(keys.size());
    for (size_t k = 0; k < keys.size(); ++k) {
      EvalContext ec;
      ec.values = &t.rows[r];
      ec.lineage = &t.lineage[r];
      ec.predictions = predictions;
      RAIN_ASSIGN_OR_RETURN(key_vals[r][k], EvalExpr(*keys[k], ec));
    }
  }
  std::vector<size_t> perm(t.num_rows());
  std::iota(perm.begin(), perm.end(), size_t{0});
  Status cmp_status;
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      auto c = key_vals[a][k].Compare(key_vals[b][k]);
      if (!c.ok()) {
        cmp_status = c.status();
        return false;
      }
      if (*c != 0) return node.sort_ascending[k] ? *c < 0 : *c > 0;
    }
    return false;
  });
  RAIN_RETURN_NOT_OK(cmp_status);
  auto permute = [&perm](auto& vec) {
    auto copy = vec;
    for (size_t i = 0; i < perm.size(); ++i) vec[i] = std::move(copy[perm[i]]);
  };
  permute(t.rows);
  permute(t.concrete);
  permute(t.lineage);
  if (!t.cond.empty()) permute(t.cond);
  if (agg_polys != nullptr && !agg_polys->empty()) permute(*agg_polys);
  return Status::OK();
}

Status CheckSortKeys(const PlanNode& node) {
  for (const ExprPtr& e : node.exprs) {
    if (e->IsModelDependent()) {
      return Status::Unimplemented(
          "ORDER BY over model predictions is not supported (candidate rows "
          "have no single prediction to order by)");
    }
  }
  return Status::OK();
}

}  // namespace

Status Executor::ApplyWrapper(const PlanNode& node, bool debug, ExecResult* result) {
  ExecTable& t = result->table;
  if (node.kind == PlanKind::kSort) {
    RAIN_RETURN_NOT_OK(CheckSortKeys(node));
    std::vector<ExprPtr> keys(node.exprs.size());
    for (size_t i = 0; i < node.exprs.size(); ++i) {
      RAIN_ASSIGN_OR_RETURN(keys[i], BindExpr(node.exprs[i], t.schema, alias_ids_));
    }
    return SortExecTable(node, keys, predictions_, &t, &result->agg_polys);
  }

  RAIN_CHECK(node.kind == PlanKind::kLimit);
  if (node.limit < 0) return Status::InvalidArgument("negative LIMIT");
  const size_t n = static_cast<size_t>(node.limit);
  if (debug && t.NumConcrete() != t.num_rows() && n < t.num_rows()) {
    return Status::Unimplemented(
        "LIMIT over provenance with candidate rows is ambiguous; run the "
        "query without debug mode or complain about the unlimited result");
  }
  if (n < t.num_rows()) {
    t.rows.resize(n);
    t.concrete.resize(n);
    t.lineage.resize(n);
    if (!t.cond.empty()) t.cond.resize(n);
    if (!result->agg_polys.empty() && result->agg_polys.size() > n) {
      result->agg_polys.resize(n);
    }
  }
  return Status::OK();
}

Result<ExecTable> Executor::RunNode(const PlanPtr& plan, bool debug) {
  switch (plan->kind) {
    case PlanKind::kScan:
      return RunScan(*plan, debug);
    case PlanKind::kFilter: {
      RAIN_ASSIGN_OR_RETURN(ExecTable input, RunNode(plan->children[0], debug));
      return RunFilter(*plan, std::move(input), debug);
    }
    case PlanKind::kJoin: {
      RAIN_ASSIGN_OR_RETURN(ExecTable left, RunNode(plan->children[0], debug));
      RAIN_ASSIGN_OR_RETURN(ExecTable right, RunNode(plan->children[1], debug));
      return RunJoin(*plan, std::move(left), std::move(right), debug);
    }
    case PlanKind::kProject: {
      RAIN_ASSIGN_OR_RETURN(ExecTable input, RunNode(plan->children[0], debug));
      return RunProject(*plan, std::move(input), debug);
    }
    case PlanKind::kAggregate:
      return Status::InvalidArgument(
          "aggregates may only appear at the root of a plan");
    case PlanKind::kSort: {
      // Mid-plan sort (the planner places ORDER BY below a projection so
      // keys may reference non-projected columns).
      RAIN_ASSIGN_OR_RETURN(ExecTable input, RunNode(plan->children[0], debug));
      RAIN_RETURN_NOT_OK(CheckSortKeys(*plan));
      std::vector<ExprPtr> keys(plan->exprs.size());
      for (size_t i = 0; i < plan->exprs.size(); ++i) {
        RAIN_ASSIGN_OR_RETURN(keys[i],
                              BindExpr(plan->exprs[i], input.schema, alias_ids_));
      }
      RAIN_RETURN_NOT_OK(
          SortExecTable(*plan, keys, predictions_, &input, nullptr));
      return input;
    }
    case PlanKind::kLimit:
      return Status::InvalidArgument("LIMIT may only appear at the root of a plan");
  }
  return Status::Internal("unreachable");
}

Result<ExecTable> Executor::RunScan(const PlanNode& node, bool debug) {
  const Catalog::Entry* entry = catalog_->Find(node.table_name);
  RAIN_CHECK(entry != nullptr);
  const int alias_id = alias_ids_.at(node.alias);

  ExecTable out;
  // Qualify the schema with the scan alias so self-joins disambiguate.
  for (const Field& f : entry->table.schema().fields()) {
    Field qf = f;
    qf.qualifier = node.alias;
    out.schema.AddField(std::move(qf));
  }
  const size_t n = entry->table.num_rows();
  out.rows.reserve(n);
  out.cond.reserve(n);
  out.concrete.assign(n, 1);
  out.lineage.reserve(n);
  const PolyId true_id = debug ? arena_->True() : kInvalidPoly;
  for (size_t r = 0; r < n; ++r) {
    out.rows.push_back(entry->table.GetRow(r));
    out.cond.push_back(true_id);
    out.lineage.push_back(
        {RowLineageEntry{alias_id, entry->table_id, static_cast<int64_t>(r)}});
  }
  return out;
}

Result<ExecTable> Executor::RunFilter(const PlanNode& node, ExecTable input,
                                      bool debug) {
  RAIN_ASSIGN_OR_RETURN(const ExprPtr pred,
                        BindExpr(node.predicate, input.schema, alias_ids_));

  ExecTable out;
  out.schema = input.schema;
  const bool model_dep = pred->IsModelDependent();

  for (size_t r = 0; r < input.num_rows(); ++r) {
    if (!model_dep || !debug) {
      EvalContext ec;
      ec.values = &input.rows[r];
      ec.lineage = &input.lineage[r];
      ec.predictions = predictions_;
      RAIN_ASSIGN_OR_RETURN(const Value v, EvalExpr(*pred, ec));
      RAIN_ASSIGN_OR_RETURN(const bool keep, v.ToBool());
      if (!keep) continue;
      out.rows.push_back(std::move(input.rows[r]));
      out.cond.push_back(input.cond[r]);
      out.concrete.push_back(input.concrete[r]);
      out.lineage.push_back(std::move(input.lineage[r]));
      continue;
    }
    // Debug + model-dependent: keep candidates with updated conditions.
    SymContext sc;
    sc.arena = arena_;
    sc.predictions = predictions_;
    sc.values = &input.rows[r];
    sc.lineage = &input.lineage[r];
    RAIN_ASSIGN_OR_RETURN(SymValue sym, SymbolicEval(*pred, &sc));
    RAIN_ASSIGN_OR_RETURN(const PolyId p, ToBoolPoly(sym, &sc));
    const PolyId new_cond = arena_->And({input.cond[r], p});
    if (arena_->IsConst(new_cond) && arena_->ConstValue(new_cond) == 0.0) continue;
    RAIN_ASSIGN_OR_RETURN(const bool concrete_pass, sym.concrete.ToBool());
    out.rows.push_back(std::move(input.rows[r]));
    out.cond.push_back(new_cond);
    out.concrete.push_back(input.concrete[r] && concrete_pass ? 1 : 0);
    out.lineage.push_back(std::move(input.lineage[r]));
  }
  return out;
}

Result<ExecTable> Executor::RunJoin(const PlanNode& node, ExecTable left,
                                    ExecTable right, bool debug) {
  ExecTable out;
  out.schema = Schema::Concat(left.schema, right.schema);
  RAIN_ASSIGN_OR_RETURN(const ExprPtr pred,
                        BindExpr(node.predicate, out.schema, alias_ids_));

  // Split the predicate into concrete equi-join conjuncts (hashable) and
  // the rest (evaluated per candidate pair, possibly symbolically).
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  const size_t left_fields = left.schema.num_fields();
  std::vector<std::pair<int, int>> hash_keys;  // (left col, right col - offset)
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : conjuncts) {
    bool hashable = false;
    if (c->kind == ExprKind::kCompare && c->cmp == CompareOp::kEq &&
        c->children[0]->kind == ExprKind::kColumnRef &&
        c->children[1]->kind == ExprKind::kColumnRef) {
      const int a = c->children[0]->column_index;
      const int b = c->children[1]->column_index;
      if (a < static_cast<int>(left_fields) && b >= static_cast<int>(left_fields)) {
        hash_keys.emplace_back(a, b - static_cast<int>(left_fields));
        hashable = true;
      } else if (b < static_cast<int>(left_fields) &&
                 a >= static_cast<int>(left_fields)) {
        hash_keys.emplace_back(b, a - static_cast<int>(left_fields));
        hashable = true;
      }
    }
    if (!hashable) residual.push_back(c);
  }

  // Emits the pair (l, r) if it satisfies the residual conjuncts.
  auto emit_pair = [&](size_t li, size_t ri) -> Status {
    std::vector<Value> vals = left.rows[li];
    vals.insert(vals.end(), right.rows[ri].begin(), right.rows[ri].end());
    RowLineage lin = left.lineage[li];
    lin.insert(lin.end(), right.lineage[ri].begin(), right.lineage[ri].end());

    bool concrete_pass = true;
    std::vector<PolyId> cond_parts;
    if (debug) {
      cond_parts.push_back(left.cond[li]);
      cond_parts.push_back(right.cond[ri]);
    }
    for (const ExprPtr& c : residual) {
      if (!debug || !c->IsModelDependent()) {
        EvalContext ec;
        ec.values = &vals;
        ec.lineage = &lin;
        ec.predictions = predictions_;
        RAIN_ASSIGN_OR_RETURN(const Value v, EvalExpr(*c, ec));
        RAIN_ASSIGN_OR_RETURN(const bool pass, v.ToBool());
        if (!pass) return Status::OK();  // fails concretely for all predictions
        continue;
      }
      SymContext sc;
      sc.arena = arena_;
      sc.predictions = predictions_;
      sc.values = &vals;
      sc.lineage = &lin;
      RAIN_ASSIGN_OR_RETURN(SymValue sym, SymbolicEval(*c, &sc));
      RAIN_ASSIGN_OR_RETURN(const PolyId p, ToBoolPoly(sym, &sc));
      cond_parts.push_back(p);
      RAIN_ASSIGN_OR_RETURN(const bool pass, sym.concrete.ToBool());
      concrete_pass = concrete_pass && pass;
    }
    PolyId cond = kInvalidPoly;
    if (debug) {
      cond = arena_->And(std::move(cond_parts));
      if (arena_->IsConst(cond) && arena_->ConstValue(cond) == 0.0) {
        return Status::OK();
      }
    } else if (!concrete_pass) {
      return Status::OK();
    }
    out.rows.push_back(std::move(vals));
    out.cond.push_back(cond);
    out.concrete.push_back(left.concrete[li] && right.concrete[ri] && concrete_pass
                               ? 1
                               : 0);
    out.lineage.push_back(std::move(lin));
    return Status::OK();
  };

  if (!hash_keys.empty()) {
    // Hash join on the concrete equi keys.
    std::unordered_map<std::string, std::vector<size_t>> buckets;
    std::vector<Value> key_vals(hash_keys.size());
    for (size_t ri = 0; ri < right.num_rows(); ++ri) {
      for (size_t k = 0; k < hash_keys.size(); ++k) {
        key_vals[k] = right.rows[ri][hash_keys[k].second];
      }
      buckets[EncodeKey(key_vals)].push_back(ri);
    }
    for (size_t li = 0; li < left.num_rows(); ++li) {
      for (size_t k = 0; k < hash_keys.size(); ++k) {
        key_vals[k] = left.rows[li][hash_keys[k].first];
      }
      auto it = buckets.find(EncodeKey(key_vals));
      if (it == buckets.end()) continue;
      for (size_t ri : it->second) RAIN_RETURN_NOT_OK(emit_pair(li, ri));
    }
  } else {
    for (size_t li = 0; li < left.num_rows(); ++li) {
      for (size_t ri = 0; ri < right.num_rows(); ++ri) {
        RAIN_RETURN_NOT_OK(emit_pair(li, ri));
      }
    }
  }
  return out;
}

Result<ExecTable> Executor::RunProject(const PlanNode& node, ExecTable input,
                                       bool debug) {
  if (node.exprs.size() != node.names.size()) {
    return Status::InvalidArgument("projection names/exprs arity mismatch");
  }
  std::vector<ExprPtr> bound(node.exprs.size());
  for (size_t i = 0; i < node.exprs.size(); ++i) {
    RAIN_ASSIGN_OR_RETURN(bound[i], BindExpr(node.exprs[i], input.schema, alias_ids_));
  }

  ExecTable out;
  out.cond = std::move(input.cond);
  out.concrete = std::move(input.concrete);

  bool schema_set = false;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::vector<Value> vals(bound.size());
    for (size_t i = 0; i < bound.size(); ++i) {
      EvalContext ec;
      ec.values = &input.rows[r];
      ec.lineage = &input.lineage[r];
      ec.predictions = predictions_;
      RAIN_ASSIGN_OR_RETURN(vals[i], EvalExpr(*bound[i], ec));
    }
    if (!schema_set) {
      for (size_t i = 0; i < bound.size(); ++i) {
        out.schema.AddField(Field{node.names[i], vals[i].type(), ""});
      }
      schema_set = true;
    }
    out.rows.push_back(std::move(vals));
    out.lineage.push_back(std::move(input.lineage[r]));
  }
  if (!schema_set) {
    // Empty input: infer types as INT64 (no rows to observe).
    for (const std::string& name : node.names) {
      out.schema.AddField(Field{name, DataType::kInt64, ""});
    }
  }
  (void)debug;
  return out;
}

Result<ExecResult> Executor::RunAggregate(const PlanNode& node, ExecTable input,
                                          bool debug) {
  // Bind group keys and aggregate arguments.
  std::vector<ExprPtr> group_exprs(node.group_by.size());
  int model_group_idx = -1;
  for (size_t i = 0; i < node.group_by.size(); ++i) {
    RAIN_ASSIGN_OR_RETURN(group_exprs[i],
                          BindExpr(node.group_by[i], input.schema, alias_ids_));
    if (group_exprs[i]->IsModelDependent()) {
      if (group_exprs[i]->kind != ExprKind::kPredict) {
        return Status::Unimplemented(
            "model-dependent GROUP BY keys must be bare predict() expressions");
      }
      if (model_group_idx >= 0) {
        return Status::Unimplemented("at most one predict() GROUP BY key supported");
      }
      model_group_idx = static_cast<int>(i);
    }
  }
  std::vector<ExprPtr> agg_args(node.aggs.size());
  for (size_t i = 0; i < node.aggs.size(); ++i) {
    if (node.aggs[i].arg != nullptr) {
      RAIN_ASSIGN_OR_RETURN(agg_args[i],
                            BindExpr(node.aggs[i].arg, input.schema, alias_ids_));
    } else if (node.aggs[i].func != AggFunc::kCount) {
      return Status::InvalidArgument("SUM/AVG require an argument expression");
    }
  }

  // A group member: input row index + membership condition/concreteness.
  struct Member {
    size_t row;
    PolyId cond;
    bool concrete;
  };
  struct Group {
    std::vector<Value> keys;
    std::vector<Member> members;
  };
  std::map<std::string, Group> groups;  // ordered for deterministic output

  for (size_t r = 0; r < input.num_rows(); ++r) {
    // Evaluate concrete group keys.
    std::vector<Value> keys(group_exprs.size());
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      if (static_cast<int>(i) == model_group_idx) continue;
      EvalContext ec;
      ec.values = &input.rows[r];
      ec.lineage = &input.lineage[r];
      ec.predictions = predictions_;
      RAIN_ASSIGN_OR_RETURN(keys[i], EvalExpr(*group_exprs[i], ec));
    }
    if (model_group_idx < 0) {
      groups[EncodeKey(keys)].keys = keys;
      groups[EncodeKey(keys)].members.push_back(
          Member{r, input.cond.empty() ? kInvalidPoly : input.cond[r],
                 input.concrete[r] != 0});
      continue;
    }
    // Model-dependent key: expand the row into one candidate per class.
    const Expr& pe = *group_exprs[model_group_idx];
    const RowLineageEntry* entry = nullptr;
    for (const RowLineageEntry& e : input.lineage[r]) {
      if (e.alias_id == pe.predict_alias_id) {
        entry = &e;
        break;
      }
    }
    if (entry == nullptr) return Status::Internal("missing lineage for group key");
    const int num_classes = predictions_->NumClasses(entry->table_id);
    const int argmax = predictions_->PredictedClass(entry->table_id, entry->row);
    if (!debug) {
      keys[model_group_idx] = Value(static_cast<int64_t>(argmax));
      groups[EncodeKey(keys)].keys = keys;
      groups[EncodeKey(keys)].members.push_back(
          Member{r, kInvalidPoly, input.concrete[r] != 0});
      continue;
    }
    for (int c = 0; c < num_classes; ++c) {
      keys[model_group_idx] = Value(static_cast<int64_t>(c));
      const PolyId vc = arena_->Var(PredVar{entry->table_id, entry->row, c});
      const PolyId cond = arena_->And({input.cond[r], vc});
      if (arena_->IsConst(cond) && arena_->ConstValue(cond) == 0.0) continue;
      Group& g = groups[EncodeKey(keys)];
      g.keys = keys;
      g.members.push_back(Member{r, cond, input.concrete[r] != 0 && c == argmax});
    }
  }

  // Global aggregate (no GROUP BY): exactly one group, even when empty.
  if (group_exprs.empty() && groups.empty()) {
    groups[""] = Group{};
  }

  // Output schema: group columns then aggregate columns.
  ExecResult result;
  result.is_aggregate = true;
  result.num_group_cols = group_exprs.size();
  for (const auto& spec : node.aggs) result.agg_names.push_back(spec.name);

  ExecTable& out = result.table;
  // Infer group column types from any group's keys.
  for (size_t i = 0; i < group_exprs.size(); ++i) {
    DataType t = DataType::kInt64;
    if (!groups.empty()) t = groups.begin()->second.keys[i].type();
    const std::string name =
        i < node.group_names.size() && !node.group_names[i].empty()
            ? node.group_names[i]
            : "group_" + std::to_string(i);
    out.schema.AddField(Field{name, t, ""});
  }
  for (const auto& spec : node.aggs) {
    out.schema.AddField(Field{
        spec.name, spec.func == AggFunc::kCount ? DataType::kInt64 : DataType::kDouble,
        ""});
  }

  for (auto& [key, group] : groups) {
    (void)key;
    std::vector<Value> row_vals = group.keys;
    std::vector<PolyId> polys;
    bool any_concrete = group_exprs.empty();  // global aggregate always exists
    std::vector<PolyId> member_conds;
    for (const Member& m : group.members) {
      if (m.concrete) any_concrete = true;
      if (debug) member_conds.push_back(m.cond);
    }

    for (size_t a = 0; a < node.aggs.size(); ++a) {
      const AggSpec& spec = node.aggs[a];
      // Concrete aggregate over concrete members; polynomial over all
      // candidate members weighted by their conditions.
      double sum_concrete = 0.0;
      int64_t count_concrete = 0;
      std::vector<PolyId> sum_terms;
      std::vector<PolyId> count_terms;
      for (const Member& m : group.members) {
        double arg_num = 1.0;
        PolyId arg_poly = kInvalidPoly;
        if (agg_args[a] != nullptr) {
          SymContext sc;
          sc.arena = arena_;
          sc.predictions = predictions_;
          sc.values = &input.rows[m.row];
          sc.lineage = &input.lineage[m.row];
          if (debug) {
            RAIN_ASSIGN_OR_RETURN(SymValue sym, SymbolicEval(*agg_args[a], &sc));
            RAIN_ASSIGN_OR_RETURN(arg_poly, ToNumPoly(sym, &sc));
            RAIN_ASSIGN_OR_RETURN(arg_num, sym.concrete.ToNumeric());
          } else {
            EvalContext ec;
            ec.values = &input.rows[m.row];
            ec.lineage = &input.lineage[m.row];
            ec.predictions = predictions_;
            RAIN_ASSIGN_OR_RETURN(const Value v, EvalExpr(*agg_args[a], ec));
            RAIN_ASSIGN_OR_RETURN(arg_num, v.ToNumeric());
          }
        }
        if (m.concrete) {
          sum_concrete += arg_num;
          ++count_concrete;
        }
        if (debug) {
          count_terms.push_back(m.cond);
          sum_terms.push_back(agg_args[a] == nullptr
                                  ? m.cond
                                  : arena_->Mul({m.cond, arg_poly}));
        }
      }
      Value cell;
      PolyId poly = kInvalidPoly;
      switch (spec.func) {
        case AggFunc::kCount:
          cell = Value(count_concrete);
          if (debug) poly = arena_->Add(count_terms);
          break;
        case AggFunc::kSum:
          cell = Value(sum_concrete);
          if (debug) poly = arena_->Add(sum_terms);
          break;
        case AggFunc::kAvg: {
          cell = Value(count_concrete > 0
                           ? sum_concrete / static_cast<double>(count_concrete)
                           : 0.0);
          if (debug) {
            const PolyId s = arena_->Add(sum_terms);
            const PolyId c = arena_->Add(count_terms);
            poly = arena_->Div(s, c);
          }
          break;
        }
      }
      row_vals.push_back(cell);
      polys.push_back(poly);
    }

    out.rows.push_back(std::move(row_vals));
    out.concrete.push_back(any_concrete ? 1 : 0);
    out.cond.push_back(debug ? arena_->Or(std::move(member_conds)) : kInvalidPoly);
    out.lineage.emplace_back();  // aggregates end lineage
    result.agg_polys.push_back(std::move(polys));
  }
  // Global aggregates are unconditionally present in the output.
  if (group_exprs.empty() && debug && !out.cond.empty()) {
    out.cond[0] = arena_->True();
  }
  return result;
}

}  // namespace rain
