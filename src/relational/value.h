#ifndef RAIN_RELATIONAL_VALUE_H_
#define RAIN_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace rain {

/// Column data types supported by the engine. NULLs are intentionally not
/// supported (the paper's workloads never produce them; see DESIGN.md
/// non-goals).
enum class DataType : uint8_t { kInt64, kDouble, kString, kBool };

const char* DataTypeName(DataType t);

/// \brief A single scalar value.
///
/// The variant order must match DataType's enumerator order so that
/// `value.index() == static_cast<size_t>(type)`.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(bool b) : v_(b) {}

  DataType type() const { return static_cast<DataType>(v_.index()); }

  bool is_int64() const { return type() == DataType::kInt64; }
  bool is_double() const { return type() == DataType::kDouble; }
  bool is_string() const { return type() == DataType::kString; }
  bool is_bool() const { return type() == DataType::kBool; }

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  bool AsBool() const { return std::get<bool>(v_); }

  /// Numeric widening: int64/double/bool -> double; errors on strings.
  Result<double> ToNumeric() const;
  /// Truthiness: bool as-is, numbers non-zero; errors on strings.
  Result<bool> ToBool() const;

  bool operator==(const Value& o) const { return v_ == o.v_; }

  /// Three-way ordering for same-kind values; numeric kinds compare as
  /// doubles. Returns error for string-vs-number comparisons.
  Result<int> Compare(const Value& o) const;

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string, bool> v_;
};

}  // namespace rain

#endif  // RAIN_RELATIONAL_VALUE_H_
