#ifndef RAIN_RELATIONAL_SCHEMA_H_
#define RAIN_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "relational/value.h"

namespace rain {

/// A named, typed column descriptor. `qualifier` carries the table alias
/// ("U" in "Users U") so bound column references can disambiguate
/// self-joins.
struct Field {
  std::string name;
  DataType type = DataType::kInt64;
  std::string qualifier;  // optional alias qualifier

  bool operator==(const Field& o) const {
    return name == o.name && type == o.type && qualifier == o.qualifier;
  }
};

/// Ordered collection of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// Index of the column named `name` (optionally requiring a matching
  /// qualifier). Returns -1 if absent or ambiguous (>1 match).
  int FindField(const std::string& name, const std::string& qualifier = "") const;

  /// Concatenation (join output schema).
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace rain

#endif  // RAIN_RELATIONAL_SCHEMA_H_
