#include "relational/expression.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace rain {
namespace {

std::shared_ptr<Expr> Make(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

}  // namespace

ExprPtr Expr::Column(std::string name, std::string qualifier) {
  auto e = Make(ExprKind::kColumnRef);
  e->column_name = std::move(name);
  e->qualifier = std::move(qualifier);
  return e;
}

ExprPtr Expr::Lit(Value v) {
  auto e = Make(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = Make(ExprKind::kCompare);
  e->cmp = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::And(ExprPtr l, ExprPtr r) {
  auto e = Make(ExprKind::kLogical);
  e->logic = LogicalOp::kAnd;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Or(ExprPtr l, ExprPtr r) {
  auto e = Make(ExprKind::kLogical);
  e->logic = LogicalOp::kOr;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Not(ExprPtr c) {
  auto e = Make(ExprKind::kLogical);
  e->logic = LogicalOp::kNot;
  e->children = {std::move(c)};
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = Make(ExprKind::kArith);
  e->arith = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Like(ExprPtr text, std::string pattern) {
  auto e = Make(ExprKind::kLike);
  e->like_pattern = std::move(pattern);
  e->children = {std::move(text)};
  return e;
}

ExprPtr Expr::Predict(std::string alias) {
  auto e = Make(ExprKind::kPredict);
  e->predict_alias = std::move(alias);
  return e;
}

bool Expr::IsModelDependent() const {
  if (kind == ExprKind::kPredict) return true;
  for (const ExprPtr& c : children) {
    if (c->IsModelDependent()) return true;
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column_name : qualifier + "." + column_name;
    case ExprKind::kLiteral:
      return literal.is_string() ? "'" + literal.ToString() + "'" : literal.ToString();
    case ExprKind::kCompare: {
      static const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
      return "(" + children[0]->ToString() + " " + ops[static_cast<int>(cmp)] + " " +
             children[1]->ToString() + ")";
    }
    case ExprKind::kLogical:
      if (logic == LogicalOp::kNot) return "NOT " + children[0]->ToString();
      return "(" + children[0]->ToString() +
             (logic == LogicalOp::kAnd ? " AND " : " OR ") + children[1]->ToString() +
             ")";
    case ExprKind::kArith: {
      static const char* ops[] = {"+", "-", "*", "/"};
      return "(" + children[0]->ToString() + " " + ops[static_cast<int>(arith)] + " " +
             children[1]->ToString() + ")";
    }
    case ExprKind::kLike:
      return "(" + children[0]->ToString() + " LIKE '" + like_pattern + "')";
    case ExprKind::kPredict:
      return "predict(" + predict_alias + ")";
  }
  return "?";
}

Result<ExprPtr> BindExpr(const ExprPtr& expr, const Schema& schema,
                         const std::unordered_map<std::string, int>& aliases) {
  auto bound = std::make_shared<Expr>(*expr);
  switch (expr->kind) {
    case ExprKind::kColumnRef: {
      const int idx = schema.FindField(expr->column_name, expr->qualifier);
      if (idx < 0) {
        return Status::NotFound("column '" +
                                (expr->qualifier.empty()
                                     ? expr->column_name
                                     : expr->qualifier + "." + expr->column_name) +
                                "' not found or ambiguous in " + schema.ToString());
      }
      bound->column_index = idx;
      break;
    }
    case ExprKind::kPredict: {
      auto it = aliases.find(expr->predict_alias);
      if (it == aliases.end()) {
        return Status::NotFound("predict() alias '" + expr->predict_alias +
                                "' does not name a table in scope");
      }
      bound->predict_alias_id = it->second;
      break;
    }
    default:
      break;
  }
  for (ExprPtr& child : bound->children) {
    RAIN_ASSIGN_OR_RETURN(child, BindExpr(child, schema, aliases));
  }
  return ExprPtr(std::move(bound));
}

namespace {

Result<Value> EvalCompare(const Expr& expr, const EvalContext& ctx) {
  RAIN_ASSIGN_OR_RETURN(const Value l, EvalExpr(*expr.children[0], ctx));
  RAIN_ASSIGN_OR_RETURN(const Value r, EvalExpr(*expr.children[1], ctx));
  RAIN_ASSIGN_OR_RETURN(const int c, l.Compare(r));
  switch (expr.cmp) {
    case CompareOp::kEq:
      return Value(c == 0);
    case CompareOp::kNe:
      return Value(c != 0);
    case CompareOp::kLt:
      return Value(c < 0);
    case CompareOp::kLe:
      return Value(c <= 0);
    case CompareOp::kGt:
      return Value(c > 0);
    case CompareOp::kGe:
      return Value(c >= 0);
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      if (expr.column_index < 0) return Status::Internal("unbound column reference");
      RAIN_CHECK(ctx.values != nullptr);
      return (*ctx.values)[expr.column_index];
    }
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kCompare:
      return EvalCompare(expr, ctx);
    case ExprKind::kLogical: {
      if (expr.logic == LogicalOp::kNot) {
        RAIN_ASSIGN_OR_RETURN(const Value v, EvalExpr(*expr.children[0], ctx));
        RAIN_ASSIGN_OR_RETURN(const bool b, v.ToBool());
        return Value(!b);
      }
      RAIN_ASSIGN_OR_RETURN(const Value lv, EvalExpr(*expr.children[0], ctx));
      RAIN_ASSIGN_OR_RETURN(const bool l, lv.ToBool());
      // Short-circuit.
      if (expr.logic == LogicalOp::kAnd && !l) return Value(false);
      if (expr.logic == LogicalOp::kOr && l) return Value(true);
      RAIN_ASSIGN_OR_RETURN(const Value rv, EvalExpr(*expr.children[1], ctx));
      RAIN_ASSIGN_OR_RETURN(const bool r, rv.ToBool());
      return Value(r);
    }
    case ExprKind::kArith: {
      RAIN_ASSIGN_OR_RETURN(const Value lv, EvalExpr(*expr.children[0], ctx));
      RAIN_ASSIGN_OR_RETURN(const Value rv, EvalExpr(*expr.children[1], ctx));
      RAIN_ASSIGN_OR_RETURN(const double l, lv.ToNumeric());
      RAIN_ASSIGN_OR_RETURN(const double r, rv.ToNumeric());
      switch (expr.arith) {
        case ArithOp::kAdd:
          return Value(l + r);
        case ArithOp::kSub:
          return Value(l - r);
        case ArithOp::kMul:
          return Value(l * r);
        case ArithOp::kDiv:
          if (r == 0.0) return Status::InvalidArgument("division by zero");
          return Value(l / r);
      }
      return Status::Internal("unreachable");
    }
    case ExprKind::kLike: {
      RAIN_ASSIGN_OR_RETURN(const Value v, EvalExpr(*expr.children[0], ctx));
      if (!v.is_string()) return Status::TypeError("LIKE requires a string operand");
      return Value(LikeMatch(v.AsString(), expr.like_pattern));
    }
    case ExprKind::kPredict: {
      if (expr.predict_alias_id < 0) return Status::Internal("unbound predict()");
      if (ctx.lineage == nullptr || ctx.predictions == nullptr) {
        return Status::Internal("predict() evaluated without lineage/predictions");
      }
      for (const RowLineageEntry& e : *ctx.lineage) {
        if (e.alias_id == expr.predict_alias_id) {
          return Value(
              static_cast<int64_t>(ctx.predictions->PredictedClass(e.table_id, e.row)));
        }
      }
      return Status::Internal("row lineage lacks alias for predict()");
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace rain
