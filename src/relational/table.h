#ifndef RAIN_RELATIONAL_TABLE_H_
#define RAIN_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace rain {

/// \brief A typed column stored as a contiguous vector of its native type.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const;

  void Append(const Value& v);
  void AppendInt64(int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }
  void AppendString(std::string v) { strings_.push_back(std::move(v)); }
  void AppendBool(bool v) { bools_.push_back(v ? 1 : 0); }

  Value Get(size_t row) const;
  int64_t GetInt64(size_t row) const { return ints_[row]; }
  double GetDouble(size_t row) const { return doubles_[row]; }
  const std::string& GetString(size_t row) const { return strings_[row]; }
  bool GetBool(size_t row) const { return bools_[row] != 0; }

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> bools_;
};

/// \brief In-memory columnar table.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }

  /// Appends a full row; arity and types must match the schema.
  Status AppendRow(const std::vector<Value>& row);
  /// Unchecked fast-path append used by operators that construct rows of
  /// known-correct shape.
  void AppendRowUnchecked(const std::vector<Value>& row);

  Value Get(size_t row, size_t col) const { return columns_[col].Get(row); }

  /// Copies row `row` as a Value vector.
  std::vector<Value> GetRow(size_t row) const;

  /// Renders the first `max_rows` rows (debugging aid).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace rain

#endif  // RAIN_RELATIONAL_TABLE_H_
