#include "relational/catalog.h"

namespace rain {

Status Catalog::AddTable(const std::string& name, Table table,
                         std::optional<Dataset> features) {
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  if (features.has_value() && features->size() != table.num_rows()) {
    return Status::InvalidArgument("feature dataset rows (" +
                                   std::to_string(features->size()) +
                                   ") must match table rows (" +
                                   std::to_string(table.num_rows()) + ")");
  }
  Entry e;
  e.table_id = static_cast<int32_t>(entries_.size());
  e.name = name;
  e.table = std::move(table);
  e.features = std::move(features);
  by_name_[name] = entries_.size();
  entries_.push_back(std::move(e));
  return Status::OK();
}

const Catalog::Entry* Catalog::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return &entries_[it->second];
}

const Catalog::Entry* Catalog::FindById(int32_t table_id) const {
  if (table_id < 0 || static_cast<size_t>(table_id) >= entries_.size()) return nullptr;
  return &entries_[table_id];
}

}  // namespace rain
