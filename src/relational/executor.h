#ifndef RAIN_RELATIONAL_EXECUTOR_H_
#define RAIN_RELATIONAL_EXECUTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "provenance/poly.h"
#include "provenance/prediction_store.h"
#include "relational/catalog.h"
#include "relational/plan.h"

namespace rain {

/// \brief Materialized intermediate/output relation with provenance.
///
/// In debug mode the executor keeps *candidate* rows: rows that do not
/// appear in the concrete output but could, under a different model
/// prediction (their existence condition `cond` is a non-constant
/// polynomial). This is what lets Holistic reason about "why-not" —
/// e.g. rows a COUNT complaint wants to add. `concrete[r]` marks rows
/// that are really in the output under the current predictions.
struct ExecTable {
  Schema schema;
  std::vector<std::vector<Value>> rows;
  /// Existence condition per row (only meaningful in debug mode).
  std::vector<PolyId> cond;
  /// 1 iff the row is in the real (non-debug) output.
  std::vector<uint8_t> concrete;
  /// Base-row lineage per row (feeds predict()).
  std::vector<RowLineage> lineage;

  size_t num_rows() const { return rows.size(); }
  size_t NumConcrete() const;
  /// Converts the concrete rows to a columnar Table.
  Table ToTable() const;
};

struct ExecOptions {
  /// Captures provenance polynomials and candidate rows when true.
  bool debug_mode = false;
};

/// Result of executing a plan.
struct ExecResult {
  ExecTable table;
  bool is_aggregate = false;
  size_t num_group_cols = 0;
  /// Debug mode, aggregates only: value polynomial of each aggregate cell,
  /// indexed [output_row][agg_index].
  std::vector<std::vector<PolyId>> agg_polys;
  std::vector<std::string> agg_names;
};

/// \brief SPJA executor with optional provenance capture.
///
/// Non-debug execution computes the ordinary query answer, resolving
/// predict() through the PredictionStore (argmax class). Debug execution
/// additionally builds, for every output row, its existence condition
/// over prediction variables, and for every aggregate cell its value
/// polynomial — the provenance polynomials of Sections 5.2/5.3.
class Executor {
 public:
  /// `arena` may be null when only non-debug execution is needed. None of
  /// the pointers are owned.
  Executor(const Catalog* catalog, const PredictionStore* predictions,
           PolyArena* arena);

  Result<ExecResult> Run(const PlanPtr& plan, const ExecOptions& options);

  /// Alias name -> scan instance id discovered by the last Run.
  const std::unordered_map<std::string, int>& alias_ids() const { return alias_ids_; }
  /// Scan instance id -> catalog table id.
  const std::vector<int32_t>& alias_tables() const { return alias_tables_; }

 private:
  Status CollectAliases(const PlanPtr& plan);
  Result<ExecTable> RunNode(const PlanPtr& plan, bool debug);
  Result<ExecTable> RunScan(const PlanNode& node, bool debug);
  Result<ExecTable> RunFilter(const PlanNode& node, ExecTable input, bool debug);
  Result<ExecTable> RunJoin(const PlanNode& node, ExecTable left, ExecTable right,
                            bool debug);
  Result<ExecTable> RunProject(const PlanNode& node, ExecTable input, bool debug);
  Result<ExecResult> RunAggregate(const PlanNode& node, ExecTable input, bool debug);
  /// Applies a Sort/Limit wrapper to a materialized result (permutes or
  /// truncates rows together with their provenance and aggregate polys).
  Status ApplyWrapper(const PlanNode& node, bool debug, ExecResult* result);

  const Catalog* catalog_;
  const PredictionStore* predictions_;
  PolyArena* arena_;

  std::unordered_map<std::string, int> alias_ids_;
  std::vector<int32_t> alias_tables_;
};

}  // namespace rain

#endif  // RAIN_RELATIONAL_EXECUTOR_H_
