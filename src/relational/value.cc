#include "relational/value.h"

#include "common/string_util.h"

namespace rain {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kBool:
      return "BOOL";
  }
  return "?";
}

Result<double> Value::ToNumeric() const {
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(AsInt64());
    case DataType::kDouble:
      return AsDouble();
    case DataType::kBool:
      return AsBool() ? 1.0 : 0.0;
    case DataType::kString:
      return Status::TypeError("cannot use string value '" + AsString() +
                               "' as a number");
  }
  return Status::Internal("unreachable");
}

Result<bool> Value::ToBool() const {
  switch (type()) {
    case DataType::kBool:
      return AsBool();
    case DataType::kInt64:
      return AsInt64() != 0;
    case DataType::kDouble:
      return AsDouble() != 0.0;
    case DataType::kString:
      return Status::TypeError("cannot use string value '" + AsString() +
                               "' as a boolean");
  }
  return Status::Internal("unreachable");
}

Result<int> Value::Compare(const Value& o) const {
  if (is_string() || o.is_string()) {
    if (!(is_string() && o.is_string())) {
      return Status::TypeError("cannot compare string with non-string");
    }
    const int c = AsString().compare(o.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  RAIN_ASSIGN_OR_RETURN(const double a, ToNumeric());
  RAIN_ASSIGN_OR_RETURN(const double b, o.ToNumeric());
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(AsInt64()));
    case DataType::kDouble:
      return StrFormat("%g", AsDouble());
    case DataType::kString:
      return AsString();
    case DataType::kBool:
      return AsBool() ? "true" : "false";
  }
  return "?";
}

}  // namespace rain
