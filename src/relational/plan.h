#ifndef RAIN_RELATIONAL_PLAN_H_
#define RAIN_RELATIONAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/expression.h"

namespace rain {

struct PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

enum class PlanKind : uint8_t {
  kScan,
  kFilter,
  kJoin,
  kProject,
  kAggregate,
  kSort,
  kLimit,
};

enum class AggFunc : uint8_t { kCount, kSum, kAvg };

/// One aggregate output: func(arg) AS name. `arg` is null for COUNT(*).
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ExprPtr arg;  // nullptr for COUNT(*)
  std::string name;
};

/// \brief Logical SPJA plan node (immutable tree).
///
/// Supported shapes mirror the paper's Section 3.1 query class: scans,
/// filters with arbitrary boolean predicates (including model
/// predictions), inner joins, projections, and GROUP BY aggregation with
/// COUNT/SUM/AVG. Model predictions may appear in filters, join
/// conditions, aggregate arguments and GROUP BY keys.
struct PlanNode {
  PlanKind kind = PlanKind::kScan;

  // kScan
  std::string table_name;
  std::string alias;  // defaults to table_name

  // kFilter / kJoin
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;

  // kAggregate
  std::vector<ExprPtr> group_by;
  std::vector<std::string> group_names;
  std::vector<AggSpec> aggs;

  // kSort: keys are `exprs`; ascending flags align with them.
  std::vector<bool> sort_ascending;

  // kLimit
  int64_t limit = 0;

  std::vector<PlanPtr> children;

  /// --- builders ---
  static PlanPtr Scan(std::string table_name, std::string alias = "");
  static PlanPtr Filter(PlanPtr child, ExprPtr predicate);
  static PlanPtr Join(PlanPtr left, PlanPtr right, ExprPtr predicate);
  static PlanPtr Project(PlanPtr child, std::vector<ExprPtr> exprs,
                         std::vector<std::string> names);
  static PlanPtr Aggregate(PlanPtr child, std::vector<ExprPtr> group_by,
                           std::vector<std::string> group_names,
                           std::vector<AggSpec> aggs);
  /// ORDER BY the given (model-independent) key expressions.
  static PlanPtr Sort(PlanPtr child, std::vector<ExprPtr> keys,
                      std::vector<bool> ascending);
  /// Keeps the first `n` output rows.
  static PlanPtr Limit(PlanPtr child, int64_t n);

  std::string ToString(int indent = 0) const;
};

}  // namespace rain

#endif  // RAIN_RELATIONAL_PLAN_H_
