#ifndef RAIN_RELATIONAL_CATALOG_H_
#define RAIN_RELATIONAL_CATALOG_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "relational/table.h"

namespace rain {

/// \brief Named base tables plus, for queried tables, the row-aligned
/// feature matrix fed to `M.predict(alias)`.
///
/// The i-th row of `features` is the model input for the i-th table row
/// (the paper's `M.predict(U.*)`: the full profile feeds the model while
/// the relational columns carry ids/attributes used by predicates).
class Catalog {
 public:
  struct Entry {
    int32_t table_id = -1;
    std::string name;
    Table table;
    /// Present iff the table can appear inside predict(). The Dataset's
    /// labels are ground-truth (used only by experiment harnesses, never
    /// by the engine).
    std::optional<Dataset> features;
  };

  /// Registers a table; fails on duplicate names or when `features` row
  /// count mismatches the table.
  Status AddTable(const std::string& name, Table table,
                  std::optional<Dataset> features = std::nullopt);

  const Entry* Find(const std::string& name) const;
  const Entry* FindById(int32_t table_id) const;
  size_t num_tables() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace rain

#endif  // RAIN_RELATIONAL_CATALOG_H_
