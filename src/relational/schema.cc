#include "relational/schema.h"

namespace rain {

int Schema::FindField(const std::string& name, const std::string& qualifier) const {
  int found = -1;
  for (size_t i = 0; i < fields_.size(); ++i) {
    const Field& f = fields_[i];
    if (f.name != name) continue;
    if (!qualifier.empty() && f.qualifier != qualifier) continue;
    if (found >= 0) return -1;  // ambiguous
    found = static_cast<int>(i);
  }
  return found;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Field> fields = left.fields();
  for (const Field& f : right.fields()) fields.push_back(f);
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    if (!fields_[i].qualifier.empty()) out += fields_[i].qualifier + ".";
    out += fields_[i].name;
    out += ":";
    out += DataTypeName(fields_[i].type);
  }
  return out + ")";
}

}  // namespace rain
