#ifndef RAIN_RELATIONAL_EXPRESSION_H_
#define RAIN_RELATIONAL_EXPRESSION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "provenance/prediction_store.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace rain {

class Expr;
/// Expressions are immutable and shared.
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind : uint8_t {
  kColumnRef,  // table column, by name (+ optional alias qualifier)
  kLiteral,    // constant value
  kCompare,    // =, <>, <, <=, >, >=
  kLogical,    // AND, OR, NOT
  kArith,      // +, -, *, /
  kLike,       // string LIKE pattern
  kPredict,    // M.predict(alias) -- model inference on a scanned table
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp : uint8_t { kAnd, kOr, kNot };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

/// \brief Scalar expression tree node.
///
/// Expressions are built unbound (column references by name, Predict by
/// alias name) and bound against an operator's input schema with
/// `BindExpr`, which fills `column_index` / `predict_alias_id`.
class Expr {
 public:
  ExprKind kind;

  // kColumnRef
  std::string column_name;
  std::string qualifier;
  int column_index = -1;  // bound position in the input schema

  // kLiteral
  Value literal;

  // kCompare / kLogical / kArith
  CompareOp cmp = CompareOp::kEq;
  LogicalOp logic = LogicalOp::kAnd;
  ArithOp arith = ArithOp::kAdd;

  // kLike
  std::string like_pattern;

  // kPredict
  std::string predict_alias;   // FROM-clause alias whose features feed the model
  int predict_alias_id = -1;   // bound scan-instance id

  std::vector<ExprPtr> children;

  /// --- factories ---
  static ExprPtr Column(std::string name, std::string qualifier = "");
  static ExprPtr Lit(Value v);
  static ExprPtr LitInt(int64_t v) { return Lit(Value(v)); }
  static ExprPtr LitDouble(double v) { return Lit(Value(v)); }
  static ExprPtr LitString(std::string v) { return Lit(Value(std::move(v))); }
  static ExprPtr LitBool(bool v) { return Lit(Value(v)); }
  static ExprPtr Compare(CompareOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Eq(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kEq, l, r); }
  static ExprPtr And(ExprPtr l, ExprPtr r);
  static ExprPtr Or(ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr c);
  static ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Like(ExprPtr text, std::string pattern);
  /// Model inference over the features of the scan aliased `alias`.
  static ExprPtr Predict(std::string alias);

  /// True if any Predict node occurs in the subtree.
  bool IsModelDependent() const;

  std::string ToString() const;
};

/// Lineage of one intermediate row: which base-table row each scan alias
/// contributed. Predict expressions resolve through this.
struct RowLineageEntry {
  int32_t alias_id = -1;
  int32_t table_id = -1;
  int64_t row = -1;
};
using RowLineage = std::vector<RowLineageEntry>;

/// Evaluation context for one (materialized) row.
struct EvalContext {
  const std::vector<Value>* values = nullptr;  // row values, schema order
  const RowLineage* lineage = nullptr;         // may be null when no Predict
  const PredictionStore* predictions = nullptr;
};

/// Binds column references and Predict aliases in `expr` against `schema`
/// and the alias table (alias name -> alias id). Returns a new bound tree.
Result<ExprPtr> BindExpr(const ExprPtr& expr, const Schema& schema,
                         const std::unordered_map<std::string, int>& aliases);

/// Concrete evaluation: Predict yields the current argmax prediction as
/// an INT64. Requires a bound expression.
Result<Value> EvalExpr(const Expr& expr, const EvalContext& ctx);

}  // namespace rain

#endif  // RAIN_RELATIONAL_EXPRESSION_H_
