#include "relational/plan.h"

#include "common/string_util.h"

namespace rain {
namespace {

std::shared_ptr<PlanNode> Make(PlanKind kind) {
  auto n = std::make_shared<PlanNode>();
  n->kind = kind;
  return n;
}

}  // namespace

PlanPtr PlanNode::Scan(std::string table_name, std::string alias) {
  auto n = Make(PlanKind::kScan);
  n->alias = alias.empty() ? table_name : std::move(alias);
  n->table_name = std::move(table_name);
  return n;
}

PlanPtr PlanNode::Filter(PlanPtr child, ExprPtr predicate) {
  auto n = Make(PlanKind::kFilter);
  n->predicate = std::move(predicate);
  n->children = {std::move(child)};
  return n;
}

PlanPtr PlanNode::Join(PlanPtr left, PlanPtr right, ExprPtr predicate) {
  auto n = Make(PlanKind::kJoin);
  n->predicate = std::move(predicate);
  n->children = {std::move(left), std::move(right)};
  return n;
}

PlanPtr PlanNode::Project(PlanPtr child, std::vector<ExprPtr> exprs,
                          std::vector<std::string> names) {
  auto n = Make(PlanKind::kProject);
  n->exprs = std::move(exprs);
  n->names = std::move(names);
  n->children = {std::move(child)};
  return n;
}

PlanPtr PlanNode::Aggregate(PlanPtr child, std::vector<ExprPtr> group_by,
                            std::vector<std::string> group_names,
                            std::vector<AggSpec> aggs) {
  auto n = Make(PlanKind::kAggregate);
  n->group_by = std::move(group_by);
  n->group_names = std::move(group_names);
  n->aggs = std::move(aggs);
  n->children = {std::move(child)};
  return n;
}

PlanPtr PlanNode::Sort(PlanPtr child, std::vector<ExprPtr> keys,
                       std::vector<bool> ascending) {
  auto n = Make(PlanKind::kSort);
  n->exprs = std::move(keys);
  n->sort_ascending = std::move(ascending);
  n->children = {std::move(child)};
  return n;
}

PlanPtr PlanNode::Limit(PlanPtr child, int64_t limit) {
  auto n = Make(PlanKind::kLimit);
  n->limit = limit;
  n->children = {std::move(child)};
  return n;
}

std::string PlanNode::ToString(int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad;
  switch (kind) {
    case PlanKind::kScan:
      out += "Scan(" + table_name + (alias != table_name ? " AS " + alias : "") + ")";
      break;
    case PlanKind::kFilter:
      out += "Filter(" + predicate->ToString() + ")";
      break;
    case PlanKind::kJoin:
      out += "Join(" + predicate->ToString() + ")";
      break;
    case PlanKind::kProject: {
      out += "Project(";
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += exprs[i]->ToString() + " AS " + names[i];
      }
      out += ")";
      break;
    }
    case PlanKind::kAggregate: {
      out += "Aggregate(group_by=[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_by[i]->ToString();
      }
      out += "], aggs=[";
      static const char* fn[] = {"COUNT", "SUM", "AVG"};
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::string(fn[static_cast<int>(aggs[i].func)]) + "(" +
               (aggs[i].arg ? aggs[i].arg->ToString() : "*") + ") AS " + aggs[i].name;
      }
      out += "])";
      break;
    }
    case PlanKind::kSort: {
      out += "Sort(";
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += exprs[i]->ToString();
        out += sort_ascending[i] ? " ASC" : " DESC";
      }
      out += ")";
      break;
    }
    case PlanKind::kLimit:
      out += StrFormat("Limit(%lld)", static_cast<long long>(limit));
      break;
  }
  out += "\n";
  for (const PlanPtr& c : children) out += c->ToString(indent + 1);
  return out;
}

}  // namespace rain
