#include "relational/table.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace rain {

size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size();
    case DataType::kDouble:
      return doubles_.size();
    case DataType::kString:
      return strings_.size();
    case DataType::kBool:
      return bools_.size();
  }
  return 0;
}

void Column::Append(const Value& v) {
  RAIN_CHECK(v.type() == type_) << "column type mismatch: expected "
                                << DataTypeName(type_) << ", got "
                                << DataTypeName(v.type());
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(v.AsInt64());
      break;
    case DataType::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case DataType::kString:
      strings_.push_back(v.AsString());
      break;
    case DataType::kBool:
      bools_.push_back(v.AsBool() ? 1 : 0);
      break;
  }
}

Value Column::Get(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[row]);
    case DataType::kDouble:
      return Value(doubles_[row]);
    case DataType::kString:
      return Value(strings_[row]);
    case DataType::kBool:
      return Value(bools_[row] != 0);
  }
  return Value();
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) columns_.emplace_back(f.type);
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != schema_.field(i).type) {
      return Status::TypeError(
          StrFormat("column %zu expects %s, got %s", i,
                    DataTypeName(schema_.field(i).type), DataTypeName(row[i].type())));
    }
  }
  AppendRowUnchecked(row);
  return Status::OK();
}

void Table::AppendRowUnchecked(const std::vector<Value>& row) {
  for (size_t i = 0; i < row.size(); ++i) columns_[i].Append(row[i]);
  ++num_rows_;
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.Get(row));
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString() + "\n";
  const size_t n = std::min(num_rows_, max_rows);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += " | ";
      out += columns_[c].Get(r).ToString();
    }
    out += "\n";
  }
  if (n < num_rows_) out += StrFormat("... (%zu rows total)\n", num_rows_);
  return out;
}

}  // namespace rain
