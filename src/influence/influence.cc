#include "influence/influence.h"

#include "common/logging.h"

namespace rain {

InfluenceScorer::InfluenceScorer(const Model* model, const Dataset* train,
                                 InfluenceOptions options)
    : model_(model), train_(train), options_(options) {
  RAIN_CHECK(model_ != nullptr && train_ != nullptr);
}

void InfluenceScorer::Hvp(const Vec& v, Vec* out) const {
  model_->HessianVectorProduct(*train_, v, options_.l2, out);
  if (options_.damping != 0.0) vec::Axpy(options_.damping, v, out);
}

Status InfluenceScorer::Prepare(const Vec& q_grad) {
  if (q_grad.size() != model_->num_params()) {
    return Status::InvalidArgument("q gradient size does not match model parameters");
  }
  LinearOperator op = [this](const Vec& v, Vec* out) { Hvp(v, out); };
  RAIN_ASSIGN_OR_RETURN(CgReport report, ConjugateGradient(op, q_grad, options_.cg));
  s_ = std::move(report.x);
  cg_iterations_ = report.iterations;
  prepared_ = true;
  return Status::OK();
}

double InfluenceScorer::Score(size_t i) const {
  RAIN_CHECK(prepared_) << "Prepare() must be called first";
  if (i >= train_->size() || !train_->active(i)) return 0.0;
  Vec grad(model_->num_params(), 0.0);
  model_->AddExampleLossGradient(train_->row(i), train_->label(i), &grad);
  return -vec::Dot(s_, grad);
}

std::vector<double> InfluenceScorer::ScoreAll() const {
  std::vector<double> scores(train_->size(), 0.0);
  for (size_t i = 0; i < train_->size(); ++i) {
    if (train_->active(i)) scores[i] = Score(i);
  }
  return scores;
}

Result<std::vector<double>> InfluenceScorer::SelfInfluenceAll() const {
  LinearOperator op = [this](const Vec& v, Vec* out) { Hvp(v, out); };
  std::vector<double> scores(train_->size(), 0.0);
  Vec grad(model_->num_params(), 0.0);
  for (size_t i = 0; i < train_->size(); ++i) {
    if (!train_->active(i)) continue;
    grad.assign(model_->num_params(), 0.0);
    model_->AddExampleLossGradient(train_->row(i), train_->label(i), &grad);
    RAIN_ASSIGN_OR_RETURN(CgReport report, ConjugateGradient(op, grad, options_.cg));
    scores[i] = -vec::Dot(grad, report.x);
  }
  return scores;
}

}  // namespace rain
