#include "influence/influence.h"

#include <string>
#include <type_traits>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rain {

namespace {

/// Submits `body(shard, range)` as one TaskGraph task per shard, with at
/// most `parallelism` tasks in flight (task s waits on task s-window — a
/// sliding dependency window), returning the futures in shard order.
/// Shared by the sharded ScoreAll / SelfInfluenceAll drivers so the
/// concurrency-limiting mechanism has exactly one implementation.
template <typename Fn>
auto SubmitShardTasks(TaskGraph* graph, const ShardedDataset& shards,
                      int parallelism, const char* name, Fn body)
    -> std::vector<Future<std::invoke_result_t<Fn, size_t, ShardPlan::Range>>> {
  using T = std::invoke_result_t<Fn, size_t, ShardPlan::Range>;
  const size_t window = parallelism < 1 ? 1 : static_cast<size_t>(parallelism);
  std::vector<TaskGraph::TaskId> ids(shards.num_shards());
  std::vector<Future<T>> done;
  done.reserve(shards.num_shards());
  for (size_t s = 0; s < shards.num_shards(); ++s) {
    const ShardPlan::Range range = shards.shard_range(s);
    std::vector<TaskGraph::TaskId> deps;
    if (s >= window) deps.push_back(ids[s - window]);
    done.push_back(graph->Submit(
        std::string(name) + "#" + std::to_string(s), deps,
        [s, range, body](const CancellationToken&) { return body(s, range); },
        &ids[s]));
  }
  return done;
}

}  // namespace

InfluenceScorer::InfluenceScorer(const Model* model, const Dataset* train,
                                 InfluenceOptions options)
    : model_(model), train_(train), options_(options) {
  RAIN_CHECK(model_ != nullptr && train_ != nullptr);
  // A single parallelism knob is the common case: let it drive the CG
  // solver's vector kernels too unless the caller tuned them separately.
  cg_parallelism_inherited_ = options_.cg.parallelism <= 1;
  if (cg_parallelism_inherited_) options_.cg.parallelism = options_.parallelism;
  // Same rule for the stop handle: one token normally covers the whole
  // scorer, CG solves included.
  if (options_.cg.cancel == nullptr) options_.cg.cancel = options_.cancel;
  if (options_.shards != nullptr) {
    RAIN_CHECK(&options_.shards->base() == train_)
        << "InfluenceOptions::shards must view the scorer's training set";
    // Sharding's bitwise contract is worker-invariant; chunked CG vector
    // kernels would break it, so pin them to the sequential path.
    options_.cg.parallelism = 1;
  }
}

void InfluenceScorer::Hvp(const Vec& v, Vec* out) const {
  if (options_.shards != nullptr) {
    model_->ShardedHessianVectorProduct(*options_.shards, v, options_.l2, out,
                                        options_.cancel);
  } else {
    model_->HessianVectorProduct(*train_, v, options_.l2, out);
  }
  if (options_.damping != 0.0) vec::Axpy(options_.damping, v, out);
}

Status InfluenceScorer::Prepare(const Vec& q_grad) {
  if (q_grad.size() != model_->num_params()) {
    return Status::InvalidArgument("q gradient size does not match model parameters");
  }
  LinearOperator op = [this](const Vec& v, Vec* out) { Hvp(v, out); };
  RAIN_ASSIGN_OR_RETURN(CgReport report, ConjugateGradient(op, q_grad, options_.cg));
  s_ = std::move(report.x);
  cg_iterations_ = report.iterations;
  prepared_ = true;
  return Status::OK();
}

double InfluenceScorer::Score(size_t i) const {
  RAIN_CHECK(prepared_) << "Prepare() must be called first";
  if (i >= train_->size() || !train_->active(i)) return 0.0;
  Vec grad(model_->num_params(), 0.0);
  model_->AddExampleLossGradient(train_->row(i), train_->label(i), &grad);
  return -vec::Dot(s_, grad);
}

bool InfluenceScorer::ScoreRange(size_t begin, size_t end,
                                 std::vector<double>* scores) const {
  Vec grad(model_->num_params(), 0.0);
  for (size_t i = begin; i < end; ++i) {
    if (options_.cancel != nullptr && options_.cancel->ShouldStop()) return false;
    if (!train_->active(i)) continue;
    grad.assign(model_->num_params(), 0.0);
    model_->AddExampleLossGradient(train_->row(i), train_->label(i), &grad);
    (*scores)[i] = -vec::Dot(s_, grad);
  }
  return true;
}

std::vector<double> InfluenceScorer::ScoreAll() const {
  RAIN_CHECK(prepared_) << "Prepare() must be called first";
  std::vector<double> scores(train_->size(), 0.0);
  // Embarrassingly parallel: each record's grad l(z, θ*)ᵀ s is independent,
  // so any partition yields scores bitwise identical to the sequential
  // loop. A stop request makes every chunk/shard bail within one record;
  // the partial scores are only ever seen by callers that check
  // interruption before acting on them (DebugSession checks at the rank
  // boundary).
  if (options_.shards != nullptr) {
    // One task-graph task per shard, each writing its shard's slice of
    // the score vector — the per-shard vectors are "merged" in shard
    // order by construction. The token is polled per shard (task entry)
    // and per record (ScoreRange), and the sliding window keeps at most
    // `parallelism` shard tasks in flight, so the knob bounds resource
    // usage here exactly as it does for the train-side shard passes
    // (results are slice-disjoint either way).
    TaskGraph graph;
    auto done = SubmitShardTasks(
        &graph, *options_.shards, options_.parallelism, "score-shard",
        [this, &scores](size_t, ShardPlan::Range range) {
          if (options_.cancel != nullptr && options_.cancel->ShouldStop()) {
            return false;
          }
          return ScoreRange(range.begin, range.end, &scores);
        });
    for (Future<bool>& f : done) (void)f.Get();
    return scores;
  }
  ParallelForCancellable(options_.parallelism, train_->size(), options_.cancel,
                         [this, &scores](size_t begin, size_t end, size_t) {
                           (void)ScoreRange(begin, end, &scores);
                         });
  return scores;
}

Status InfluenceScorer::SelfInfluenceRange(size_t begin, size_t end,
                                           const LinearOperator& op,
                                           std::vector<double>* scores) const {
  Vec grad(model_->num_params(), 0.0);
  for (size_t i = begin; i < end; ++i) {
    // Per-record poll: each record is a full CG solve, so this is
    // the coarsest check that still stops "within one solve" (the
    // solve itself polls per HVP through options_.cg.cancel).
    if (options_.cancel != nullptr && options_.cancel->ShouldStop()) {
      return Status::Cancelled("self-influence scoring interrupted");
    }
    if (!train_->active(i)) continue;
    grad.assign(model_->num_params(), 0.0);
    model_->AddExampleLossGradient(train_->row(i), train_->label(i), &grad);
    Result<CgReport> report = ConjugateGradient(op, grad, options_.cg);
    if (!report.ok()) return report.status();
    (*scores)[i] = -vec::Dot(grad, report->x);
  }
  return Status::OK();
}

Result<std::vector<double>> InfluenceScorer::SelfInfluenceAll() const {
  LinearOperator op = [this](const Vec& v, Vec* out) { Hvp(v, out); };
  std::vector<double> scores(train_->size(), 0.0);
  // One CG solve per active record (the quadratic InfLoss bottleneck);
  // solves are independent, so partition records across workers — by
  // shard (one task-graph task each) when a shard plan is installed,
  // by deterministic chunk otherwise. Each partition stops at its first
  // failing solve and records the status; the lowest-partition (i.e.
  // lowest-record-index) failure is reported, so the returned status
  // matches the sequential loop's regardless of scheduling.
  if (options_.shards != nullptr) {
    TaskGraph graph;
    auto done = SubmitShardTasks(
        &graph, *options_.shards, options_.parallelism, "self-influence-shard",
        [this, &op, &scores](size_t, ShardPlan::Range range) {
          if (options_.cancel != nullptr && options_.cancel->ShouldStop()) {
            return Status::Cancelled("self-influence scoring interrupted");
          }
          return SelfInfluenceRange(range.begin, range.end, op, &scores);
        });
    Status first = Status::OK();
    for (Future<Status>& f : done) {
      const Status status = f.Get();
      if (first.ok() && !status.ok()) first = status;
    }
    RAIN_RETURN_NOT_OK(first);
    return scores;
  }
  const size_t max_chunks =
      options_.parallelism < 1 ? 1 : static_cast<size_t>(options_.parallelism);
  std::vector<Status> chunk_status(max_chunks, Status::OK());
  const bool complete = ParallelForCancellable(
      options_.parallelism, train_->size(), options_.cancel,
      [&](size_t begin, size_t end, size_t chunk) {
        chunk_status[chunk] = SelfInfluenceRange(begin, end, op, &scores);
      });
  for (const Status& status : chunk_status) {
    if (!status.ok()) return status;
  }
  if (!complete) return Status::Cancelled("self-influence scoring interrupted");
  return scores;
}

}  // namespace rain
