#include "influence/influence.h"

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rain {

InfluenceScorer::InfluenceScorer(const Model* model, const Dataset* train,
                                 InfluenceOptions options)
    : model_(model), train_(train), options_(options) {
  RAIN_CHECK(model_ != nullptr && train_ != nullptr);
  // A single parallelism knob is the common case: let it drive the CG
  // solver's vector kernels too unless the caller tuned them separately.
  cg_parallelism_inherited_ = options_.cg.parallelism <= 1;
  if (cg_parallelism_inherited_) options_.cg.parallelism = options_.parallelism;
  // Same rule for the stop handle: one token normally covers the whole
  // scorer, CG solves included.
  if (options_.cg.cancel == nullptr) options_.cg.cancel = options_.cancel;
}

void InfluenceScorer::Hvp(const Vec& v, Vec* out) const {
  model_->HessianVectorProduct(*train_, v, options_.l2, out);
  if (options_.damping != 0.0) vec::Axpy(options_.damping, v, out);
}

Status InfluenceScorer::Prepare(const Vec& q_grad) {
  if (q_grad.size() != model_->num_params()) {
    return Status::InvalidArgument("q gradient size does not match model parameters");
  }
  LinearOperator op = [this](const Vec& v, Vec* out) { Hvp(v, out); };
  RAIN_ASSIGN_OR_RETURN(CgReport report, ConjugateGradient(op, q_grad, options_.cg));
  s_ = std::move(report.x);
  cg_iterations_ = report.iterations;
  prepared_ = true;
  return Status::OK();
}

double InfluenceScorer::Score(size_t i) const {
  RAIN_CHECK(prepared_) << "Prepare() must be called first";
  if (i >= train_->size() || !train_->active(i)) return 0.0;
  Vec grad(model_->num_params(), 0.0);
  model_->AddExampleLossGradient(train_->row(i), train_->label(i), &grad);
  return -vec::Dot(s_, grad);
}

std::vector<double> InfluenceScorer::ScoreAll() const {
  RAIN_CHECK(prepared_) << "Prepare() must be called first";
  std::vector<double> scores(train_->size(), 0.0);
  // Embarrassingly parallel: each record's grad l(z, θ*)ᵀ s is independent,
  // so any chunking yields scores bitwise identical to the sequential loop.
  // A stop request makes every chunk bail within one record; the partial
  // scores are only ever seen by callers that check interruption before
  // acting on them (DebugSession checks at the rank boundary).
  ParallelForCancellable(
      options_.parallelism, train_->size(), options_.cancel,
      [this, &scores](size_t begin, size_t end, size_t) {
        Vec grad(model_->num_params(), 0.0);
        for (size_t i = begin; i < end; ++i) {
          if (options_.cancel != nullptr && options_.cancel->ShouldStop()) return;
          if (!train_->active(i)) continue;
          grad.assign(model_->num_params(), 0.0);
          model_->AddExampleLossGradient(train_->row(i), train_->label(i), &grad);
          scores[i] = -vec::Dot(s_, grad);
        }
      });
  return scores;
}

Result<std::vector<double>> InfluenceScorer::SelfInfluenceAll() const {
  LinearOperator op = [this](const Vec& v, Vec* out) { Hvp(v, out); };
  std::vector<double> scores(train_->size(), 0.0);
  // One CG solve per active record (the quadratic InfLoss bottleneck);
  // solves are independent, so partition records across workers. Each chunk
  // stops at its first failing solve and records the status; the
  // lowest-chunk (i.e. lowest-record-index) failure is reported, so the
  // returned status matches the sequential loop's regardless of scheduling.
  const size_t max_chunks =
      options_.parallelism < 1 ? 1 : static_cast<size_t>(options_.parallelism);
  std::vector<Status> chunk_status(max_chunks, Status::OK());
  const bool complete = ParallelForCancellable(
      options_.parallelism, train_->size(), options_.cancel,
      [&](size_t begin, size_t end, size_t chunk) {
        Vec grad(model_->num_params(), 0.0);
        for (size_t i = begin; i < end; ++i) {
          // Per-record poll: each record is a full CG solve, so this is
          // the coarsest check that still stops "within one solve" (the
          // solve itself polls per HVP through options_.cg.cancel).
          if (options_.cancel != nullptr && options_.cancel->ShouldStop()) {
            chunk_status[chunk] = Status::Cancelled("self-influence scoring interrupted");
            return;
          }
          if (!train_->active(i)) continue;
          grad.assign(model_->num_params(), 0.0);
          model_->AddExampleLossGradient(train_->row(i), train_->label(i), &grad);
          Result<CgReport> report = ConjugateGradient(op, grad, options_.cg);
          if (!report.ok()) {
            chunk_status[chunk] = report.status();
            return;
          }
          scores[i] = -vec::Dot(grad, report->x);
        }
      });
  for (const Status& status : chunk_status) {
    if (!status.ok()) return status;
  }
  if (!complete) return Status::Cancelled("self-influence scoring interrupted");
  return scores;
}

}  // namespace rain
