#include "influence/influence.h"

#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rain {

namespace {

/// Minimum records per scoring chunk: one record's work is a single
/// example-gradient + dot product, far below a fork/join handshake, so
/// tiny score vectors run in fewer, fuller chunks. Per-record scores are
/// slot writes with no cross-record reduction, so the grain (like the
/// worker count) can never change a score bitwise.
constexpr size_t kScoreGrain = 256;

}  // namespace

InfluenceScorer::InfluenceScorer(const Model* model, const Dataset* train,
                                 InfluenceOptions options)
    : model_(model), train_(train), options_(options) {
  RAIN_CHECK(model_ != nullptr && train_ != nullptr);
  // A single parallelism knob is the common case: let it drive the CG
  // solver's vector kernels too unless the caller tuned them separately.
  cg_parallelism_inherited_ = options_.cg.parallelism <= 1;
  if (cg_parallelism_inherited_) options_.cg.parallelism = options_.parallelism;
  // Same rule for the stop handle: one token normally covers the whole
  // scorer, CG solves included.
  if (options_.cg.cancel == nullptr) options_.cg.cancel = options_.cancel;
  if (options_.shards != nullptr) {
    RAIN_CHECK(&options_.shards->base() == train_)
        << "InfluenceOptions::shards must view the scorer's training set";
    // Sharding's bitwise contract is worker-invariant; chunked CG vector
    // kernels would break it, so pin them to the sequential path.
    options_.cg.parallelism = 1;
  }
}

void InfluenceScorer::Hvp(const Vec& v, Vec* out, ShardScratch* scratch) const {
  if (options_.shards != nullptr) {
    model_->ShardedHessianVectorProduct(*options_.shards, v, options_.l2, out,
                                        options_.cancel, scratch);
  } else {
    model_->HessianVectorProduct(*train_, v, options_.l2, out);
  }
  if (options_.damping != 0.0) vec::Axpy(options_.damping, v, out);
}

Status InfluenceScorer::Prepare(const Vec& q_grad) {
  if (q_grad.size() != model_->num_params()) {
    return Status::InvalidArgument("q gradient size does not match model parameters");
  }
  // One CG solve = one sequential chain of HVPs: lend it one scratch so
  // the per-shard coefficient buffers are allocated once, not per
  // iteration. The scratch is local to this activation — a member would
  // be shared with the concurrent CG solves SelfInfluenceAll runs.
  ShardScratch scratch;
  LinearOperator op = [this, &scratch](const Vec& v, Vec* out) {
    Hvp(v, out, &scratch);
  };
  RAIN_ASSIGN_OR_RETURN(CgReport report, ConjugateGradient(op, q_grad, options_.cg));
  s_ = std::move(report.x);
  cg_iterations_ = report.iterations;
  prepared_ = true;
  return Status::OK();
}

double InfluenceScorer::Score(size_t i) const {
  RAIN_CHECK(prepared_) << "Prepare() must be called first";
  if (i >= train_->size() || !train_->active(i)) return 0.0;
  Vec grad(model_->num_params(), 0.0);
  model_->AddExampleLossGradient(train_->row(i), train_->label(i), &grad);
  return -vec::Dot(s_, grad);
}

bool InfluenceScorer::ScoreRange(size_t begin, size_t end,
                                 std::vector<double>* scores) const {
  Vec grad(model_->num_params(), 0.0);
  for (size_t i = begin; i < end; ++i) {
    if (options_.cancel != nullptr && options_.cancel->ShouldStop()) return false;
    if (!train_->active(i)) continue;
    grad.assign(model_->num_params(), 0.0);
    model_->AddExampleLossGradient(train_->row(i), train_->label(i), &grad);
    (*scores)[i] = -vec::Dot(s_, grad);
  }
  return true;
}

std::vector<double> InfluenceScorer::ScoreAll() const {
  RAIN_CHECK(prepared_) << "Prepare() must be called first";
  std::vector<double> scores(train_->size(), 0.0);
  // Embarrassingly parallel: each record's grad l(z, θ*)ᵀ s is independent,
  // so any partition yields scores bitwise identical to the sequential
  // loop. A stop request makes every chunk/shard bail within one record;
  // the partial scores are only ever seen by callers that check
  // interruption before acting on them (DebugSession checks at the rank
  // boundary).
  if (options_.shards != nullptr) {
    // Shards fan out through ParallelForCancellable directly (used to be
    // one TaskGraph task per shard; the per-call graph setup/teardown was
    // pure fixed cost per scoring pass). Each shard writes its slice of
    // the score vector — the per-shard vectors are "merged" in shard
    // order by construction — and the chunk count min(parallelism,
    // num_shards) bounds in-flight shards exactly like the old sliding
    // dependency window. The token is polled per shard and per record
    // (ScoreRange); results are slice-disjoint either way.
    const ShardedDataset& shards = *options_.shards;
    ParallelForCancellable(
        options_.parallelism, shards.num_shards(), options_.cancel,
        [this, &scores, &shards](size_t begin, size_t end, size_t) {
          for (size_t s = begin; s < end; ++s) {
            if (options_.cancel != nullptr && options_.cancel->ShouldStop()) return;
            const ShardPlan::Range range = shards.shard_range(s);
            if (!ScoreRange(range.begin, range.end, &scores)) return;
          }
        });
    return scores;
  }
  ParallelForCancellable(options_.parallelism, train_->size(), kScoreGrain,
                         options_.cancel,
                         [this, &scores](size_t begin, size_t end, size_t) {
                           (void)ScoreRange(begin, end, &scores);
                         });
  return scores;
}

Status InfluenceScorer::SelfInfluenceRange(size_t begin, size_t end,
                                           const LinearOperator& op,
                                           std::vector<double>* scores) const {
  Vec grad(model_->num_params(), 0.0);
  for (size_t i = begin; i < end; ++i) {
    // Per-record poll: each record is a full CG solve, so this is
    // the coarsest check that still stops "within one solve" (the
    // solve itself polls per HVP through options_.cg.cancel).
    if (options_.cancel != nullptr && options_.cancel->ShouldStop()) {
      return Status::Cancelled("self-influence scoring interrupted");
    }
    if (!train_->active(i)) continue;
    grad.assign(model_->num_params(), 0.0);
    model_->AddExampleLossGradient(train_->row(i), train_->label(i), &grad);
    Result<CgReport> report = ConjugateGradient(op, grad, options_.cg);
    if (!report.ok()) return report.status();
    (*scores)[i] = -vec::Dot(grad, report->x);
  }
  return Status::OK();
}

Result<std::vector<double>> InfluenceScorer::SelfInfluenceAll() const {
  std::vector<double> scores(train_->size(), 0.0);
  // One CG solve per active record (the quadratic InfLoss bottleneck);
  // solves are independent, so partition records across workers — by
  // shard (fanned out through ParallelForCancellable, as in ScoreAll)
  // when a shard plan is installed, by deterministic chunk otherwise.
  // Each partition owns its own Hessian operator + ShardScratch (its CG
  // chain is sequential, but partitions run concurrently, so the scratch
  // cannot be shared) and stops at its first failing solve, recording the
  // status; the lowest-partition (i.e. lowest-record-index) failure is
  // reported, so the returned status matches the sequential loop's
  // regardless of scheduling.
  if (options_.shards != nullptr) {
    const ShardedDataset& shards = *options_.shards;
    std::vector<Status> shard_status(shards.num_shards(), Status::OK());
    const bool complete = ParallelForCancellable(
        options_.parallelism, shards.num_shards(), options_.cancel,
        [&](size_t begin, size_t end, size_t) {
          ShardScratch scratch;
          LinearOperator op = [this, &scratch](const Vec& v, Vec* out) {
            Hvp(v, out, &scratch);
          };
          for (size_t s = begin; s < end; ++s) {
            if (options_.cancel != nullptr && options_.cancel->ShouldStop()) {
              shard_status[s] = Status::Cancelled("self-influence scoring interrupted");
              return;
            }
            const ShardPlan::Range range = shards.shard_range(s);
            shard_status[s] = SelfInfluenceRange(range.begin, range.end, op, &scores);
            if (!shard_status[s].ok()) return;
          }
        });
    for (const Status& status : shard_status) {
      if (!status.ok()) return status;
    }
    if (!complete) return Status::Cancelled("self-influence scoring interrupted");
    return scores;
  }
  const size_t max_chunks =
      options_.parallelism < 1 ? 1 : static_cast<size_t>(options_.parallelism);
  std::vector<Status> chunk_status(max_chunks, Status::OK());
  const bool complete = ParallelForCancellable(
      options_.parallelism, train_->size(), options_.cancel,
      [&](size_t begin, size_t end, size_t chunk) {
        ShardScratch scratch;
        LinearOperator op = [this, &scratch](const Vec& v, Vec* out) {
          Hvp(v, out, &scratch);
        };
        chunk_status[chunk] = SelfInfluenceRange(begin, end, op, &scores);
      });
  for (const Status& status : chunk_status) {
    if (!status.ok()) return status;
  }
  if (!complete) return Status::Cancelled("self-influence scoring interrupted");
  return scores;
}

}  // namespace rain
