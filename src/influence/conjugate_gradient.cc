#include "influence/conjugate_gradient.h"

#include <cmath>
#include <string>

namespace rain {

Result<CgReport> ConjugateGradient(const LinearOperator& op, const Vec& b,
                                   const CgOptions& options) {
  if (b.empty()) return Status::InvalidArgument("CG with empty right-hand side");

  CgReport report;
  report.x.assign(b.size(), 0.0);
  Vec r = b;  // r = b - A*0
  Vec p = r;
  Vec ap(b.size(), 0.0);

  const int par = options.parallelism;
  double rs = vec::NormSq(r, par);
  const double b_norm = std::sqrt(vec::NormSq(b, par));
  if (b_norm == 0.0) {
    report.converged = true;
    return report;
  }
  const double threshold = options.tol * b_norm;

  for (int iter = 0; iter < options.max_iters; ++iter) {
    report.iterations = iter;
    if (std::sqrt(rs) <= threshold) {
      report.converged = true;
      report.residual_norm = std::sqrt(rs);
      return report;
    }
    // One poll per HVP bounds cancellation latency to a single product.
    if (options.cancel != nullptr && options.cancel->ShouldStop()) {
      return Status::Cancelled("CG solve interrupted after " +
                               std::to_string(iter) + " iterations");
    }
    op(p, &ap);
    const double pap = vec::Dot(p, ap, par);
    if (pap <= 0.0 || !std::isfinite(pap)) {
      return Status::Internal(
          "CG encountered a non-positive-definite operator (p^T A p <= 0); "
          "increase damping");
    }
    const double alpha = rs / pap;
    vec::Axpy(alpha, p, &report.x, par);
    vec::Axpy(-alpha, ap, &r, par);
    const double rs_new = vec::NormSq(r, par);
    const double beta = rs_new / rs;
    for (size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
    rs = rs_new;
  }
  report.iterations = options.max_iters;
  report.residual_norm = std::sqrt(rs);
  report.converged = std::sqrt(rs) <= threshold;
  return report;
}

Future<Result<CgReport>> ConjugateGradientAsync(
    TaskGraph* graph, const LinearOperator& op, const Vec& b,
    const CgOptions& options, const std::vector<TaskGraph::TaskId>& deps) {
  return graph->Submit(
      "cg-solve", deps,
      [op, b, options](const CancellationToken& token) -> Result<CgReport> {
        CgOptions effective = options;
        if (effective.cancel == nullptr) effective.cancel = &token;
        return ConjugateGradient(op, b, effective);
      });
}

}  // namespace rain

