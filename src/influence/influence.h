#ifndef RAIN_INFLUENCE_INFLUENCE_H_
#define RAIN_INFLUENCE_INFLUENCE_H_

#include <vector>

#include "common/result.h"
#include "influence/conjugate_gradient.h"
#include "ml/model.h"

namespace rain {

struct InfluenceOptions {
  /// Damping added to the Hessian (H + damping*I); required for positive
  /// definiteness on non-convex models (Appendix D / Koh & Liang).
  double damping = 0.0;
  /// L2 strength used during training (the Hessian includes 2*l2*I).
  double l2 = 1e-3;
  CgOptions cg;
  /// Worker count for per-record scoring (ScoreAll / SelfInfluenceAll):
  /// training records are partitioned across this many chunks, each worker
  /// computing its grad l(z, θ*)ᵀ s dot products independently. Per-record
  /// scores have no cross-record reduction, so parallel ScoreAll is bitwise
  /// identical to sequential for any value. Also inherited by cg.parallelism
  /// when that is left at 1.
  int parallelism = 1;
  /// Optional cooperative stop handle (borrowed; must outlive any call
  /// made with these options). Polled per record inside ScoreAll /
  /// SelfInfluenceAll and inherited by `cg.cancel` when that was left
  /// unset, so a stop request also aborts the Hessian solve mid-CG.
  const CancellationToken* cancel = nullptr;
  /// Optional sharded view over the SAME training set handed to the
  /// scorer (borrowed; must outlive any call). When set,
  /// ScoreAll/SelfInfluenceAll fan the shards out across at most
  /// `parallelism` workers (scores land in the per-shard slices of one
  /// vector, i.e. merged in shard order by construction; the cancel
  /// token is polled per shard and per record) and the CG loop's
  /// Hessian-vector products go through the models' shard-exact kernels. Results are bitwise-identical to the
  /// sequential scorer at every shard count x worker count; to keep that
  /// worker-invariance, `cg.parallelism` is pinned to 1 (sequential
  /// vector kernels) while sharding is on.
  const ShardedDataset* shards = nullptr;
};

/// \brief Influence-function scorer (paper Section 4.1, Equation 4).
///
/// Given a trained model and a differentiable complaint encoding q(theta),
/// computes per-training-record removal scores
///     score(z) = -grad q(theta*)^T  H^{-1}  grad l(z, theta*).
/// Removing a record with a large positive score is predicted to decrease
/// q the most (i.e., to best address the user complaints). H is the
/// Hessian of the regularized mean training loss over active records,
/// and H^{-1} v is computed Hessian-free with conjugate gradient.
class InfluenceScorer {
 public:
  /// Neither pointer is owned; both must outlive the scorer. `train` rows
  /// that are inactive are excluded from the Hessian and receive score 0.
  InfluenceScorer(const Model* model, const Dataset* train,
                  InfluenceOptions options = InfluenceOptions());

  /// Solves (H + damping I) s = q_grad once. Must be called before
  /// Score()/ScoreAll(). q_grad is grad_theta q(theta*).
  Status Prepare(const Vec& q_grad);

  /// Removal score of training record i (0 for inactive records).
  double Score(size_t i) const;

  /// Scores for every training record (inactive rows get 0).
  std::vector<double> ScoreAll() const;

  /// Number of CG iterations used by Prepare (runtime accounting).
  int cg_iterations() const { return cg_iterations_; }

  /// The CG solution s = (H + damping I)^-1 q_grad computed by Prepare
  /// (empty before Prepare). The incremental engine caches this to patch
  /// scores of delta-touched rows without a new Hessian solve
  /// (`PatchInfluenceScores`, src/incremental/update.h).
  const Vec& solution() const { return s_; }

  /// Adjusts the scoring worker count after construction (benchmarks sweep
  /// this; the prepared CG solution s is unaffected). When cg.parallelism
  /// was inherited rather than tuned explicitly, it follows this knob —
  /// except under sharding, where the CG vector kernels stay pinned
  /// sequential (worker-invariance; see InfluenceOptions::shards).
  void set_parallelism(int parallelism) {
    options_.parallelism = parallelism < 1 ? 1 : parallelism;
    if (cg_parallelism_inherited_ && options_.shards == nullptr) {
      options_.cg.parallelism = options_.parallelism;
    }
  }
  int parallelism() const { return options_.parallelism; }

  /// The sharded view driving the scorer, nullptr when unsharded.
  const ShardedDataset* shards() const { return options_.shards; }

  /// \brief Self-influence scores for the InfLoss baseline [35]:
  ///     self(z) = -grad l(z)^T H^{-1} grad l(z)   (always <= 0).
  /// Records whose removal *increases their own loss* the most (largest
  /// negative value) rank at the top, so the baseline sorts ascending.
  /// Requires one CG solve per active record — this is the quadratic
  /// bottleneck the paper reports (InfLoss takes 46s/iter vs ~1s).
  Result<std::vector<double>> SelfInfluenceAll() const;

 private:
  /// (H + damping I) v. `scratch` (may be null) lends per-shard buffers
  /// to the sharded HVP kernel; each sequential chain of Hvp calls (one
  /// CG solve) owns its own scratch, because SelfInfluenceAll runs
  /// solves concurrently.
  void Hvp(const Vec& v, Vec* out, ShardScratch* scratch = nullptr) const;
  /// Scores rows [begin, end) into their slots of `scores`, polling the
  /// cancel token per record; returns false when interrupted.
  bool ScoreRange(size_t begin, size_t end, std::vector<double>* scores) const;
  /// Self-influence scores of rows [begin, end) (one CG solve each) into
  /// `scores`; stops at the first failing solve or stop request.
  Status SelfInfluenceRange(size_t begin, size_t end, const LinearOperator& op,
                            std::vector<double>* scores) const;

  const Model* model_;
  const Dataset* train_;
  InfluenceOptions options_;
  Vec s_;  // (H + damping)^-1 grad q
  bool prepared_ = false;
  /// True when cg.parallelism was left at its default and tracks the
  /// scorer-level knob (set at construction, maintained by set_parallelism).
  bool cg_parallelism_inherited_ = false;
  int cg_iterations_ = 0;
};

}  // namespace rain

#endif  // RAIN_INFLUENCE_INFLUENCE_H_
