#ifndef RAIN_INFLUENCE_CONJUGATE_GRADIENT_H_
#define RAIN_INFLUENCE_CONJUGATE_GRADIENT_H_

#include <functional>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/task_graph.h"
#include "tensor/vector_ops.h"

namespace rain {

/// Linear operator v -> A v (A symmetric positive definite).
using LinearOperator = std::function<void(const Vec& v, Vec* out)>;

struct CgOptions {
  int max_iters = 200;
  /// Relative residual tolerance ||r|| <= tol * ||b||.
  double tol = 1e-8;
  /// Chunk count for the solver's own vector kernels (dot/axpy over the
  /// parameter dimension). The operator `op` parallelizes over data rows
  /// independently of this. <= 1 keeps exact sequential arithmetic.
  int parallelism = 1;
  /// Optional cooperative stop handle (borrowed; must outlive the call).
  /// Polled once per CG iteration — i.e. once per Hessian-vector
  /// product, the unit of work that dominates a solve — so a stuck solve
  /// stops within one HVP. A stop request surfaces as
  /// `Status::Cancelled`; when it does not fire, results are untouched.
  const CancellationToken* cancel = nullptr;
};

struct CgReport {
  Vec x;
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// \brief Conjugate gradient solve of A x = b using only matrix-vector
/// products.
///
/// This is the Hessian-free machinery of Martens [51] / Koh & Liang [35]:
/// the influence-function Hessian inverse is never materialized; CG only
/// needs HVPs, so time and space scale linearly in the parameter count.
Result<CgReport> ConjugateGradient(const LinearOperator& op, const Vec& b,
                                   const CgOptions& options = CgOptions());

/// \brief The CG solve as a cancellable task on a `TaskGraph`.
///
/// Submits the solve to `graph` (optionally after `deps`) and returns a
/// future for its report. The graph-level token is installed as the
/// solve's stop handle when `options.cancel` was not set, so
/// `TaskGraph::Cancel()` aborts in-flight solves within one HVP; an
/// explicitly provided `options.cancel` takes precedence. `op` and any
/// state it captures must stay valid until the future resolves.
Future<Result<CgReport>> ConjugateGradientAsync(
    TaskGraph* graph, const LinearOperator& op, const Vec& b,
    const CgOptions& options = CgOptions(),
    const std::vector<TaskGraph::TaskId>& deps = {});

}  // namespace rain

#endif  // RAIN_INFLUENCE_CONJUGATE_GRADIENT_H_
