#ifndef RAIN_TENSOR_MATRIX_H_
#define RAIN_TENSOR_MATRIX_H_

#include <cstddef>
#include <vector>

#include "tensor/vector_ops.h"

namespace rain {

/// \brief Dense row-major matrix of doubles.
///
/// Used for feature matrices (n_examples x n_features), class-probability
/// matrices (n_examples x n_classes), and MLP weight blocks.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row r (contiguous, cols() doubles).
  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  /// Copies row r into a Vec.
  Vec RowVec(size_t r) const;
  /// Overwrites row r from v (v.size() must equal cols()).
  void SetRow(size_t r, const Vec& v);

  const Vec& data() const { return data_; }
  Vec& data() { return data_; }

  /// out = this * x (rows() results), via the vec::simd::Gemv
  /// micro-kernel (REDUCTION class: per-row dots, deterministic per
  /// backend). The parallel overload partitions output rows across
  /// `parallelism` chunks — disjoint writes and per-row-pure values, so
  /// the result is bitwise identical to the sequential kernel.
  Vec MatVec(const Vec& x) const;
  Vec MatVec(const Vec& x, int parallelism) const;
  /// out = this^T * x (cols() results), via vec::simd::GemvT
  /// (ELEMENTWISE class: bitwise identical across backends). The parallel
  /// overload reduces per-chunk column accumulators in chunk order
  /// (deterministic for a fixed `parallelism`, ε-close to sequential).
  Vec MatTVec(const Vec& x) const;
  Vec MatTVec(const Vec& x, int parallelism) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  Vec data_;
};

/// out = a * b, via the packed cache-blocked vec::simd::GemmPacked
/// micro-kernel (ELEMENTWISE class: bitwise identical across backends,
/// and to the unpacked Gemm reference); the parallel path partitions rows
/// of `a` across chunks (disjoint output blocks, bitwise identical to the
/// sequential result for any `parallelism`).
Matrix MatMul(const Matrix& a, const Matrix& b, int parallelism = 1);

}  // namespace rain

#endif  // RAIN_TENSOR_MATRIX_H_
