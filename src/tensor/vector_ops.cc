#include "tensor/vector_ops.h"

#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rain {
namespace vec {

Vec Zeros(size_t n) { return Vec(n, 0.0); }

double Dot(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Dot size mismatch";
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double Dot(const Vec& x, const Vec& y, int parallelism) {
  RAIN_CHECK(x.size() == y.size()) << "Dot size mismatch";
  if (parallelism <= 1 || x.size() < kParallelGrain) return Dot(x, y);
  return ParallelSum(parallelism, x.size(), [&x, &y](size_t begin, size_t end) {
    double acc = 0.0;
    for (size_t i = begin; i < end; ++i) acc += x[i] * y[i];
    return acc;
  });
}

void Axpy(double alpha, const Vec& x, Vec* y) {
  RAIN_CHECK(x.size() == y->size()) << "Axpy size mismatch";
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Axpy(double alpha, const Vec& x, Vec* y, int parallelism) {
  RAIN_CHECK(x.size() == y->size()) << "Axpy size mismatch";
  if (parallelism <= 1 || x.size() < kParallelGrain) {
    Axpy(alpha, x, y);
    return;
  }
  ParallelFor(parallelism, x.size(), [alpha, &x, y](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) (*y)[i] += alpha * x[i];
  });
}

void Scale(double alpha, Vec* x) {
  for (double& v : *x) v *= alpha;
}

double Norm2(const Vec& x) { return std::sqrt(NormSq(x)); }

double NormSq(const Vec& x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

double NormSq(const Vec& x, int parallelism) {
  if (parallelism <= 1 || x.size() < kParallelGrain) return NormSq(x);
  return ParallelSum(parallelism, x.size(), [&x](size_t begin, size_t end) {
    double acc = 0.0;
    for (size_t i = begin; i < end; ++i) acc += x[i] * x[i];
    return acc;
  });
}

void ParallelAccumulate(int parallelism, size_t n, Vec* out,
                        const std::function<void(size_t begin, size_t end, Vec* acc)>& body) {
  if (n == 0) return;
  size_t chunks = parallelism < 1 ? 1 : static_cast<size_t>(parallelism);
  if (chunks > n) chunks = n;
  if (chunks <= 1) {
    body(0, n, out);
    return;
  }
  std::vector<Vec> partial(chunks, Vec(out->size(), 0.0));
  ParallelFor(parallelism, n, [&body, &partial](size_t begin, size_t end, size_t chunk) {
    body(begin, end, &partial[chunk]);
  });
  for (const Vec& p : partial) Axpy(1.0, p, out);
}

Vec Sub(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Sub size mismatch";
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

Vec Add(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Add size mismatch";
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return out;
}

double MaxAbsDiff(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "MaxAbsDiff size mismatch";
  double m = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = std::fabs(x[i] - y[i]);
    if (d > m) m = d;
  }
  return m;
}

}  // namespace vec
}  // namespace rain
