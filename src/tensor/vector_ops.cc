#include "tensor/vector_ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RAIN_SIMD_X86 1
#include <immintrin.h>
#endif

namespace rain {
namespace vec {
namespace {

std::atomic<bool> g_force_scalar{false};

double DotScalar(const double* x, const double* y, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void AxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

// --------------------------------------------------------------------------
// Scalar fallbacks for the SHAPED-REDUCTION kernels. These replicate the
// AVX2 lane shape exactly — four virtual lane accumulators filled in
// stride-4 steps, combined as (l0+l1)+(l2+l3) (resp. products), scalar
// tail folded afterwards — so both backends produce identical bits.
// --------------------------------------------------------------------------

double Dot2Scalar(const double* a, const double* x, const double* b,
                  const double* y, size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t j = 0; j < 4; ++j) {
      lane[j] += a[i + j] * x[i + j] + b[i + j] * y[i + j];
    }
  }
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += a[i] * x[i] + b[i] * y[i];
  return total;
}

double GatherSumScalar(const double* v, const int32_t* idx, size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t j = 0; j < 4; ++j) lane[j] += v[idx[i + j]];
  }
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += v[idx[i]];
  return total;
}

double GatherProdScalar(const double* v, const int32_t* idx, size_t n) {
  double lane[4] = {1.0, 1.0, 1.0, 1.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t j = 0; j < 4; ++j) lane[j] *= v[idx[i + j]];
  }
  double total = (lane[0] * lane[1]) * (lane[2] * lane[3]);
  for (; i < n; ++i) total *= v[idx[i]];
  return total;
}

double GatherProdOneMinusScalar(const double* v, const int32_t* idx, size_t n) {
  double lane[4] = {1.0, 1.0, 1.0, 1.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t j = 0; j < 4; ++j) lane[j] *= 1.0 - v[idx[i + j]];
  }
  double total = (lane[0] * lane[1]) * (lane[2] * lane[3]);
  for (; i < n; ++i) total *= 1.0 - v[idx[i]];
  return total;
}

#ifdef RAIN_SIMD_X86

/// 2x-unrolled AVX2/FMA dot with a fixed-shape reduction: the two
/// running 4-lane accumulators are added, then the four lanes combine as
/// (l0 + l1) + (l2 + l3), and the scalar tail folds on afterwards — the
/// grouping depends only on n, never on alignment or scheduling.
__attribute__((target("avx2,fma"))) double DotAvx2(const double* x,
                                                   const double* y, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4),
                           acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), acc0);
    i += 4;
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total = __builtin_fma(x[i], y[i], total);
  return total;
}

/// AVX2/FMA axpy. Every element — vector body and tail alike — is
/// computed with a single fused rounding, so an element's bits never
/// depend on which chunk (and hence which position within a chunk) it
/// landed in: chunked Axpy stays bitwise-identical to sequential.
__attribute__((target("avx2,fma"))) void AxpyAvx2(double alpha, const double* x,
                                                  double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] = __builtin_fma(alpha, x[i], y[i]);
}

/// ELEMENTWISE kernels are compiled with target("avx2") only — no FMA —
/// so neither the vector body nor the scalar tail can contract the
/// multiply-add into a single rounding: every element gets the exact
/// round(y + round(alpha*x)) sequence of the plain scalar loop, making
/// the AVX2 path bitwise identical to the fallback.
__attribute__((target("avx2"))) void MulAddAvx2(double alpha, const double* x,
                                                double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

/// Four chained multiply-adds per pass over y, for the Gemm inner loop:
/// y[i] receives round(y + round(a0*b0)), then a1*b1, a2*b2, a3*b3 — the
/// identical per-element rounding sequence as four sequential MulAdd
/// calls, but with one load/store of y instead of four.
__attribute__((target("avx2"))) void MulAdd4Avx2(const double* alpha,
                                                 const double* b0,
                                                 const double* b1,
                                                 const double* b2,
                                                 const double* b3, double* y,
                                                 size_t n) {
  const __m256d va0 = _mm256_set1_pd(alpha[0]);
  const __m256d va1 = _mm256_set1_pd(alpha[1]);
  const __m256d va2 = _mm256_set1_pd(alpha[2]);
  const __m256d va3 = _mm256_set1_pd(alpha[3]);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d acc = _mm256_loadu_pd(y + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va0, _mm256_loadu_pd(b0 + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va1, _mm256_loadu_pd(b1 + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va2, _mm256_loadu_pd(b2 + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va3, _mm256_loadu_pd(b3 + i)));
    _mm256_storeu_pd(y + i, acc);
  }
  for (; i < n; ++i) {
    // Separate statements keep each term's mul and add distinct
    // roundings, exactly like the sequential MulAdd tail.
    y[i] += alpha[0] * b0[i];
    y[i] += alpha[1] * b1[i];
    y[i] += alpha[2] * b2[i];
    y[i] += alpha[3] * b3[i];
  }
}

__attribute__((target("avx2"))) void MulAdd2Avx2(double a0, const double* x0,
                                                 double a1, const double* x1,
                                                 double* y, size_t n) {
  const __m256d va0 = _mm256_set1_pd(a0);
  const __m256d va1 = _mm256_set1_pd(a1);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_add_pd(_mm256_mul_pd(va0, _mm256_loadu_pd(x0 + i)),
                                    _mm256_mul_pd(va1, _mm256_loadu_pd(x1 + i)));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), t));
  }
  for (; i < n; ++i) y[i] += a0 * x0[i] + a1 * x1[i];
}

__attribute__((target("avx2"))) double Dot2Avx2(const double* a, const double* x,
                                                const double* b, const double* y,
                                                size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(a + i),
                                                  _mm256_loadu_pd(x + i)),
                                    _mm256_mul_pd(_mm256_loadu_pd(b + i),
                                                  _mm256_loadu_pd(y + i)));
    acc = _mm256_add_pd(acc, t);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += a[i] * x[i] + b[i] * y[i];
  return total;
}

__attribute__((target("avx2,fma"))) void GemvAvx2(const double* a, size_t rows,
                                                  size_t cols, const double* x,
                                                  double* out) {
  for (size_t r = 0; r < rows; ++r) out[r] = DotAvx2(a + r * cols, x, cols);
}

// The masked gather form (all-ones mask, zero source) is used instead of
// _mm256_i32gather_pd: the unmasked intrinsic seeds its destination with
// _mm256_undefined_pd(), which gcc's -Wmaybe-uninitialized flags under
// -Werror. Semantics are identical — every lane is gathered.
__attribute__((target("avx2"))) inline __m256d GatherPd(const double* v,
                                                        __m128i vi) {
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), v, vi, all, 8);
}

__attribute__((target("avx2"))) double GatherSumAvx2(const double* v,
                                                     const int32_t* idx, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_add_pd(acc, GatherPd(v, vi));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += v[idx[i]];
  return total;
}

__attribute__((target("avx2"))) double GatherProdAvx2(const double* v,
                                                      const int32_t* idx,
                                                      size_t n) {
  __m256d acc = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_mul_pd(acc, GatherPd(v, vi));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] * lane[1]) * (lane[2] * lane[3]);
  for (; i < n; ++i) total *= v[idx[i]];
  return total;
}

__attribute__((target("avx2"))) double GatherProdOneMinusAvx2(const double* v,
                                                              const int32_t* idx,
                                                              size_t n) {
  const __m256d ones = _mm256_set1_pd(1.0);
  __m256d acc = ones;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_mul_pd(acc, _mm256_sub_pd(ones, GatherPd(v, vi)));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] * lane[1]) * (lane[2] * lane[3]);
  for (; i < n; ++i) total *= 1.0 - v[idx[i]];
  return total;
}

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // RAIN_SIMD_X86

bool UseSimd() {
#ifdef RAIN_SIMD_X86
  static const bool available = CpuHasAvx2Fma();
  return available && !g_force_scalar.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

}  // namespace

namespace simd {

const char* Backend() { return UseSimd() ? "avx2-fma" : "scalar"; }

bool ForceScalar(bool force) {
  return g_force_scalar.exchange(force, std::memory_order_relaxed);
}

double Dot(const double* x, const double* y, size_t n) {
#ifdef RAIN_SIMD_X86
  if (UseSimd()) return DotAvx2(x, y, n);
#endif
  return DotScalar(x, y, n);
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
#ifdef RAIN_SIMD_X86
  if (UseSimd()) {
    AxpyAvx2(alpha, x, y, n);
    return;
  }
#endif
  AxpyScalar(alpha, x, y, n);
}

void MulAdd(double alpha, const double* x, double* y, size_t n) {
#ifdef RAIN_SIMD_X86
  if (UseSimd()) {
    MulAddAvx2(alpha, x, y, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void MulAdd2(double a0, const double* x0, double a1, const double* x1, double* y,
             size_t n) {
#ifdef RAIN_SIMD_X86
  if (UseSimd()) {
    MulAdd2Avx2(a0, x0, a1, x1, y, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) y[i] += a0 * x0[i] + a1 * x1[i];
}

double Dot2(const double* a, const double* x, const double* b, const double* y,
            size_t n) {
#ifdef RAIN_SIMD_X86
  if (UseSimd()) return Dot2Avx2(a, x, b, y, n);
#endif
  return Dot2Scalar(a, x, b, y, n);
}

void Gemv(const double* a, size_t rows, size_t cols, const double* x, double* out) {
#ifdef RAIN_SIMD_X86
  if (UseSimd()) {
    GemvAvx2(a, rows, cols, x, out);
    return;
  }
#endif
  for (size_t r = 0; r < rows; ++r) out[r] = DotScalar(a + r * cols, x, cols);
}

void GemvT(const double* a, size_t rows, size_t cols, const double* x, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    MulAdd(xr, a + r * cols, out, cols);
  }
}

void Gemm(const double* a, size_t a_rows, size_t k, const double* b, size_t n,
          double* out) {
  // Block sizes chosen so one a-block row plus the touched b-rows stay in
  // L1. The loop order (k-block outer, then a-row, then k) matches the
  // pre-SIMD Matrix kernel exactly; with the ELEMENTWISE MulAdd row
  // update the output bits match it too.
  constexpr size_t kBlockK = 64;
  for (size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const size_t k1 = std::min(k, k0 + kBlockK);
    for (size_t r = 0; r < a_rows; ++r) {
      const double* arow = a + r * k;
      double* orow = out + r * n;
      size_t kk = k0;
#ifdef RAIN_SIMD_X86
      if (UseSimd()) {
        // Fuse four k-steps per pass over the output row: each element
        // still receives the same separate-mul-then-add sequence in the
        // same kk order, so the bits match the sequential loop below,
        // while the row is loaded/stored once instead of four times. A
        // zero coefficient drops to the sequential loop (which skips it,
        // as the pre-SIMD kernel did) — rare in dense products.
        for (; kk + 4 <= k1; kk += 4) {
          const double* alpha = arow + kk;
          if (alpha[0] == 0.0 || alpha[1] == 0.0 || alpha[2] == 0.0 ||
              alpha[3] == 0.0) {
            break;
          }
          MulAdd4Avx2(alpha, b + kk * n, b + (kk + 1) * n, b + (kk + 2) * n,
                      b + (kk + 3) * n, orow, n);
        }
      }
#endif
      for (; kk < k1; ++kk) {
        const double av = arow[kk];
        if (av == 0.0) continue;
        MulAdd(av, b + kk * n, orow, n);
      }
    }
  }
}

namespace {

// Below this length the vpgatherdpd setup costs more than it saves
// (typical small-arity AND/OR nodes), so the dispatched path uses the
// shaped scalar loop instead. The cutoff cannot affect results: both
// loops produce the identical fixed lane shape for a given n, so the
// choice is invisible bit-for-bit.
constexpr size_t kGatherSimdMin = 16;

}  // namespace

double GatherSum(const double* v, const int32_t* idx, size_t n) {
#ifdef RAIN_SIMD_X86
  if (n >= kGatherSimdMin && UseSimd()) return GatherSumAvx2(v, idx, n);
#endif
  return GatherSumScalar(v, idx, n);
}

double GatherProd(const double* v, const int32_t* idx, size_t n) {
#ifdef RAIN_SIMD_X86
  if (n >= kGatherSimdMin && UseSimd()) return GatherProdAvx2(v, idx, n);
#endif
  return GatherProdScalar(v, idx, n);
}

double GatherProdOneMinus(const double* v, const int32_t* idx, size_t n) {
#ifdef RAIN_SIMD_X86
  if (n >= kGatherSimdMin && UseSimd()) return GatherProdOneMinusAvx2(v, idx, n);
#endif
  return GatherProdOneMinusScalar(v, idx, n);
}

}  // namespace simd

Vec Zeros(size_t n) { return Vec(n, 0.0); }

double Dot(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Dot size mismatch";
  return simd::Dot(x.data(), y.data(), x.size());
}

double Dot(const Vec& x, const Vec& y, int parallelism) {
  RAIN_CHECK(x.size() == y.size()) << "Dot size mismatch";
  if (parallelism <= 1 || x.size() < kParallelGrain) return Dot(x, y);
  return ParallelSum(parallelism, x.size(), [&x, &y](size_t begin, size_t end) {
    return simd::Dot(x.data() + begin, y.data() + begin, end - begin);
  });
}

void Axpy(double alpha, const Vec& x, Vec* y) {
  RAIN_CHECK(x.size() == y->size()) << "Axpy size mismatch";
  simd::Axpy(alpha, x.data(), y->data(), x.size());
}

void Axpy(double alpha, const Vec& x, Vec* y, int parallelism) {
  RAIN_CHECK(x.size() == y->size()) << "Axpy size mismatch";
  if (parallelism <= 1 || x.size() < kParallelGrain) {
    Axpy(alpha, x, y);
    return;
  }
  ParallelFor(parallelism, x.size(), [alpha, &x, y](size_t begin, size_t end, size_t) {
    simd::Axpy(alpha, x.data() + begin, y->data() + begin, end - begin);
  });
}

void Scale(double alpha, Vec* x) {
  for (double& v : *x) v *= alpha;
}

double Norm2(const Vec& x) { return std::sqrt(NormSq(x)); }

double NormSq(const Vec& x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

double NormSq(const Vec& x, int parallelism) {
  if (parallelism <= 1 || x.size() < kParallelGrain) return NormSq(x);
  return ParallelSum(parallelism, x.size(), [&x](size_t begin, size_t end) {
    double acc = 0.0;
    for (size_t i = begin; i < end; ++i) acc += x[i] * x[i];
    return acc;
  });
}

void ParallelAccumulate(int parallelism, size_t n, Vec* out,
                        const std::function<void(size_t begin, size_t end, Vec* acc)>& body) {
  if (n == 0) return;
  size_t chunks = parallelism < 1 ? 1 : static_cast<size_t>(parallelism);
  if (chunks > n) chunks = n;
  if (chunks <= 1) {
    body(0, n, out);
    return;
  }
  std::vector<Vec> partial(chunks, Vec(out->size(), 0.0));
  ParallelFor(parallelism, n, [&body, &partial](size_t begin, size_t end, size_t chunk) {
    body(begin, end, &partial[chunk]);
  });
  for (const Vec& p : partial) Axpy(1.0, p, out);
}

Vec Sub(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Sub size mismatch";
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

Vec Add(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Add size mismatch";
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return out;
}

double MaxAbsDiff(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "MaxAbsDiff size mismatch";
  double m = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = std::fabs(x[i] - y[i]);
    if (d > m) m = d;
  }
  return m;
}

}  // namespace vec
}  // namespace rain
