#include "tensor/vector_ops.h"

#include <cmath>

#include "common/logging.h"

namespace rain {
namespace vec {

Vec Zeros(size_t n) { return Vec(n, 0.0); }

double Dot(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Dot size mismatch";
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void Axpy(double alpha, const Vec& x, Vec* y) {
  RAIN_CHECK(x.size() == y->size()) << "Axpy size mismatch";
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vec* x) {
  for (double& v : *x) v *= alpha;
}

double Norm2(const Vec& x) { return std::sqrt(NormSq(x)); }

double NormSq(const Vec& x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

Vec Sub(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Sub size mismatch";
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

Vec Add(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Add size mismatch";
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return out;
}

double MaxAbsDiff(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "MaxAbsDiff size mismatch";
  double m = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = std::fabs(x[i] - y[i]);
    if (d > m) m = d;
  }
  return m;
}

}  // namespace vec
}  // namespace rain
