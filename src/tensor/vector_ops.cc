#include "tensor/vector_ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/thread_pool.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RAIN_SIMD_X86 1
#include <immintrin.h>
#endif

namespace rain {
namespace vec {
namespace {

// --------------------------------------------------------------------------
// Tier selection. Three tiers, ordered; the active tier is the minimum of
// (best CPU-supported tier, RAIN_SIMD env cap, ForceBackend cap), with
// ForceScalar trumping everything. All state is relaxed-atomic: the tier
// is a per-process constant in production (env read once), and the test
// hooks toggle it only around call sites.
// --------------------------------------------------------------------------

constexpr int kTierScalar = 0;
constexpr int kTierAvx2 = 1;
constexpr int kTierAvx512 = 2;

std::atomic<bool> g_force_scalar{false};
std::atomic<int> g_forced_cap{-1};  // -1 = no ForceBackend cap
std::atomic<int> g_env_cap{-2};     // -2 = RAIN_SIMD not read yet, -1 = unset

int DetectBestTier() {
#ifdef RAIN_SIMD_X86
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return kTierAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return kTierAvx2;
  }
#endif
  return kTierScalar;
}

int BestTier() {
  static const int best = DetectBestTier();
  return best;
}

/// Parses a tier name; -1 for unrecognized.
int ParseTierName(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return kTierScalar;
  if (std::strcmp(name, "avx2") == 0 || std::strcmp(name, "avx2-fma") == 0) {
    return kTierAvx2;
  }
  if (std::strcmp(name, "avx512") == 0) return kTierAvx512;
  return -1;
}

/// Reads RAIN_SIMD. Unrecognized values get a one-time stderr note and
/// behave as unset; a recognized tier above what the CPU supports gets a
/// one-time clamp note (the min in ActiveTier does the clamping).
int ReadEnvCap() {
  const char* env = std::getenv("RAIN_SIMD");
  if (env == nullptr || env[0] == '\0') return -1;
  const int tier = ParseTierName(env);
  if (tier < 0) {
    std::fprintf(stderr,
                 "RAIN_SIMD='%s' not recognized (expected avx512|avx2|scalar); "
                 "using runtime dispatch\n",
                 env);
    return -1;
  }
  if (tier > BestTier()) {
    std::fprintf(stderr,
                 "RAIN_SIMD='%s' exceeds CPU support; clamping to the best "
                 "supported tier\n",
                 env);
  }
  return tier;
}

int EnvCap() {
  int v = g_env_cap.load(std::memory_order_relaxed);
  if (v == -2) {
    v = ReadEnvCap();
    g_env_cap.store(v, std::memory_order_relaxed);
  }
  return v;
}

int ActiveTier() {
  if (g_force_scalar.load(std::memory_order_relaxed)) return kTierScalar;
  int tier = BestTier();
  const int env = EnvCap();
  if (env >= 0 && env < tier) tier = env;
  const int forced = g_forced_cap.load(std::memory_order_relaxed);
  if (forced >= 0 && forced < tier) tier = forced;
  return tier;
}

// --------------------------------------------------------------------------
// Scalar kernels.
// --------------------------------------------------------------------------

double DotScalar(const double* x, const double* y, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void AxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void MulAddScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void MulAdd4Scalar(const double* a, const double* b0, const double* b1,
                   const double* b2, const double* b3, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    // Separate statements keep each term's mul and add distinct
    // roundings — the exact chain of four sequential MulAdd calls.
    y[i] += a[0] * b0[i];
    y[i] += a[1] * b1[i];
    y[i] += a[2] * b2[i];
    y[i] += a[3] * b3[i];
  }
}

void MulScalar(const double* a, const double* b, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

// --------------------------------------------------------------------------
// Scalar fallbacks for the SHAPED-REDUCTION kernels. These replicate the
// SIMD lane shape exactly — four virtual lane accumulators filled in
// stride-4 steps, combined as (l0+l1)+(l2+l3) (resp. products), scalar
// tail folded afterwards — so all backends produce identical bits. (The
// avx512 tier consumes eight elements per step as two sequential
// four-lane rounds, which is the same chain.)
// --------------------------------------------------------------------------

double Dot2Scalar(const double* a, const double* x, const double* b,
                  const double* y, size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t j = 0; j < 4; ++j) {
      lane[j] += a[i + j] * x[i + j] + b[i + j] * y[i + j];
    }
  }
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += a[i] * x[i] + b[i] * y[i];
  return total;
}

double GatherSumScalar(const double* v, const int32_t* idx, size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t j = 0; j < 4; ++j) lane[j] += v[idx[i + j]];
  }
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += v[idx[i]];
  return total;
}

double GatherProdScalar(const double* v, const int32_t* idx, size_t n) {
  double lane[4] = {1.0, 1.0, 1.0, 1.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t j = 0; j < 4; ++j) lane[j] *= v[idx[i + j]];
  }
  double total = (lane[0] * lane[1]) * (lane[2] * lane[3]);
  for (; i < n; ++i) total *= v[idx[i]];
  return total;
}

double GatherProdOneMinusScalar(const double* v, const int32_t* idx, size_t n) {
  double lane[4] = {1.0, 1.0, 1.0, 1.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t j = 0; j < 4; ++j) lane[j] *= 1.0 - v[idx[i + j]];
  }
  double total = (lane[0] * lane[1]) * (lane[2] * lane[3]);
  for (; i < n; ++i) total *= 1.0 - v[idx[i]];
  return total;
}

double GatherDotScalar(const double* v, const int32_t* idx, const double* w,
                       size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t j = 0; j < 4; ++j) lane[j] += v[idx[i + j]] * w[i + j];
  }
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += v[idx[i]] * w[i];
  return total;
}

void GatherScalar(const double* v, const int32_t* idx, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = v[idx[i]];
}

#ifdef RAIN_SIMD_X86

// ==========================================================================
// AVX2/FMA tier.
// ==========================================================================

/// 2x-unrolled AVX2/FMA dot with a fixed-shape reduction: the two
/// running 4-lane accumulators are added, then the four lanes combine as
/// (l0 + l1) + (l2 + l3), and the scalar tail folds on afterwards — the
/// grouping depends only on n, never on alignment or scheduling.
__attribute__((target("avx2,fma"))) double DotAvx2(const double* x,
                                                   const double* y, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4),
                           acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), acc0);
    i += 4;
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total = __builtin_fma(x[i], y[i], total);
  return total;
}

/// AVX2/FMA axpy. Every element — vector body and tail alike — is
/// computed with a single fused rounding, so an element's bits never
/// depend on which chunk (and hence which position within a chunk) it
/// landed in: chunked Axpy stays bitwise-identical to sequential.
__attribute__((target("avx2,fma"))) void AxpyAvx2(double alpha, const double* x,
                                                  double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] = __builtin_fma(alpha, x[i], y[i]);
}

/// ELEMENTWISE kernels are compiled with target("avx2") only — no FMA —
/// so neither the vector body nor the scalar tail can contract the
/// multiply-add into a single rounding: every element gets the exact
/// round(y + round(alpha*x)) sequence of the plain scalar loop, making
/// the AVX2 path bitwise identical to the fallback. (The build also sets
/// -ffp-contract=off globally, which is what keeps the avx512 variants —
/// whose target does include FMA hardware — from contracting.)
__attribute__((target("avx2"))) void MulAddAvx2(double alpha, const double* x,
                                                double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

/// Four chained multiply-adds per pass over y, for the GEMM inner loop:
/// y[i] receives round(y + round(a0*b0)), then a1*b1, a2*b2, a3*b3 — the
/// identical per-element rounding sequence as four sequential MulAdd
/// calls, but with one load/store of y instead of four.
__attribute__((target("avx2"))) void MulAdd4Avx2(const double* alpha,
                                                 const double* b0,
                                                 const double* b1,
                                                 const double* b2,
                                                 const double* b3, double* y,
                                                 size_t n) {
  const __m256d va0 = _mm256_set1_pd(alpha[0]);
  const __m256d va1 = _mm256_set1_pd(alpha[1]);
  const __m256d va2 = _mm256_set1_pd(alpha[2]);
  const __m256d va3 = _mm256_set1_pd(alpha[3]);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d acc = _mm256_loadu_pd(y + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va0, _mm256_loadu_pd(b0 + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va1, _mm256_loadu_pd(b1 + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va2, _mm256_loadu_pd(b2 + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va3, _mm256_loadu_pd(b3 + i)));
    _mm256_storeu_pd(y + i, acc);
  }
  for (; i < n; ++i) {
    // Separate statements keep each term's mul and add distinct
    // roundings, exactly like the sequential MulAdd tail.
    y[i] += alpha[0] * b0[i];
    y[i] += alpha[1] * b1[i];
    y[i] += alpha[2] * b2[i];
    y[i] += alpha[3] * b3[i];
  }
}

__attribute__((target("avx2"))) void MulAdd2Avx2(double a0, const double* x0,
                                                 double a1, const double* x1,
                                                 double* y, size_t n) {
  const __m256d va0 = _mm256_set1_pd(a0);
  const __m256d va1 = _mm256_set1_pd(a1);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_add_pd(_mm256_mul_pd(va0, _mm256_loadu_pd(x0 + i)),
                                    _mm256_mul_pd(va1, _mm256_loadu_pd(x1 + i)));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), t));
  }
  for (; i < n; ++i) y[i] += a0 * x0[i] + a1 * x1[i];
}

__attribute__((target("avx2"))) void MulAvx2(const double* a, const double* b,
                                             double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

__attribute__((target("avx2"))) double Dot2Avx2(const double* a, const double* x,
                                                const double* b, const double* y,
                                                size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(a + i),
                                                  _mm256_loadu_pd(x + i)),
                                    _mm256_mul_pd(_mm256_loadu_pd(b + i),
                                                  _mm256_loadu_pd(y + i)));
    acc = _mm256_add_pd(acc, t);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += a[i] * x[i] + b[i] * y[i];
  return total;
}

__attribute__((target("avx2,fma"))) void GemvAvx2(const double* a, size_t rows,
                                                  size_t cols, const double* x,
                                                  double* out) {
  for (size_t r = 0; r < rows; ++r) out[r] = DotAvx2(a + r * cols, x, cols);
}

// The masked gather form (all-ones mask, zero source) is used instead of
// _mm256_i32gather_pd: the unmasked intrinsic seeds its destination with
// _mm256_undefined_pd(), which gcc's -Wmaybe-uninitialized flags under
// -Werror. Semantics are identical — every lane is gathered.
__attribute__((target("avx2"))) inline __m256d GatherPd(const double* v,
                                                        __m128i vi) {
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), v, vi, all, 8);
}

__attribute__((target("avx2"))) double GatherSumAvx2(const double* v,
                                                     const int32_t* idx, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_add_pd(acc, GatherPd(v, vi));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += v[idx[i]];
  return total;
}

__attribute__((target("avx2"))) double GatherProdAvx2(const double* v,
                                                      const int32_t* idx,
                                                      size_t n) {
  __m256d acc = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_mul_pd(acc, GatherPd(v, vi));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] * lane[1]) * (lane[2] * lane[3]);
  for (; i < n; ++i) total *= v[idx[i]];
  return total;
}

__attribute__((target("avx2"))) double GatherProdOneMinusAvx2(const double* v,
                                                              const int32_t* idx,
                                                              size_t n) {
  const __m256d ones = _mm256_set1_pd(1.0);
  __m256d acc = ones;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_mul_pd(acc, _mm256_sub_pd(ones, GatherPd(v, vi)));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] * lane[1]) * (lane[2] * lane[3]);
  for (; i < n; ++i) total *= 1.0 - v[idx[i]];
  return total;
}

__attribute__((target("avx2"))) double GatherDotAvx2(const double* v,
                                                     const int32_t* idx,
                                                     const double* w, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(GatherPd(v, vi), _mm256_loadu_pd(w + i)));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += v[idx[i]] * w[i];
  return total;
}

__attribute__((target("avx2"))) void GatherAvx2(const double* v,
                                                const int32_t* idx, double* out,
                                                size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    _mm256_storeu_pd(out + i, GatherPd(v, vi));
  }
  for (; i < n; ++i) out[i] = v[idx[i]];
}

// gcc's AVX-512 intrinsic headers seed several destinations with
// _mm512_undefined_pd() internally (even the plain 512->256 cast), which
// the middle-end flags as -Wmaybe-uninitialized when inlined here under
// -Werror (gcc PR 105593). The lanes in question are all fully written;
// suppress the bogus diagnostic for this section only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

// ==========================================================================
// AVX-512 tier. Every kernel here is constructed to be BITWISE IDENTICAL
// to its avx2-fma counterpart: a 512-bit accumulator is treated as the
// avx2 tier's two 256-bit accumulators side by side (same per-lane
// chains), shaped reductions consume eight elements per step as two
// sequential four-lane rounds (same chain as two avx2 rounds), and
// elementwise kernels keep the separate mul/add roundings. The wider
// registers buy instruction count, never different bits — so a host
// upgrade (or RAIN_SIMD forcing) can never change results vs avx2-fma.
// ==========================================================================

#define RAIN_TARGET_AVX512 "avx512f,avx512dq,avx512vl,avx2,fma"

// Half extraction via cast/shuffle rather than _mm512_extractf64x4_pd:
// gcc 12's extract intrinsic routes through _mm256_undefined_pd(), which
// -Wmaybe-uninitialized flags under -Werror. Same lanes, same zero cost.
__attribute__((target("avx512f,avx512dq,avx512vl,avx2,fma"))) inline __m256d
Lo256(__m512d v) {
  return _mm512_castpd512_pd256(v);
}

__attribute__((target("avx512f,avx512dq,avx512vl,avx2,fma"))) inline __m256d
Hi256(__m512d v) {
  return _mm512_castpd512_pd256(_mm512_shuffle_f64x2(v, v, 0xEE));
}

// Masked form for the same reason as GatherPd above: the unmasked
// _mm512_i32gather_pd seeds its destination with an undefined value that
// gcc's -Wmaybe-uninitialized flags under -Werror. All eight lanes gather.
__attribute__((target(RAIN_TARGET_AVX512))) inline __m512d Gather8Pd(
    const double* v, __m256i vi) {
  return _mm512_mask_i32gather_pd(_mm512_setzero_pd(), static_cast<__mmask8>(0xFF),
                                  vi, v, 8);
}

__attribute__((target(RAIN_TARGET_AVX512))) double Dot512(const double* x,
                                                          const double* y,
                                                          size_t n) {
  // One 512-bit accumulator == DotAvx2's (acc0 | acc1) pair: lane j
  // carries the chain of elements i ≡ j (mod 8), exactly as avx2.
  __m512d acc01 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc01 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i), acc01);
  }
  __m256d acc0 = Lo256(acc01);
  const __m256d acc1 = Hi256(acc01);
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), acc0);
    i += 4;
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total = __builtin_fma(x[i], y[i], total);
  return total;
}

__attribute__((target(RAIN_TARGET_AVX512))) void Axpy512(double alpha,
                                                         const double* x,
                                                         double* y, size_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_fmadd_pd(va, _mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i)));
  }
  if (i + 4 <= n) {
    const __m256d va4 = _mm256_set1_pd(alpha);
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(va4, _mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i)));
    i += 4;
  }
  for (; i < n; ++i) y[i] = __builtin_fma(alpha, x[i], y[i]);
}

__attribute__((target(RAIN_TARGET_AVX512))) void MulAdd512(double alpha,
                                                           const double* x,
                                                           double* y, size_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d prod = _mm512_mul_pd(va, _mm512_loadu_pd(x + i));
    _mm512_storeu_pd(y + i, _mm512_add_pd(_mm512_loadu_pd(y + i), prod));
  }
  // Remainder (< 8) through the avx2 kernel: same separate-rounding
  // elementwise contract, and its tail cannot contract (no FMA target).
  if (i < n) MulAddAvx2(alpha, x + i, y + i, n - i);
}

__attribute__((target(RAIN_TARGET_AVX512))) void MulAdd2_512(
    double a0, const double* x0, double a1, const double* x1, double* y,
    size_t n) {
  const __m512d va0 = _mm512_set1_pd(a0);
  const __m512d va1 = _mm512_set1_pd(a1);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d t = _mm512_add_pd(_mm512_mul_pd(va0, _mm512_loadu_pd(x0 + i)),
                                    _mm512_mul_pd(va1, _mm512_loadu_pd(x1 + i)));
    _mm512_storeu_pd(y + i, _mm512_add_pd(_mm512_loadu_pd(y + i), t));
  }
  if (i < n) MulAdd2Avx2(a0, x0 + i, a1, x1 + i, y + i, n - i);
}

__attribute__((target(RAIN_TARGET_AVX512))) void MulAdd4_512(
    const double* alpha, const double* b0, const double* b1, const double* b2,
    const double* b3, double* y, size_t n) {
  const __m512d va0 = _mm512_set1_pd(alpha[0]);
  const __m512d va1 = _mm512_set1_pd(alpha[1]);
  const __m512d va2 = _mm512_set1_pd(alpha[2]);
  const __m512d va3 = _mm512_set1_pd(alpha[3]);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d acc = _mm512_loadu_pd(y + i);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(va0, _mm512_loadu_pd(b0 + i)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(va1, _mm512_loadu_pd(b1 + i)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(va2, _mm512_loadu_pd(b2 + i)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(va3, _mm512_loadu_pd(b3 + i)));
    _mm512_storeu_pd(y + i, acc);
  }
  if (i < n) MulAdd4Avx2(alpha, b0 + i, b1 + i, b2 + i, b3 + i, y + i, n - i);
}

__attribute__((target(RAIN_TARGET_AVX512))) void Mul512(const double* a,
                                                        const double* b,
                                                        double* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(out + i,
                     _mm512_mul_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i)));
  }
  if (i < n) MulAvx2(a + i, b + i, out + i, n - i);
}

__attribute__((target(RAIN_TARGET_AVX512))) double Dot2_512(const double* a,
                                                            const double* x,
                                                            const double* b,
                                                            const double* y,
                                                            size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d t = _mm512_add_pd(_mm512_mul_pd(_mm512_loadu_pd(a + i),
                                                  _mm512_loadu_pd(x + i)),
                                    _mm512_mul_pd(_mm512_loadu_pd(b + i),
                                                  _mm512_loadu_pd(y + i)));
    // Two sequential four-lane rounds — the same chain as two avx2
    // iterations over i and i+4.
    acc = _mm256_add_pd(acc, Lo256(t));
    acc = _mm256_add_pd(acc, Hi256(t));
  }
  if (i + 4 <= n) {
    const __m256d t = _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(a + i),
                                                  _mm256_loadu_pd(x + i)),
                                    _mm256_mul_pd(_mm256_loadu_pd(b + i),
                                                  _mm256_loadu_pd(y + i)));
    acc = _mm256_add_pd(acc, t);
    i += 4;
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += a[i] * x[i] + b[i] * y[i];
  return total;
}

__attribute__((target(RAIN_TARGET_AVX512))) void Gemv512(const double* a,
                                                         size_t rows, size_t cols,
                                                         const double* x,
                                                         double* out) {
  for (size_t r = 0; r < rows; ++r) out[r] = Dot512(a + r * cols, x, cols);
}

__attribute__((target(RAIN_TARGET_AVX512))) double GatherSum512(
    const double* v, const int32_t* idx, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d g = Gather8Pd(v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i)));
    acc = _mm256_add_pd(acc, Lo256(g));
    acc = _mm256_add_pd(acc, Hi256(g));
  }
  if (i + 4 <= n) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_add_pd(acc, GatherPd(v, vi));
    i += 4;
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += v[idx[i]];
  return total;
}

__attribute__((target(RAIN_TARGET_AVX512))) double GatherProd512(
    const double* v, const int32_t* idx, size_t n) {
  __m256d acc = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d g = Gather8Pd(v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i)));
    acc = _mm256_mul_pd(acc, Lo256(g));
    acc = _mm256_mul_pd(acc, Hi256(g));
  }
  if (i + 4 <= n) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_mul_pd(acc, GatherPd(v, vi));
    i += 4;
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] * lane[1]) * (lane[2] * lane[3]);
  for (; i < n; ++i) total *= v[idx[i]];
  return total;
}

__attribute__((target(RAIN_TARGET_AVX512))) double GatherProdOneMinus512(
    const double* v, const int32_t* idx, size_t n) {
  const __m512d ones8 = _mm512_set1_pd(1.0);
  const __m256d ones4 = _mm256_set1_pd(1.0);
  __m256d acc = ones4;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d g = Gather8Pd(v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i)));
    const __m512d t = _mm512_sub_pd(ones8, g);
    acc = _mm256_mul_pd(acc, Lo256(t));
    acc = _mm256_mul_pd(acc, Hi256(t));
  }
  if (i + 4 <= n) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_mul_pd(acc, _mm256_sub_pd(ones4, GatherPd(v, vi)));
    i += 4;
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] * lane[1]) * (lane[2] * lane[3]);
  for (; i < n; ++i) total *= 1.0 - v[idx[i]];
  return total;
}

__attribute__((target(RAIN_TARGET_AVX512))) double GatherDot512(
    const double* v, const int32_t* idx, const double* w, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d g = Gather8Pd(v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i)));
    const __m512d t = _mm512_mul_pd(g, _mm512_loadu_pd(w + i));
    acc = _mm256_add_pd(acc, Lo256(t));
    acc = _mm256_add_pd(acc, Hi256(t));
  }
  if (i + 4 <= n) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(GatherPd(v, vi), _mm256_loadu_pd(w + i)));
    i += 4;
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total += v[idx[i]] * w[i];
  return total;
}

__attribute__((target(RAIN_TARGET_AVX512))) void Gather512(const double* v,
                                                           const int32_t* idx,
                                                           double* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        out + i,
        Gather8Pd(v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i))));
  }
  if (i < n) GatherAvx2(v, idx + i, out + i, n - i);
}

#undef RAIN_TARGET_AVX512

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // RAIN_SIMD_X86

/// Dispatches the MulAdd4 register tile for a known tier (hoisted out of
/// the GEMM inner loops so the atomic reads happen once per call).
inline void MulAdd4Tier(int tier, const double* a, const double* b0,
                        const double* b1, const double* b2, const double* b3,
                        double* y, size_t n) {
#ifdef RAIN_SIMD_X86
  if (tier >= kTierAvx512) {
    MulAdd4_512(a, b0, b1, b2, b3, y, n);
    return;
  }
  if (tier >= kTierAvx2) {
    MulAdd4Avx2(a, b0, b1, b2, b3, y, n);
    return;
  }
#else
  (void)tier;
#endif
  MulAdd4Scalar(a, b0, b1, b2, b3, y, n);
}

inline void MulAddTier(int tier, double alpha, const double* x, double* y,
                       size_t n) {
#ifdef RAIN_SIMD_X86
  if (tier >= kTierAvx512) {
    MulAdd512(alpha, x, y, n);
    return;
  }
  if (tier >= kTierAvx2) {
    MulAddAvx2(alpha, x, y, n);
    return;
  }
#else
  (void)tier;
#endif
  MulAddScalar(alpha, x, y, n);
}

}  // namespace

namespace simd {

const char* Backend() {
  switch (ActiveTier()) {
    case kTierAvx512:
      return "avx512";
    case kTierAvx2:
      return "avx2-fma";
    default:
      return "scalar";
  }
}

bool ForceScalar(bool force) {
  return g_force_scalar.exchange(force, std::memory_order_relaxed);
}

bool ForceBackend(const char* tier) {
  if (tier == nullptr || tier[0] == '\0') {
    g_forced_cap.store(-1, std::memory_order_relaxed);
    return true;
  }
  const int requested = ParseTierName(tier);
  if (requested < 0) {
    g_forced_cap.store(-1, std::memory_order_relaxed);
    return false;
  }
  g_forced_cap.store(requested, std::memory_order_relaxed);
  return ActiveTier() == requested;
}

void ReloadBackendEnv() {
  g_env_cap.store(ReadEnvCap(), std::memory_order_relaxed);
}

double Dot(const double* x, const double* y, size_t n) {
#ifdef RAIN_SIMD_X86
  const int tier = ActiveTier();
  if (tier >= kTierAvx512) return Dot512(x, y, n);
  if (tier >= kTierAvx2) return DotAvx2(x, y, n);
#endif
  return DotScalar(x, y, n);
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
#ifdef RAIN_SIMD_X86
  const int tier = ActiveTier();
  if (tier >= kTierAvx512) {
    Axpy512(alpha, x, y, n);
    return;
  }
  if (tier >= kTierAvx2) {
    AxpyAvx2(alpha, x, y, n);
    return;
  }
#endif
  AxpyScalar(alpha, x, y, n);
}

void MulAdd(double alpha, const double* x, double* y, size_t n) {
  MulAddTier(ActiveTier(), alpha, x, y, n);
}

void MulAdd2(double a0, const double* x0, double a1, const double* x1, double* y,
             size_t n) {
#ifdef RAIN_SIMD_X86
  const int tier = ActiveTier();
  if (tier >= kTierAvx512) {
    MulAdd2_512(a0, x0, a1, x1, y, n);
    return;
  }
  if (tier >= kTierAvx2) {
    MulAdd2Avx2(a0, x0, a1, x1, y, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) y[i] += a0 * x0[i] + a1 * x1[i];
}

void MulAdd4(const double* a, const double* b0, const double* b1,
             const double* b2, const double* b3, double* y, size_t n) {
  MulAdd4Tier(ActiveTier(), a, b0, b1, b2, b3, y, n);
}

void Mul(const double* a, const double* b, double* out, size_t n) {
#ifdef RAIN_SIMD_X86
  const int tier = ActiveTier();
  if (tier >= kTierAvx512) {
    Mul512(a, b, out, n);
    return;
  }
  if (tier >= kTierAvx2) {
    MulAvx2(a, b, out, n);
    return;
  }
#endif
  MulScalar(a, b, out, n);
}

double Dot2(const double* a, const double* x, const double* b, const double* y,
            size_t n) {
#ifdef RAIN_SIMD_X86
  const int tier = ActiveTier();
  if (tier >= kTierAvx512) return Dot2_512(a, x, b, y, n);
  if (tier >= kTierAvx2) return Dot2Avx2(a, x, b, y, n);
#endif
  return Dot2Scalar(a, x, b, y, n);
}

void Gemv(const double* a, size_t rows, size_t cols, const double* x, double* out) {
#ifdef RAIN_SIMD_X86
  const int tier = ActiveTier();
  if (tier >= kTierAvx512) {
    Gemv512(a, rows, cols, x, out);
    return;
  }
  if (tier >= kTierAvx2) {
    GemvAvx2(a, rows, cols, x, out);
    return;
  }
#endif
  for (size_t r = 0; r < rows; ++r) out[r] = DotScalar(a + r * cols, x, cols);
}

void GemvT(const double* a, size_t rows, size_t cols, const double* x, double* out) {
  const int tier = ActiveTier();
  for (size_t r = 0; r < rows; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    MulAddTier(tier, xr, a + r * cols, out, cols);
  }
}

void Gemm(const double* a, size_t a_rows, size_t k, const double* b, size_t n,
          double* out) {
  // Block sizes chosen so one a-block row plus the touched b-rows stay in
  // L1. The loop order (k-block outer, then a-row, then k) matches the
  // pre-SIMD Matrix kernel exactly; with the ELEMENTWISE MulAdd row
  // update the output bits match it too.
  constexpr size_t kBlockK = 64;
  const int tier = ActiveTier();
  for (size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const size_t k1 = std::min(k, k0 + kBlockK);
    for (size_t r = 0; r < a_rows; ++r) {
      const double* arow = a + r * k;
      double* orow = out + r * n;
      size_t kk = k0;
      if (tier >= kTierAvx2) {
        // Fuse four k-steps per pass over the output row: each element
        // still receives the same separate-mul-then-add sequence in the
        // same kk order, so the bits match the sequential loop below,
        // while the row is loaded/stored once instead of four times. A
        // zero coefficient drops to the sequential loop (which skips it,
        // as the pre-SIMD kernel did) — rare in dense products.
        for (; kk + 4 <= k1; kk += 4) {
          const double* alpha = arow + kk;
          if (alpha[0] == 0.0 || alpha[1] == 0.0 || alpha[2] == 0.0 ||
              alpha[3] == 0.0) {
            break;
          }
          MulAdd4Tier(tier, alpha, b + kk * n, b + (kk + 1) * n, b + (kk + 2) * n,
                      b + (kk + 3) * n, orow, n);
        }
      }
      for (; kk < k1; ++kk) {
        const double av = arow[kk];
        if (av == 0.0) continue;
        MulAddTier(tier, av, b + kk * n, orow, n);
      }
    }
  }
}

void GemmPacked(const double* a, size_t a_rows, size_t k, const double* b,
                size_t n, double* out) {
  if (a_rows == 0 || k == 0 || n == 0) return;
  // Panel sizes: a KC x NC B-panel (kGemmKc * kGemmNc doubles = 384 KiB)
  // stays L2-resident while every row of `a` sweeps over it, and the
  // MulAdd4 inner pass touches 4 panel rows + 1 output row segment
  // (5 * NC doubles = 10 KiB), comfortably L1-resident. Per output
  // element the k-terms still accumulate in ascending k order (k0 blocks
  // ascending, kk ascending inside), so the bits equal Gemm's — and the
  // scalar reference's — exactly.
  constexpr size_t kGemmKc = 192;
  constexpr size_t kGemmNc = 256;
  thread_local std::vector<double> panel;
  panel.resize(kGemmKc * kGemmNc);
  const int tier = ActiveTier();
  for (size_t jc = 0; jc < n; jc += kGemmNc) {
    const size_t nc = std::min(kGemmNc, n - jc);
    for (size_t k0 = 0; k0 < k; k0 += kGemmKc) {
      const size_t kc = std::min(kGemmKc, k - k0);
      // Pack B[k0 .. k0+kc) x [jc .. jc+nc) into a contiguous panel so
      // the register tile streams dense rows regardless of n.
      for (size_t kk = 0; kk < kc; ++kk) {
        std::memcpy(panel.data() + kk * nc, b + (k0 + kk) * n + jc,
                    nc * sizeof(double));
      }
      for (size_t r = 0; r < a_rows; ++r) {
        const double* arow = a + r * k + k0;
        double* orow = out + r * n + jc;
        // Per-panel sparsity check: one scan of the row's coefficient
        // block decides between the unconditional MulAdd4 fast loop and
        // the per-coefficient loop that preserves the zero-skip.
        bool has_zero = false;
        for (size_t kk = 0; kk < kc; ++kk) {
          if (arow[kk] == 0.0) {
            has_zero = true;
            break;
          }
        }
        size_t kk = 0;
        if (!has_zero) {
          for (; kk + 4 <= kc; kk += 4) {
            const double* p = panel.data() + kk * nc;
            MulAdd4Tier(tier, arow + kk, p, p + nc, p + 2 * nc, p + 3 * nc, orow,
                        nc);
          }
        }
        for (; kk < kc; ++kk) {
          const double av = arow[kk];
          if (av == 0.0) continue;
          MulAddTier(tier, av, panel.data() + kk * nc, orow, nc);
        }
      }
    }
  }
}

void GemmNT(const double* a, size_t m, size_t lda, const double* b, size_t n,
            size_t ldb, size_t k, double* out, size_t ldo) {
  // Tile over b-rows so a block of b stays cache-resident while the
  // a-rows stream past it; every element is one Dot, so the tiling is
  // bitwise-invisible.
  constexpr size_t kTileB = 16;
  for (size_t jb = 0; jb < n; jb += kTileB) {
    const size_t je = std::min(n, jb + kTileB);
    for (size_t i = 0; i < m; ++i) {
      const double* ai = a + i * lda;
      double* orow = out + i * ldo;
      for (size_t j = jb; j < je; ++j) orow[j] = Dot(ai, b + j * ldb, k);
    }
  }
}

double GatherSum(const double* v, const int32_t* idx, size_t n) {
#ifdef RAIN_SIMD_X86
  if (n >= kGatherSimdCutoff) {
    const int tier = ActiveTier();
    if (tier >= kTierAvx512) return GatherSum512(v, idx, n);
    if (tier >= kTierAvx2) return GatherSumAvx2(v, idx, n);
  }
#endif
  return GatherSumScalar(v, idx, n);
}

double GatherProd(const double* v, const int32_t* idx, size_t n) {
#ifdef RAIN_SIMD_X86
  if (n >= kGatherSimdCutoff) {
    const int tier = ActiveTier();
    if (tier >= kTierAvx512) return GatherProd512(v, idx, n);
    if (tier >= kTierAvx2) return GatherProdAvx2(v, idx, n);
  }
#endif
  return GatherProdScalar(v, idx, n);
}

double GatherProdOneMinus(const double* v, const int32_t* idx, size_t n) {
#ifdef RAIN_SIMD_X86
  if (n >= kGatherSimdCutoff) {
    const int tier = ActiveTier();
    if (tier >= kTierAvx512) return GatherProdOneMinus512(v, idx, n);
    if (tier >= kTierAvx2) return GatherProdOneMinusAvx2(v, idx, n);
  }
#endif
  return GatherProdOneMinusScalar(v, idx, n);
}

double GatherDot(const double* v, const int32_t* idx, const double* w, size_t n) {
#ifdef RAIN_SIMD_X86
  if (n >= kGatherSimdCutoff) {
    const int tier = ActiveTier();
    if (tier >= kTierAvx512) return GatherDot512(v, idx, w, n);
    if (tier >= kTierAvx2) return GatherDotAvx2(v, idx, w, n);
  }
#endif
  return GatherDotScalar(v, idx, w, n);
}

void Gather(const double* v, const int32_t* idx, double* out, size_t n) {
#ifdef RAIN_SIMD_X86
  if (n >= kGatherSimdCutoff) {
    const int tier = ActiveTier();
    if (tier >= kTierAvx512) {
      Gather512(v, idx, out, n);
      return;
    }
    if (tier >= kTierAvx2) {
      GatherAvx2(v, idx, out, n);
      return;
    }
  }
#endif
  GatherScalar(v, idx, out, n);
}

void ScatterAxpy(double alpha, const double* x, const int32_t* idx, double* y,
                 size_t n) {
  // The products vectorize; the scatter side stays a scalar loop in
  // ascending i order so duplicate indices accumulate deterministically.
  // Each element gets round(y + round(alpha * x)) — the plain scalar
  // statement's two roundings — on every backend.
  constexpr size_t kBlock = 128;
  double prod[kBlock];
  size_t i = 0;
  while (i < n) {
    const size_t len = std::min(kBlock, n - i);
    for (size_t j = 0; j < len; ++j) prod[j] = alpha * x[i + j];
    for (size_t j = 0; j < len; ++j) y[idx[i + j]] += prod[j];
    i += len;
  }
}

void PrefixSuffixProducts(const double* c, size_t k, double* prefix,
                          double* suffix) {
  prefix[0] = 1.0;
  for (size_t j = 0; j < k; ++j) prefix[j + 1] = prefix[j] * c[j];
  suffix[k] = 1.0;
  for (size_t j = k; j-- > 0;) suffix[j] = suffix[j + 1] * c[j];
}

}  // namespace simd

Vec Zeros(size_t n) { return Vec(n, 0.0); }

double Dot(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Dot size mismatch";
  return simd::Dot(x.data(), y.data(), x.size());
}

double Dot(const Vec& x, const Vec& y, int parallelism) {
  RAIN_CHECK(x.size() == y.size()) << "Dot size mismatch";
  if (parallelism <= 1 || x.size() < kParallelGrain) return Dot(x, y);
  return ParallelSum(parallelism, x.size(), [&x, &y](size_t begin, size_t end) {
    return simd::Dot(x.data() + begin, y.data() + begin, end - begin);
  });
}

void Axpy(double alpha, const Vec& x, Vec* y) {
  RAIN_CHECK(x.size() == y->size()) << "Axpy size mismatch";
  simd::Axpy(alpha, x.data(), y->data(), x.size());
}

void Axpy(double alpha, const Vec& x, Vec* y, int parallelism) {
  RAIN_CHECK(x.size() == y->size()) << "Axpy size mismatch";
  if (parallelism <= 1 || x.size() < kParallelGrain) {
    Axpy(alpha, x, y);
    return;
  }
  ParallelFor(parallelism, x.size(), [alpha, &x, y](size_t begin, size_t end, size_t) {
    simd::Axpy(alpha, x.data() + begin, y->data() + begin, end - begin);
  });
}

void Scale(double alpha, Vec* x) {
  for (double& v : *x) v *= alpha;
}

double Norm2(const Vec& x) { return std::sqrt(NormSq(x)); }

double NormSq(const Vec& x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

double NormSq(const Vec& x, int parallelism) {
  if (parallelism <= 1 || x.size() < kParallelGrain) return NormSq(x);
  return ParallelSum(parallelism, x.size(), [&x](size_t begin, size_t end) {
    double acc = 0.0;
    for (size_t i = begin; i < end; ++i) acc += x[i] * x[i];
    return acc;
  });
}

void ParallelAccumulate(int parallelism, size_t n, Vec* out,
                        const std::function<void(size_t begin, size_t end, Vec* acc)>& body) {
  if (n == 0) return;
  size_t chunks = parallelism < 1 ? 1 : static_cast<size_t>(parallelism);
  if (chunks > n) chunks = n;
  if (chunks <= 1) {
    body(0, n, out);
    return;
  }
  std::vector<Vec> partial(chunks, Vec(out->size(), 0.0));
  ParallelFor(parallelism, n, [&body, &partial](size_t begin, size_t end, size_t chunk) {
    body(begin, end, &partial[chunk]);
  });
  for (const Vec& p : partial) Axpy(1.0, p, out);
}

Vec Sub(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Sub size mismatch";
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

Vec Add(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Add size mismatch";
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return out;
}

double MaxAbsDiff(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "MaxAbsDiff size mismatch";
  double m = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = std::fabs(x[i] - y[i]);
    if (d > m) m = d;
  }
  return m;
}

}  // namespace vec
}  // namespace rain
