#include "tensor/vector_ops.h"

#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RAIN_SIMD_X86 1
#include <immintrin.h>
#endif

namespace rain {
namespace vec {
namespace {

std::atomic<bool> g_force_scalar{false};

double DotScalar(const double* x, const double* y, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void AxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

#ifdef RAIN_SIMD_X86

/// 2x-unrolled AVX2/FMA dot with a fixed-shape reduction: the two
/// running 4-lane accumulators are added, then the four lanes combine as
/// (l0 + l1) + (l2 + l3), and the scalar tail folds on afterwards — the
/// grouping depends only on n, never on alignment or scheduling.
__attribute__((target("avx2,fma"))) double DotAvx2(const double* x,
                                                   const double* y, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4),
                           acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), acc0);
    i += 4;
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) total = __builtin_fma(x[i], y[i], total);
  return total;
}

/// AVX2/FMA axpy. Every element — vector body and tail alike — is
/// computed with a single fused rounding, so an element's bits never
/// depend on which chunk (and hence which position within a chunk) it
/// landed in: chunked Axpy stays bitwise-identical to sequential.
__attribute__((target("avx2,fma"))) void AxpyAvx2(double alpha, const double* x,
                                                  double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] = __builtin_fma(alpha, x[i], y[i]);
}

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // RAIN_SIMD_X86

bool UseSimd() {
#ifdef RAIN_SIMD_X86
  static const bool available = CpuHasAvx2Fma();
  return available && !g_force_scalar.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

double DotRange(const double* x, const double* y, size_t n) {
#ifdef RAIN_SIMD_X86
  if (UseSimd()) return DotAvx2(x, y, n);
#endif
  return DotScalar(x, y, n);
}

void AxpyRange(double alpha, const double* x, double* y, size_t n) {
#ifdef RAIN_SIMD_X86
  if (UseSimd()) {
    AxpyAvx2(alpha, x, y, n);
    return;
  }
#endif
  AxpyScalar(alpha, x, y, n);
}

}  // namespace

namespace simd {

const char* Backend() { return UseSimd() ? "avx2-fma" : "scalar"; }

bool ForceScalar(bool force) {
  return g_force_scalar.exchange(force, std::memory_order_relaxed);
}

}  // namespace simd

Vec Zeros(size_t n) { return Vec(n, 0.0); }

double Dot(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Dot size mismatch";
  return DotRange(x.data(), y.data(), x.size());
}

double Dot(const Vec& x, const Vec& y, int parallelism) {
  RAIN_CHECK(x.size() == y.size()) << "Dot size mismatch";
  if (parallelism <= 1 || x.size() < kParallelGrain) return Dot(x, y);
  return ParallelSum(parallelism, x.size(), [&x, &y](size_t begin, size_t end) {
    return DotRange(x.data() + begin, y.data() + begin, end - begin);
  });
}

void Axpy(double alpha, const Vec& x, Vec* y) {
  RAIN_CHECK(x.size() == y->size()) << "Axpy size mismatch";
  AxpyRange(alpha, x.data(), y->data(), x.size());
}

void Axpy(double alpha, const Vec& x, Vec* y, int parallelism) {
  RAIN_CHECK(x.size() == y->size()) << "Axpy size mismatch";
  if (parallelism <= 1 || x.size() < kParallelGrain) {
    Axpy(alpha, x, y);
    return;
  }
  ParallelFor(parallelism, x.size(), [alpha, &x, y](size_t begin, size_t end, size_t) {
    AxpyRange(alpha, x.data() + begin, y->data() + begin, end - begin);
  });
}

void Scale(double alpha, Vec* x) {
  for (double& v : *x) v *= alpha;
}

double Norm2(const Vec& x) { return std::sqrt(NormSq(x)); }

double NormSq(const Vec& x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

double NormSq(const Vec& x, int parallelism) {
  if (parallelism <= 1 || x.size() < kParallelGrain) return NormSq(x);
  return ParallelSum(parallelism, x.size(), [&x](size_t begin, size_t end) {
    double acc = 0.0;
    for (size_t i = begin; i < end; ++i) acc += x[i] * x[i];
    return acc;
  });
}

void ParallelAccumulate(int parallelism, size_t n, Vec* out,
                        const std::function<void(size_t begin, size_t end, Vec* acc)>& body) {
  if (n == 0) return;
  size_t chunks = parallelism < 1 ? 1 : static_cast<size_t>(parallelism);
  if (chunks > n) chunks = n;
  if (chunks <= 1) {
    body(0, n, out);
    return;
  }
  std::vector<Vec> partial(chunks, Vec(out->size(), 0.0));
  ParallelFor(parallelism, n, [&body, &partial](size_t begin, size_t end, size_t chunk) {
    body(begin, end, &partial[chunk]);
  });
  for (const Vec& p : partial) Axpy(1.0, p, out);
}

Vec Sub(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Sub size mismatch";
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

Vec Add(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "Add size mismatch";
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return out;
}

double MaxAbsDiff(const Vec& x, const Vec& y) {
  RAIN_CHECK(x.size() == y.size()) << "MaxAbsDiff size mismatch";
  double m = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = std::fabs(x[i] - y[i]);
    if (d > m) m = d;
  }
  return m;
}

}  // namespace vec
}  // namespace rain
