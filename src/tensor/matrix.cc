#include "tensor/matrix.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rain {

Vec Matrix::RowVec(size_t r) const {
  RAIN_CHECK(r < rows_) << "row out of range";
  return Vec(Row(r), Row(r) + cols_);
}

void Matrix::SetRow(size_t r, const Vec& v) {
  RAIN_CHECK(r < rows_ && v.size() == cols_) << "SetRow shape mismatch";
  for (size_t c = 0; c < cols_; ++c) At(r, c) = v[c];
}

Vec Matrix::MatVec(const Vec& x) const {
  RAIN_CHECK(x.size() == cols_) << "MatVec shape mismatch";
  Vec out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    out[r] = acc;
  }
  return out;
}

Vec Matrix::MatVec(const Vec& x, int parallelism) const {
  RAIN_CHECK(x.size() == cols_) << "MatVec shape mismatch";
  if (parallelism <= 1 || rows_ * cols_ < vec::kParallelGrain) return MatVec(x);
  Vec out(rows_, 0.0);
  ParallelFor(parallelism, rows_, [this, &x, &out](size_t begin, size_t end, size_t) {
    for (size_t r = begin; r < end; ++r) {
      const double* row = Row(r);
      double acc = 0.0;
      for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
      out[r] = acc;
    }
  });
  return out;
}

Vec Matrix::MatTVec(const Vec& x) const {
  RAIN_CHECK(x.size() == rows_) << "MatTVec shape mismatch";
  Vec out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) out[c] += xr * row[c];
  }
  return out;
}

Vec Matrix::MatTVec(const Vec& x, int parallelism) const {
  RAIN_CHECK(x.size() == rows_) << "MatTVec shape mismatch";
  if (parallelism <= 1 || rows_ * cols_ < vec::kParallelGrain) return MatTVec(x);
  Vec out(cols_, 0.0);
  vec::ParallelAccumulate(
      parallelism, rows_, &out, [this, &x](size_t begin, size_t end, Vec* acc) {
        for (size_t r = begin; r < end; ++r) {
          const double* row = Row(r);
          const double xr = x[r];
          if (xr == 0.0) continue;
          for (size_t c = 0; c < cols_; ++c) (*acc)[c] += xr * row[c];
        }
      });
  return out;
}

Matrix MatMul(const Matrix& a, const Matrix& b, int parallelism) {
  RAIN_CHECK(a.cols() == b.rows()) << "MatMul shape mismatch";
  Matrix out(a.rows(), b.cols());
  // Block sizes chosen so one a-block row plus the touched b-rows stay in L1.
  constexpr size_t kBlockK = 64;
  const size_t n = b.cols();
  const size_t k_total = a.cols();
  ParallelFor(parallelism, a.rows(), [&](size_t begin, size_t end, size_t) {
    for (size_t k0 = 0; k0 < k_total; k0 += kBlockK) {
      const size_t k1 = std::min(k_total, k0 + kBlockK);
      for (size_t r = begin; r < end; ++r) {
        const double* arow = a.Row(r);
        double* orow = out.Row(r);
        for (size_t k = k0; k < k1; ++k) {
          const double av = arow[k];
          if (av == 0.0) continue;
          const double* brow = b.Row(k);
          for (size_t c = 0; c < n; ++c) orow[c] += av * brow[c];
        }
      }
    }
  });
  return out;
}

}  // namespace rain
