#include "tensor/matrix.h"

#include "common/logging.h"

namespace rain {

Vec Matrix::RowVec(size_t r) const {
  RAIN_CHECK(r < rows_) << "row out of range";
  return Vec(Row(r), Row(r) + cols_);
}

void Matrix::SetRow(size_t r, const Vec& v) {
  RAIN_CHECK(r < rows_ && v.size() == cols_) << "SetRow shape mismatch";
  for (size_t c = 0; c < cols_; ++c) At(r, c) = v[c];
}

Vec Matrix::MatVec(const Vec& x) const {
  RAIN_CHECK(x.size() == cols_) << "MatVec shape mismatch";
  Vec out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    out[r] = acc;
  }
  return out;
}

Vec Matrix::MatTVec(const Vec& x) const {
  RAIN_CHECK(x.size() == rows_) << "MatTVec shape mismatch";
  Vec out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) out[c] += xr * row[c];
  }
  return out;
}

}  // namespace rain
