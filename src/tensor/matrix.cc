#include "tensor/matrix.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rain {

Vec Matrix::RowVec(size_t r) const {
  RAIN_CHECK(r < rows_) << "row out of range";
  return Vec(Row(r), Row(r) + cols_);
}

void Matrix::SetRow(size_t r, const Vec& v) {
  RAIN_CHECK(r < rows_ && v.size() == cols_) << "SetRow shape mismatch";
  for (size_t c = 0; c < cols_; ++c) At(r, c) = v[c];
}

Vec Matrix::MatVec(const Vec& x) const {
  RAIN_CHECK(x.size() == cols_) << "MatVec shape mismatch";
  Vec out(rows_, 0.0);
  vec::simd::Gemv(data_.data(), rows_, cols_, x.data(), out.data());
  return out;
}

Vec Matrix::MatVec(const Vec& x, int parallelism) const {
  RAIN_CHECK(x.size() == cols_) << "MatVec shape mismatch";
  if (parallelism <= 1 || rows_ * cols_ < vec::kParallelGrain) return MatVec(x);
  Vec out(rows_, 0.0);
  // Row partitioning: each out[r] is a pure function of (row r, x), so
  // the chunking leaves the result bitwise identical to sequential.
  ParallelFor(parallelism, rows_, [this, &x, &out](size_t begin, size_t end, size_t) {
    vec::simd::Gemv(Row(begin), end - begin, cols_, x.data(), out.data() + begin);
  });
  return out;
}

Vec Matrix::MatTVec(const Vec& x) const {
  RAIN_CHECK(x.size() == rows_) << "MatTVec shape mismatch";
  Vec out(cols_, 0.0);
  vec::simd::GemvT(data_.data(), rows_, cols_, x.data(), out.data());
  return out;
}

Vec Matrix::MatTVec(const Vec& x, int parallelism) const {
  RAIN_CHECK(x.size() == rows_) << "MatTVec shape mismatch";
  if (parallelism <= 1 || rows_ * cols_ < vec::kParallelGrain) return MatTVec(x);
  Vec out(cols_, 0.0);
  vec::ParallelAccumulate(
      parallelism, rows_, &out, [this, &x](size_t begin, size_t end, Vec* acc) {
        vec::simd::GemvT(Row(begin), end - begin, cols_, x.data() + begin,
                         acc->data());
      });
  return out;
}

Matrix MatMul(const Matrix& a, const Matrix& b, int parallelism) {
  RAIN_CHECK(a.cols() == b.rows()) << "MatMul shape mismatch";
  Matrix out(a.rows(), b.cols());
  const size_t n = b.cols();
  const size_t k_total = a.cols();
  // Row partitioning over a; each worker runs the packed cache-blocked
  // kernel on its row block. GemmPacked accumulates every output element's
  // k-terms in ascending k order with the same roundings as Gemm and the
  // scalar loops, so the split is bitwise-invariant across worker counts.
  ParallelFor(parallelism, a.rows(), [&](size_t begin, size_t end, size_t) {
    vec::simd::GemmPacked(a.Row(begin), end - begin, k_total, b.Row(0), n,
                          out.Row(begin));
  });
  return out;
}

}  // namespace rain
