#ifndef RAIN_TENSOR_VECTOR_OPS_H_
#define RAIN_TENSOR_VECTOR_OPS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace rain {

/// Dense double vector. All training, influence-function and relaxation
/// math in Rain operates on these (model parameters, gradients, HVPs).
using Vec = std::vector<double>;

/// BLAS-1 style kernels. All require matching sizes (checked).
///
/// Each reduction kernel has a `parallelism` overload that splits the range
/// into `parallelism` deterministic chunks on the shared thread pool and
/// combines partials in chunk order; `parallelism <= 1` takes the exact
/// sequential code path, so results are a pure function of the knob.
namespace vec {

/// Below this many elements the parallel overloads run sequentially: the
/// fork/join handshake costs more than the arithmetic it would spread.
constexpr size_t kParallelGrain = 4096;

/// \brief Runtime-dispatched SIMD backend for the innermost range
/// kernels (Dot/Axpy plus the GEMV/GEMTV/GEMM and gather micro-kernels
/// behind Matrix, the per-model coefficient passes, and RelaxedPoly).
///
/// On x86-64 with AVX2+FMA the element loops run 256-bit vectorized;
/// everywhere else (or when forced) the scalar fallbacks run. The
/// backend is a per-process constant, so the deterministic-chunk
/// contract is untouched: results remain a pure function of (inputs,
/// parallelism knob, backend).
///
/// Determinism taxonomy — each kernel documents which class it is in:
///  * ELEMENTWISE (MulAdd, MulAdd2): every output element is computed
///    with the exact rounding sequence of the scalar loop (separate
///    multiply and add roundings, no fusion, no cross-lane ops), so the
///    AVX2 path is bitwise identical to the scalar path. These carry the
///    shard-exact "replay the sequential multiply-add sequence"
///    contracts in src/ml.
///  * FUSED-ELEMENTWISE (Axpy): one fused rounding per element on AVX2,
///    two roundings on scalar — backends differ at rounding level but
///    each is chunk-invariant (an element's bits never depend on which
///    chunk it landed in).
///  * REDUCTION (Dot, Gemv): the AVX2 lane accumulators combine in a
///    fixed shape — (l0+l1)+(l2+l3), scalar tail folded after — that
///    depends only on n, never on alignment or scheduling. Deterministic
///    per backend; differs from the scalar left-fold at rounding level
///    (the same latitude chunked reductions already have across knob
///    values).
///  * SHAPED-REDUCTION (Dot2, GatherSum, GatherProd, GatherProdOneMinus):
///    the scalar fallback replicates the AVX2 lane shape exactly (four
///    virtual lanes, same combine order), so these reductions are
///    bitwise identical across backends too.
namespace simd {
/// "avx2-fma" or "scalar" — whatever dispatch selected for this process.
const char* Backend();
/// Test hook: true forces the scalar fallback regardless of CPU support.
/// Returns the previous setting. Not intended for concurrent flipping
/// while kernels run (tests toggle it around call sites).
bool ForceScalar(bool force);

/// REDUCTION: returns dot(x, y) over n elements.
double Dot(const double* x, const double* y, size_t n);

/// FUSED-ELEMENTWISE: y[i] += alpha * x[i] (single fused rounding per
/// element on AVX2).
void Axpy(double alpha, const double* x, double* y, size_t n);

/// ELEMENTWISE: y[i] += alpha * x[i] with separate multiply and add
/// roundings — bitwise identical across backends. Use for accumulation
/// passes whose per-row addends must replay exactly (gradients, HVP
/// coefficient applies, chunk partials that are later reduced in order).
void MulAdd(double alpha, const double* x, double* y, size_t n);

/// ELEMENTWISE: y[i] += a0 * x0[i] + a1 * x1[i], evaluated per element as
/// round(y + round(round(a0*x0) + round(a1*x1))) — the exact sequence of
/// the scalar statement `y[i] += a0*x0[i] + a1*x1[i]`. Bitwise identical
/// across backends. This is the MLP R-backward rank-2 update.
void MulAdd2(double a0, const double* x0, double a1, const double* x1, double* y,
             size_t n);

/// SHAPED-REDUCTION: returns sum_i (a[i]*x[i] + b[i]*y[i]) with a fixed
/// four-lane shape replicated bitwise by the scalar fallback. This is the
/// MLP R-forward two-operand row reduction.
double Dot2(const double* a, const double* x, const double* b, const double* y,
            size_t n);

/// REDUCTION (GEMV): out[r] = dot(a_row_r, x) for r in [0, rows); `a` is
/// row-major rows x cols. Row values are pure functions of (row, x), so
/// any row partitioning is bitwise-invariant.
void Gemv(const double* a, size_t rows, size_t cols, const double* x, double* out);

/// ELEMENTWISE (GEMTV): out[c] += sum_r x[r] * a[r][c], accumulated row
/// by row with MulAdd (rows with x[r] == 0 skipped) — bitwise identical
/// across backends and to the pre-SIMD scalar loops.
void GemvT(const double* a, size_t rows, size_t cols, const double* x, double* out);

/// ELEMENTWISE (GEMM): out += a * b for row-major blocks (a is
/// a_rows x k, b is k x n, out is a_rows x n), cache-blocked over k with
/// MulAdd row updates — bitwise identical across backends and to the
/// pre-SIMD blocked loops.
void Gemm(const double* a, size_t a_rows, size_t k, const double* b, size_t n,
          double* out);

/// SHAPED-REDUCTION: returns sum_i v[idx[i]].
double GatherSum(const double* v, const int32_t* idx, size_t n);
/// SHAPED-REDUCTION: returns prod_i v[idx[i]].
double GatherProd(const double* v, const int32_t* idx, size_t n);
/// SHAPED-REDUCTION: returns prod_i (1 - v[idx[i]]).
double GatherProdOneMinus(const double* v, const int32_t* idx, size_t n);
}  // namespace simd

/// out = 0 vector of length n.
Vec Zeros(size_t n);

/// dot(x, y)
double Dot(const Vec& x, const Vec& y);
double Dot(const Vec& x, const Vec& y, int parallelism);

/// y += alpha * x
void Axpy(double alpha, const Vec& x, Vec* y);
void Axpy(double alpha, const Vec& x, Vec* y, int parallelism);

/// x *= alpha
void Scale(double alpha, Vec* x);

/// Euclidean norm.
double Norm2(const Vec& x);

/// Squared Euclidean norm.
double NormSq(const Vec& x);
double NormSq(const Vec& x, int parallelism);

/// \brief Deterministic parallel accumulation: splits [0, n) into
/// min(parallelism, n) chunks, hands each chunk a zeroed buffer of
/// out->size() via body(begin, end, acc), then adds the buffers into *out in
/// chunk order. With parallelism <= 1 the body writes straight into *out —
/// bitwise identical to the pre-parallel sequential loops. This is the
/// reduction primitive behind every parallel gradient / HVP in src/ml.
void ParallelAccumulate(int parallelism, size_t n, Vec* out,
                        const std::function<void(size_t begin, size_t end, Vec* acc)>& body);

/// out = x - y
Vec Sub(const Vec& x, const Vec& y);

/// out = x + y
Vec Add(const Vec& x, const Vec& y);

/// Element-wise maximum absolute difference.
double MaxAbsDiff(const Vec& x, const Vec& y);

}  // namespace vec

}  // namespace rain

#endif  // RAIN_TENSOR_VECTOR_OPS_H_
