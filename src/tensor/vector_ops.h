#ifndef RAIN_TENSOR_VECTOR_OPS_H_
#define RAIN_TENSOR_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace rain {

/// Dense double vector. All training, influence-function and relaxation
/// math in Rain operates on these (model parameters, gradients, HVPs).
using Vec = std::vector<double>;

/// BLAS-1 style kernels. All require matching sizes (checked).
namespace vec {

/// out = 0 vector of length n.
Vec Zeros(size_t n);

/// dot(x, y)
double Dot(const Vec& x, const Vec& y);

/// y += alpha * x
void Axpy(double alpha, const Vec& x, Vec* y);

/// x *= alpha
void Scale(double alpha, Vec* x);

/// Euclidean norm.
double Norm2(const Vec& x);

/// Squared Euclidean norm.
double NormSq(const Vec& x);

/// out = x - y
Vec Sub(const Vec& x, const Vec& y);

/// out = x + y
Vec Add(const Vec& x, const Vec& y);

/// Element-wise maximum absolute difference.
double MaxAbsDiff(const Vec& x, const Vec& y);

}  // namespace vec

}  // namespace rain

#endif  // RAIN_TENSOR_VECTOR_OPS_H_
