#ifndef RAIN_TENSOR_VECTOR_OPS_H_
#define RAIN_TENSOR_VECTOR_OPS_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace rain {

/// Dense double vector. All training, influence-function and relaxation
/// math in Rain operates on these (model parameters, gradients, HVPs).
using Vec = std::vector<double>;

/// BLAS-1 style kernels. All require matching sizes (checked).
///
/// Each reduction kernel has a `parallelism` overload that splits the range
/// into `parallelism` deterministic chunks on the shared thread pool and
/// combines partials in chunk order; `parallelism <= 1` takes the exact
/// sequential code path, so results are a pure function of the knob.
namespace vec {

/// Below this many elements the parallel overloads run sequentially: the
/// fork/join handshake costs more than the arithmetic it would spread.
constexpr size_t kParallelGrain = 4096;

/// \brief Runtime-dispatched SIMD backend for the innermost Dot/Axpy
/// kernels (first bite of the ROADMAP SIMD item).
///
/// On x86-64 with AVX2+FMA the element loops run 256-bit vectorized with
/// a fixed-shape lane reduction; everywhere else (or when forced) the
/// scalar loops run unchanged. The backend is a per-process constant, so
/// the deterministic-chunk contract is untouched: results remain a pure
/// function of (inputs, parallelism knob, backend), and Axpy stays
/// bitwise chunk-invariant on both backends (the vector path computes
/// every element with a single fused rounding, tail included, so an
/// element's value never depends on which chunk it landed in). Dot's
/// lane grouping differs from the scalar fold at rounding level — the
/// same latitude chunked reductions already have across knob values.
namespace simd {
/// "avx2-fma" or "scalar" — whatever dispatch selected for this process.
const char* Backend();
/// Test hook: true forces the scalar fallback regardless of CPU support.
/// Returns the previous setting. Not intended for concurrent flipping
/// while kernels run (tests toggle it around call sites).
bool ForceScalar(bool force);
}  // namespace simd

/// out = 0 vector of length n.
Vec Zeros(size_t n);

/// dot(x, y)
double Dot(const Vec& x, const Vec& y);
double Dot(const Vec& x, const Vec& y, int parallelism);

/// y += alpha * x
void Axpy(double alpha, const Vec& x, Vec* y);
void Axpy(double alpha, const Vec& x, Vec* y, int parallelism);

/// x *= alpha
void Scale(double alpha, Vec* x);

/// Euclidean norm.
double Norm2(const Vec& x);

/// Squared Euclidean norm.
double NormSq(const Vec& x);
double NormSq(const Vec& x, int parallelism);

/// \brief Deterministic parallel accumulation: splits [0, n) into
/// min(parallelism, n) chunks, hands each chunk a zeroed buffer of
/// out->size() via body(begin, end, acc), then adds the buffers into *out in
/// chunk order. With parallelism <= 1 the body writes straight into *out —
/// bitwise identical to the pre-parallel sequential loops. This is the
/// reduction primitive behind every parallel gradient / HVP in src/ml.
void ParallelAccumulate(int parallelism, size_t n, Vec* out,
                        const std::function<void(size_t begin, size_t end, Vec* acc)>& body);

/// out = x - y
Vec Sub(const Vec& x, const Vec& y);

/// out = x + y
Vec Add(const Vec& x, const Vec& y);

/// Element-wise maximum absolute difference.
double MaxAbsDiff(const Vec& x, const Vec& y);

}  // namespace vec

}  // namespace rain

#endif  // RAIN_TENSOR_VECTOR_OPS_H_
