#ifndef RAIN_TENSOR_VECTOR_OPS_H_
#define RAIN_TENSOR_VECTOR_OPS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace rain {

/// Dense double vector. All training, influence-function and relaxation
/// math in Rain operates on these (model parameters, gradients, HVPs).
using Vec = std::vector<double>;

/// BLAS-1 style kernels. All require matching sizes (checked).
///
/// Each reduction kernel has a `parallelism` overload that splits the range
/// into `parallelism` deterministic chunks on the shared thread pool and
/// combines partials in chunk order; `parallelism <= 1` takes the exact
/// sequential code path, so results are a pure function of the knob.
namespace vec {

/// Below this many elements the parallel overloads run sequentially: the
/// fork/join handshake costs more than the arithmetic it would spread.
constexpr size_t kParallelGrain = 4096;

/// \brief Below this many gathered elements the dispatched gather kernels
/// (GatherSum/GatherProd/GatherProdOneMinus/GatherDot/Gather) run the
/// shaped scalar loop instead of vpgatherdpd: the gather-instruction setup
/// costs more than it saves on typical small-arity AND/OR nodes.
///
/// Shared by the RelaxedPoly forward sweep and the batched adjoint
/// reverse sweep — one constant, so the two sweeps can never drift apart.
/// The cutoff cannot affect results: both sides of the boundary produce
/// the identical fixed lane shape for a given n, so the choice is
/// invisible bit-for-bit (pinned by tensor_test's cutoff-boundary test).
constexpr size_t kGatherSimdCutoff = 16;

/// \brief Runtime-dispatched SIMD backend for the innermost range
/// kernels (Dot/Axpy plus the GEMV/GEMTV/GEMM and gather micro-kernels
/// behind Matrix, the per-model coefficient passes, and RelaxedPoly).
///
/// Three tiers, selected once per process from CPUID:
///   * `avx512`  — 512-bit AVX-512F/DQ/VL variants. The wider registers
///     carry the SAME lane-accumulator chains as the avx2-fma tier (a
///     512-bit accumulator is exactly the avx2 tier's two 256-bit
///     accumulators side by side), so every kernel is bitwise identical
///     to the avx2-fma tier — upgrading a host never changes results.
///   * `avx2-fma` — 256-bit AVX2+FMA variants.
///   * `scalar`  — plain loops; bit-compatible with the SIMD tiers for
///     the ELEMENTWISE and SHAPED-REDUCTION classes below.
///
/// The `RAIN_SIMD` environment variable (`avx512|avx2|scalar`) caps the
/// tier, e.g. `RAIN_SIMD=avx2` forces the avx2-fma kernels on an AVX-512
/// host and `RAIN_SIMD=scalar` forces the fallbacks everywhere. A
/// requested tier the CPU cannot run clamps down to the best supported
/// one (with a one-time stderr note), so CI can force `avx2` on
/// heterogeneous runners. The backend is a per-process constant, so the
/// deterministic-chunk contract is untouched: results remain a pure
/// function of (inputs, parallelism knob, backend).
///
/// Determinism taxonomy — each kernel documents which class it is in:
///  * ELEMENTWISE (MulAdd, MulAdd2, MulAdd4, Mul, Gather, ScatterAxpy):
///    every output element is computed with the exact rounding sequence
///    of the scalar loop (separate multiply and add roundings, no fusion,
///    no cross-lane ops), so every tier is bitwise identical. These carry
///    the shard-exact "replay the sequential multiply-add sequence"
///    contracts in src/ml.
///  * FUSED-ELEMENTWISE (Axpy): one fused rounding per element on the
///    SIMD tiers, two roundings on scalar — scalar differs at rounding
///    level but each tier is chunk-invariant (an element's bits never
///    depend on which chunk it landed in), and avx512 == avx2-fma.
///  * REDUCTION (Dot, Gemv, GemmNT): the SIMD lane accumulators combine
///    in a fixed shape — (l0+l1)+(l2+l3), scalar tail folded after — that
///    depends only on n, never on alignment or scheduling. Deterministic
///    per tier and bitwise identical between avx512 and avx2-fma; the
///    scalar left-fold differs at rounding level (the same latitude
///    chunked reductions already have across knob values).
///  * SHAPED-REDUCTION (Dot2, GatherSum, GatherProd, GatherProdOneMinus,
///    GatherDot): the scalar fallback replicates the SIMD lane shape
///    exactly (four virtual lanes, same combine order; the avx512 tier
///    processes eight elements per step as two sequential four-lane
///    rounds), so these reductions are bitwise identical across all
///    three tiers.
namespace simd {
/// "avx512", "avx2-fma" or "scalar" — whatever dispatch (plus any
/// RAIN_SIMD / ForceBackend / ForceScalar override) selects right now.
const char* Backend();

/// Test hook: true forces the scalar fallback regardless of CPU support.
/// Returns the previous setting. Not intended for concurrent flipping
/// while kernels run (tests toggle it around call sites).
bool ForceScalar(bool force);

/// \brief Test/bench hook: cap the dispatch at the named tier
/// (`"avx512"`, `"avx2"`, `"scalar"`), or clear the cap with `nullptr`
/// or `""`.
///
/// Returns true when the active backend now equals the request (i.e. the
/// CPU supports it); false when the request was clamped to a lower tier
/// or the name was not recognized (the cap is cleared in that case).
/// Like ForceScalar, not intended for concurrent flipping.
bool ForceBackend(const char* tier);

/// Re-reads the RAIN_SIMD environment variable (normally read once,
/// lazily). Exists so tests can exercise the env round-trip in-process.
void ReloadBackendEnv();

/// REDUCTION: returns dot(x, y) over n elements.
double Dot(const double* x, const double* y, size_t n);

/// FUSED-ELEMENTWISE: y[i] += alpha * x[i] (single fused rounding per
/// element on the SIMD tiers).
void Axpy(double alpha, const double* x, double* y, size_t n);

/// ELEMENTWISE: y[i] += alpha * x[i] with separate multiply and add
/// roundings — bitwise identical across backends. Use for accumulation
/// passes whose per-row addends must replay exactly (gradients, HVP
/// coefficient applies, chunk partials that are later reduced in order).
void MulAdd(double alpha, const double* x, double* y, size_t n);

/// ELEMENTWISE: y[i] += a0 * x0[i] + a1 * x1[i], evaluated per element as
/// round(y + round(round(a0*x0) + round(a1*x1))) — the exact sequence of
/// the scalar statement `y[i] += a0*x0[i] + a1*x1[i]`. Bitwise identical
/// across backends. This is the MLP R-backward rank-2 update.
void MulAdd2(double a0, const double* x0, double a1, const double* x1, double* y,
             size_t n);

/// ELEMENTWISE: four chained multiply-adds per pass over y — y[i]
/// receives round(y + round(a[0]*b0[i])), then a[1]*b1, a[2]*b2, a[3]*b3:
/// the identical per-element rounding sequence as four sequential MulAdd
/// calls, but with one load/store of y instead of four. This is the GEMM
/// register tile; callers that need the zero-skip must check a[j] != 0
/// themselves (GemmPacked does).
void MulAdd4(const double* a, const double* b0, const double* b1,
             const double* b2, const double* b3, double* y, size_t n);

/// ELEMENTWISE: out[i] = a[i] * b[i] (one rounding per element, bitwise
/// identical across backends). Used by the reverse-sweep edge-weight
/// builder to fuse prefix and suffix product arrays.
void Mul(const double* a, const double* b, double* out, size_t n);

/// SHAPED-REDUCTION: returns sum_i (a[i]*x[i] + b[i]*y[i]) with a fixed
/// four-lane shape replicated bitwise by the scalar fallback. This is the
/// MLP R-forward two-operand row reduction.
double Dot2(const double* a, const double* x, const double* b, const double* y,
            size_t n);

/// REDUCTION (GEMV): out[r] = dot(a_row_r, x) for r in [0, rows); `a` is
/// row-major rows x cols. Row values are pure functions of (row, x), so
/// any row partitioning is bitwise-invariant.
void Gemv(const double* a, size_t rows, size_t cols, const double* x, double* out);

/// ELEMENTWISE (GEMTV): out[c] += sum_r x[r] * a[r][c], accumulated row
/// by row with MulAdd (rows with x[r] == 0 skipped) — bitwise identical
/// across backends and to the pre-SIMD scalar loops.
void GemvT(const double* a, size_t rows, size_t cols, const double* x, double* out);

/// ELEMENTWISE (GEMM): out += a * b for row-major blocks (a is
/// a_rows x k, b is k x n, out is a_rows x n), k-blocked with MulAdd4
/// row updates — bitwise identical across backends and to the pre-SIMD
/// blocked loops. Kept as the unpacked reference for GemmPacked (same
/// bits, different memory behavior); new callers should prefer
/// GemmPacked.
void Gemm(const double* a, size_t a_rows, size_t k, const double* b, size_t n,
          double* out);

/// \brief ELEMENTWISE (packed cache-blocked GEMM): out += a * b, same
/// shapes and the exact same bits as Gemm — per output element the
/// k-terms accumulate in ascending k order with separate multiply and
/// add roundings — but with an explicit (KC x NC) B-panel packing buffer
/// so the MulAdd4 register tile streams contiguous panel rows that stay
/// resident in L1/L2 across every row of `a`.
///
/// The zero-skip contract is preserved via a per-panel sparsity check:
/// each a-row's coefficient block is scanned once per panel; blocks with
/// no zeros take the unconditional MulAdd4 fast loop, blocks with zeros
/// drop to the per-coefficient loop that skips them — exactly the terms
/// the sequential kernel skips, so the bits match it (including the
/// -0.0 cases skipping preserves).
void GemmPacked(const double* a, size_t a_rows, size_t k, const double* b,
                size_t n, double* out);

/// \brief REDUCTION (GEMM-NT): out[i*ldo + j] = dot(a_i, b_j) where a_i
/// is row i of `a` (m rows, stride lda) and b_j is row j of `b` (n rows,
/// stride ldb), both of length k.
///
/// Every output element is computed by the Dot kernel — same fixed lane
/// shape — so the result is bitwise identical to the per-row Dot loops
/// it replaces, at any tile size. The loops are tiled over b-rows so a
/// block of b stays cache-resident while the a-rows stream: this is the
/// batched projection kernel behind the blocked model HVPs (a = example
/// rows, b = weight rows).
void GemmNT(const double* a, size_t m, size_t lda, const double* b, size_t n,
            size_t ldb, size_t k, double* out, size_t ldo);

/// SHAPED-REDUCTION: returns sum_i v[idx[i]].
double GatherSum(const double* v, const int32_t* idx, size_t n);
/// SHAPED-REDUCTION: returns prod_i v[idx[i]].
double GatherProd(const double* v, const int32_t* idx, size_t n);
/// SHAPED-REDUCTION: returns prod_i (1 - v[idx[i]]).
double GatherProdOneMinus(const double* v, const int32_t* idx, size_t n);

/// SHAPED-REDUCTION: returns sum_i v[idx[i]] * w[i], each term rounded
/// separately (multiply then lane add, no fusion), four-lane shape. This
/// is the batched adjoint gather: v = adjoints, idx = CSR parent list,
/// w = edge weights.
double GatherDot(const double* v, const int32_t* idx, const double* w, size_t n);

/// ELEMENTWISE (gather-copy): out[i] = v[idx[i]] — a pure permutation
/// load, bitwise identical across backends by construction.
void Gather(const double* v, const int32_t* idx, double* out, size_t n);

/// \brief ELEMENTWISE (ordered scatter): y[idx[i]] += alpha * x[i] with
/// separate multiply and add roundings, applied in ascending i order.
///
/// Duplicate indices accumulate in order, so the result is a pure
/// function of the argument arrays on every backend — the scatter side
/// stays a scalar loop (a vectorized scatter would need conflict
/// detection to keep duplicate-index order); SIMD tiers vectorize the
/// alpha*x products. Used for the reverse-sweep variable-grad writeback.
void ScatterAxpy(double alpha, const double* x, const int32_t* idx, double* y,
                 size_t n);

/// \brief Prefix/suffix running products: prefix[0] = 1, prefix[j+1] =
/// prefix[j] * c[j]; suffix[k] = 1, suffix[j] = suffix[j+1] * c[j].
/// `prefix` and `suffix` must hold k+1 doubles.
///
/// The scans are inherently sequential (scalar on every backend — one
/// rounding per step, identical everywhere); combine with Mul to produce
/// the leave-one-out products d(prod)/d(c_j) = prefix[j] * suffix[j+1]
/// the reverse sweep uses for MUL/OR nodes.
void PrefixSuffixProducts(const double* c, size_t k, double* prefix,
                          double* suffix);
}  // namespace simd

/// out = 0 vector of length n.
Vec Zeros(size_t n);

/// dot(x, y)
double Dot(const Vec& x, const Vec& y);
double Dot(const Vec& x, const Vec& y, int parallelism);

/// y += alpha * x
void Axpy(double alpha, const Vec& x, Vec* y);
void Axpy(double alpha, const Vec& x, Vec* y, int parallelism);

/// x *= alpha
void Scale(double alpha, Vec* x);

/// Euclidean norm.
double Norm2(const Vec& x);

/// Squared Euclidean norm.
double NormSq(const Vec& x);
double NormSq(const Vec& x, int parallelism);

/// \brief Deterministic parallel accumulation: splits [0, n) into
/// min(parallelism, n) chunks, hands each chunk a zeroed buffer of
/// out->size() via body(begin, end, acc), then adds the buffers into *out in
/// chunk order. With parallelism <= 1 the body writes straight into *out —
/// bitwise identical to the pre-parallel sequential loops. This is the
/// reduction primitive behind every parallel gradient / HVP in src/ml.
void ParallelAccumulate(int parallelism, size_t n, Vec* out,
                        const std::function<void(size_t begin, size_t end, Vec* acc)>& body);

/// out = x - y
Vec Sub(const Vec& x, const Vec& y);

/// out = x + y
Vec Add(const Vec& x, const Vec& y);

/// Element-wise maximum absolute difference.
double MaxAbsDiff(const Vec& x, const Vec& y);

}  // namespace vec

}  // namespace rain

#endif  // RAIN_TENSOR_VECTOR_OPS_H_
