#ifndef RAIN_INCREMENTAL_UPDATE_H_
#define RAIN_INCREMENTAL_UPDATE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/debugger.h"
#include "ml/dataset.h"
#include "ml/model.h"
#include "tensor/vector_ops.h"

namespace rain {

/// One training-set label correction: row `row` becomes class `new_label`.
struct LabelEdit {
  size_t row = 0;
  int new_label = 0;
};

/// \brief A batch of first-class deltas against a debugging session.
///
/// The four delta families mirror the ways a session's inputs can change
/// between turns:
///
///  - **Label edits** rewrite training labels in place (COW `Dataset`
///    storage detaches on first write, so sibling tenants sharing the
///    storage are unaffected).
///  - **Row deletes / inserts** are expressed as `deactivate_rows` /
///    `reactivate_rows` against the fixed-capacity COW storage: a
///    "deleted" base row is tombstoned out of the active mask, and an
///    "insert" restores a previously tombstoned row. (True capacity
///    growth would reallocate the shared storage under live `View()`s;
///    the serve layer's datasets are admitted at fixed capacity, so
///    inserts are modeled as reactivation of pre-staged rows.)
///  - **Workload mutations** add whole query/complaint entries
///    (`add_queries`) or retract existing ones by index
///    (`remove_queries`, indices into the session's current workload).
///
/// An `UpdateBatch` is applied atomically by
/// `DebugSession::ApplyUpdate`; the session then chooses (per
/// `UpdateOptions`) between the O(delta) incremental path and a full
/// recompute.
struct UpdateBatch {
  std::vector<LabelEdit> label_edits;
  std::vector<size_t> deactivate_rows;
  std::vector<size_t> reactivate_rows;
  std::vector<QueryComplaints> add_queries;
  std::vector<size_t> remove_queries;

  bool empty() const {
    return label_edits.empty() && deactivate_rows.empty() &&
           reactivate_rows.empty() && add_queries.empty() &&
           remove_queries.empty();
  }

  /// The distinct training rows touched by the data half of the batch
  /// (label edits + activation flips), sorted ascending, duplicates
  /// removed.
  std::vector<size_t> TouchedRows() const;

  /// Number of distinct training rows touched by the data half of the
  /// batch (label edits + activation flips; duplicates counted once).
  size_t touched_rows() const { return TouchedRows().size(); }

  /// True if the batch changes the training data (as opposed to only the
  /// workload).
  bool touches_data() const {
    return !label_edits.empty() || !deactivate_rows.empty() ||
           !reactivate_rows.empty();
  }

  /// True if the batch changes the workload.
  bool touches_workload() const {
    return !add_queries.empty() || !remove_queries.empty();
  }
};

/// Which maintenance path `ApplyUpdate` takes.
enum class UpdatePolicy : uint8_t {
  /// Incremental when the touched-row fraction is below
  /// `UpdateOptions::incremental_threshold`, full otherwise.
  kAuto,
  /// Always the O(delta) path: keep the provenance arena, bind cache and
  /// warm model parameters; rebind only delta-affected workload entries.
  kIncremental,
  /// Always the from-scratch path: drop every cache, reset the arena,
  /// restore the initial model parameters (cold retrain).
  kFull,
};

struct UpdateOptions {
  UpdatePolicy policy = UpdatePolicy::kAuto;
  /// kAuto switches to the full path when the batch touches more than
  /// this fraction of the training set. 256 rows on Adult-scale data sit
  /// comfortably below the default.
  double incremental_threshold = 0.25;
  /// Compute the patched-influence preview (`UpdateReport::patched_*`)
  /// for touched rows against the last rank turn's CG solution.
  bool preview_influence = true;
};

/// What `ApplyUpdate` did. `incremental == false` means the full
/// recompute path ran (caches dropped, cold model restored).
struct UpdateReport {
  bool incremental = false;
  size_t touched_rows = 0;
  /// Workload entries whose bindings were invalidated by this batch (they
  /// re-execute + re-bind on the next turn); the rest splice straight out
  /// of the bind cache.
  size_t entries_invalidated = 0;
  size_t entries_cached = 0;
  /// Bound complaints retracted by `remove_queries` (their arena nodes
  /// are tombstoned in place, never recompacted).
  size_t tombstoned_complaints = 0;
  /// True when the batch reopened a session that had finished kResolved.
  bool reopened = false;
  /// Rows whose influence scores were patched in the preview (0 when no
  /// rank turn has run yet or the preview was disabled).
  size_t patched_scores = 0;
  double seconds = 0.0;
  std::string note;
};

/// One applied batch, as remembered by the session's `DeltaLog`.
struct DeltaLogEntry {
  UpdateBatch batch;
  bool incremental = false;
  size_t touched_rows = 0;
  double seconds = 0.0;
};

/// \brief Append-only journal of every delta applied to a session.
///
/// `AddComplaints` / `RemoveQuery` / `ApplyUpdate` all record here, so
/// the full update history of a session is replayable: a from-scratch
/// session given the same initial state and the same log converges to
/// the same deletion sequence (the incremental-vs-full equivalence
/// tests in tests/incremental_test.cc are built on exactly this replay).
class DeltaLog {
 public:
  void Append(DeltaLogEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<DeltaLogEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// Sum of touched_rows across the log.
  size_t total_touched() const;

 private:
  std::vector<DeltaLogEntry> entries_;
};

/// \brief Patch influence scores for `touched` rows only, in place.
///
/// `solution` is the CG solution s = (H + damping I)^-1 q_grad cached
/// from the last rank turn. For each touched row i this recomputes
/// score(i) = -grad_l(z_i) . s — exactly the arithmetic
/// `InfluenceScorer::Score(i)` performs against the same solution, via
/// the shard-exact coefficient kernels (`LossGradCoeffs` /
/// `ApplyLossGradCoeffs`) when the model implements them and the
/// sequential `AddExampleLossGradient` loop otherwise (both addend
/// sequences are bitwise-identical by the kernel contract). Inactive
/// rows score 0.0, matching the scorer. Rows outside [0, scores->size())
/// are ignored.
///
/// This is O(|touched| * d) — the rank-structured correction the
/// incremental engine uses to preview post-update scores without a new
/// Hessian solve. It is exact with respect to the *cached* solution; a
/// new rank turn (new q_grad, new CG solve) supersedes it.
///
/// Returns the number of rows patched.
size_t PatchInfluenceScores(const Model& model, const Dataset& train,
                            const Vec& solution,
                            const std::vector<size_t>& touched,
                            std::vector<double>* scores);

}  // namespace rain

#endif  // RAIN_INCREMENTAL_UPDATE_H_
