#include "incremental/update.h"

#include <algorithm>

namespace rain {

namespace {

void CollectTouched(const UpdateBatch& batch, std::vector<size_t>* rows) {
  rows->reserve(batch.label_edits.size() + batch.deactivate_rows.size() +
                batch.reactivate_rows.size());
  for (const LabelEdit& e : batch.label_edits) rows->push_back(e.row);
  rows->insert(rows->end(), batch.deactivate_rows.begin(),
               batch.deactivate_rows.end());
  rows->insert(rows->end(), batch.reactivate_rows.begin(),
               batch.reactivate_rows.end());
  std::sort(rows->begin(), rows->end());
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

}  // namespace

std::vector<size_t> UpdateBatch::TouchedRows() const {
  std::vector<size_t> rows;
  CollectTouched(*this, &rows);
  return rows;
}

size_t DeltaLog::total_touched() const {
  size_t total = 0;
  for (const DeltaLogEntry& e : entries_) total += e.touched_rows;
  return total;
}

size_t PatchInfluenceScores(const Model& model, const Dataset& train,
                            const Vec& solution,
                            const std::vector<size_t>& touched,
                            std::vector<double>* scores) {
  if (solution.empty() || scores == nullptr) return 0;
  const size_t coeff_size = model.loss_grad_coeff_size();
  Vec grad(model.num_params(), 0.0);
  Vec coeffs(coeff_size, 0.0);
  size_t patched = 0;
  for (size_t i : touched) {
    if (i >= scores->size() || i >= train.size()) continue;
    if (!train.active(i)) {
      (*scores)[i] = 0.0;
      ++patched;
      continue;
    }
    grad.assign(model.num_params(), 0.0);
    if (coeff_size > 0) {
      model.LossGradCoeffs(train.row(i), train.label(i), coeffs.data());
      model.ApplyLossGradCoeffs(train.row(i), coeffs.data(), &grad);
    } else {
      model.AddExampleLossGradient(train.row(i), train.label(i), &grad);
    }
    (*scores)[i] = -vec::Dot(solution, grad);
    ++patched;
  }
  return patched;
}

}  // namespace rain
