#ifndef RAIN_COMMON_THREAD_POOL_H_
#define RAIN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/rng.h"

namespace rain {

/// \brief Fixed-size thread pool shared by every parallel kernel in Rain.
///
/// Deliberately work-stealing-free: tasks go through one FIFO queue, which
/// keeps the scheduler trivial to reason about. Determinism is achieved one
/// level up — ParallelFor splits work into a chunk count derived from the
/// requested parallelism (never from the pool size or scheduling order), so
/// results depend only on the `parallelism` knob a caller passes.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not block waiting for queue slots.
  void Submit(std::function<void()> task);

  /// Pops and runs one queued task if any is pending. Returns false when the
  /// queue was empty. Blocked ParallelFor callers use this to help drain the
  /// queue, which makes nested parallel sections deadlock-free even on a
  /// single-worker pool.
  bool RunOneTask();

  /// Process-wide pool, created on first use. Sized from the
  /// RAIN_NUM_THREADS environment variable when set, otherwise from
  /// std::thread::hardware_concurrency().
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// \brief Bounded share counter for admission control over a shared
/// resource — in-tree, the process-wide ThreadPool.
///
/// The serve layer admits a debug session only if its declared worker
/// demand (the session's `parallelism` knob) still fits under a capacity
/// derived from the pool size. Shares are advisory: they do not reserve
/// threads (ParallelFor callers help drain the queue regardless), they
/// bound how much concurrent demand the service lets pile onto the pool
/// before refusing new work with `Status::kResourceExhausted` instead of
/// degrading every admitted session.
///
/// Thread-safe; acquire/release may happen from any thread.
class AdmissionController {
 public:
  /// `capacity` is clamped to >= 1.
  explicit AdmissionController(int capacity);

  /// Acquires `weight` shares (clamped to >= 1). Returns false — acquiring
  /// nothing — when the acquisition would exceed capacity. A single
  /// request heavier than the whole capacity is rejected even on an empty
  /// controller, so one caller cannot oversubscribe by going first.
  bool TryAcquire(int weight);
  /// Returns `weight` shares (clamped like TryAcquire; never below zero
  /// in total).
  void Release(int weight);

  int capacity() const;
  int acquired() const;

 private:
  mutable std::mutex mu_;
  int capacity_;
  int acquired_ = 0;
};

/// \brief The deterministic chunk count of a (parallelism, n, min_grain)
/// parallel loop: min(parallelism, n), further clamped so no chunk covers
/// fewer than `min_grain` iterations (`min_grain <= 1` preserves the
/// original min(parallelism, n) layout exactly).
///
/// A pure function of its three arguments — never of the pool size or of
/// scheduling — so a chunk layout is always reproducible. Exposed so
/// callers (and tests) can reason about the layout a loop will use.
size_t ParallelChunkCount(int parallelism, size_t n, size_t min_grain);

/// \brief Runs body(begin, end, chunk) over [0, n) split into
/// min(parallelism, n) contiguous chunks whose sizes differ by at most one.
///
/// The chunk layout depends only on (parallelism, n) — never on the pool
/// size or on scheduling — so any per-chunk computation is reproducible for
/// a fixed knob value. This is the deterministic-chunk contract every
/// parallel kernel in Rain is built on (see docs/architecture.md).
///
/// Blocks until every chunk finishes. If chunks throw, the first exception
/// (in completion order) is rethrown on the calling thread.
///
/// \param parallelism requested worker count. <= 1 (or n <= 1) runs
///        body(0, n, 0) inline on the calling thread with no
///        synchronization at all, which keeps the sequential path bitwise
///        identical to pre-parallel code.
/// \param n iteration-space size; nothing runs when 0.
/// \param body receives its half-open range [begin, end) and the chunk
///        index (0-based, < min(parallelism, n)); chunk 0 always runs on
///        the calling thread.
void ParallelFor(int parallelism, size_t n,
                 const std::function<void(size_t begin, size_t end, size_t chunk)>& body);

/// \brief ParallelFor with a minimum grain: the range is split into
/// ParallelChunkCount(parallelism, n, min_grain) chunks, so tiny ranges
/// stop spawning near-empty tasks whose fork/join handshake costs more
/// than the work they carry.
///
/// min_grain is part of the deterministic layout function (chunks depend
/// only on the three arguments); `min_grain <= 1` is byte-for-byte the
/// plain ParallelFor layout. Kernels whose chunks write disjoint slots
/// (per-record scores, per-row predictions) are bitwise layout-invariant
/// and may pick any grain freely; chunk-ordered reductions get a
/// *different deterministic* grouping per grain value, the same latitude
/// they already have across parallelism values (see docs/architecture.md,
/// "grain-size contract").
void ParallelFor(int parallelism, size_t n, size_t min_grain,
                 const std::function<void(size_t begin, size_t end, size_t chunk)>& body);

/// \brief Element-wise convenience over ParallelFor: body(i) for i in
/// [0, n), chunked by the same deterministic layout.
void ParallelForEach(int parallelism, size_t n,
                     const std::function<void(size_t i)>& body);

/// \brief ParallelFor that cooperatively observes a cancellation token:
/// each chunk checks `cancel` before running its range, so a stop request
/// skips every not-yet-started chunk while chunks already running finish
/// normally (they may poll the token themselves for finer grain).
///
/// Returns true when every chunk ran; false when at least one chunk was
/// skipped — the caller must treat any partial output as interrupted and
/// discard it (which keeps the deterministic-chunk contract intact: an
/// *uncancelled* call is indistinguishable from plain ParallelFor).
///
/// `cancel == nullptr` never cancels.
bool ParallelForCancellable(
    int parallelism, size_t n, const CancellationToken* cancel,
    const std::function<void(size_t begin, size_t end, size_t chunk)>& body);

/// \brief ParallelForCancellable with a minimum grain (see the grain
/// ParallelFor overload for layout semantics).
bool ParallelForCancellable(
    int parallelism, size_t n, size_t min_grain, const CancellationToken* cancel,
    const std::function<void(size_t begin, size_t end, size_t chunk)>& body);

/// \brief Deterministic parallel sum: each chunk reduces its range with
/// `body(begin, end)`; partials are added in chunk order, so the result is a
/// pure function of (parallelism, n, body).
///
/// \param parallelism worker count; <= 1 returns body(0, n) — bitwise
///        identical to a sequential loop. Note that DIFFERENT knob values
///        group the summation differently and may differ at rounding
///        level; kernels that must be bitwise-stable across knob values
///        (the encode phase) use order-fixed reductions instead.
/// \return the chunk-ordered sum of the partials.
double ParallelSum(int parallelism, size_t n,
                   const std::function<double(size_t begin, size_t end)>& body);

/// \brief ParallelSum with a minimum grain. The partial-sum grouping
/// follows ParallelChunkCount(parallelism, n, min_grain); as with the
/// parallelism knob itself, DIFFERENT grain values group the summation
/// differently and may differ at rounding level, so chunk-ordered
/// reduction call sites keep grain fixed per knob setting (the in-tree
/// kernels default to 1, preserving their recorded bitwise baselines).
double ParallelSum(int parallelism, size_t n, size_t min_grain,
                   const std::function<double(size_t begin, size_t end)>& body);

/// \brief ParallelFor with a deterministic per-chunk RNG.
///
/// Chunk c receives an Rng seeded with SplitSeed(seed, c), so stochastic
/// parallel kernels (minibatch sampling, dropout, corruption injection)
/// reproduce exactly for a fixed (seed, parallelism) pair regardless of
/// thread scheduling.
void ParallelForSeeded(
    int parallelism, size_t n, uint64_t seed,
    const std::function<void(size_t begin, size_t end, size_t chunk, Rng& rng)>& body);

}  // namespace rain

#endif  // RAIN_COMMON_THREAD_POOL_H_
