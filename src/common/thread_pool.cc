#include "common/thread_pool.h"

#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace rain {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose (reachable via the static pointer): avoids destruction
  // order issues with worker threads at process exit.
  static ThreadPool* pool = [] {
    int n = 0;
    if (const char* env = std::getenv("RAIN_NUM_THREADS")) n = std::atoi(env);
    if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
    return new ThreadPool(n);
  }();
  return *pool;
}

namespace {

/// Join-state for one ParallelFor batch.
struct Batch {
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = 0;
  std::exception_ptr first_exception;
};

void RunChunk(const std::function<void(size_t, size_t, size_t)>& body, size_t begin,
              size_t end, size_t chunk, const std::shared_ptr<Batch>& batch) {
  std::exception_ptr exc;
  try {
    body(begin, end, chunk);
  } catch (...) {
    exc = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(batch->mu);
  if (exc && !batch->first_exception) batch->first_exception = exc;
  if (--batch->remaining == 0) batch->done.notify_all();
}

/// Shared fork/join core: runs `body` over [0, n) in exactly `chunks`
/// contiguous near-equal chunks (callers compute `chunks` via
/// ParallelChunkCount so the layout stays a pure function of the knobs).
void ParallelForChunked(
    size_t chunks, size_t n,
    const std::function<void(size_t begin, size_t end, size_t chunk)>& body) {
  const size_t base = n / chunks;
  const size_t extra = n % chunks;  // first `extra` chunks get one more item
  auto batch = std::make_shared<Batch>();
  batch->remaining = chunks;

  ThreadPool& pool = ThreadPool::Global();
  size_t begin = 0;
  size_t chunk0_end = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t end = begin + base + (c < extra ? 1 : 0);
    if (c == 0) {
      chunk0_end = end;  // reserved for the calling thread
    } else {
      const size_t b = begin, e = end;
      pool.Submit([&body, b, e, c, batch] { RunChunk(body, b, e, c, batch); });
    }
    begin = end;
  }
  RunChunk(body, 0, chunk0_end, 0, batch);

  // Help drain the queue while waiting so nested parallel sections cannot
  // deadlock even when every worker is blocked in a ParallelFor of its own.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(batch->mu);
      if (batch->remaining == 0) break;
    }
    if (!pool.RunOneTask()) {
      std::unique_lock<std::mutex> lock(batch->mu);
      batch->done.wait(lock, [&] { return batch->remaining == 0; });
      break;
    }
  }
  if (batch->first_exception) std::rethrow_exception(batch->first_exception);
}

}  // namespace

size_t ParallelChunkCount(int parallelism, size_t n, size_t min_grain) {
  if (n == 0) return 0;
  size_t chunks = parallelism < 1 ? 1 : static_cast<size_t>(parallelism);
  if (chunks > n) chunks = n;
  if (min_grain > 1) {
    // Cap the chunk count so every chunk holds at least min_grain
    // iterations (the last chunk may hold fewer only when n < min_grain,
    // where the loop collapses to a single inline chunk anyway).
    const size_t cap = n / min_grain;
    if (chunks > cap) chunks = cap < 1 ? 1 : cap;
  }
  return chunks;
}

void ParallelFor(int parallelism, size_t n, size_t min_grain,
                 const std::function<void(size_t begin, size_t end, size_t chunk)>& body) {
  if (n == 0) return;
  const size_t chunks = ParallelChunkCount(parallelism, n, min_grain);
  if (chunks <= 1) {
    body(0, n, 0);
    return;
  }
  ParallelForChunked(chunks, n, body);
}

void ParallelFor(int parallelism, size_t n,
                 const std::function<void(size_t begin, size_t end, size_t chunk)>& body) {
  ParallelFor(parallelism, n, /*min_grain=*/1, body);
}

bool ParallelForCancellable(
    int parallelism, size_t n, size_t min_grain, const CancellationToken* cancel,
    const std::function<void(size_t begin, size_t end, size_t chunk)>& body) {
  if (cancel == nullptr) {
    ParallelFor(parallelism, n, min_grain, body);
    return true;
  }
  std::atomic<bool> skipped{false};
  ParallelFor(parallelism, n, min_grain,
              [&body, &skipped, cancel](size_t begin, size_t end, size_t chunk) {
                if (cancel->ShouldStop()) {
                  skipped.store(true, std::memory_order_relaxed);
                  return;
                }
                body(begin, end, chunk);
              });
  return !skipped.load(std::memory_order_relaxed);
}

bool ParallelForCancellable(
    int parallelism, size_t n, const CancellationToken* cancel,
    const std::function<void(size_t begin, size_t end, size_t chunk)>& body) {
  return ParallelForCancellable(parallelism, n, /*min_grain=*/1, cancel, body);
}

void ParallelForEach(int parallelism, size_t n,
                     const std::function<void(size_t i)>& body) {
  ParallelFor(parallelism, n, [&body](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) body(i);
  });
}

double ParallelSum(int parallelism, size_t n, size_t min_grain,
                   const std::function<double(size_t begin, size_t end)>& body) {
  if (n == 0) return 0.0;
  const size_t chunks = ParallelChunkCount(parallelism, n, min_grain);
  if (chunks <= 1) return body(0, n);
  std::vector<double> partial(chunks, 0.0);
  ParallelForChunked(chunks, n,
                     [&body, &partial](size_t begin, size_t end, size_t chunk) {
                       partial[chunk] = body(begin, end);
                     });
  double acc = 0.0;
  for (double p : partial) acc += p;
  return acc;
}

double ParallelSum(int parallelism, size_t n,
                   const std::function<double(size_t begin, size_t end)>& body) {
  return ParallelSum(parallelism, n, /*min_grain=*/1, body);
}

void ParallelForSeeded(
    int parallelism, size_t n, uint64_t seed,
    const std::function<void(size_t begin, size_t end, size_t chunk, Rng& rng)>& body) {
  ParallelFor(parallelism, n, [&body, seed](size_t begin, size_t end, size_t chunk) {
    Rng rng(SplitSeed(seed, chunk));
    body(begin, end, chunk, rng);
  });
}

AdmissionController::AdmissionController(int capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {}

bool AdmissionController::TryAcquire(int weight) {
  if (weight < 1) weight = 1;
  std::lock_guard<std::mutex> lock(mu_);
  if (acquired_ + weight > capacity_) return false;
  acquired_ += weight;
  return true;
}

void AdmissionController::Release(int weight) {
  if (weight < 1) weight = 1;
  std::lock_guard<std::mutex> lock(mu_);
  acquired_ -= weight;
  if (acquired_ < 0) acquired_ = 0;
}

int AdmissionController::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

int AdmissionController::acquired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquired_;
}

}  // namespace rain
