#ifndef RAIN_COMMON_CANCELLATION_H_
#define RAIN_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <memory>

namespace rain {

/// \brief Cooperative cancellation handle shared by long-running kernels.
///
/// A token is a cheap copyable view onto shared state holding a cancel
/// flag and an optional deadline. Producers (DebugSession, TaskGraph)
/// call `Cancel()` / `set_deadline()`; consumers (the L-BFGS training
/// loop, the CG solver, per-record influence scoring) poll `ShouldStop()`
/// between chunks of work and wind down early, leaving partial state
/// their caller is expected to discard or record as interrupted.
///
/// Tokens form a tree: `MakeChild()` returns a token that stops when it
/// is cancelled itself OR when any ancestor stops. The async debug
/// session uses this for speculative work — cancelling a speculation's
/// child token aborts just that task, while cancelling the session token
/// stops everything, speculations included.
///
/// Polling is two relaxed atomic loads (plus a clock read only when a
/// deadline is armed), so it is cheap enough for per-record loops.
class CancellationToken {
 public:
  /// A fresh, un-cancelled token with no deadline.
  CancellationToken() : state_(std::make_shared<State>()) {}

  /// Requests cancellation; safe from any thread, idempotent, sticky.
  void Cancel() { state_->cancelled.store(true, std::memory_order_release); }

  bool cancelled() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->cancelled.load(std::memory_order_acquire)) return true;
    }
    return false;
  }

  /// Arms (or replaces) the deadline. Deadlines, like cancellation, are
  /// observed cooperatively at the consumers' polling points.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    state_->deadline_ns.store(deadline.time_since_epoch().count(),
                              std::memory_order_release);
  }
  void clear_deadline() { state_->deadline_ns.store(0, std::memory_order_release); }

  bool deadline_passed() const {
    const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      const int64_t d = s->deadline_ns.load(std::memory_order_acquire);
      if (d != 0 && now >= d) return true;
    }
    return false;
  }

  /// The single predicate consumers poll: cancelled or past a deadline,
  /// on this token or any ancestor.
  bool ShouldStop() const { return cancelled() || deadline_passed(); }

  /// A token linked below this one: it stops when this (or any ancestor)
  /// stops, and can additionally be cancelled on its own.
  CancellationToken MakeChild() const {
    CancellationToken child;
    child.state_->parent = state_;
    return child;
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    /// steady_clock nanoseconds-since-epoch; 0 = no deadline armed.
    std::atomic<int64_t> deadline_ns{0};
    std::shared_ptr<const State> parent;
  };

  std::shared_ptr<State> state_;
};

}  // namespace rain

#endif  // RAIN_COMMON_CANCELLATION_H_
