#include "common/status.h"

namespace rain {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

StatusCode StatusCodeFromName(std::string_view name, StatusCode fallback) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,   StatusCode::kUnimplemented,
      StatusCode::kInternal,     StatusCode::kResourceExhausted,
      StatusCode::kParseError,   StatusCode::kTypeError,
      StatusCode::kCancelled,
  };
  for (StatusCode code : kAll) {
    if (name == StatusCodeName(code)) return code;
  }
  return fallback;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace rain
