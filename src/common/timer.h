#ifndef RAIN_COMMON_TIMER_H_
#define RAIN_COMMON_TIMER_H_

#include <chrono>

namespace rain {

/// Monotonic wall-clock stopwatch used by the debugger's per-phase
/// runtime accounting (Figure 5 / Figure 12 breakdowns).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rain

#endif  // RAIN_COMMON_TIMER_H_
