#include "common/table_printer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace rain {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  RAIN_CHECK(row.size() == header_.size()) << "row arity mismatch";
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string TablePrinter::ToText() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t c = 0; c < widths.size(); ++c) sep += std::string(widths[c] + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char ch : field) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += "\"";
    return out;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ",";
      out += escape(row[c]);
    }
    out += "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace rain
