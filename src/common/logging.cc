#include "common/logging.h"

namespace rain {
namespace {

LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace rain
