#ifndef RAIN_COMMON_STATUS_H_
#define RAIN_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace rain {

/// Error codes used across the library. Mirrors the coarse-grained code
/// sets of Arrow/RocksDB: a small closed enum plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,  // budgets: ILP node/time limits, iteration caps
  kParseError,         // SQL frontend
  kTypeError,          // expression binding / evaluation
  kCancelled,          // cooperative cancellation / deadline observed
};

/// Stable spelling of a code ("OK", "InvalidArgument", ...). These names
/// are the error contract of the serve wire protocol: responses carry a
/// code name plus an informational message, never a bare string.
const char* StatusCodeName(StatusCode code);
/// Inverse of `StatusCodeName`; unknown names map to `fallback` so a
/// client can always reconstruct *some* Status from a wire response.
StatusCode StatusCodeFromName(std::string_view name,
                              StatusCode fallback = StatusCode::kInternal);

/// \brief A success-or-error outcome carried by value.
///
/// Rain does not use exceptions on library paths (database-domain idiom);
/// fallible operations return `Status` or `Result<T>`. `Status` is cheap
/// to copy in the OK case (empty message, enum only).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsResourceExhausted() const { return code_ == StatusCode::kResourceExhausted; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// Human-readable "CODE: message" form for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK status to the caller (statement context).
#define RAIN_RETURN_NOT_OK(expr)           \
  do {                                     \
    ::rain::Status _st = (expr);           \
    if (!_st.ok()) return _st;             \
  } while (false)

}  // namespace rain

#endif  // RAIN_COMMON_STATUS_H_
