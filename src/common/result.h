#ifndef RAIN_COMMON_RESULT_H_
#define RAIN_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace rain {

/// \brief Value-or-Status, the Arrow `Result<T>` idiom.
///
/// A `Result<T>` holds either a `T` or a non-OK `Status`. Accessing the
/// value of an errored result aborts (programming error), so callers must
/// check `ok()` first or use `RAIN_ASSIGN_OR_RETURN`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      // An OK status with no value is a contract violation.
      status_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    if (!ok()) std::abort();
    return *value_;
  }
  T& ValueOrDie() & {
    if (!ok()) std::abort();
    return *value_;
  }
  T&& ValueOrDie() && {
    if (!ok()) std::abort();
    return std::move(*value_);
  }

  /// Moves the value out; valid only when `ok()`.
  T MoveValueUnsafe() { return std::move(*value_); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Evaluates a Result-returning expression; on error returns the Status,
/// otherwise assigns the unwrapped value to `lhs`.
#define RAIN_CONCAT_IMPL(x, y) x##y
#define RAIN_CONCAT(x, y) RAIN_CONCAT_IMPL(x, y)
#define RAIN_ASSIGN_OR_RETURN(lhs, expr)                             \
  auto RAIN_CONCAT(_result_, __LINE__) = (expr);                     \
  if (!RAIN_CONCAT(_result_, __LINE__).ok())                         \
    return RAIN_CONCAT(_result_, __LINE__).status();                 \
  lhs = RAIN_CONCAT(_result_, __LINE__).MoveValueUnsafe()

}  // namespace rain

#endif  // RAIN_COMMON_RESULT_H_
