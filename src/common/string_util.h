#ifndef RAIN_COMMON_STRING_UTIL_H_
#define RAIN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rain {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view s);

/// True if `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// SQL LIKE pattern match: `%` matches any run (incl. empty), `_` matches
/// exactly one character. Case-sensitive, no escape support.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace rain

#endif  // RAIN_COMMON_STRING_UTIL_H_
