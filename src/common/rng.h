#ifndef RAIN_COMMON_RNG_H_
#define RAIN_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rain {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// All stochastic components of the library (dataset generation, label
/// corruption, ILP tie-breaking, weight initialization) draw from an
/// explicitly seeded `Rng` so every experiment is reproducible bit-for-bit.
/// Derives an independent stream seed from (seed, stream) by running two
/// SplitMix64 finalization steps. Parallel loops hand chunk c the generator
/// Rng(SplitSeed(seed, c)) so per-chunk streams are decorrelated yet fully
/// reproducible for a fixed (seed, chunk-count) pair.
uint64_t SplitSeed(uint64_t seed, uint64_t stream);

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();
  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);
  /// Standard normal via Box-Muller (cached second draw).
  double Gaussian();
  /// Normal with given mean/stddev.
  double Gaussian(double mean, double stddev);
  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);
  /// Samples from Beta(alpha, beta) via Gamma ratio (Marsaglia-Tsang).
  double Beta(double alpha, double beta);
  /// Gamma(shape, 1) sample, shape > 0.
  double Gamma(double shape);
  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }
  /// Samples k distinct indices from [0, n) without replacement.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace rain

#endif  // RAIN_COMMON_RNG_H_
