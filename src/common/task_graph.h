#ifndef RAIN_COMMON_TASK_GRAPH_H_
#define RAIN_COMMON_TASK_GRAPH_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_pool.h"

namespace rain {

/// \brief Single-assignment value channel between a producer task and a
/// consumer thread.
///
/// `Promise<T>` is the producer end, `Future<T>` the consumer end; both
/// are cheap shared views onto one state block, so either side may
/// outlive the other. `Future<T>::Get()` blocks until the value (or an
/// exception) arrives — and, when invoked on a thread that could itself
/// be needed to make progress (a pool worker inside a nested wait), it
/// helps drain the shared ThreadPool queue instead of sleeping, which
/// keeps nested graphs deadlock-free even on a single-worker pool.
template <typename T>
class Future;

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<State>()) {}

  void Set(T value) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->value.emplace(std::move(value));
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

  void SetException(std::exception_ptr exc) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->exception = exc;
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

  Future<T> future() const { return Future<T>(state_); }

 private:
  friend class Future<T>;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    std::optional<T> value;
    std::exception_ptr exception;
  };
  std::shared_ptr<State> state_;
};

template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  bool Ready() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->ready;
  }

  /// Blocks until the producer fulfilled the promise, draining pool tasks
  /// while waiting (see class comment).
  void Wait() const {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(state_->mu);
        if (state_->ready) return;
      }
      if (!ThreadPool::Global().RunOneTask()) {
        std::unique_lock<std::mutex> lock(state_->mu);
        state_->cv.wait(lock, [this] { return state_->ready; });
        return;
      }
    }
  }

  /// Waits, then returns the value (moved out — Get() consumes; call at
  /// most once per future chain) or rethrows the producer's exception.
  T Get() const {
    Wait();
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->exception) std::rethrow_exception(state_->exception);
    return std::move(*state_->value);
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<typename Promise<T>::State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<typename Promise<T>::State> state_;
};

/// \brief Dependency-ordered task scheduler on the shared ThreadPool.
///
/// A `TaskGraph` owns a set of tasks connected by explicit dependency
/// edges: a task is handed to the pool only once every dependency has
/// completed. Values flow through `Future`s (each typed `Submit` returns
/// one), and a graph-level `CancellationToken` is passed to every task
/// body for cooperative cancellation — `Cancel()` does not prevent queued
/// tasks from running (their futures must still be fulfilled), it makes
/// well-behaved bodies exit early.
///
/// Scheduling never influences results in Rain: tasks that compute obey
/// the deterministic-chunk contract internally, and the graph only adds
/// ordering constraints on top. The async `DebugSession` uses a graph to
/// overlap speculative retraining with the rank phase's CG solves.
///
/// Thread-safety: `Submit`/`Cancel`/`WaitAll` may be called from any
/// thread; task bodies run on pool workers (or on threads draining the
/// pool while they wait).
class TaskGraph {
 public:
  using TaskId = size_t;

  /// `pool` is borrowed; nullptr means the process-wide pool.
  explicit TaskGraph(ThreadPool* pool = nullptr);
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Schedules `fn(token)` to run once every task in `deps` completed
  /// (already-completed dependencies are fine). Returns a future for the
  /// result; exceptions thrown by `fn` surface at `Future::Get()`.
  /// `out_id`, when non-null, receives the task's id for use as a later
  /// dependency.
  template <typename Fn>
  auto Submit(std::string name, const std::vector<TaskId>& deps, Fn&& fn,
              TaskId* out_id = nullptr)
      -> Future<std::invoke_result_t<Fn, const CancellationToken&>> {
    using T = std::invoke_result_t<Fn, const CancellationToken&>;
    Promise<T> promise;
    Future<T> future = promise.future();
    CancellationToken token = token_;
    auto body = [promise, token, f = std::forward<Fn>(fn)]() mutable {
      try {
        promise.Set(f(static_cast<const CancellationToken&>(token)));
      } catch (...) {
        promise.SetException(std::current_exception());
      }
    };
    const TaskId id = SubmitErased(std::move(name), deps, std::move(body));
    if (out_id != nullptr) *out_id = id;
    return future;
  }

  /// The graph-level token handed to every task body.
  const CancellationToken& token() const { return token_; }
  /// Cancels the graph token (cooperative; see class comment).
  void Cancel() { token_.Cancel(); }

  /// Blocks until every task submitted so far has completed, helping to
  /// drain the pool while waiting.
  void WaitAll();

  size_t num_submitted() const;
  size_t num_completed() const;

 private:
  struct Node;

  /// Core type-erased scheduling; the templated Submit wraps the typed
  /// promise fulfilment around `body`.
  TaskId SubmitErased(std::string name, const std::vector<TaskId>& deps,
                      std::function<void()> body);
  void RunNode(size_t index);
  void EnqueueReadyLocked(size_t index);

  ThreadPool* pool_;
  CancellationToken token_;

  mutable std::mutex mu_;
  std::condition_variable all_done_;
  std::vector<std::unique_ptr<Node>> nodes_;
  size_t completed_ = 0;
};

}  // namespace rain

#endif  // RAIN_COMMON_TASK_GRAPH_H_
