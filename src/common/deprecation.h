#ifndef RAIN_COMMON_DEPRECATION_H_
#define RAIN_COMMON_DEPRECATION_H_

/// RAIN_DEPRECATED(msg) marks legacy entry points kept for source
/// compatibility. It expands to [[deprecated(msg)]] only when the build
/// opts in with -DRAIN_STRICT_DEPRECATION (CMake option
/// RAIN_STRICT_DEPRECATION, off by default), so default builds stay quiet
/// while CI proves the tree itself is fully migrated by compiling with the
/// option (plus -Werror) on.
#ifdef RAIN_STRICT_DEPRECATION
#define RAIN_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define RAIN_DEPRECATED(msg)
#endif

/// Guards for the few intentional uses of deprecated API (the
/// compatibility shim's own equivalence tests).
#if defined(__GNUC__) || defined(__clang__)
#define RAIN_SUPPRESS_DEPRECATION_BEGIN \
  _Pragma("GCC diagnostic push")        \
  _Pragma("GCC diagnostic ignored \"-Wdeprecated-declarations\"")
#define RAIN_SUPPRESS_DEPRECATION_END _Pragma("GCC diagnostic pop")
#else
#define RAIN_SUPPRESS_DEPRECATION_BEGIN
#define RAIN_SUPPRESS_DEPRECATION_END
#endif

#endif  // RAIN_COMMON_DEPRECATION_H_
