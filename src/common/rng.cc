#include "common/rng.h"

#include <cmath>

namespace rain {
namespace {

constexpr double kPi = 3.14159265358979323846;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitSeed(uint64_t seed, uint64_t stream) {
  uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  const uint64_t a = SplitMix64(&state);
  return a ^ SplitMix64(&state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * kPi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Gamma(double shape) {
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Gaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 1e-300 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double alpha, double beta) {
  const double x = Gamma(alpha);
  const double y = Gamma(beta);
  const double denom = x + y;
  if (denom <= 0.0) return 0.5;
  return x / denom;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher-Yates: shuffle the first k positions only.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace rain
