#include "common/task_graph.h"

#include "common/logging.h"

namespace rain {

struct TaskGraph::Node {
  std::string name;
  std::function<void()> body;
  /// Tasks waiting on this one (by index into nodes_).
  std::vector<size_t> dependents;
  /// Dependencies not yet completed; the node is handed to the pool when
  /// this reaches zero.
  size_t unmet = 0;
  bool enqueued = false;
  bool done = false;
};

TaskGraph::TaskGraph(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ThreadPool::Global()) {}

TaskGraph::~TaskGraph() {
  // Every submitted body must run (futures would otherwise never resolve):
  // cancel cooperatively, then wait for the tail to drain.
  token_.Cancel();
  WaitAll();
}

TaskGraph::TaskId TaskGraph::SubmitErased(std::string name,
                                          const std::vector<TaskId>& deps,
                                          std::function<void()> body) {
  size_t index;
  bool ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = nodes_.size();
    auto node = std::make_unique<Node>();
    node->name = std::move(name);
    node->body = std::move(body);
    for (TaskId dep : deps) {
      RAIN_CHECK(dep < index) << "TaskGraph: dependency on unknown task " << dep;
      if (!nodes_[dep]->done) {
        nodes_[dep]->dependents.push_back(index);
        ++node->unmet;
      }
    }
    ready = node->unmet == 0;
    if (ready) node->enqueued = true;
    nodes_.push_back(std::move(node));
  }
  if (ready) pool_->Submit([this, index] { RunNode(index); });
  return index;
}

void TaskGraph::EnqueueReadyLocked(size_t index) {
  Node& node = *nodes_[index];
  if (node.enqueued || node.done || node.unmet != 0) return;
  node.enqueued = true;
  pool_->Submit([this, index] { RunNode(index); });
}

void TaskGraph::RunNode(size_t index) {
  std::function<void()> body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    body = std::move(nodes_[index]->body);
  }
  // Bodies wrap user fns in promise fulfilment and never throw.
  body();
  std::vector<size_t> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Node& node = *nodes_[index];
    node.done = true;
    ++completed_;
    for (size_t dep_index : node.dependents) {
      Node& dependent = *nodes_[dep_index];
      RAIN_CHECK(dependent.unmet > 0);
      if (--dependent.unmet == 0 && !dependent.enqueued) {
        dependent.enqueued = true;
        ready.push_back(dep_index);
      }
    }
    if (completed_ == nodes_.size()) all_done_.notify_all();
  }
  for (size_t r : ready) pool_->Submit([this, r] { RunNode(r); });
}

void TaskGraph::WaitAll() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (completed_ == nodes_.size()) return;
    }
    if (!pool_->RunOneTask()) {
      std::unique_lock<std::mutex> lock(mu_);
      // A task may be mid-flight on a worker; its completion notifies.
      all_done_.wait(lock, [this] { return completed_ == nodes_.size(); });
      return;
    }
  }
}

size_t TaskGraph::num_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

size_t TaskGraph::num_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

}  // namespace rain
