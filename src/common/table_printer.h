#ifndef RAIN_COMMON_TABLE_PRINTER_H_
#define RAIN_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace rain {

/// \brief Column-aligned text table used by the bench harnesses to print
/// paper-style result tables, plus CSV emission for downstream plotting.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision.
  static std::string Num(double v, int precision = 3);

  /// Aligned, boxed text rendering.
  std::string ToText() const;
  /// RFC-4180-ish CSV (values containing commas/quotes are quoted).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rain

#endif  // RAIN_COMMON_TABLE_PRINTER_H_
