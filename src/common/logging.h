#ifndef RAIN_COMMON_LOGGING_H_
#define RAIN_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace rain {

/// Log severity levels; kFatal aborts after printing.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum severity that is actually emitted (default kInfo).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink flushed (and possibly aborting) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rain

#define RAIN_LOG(level)                                                      \
  ::rain::internal::LogMessage(::rain::LogLevel::k##level, __FILE__, __LINE__).stream()

/// Invariant check that is active in all build modes (database idiom:
/// corrupting results is worse than aborting).
#define RAIN_CHECK(cond)                                          \
  if (!(cond))                                                    \
  RAIN_LOG(Fatal) << "Check failed: " #cond " "

#define RAIN_DCHECK(cond) RAIN_CHECK(cond)

#endif  // RAIN_COMMON_LOGGING_H_
