#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace rain {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking to the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace rain
