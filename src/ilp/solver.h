#ifndef RAIN_ILP_SOLVER_H_
#define RAIN_ILP_SOLVER_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ilp/problem.h"

namespace rain {

struct IlpSolveOptions {
  /// Search budget: branch-and-bound nodes and wall-clock seconds. When
  /// exhausted the solver returns its incumbent (feasible=true,
  /// optimal=false) or ResourceExhausted if none was found — this is how
  /// the repo reproduces the paper's "ILP did not finish in 30 minutes"
  /// behaviour at laptop scale.
  int64_t max_nodes = 2'000'000;
  double time_limit_s = 10.0;

  /// Randomizes branching order and value tie-breaks. Among ILPs with
  /// many optima this makes the returned optimum an (approximately)
  /// uniform pick, modelling the opaque solver choice that causes
  /// TwoStep's ambiguity problem (Section 5.2.2).
  bool randomize = true;
  uint64_t seed = 1;

  /// Index of a single "coupling" constraint (e.g. the complaint
  /// cardinality constraint) that the decomposition fast path may remove
  /// to split the problem into independent components; -1 disables.
  int coupling_constraint = -1;

  /// Generalized coupling set: when non-empty it supersedes
  /// `coupling_constraint`. With one entry the classic single-coupling
  /// decomposition runs; with several (e.g. two overlapping complaint
  /// cardinalities) the grouped multi-coupling DP fixes the slack of every
  /// listed constraint at once and still solves each component exactly.
  std::vector<int> coupling_constraints;

  /// Optional warm start: a candidate assignment (size num_vars). When it
  /// is feasible for the problem, branch-and-bound seeds its incumbent
  /// from it, so bound pruning is active from the first node and the
  /// solver can never return empty-handed on a budget exhaust. Infeasible
  /// or wrong-sized warm starts are ignored.
  std::vector<uint8_t> warm_start;
};

struct IlpSolution {
  std::vector<uint8_t> values;
  double objective = 0.0;
  bool feasible = false;
  bool optimal = false;
  bool timed_out = false;
  int64_t nodes_explored = 0;
  bool used_decomposition = false;
  /// True when a feasible `warm_start` seeded the incumbent (the returned
  /// solution may still improve on it).
  bool warm_start_used = false;
};

/// \brief Solves a binary ILP.
///
/// Strategy: if `coupling_constraint` is set and removing it splits the
/// problem into small independent components, an exact
/// enumerate-components + DP-over-contributions method is used (this
/// covers the Tiresias encodings of COUNT/SUM complaints over
/// filter-style queries, where rows are independent). Otherwise a
/// depth-first branch-and-bound with bounds propagation runs under the
/// node/time budget.
Result<IlpSolution> SolveIlp(const IlpProblem& problem, const IlpSolveOptions& options);

}  // namespace rain

#endif  // RAIN_ILP_SOLVER_H_
