#include "ilp/problem.h"

#include <cmath>
#include <unordered_map>

namespace rain {

int IlpProblem::AddVar(double objective_coef, std::string name) {
  objective_.push_back(objective_coef);
  names_.push_back(std::move(name));
  return static_cast<int>(objective_.size() - 1);
}

void IlpProblem::AddCardinality(const std::vector<int>& vars, ConstraintSense sense,
                                double rhs) {
  LinearConstraint c;
  c.terms.reserve(vars.size());
  for (int v : vars) c.terms.push_back(LinearTerm{v, 1.0});
  c.sense = sense;
  c.rhs = rhs;
  AddConstraint(std::move(c));
}

double IlpProblem::ObjectiveValue(const std::vector<uint8_t>& x) const {
  double obj = 0.0;
  for (size_t i = 0; i < objective_.size(); ++i) {
    if (x[i]) obj += objective_[i];
  }
  return obj;
}

IlpProblem IlpProblem::Canonicalized() const {
  IlpProblem out;
  out.objective_ = objective_;
  out.names_ = names_;
  out.constraints_.reserve(constraints_.size());
  std::unordered_map<int, double> merged;
  for (const LinearConstraint& c : constraints_) {
    merged.clear();
    for (const LinearTerm& t : c.terms) merged[t.var] += t.coef;
    LinearConstraint mc;
    mc.sense = c.sense;
    mc.rhs = c.rhs;
    for (const auto& [var, coef] : merged) {
      if (std::fabs(coef) > 0.0) mc.terms.push_back(LinearTerm{var, coef});
    }
    out.constraints_.push_back(std::move(mc));
  }
  return out;
}

bool IlpProblem::IsFeasible(const std::vector<uint8_t>& x, double eps) const {
  for (const LinearConstraint& c : constraints_) {
    double act = 0.0;
    for (const LinearTerm& t : c.terms) {
      if (x[t.var]) act += t.coef;
    }
    switch (c.sense) {
      case ConstraintSense::kLe:
        if (act > c.rhs + eps) return false;
        break;
      case ConstraintSense::kGe:
        if (act < c.rhs - eps) return false;
        break;
      case ConstraintSense::kEq:
        if (act < c.rhs - eps || act > c.rhs + eps) return false;
        break;
    }
  }
  return true;
}

}  // namespace rain
