#ifndef RAIN_ILP_PROBLEM_H_
#define RAIN_ILP_PROBLEM_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace rain {

enum class ConstraintSense : uint8_t { kLe, kGe, kEq };

struct LinearTerm {
  int var = -1;
  double coef = 0.0;
};

/// sum_i coef_i * x_i  (sense)  rhs
struct LinearConstraint {
  std::vector<LinearTerm> terms;
  ConstraintSense sense = ConstraintSense::kLe;
  double rhs = 0.0;
};

/// \brief A 0/1 integer linear program: minimize c.x subject to linear
/// constraints, x binary.
///
/// This is the substrate for the TwoStep SQL-explanation step: the
/// Tiresias-style encoder lowers complaints over provenance polynomials
/// into an IlpProblem (prediction-assignment variables, Tseitin auxiliary
/// variables, flip-count objective) and hands it to IlpSolver — the
/// stand-in for Gurobi/CPLEX (see DESIGN.md substitutions).
class IlpProblem {
 public:
  /// Adds a binary variable with the given objective coefficient.
  int AddVar(double objective_coef, std::string name = "");

  void AddConstraint(LinearConstraint c) { constraints_.push_back(std::move(c)); }

  /// Convenience: sum(vars) sense rhs with unit coefficients.
  void AddCardinality(const std::vector<int>& vars, ConstraintSense sense, double rhs);

  size_t num_vars() const { return objective_.size(); }
  size_t num_constraints() const { return constraints_.size(); }
  double objective_coef(int v) const { return objective_[v]; }
  const std::vector<double>& objective() const { return objective_; }
  const std::vector<LinearConstraint>& constraints() const { return constraints_; }
  const std::string& var_name(int v) const { return names_[v]; }

  /// Objective value of a full assignment.
  double ObjectiveValue(const std::vector<uint8_t>& x) const;
  /// True if `x` satisfies every constraint (within eps).
  bool IsFeasible(const std::vector<uint8_t>& x, double eps = 1e-6) const;

  /// Returns a copy with every constraint's duplicate variable terms
  /// merged (coefficients summed, zero terms dropped). The solver's
  /// activity bookkeeping assumes each variable appears at most once per
  /// constraint, so it canonicalizes its input with this.
  IlpProblem Canonicalized() const;

 private:
  std::vector<double> objective_;
  std::vector<std::string> names_;
  std::vector<LinearConstraint> constraints_;
};

}  // namespace rain

#endif  // RAIN_ILP_PROBLEM_H_
