#ifndef RAIN_ILP_TIRESIAS_H_
#define RAIN_ILP_TIRESIAS_H_

#include <vector>

#include "common/result.h"
#include "ilp/problem.h"
#include "ilp/solver.h"
#include "provenance/poly.h"
#include "provenance/prediction_store.h"

namespace rain {

/// A complaint lowered to "provenance polynomial (sense) rhs":
///  * value complaint t[a] = X  ->  {poly of t[a], kEq, X}
///  * tuple complaint (t should not exist)  ->  {existence poly, kEq, 0}.
struct IlpComplaint {
  PolyId poly = kInvalidPoly;
  ConstraintSense sense = ConstraintSense::kEq;
  double rhs = 0.0;
};

/// \brief Tiresias-style ILP encoding of complaints (Section 5.2).
///
/// Prediction variables: for every queried row reachable from any
/// complaint polynomial, one binary ILP variable per class with a one-hot
/// constraint; the variable matching the current prediction has objective
/// coefficient 0, every other class costs 1 (minimize prediction flips,
/// Equation 5). Polynomial structure is lowered with Tseitin-style
/// linearizations (AND/OR/NOT auxiliaries), sums as affine expressions,
/// and constant-denominator ratios by scaling.
struct TiresiasEncoding {
  IlpProblem problem;

  struct RowVars {
    int32_t table_id = -1;
    int64_t row = -1;
    int current_class = -1;       // argmax under the current model
    std::vector<int> class_vars;  // ILP var per class
  };
  std::vector<RowVars> rows;

  /// arena VarId -> ILP var (-1 when the class var was not created).
  std::vector<int> ilp_var_of;

  /// Hint for the decomposition fast path: index of the (single)
  /// complaint constraint, or -1.
  int coupling_constraint = -1;

  /// Indices of every complaint's main linear constraint, in complaint
  /// order. Feeds IlpSolveOptions::coupling_constraints so the
  /// multi-coupling decomposition can fix all complaint slacks at once.
  std::vector<int> complaint_constraints;
};

/// Builds the encoding. `arena` is mutated only through GetOrCreateVar
/// (class variables that the polynomials never mention still need ILP
/// variables for the one-hot constraints).
Result<TiresiasEncoding> EncodeTiresias(PolyArena* arena,
                                        const PredictionStore& predictions,
                                        const std::vector<IlpComplaint>& complaints);

/// A queried row whose prediction the ILP solution changed, with the
/// "corrected" class the solver assigned (the t_i of Section 5.2).
struct MarkedPrediction {
  int32_t table_id = -1;
  int64_t row = -1;
  int assigned_class = -1;
};

/// Extracts the rows whose assigned class differs from the current
/// prediction (the mispredictions TwoStep feeds to influence analysis).
std::vector<MarkedPrediction> DecodeMarkedPredictions(const TiresiasEncoding& enc,
                                                      const IlpSolution& solution);

/// \brief Best-effort warm start for the branch-and-bound fallback.
///
/// Starts from the current predictions (one-hot by construction, cost 0)
/// and greedily repairs the complaint constraints, preferring flips that
/// do not disturb other complaints. Returns an assignment suitable for
/// IlpSolveOptions::warm_start, or an empty vector when no feasible
/// candidate was found (Tseitin auxiliaries present, or repair failed) —
/// the solver ignores empty/infeasible warm starts, so callers can pass
/// the result through unconditionally.
std::vector<uint8_t> BuildTiresiasWarmStart(const TiresiasEncoding& enc);

}  // namespace rain

#endif  // RAIN_ILP_TIRESIAS_H_
