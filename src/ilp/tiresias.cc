#include "ilp/tiresias.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace rain {
namespace {

constexpr double kEps = 1e-6;

/// Affine expression over ILP variables: sum coef*var + constant.
struct Aff {
  std::vector<LinearTerm> terms;
  double constant = 0.0;
  /// Provably 0/1-valued (single binary var, Tseitin auxiliary, 0/1 const).
  bool is_binary = false;

  bool IsConstant() const { return terms.empty(); }
};

class Encoder {
 public:
  Encoder(PolyArena* arena, const PredictionStore& predictions,
          TiresiasEncoding* out)
      : arena_(arena), preds_(predictions), out_(out) {}

  Status Run(const std::vector<IlpComplaint>& complaints) {
    // Pass 1: collect queried rows reachable from any complaint poly and
    // create per-class prediction variables with one-hot constraints.
    std::map<std::pair<int32_t, int64_t>, size_t> row_index;
    for (const IlpComplaint& c : complaints) {
      if (c.poly == kInvalidPoly) {
        return Status::InvalidArgument("complaint has no provenance polynomial");
      }
      for (VarId v : arena_->ReachableVars(c.poly)) {
        const PredVar& pv = arena_->var(v);
        row_index.emplace(std::make_pair(pv.table_id, pv.row), row_index.size());
      }
    }
    out_->rows.resize(row_index.size());
    for (const auto& [key, idx] : row_index) {
      TiresiasEncoding::RowVars rv;
      rv.table_id = key.first;
      rv.row = key.second;
      rv.current_class = preds_.PredictedClass(key.first, key.second);
      const int num_classes = preds_.NumClasses(key.first);
      std::vector<int> one_hot;
      for (int c = 0; c < num_classes; ++c) {
        const double cost = c == rv.current_class ? 0.0 : 1.0;
        const int var = out_->problem.AddVar(
            cost, StrFormat("t[%d,%lld]=%d", key.first,
                            static_cast<long long>(key.second), c));
        rv.class_vars.push_back(var);
        one_hot.push_back(var);
        // Remember the mapping for arena variables of this (row, class).
        const VarId av = arena_->GetOrCreateVar(PredVar{key.first, key.second, c});
        if (static_cast<size_t>(av) >= out_->ilp_var_of.size()) {
          out_->ilp_var_of.resize(av + 1, -1);
        }
        out_->ilp_var_of[av] = var;
      }
      out_->problem.AddCardinality(one_hot, ConstraintSense::kEq, 1.0);
      out_->rows[idx] = std::move(rv);
    }

    // Pass 2: lower each complaint polynomial to a linear constraint.
    for (const IlpComplaint& c : complaints) {
      RAIN_ASSIGN_OR_RETURN(Aff e, Encode(c.poly));
      LinearConstraint lc;
      lc.terms = e.terms;
      lc.sense = c.sense;
      lc.rhs = c.rhs - e.constant;
      NormalizeIntegral(&lc);
      out_->problem.AddConstraint(std::move(lc));
      const int ci = static_cast<int>(out_->problem.num_constraints() - 1);
      out_->complaint_constraints.push_back(ci);
      // Coupling hint: a single kEq/kLe complaint constraint.
      out_->coupling_constraint =
          complaints.size() == 1 && c.sense != ConstraintSense::kGe ? ci : -1;
    }
    return Status::OK();
  }

 private:
  /// If all coefficients share a common scale that makes them integral,
  /// rescale and round the RHS (counts stay exact; AVG complaints with
  /// 1/n coefficients become integral cardinalities, with the fractional
  /// target rounded to the nearest achievable integer).
  void NormalizeIntegral(LinearConstraint* c) const {
    if (c->terms.empty()) return;
    double smallest = 0.0;
    for (const LinearTerm& t : c->terms) {
      const double a = std::fabs(t.coef);
      if (a > kEps && (smallest == 0.0 || a < smallest)) smallest = a;
    }
    if (smallest <= kEps) return;
    const double scale = 1.0 / smallest;
    for (const LinearTerm& t : c->terms) {
      const double scaled = t.coef * scale;
      if (std::fabs(scaled - std::llround(scaled)) > kEps) return;  // not integral
    }
    for (LinearTerm& t : c->terms) {
      t.coef = static_cast<double>(std::llround(t.coef * scale));
    }
    c->rhs = c->sense == ConstraintSense::kEq
                 ? static_cast<double>(std::llround(c->rhs * scale))
                 : c->rhs * scale;
  }

  /// Fresh Tseitin auxiliary (objective 0).
  Aff NewAux(const char* tag) {
    Aff a;
    a.terms.push_back(LinearTerm{out_->problem.AddVar(0.0, tag), 1.0});
    a.is_binary = true;
    return a;
  }

  /// z <= e  i.e.  z - e <= 0.
  void AddLe(const Aff& z, const Aff& e) {
    LinearConstraint c;
    c.terms = z.terms;
    for (const LinearTerm& t : e.terms) c.terms.push_back(LinearTerm{t.var, -t.coef});
    c.sense = ConstraintSense::kLe;
    c.rhs = e.constant - z.constant;
    out_->problem.AddConstraint(std::move(c));
  }

  Result<Aff> Encode(PolyId id) {
    auto it = memo_.find(id);
    if (it != memo_.end()) return it->second;
    RAIN_ASSIGN_OR_RETURN(Aff a, EncodeUncached(id));
    memo_.emplace(id, a);
    return a;
  }

  Result<Aff> EncodeUncached(PolyId id) {
    const PolyNode& n = arena_->node(id);
    switch (n.op) {
      case PolyOp::kConst: {
        Aff a;
        a.constant = n.value;
        a.is_binary = n.value == 0.0 || n.value == 1.0;
        return a;
      }
      case PolyOp::kVar: {
        const VarId v = n.var;
        RAIN_CHECK(static_cast<size_t>(v) < out_->ilp_var_of.size() &&
                   out_->ilp_var_of[v] >= 0)
            << "prediction variable missing from encoding";
        Aff a;
        a.terms.push_back(LinearTerm{out_->ilp_var_of[v], 1.0});
        a.is_binary = true;
        return a;
      }
      case PolyOp::kNot: {
        RAIN_ASSIGN_OR_RETURN(Aff c, Encode(n.children[0]));
        if (!c.is_binary) {
          return Status::Unimplemented("NOT of a non-boolean ILP expression");
        }
        Aff a;
        a.constant = 1.0 - c.constant;
        for (const LinearTerm& t : c.terms) {
          a.terms.push_back(LinearTerm{t.var, -t.coef});
        }
        a.is_binary = true;
        return a;
      }
      case PolyOp::kAnd:
        return EncodeAndOr(n, /*is_and=*/true);
      case PolyOp::kOr:
        return EncodeAndOr(n, /*is_and=*/false);
      case PolyOp::kAdd: {
        Aff a;
        for (PolyId cid : n.children) {
          RAIN_ASSIGN_OR_RETURN(Aff c, Encode(cid));
          a.constant += c.constant;
          for (const LinearTerm& t : c.terms) a.terms.push_back(t);
        }
        a.is_binary = false;
        return a;
      }
      case PolyOp::kMul: {
        // Split children into constants and boolean factors.
        double scale = 1.0;
        std::vector<Aff> factors;
        for (PolyId cid : n.children) {
          RAIN_ASSIGN_OR_RETURN(Aff c, Encode(cid));
          if (c.IsConstant()) {
            scale *= c.constant;
          } else {
            factors.push_back(std::move(c));
          }
        }
        if (factors.empty()) {
          Aff a;
          a.constant = scale;
          a.is_binary = scale == 0.0 || scale == 1.0;
          return a;
        }
        Aff product;
        if (factors.size() == 1) {
          product = factors[0];
        } else {
          for (const Aff& f : factors) {
            if (!f.is_binary) {
              return Status::Unimplemented(
                  "product of non-boolean ILP expressions (see Appendix B)");
            }
          }
          product = TseitinAnd(factors);
        }
        if (scale != 1.0) {
          product.constant *= scale;
          for (LinearTerm& t : product.terms) t.coef *= scale;
          product.is_binary = false;
        }
        return product;
      }
      case PolyOp::kDiv: {
        RAIN_ASSIGN_OR_RETURN(Aff num, Encode(n.children[0]));
        RAIN_ASSIGN_OR_RETURN(Aff den, Encode(n.children[1]));
        if (!den.IsConstant() || std::fabs(den.constant) < kEps) {
          return Status::Unimplemented(
              "ratio with a model-dependent denominator cannot be encoded as an "
              "ILP (AVG over a model-filtered group); use Holistic");
        }
        num.constant /= den.constant;
        for (LinearTerm& t : num.terms) t.coef /= den.constant;
        num.is_binary = false;
        return num;
      }
    }
    return Status::Internal("unreachable");
  }

  Aff TseitinAnd(const std::vector<Aff>& factors) {
    Aff z = NewAux("and");
    // z <= e_i for all i; z >= sum e_i - (n-1).
    for (const Aff& f : factors) AddLe(z, f);
    LinearConstraint lower;  // sum e_i - z <= n-1
    lower.sense = ConstraintSense::kLe;
    lower.rhs = static_cast<double>(factors.size()) - 1.0;
    for (const Aff& f : factors) {
      for (const LinearTerm& t : f.terms) lower.terms.push_back(t);
      lower.rhs -= f.constant;
    }
    lower.terms.push_back(LinearTerm{z.terms[0].var, -1.0});
    out_->problem.AddConstraint(std::move(lower));
    return z;
  }

  Result<Aff> EncodeAndOr(const PolyNode& n, bool is_and) {
    std::vector<Aff> children;
    children.reserve(n.children.size());
    for (PolyId cid : n.children) {
      RAIN_ASSIGN_OR_RETURN(Aff c, Encode(cid));
      if (!c.is_binary) {
        return Status::Unimplemented("AND/OR over non-boolean ILP expressions");
      }
      children.push_back(std::move(c));
    }
    if (children.size() == 1) return children[0];
    if (is_and) return TseitinAnd(children);
    // OR: z >= e_i (e_i - z <= 0); z <= sum e_i.
    Aff z = NewAux("or");
    for (const Aff& f : children) AddLe(f, z);
    LinearConstraint upper;  // z - sum e_i <= 0
    upper.sense = ConstraintSense::kLe;
    upper.rhs = 0.0;
    upper.terms.push_back(LinearTerm{z.terms[0].var, 1.0});
    for (const Aff& f : children) {
      for (const LinearTerm& t : f.terms) {
        upper.terms.push_back(LinearTerm{t.var, -t.coef});
      }
      upper.rhs += f.constant;
    }
    out_->problem.AddConstraint(std::move(upper));
    return z;
  }

  PolyArena* arena_;
  const PredictionStore& preds_;
  TiresiasEncoding* out_;
  std::unordered_map<PolyId, Aff> memo_;
};

}  // namespace

Result<TiresiasEncoding> EncodeTiresias(PolyArena* arena,
                                        const PredictionStore& predictions,
                                        const std::vector<IlpComplaint>& complaints) {
  if (complaints.empty()) {
    return Status::InvalidArgument("no complaints to encode");
  }
  TiresiasEncoding enc;
  Encoder encoder(arena, predictions, &enc);
  RAIN_RETURN_NOT_OK(encoder.Run(complaints));
  return enc;
}

std::vector<uint8_t> BuildTiresiasWarmStart(const TiresiasEncoding& enc) {
  // Gate on pure prediction-variable encodings: the repair below only
  // assigns class vars, so any Tseitin auxiliary (stuck at 0) would make
  // the candidate bogus.
  size_t class_vars = 0;
  for (const auto& rv : enc.rows) class_vars += rv.class_vars.size();
  if (class_vars != enc.problem.num_vars() || enc.rows.empty()) return {};

  const size_t n = enc.problem.num_vars();
  std::vector<uint8_t> x(n, 0);
  std::vector<int> assigned(enc.rows.size());
  for (size_t r = 0; r < enc.rows.size(); ++r) {
    const auto& rv = enc.rows[r];
    if (rv.current_class < 0 ||
        rv.current_class >= static_cast<int>(rv.class_vars.size())) {
      return {};
    }
    assigned[r] = rv.current_class;
    x[rv.class_vars[rv.current_class]] = 1;
  }

  // Dense per-complaint coefficient lookup and running activities.
  const auto& ccs = enc.complaint_constraints;
  const size_t m = ccs.size();
  std::vector<std::vector<double>> coef(m, std::vector<double>(n, 0.0));
  std::vector<double> act(m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    if (ccs[i] < 0 ||
        static_cast<size_t>(ccs[i]) >= enc.problem.num_constraints()) {
      return {};
    }
    for (const LinearTerm& t : enc.problem.constraints()[ccs[i]].terms) {
      coef[i][t.var] += t.coef;
    }
    for (size_t v = 0; v < n; ++v) {
      if (x[v]) act[i] += coef[i][v];
    }
  }
  auto violation = [&](size_t i, double a) {
    const LinearConstraint& c = enc.problem.constraints()[ccs[i]];
    switch (c.sense) {
      case ConstraintSense::kEq:
        return std::fabs(a - c.rhs);
      case ConstraintSense::kLe:
        return std::max(0.0, a - c.rhs);
      case ConstraintSense::kGe:
        return std::max(0.0, c.rhs - a);
    }
    return 0.0;
  };

  // Greedy multi-round repair: flip one row's class at a time toward the
  // violated complaint, preferring flips that leave the other complaints
  // untouched, then flips that cost the least extra objective.
  const size_t max_flips = 8 * enc.rows.size();
  size_t flips = 0;
  for (int round = 0; round < 4; ++round) {
    bool all_ok = true;
    for (size_t i = 0; i < m; ++i) {
      while (violation(i, act[i]) > kEps && flips < max_flips) {
        double best_harm = 0.0, best_cost = 0.0, best_gain = 0.0;
        size_t best_row = 0;
        int best_class = -1;
        for (size_t r = 0; r < enc.rows.size(); ++r) {
          const auto& rv = enc.rows[r];
          const int a_cls = assigned[r];
          const int va = rv.class_vars[a_cls];
          for (int b = 0; b < static_cast<int>(rv.class_vars.size()); ++b) {
            if (b == a_cls) continue;
            const int vb = rv.class_vars[b];
            const double gain = violation(i, act[i]) -
                                violation(i, act[i] + coef[i][vb] - coef[i][va]);
            if (gain <= kEps) continue;
            double harm = 0.0;
            for (size_t j = 0; j < m; ++j) {
              if (j == i) continue;
              harm += violation(j, act[j] + coef[j][vb] - coef[j][va]) -
                      violation(j, act[j]);
            }
            const double cost =
                (b == rv.current_class ? 0.0 : 1.0) -
                (a_cls == rv.current_class ? 0.0 : 1.0);
            if (best_class < 0 || harm < best_harm - kEps ||
                (harm < best_harm + kEps &&
                 (cost < best_cost - kEps ||
                  (cost < best_cost + kEps && gain > best_gain + kEps)))) {
              best_harm = harm;
              best_cost = cost;
              best_gain = gain;
              best_row = r;
              best_class = b;
            }
          }
        }
        if (best_class < 0) break;  // no improving flip
        const auto& rv = enc.rows[best_row];
        const int va = rv.class_vars[assigned[best_row]];
        const int vb = rv.class_vars[best_class];
        for (size_t j = 0; j < m; ++j) act[j] += coef[j][vb] - coef[j][va];
        x[va] = 0;
        x[vb] = 1;
        assigned[best_row] = best_class;
        ++flips;
      }
      if (violation(i, act[i]) > kEps) all_ok = false;
    }
    if (all_ok) break;
  }

  if (!enc.problem.IsFeasible(x)) return {};
  return x;
}

std::vector<MarkedPrediction> DecodeMarkedPredictions(const TiresiasEncoding& enc,
                                                      const IlpSolution& solution) {
  std::vector<MarkedPrediction> marked;
  for (const auto& rv : enc.rows) {
    int assigned = -1;
    for (size_t c = 0; c < rv.class_vars.size(); ++c) {
      const int var = rv.class_vars[c];
      if (var >= 0 && static_cast<size_t>(var) < solution.values.size() &&
          solution.values[var]) {
        assigned = static_cast<int>(c);
        break;
      }
    }
    if (assigned >= 0 && assigned != rv.current_class) {
      marked.push_back(MarkedPrediction{rv.table_id, rv.row, assigned});
    }
  }
  return marked;
}

}  // namespace rain
