#include "ilp/solver.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace rain {
namespace {

constexpr double kEps = 1e-6;

bool IsInt(double v) { return std::fabs(v - std::llround(v)) < kEps; }

// ---------------------------------------------------------------------------
// Decomposition fast path: remove one coupling constraint, enumerate the
// resulting independent components, and run a DP over their contributions.
// ---------------------------------------------------------------------------

struct ComponentChoice {
  // One feasible assignment of the component's variables.
  std::vector<uint8_t> assignment;
};

struct ContributionEntry {
  double min_cost = std::numeric_limits<double>::infinity();
  // Reservoir of min-cost assignments for randomized tie-breaking.
  std::vector<ComponentChoice> reservoir;
  size_t min_cost_count = 0;
};

constexpr size_t kMaxComponentVars = 14;
constexpr size_t kReservoirSize = 4;

bool TryDecomposition(const IlpProblem& problem, int k,
                      const IlpSolveOptions& options, Rng* rng,
                      IlpSolution* out) {
  if (k < 0 || static_cast<size_t>(k) >= problem.num_constraints()) return false;
  const LinearConstraint& coupling = problem.constraints()[k];
  // kGe couplings would need saturating-DP backtracking that can land on
  // unreachable predecessor cells; Rain only emits kEq/kLe couplings.
  if (coupling.sense == ConstraintSense::kGe) return false;
  if (!IsInt(coupling.rhs) || coupling.rhs < 0) return false;
  for (const LinearTerm& t : coupling.terms) {
    if (t.coef < 0 || !IsInt(t.coef)) return false;
  }
  const int64_t target = std::llround(coupling.rhs);

  // Union-find over variables connected by non-coupling constraints.
  const size_t n = problem.num_vars();
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t ci = 0; ci < problem.num_constraints(); ++ci) {
    if (static_cast<int>(ci) == k) continue;
    const auto& terms = problem.constraints()[ci].terms;
    for (size_t i = 1; i < terms.size(); ++i) {
      parent[find(terms[i - 1].var)] = find(terms[i].var);
    }
  }
  std::unordered_map<int, std::vector<int>> comp_vars;
  for (size_t v = 0; v < n; ++v) comp_vars[find(static_cast<int>(v))].push_back(v);

  // Constraints per component (each non-coupling constraint lives fully
  // inside one component by construction).
  std::unordered_map<int, std::vector<int>> comp_cons;
  for (size_t ci = 0; ci < problem.num_constraints(); ++ci) {
    if (static_cast<int>(ci) == k) continue;
    const auto& terms = problem.constraints()[ci].terms;
    if (terms.empty()) continue;
    comp_cons[find(terms[0].var)].push_back(static_cast<int>(ci));
  }
  std::vector<double> coupling_coef(n, 0.0);
  for (const LinearTerm& t : coupling.terms) coupling_coef[t.var] = t.coef;

  // Enumerate each component.
  struct CompTable {
    std::vector<int> vars;
    // contribution value -> entry
    std::unordered_map<int64_t, ContributionEntry> by_contrib;
  };
  std::vector<CompTable> tables;
  int64_t max_total_contrib = 0;
  for (auto& [root, vars] : comp_vars) {
    if (vars.size() > kMaxComponentVars) return false;
    CompTable table;
    table.vars = vars;
    const auto& cons = comp_cons[root];
    const size_t m = vars.size();
    std::vector<uint8_t> assign(m);
    for (uint64_t mask = 0; mask < (1ULL << m); ++mask) {
      for (size_t i = 0; i < m; ++i) assign[i] = (mask >> i) & 1;
      // Check component constraints.
      bool ok = true;
      for (int ci : cons) {
        const LinearConstraint& c = problem.constraints()[ci];
        double act = 0.0;
        for (const LinearTerm& t : c.terms) {
          // Position of t.var within vars (components are small; linear scan).
          for (size_t i = 0; i < m; ++i) {
            if (table.vars[i] == t.var) {
              if (assign[i]) act += t.coef;
              break;
            }
          }
        }
        if (c.sense == ConstraintSense::kLe && act > c.rhs + kEps) ok = false;
        if (c.sense == ConstraintSense::kGe && act < c.rhs - kEps) ok = false;
        if (c.sense == ConstraintSense::kEq && std::fabs(act - c.rhs) > kEps) ok = false;
        if (!ok) break;
      }
      if (!ok) continue;
      double cost = 0.0;
      double contrib = 0.0;
      for (size_t i = 0; i < m; ++i) {
        if (!assign[i]) continue;
        cost += problem.objective_coef(table.vars[i]);
        contrib += coupling_coef[table.vars[i]];
      }
      if (!IsInt(contrib)) return false;
      const int64_t ic = std::llround(contrib);
      ContributionEntry& entry = table.by_contrib[ic];
      if (cost < entry.min_cost - kEps) {
        entry.min_cost = cost;
        entry.reservoir.clear();
        entry.min_cost_count = 0;
      }
      if (cost < entry.min_cost + kEps) {
        ++entry.min_cost_count;
        if (entry.reservoir.size() < kReservoirSize) {
          entry.reservoir.push_back(ComponentChoice{assign});
        } else if (rng != nullptr &&
                   rng->UniformInt(entry.min_cost_count) < kReservoirSize) {
          entry.reservoir[rng->UniformInt(kReservoirSize)] = ComponentChoice{assign};
        }
      }
    }
    if (table.by_contrib.empty()) {
      // Component infeasible on its own: whole problem infeasible.
      out->feasible = false;
      out->optimal = true;
      out->used_decomposition = true;
      return true;
    }
    int64_t best_c = 0;
    for (const auto& [c, e] : table.by_contrib) best_c = std::max(best_c, c);
    max_total_contrib += best_c;
    tables.push_back(std::move(table));
  }

  // DP over contribution totals in [0, cap].
  const int64_t cap = coupling.sense == ConstraintSense::kLe
                          ? target
                          : std::min<int64_t>(target, max_total_contrib);
  if (cap < 0) return false;
  const size_t width = static_cast<size_t>(cap) + 1;
  if (tables.size() * width > 80'000'000 / sizeof(float)) return false;  // memory cap

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[t]: min cost to reach contribution total t after processing i comps.
  std::vector<double> dp(width, kInf);
  std::vector<double> next(width, kInf);
  // choice[i][t]: contribution chosen by component i to reach t.
  std::vector<std::vector<int32_t>> choice(tables.size(),
                                           std::vector<int32_t>(width, -1));
  // Randomize component order to randomize tie-breaking.
  std::vector<size_t> order(tables.size());
  std::iota(order.begin(), order.end(), size_t{0});
  if (options.randomize && rng != nullptr) rng->Shuffle(&order);

  dp[0] = 0.0;
  for (size_t oi = 0; oi < order.size(); ++oi) {
    const CompTable& table = tables[order[oi]];
    std::fill(next.begin(), next.end(), kInf);
    auto& ch = choice[oi];
    // Iterate contributions in randomized order so equal-cost predecessor
    // choices are broken randomly.
    std::vector<std::pair<int64_t, const ContributionEntry*>> entries;
    entries.reserve(table.by_contrib.size());
    for (const auto& [c, e] : table.by_contrib) entries.emplace_back(c, &e);
    if (options.randomize && rng != nullptr) {
      for (size_t i = entries.size(); i > 1; --i) {
        std::swap(entries[i - 1], entries[rng->UniformInt(i)]);
      }
    }
    for (size_t t = 0; t < width; ++t) {
      if (dp[t] == kInf) continue;
      for (const auto& [c, e] : entries) {
        // Saturating for >= (any surplus above cap counts as cap).
        int64_t nt = static_cast<int64_t>(t) + c;
        if (coupling.sense == ConstraintSense::kGe) nt = std::min(nt, cap);
        if (nt >= static_cast<int64_t>(width)) continue;
        const double cost = dp[t] + e->min_cost;
        if (cost < next[nt] - kEps ||
            (cost < next[nt] + kEps && options.randomize && rng != nullptr &&
             rng->Bernoulli(0.5))) {
          if (cost < next[nt] + kEps) {
            next[nt] = std::min(next[nt], cost);
            ch[nt] = static_cast<int32_t>(c);
          }
        }
      }
    }
    dp.swap(next);
  }

  // Final target cell.
  int64_t final_t = -1;
  double best_cost = kInf;
  if (coupling.sense == ConstraintSense::kEq) {
    if (target < static_cast<int64_t>(width) && dp[target] < kInf) {
      final_t = target;
      best_cost = dp[target];
    }
  } else if (coupling.sense == ConstraintSense::kLe) {
    for (int64_t t = 0; t <= cap; ++t) {
      if (dp[t] < best_cost - kEps) {
        best_cost = dp[t];
        final_t = t;
      }
    }
  } else {  // kGe: saturated at cap
    if (dp[cap] < kInf) {
      final_t = cap;
      best_cost = dp[cap];
    }
  }
  out->used_decomposition = true;
  if (final_t < 0) {
    out->feasible = false;
    out->optimal = true;
    return true;
  }

  // Backtrack: recompute DP forward is complex; instead replay using
  // stored choices.
  out->values.assign(n, 0);
  int64_t t = final_t;
  for (size_t oi = order.size(); oi-- > 0;) {
    const CompTable& table = tables[order[oi]];
    const int32_t c = choice[oi][t];
    RAIN_CHECK(c >= 0) << "DP backtrack inconsistency";
    const ContributionEntry& e = table.by_contrib.at(c);
    const ComponentChoice& pick =
        e.reservoir[rng != nullptr && e.reservoir.size() > 1
                        ? rng->UniformInt(e.reservoir.size())
                        : 0];
    for (size_t i = 0; i < table.vars.size(); ++i) {
      out->values[table.vars[i]] = pick.assignment[i];
    }
    if (coupling.sense == ConstraintSense::kGe && t == cap) {
      // Saturation: contribution may exceed the step; recompute exactly.
      int64_t contrib = 0;
      for (size_t i = 0; i < table.vars.size(); ++i) {
        if (pick.assignment[i]) contrib += std::llround(coupling_coef[table.vars[i]]);
      }
      t = std::max<int64_t>(0, t - contrib);
    } else {
      t -= c;
    }
  }
  out->objective = problem.ObjectiveValue(out->values);
  out->feasible = true;
  out->optimal = true;
  return true;
}

// ---------------------------------------------------------------------------
// Multi-coupling decomposition: remove a SET of coupling constraints (e.g.
// two overlapping complaint cardinalities), enumerate the resulting
// independent components, group exchangeable components, and DP over the
// joint contribution grid. Fixing every coupling's slack at once lets the
// exact component method apply where the single-coupling path cannot.
// ---------------------------------------------------------------------------

// One feasible component assignment class: its contribution to each
// coupling plus the minimum cost achieving it (reservoir for tie-breaks).
struct MultiOption {
  std::vector<int64_t> contrib;
  double min_cost = std::numeric_limits<double>::infinity();
  std::vector<ComponentChoice> reservoir;
  size_t min_cost_count = 0;
};

struct MultiComp {
  std::vector<int> vars;
  // Options sorted by contribution vector (canonical order, so identical
  // option tables group together across components).
  std::vector<MultiOption> options;
};

bool TryDecompositionMulti(const IlpProblem& problem, const std::vector<int>& ks,
                           const IlpSolveOptions& options, Rng* rng,
                           IlpSolution* out) {
  const size_t nc = problem.num_constraints();
  const size_t num_couplings = ks.size();
  std::vector<uint8_t> is_coupling(nc, 0);
  std::vector<int64_t> target(num_couplings);
  for (size_t j = 0; j < num_couplings; ++j) {
    const int k = ks[j];
    if (k < 0 || static_cast<size_t>(k) >= nc || is_coupling[k]) return false;
    const LinearConstraint& c = problem.constraints()[k];
    // Same conformance rules as the single-coupling path: kGe would need
    // saturating backtracking; coefficients must be small non-negative ints.
    if (c.sense == ConstraintSense::kGe) return false;
    if (!IsInt(c.rhs) || c.rhs < 0) return false;
    for (const LinearTerm& t : c.terms) {
      if (t.coef < 0 || !IsInt(t.coef)) return false;
    }
    is_coupling[k] = 1;
    target[j] = std::llround(c.rhs);
  }

  // Union-find over variables connected by non-coupling constraints.
  const size_t n = problem.num_vars();
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t ci = 0; ci < nc; ++ci) {
    if (is_coupling[ci]) continue;
    const auto& terms = problem.constraints()[ci].terms;
    for (size_t i = 1; i < terms.size(); ++i) {
      parent[find(terms[i - 1].var)] = find(terms[i].var);
    }
  }
  std::unordered_map<int, std::vector<int>> comp_vars;
  for (size_t v = 0; v < n; ++v) comp_vars[find(static_cast<int>(v))].push_back(v);
  std::unordered_map<int, std::vector<int>> comp_cons;
  for (size_t ci = 0; ci < nc; ++ci) {
    if (is_coupling[ci]) continue;
    const auto& terms = problem.constraints()[ci].terms;
    if (terms.empty()) continue;
    comp_cons[find(terms[0].var)].push_back(static_cast<int>(ci));
  }
  // coupling_coef[j][var]
  std::vector<std::vector<double>> coupling_coef(num_couplings,
                                                 std::vector<double>(n, 0.0));
  for (size_t j = 0; j < num_couplings; ++j) {
    for (const LinearTerm& t : problem.constraints()[ks[j]].terms) {
      coupling_coef[j][t.var] = t.coef;
    }
  }

  // Enumerate each component's feasible assignments into per-contribution
  // options.
  std::vector<MultiComp> comps;
  comps.reserve(comp_vars.size());
  for (auto& [root, vars] : comp_vars) {
    if (vars.size() > kMaxComponentVars) return false;
    MultiComp comp;
    comp.vars = vars;
    const auto& cons = comp_cons[root];
    const size_t m = vars.size();
    std::vector<uint8_t> assign(m);
    std::vector<int64_t> contrib(num_couplings);
    for (uint64_t mask = 0; mask < (1ULL << m); ++mask) {
      for (size_t i = 0; i < m; ++i) assign[i] = (mask >> i) & 1;
      bool ok = true;
      for (int ci : cons) {
        const LinearConstraint& c = problem.constraints()[ci];
        double act = 0.0;
        for (const LinearTerm& t : c.terms) {
          for (size_t i = 0; i < m; ++i) {
            if (comp.vars[i] == t.var) {
              if (assign[i]) act += t.coef;
              break;
            }
          }
        }
        if (c.sense == ConstraintSense::kLe && act > c.rhs + kEps) ok = false;
        if (c.sense == ConstraintSense::kGe && act < c.rhs - kEps) ok = false;
        if (c.sense == ConstraintSense::kEq && std::fabs(act - c.rhs) > kEps) ok = false;
        if (!ok) break;
      }
      if (!ok) continue;
      double cost = 0.0;
      std::fill(contrib.begin(), contrib.end(), 0);
      for (size_t i = 0; i < m; ++i) {
        if (!assign[i]) continue;
        cost += problem.objective_coef(comp.vars[i]);
        for (size_t j = 0; j < num_couplings; ++j) {
          const double cc = coupling_coef[j][comp.vars[i]];
          if (!IsInt(cc)) return false;
          contrib[j] += std::llround(cc);
        }
      }
      MultiOption* opt = nullptr;
      for (MultiOption& o : comp.options) {
        if (o.contrib == contrib) {
          opt = &o;
          break;
        }
      }
      if (opt == nullptr) {
        comp.options.emplace_back();
        opt = &comp.options.back();
        opt->contrib = contrib;
      }
      if (cost < opt->min_cost - kEps) {
        opt->min_cost = cost;
        opt->reservoir.clear();
        opt->min_cost_count = 0;
      }
      if (cost < opt->min_cost + kEps) {
        ++opt->min_cost_count;
        if (opt->reservoir.size() < kReservoirSize) {
          opt->reservoir.push_back(ComponentChoice{assign});
        } else if (rng != nullptr &&
                   rng->UniformInt(opt->min_cost_count) < kReservoirSize) {
          opt->reservoir[rng->UniformInt(kReservoirSize)] = ComponentChoice{assign};
        }
      }
    }
    if (comp.options.empty()) {
      out->feasible = false;
      out->optimal = true;
      out->used_decomposition = true;
      return true;
    }
    std::sort(comp.options.begin(), comp.options.end(),
              [](const MultiOption& a, const MultiOption& b) {
                return a.contrib < b.contrib;
              });
    comps.push_back(std::move(comp));
  }

  // Group exchangeable components: identical (contrib, min_cost) option
  // tables. Two-option groups transition by "j members take option 1";
  // anything richer stays a singleton stage looping over its options.
  struct Stage {
    std::vector<int> members;  // indices into comps
  };
  auto table_key = [](const MultiComp& c) {
    std::string key;
    for (const MultiOption& o : c.options) {
      for (int64_t v : o.contrib) {
        key.append(reinterpret_cast<const char*>(&v), sizeof(v));
      }
      key.append(reinterpret_cast<const char*>(&o.min_cost), sizeof(double));
    }
    return key;
  };
  std::unordered_map<std::string, size_t> stage_of;
  std::vector<Stage> stages;
  for (size_t i = 0; i < comps.size(); ++i) {
    if (comps[i].options.size() > 2) {
      stages.push_back(Stage{{static_cast<int>(i)}});
      continue;
    }
    const std::string key = table_key(comps[i]);
    auto it = stage_of.find(key);
    if (it == stage_of.end()) {
      stage_of.emplace(key, stages.size());
      stages.push_back(Stage{{static_cast<int>(i)}});
    } else {
      stages[it->second].members.push_back(static_cast<int>(i));
    }
  }

  // Joint contribution grid (mixed radix over per-coupling caps).
  std::vector<int64_t> cap(num_couplings);
  for (size_t j = 0; j < num_couplings; ++j) {
    int64_t max_total = 0;
    for (const MultiComp& c : comps) {
      int64_t best = 0;
      for (const MultiOption& o : c.options) best = std::max(best, o.contrib[j]);
      max_total += best;
    }
    cap[j] = problem.constraints()[ks[j]].sense == ConstraintSense::kLe
                 ? target[j]
                 : std::min(target[j], max_total);
    if (cap[j] < 0) return false;
  }
  int64_t width64 = 1;
  for (size_t j = 0; j < num_couplings; ++j) {
    width64 *= cap[j] + 1;
    if (width64 > 80'000'000 / static_cast<int64_t>(sizeof(float))) return false;
  }
  const size_t width = static_cast<size_t>(width64);
  if (stages.size() * width > 80'000'000 / sizeof(float)) return false;  // memory cap

  auto encode = [&](const std::vector<int64_t>& t) {
    size_t cell = 0;
    for (size_t j = num_couplings; j-- > 0;) {
      cell = cell * static_cast<size_t>(cap[j] + 1) + static_cast<size_t>(t[j]);
    }
    return cell;
  };
  auto decode = [&](size_t cell, std::vector<int64_t>* t) {
    for (size_t j = 0; j < num_couplings; ++j) {
      const size_t radix = static_cast<size_t>(cap[j] + 1);
      (*t)[j] = static_cast<int64_t>(cell % radix);
      cell /= radix;
    }
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(width, kInf);
  std::vector<double> next(width, kInf);
  // choice[s][cell]: for a grouped stage, how many members took option 1;
  // for a singleton multi-option stage, the option index.
  std::vector<std::vector<int32_t>> choice(stages.size(),
                                           std::vector<int32_t>(width, -1));
  std::vector<size_t> stage_order(stages.size());
  std::iota(stage_order.begin(), stage_order.end(), size_t{0});
  if (options.randomize && rng != nullptr) rng->Shuffle(&stage_order);

  dp[0] = 0.0;
  std::vector<int64_t> t_coord(num_couplings), nt_coord(num_couplings);
  for (size_t oi = 0; oi < stage_order.size(); ++oi) {
    const Stage& stage = stages[stage_order[oi]];
    const MultiComp& proto = comps[stage.members[0]];
    const size_t g = stage.members.size();
    std::fill(next.begin(), next.end(), kInf);
    auto& ch = choice[oi];
    const bool grouped = proto.options.size() <= 2;
    for (size_t cell = 0; cell < width; ++cell) {
      if (dp[cell] == kInf) continue;
      decode(cell, &t_coord);
      if (grouped) {
        // (g - j) members take option 0, j take option 1.
        const MultiOption& o0 = proto.options[0];
        const MultiOption* o1 = proto.options.size() > 1 ? &proto.options[1] : nullptr;
        const size_t jmax = o1 != nullptr ? g : 0;
        for (size_t j = 0; j <= jmax; ++j) {
          bool fits = true;
          for (size_t d = 0; d < num_couplings; ++d) {
            nt_coord[d] = t_coord[d] +
                          static_cast<int64_t>(g - j) * o0.contrib[d] +
                          (o1 != nullptr ? static_cast<int64_t>(j) * o1->contrib[d]
                                         : 0);
            if (nt_coord[d] > cap[d]) {
              fits = false;
              break;
            }
          }
          if (!fits) continue;
          const size_t nt = encode(nt_coord);
          const double cost = dp[cell] + static_cast<double>(g - j) * o0.min_cost +
                              (o1 != nullptr ? static_cast<double>(j) * o1->min_cost
                                             : 0.0);
          if (cost < next[nt] - kEps ||
              (cost < next[nt] + kEps && options.randomize && rng != nullptr &&
               rng->Bernoulli(0.5))) {
            next[nt] = std::min(next[nt], cost);
            ch[nt] = static_cast<int32_t>(j);
          }
        }
      } else {
        for (size_t o = 0; o < proto.options.size(); ++o) {
          const MultiOption& opt = proto.options[o];
          bool fits = true;
          for (size_t d = 0; d < num_couplings; ++d) {
            nt_coord[d] = t_coord[d] + opt.contrib[d];
            if (nt_coord[d] > cap[d]) {
              fits = false;
              break;
            }
          }
          if (!fits) continue;
          const size_t nt = encode(nt_coord);
          const double cost = dp[cell] + opt.min_cost;
          if (cost < next[nt] - kEps ||
              (cost < next[nt] + kEps && options.randomize && rng != nullptr &&
               rng->Bernoulli(0.5))) {
            next[nt] = std::min(next[nt], cost);
            ch[nt] = static_cast<int32_t>(o);
          }
        }
      }
    }
    dp.swap(next);
  }

  // Pick the best admissible final cell (kEq coordinates pinned to their
  // targets; kLe coordinates free).
  int64_t final_cell = -1;
  double best_cost = kInf;
  for (size_t cell = 0; cell < width; ++cell) {
    if (dp[cell] == kInf) continue;
    decode(cell, &t_coord);
    bool admissible = true;
    for (size_t j = 0; j < num_couplings; ++j) {
      if (problem.constraints()[ks[j]].sense == ConstraintSense::kEq &&
          t_coord[j] != target[j]) {
        admissible = false;
        break;
      }
    }
    if (!admissible) continue;
    if (dp[cell] < best_cost - kEps ||
        (dp[cell] < best_cost + kEps && options.randomize && rng != nullptr &&
         rng->Bernoulli(0.5))) {
      best_cost = std::min(best_cost, dp[cell]);
      final_cell = static_cast<int64_t>(cell);
    }
  }
  out->used_decomposition = true;
  if (final_cell < 0) {
    out->feasible = false;
    out->optimal = true;
    return true;
  }

  // Backtrack through the stages in reverse processing order.
  out->values.assign(n, 0);
  size_t cell = static_cast<size_t>(final_cell);
  for (size_t oi = stage_order.size(); oi-- > 0;) {
    const Stage& stage = stages[stage_order[oi]];
    const MultiComp& proto = comps[stage.members[0]];
    const int32_t pick = choice[oi][cell];
    RAIN_CHECK(pick >= 0) << "multi-coupling DP backtrack inconsistency";
    decode(cell, &t_coord);
    const size_t g = stage.members.size();
    // Which members take which option: randomized split for grouped
    // stages (preserves the solver's uniform-among-optima behaviour).
    std::vector<int> members = stage.members;
    std::vector<size_t> member_opt(g, 0);
    if (proto.options.size() <= 2) {
      if (rng != nullptr) {
        for (size_t i = g; i > 1; --i) {
          std::swap(members[i - 1], members[rng->UniformInt(i)]);
        }
      }
      for (size_t i = 0; i < static_cast<size_t>(pick); ++i) member_opt[i] = 1;
      for (size_t d = 0; d < num_couplings; ++d) {
        t_coord[d] -= static_cast<int64_t>(g - pick) * proto.options[0].contrib[d];
        if (proto.options.size() > 1) {
          t_coord[d] -= static_cast<int64_t>(pick) * proto.options[1].contrib[d];
        }
      }
    } else {
      member_opt[0] = static_cast<size_t>(pick);
      for (size_t d = 0; d < num_couplings; ++d) {
        t_coord[d] -= proto.options[static_cast<size_t>(pick)].contrib[d];
      }
    }
    for (size_t i = 0; i < g; ++i) {
      const MultiComp& comp = comps[members[i]];
      const MultiOption& opt = comp.options[member_opt[i]];
      RAIN_CHECK(!opt.reservoir.empty()) << "empty option reservoir";
      const ComponentChoice& concrete =
          opt.reservoir[rng != nullptr && opt.reservoir.size() > 1
                            ? rng->UniformInt(opt.reservoir.size())
                            : 0];
      for (size_t vi = 0; vi < comp.vars.size(); ++vi) {
        out->values[comp.vars[vi]] = concrete.assignment[vi];
      }
    }
    for (size_t d = 0; d < num_couplings; ++d) {
      RAIN_CHECK(t_coord[d] >= 0) << "multi-coupling DP negative predecessor";
    }
    cell = encode(t_coord);
  }
  out->objective = problem.ObjectiveValue(out->values);
  out->feasible = true;
  out->optimal = true;
  return true;
}

// ---------------------------------------------------------------------------
// Branch-and-bound with bounds propagation.
// ---------------------------------------------------------------------------

class BnbSolver {
 public:
  BnbSolver(const IlpProblem& problem, const IlpSolveOptions& options)
      : p_(problem), opt_(options), rng_(options.seed) {
    const size_t n = p_.num_vars();
    assign_.assign(n, -1);
    // Coefficient-carrying adjacency: TryAssign/UndoTo update constraint
    // activities in O(constraints touching var) without rescanning each
    // constraint's term list (which is O(terms) — ruinous for the
    // thousand-term complaint cardinality couplings).
    var_cons_.resize(n);
    for (size_t ci = 0; ci < p_.num_constraints(); ++ci) {
      for (const LinearTerm& t : p_.constraints()[ci].terms) {
        var_cons_[t.var].emplace_back(static_cast<int>(ci), t.coef);
      }
    }
    min_act_.assign(p_.num_constraints(), 0.0);
    max_act_.assign(p_.num_constraints(), 0.0);
    for (size_t ci = 0; ci < p_.num_constraints(); ++ci) {
      for (const LinearTerm& t : p_.constraints()[ci].terms) {
        min_act_[ci] += std::min(0.0, t.coef);
        max_act_[ci] += std::max(0.0, t.coef);
      }
    }
    lb_ = 0.0;
    for (size_t v = 0; v < n; ++v) lb_ += std::min(0.0, p_.objective_coef(v));
    branch_order_.resize(n);
    std::iota(branch_order_.begin(), branch_order_.end(), 0);
    if (opt_.randomize) rng_.Shuffle(&branch_order_);
    pos_in_order_.resize(n);
    for (size_t i = 0; i < n; ++i) pos_in_order_[branch_order_[i]] = i;
  }

  IlpSolution Solve() {
    IlpSolution sol;
    Timer timer;
    // Warm start: seed the incumbent from a feasible candidate so bound
    // pruning is active from the first node and a budget exhaust can still
    // return a usable solution.
    if (opt_.warm_start.size() == p_.num_vars() &&
        p_.IsFeasible(opt_.warm_start)) {
      sol.feasible = true;
      sol.values = opt_.warm_start;
      sol.objective = p_.ObjectiveValue(opt_.warm_start);
      sol.warm_start_used = true;
    }
    std::vector<int> trail;
    if (!Propagate(&trail)) {
      sol.optimal = true;  // infeasible, proven
      return sol;
    }
    // Iterative DFS.
    struct Frame {
      int var;
      int next_value;       // 0,1 index into values[]
      uint8_t values[2];    // branching value order
      size_t trail_start;
    };
    std::vector<Frame> stack;
    const size_t root_trail = trail.size();

    auto push_frame = [&]() -> bool {
      // All assigned? Record solution.
      const int v = PickBranchVar();
      if (v < 0) {
        RecordSolution(&sol);
        return false;
      }
      Frame f;
      f.var = v;
      f.next_value = 0;
      const double c = p_.objective_coef(v);
      uint8_t first = c > 0 ? 0 : (c < 0 ? 1 : (opt_.randomize && rng_.Bernoulli(0.5)
                                                    ? 1
                                                    : 0));
      f.values[0] = first;
      f.values[1] = 1 - first;
      f.trail_start = trail.size();
      stack.push_back(f);
      return true;
    };

    push_frame();
    while (!stack.empty()) {
      if (++sol.nodes_explored % 1024 == 0 &&
          (timer.ElapsedSeconds() > opt_.time_limit_s ||
           sol.nodes_explored > opt_.max_nodes)) {
        sol.timed_out = true;
        break;
      }
      Frame& f = stack.back();
      // Undo to this frame's baseline before trying the next value.
      UndoTo(f.trail_start, &trail);
      if (f.next_value >= 2) {
        stack.pop_back();
        continue;
      }
      const uint8_t val = f.values[f.next_value++];
      bool ok = TryAssign(f.var, val, &trail);
      // Cheap bound check before the (costlier) propagation pass: lb_ is
      // maintained incrementally by TryAssign.
      if (ok && sol.feasible && lb_ >= sol.objective - kEps) ok = false;
      if (ok) ok = Propagate(&trail);
      if (ok && sol.feasible && lb_ >= sol.objective - kEps) ok = false;  // bound
      if (!ok) continue;
      if (!push_frame()) {
        // Found a (complete) solution; keep searching for better ones.
        continue;
      }
    }
    UndoTo(root_trail, &trail);
    if (!sol.timed_out) sol.optimal = true;
    return sol;
  }

 private:
  void RecordSolution(IlpSolution* sol) {
    const double obj = lb_;  // all vars assigned -> lb_ is exact objective
    if (!sol->feasible || obj < sol->objective - kEps) {
      sol->feasible = true;
      sol->objective = obj;
      sol->values.resize(p_.num_vars());
      for (size_t v = 0; v < p_.num_vars(); ++v) sol->values[v] = assign_[v] == 1;
    }
  }

  int PickBranchVar() {
    // Static (optionally shuffled) order, skipping assigned vars. The
    // cursor is rewound on backtracking (see UndoTo), so the scan stays
    // amortized O(1) per node.
    while (order_cursor_ < branch_order_.size() &&
           assign_[branch_order_[order_cursor_]] != -1) {
      ++order_cursor_;
    }
    if (order_cursor_ < branch_order_.size()) return branch_order_[order_cursor_];
    return -1;
  }

  bool TryAssign(int var, uint8_t val, std::vector<int>* trail) {
    if (assign_[var] != -1) return assign_[var] == val;
    assign_[var] = static_cast<int8_t>(val);
    trail->push_back(var);
    const double c_obj = p_.objective_coef(var);
    lb_ += c_obj * val - std::min(0.0, c_obj);
    for (const auto& [ci, coef] : var_cons_[var]) {
      min_act_[ci] += coef * val - std::min(0.0, coef);
      max_act_[ci] += coef * val - std::max(0.0, coef);
      queue_.push_back(ci);
    }
    return true;
  }

  void UndoTo(size_t mark, std::vector<int>* trail) {
    while (trail->size() > mark) {
      const int var = trail->back();
      trail->pop_back();
      const uint8_t val = static_cast<uint8_t>(assign_[var]);
      assign_[var] = -1;
      const double c_obj = p_.objective_coef(var);
      lb_ -= c_obj * val - std::min(0.0, c_obj);
      for (const auto& [ci, coef] : var_cons_[var]) {
        min_act_[ci] -= coef * val - std::min(0.0, coef);
        max_act_[ci] -= coef * val - std::max(0.0, coef);
      }
      // Rewind the branch cursor so this var is branchable again.
      order_cursor_ = std::min(order_cursor_, pos_in_order_[var]);
    }
    queue_.clear();
  }

  bool Propagate(std::vector<int>* trail) {
    if (queue_.empty()) {
      for (size_t ci = 0; ci < p_.num_constraints(); ++ci) {
        queue_.push_back(static_cast<int>(ci));
      }
    }
    while (!queue_.empty()) {
      const int ci = queue_.back();
      queue_.pop_back();
      const LinearConstraint& c = p_.constraints()[ci];
      const bool need_le = c.sense != ConstraintSense::kGe;  // Le or Eq
      const bool need_ge = c.sense != ConstraintSense::kLe;  // Ge or Eq
      if (need_le && min_act_[ci] > c.rhs + kEps) return false;
      if (need_ge && max_act_[ci] < c.rhs - kEps) return false;
      for (const LinearTerm& t : c.terms) {
        if (assign_[t.var] != -1) continue;
        if (need_le) {
          if (t.coef > 0 && min_act_[ci] + t.coef > c.rhs + kEps) {
            if (!TryAssign(t.var, 0, trail)) return false;
            continue;
          }
          if (t.coef < 0 && min_act_[ci] - t.coef > c.rhs + kEps) {
            if (!TryAssign(t.var, 1, trail)) return false;
            continue;
          }
        }
        if (need_ge && assign_[t.var] == -1) {
          if (t.coef > 0 && max_act_[ci] - t.coef < c.rhs - kEps) {
            if (!TryAssign(t.var, 1, trail)) return false;
            continue;
          }
          if (t.coef < 0 && max_act_[ci] + t.coef < c.rhs - kEps) {
            if (!TryAssign(t.var, 0, trail)) return false;
            continue;
          }
        }
      }
    }
    return true;
  }

  const IlpProblem& p_;
  const IlpSolveOptions& opt_;
  Rng rng_;
  std::vector<int8_t> assign_;
  std::vector<std::vector<std::pair<int, double>>> var_cons_;
  std::vector<double> min_act_, max_act_;
  std::vector<int> queue_;
  std::vector<int> branch_order_;
  std::vector<size_t> pos_in_order_;
  size_t order_cursor_ = 0;
  double lb_ = 0.0;
};

}  // namespace

Result<IlpSolution> SolveIlp(const IlpProblem& raw_problem,
                             const IlpSolveOptions& options) {
  if (raw_problem.num_vars() == 0) {
    IlpSolution sol;
    sol.optimal = true;
    // Constant constraints may still be violated.
    sol.feasible = raw_problem.IsFeasible({});
    if (!sol.feasible) return Status::ResourceExhausted("ILP infeasible (constant)");
    return sol;
  }

  // Activity bookkeeping and the decomposition coupling-coefficient map
  // assume each variable appears once per constraint.
  const IlpProblem problem = raw_problem.Canonicalized();

  Rng rng(options.seed);
  IlpSolution sol;

  // Resolve the coupling set: the list supersedes the legacy single index.
  std::vector<int> couplings;
  for (const int k : options.coupling_constraints) {
    if (k >= 0 && static_cast<size_t>(k) < problem.num_constraints() &&
        std::find(couplings.begin(), couplings.end(), k) == couplings.end()) {
      couplings.push_back(k);
    }
  }
  if (couplings.empty() && options.coupling_constraint >= 0) {
    couplings.push_back(options.coupling_constraint);
  }

  bool decomposed = false;
  if (couplings.size() == 1) {
    decomposed = TryDecomposition(problem, couplings[0], options, &rng, &sol);
  } else if (couplings.size() >= 2) {
    decomposed = TryDecompositionMulti(problem, couplings, options, &rng, &sol);
    // If the joint DP is inapplicable (grid too wide, non-conforming
    // coupling), a single removed coupling may still disconnect the rest.
    for (size_t i = 0; !decomposed && i < couplings.size(); ++i) {
      decomposed = TryDecomposition(problem, couplings[i], options, &rng, &sol);
    }
  }
  if (decomposed) {
    if (!sol.feasible) {
      return Status::ResourceExhausted("ILP infeasible (decomposition proof)");
    }
    return sol;
  }

  BnbSolver bnb(problem, options);
  sol = bnb.Solve();
  if (!sol.feasible) {
    return Status::ResourceExhausted(
        sol.timed_out ? "ILP budget exhausted with no feasible solution"
                      : "ILP infeasible");
  }
  return sol;
}

}  // namespace rain
