#include "ilp/solver.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "common/timer.h"

namespace rain {
namespace {

constexpr double kEps = 1e-6;

bool IsInt(double v) { return std::fabs(v - std::llround(v)) < kEps; }

// ---------------------------------------------------------------------------
// Decomposition fast path: remove one coupling constraint, enumerate the
// resulting independent components, and run a DP over their contributions.
// ---------------------------------------------------------------------------

struct ComponentChoice {
  // One feasible assignment of the component's variables.
  std::vector<uint8_t> assignment;
};

struct ContributionEntry {
  double min_cost = std::numeric_limits<double>::infinity();
  // Reservoir of min-cost assignments for randomized tie-breaking.
  std::vector<ComponentChoice> reservoir;
  size_t min_cost_count = 0;
};

constexpr size_t kMaxComponentVars = 14;
constexpr size_t kReservoirSize = 4;

bool TryDecomposition(const IlpProblem& problem, const IlpSolveOptions& options,
                      Rng* rng, IlpSolution* out) {
  const int k = options.coupling_constraint;
  if (k < 0 || static_cast<size_t>(k) >= problem.num_constraints()) return false;
  const LinearConstraint& coupling = problem.constraints()[k];
  // kGe couplings would need saturating-DP backtracking that can land on
  // unreachable predecessor cells; Rain only emits kEq/kLe couplings.
  if (coupling.sense == ConstraintSense::kGe) return false;
  if (!IsInt(coupling.rhs) || coupling.rhs < 0) return false;
  for (const LinearTerm& t : coupling.terms) {
    if (t.coef < 0 || !IsInt(t.coef)) return false;
  }
  const int64_t target = std::llround(coupling.rhs);

  // Union-find over variables connected by non-coupling constraints.
  const size_t n = problem.num_vars();
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t ci = 0; ci < problem.num_constraints(); ++ci) {
    if (static_cast<int>(ci) == k) continue;
    const auto& terms = problem.constraints()[ci].terms;
    for (size_t i = 1; i < terms.size(); ++i) {
      parent[find(terms[i - 1].var)] = find(terms[i].var);
    }
  }
  std::unordered_map<int, std::vector<int>> comp_vars;
  for (size_t v = 0; v < n; ++v) comp_vars[find(static_cast<int>(v))].push_back(v);

  // Constraints per component (each non-coupling constraint lives fully
  // inside one component by construction).
  std::unordered_map<int, std::vector<int>> comp_cons;
  for (size_t ci = 0; ci < problem.num_constraints(); ++ci) {
    if (static_cast<int>(ci) == k) continue;
    const auto& terms = problem.constraints()[ci].terms;
    if (terms.empty()) continue;
    comp_cons[find(terms[0].var)].push_back(static_cast<int>(ci));
  }
  std::vector<double> coupling_coef(n, 0.0);
  for (const LinearTerm& t : coupling.terms) coupling_coef[t.var] = t.coef;

  // Enumerate each component.
  struct CompTable {
    std::vector<int> vars;
    // contribution value -> entry
    std::unordered_map<int64_t, ContributionEntry> by_contrib;
  };
  std::vector<CompTable> tables;
  int64_t max_total_contrib = 0;
  for (auto& [root, vars] : comp_vars) {
    if (vars.size() > kMaxComponentVars) return false;
    CompTable table;
    table.vars = vars;
    const auto& cons = comp_cons[root];
    const size_t m = vars.size();
    std::vector<uint8_t> assign(m);
    for (uint64_t mask = 0; mask < (1ULL << m); ++mask) {
      for (size_t i = 0; i < m; ++i) assign[i] = (mask >> i) & 1;
      // Check component constraints.
      bool ok = true;
      for (int ci : cons) {
        const LinearConstraint& c = problem.constraints()[ci];
        double act = 0.0;
        for (const LinearTerm& t : c.terms) {
          // Position of t.var within vars (components are small; linear scan).
          for (size_t i = 0; i < m; ++i) {
            if (table.vars[i] == t.var) {
              if (assign[i]) act += t.coef;
              break;
            }
          }
        }
        if (c.sense == ConstraintSense::kLe && act > c.rhs + kEps) ok = false;
        if (c.sense == ConstraintSense::kGe && act < c.rhs - kEps) ok = false;
        if (c.sense == ConstraintSense::kEq && std::fabs(act - c.rhs) > kEps) ok = false;
        if (!ok) break;
      }
      if (!ok) continue;
      double cost = 0.0;
      double contrib = 0.0;
      for (size_t i = 0; i < m; ++i) {
        if (!assign[i]) continue;
        cost += problem.objective_coef(table.vars[i]);
        contrib += coupling_coef[table.vars[i]];
      }
      if (!IsInt(contrib)) return false;
      const int64_t ic = std::llround(contrib);
      ContributionEntry& entry = table.by_contrib[ic];
      if (cost < entry.min_cost - kEps) {
        entry.min_cost = cost;
        entry.reservoir.clear();
        entry.min_cost_count = 0;
      }
      if (cost < entry.min_cost + kEps) {
        ++entry.min_cost_count;
        if (entry.reservoir.size() < kReservoirSize) {
          entry.reservoir.push_back(ComponentChoice{assign});
        } else if (rng != nullptr &&
                   rng->UniformInt(entry.min_cost_count) < kReservoirSize) {
          entry.reservoir[rng->UniformInt(kReservoirSize)] = ComponentChoice{assign};
        }
      }
    }
    if (table.by_contrib.empty()) {
      // Component infeasible on its own: whole problem infeasible.
      out->feasible = false;
      out->optimal = true;
      out->used_decomposition = true;
      return true;
    }
    int64_t best_c = 0;
    for (const auto& [c, e] : table.by_contrib) best_c = std::max(best_c, c);
    max_total_contrib += best_c;
    tables.push_back(std::move(table));
  }

  // DP over contribution totals in [0, cap].
  const int64_t cap = coupling.sense == ConstraintSense::kLe
                          ? target
                          : std::min<int64_t>(target, max_total_contrib);
  if (cap < 0) return false;
  const size_t width = static_cast<size_t>(cap) + 1;
  if (tables.size() * width > 80'000'000 / sizeof(float)) return false;  // memory cap

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[t]: min cost to reach contribution total t after processing i comps.
  std::vector<double> dp(width, kInf);
  std::vector<double> next(width, kInf);
  // choice[i][t]: contribution chosen by component i to reach t.
  std::vector<std::vector<int32_t>> choice(tables.size(),
                                           std::vector<int32_t>(width, -1));
  // Randomize component order to randomize tie-breaking.
  std::vector<size_t> order(tables.size());
  std::iota(order.begin(), order.end(), size_t{0});
  if (options.randomize && rng != nullptr) rng->Shuffle(&order);

  dp[0] = 0.0;
  for (size_t oi = 0; oi < order.size(); ++oi) {
    const CompTable& table = tables[order[oi]];
    std::fill(next.begin(), next.end(), kInf);
    auto& ch = choice[oi];
    // Iterate contributions in randomized order so equal-cost predecessor
    // choices are broken randomly.
    std::vector<std::pair<int64_t, const ContributionEntry*>> entries;
    entries.reserve(table.by_contrib.size());
    for (const auto& [c, e] : table.by_contrib) entries.emplace_back(c, &e);
    if (options.randomize && rng != nullptr) {
      for (size_t i = entries.size(); i > 1; --i) {
        std::swap(entries[i - 1], entries[rng->UniformInt(i)]);
      }
    }
    for (size_t t = 0; t < width; ++t) {
      if (dp[t] == kInf) continue;
      for (const auto& [c, e] : entries) {
        // Saturating for >= (any surplus above cap counts as cap).
        int64_t nt = static_cast<int64_t>(t) + c;
        if (coupling.sense == ConstraintSense::kGe) nt = std::min(nt, cap);
        if (nt >= static_cast<int64_t>(width)) continue;
        const double cost = dp[t] + e->min_cost;
        if (cost < next[nt] - kEps ||
            (cost < next[nt] + kEps && options.randomize && rng != nullptr &&
             rng->Bernoulli(0.5))) {
          if (cost < next[nt] + kEps) {
            next[nt] = std::min(next[nt], cost);
            ch[nt] = static_cast<int32_t>(c);
          }
        }
      }
    }
    dp.swap(next);
  }

  // Final target cell.
  int64_t final_t = -1;
  double best_cost = kInf;
  if (coupling.sense == ConstraintSense::kEq) {
    if (target < static_cast<int64_t>(width) && dp[target] < kInf) {
      final_t = target;
      best_cost = dp[target];
    }
  } else if (coupling.sense == ConstraintSense::kLe) {
    for (int64_t t = 0; t <= cap; ++t) {
      if (dp[t] < best_cost - kEps) {
        best_cost = dp[t];
        final_t = t;
      }
    }
  } else {  // kGe: saturated at cap
    if (dp[cap] < kInf) {
      final_t = cap;
      best_cost = dp[cap];
    }
  }
  out->used_decomposition = true;
  if (final_t < 0) {
    out->feasible = false;
    out->optimal = true;
    return true;
  }

  // Backtrack: recompute DP forward is complex; instead replay using
  // stored choices.
  out->values.assign(n, 0);
  int64_t t = final_t;
  for (size_t oi = order.size(); oi-- > 0;) {
    const CompTable& table = tables[order[oi]];
    const int32_t c = choice[oi][t];
    RAIN_CHECK(c >= 0) << "DP backtrack inconsistency";
    const ContributionEntry& e = table.by_contrib.at(c);
    const ComponentChoice& pick =
        e.reservoir[rng != nullptr && e.reservoir.size() > 1
                        ? rng->UniformInt(e.reservoir.size())
                        : 0];
    for (size_t i = 0; i < table.vars.size(); ++i) {
      out->values[table.vars[i]] = pick.assignment[i];
    }
    if (coupling.sense == ConstraintSense::kGe && t == cap) {
      // Saturation: contribution may exceed the step; recompute exactly.
      int64_t contrib = 0;
      for (size_t i = 0; i < table.vars.size(); ++i) {
        if (pick.assignment[i]) contrib += std::llround(coupling_coef[table.vars[i]]);
      }
      t = std::max<int64_t>(0, t - contrib);
    } else {
      t -= c;
    }
  }
  out->objective = problem.ObjectiveValue(out->values);
  out->feasible = true;
  out->optimal = true;
  return true;
}

// ---------------------------------------------------------------------------
// Branch-and-bound with bounds propagation.
// ---------------------------------------------------------------------------

class BnbSolver {
 public:
  BnbSolver(const IlpProblem& problem, const IlpSolveOptions& options)
      : p_(problem), opt_(options), rng_(options.seed) {
    const size_t n = p_.num_vars();
    assign_.assign(n, -1);
    var_cons_.resize(n);
    for (size_t ci = 0; ci < p_.num_constraints(); ++ci) {
      for (const LinearTerm& t : p_.constraints()[ci].terms) {
        var_cons_[t.var].push_back(static_cast<int>(ci));
      }
    }
    min_act_.assign(p_.num_constraints(), 0.0);
    max_act_.assign(p_.num_constraints(), 0.0);
    for (size_t ci = 0; ci < p_.num_constraints(); ++ci) {
      for (const LinearTerm& t : p_.constraints()[ci].terms) {
        min_act_[ci] += std::min(0.0, t.coef);
        max_act_[ci] += std::max(0.0, t.coef);
      }
    }
    lb_ = 0.0;
    for (size_t v = 0; v < n; ++v) lb_ += std::min(0.0, p_.objective_coef(v));
    branch_order_.resize(n);
    std::iota(branch_order_.begin(), branch_order_.end(), 0);
    if (opt_.randomize) rng_.Shuffle(&branch_order_);
    pos_in_order_.resize(n);
    for (size_t i = 0; i < n; ++i) pos_in_order_[branch_order_[i]] = i;
  }

  IlpSolution Solve() {
    IlpSolution sol;
    Timer timer;
    std::vector<int> trail;
    if (!Propagate(&trail)) {
      sol.optimal = true;  // infeasible, proven
      return sol;
    }
    // Iterative DFS.
    struct Frame {
      int var;
      int next_value;       // 0,1 index into values[]
      uint8_t values[2];    // branching value order
      size_t trail_start;
    };
    std::vector<Frame> stack;
    const size_t root_trail = trail.size();

    auto push_frame = [&]() -> bool {
      // All assigned? Record solution.
      const int v = PickBranchVar();
      if (v < 0) {
        RecordSolution(&sol);
        return false;
      }
      Frame f;
      f.var = v;
      f.next_value = 0;
      const double c = p_.objective_coef(v);
      uint8_t first = c > 0 ? 0 : (c < 0 ? 1 : (opt_.randomize && rng_.Bernoulli(0.5)
                                                    ? 1
                                                    : 0));
      f.values[0] = first;
      f.values[1] = 1 - first;
      f.trail_start = trail.size();
      stack.push_back(f);
      return true;
    };

    push_frame();
    while (!stack.empty()) {
      if (++sol.nodes_explored % 1024 == 0 &&
          (timer.ElapsedSeconds() > opt_.time_limit_s ||
           sol.nodes_explored > opt_.max_nodes)) {
        sol.timed_out = true;
        break;
      }
      Frame& f = stack.back();
      // Undo to this frame's baseline before trying the next value.
      UndoTo(f.trail_start, &trail);
      if (f.next_value >= 2) {
        stack.pop_back();
        continue;
      }
      const uint8_t val = f.values[f.next_value++];
      bool ok = TryAssign(f.var, val, &trail);
      if (ok) ok = Propagate(&trail);
      if (ok && sol.feasible && lb_ >= sol.objective - kEps) ok = false;  // bound
      if (!ok) continue;
      if (!push_frame()) {
        // Found a (complete) solution; keep searching for better ones.
        continue;
      }
    }
    UndoTo(root_trail, &trail);
    if (!sol.timed_out) sol.optimal = true;
    return sol;
  }

 private:
  void RecordSolution(IlpSolution* sol) {
    const double obj = lb_;  // all vars assigned -> lb_ is exact objective
    if (!sol->feasible || obj < sol->objective - kEps) {
      sol->feasible = true;
      sol->objective = obj;
      sol->values.resize(p_.num_vars());
      for (size_t v = 0; v < p_.num_vars(); ++v) sol->values[v] = assign_[v] == 1;
    }
  }

  int PickBranchVar() {
    // Static (optionally shuffled) order, skipping assigned vars. The
    // cursor is rewound on backtracking (see UndoTo), so the scan stays
    // amortized O(1) per node.
    while (order_cursor_ < branch_order_.size() &&
           assign_[branch_order_[order_cursor_]] != -1) {
      ++order_cursor_;
    }
    if (order_cursor_ < branch_order_.size()) return branch_order_[order_cursor_];
    return -1;
  }

  bool TryAssign(int var, uint8_t val, std::vector<int>* trail) {
    if (assign_[var] != -1) return assign_[var] == val;
    assign_[var] = static_cast<int8_t>(val);
    trail->push_back(var);
    const double c_obj = p_.objective_coef(var);
    lb_ += c_obj * val - std::min(0.0, c_obj);
    for (int ci : var_cons_[var]) {
      double coef = 0.0;
      for (const LinearTerm& t : p_.constraints()[ci].terms) {
        if (t.var == var) {
          coef = t.coef;
          break;
        }
      }
      min_act_[ci] += coef * val - std::min(0.0, coef);
      max_act_[ci] += coef * val - std::max(0.0, coef);
      queue_.push_back(ci);
    }
    return true;
  }

  void UndoTo(size_t mark, std::vector<int>* trail) {
    while (trail->size() > mark) {
      const int var = trail->back();
      trail->pop_back();
      const uint8_t val = static_cast<uint8_t>(assign_[var]);
      assign_[var] = -1;
      const double c_obj = p_.objective_coef(var);
      lb_ -= c_obj * val - std::min(0.0, c_obj);
      for (int ci : var_cons_[var]) {
        double coef = 0.0;
        for (const LinearTerm& t : p_.constraints()[ci].terms) {
          if (t.var == var) {
            coef = t.coef;
            break;
          }
        }
        min_act_[ci] -= coef * val - std::min(0.0, coef);
        max_act_[ci] -= coef * val - std::max(0.0, coef);
      }
      // Rewind the branch cursor so this var is branchable again.
      order_cursor_ = std::min(order_cursor_, pos_in_order_[var]);
    }
    queue_.clear();
  }

  bool Propagate(std::vector<int>* trail) {
    if (queue_.empty()) {
      for (size_t ci = 0; ci < p_.num_constraints(); ++ci) {
        queue_.push_back(static_cast<int>(ci));
      }
    }
    while (!queue_.empty()) {
      const int ci = queue_.back();
      queue_.pop_back();
      const LinearConstraint& c = p_.constraints()[ci];
      const bool need_le = c.sense != ConstraintSense::kGe;  // Le or Eq
      const bool need_ge = c.sense != ConstraintSense::kLe;  // Ge or Eq
      if (need_le && min_act_[ci] > c.rhs + kEps) return false;
      if (need_ge && max_act_[ci] < c.rhs - kEps) return false;
      for (const LinearTerm& t : c.terms) {
        if (assign_[t.var] != -1) continue;
        if (need_le) {
          if (t.coef > 0 && min_act_[ci] + t.coef > c.rhs + kEps) {
            if (!TryAssign(t.var, 0, trail)) return false;
            continue;
          }
          if (t.coef < 0 && min_act_[ci] - t.coef > c.rhs + kEps) {
            if (!TryAssign(t.var, 1, trail)) return false;
            continue;
          }
        }
        if (need_ge && assign_[t.var] == -1) {
          if (t.coef > 0 && max_act_[ci] - t.coef < c.rhs - kEps) {
            if (!TryAssign(t.var, 1, trail)) return false;
            continue;
          }
          if (t.coef < 0 && max_act_[ci] + t.coef < c.rhs - kEps) {
            if (!TryAssign(t.var, 0, trail)) return false;
            continue;
          }
        }
      }
    }
    return true;
  }

  const IlpProblem& p_;
  const IlpSolveOptions& opt_;
  Rng rng_;
  std::vector<int8_t> assign_;
  std::vector<std::vector<int>> var_cons_;
  std::vector<double> min_act_, max_act_;
  std::vector<int> queue_;
  std::vector<int> branch_order_;
  std::vector<size_t> pos_in_order_;
  size_t order_cursor_ = 0;
  double lb_ = 0.0;
};

}  // namespace

Result<IlpSolution> SolveIlp(const IlpProblem& raw_problem,
                             const IlpSolveOptions& options) {
  if (raw_problem.num_vars() == 0) {
    IlpSolution sol;
    sol.optimal = true;
    // Constant constraints may still be violated.
    sol.feasible = raw_problem.IsFeasible({});
    if (!sol.feasible) return Status::ResourceExhausted("ILP infeasible (constant)");
    return sol;
  }

  // Activity bookkeeping and the decomposition coupling-coefficient map
  // assume each variable appears once per constraint.
  const IlpProblem problem = raw_problem.Canonicalized();

  Rng rng(options.seed);
  IlpSolution sol;
  if (TryDecomposition(problem, options, &rng, &sol)) {
    if (!sol.feasible) {
      return Status::ResourceExhausted("ILP infeasible (decomposition proof)");
    }
    return sol;
  }

  BnbSolver bnb(problem, options);
  sol = bnb.Solve();
  if (!sol.feasible) {
    return Status::ResourceExhausted(
        sol.timed_out ? "ILP budget exhausted with no feasible solution"
                      : "ILP infeasible");
  }
  return sol;
}

}  // namespace rain
