#ifndef RAIN_CORE_COMPLAINT_H_
#define RAIN_CORE_COMPLAINT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/poly.h"
#include "relational/executor.h"
#include "relational/plan.h"

namespace rain {

/// Comparison in a value complaint (Definition 3.1: op in {=, <=, >=}).
enum class ComplaintOp : uint8_t { kEq, kLe, kGe };

/// \brief A declarative complaint over a query's output (Definition 3.1).
///
/// Complaints are declarative so the debugger can re-bind them to fresh
/// provenance every train-rank-fix iteration:
///  * Value complaint: "aggregate cell `agg_name` of the group identified
///    by `group_keys` should be (op) target".
///  * Tuple complaint: "every output row whose `tuple_key_cols` equal
///    `tuple_key_vals` should not exist".
///  * Point complaint: "the model should predict `point_class` on row
///    `point_row` of queried table `point_table`" (an intermediate-result
///    complaint on the prediction view itself; Sections 6.4/6.6 use these).
struct ComplaintSpec {
  enum class Kind : uint8_t { kValue, kTuple, kPoint };
  Kind kind = Kind::kValue;

  // kValue
  std::string agg_name;
  std::vector<Value> group_keys;  // empty for global aggregates
  ComplaintOp op = ComplaintOp::kEq;
  double target = 0.0;

  // kTuple
  std::vector<std::string> tuple_key_cols;
  std::vector<Value> tuple_key_vals;

  // kPoint
  std::string point_table;
  int64_t point_row = -1;
  int point_class = -1;

  static ComplaintSpec ValueEq(std::string agg_name, double target,
                               std::vector<Value> group_keys = {});
  static ComplaintSpec ValueGe(std::string agg_name, double target,
                               std::vector<Value> group_keys = {});
  static ComplaintSpec ValueLe(std::string agg_name, double target,
                               std::vector<Value> group_keys = {});
  static ComplaintSpec TupleNotExists(std::vector<std::string> key_cols,
                                      std::vector<Value> key_vals);
  static ComplaintSpec Point(std::string table, int64_t row, int correct_class);
};

/// A complaint bound to one execution's provenance: "poly (op) target".
/// `violated` records whether the complaint currently fails under the
/// concrete (argmax) semantics — used for resolution reporting.
struct BoundComplaint {
  PolyId poly = kInvalidPoly;
  ComplaintOp op = ComplaintOp::kEq;
  double target = 0.0;
  double current = 0.0;  // concrete value of the complained quantity
  bool violated = true;

  /// Whether rankers should optimize this complaint. Inequality
  /// complaints that already hold are ignored (Section 5.3.2); equality
  /// complaints always rank, because the *relaxed* value (a sum of
  /// probabilities) keeps carrying gradient even when the concrete
  /// (argmax) value matches the target.
  bool ShouldRank() const { return op == ComplaintOp::kEq || violated; }
};

/// Whether `current (op) target` fails under the binder's tolerance
/// (1e-9). This is the exact predicate the binder uses to set
/// `BoundComplaint::violated`; the session's cached-bind refresh applies
/// it when re-deriving `violated` from a re-evaluated `current`.
bool ComplaintViolated(ComplaintOp op, double current, double target);

/// Binds `spec` against the debug-mode execution `result` of its query.
/// Tuple specs may bind to several output rows (one BoundComplaint each);
/// specs whose rows/groups are absent bind to nothing (already resolved).
/// Point specs ignore `result` and bind directly against the arena.
Result<std::vector<BoundComplaint>> BindComplaint(
    const ComplaintSpec& spec, const ExecResult& result, PolyArena* arena,
    const PredictionStore& predictions, const Catalog& catalog);

}  // namespace rain

#endif  // RAIN_CORE_COMPLAINT_H_
