#ifndef RAIN_CORE_RANKER_H_
#define RAIN_CORE_RANKER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/complaint.h"
#include "ilp/solver.h"
#include "influence/influence.h"
#include "ml/model.h"
#include "relational/catalog.h"
#include "relax/relaxed_poly.h"

namespace rain {

/// Everything a ranking strategy may consult for one train-rank-fix
/// iteration. Pointers are borrowed and valid for the duration of the
/// Rank call.
struct RankContext {
  const Model* model = nullptr;
  const Dataset* train = nullptr;
  const Catalog* catalog = nullptr;
  PolyArena* arena = nullptr;
  const PredictionStore* predictions = nullptr;
  /// Complaints bound against the current iteration's provenance;
  /// rankers must ignore entries with violated == false (Section 5.3.2).
  const std::vector<BoundComplaint>* complaints = nullptr;

  InfluenceOptions influence;
  IlpSolveOptions ilp;
  /// Holistic relaxation rule (ablation knob; default = paper's rule).
  RelaxMode relax_mode = RelaxMode::kIndependent;
  /// TwoStep q encoding: marked mispredictions only (paper default) or
  /// every queried row the ILP touched (ablation knob, Section 5.2).
  bool twostep_encode_all = false;
  /// Worker count for the encode phase: the per-complaint reverse sweeps
  /// of `RelaxedPoly::GradientBatch` and the chunked q-gradient
  /// accumulation of `AccumulateProbaGradients`. Plumbed from
  /// `DebugSessionBuilder::parallelism` by `DebugSession::RankPhase`; 1
  /// (the default) is the exact sequential path, and every value obeys the
  /// deterministic-chunk contract (bitwise-stable results).
  int parallelism = 1;
  /// Optional cross-iteration encode cache owned by the caller (the
  /// session). When non-null, rankers that build a `RelaxedPoly` batch
  /// may reuse the cached batch when the root set, relax mode, and arena
  /// generation all match — the reuse is bitwise-neutral because the
  /// batch is a pure function of (arena, roots, mode) and the arena is
  /// append-only between generations (see `EncodeCache`).
  struct EncodeCache {
    uint64_t arena_generation = 0;
    RelaxMode mode = RelaxMode::kIndependent;
    std::vector<PolyId> roots;
    std::shared_ptr<const RelaxedPoly> relax;
    /// Cumulative count of Rank calls that reused `relax` (stats).
    size_t reuses = 0;
  };
  EncodeCache* encode_cache = nullptr;
  /// Arena generation stamp maintained by the caller: bumped whenever
  /// the arena grows (a splice / rebind). Only consulted when
  /// `encode_cache` is set.
  uint64_t arena_generation = 0;
};

/// Ranking result: one removal score per training record (higher = delete
/// first; inactive records must score 0) plus the phase timings reported
/// in Figures 5/12.
struct RankOutput {
  std::vector<double> scores;
  double encode_seconds = 0.0;  // building grad q / solving the ILP
  double rank_seconds = 0.0;    // Hessian-inverse products + scoring
  std::string note;             // e.g. "ilp timed out; using incumbent"
  /// The CG solution s = (H + damping I)^-1 q_grad behind `scores`, when
  /// the ranker ran an influence solve (empty otherwise). Cached by the
  /// session so `ApplyUpdate` can patch scores of delta-touched rows
  /// without a fresh solve (src/incremental/update.h).
  Vec cg_solution;
};

/// \brief Strategy interface for ranking training records (Section 6.1.1).
class Ranker {
 public:
  virtual ~Ranker() = default;
  virtual std::string name() const = 0;
  virtual Result<RankOutput> Rank(const RankContext& ctx) = 0;
};

/// Baseline: rank by per-example training loss, descending (Loss).
std::unique_ptr<Ranker> MakeLossRanker();
/// Baseline: rank by influence of a record on its own loss [35] (InfLoss).
std::unique_ptr<Ranker> MakeInfLossRanker();
/// TwoStep: ILP-repair the prediction view, then influence (Section 5.2).
std::unique_ptr<Ranker> MakeTwoStepRanker();
/// Holistic: relaxed provenance polynomial influence (Section 5.3).
std::unique_ptr<Ranker> MakeHolisticRanker();
/// The Section 5.1 optimizer: picks TwoStep when the complaint repair is
/// unambiguous (all point complaints), Holistic otherwise, per iteration.
std::unique_ptr<Ranker> MakeAutoRanker();

/// Factory by name ("loss", "infloss", "twostep", "holistic", "auto").
Result<std::unique_ptr<Ranker>> MakeRanker(const std::string& name);

/// \brief Shared helper: accumulates grad_theta of
///   sum_{(table,row)} sum_c weights[(table,row)][c] * p_c(x_row; theta)
/// by backpropagating each row's class-weight seed through the model
/// (the chain rule of Equation 4's grad q term).
///
/// All (table,row) keys are validated against the catalog up front, so a
/// failure never leaves `grad` partially accumulated and error messages
/// name the offending table id / row for multi-query attribution.
///
/// \param weights per-(table,row) class-weight seeds, in map (= sorted
///        key) order.
/// \param grad accumulated into, not overwritten; sized num_params.
/// \param parallelism worker count. <= 1 accumulates in place exactly as
///        the sequential code always has; > 1 computes per-row partial
///        gradients concurrently and reduces them in row order. Because
///        every model's `AddProbaGradient` touches a gradient element at
///        most once per row, the reduction reproduces the sequential bit
///        pattern for every worker count — the encode phase feeds the
///        deletion ranking, which must not depend on the knob.
Status AccumulateProbaGradients(
    const Catalog& catalog, const Model& model,
    const std::map<std::pair<int32_t, int64_t>, Vec>& weights, Vec* grad,
    int parallelism = 1);

/// \brief The Section 5.1 optimizer heuristic: TwoStep is preferred only
/// when the complaint set pins down a unique prediction repair (all
/// violated complaints are point complaints); otherwise Holistic.
enum class Approach : uint8_t { kTwoStep, kHolistic };
Approach SelectApproach(const PolyArena& arena,
                        const std::vector<BoundComplaint>& complaints);

}  // namespace rain

#endif  // RAIN_CORE_RANKER_H_
