#include "core/debugger.h"

#include "common/logging.h"
#include "core/session.h"

namespace rain {

Debugger::Debugger(Query2Pipeline* pipeline, std::unique_ptr<Ranker> ranker,
                   DebugConfig config)
    : pipeline_(pipeline), ranker_(std::move(ranker)), config_(config) {
  RAIN_CHECK(pipeline_ != nullptr && ranker_ != nullptr);
  // Preserve the historical construction-time side effect; the same value
  // is (re)installed by DebugSessionBuilder::Build() inside Run.
  pipeline_->set_parallelism(config_.parallelism);
}

Result<DebugReport> Debugger::Run(const std::vector<QueryComplaints>& workload) {
  // Thin compatibility shim: one fresh session per call, sharing this
  // debugger's ranker (which may span several Run calls).
  RAIN_ASSIGN_OR_RETURN(std::unique_ptr<DebugSession> session,
                        DebugSessionBuilder(pipeline_)
                            .config(config_)
                            .shared_ranker(ranker_.get())
                            .workload(workload)
                            .Build());
  return session->RunToCompletion();
}

}  // namespace rain
