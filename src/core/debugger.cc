#include "core/debugger.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/timer.h"

namespace rain {

Debugger::Debugger(Query2Pipeline* pipeline, std::unique_ptr<Ranker> ranker,
                   DebugConfig config)
    : pipeline_(pipeline), ranker_(std::move(ranker)), config_(config) {
  RAIN_CHECK(pipeline_ != nullptr && ranker_ != nullptr);
  // The debugger's knob is authoritative for the whole train-rank-fix loop:
  // always installed on the pipeline (so parallelism = 1 restores the exact
  // sequential path even on a previously parallelized pipeline), and
  // inherited by the influence layer unless that was tuned explicitly.
  if (config_.influence.parallelism <= 1) {
    config_.influence.parallelism = config_.parallelism;
  }
  pipeline_->set_parallelism(config_.parallelism);
}

Result<DebugReport> Debugger::Run(const std::vector<QueryComplaints>& workload) {
  DebugReport report;
  Dataset* train = pipeline_->train_data();

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    if (static_cast<int>(report.deletions.size()) >= config_.max_deletions) break;
    IterationStats stats;

    // (0) (Re)train on surviving records, warm start.
    Timer train_timer;
    RAIN_RETURN_NOT_OK(pipeline_->Train().status());
    stats.train_seconds = train_timer.ElapsedSeconds();

    // (1-2) Re-run every complained-about query in debug mode, sharing
    // one arena so multi-query complaints combine.
    Timer query_timer;
    pipeline_->ResetDebugState();
    std::vector<BoundComplaint> bound;
    for (const QueryComplaints& qc : workload) {
      ExecResult result;  // empty placeholder for point-only workloads
      if (qc.query != nullptr) {
        RAIN_ASSIGN_OR_RETURN(result, pipeline_->Execute(qc.query, /*debug=*/true));
      }
      for (const ComplaintSpec& spec : qc.complaints) {
        RAIN_ASSIGN_OR_RETURN(
            std::vector<BoundComplaint> bc,
            BindComplaint(spec, result, pipeline_->arena(), pipeline_->predictions(),
                          pipeline_->catalog()));
        bound.insert(bound.end(), bc.begin(), bc.end());
      }
    }
    stats.query_seconds = query_timer.ElapsedSeconds();
    for (const BoundComplaint& c : bound) stats.violated_complaints += c.violated;

    if (stats.violated_complaints == 0) {
      report.complaints_resolved = true;
      if (config_.stop_when_resolved) {
        stats.deletions_after = report.deletions.size();
        report.iterations.push_back(stats);
        break;
      }
    } else {
      report.complaints_resolved = false;
    }

    // (4-10) Rank and delete the top-k active records.
    RankContext ctx;
    ctx.model = pipeline_->model();
    ctx.train = train;
    ctx.catalog = &pipeline_->catalog();
    ctx.arena = pipeline_->arena();
    ctx.predictions = &pipeline_->predictions();
    ctx.complaints = &bound;
    ctx.influence = config_.influence;
    ctx.ilp = config_.ilp;
    ctx.relax_mode = config_.relax_mode;
    ctx.twostep_encode_all = config_.twostep_encode_all;
    RAIN_ASSIGN_OR_RETURN(RankOutput ranked, ranker_->Rank(ctx));
    stats.encode_seconds = ranked.encode_seconds;
    stats.rank_seconds = ranked.rank_seconds;
    stats.note = ranked.note;

    std::vector<size_t> order(train->size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return ranked.scores[a] > ranked.scores[b];
    });
    int removed = 0;
    const int budget =
        std::min(config_.top_k_per_iter,
                 config_.max_deletions - static_cast<int>(report.deletions.size()));
    for (size_t idx : order) {
      if (removed >= budget) break;
      if (!train->active(idx)) continue;
      train->Deactivate(idx);
      report.deletions.push_back(idx);
      ++removed;
    }
    stats.deletions_after = report.deletions.size();
    report.iterations.push_back(stats);
    if (removed == 0) break;  // nothing left to delete
  }
  return report;
}

}  // namespace rain
