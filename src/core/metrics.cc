#include "core/metrics.h"

#include <unordered_set>

namespace rain {

std::vector<double> RecallCurve(const std::vector<size_t>& deletions,
                                const std::vector<size_t>& corrupted) {
  const size_t k_max = corrupted.size();
  std::vector<double> curve(k_max, 0.0);
  if (k_max == 0) return curve;
  const std::unordered_set<size_t> truth(corrupted.begin(), corrupted.end());
  size_t hits = 0;
  for (size_t k = 0; k < k_max; ++k) {
    if (k < deletions.size() && truth.count(deletions[k]) != 0) ++hits;
    curve[k] = static_cast<double>(hits) / static_cast<double>(k_max);
  }
  return curve;
}

double Auccr(const std::vector<double>& recall_curve) {
  if (recall_curve.empty()) return 0.0;
  double sum = 0.0;
  for (double r : recall_curve) sum += r;
  return 2.0 * sum / static_cast<double>(recall_curve.size());
}

double Auccr(const std::vector<size_t>& deletions,
             const std::vector<size_t>& corrupted) {
  return Auccr(RecallCurve(deletions, corrupted));
}

}  // namespace rain
