#include "core/pipeline.h"

#include <algorithm>

#include "common/logging.h"
#include "sql/planner.h"

namespace rain {

Query2Pipeline::Query2Pipeline(Catalog catalog, std::unique_ptr<Model> model,
                               Dataset train, TrainConfig train_config)
    : catalog_(std::move(catalog)),
      model_(std::move(model)),
      train_(std::move(train)),
      train_config_(train_config),
      arena_(std::make_unique<PolyArena>()) {
  RAIN_CHECK(model_ != nullptr);
}

Result<TrainReport> Query2Pipeline::Train(const CancellationToken* cancel) {
  TrainConfig config = train_config_;
  config.cancel = cancel;
  RAIN_ASSIGN_OR_RETURN(TrainReport report, TrainModel(model_.get(), train_, config));
  // Partial parameters are never published to the prediction views; the
  // interrupted session records the iteration as cut short instead.
  if (!report.interrupted) RefreshPredictions();
  return report;
}

void Query2Pipeline::AdoptModelParams(const Vec& params) {
  model_->set_params(params);
  RefreshPredictions();
}

void Query2Pipeline::RefreshPredictions() {
  for (size_t t = 0; t < catalog_.num_tables(); ++t) {
    const Catalog::Entry* entry = catalog_.FindById(static_cast<int32_t>(t));
    if (entry == nullptr || !entry->features.has_value()) continue;
    predictions_.SetPredictions(entry->table_id,
                                model_->PredictProbaMatrix(*entry->features));
  }
}

void Query2Pipeline::ResetDebugState() { arena_ = std::make_unique<PolyArena>(); }

int Query2Pipeline::set_parallelism(int parallelism) {
  if (parallelism < 1) {
    RAIN_LOG(Warning) << "Query2Pipeline::set_parallelism(" << parallelism
                      << "): worker counts must be >= 1; clamping to 1";
    parallelism = 1;
  }
  train_config_.parallelism = parallelism;
  model_->set_parallelism(parallelism);
  return parallelism;
}

int Query2Pipeline::set_num_shards(int num_shards) {
  if (num_shards <= 0) {
    sharded_.reset();
    train_config_.shards = nullptr;
    return 0;
  }
  if (static_cast<size_t>(num_shards) > train_.size()) {
    RAIN_LOG(Warning) << "Query2Pipeline::set_num_shards(" << num_shards
                      << "): more shards than training rows; clamping to "
                      << train_.size();
  }
  const size_t clamped =
      std::min(static_cast<size_t>(num_shards), std::max<size_t>(train_.size(), 1));
  // Reinstalling the same shard count keeps the existing view (the plan
  // is a pure function of (n, count)), so pointers handed to an earlier
  // session remain valid when a new session is built at the same count.
  if (sharded_ == nullptr || sharded_->num_shards() != clamped) {
    sharded_ = std::make_unique<ShardedDataset>(
        &train_, ShardPlan::Uniform(train_.size(), static_cast<int>(clamped)));
  }
  train_config_.shards = sharded_.get();
  return static_cast<int>(sharded_->num_shards());
}

Result<ExecResult> Query2Pipeline::Execute(const PlanPtr& plan, bool debug) {
  return ExecuteInto(plan, arena_.get(), debug);
}

Result<ExecResult> Query2Pipeline::ExecuteInto(const PlanPtr& plan, PolyArena* arena,
                                               bool debug) const {
  Executor executor(&catalog_, &predictions_, arena);
  ExecOptions options;
  options.debug_mode = debug;
  return executor.Run(plan, options);
}

Result<ExecResult> Query2Pipeline::ExecuteSql(const std::string& query, bool debug) {
  RAIN_ASSIGN_OR_RETURN(PlanPtr plan, sql::PlanQuery(query, catalog_));
  return Execute(plan, debug);
}

}  // namespace rain
