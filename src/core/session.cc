#include "core/session.h"

#include <algorithm>
#include <condition_variable>
#include <functional>
#include <numeric>

#include "relational/plan.h"

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace rain {

const char* DebugPhaseName(DebugPhase phase) {
  switch (phase) {
    case DebugPhase::kTrain:
      return "train";
    case DebugPhase::kBind:
      return "bind";
    case DebugPhase::kRank:
      return "rank";
    case DebugPhase::kFix:
      return "fix";
  }
  return "?";
}

const char* StepStatusName(StepStatus status) {
  switch (status) {
    case StepStatus::kIterated:
      return "iterated";
    case StepStatus::kResolved:
      return "resolved";
    case StepStatus::kNoProgress:
      return "no-progress";
    case StepStatus::kBudgetExhausted:
      return "budget-exhausted";
    case StepStatus::kIterationLimit:
      return "iteration-limit";
    case StepStatus::kCancelled:
      return "cancelled";
    case StepStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case StepStatus::kAlreadyFinished:
      return "already-finished";
  }
  return "?";
}

StopCondition StopAfterIterations(int n) {
  // Baselined on first evaluation, so the same condition object pauses
  // again immediately if re-used on a resumed run.
  return [n, baseline = std::optional<size_t>()](const DebugReport& report) mutable {
    if (!baseline.has_value()) baseline = report.iterations.size();
    return report.iterations.size() >= *baseline + static_cast<size_t>(n);
  };
}

StopCondition StopAfterDeletions(size_t n) {
  return [n](const DebugReport& report) { return report.deletions.size() >= n; };
}

namespace {

void AppendNote(IterationStats* stats, const std::string& note) {
  if (!stats->note.empty()) stats->note += "; ";
  stats->note += note;
}

}  // namespace

/// What a speculative train task hands back through its Future.
struct SpecOutcome {
  /// Training finished normally (no error, no interruption).
  bool train_ok = false;
  /// Training reached the gradient tolerance (feeds the session's exact
  /// train-skip memo on commit).
  bool converged = false;
  /// The task's own wall time — what the train phase costs when the
  /// speculation commits (already overlapped with the rank phase).
  double train_seconds = 0.0;
};

/// In-flight speculative train: a `Model::Clone()` trained on a private
/// snapshot of the training set (predicted deletions applied) as a task
/// on the session's `TaskGraph`. Entirely self-contained — the task
/// touches nothing but this block, which it keeps alive via shared_ptr —
/// so the session may abandon it and even be destroyed while it drains.
/// Completion and the outcome flow through the task's Future; only the
/// started handoff (the fix stage's overlap guarantee) needs bespoke
/// signalling.
struct DebugSession::Speculation {
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  /// Resolves when the task finished (Wait() drains the pool, so waiting
  /// cannot deadlock even on a single-worker pool).
  Future<SpecOutcome> done;
  std::unique_ptr<Model> model;
  std::unique_ptr<Dataset> snapshot;
  /// The fix deletions this speculation assumed, in deletion order.
  std::vector<size_t> predicted;
  /// report_.deletions.size() at launch; validation compares the suffix
  /// appended since against `predicted`.
  size_t deletions_at_launch = 0;
  /// Child of the session token: cancelling it aborts just this task.
  CancellationToken token;
  TrainConfig config;
  /// Sharded session: the live shard plan rebound over the private
  /// snapshot, so the speculative train takes the same shard-exact path
  /// (and therefore produces the same bits) as the synchronous retrain.
  std::unique_ptr<ShardedDataset> sharded;
};

const std::array<DebugSession::StageSpec, 4>& DebugSession::Stages() {
  static const std::array<StageSpec, 4> kStages = {{
      {DebugPhase::kTrain, "train_set(active), model(warm-start params)",
       "model(theta), prediction_views"},
      {DebugPhase::kBind, "workload, prediction_views, catalog",
       "arena(provenance), bound_complaints, violated_count"},
      {DebugPhase::kRank, "bound_complaints, model(theta), train_set(active)",
       "scores, encode/rank timings"},
      {DebugPhase::kFix, "scores, train_set(active)",
       "deletions, train_set(active minus top-k)"},
  }};
  return kStages;
}

DebugSession::DebugSession(Query2Pipeline* pipeline,
                           std::unique_ptr<Ranker> owned_ranker, Ranker* ranker,
                           DebugConfig config,
                           std::vector<QueryComplaints> workload,
                           ExecutionOptions exec)
    : pipeline_(pipeline),
      owned_ranker_(std::move(owned_ranker)),
      ranker_(ranker),
      config_(config),
      workload_(std::move(workload)),
      observers_(std::move(exec.observers)),
      deadline_(exec.deadline) {
  RAIN_CHECK(pipeline_ != nullptr && ranker_ != nullptr);
  // Re-root the token below the parent FIRST, so the session deadline
  // armed next lands on the session's own state — a hosted session's
  // deadline must never leak to siblings sharing the service root token.
  if (exec.parent_cancel != nullptr) {
    cancel_token_ = exec.parent_cancel->MakeChild();
  }
  // The session token reaches into every long phase loop: the trainer's
  // L-BFGS iterations (through Query2Pipeline::Train) and the influence /
  // CG kernels (through the options the rank context copies).
  if (deadline_.has_value()) cancel_token_.set_deadline(*deadline_);
  if (config_.influence.cancel == nullptr) {
    config_.influence.cancel = &cancel_token_;
  }
  // The cold-start point the full-recompute path of ApplyUpdate restores;
  // captured before any warm retrain mutates the model.
  initial_params_ = pipeline_->model()->params();
  bind_cache_.resize(workload_.size());
}

DebugSession::~DebugSession() {
  cancel_token_.Cancel();
  if (driver_thread_.joinable()) driver_thread_.join();
  AbandonSpeculation();
  // graph_'s destructor waits for any still-queued task bodies.
}

void DebugSession::set_deadline(std::chrono::steady_clock::time_point deadline) {
  CheckNotInObserverCallback("DebugSession::set_deadline");
  RAIN_CHECK(!async_in_flight()) << "DebugSession::set_deadline during an async drive";
  deadline_ = deadline;
  cancel_token_.set_deadline(deadline);
  if (finished_ && finish_status_ == StepStatus::kDeadlineExceeded &&
      std::chrono::steady_clock::now() < deadline) {
    finished_ = false;
    finish_status_ = StepStatus::kAlreadyFinished;
  }
}

void DebugSession::clear_deadline() {
  CheckNotInObserverCallback("DebugSession::clear_deadline");
  RAIN_CHECK(!async_in_flight())
      << "DebugSession::clear_deadline during an async drive";
  deadline_.reset();
  cancel_token_.clear_deadline();
  if (finished_ && finish_status_ == StepStatus::kDeadlineExceeded) {
    finished_ = false;
    finish_status_ = StepStatus::kAlreadyFinished;
  }
}

size_t DebugSession::AddComplaints(QueryComplaints batch) {
  CheckNotInObserverCallback("DebugSession::AddComplaints");
  RAIN_CHECK(!async_in_flight())
      << "DebugSession::AddComplaints during an async drive";
  DeltaLogEntry log;
  log.batch.add_queries.push_back(batch);
  workload_.push_back(std::move(batch));
  // Delta path: only the new entry is stale — the next bind phase
  // executes and splices just this one, everything else refreshes from
  // the cache.
  bind_cache_.emplace_back();
  log.incremental = bind_cache_primed_;
  delta_log_.Append(std::move(log));
  // New complaints may be violated: a resolved session has work again.
  if (finished_ && finish_status_ == StepStatus::kResolved) {
    finished_ = false;
    finish_status_ = StepStatus::kAlreadyFinished;
  }
  return workload_.size() - 1;
}

bool DebugSession::RemoveQuery(size_t index) {
  CheckNotInObserverCallback("DebugSession::RemoveQuery");
  RAIN_CHECK(!async_in_flight()) << "DebugSession::RemoveQuery during an async drive";
  if (index >= workload_.size()) return false;
  // Tombstone: the entry's arena nodes stay in place (orphaned roots are
  // unreachable from every surviving complaint, so they are score-neutral
  // — dense gradients give them exact 0.0 and the weight accumulation
  // skips zeros); the arena compaction threshold reclaims them
  // eventually.
  if (index < bind_cache_.size()) {
    bind_cache_stats_.tombstoned_complaints += bind_cache_[index].bound.size();
    bind_cache_.erase(bind_cache_.begin() + static_cast<ptrdiff_t>(index));
  }
  workload_.erase(workload_.begin() + static_cast<ptrdiff_t>(index));
  DeltaLogEntry log;
  log.batch.remove_queries.push_back(index);
  log.incremental = bind_cache_primed_;
  delta_log_.Append(std::move(log));
  if (finished_ && finish_status_ == StepStatus::kResolved) {
    finished_ = false;
    finish_status_ = StepStatus::kAlreadyFinished;
  }
  return true;
}

Result<UpdateReport> DebugSession::ApplyUpdate(const UpdateBatch& batch,
                                               const UpdateOptions& options) {
  CheckNotInObserverCallback("DebugSession::ApplyUpdate");
  RAIN_CHECK(!async_in_flight())
      << "DebugSession::ApplyUpdate during an async drive";
  Timer timer;
  Dataset* train = pipeline_->train_data();
  const size_t n = train->size();
  const int num_classes = train->num_classes();

  // Validate everything before mutating anything: a failed update leaves
  // the session exactly as it was.
  for (const LabelEdit& e : batch.label_edits) {
    if (e.row >= n) {
      return Status::InvalidArgument("ApplyUpdate: label edit row " +
                                     std::to_string(e.row) + " out of range (" +
                                     std::to_string(n) + " training rows)");
    }
    if (e.new_label < 0 || e.new_label >= num_classes) {
      return Status::InvalidArgument(
          "ApplyUpdate: label " + std::to_string(e.new_label) +
          " out of range (" + std::to_string(num_classes) + " classes)");
    }
  }
  for (size_t r : batch.deactivate_rows) {
    if (r >= n) {
      return Status::InvalidArgument("ApplyUpdate: deactivate row " +
                                     std::to_string(r) + " out of range");
    }
  }
  for (size_t r : batch.reactivate_rows) {
    if (r >= n) {
      return Status::InvalidArgument("ApplyUpdate: reactivate row " +
                                     std::to_string(r) + " out of range");
    }
  }
  // Removals are indices into the CURRENT workload (before this batch's
  // add_queries), applied descending so each index means what the caller
  // saw.
  std::vector<size_t> removals = batch.remove_queries;
  std::sort(removals.begin(), removals.end(), std::greater<size_t>());
  removals.erase(std::unique(removals.begin(), removals.end()), removals.end());
  for (size_t idx : removals) {
    if (idx >= workload_.size()) {
      return Status::InvalidArgument("ApplyUpdate: remove_queries index " +
                                     std::to_string(idx) + " out of range (" +
                                     std::to_string(workload_.size()) +
                                     " workload entries)");
    }
  }

  UpdateReport rep;
  rep.touched_rows = batch.touched_rows();
  switch (options.policy) {
    case UpdatePolicy::kIncremental:
      rep.incremental = true;
      break;
    case UpdatePolicy::kFull:
      rep.incremental = false;
      break;
    case UpdatePolicy::kAuto:
      rep.incremental = static_cast<double>(rep.touched_rows) <=
                        options.incremental_threshold *
                            static_cast<double>(std::max<size_t>(n, 1));
      break;
  }

  // A speculation trained against pre-update data can never be valid, and
  // the snapshot cache's mask-only replay cannot express label edits or
  // out-of-band activation flips: drop both.
  AbandonSpeculation();
  snapshot_cache_.reset();
  snapshot_deletions_applied_ = 0;

  // --- Data deltas. Label edits detach the COW storage on first write
  // (sibling tenants sharing it are unaffected); activation flips route
  // through the shard view when one is installed so per-shard active
  // counts stay in sync.
  ShardedDataset* sharded = pipeline_->mutable_shards();
  for (const LabelEdit& e : batch.label_edits) train->set_label(e.row, e.new_label);
  for (size_t r : batch.deactivate_rows) {
    if (sharded != nullptr) {
      sharded->Deactivate(r);
    } else {
      train->Deactivate(r);
    }
  }
  for (size_t r : batch.reactivate_rows) {
    if (sharded != nullptr) {
      sharded->Reactivate(r);
    } else {
      train->Reactivate(r);
    }
  }
  if (batch.touches_data()) train_memo_valid_ = false;

  // --- Workload deltas. Data deltas never invalidate bind-cache entries:
  // queries read catalog tables, not the training set, and the provenance
  // structure is prediction-independent — only the polynomials' values
  // change, which the next bind phase refreshes for free.
  for (size_t idx : removals) {
    if (idx < bind_cache_.size()) {
      rep.tombstoned_complaints += bind_cache_[idx].bound.size();
      bind_cache_.erase(bind_cache_.begin() + static_cast<ptrdiff_t>(idx));
    }
    workload_.erase(workload_.begin() + static_cast<ptrdiff_t>(idx));
  }
  bind_cache_stats_.tombstoned_complaints += rep.tombstoned_complaints;
  for (const QueryComplaints& qc : batch.add_queries) {
    workload_.push_back(qc);
    bind_cache_.emplace_back();
  }

  if (!rep.incremental) {
    // Full recompute: drop every cache, reset the provenance arena, and
    // restore the cold-start parameters so the next turn retrains from
    // scratch — the exact from-scratch baseline.
    InvalidateBindCache();
    pipeline_->ResetDebugState();
    ++arena_generation_;
    pipeline_->AdoptModelParams(initial_params_);
    train_memo_valid_ = false;
    last_cg_solution_.clear();
    last_scores_.clear();
    rep.note = "full recompute: caches dropped, cold parameters restored";
  } else if (options.preview_influence && !last_cg_solution_.empty() &&
             last_scores_.size() == train->size() && rep.touched_rows > 0) {
    // Rank-structured influence patch: recompute score(i) for touched
    // rows only against the cached CG solution — the exact arithmetic a
    // full rescore with that solution would produce for those rows. This
    // previews post-update scores (and sharpens the speculation
    // predictor's input); the next rank turn's fresh solve supersedes it.
    rep.patched_scores =
        PatchInfluenceScores(*pipeline_->model(), *train, last_cg_solution_,
                             batch.TouchedRows(), &last_scores_);
  }

  for (const BindCacheEntry& e : bind_cache_) {
    if (e.valid) {
      ++rep.entries_cached;
    } else {
      ++rep.entries_invalidated;
    }
  }

  if (finished_ && finish_status_ == StepStatus::kResolved && !batch.empty()) {
    finished_ = false;
    finish_status_ = StepStatus::kAlreadyFinished;
    rep.reopened = true;
  }

  rep.seconds = timer.ElapsedSeconds();
  DeltaLogEntry log;
  log.batch = batch;
  log.incremental = rep.incremental;
  log.touched_rows = rep.touched_rows;
  log.seconds = rep.seconds;
  delta_log_.Append(std::move(log));
  return rep;
}

namespace {

/// RAII tag marking the thread currently delivering observer callbacks,
/// so re-entering entry points can detect themselves (the enforcement
/// behind the DebugObserver re-entrancy contract).
class ObserverDispatchScope {
 public:
  explicit ObserverDispatchScope(std::atomic<std::thread::id>* slot) : slot_(slot) {
    slot_->store(std::this_thread::get_id(), std::memory_order_release);
  }
  ~ObserverDispatchScope() {
    slot_->store(std::thread::id{}, std::memory_order_release);
  }
  ObserverDispatchScope(const ObserverDispatchScope&) = delete;
  ObserverDispatchScope& operator=(const ObserverDispatchScope&) = delete;

 private:
  std::atomic<std::thread::id>* slot_;
};

}  // namespace

void DebugSession::CheckNotInObserverCallback(const char* entry) const {
  RAIN_CHECK(observer_thread_.load(std::memory_order_acquire) !=
             std::this_thread::get_id())
      << entry
      << ": re-entered from a DebugObserver callback; observers must not "
         "call back into the session (see the DebugObserver re-entrancy "
         "contract; Cancel() is the one sanctioned exception)";
}

void DebugSession::NotifyIterationStart(int iteration) {
  std::lock_guard<std::mutex> lock(observer_mu_);
  ObserverDispatchScope in_callback(&observer_thread_);
  for (DebugObserver* obs : observers_) obs->OnIterationStart(iteration, report_);
}

void DebugSession::NotifyPhaseComplete(int iteration, DebugPhase phase,
                                       double seconds) {
  std::lock_guard<std::mutex> lock(observer_mu_);
  ObserverDispatchScope in_callback(&observer_thread_);
  for (DebugObserver* obs : observers_) obs->OnPhaseComplete(iteration, phase, seconds);
}

void DebugSession::NotifyDeletion(int iteration, size_t record, double score) {
  std::lock_guard<std::mutex> lock(observer_mu_);
  ObserverDispatchScope in_callback(&observer_thread_);
  for (DebugObserver* obs : observers_) obs->OnDeletion(iteration, record, score);
}

void DebugSession::Finish(StepStatus status) {
  finished_ = true;
  finish_status_ = status;
  // A terminal session never trains again, so an in-flight speculation
  // can only waste cycles: stop it and take the snapshot back.
  AbandonSpeculation();
}

bool DebugSession::CheckInterrupted(DebugPhase last_phase, IterationStats* stats,
                                    StepResult* result) {
  StepStatus status;
  if (cancel_requested()) {
    status = StepStatus::kCancelled;
  } else if (DeadlinePassed()) {
    status = StepStatus::kDeadlineExceeded;
  } else {
    return false;
  }
  // Record the partially completed iteration so the report stays a
  // faithful account of the work actually done.
  AppendNote(stats, std::string(StepStatusName(status)) + " after " +
                        DebugPhaseName(last_phase) + " phase");
  stats->deletions_after = report_.deletions.size();
  report_.iterations.push_back(*stats);
  ++iterations_completed_;
  Finish(status);
  result->status = status;
  result->stats = *stats;
  return true;
}

// --------------------------------------------------------------- stages

Status DebugSession::TrainPhase(IterationStats* stats) {
  if (pending_spec_ != nullptr && TryCommitSpeculation(stats)) return Status::OK();
  if (train_memo_valid_) {
    // Exact skip: the parameters are already a converged optimum for the
    // current training data (nothing changed since the train that set the
    // memo). Re-running would be a no-op — L-BFGS re-entered at a
    // converged point returns the parameters untouched and the prediction
    // refresh recomputes the identical matrix — so skipping is
    // bitwise-neutral, not an approximation.
    stats->train_seconds = 0.0;
    return Status::OK();
  }
  Timer timer;
  RAIN_ASSIGN_OR_RETURN(TrainReport trained, pipeline_->Train(&cancel_token_));
  stats->train_seconds = timer.ElapsedSeconds();
  train_memo_valid_ = trained.converged && !trained.interrupted;
  if (trained.interrupted) {
    // The boundary check right after this phase turns the partial model
    // into a recorded partial iteration; the note pins down where.
    AppendNote(stats, "train stopped mid-optimization after " +
                          std::to_string(trained.iterations) +
                          " L-BFGS iterations");
  }
  return Status::OK();
}

Result<std::vector<std::vector<BoundComplaint>>> BindWorkloadEntries(
    Query2Pipeline* pipeline, const std::vector<QueryComplaints>& workload,
    int parallelism) {
  /// Per-query staging state: a private arena plus the complaints bound
  /// against it (their `poly` ids are staging-local until the splice).
  struct Staged {
    std::unique_ptr<PolyArena> arena;
    std::vector<BoundComplaint> bound;
    Status status = Status::OK();
  };
  std::vector<Staged> staged(workload.size());
  ParallelForEach(parallelism, workload.size(), [&](size_t i) {
    Staged& s = staged[i];
    s.arena = std::make_unique<PolyArena>();
    const QueryComplaints& qc = workload[i];
    ExecResult result;  // empty placeholder for point-only workloads
    if (qc.query != nullptr) {
      auto exec = pipeline->ExecuteInto(qc.query, s.arena.get(), /*debug=*/true);
      if (!exec.ok()) {
        s.status = exec.status();
        return;
      }
      result = std::move(*exec);
    }
    for (const ComplaintSpec& spec : qc.complaints) {
      auto bc = BindComplaint(spec, result, s.arena.get(), pipeline->predictions(),
                              pipeline->catalog());
      if (!bc.ok()) {
        s.status = bc.status();
        return;
      }
      s.bound.insert(s.bound.end(), bc->begin(), bc->end());
    }
  });

  // Surface the first error in workload order BEFORE touching the shared
  // arena, so a failed bind leaves the pipeline's debug state unchanged.
  for (const Staged& s : staged) RAIN_RETURN_NOT_OK(s.status);

  // Single ordered splice into the shared arena: workload order, never
  // completion order, so the bound entries and the arena are
  // bitwise-stable. The splice is append-only, which is what lets the
  // session's bind cache keep earlier entries' ids valid across delta
  // binds.
  std::vector<std::vector<BoundComplaint>> entries;
  entries.reserve(staged.size());
  PolyArena* arena = pipeline->arena();
  for (Staged& s : staged) {
    const PolyArena::SpliceMap map = arena->Splice(*s.arena);
    std::vector<BoundComplaint> bound;
    bound.reserve(s.bound.size());
    for (BoundComplaint c : s.bound) {
      if (c.poly != kInvalidPoly) c.poly = map.node_map[c.poly];
      bound.push_back(c);
    }
    entries.push_back(std::move(bound));
  }
  return entries;
}

Result<std::vector<BoundComplaint>> BindWorkload(
    Query2Pipeline* pipeline, const std::vector<QueryComplaints>& workload,
    int parallelism) {
  RAIN_ASSIGN_OR_RETURN(std::vector<std::vector<BoundComplaint>> entries,
                        BindWorkloadEntries(pipeline, workload, parallelism));
  std::vector<BoundComplaint> bound;
  for (std::vector<BoundComplaint>& e : entries) {
    bound.insert(bound.end(), e.begin(), e.end());
  }
  return bound;
}

namespace {

bool PlanHasSortOrLimit(const PlanPtr& plan) {
  if (plan == nullptr) return false;
  if (plan->kind == PlanKind::kSort || plan->kind == PlanKind::kLimit) return true;
  for (const PlanPtr& child : plan->children) {
    if (PlanHasSortOrLimit(child)) return true;
  }
  return false;
}

bool PlanIsModelDependent(const PlanPtr& plan) {
  if (plan == nullptr) return false;
  if (plan->predicate != nullptr && plan->predicate->IsModelDependent()) return true;
  for (const ExprPtr& e : plan->exprs) {
    if (e != nullptr && e->IsModelDependent()) return true;
  }
  for (const ExprPtr& e : plan->group_by) {
    if (e != nullptr && e->IsModelDependent()) return true;
  }
  for (const AggSpec& agg : plan->aggs) {
    if (agg.arg != nullptr && agg.arg->IsModelDependent()) return true;
  }
  for (const PlanPtr& child : plan->children) {
    if (PlanIsModelDependent(child)) return true;
  }
  return false;
}

/// The bind cache relies on the provenance STRUCTURE of a debug-mode
/// execution being a pure function of (tables, workload) — independent of
/// the model's predictions, which only flow into the polynomials'
/// *values*. That holds for the paper's SPJA query class (debug mode
/// keeps candidate rows behind model-dependent filters/joins and expands
/// model-dependent GROUP BY keys one candidate per class). The one way
/// predictions could reorder or drop output rows structurally is a Sort /
/// Limit wrapper over model-dependent results, so such plans are binned
/// as uncacheable and re-execute every iteration.
bool PlanStructureCacheable(const PlanPtr& plan) {
  return !(PlanHasSortOrLimit(plan) && PlanIsModelDependent(plan));
}

bool EntryBindable(const std::vector<BoundComplaint>& bound) {
  for (const BoundComplaint& c : bound) {
    if (c.poly == kInvalidPoly) return false;  // nothing to re-evaluate
  }
  return true;
}

/// Arena growth factor (relative to the node count right after the last
/// full bind) past which the bind phase compacts: tombstoned provenance
/// from removed queries and repeated uncacheable-entry splices is
/// reclaimed by a full reset + rebind.
constexpr size_t kArenaCompactFactor = 4;

}  // namespace

void DebugSession::InvalidateBindCache() {
  for (BindCacheEntry& e : bind_cache_) {
    e.valid = false;
    e.bound.clear();
  }
  bind_cache_primed_ = false;
  encode_cache_.relax.reset();
  encode_cache_.roots.clear();
}

void DebugSession::RefreshCachedComplaints() {
  // One concrete assignment over the persistent arena, shared by every
  // cached complaint: current = Evaluate(poly) reproduces the executor's
  // concrete cell bitwise (the evaluator mirrors the executor's
  // summation order and zero-denominator guard), and violated re-derives
  // through the binder's own predicate.
  const Vec assign = pipeline_->predictions().ConcreteAssignment(*pipeline_->arena());
  const PolyArena* arena = pipeline_->arena();
  for (BindCacheEntry& e : bind_cache_) {
    if (!e.valid) continue;
    for (BoundComplaint& c : e.bound) {
      if (c.poly == kInvalidPoly) continue;
      c.current = arena->Evaluate(c.poly, assign);
      c.violated = ComplaintViolated(c.op, c.current, c.target);
    }
  }
}

Result<std::vector<BoundComplaint>> DebugSession::BindPhase(IterationStats* stats) {
  Timer timer;
  RAIN_CHECK(bind_cache_.size() == workload_.size());
  const PolyArena* arena = pipeline_->arena();
  const bool compact =
      bind_cache_primed_ &&
      arena->num_nodes() >
          kArenaCompactFactor * std::max<size_t>(arena_nodes_after_full_bind_, 1);

  if (!config_.bind_cache || !bind_cache_primed_ || compact) {
    // Full bind: one fresh arena shared by every query so multi-query
    // complaints combine (Section 6.5). With the cache enabled this
    // arena then PERSISTS across iterations (primed below); with it
    // disabled this is the legacy once-per-iteration path.
    pipeline_->ResetDebugState();
    RAIN_ASSIGN_OR_RETURN(
        std::vector<std::vector<BoundComplaint>> entries,
        BindWorkloadEntries(pipeline_, workload_, config_.parallelism));
    ++arena_generation_;
    encode_cache_.relax.reset();
    std::vector<BoundComplaint> bound;
    for (size_t i = 0; i < entries.size(); ++i) {
      BindCacheEntry& e = bind_cache_[i];
      e.bound = std::move(entries[i]);
      e.cacheable =
          PlanStructureCacheable(workload_[i].query) && EntryBindable(e.bound);
      e.valid = config_.bind_cache && e.cacheable;
      bound.insert(bound.end(), e.bound.begin(), e.bound.end());
    }
    bind_cache_primed_ = config_.bind_cache;
    arena_nodes_after_full_bind_ = pipeline_->arena()->num_nodes();
    bind_cache_stats_.entries_rebound += workload_.size();
    ++bind_cache_stats_.full_binds;
    stats->query_seconds = timer.ElapsedSeconds();
    for (const BoundComplaint& c : bound) stats->violated_complaints += c.violated;
    return bound;
  }

  // Delta bind: execute + bind only stale entries (new / invalidated /
  // uncacheable), splicing their staging arenas append-only into the
  // persistent arena; every other entry refreshes its concrete values by
  // re-evaluating cached polynomials under the fresh predictions — no
  // query execution, O(cached provenance) instead of O(dataset).
  std::vector<size_t> stale;
  for (size_t i = 0; i < bind_cache_.size(); ++i) {
    if (!bind_cache_[i].valid) stale.push_back(i);
  }
  if (!stale.empty()) {
    std::vector<QueryComplaints> sub;
    sub.reserve(stale.size());
    for (size_t i : stale) sub.push_back(workload_[i]);
    RAIN_ASSIGN_OR_RETURN(
        std::vector<std::vector<BoundComplaint>> entries,
        BindWorkloadEntries(pipeline_, sub, config_.parallelism));
    ++arena_generation_;
    for (size_t j = 0; j < stale.size(); ++j) {
      BindCacheEntry& e = bind_cache_[stale[j]];
      e.bound = std::move(entries[j]);
      e.cacheable = PlanStructureCacheable(workload_[stale[j]].query) &&
                    EntryBindable(e.bound);
      e.valid = e.cacheable;
    }
    bind_cache_stats_.entries_rebound += stale.size();
  }
  bind_cache_stats_.entries_reused += workload_.size() - stale.size();
  RefreshCachedComplaints();

  std::vector<BoundComplaint> bound;
  for (const BindCacheEntry& e : bind_cache_) {
    bound.insert(bound.end(), e.bound.begin(), e.bound.end());
  }
  stats->query_seconds = timer.ElapsedSeconds();
  for (const BoundComplaint& c : bound) stats->violated_complaints += c.violated;
  return bound;
}

Result<RankOutput> DebugSession::RankPhase(const std::vector<BoundComplaint>& bound,
                                           IterationStats* stats) {
  RankContext ctx;
  ctx.model = pipeline_->model();
  ctx.train = pipeline_->train_data();
  ctx.catalog = &pipeline_->catalog();
  ctx.arena = pipeline_->arena();
  ctx.predictions = &pipeline_->predictions();
  ctx.complaints = &bound;
  ctx.influence = config_.influence;
  ctx.ilp = config_.ilp;
  ctx.relax_mode = config_.relax_mode;
  ctx.twostep_encode_all = config_.twostep_encode_all;
  ctx.parallelism = config_.parallelism;
  if (config_.bind_cache) {
    // Incremental re-encode: while the arena generation and root set are
    // unchanged, the ranker replays the cached relaxed-poly batch
    // structure instead of rebuilding its topological order (values are
    // recomputed from the fresh predictions either way — bitwise-neutral).
    ctx.encode_cache = &encode_cache_;
    ctx.arena_generation = arena_generation_;
  }
  RAIN_ASSIGN_OR_RETURN(RankOutput ranked, ranker_->Rank(ctx));
  stats->encode_seconds = ranked.encode_seconds;
  stats->rank_seconds = ranked.rank_seconds;
  if (!ranked.note.empty()) AppendNote(stats, ranked.note);
  // Cache the Hessian solve behind the scores: ApplyUpdate patches
  // touched-row influence previews against it without a fresh CG solve.
  if (!ranked.cg_solution.empty()) last_cg_solution_ = ranked.cg_solution;
  return ranked;
}

int DebugSession::FixPhase(const RankOutput& ranked, int iteration,
                           StepResult* result) {
  Dataset* train = pipeline_->train_data();
  // Under sharding, deletions route through the view so the owning
  // shard's active bookkeeping is updated in place alongside the mask.
  ShardedDataset* sharded = pipeline_->mutable_shards();
  std::vector<size_t> order(train->size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ranked.scores[a] > ranked.scores[b];
  });
  int removed = 0;
  const int budget =
      std::min(config_.top_k_per_iter,
               config_.max_deletions - static_cast<int>(report_.deletions.size()));
  for (size_t idx : order) {
    if (removed >= budget) break;
    if (!train->active(idx)) continue;
    if (sharded != nullptr) {
      sharded->Deactivate(idx);
    } else {
      train->Deactivate(idx);
    }
    report_.deletions.push_back(idx);
    result->new_deletions.push_back(idx);
    ++removed;
    NotifyDeletion(iteration, idx, ranked.scores[idx]);
  }
  // Deletions change the training data: the current parameters are no
  // longer its optimum.
  if (removed > 0) train_memo_valid_ = false;
  return removed;
}

// ---------------------------------------------------- speculation pipeline

std::vector<size_t> DebugSession::PredictFixDeletions() const {
  const Dataset* train = pipeline_->train_data();
  if (last_scores_.size() != train->size()) return {};
  // Exactly the fix selection rule, replayed on the PREVIOUS iteration's
  // scores: if the ranking is stable between iterations (the common case
  // late in a run), the prediction matches and the speculative train
  // commits.
  std::vector<size_t> order(train->size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return last_scores_[a] > last_scores_[b];
  });
  const int budget =
      std::min(config_.top_k_per_iter,
               config_.max_deletions - static_cast<int>(report_.deletions.size()));
  std::vector<size_t> predicted;
  for (size_t idx : order) {
    if (static_cast<int>(predicted.size()) >= budget) break;
    if (!train->active(idx)) continue;
    predicted.push_back(idx);
  }
  return predicted;
}

void DebugSession::SyncSnapshotCache() {
  Dataset* live = pipeline_->train_data();
  if (snapshot_cache_ == nullptr) {
    // Features and labels are immutable for the session's lifetime, so
    // this one deep copy is amortized across every later speculation;
    // only the active-mask delta is replayed per launch.
    snapshot_cache_ = std::make_unique<Dataset>(*live);
    snapshot_deletions_applied_ = report_.deletions.size();
    return;
  }
  for (size_t i = snapshot_deletions_applied_; i < report_.deletions.size(); ++i) {
    snapshot_cache_->Deactivate(report_.deletions[i]);
  }
  snapshot_deletions_applied_ = report_.deletions.size();
}

void DebugSession::LaunchSpeculation(int next_iteration) {
  // Profitability gates only — skipping a speculation never changes
  // results. No speculation when the upcoming fix cannot delete (the
  // session then ends in kNoProgress), when the iteration cap stops the
  // next train anyway, or when the predicted fix exhausts the deletion
  // budget.
  const int budget =
      std::min(config_.top_k_per_iter,
               config_.max_deletions - static_cast<int>(report_.deletions.size()));
  if (budget <= 0) return;
  if (next_iteration >= config_.max_iterations) return;
  std::vector<size_t> predicted = PredictFixDeletions();
  // An empty prediction (first iteration: no prior scores to predict
  // from) can never commit — a fix that deletes nothing ends the session
  // before the next train — so launching would be guaranteed wasted work.
  if (predicted.empty()) return;
  if (report_.deletions.size() + predicted.size() >=
      static_cast<size_t>(config_.max_deletions)) {
    return;
  }

  SyncSnapshotCache();
  auto spec = std::make_shared<Speculation>();
  spec->predicted = std::move(predicted);
  spec->deletions_at_launch = report_.deletions.size();
  spec->snapshot = std::move(snapshot_cache_);
  for (size_t id : spec->predicted) spec->snapshot->Deactivate(id);
  // Clone at the post-train(i) parameters: the same warm start the
  // synchronous train(i+1) would use.
  spec->model = pipeline_->model()->Clone();
  spec->config = pipeline_->train_config();
  spec->token = cancel_token_.MakeChild();
  spec->config.cancel = &spec->token;
  // The copied TrainConfig's shard view points at the LIVE training set;
  // rebind the same plan over the snapshot (mask already predicted-post-fix).
  if (pipeline_->shards() != nullptr) {
    spec->sharded = std::make_unique<ShardedDataset>(spec->snapshot.get(),
                                                     pipeline_->shards()->plan());
    spec->config.shards = spec->sharded.get();
  } else {
    spec->config.shards = nullptr;
  }

  pending_spec_ = spec;
  ++async_stats_.speculations_launched;
  spec->done = graph_.Submit(
      "speculative-train#" + std::to_string(next_iteration), {},
      [spec](const CancellationToken&) -> SpecOutcome {
        {
          std::lock_guard<std::mutex> lock(spec->mu);
          spec->started = true;
        }
        spec->cv.notify_all();
        Timer timer;
        Result<TrainReport> trained =
            TrainModel(spec->model.get(), *spec->snapshot, spec->config);
        SpecOutcome outcome;
        outcome.train_seconds = timer.ElapsedSeconds();
        outcome.train_ok = trained.ok() && !trained->interrupted;
        outcome.converged = outcome.train_ok && trained->converged;
        return outcome;
      });
}

void DebugSession::WaitSpecStarted(Speculation* spec) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(spec->mu);
      if (spec->started) return;
    }
    // Help drain the pool so a single-worker (or saturated) pool cannot
    // stall the handoff: worst case this thread runs the speculative
    // train inline, which still starts it before the fix phase.
    if (!ThreadPool::Global().RunOneTask()) {
      std::unique_lock<std::mutex> lock(spec->mu);
      spec->cv.wait(lock, [spec] { return spec->started; });
      return;
    }
  }
}

SpecOutcome DebugSession::WaitSpecOutcome(Speculation* spec) {
  try {
    return spec->done.Get();
  } catch (...) {
    // A throwing task body (allocation failure in TrainModel, say) reads
    // as a failed speculation: the caller replays synchronously.
    return SpecOutcome{};
  }
}

void DebugSession::ReclaimSnapshot(std::shared_ptr<Speculation> spec) {
  // The task has drained; roll the predicted deletions back so the cache
  // again mirrors the deletion prefix recorded at launch.
  for (size_t id : spec->predicted) spec->snapshot->Reactivate(id);
  snapshot_cache_ = std::move(spec->snapshot);
  snapshot_deletions_applied_ = spec->deletions_at_launch;
}

bool DebugSession::TryCommitSpeculation(IterationStats* stats) {
  std::shared_ptr<Speculation> spec = std::move(pending_spec_);
  const std::vector<size_t>& deletions = report_.deletions;
  // Valid iff the deletions appended since launch are exactly the ones
  // the speculation trained without — element for element, order
  // included. Anything else (more, fewer, different ids) replays.
  const bool prediction_matched =
      deletions.size() == spec->deletions_at_launch + spec->predicted.size() &&
      std::equal(spec->predicted.begin(), spec->predicted.end(),
                 deletions.begin() +
                     static_cast<ptrdiff_t>(spec->deletions_at_launch));
  SpecOutcome outcome;
  if (prediction_matched) {
    outcome = WaitSpecOutcome(spec.get());
  } else {
    spec->token.Cancel();  // stop the wasted work within one L-BFGS round
    outcome = WaitSpecOutcome(spec.get());
  }
  bool committed = false;
  if (prediction_matched && outcome.train_ok) {
    // Bitwise what the synchronous retrain would produce: same warm
    // start, same active rows, same deterministic L-BFGS. Publishing
    // the parameters also refreshes the prediction views.
    pipeline_->AdoptModelParams(spec->model->params());
    stats->train_seconds = outcome.train_seconds;
    AppendNote(stats, "train speculated during previous rank phase");
    ++async_stats_.speculations_committed;
    train_memo_valid_ = outcome.converged;
    committed = true;
  }
  if (!committed) ++async_stats_.speculations_replayed;
  ReclaimSnapshot(std::move(spec));
  return committed;
}

void DebugSession::AbandonSpeculation() {
  if (pending_spec_ == nullptr) return;
  std::shared_ptr<Speculation> spec = std::move(pending_spec_);
  spec->token.Cancel();
  (void)WaitSpecOutcome(spec.get());
  ReclaimSnapshot(std::move(spec));
}

// ---------------------------------------------------------- step driving

struct DebugSession::StageScope {
  int iteration = 0;
  bool pipelined = false;
  StepResult* result = nullptr;
  IterationStats stats;
  std::vector<BoundComplaint> bound;
  RankOutput ranked;
};

Result<DebugSession::StageAction> DebugSession::RunStage(DebugPhase phase,
                                                         StageScope* scope) {
  StepResult* result = scope->result;
  switch (phase) {
    case DebugPhase::kTrain: {
      RAIN_RETURN_NOT_OK(TrainPhase(&scope->stats));
      NotifyPhaseComplete(scope->iteration, DebugPhase::kTrain,
                          scope->stats.train_seconds);
      if (CheckInterrupted(DebugPhase::kTrain, &scope->stats, result)) {
        return StageAction::kStepDone;
      }
      return StageAction::kContinue;
    }

    case DebugPhase::kBind: {
      RAIN_ASSIGN_OR_RETURN(scope->bound, BindPhase(&scope->stats));
      NotifyPhaseComplete(scope->iteration, DebugPhase::kBind,
                          scope->stats.query_seconds);
      result->complaints_resolved = scope->stats.violated_complaints == 0;
      if (scope->stats.violated_complaints == 0) {
        report_.complaints_resolved = true;
        if (config_.stop_when_resolved) {
          scope->stats.deletions_after = report_.deletions.size();
          report_.iterations.push_back(scope->stats);
          ++iterations_completed_;
          Finish(StepStatus::kResolved);
          result->status = StepStatus::kResolved;
          result->stats = scope->stats;
          return StageAction::kStepDone;
        }
      } else {
        report_.complaints_resolved = false;
      }
      if (CheckInterrupted(DebugPhase::kBind, &scope->stats, result)) {
        return StageAction::kStepDone;
      }
      return StageAction::kContinue;
    }

    case DebugPhase::kRank: {
      // Pipelining: the next iteration's speculative train overlaps the
      // CG solves below (the only cross-iteration edge, broken on a
      // predicted post-fix snapshot; see class comment).
      if (scope->pipelined && pending_spec_ == nullptr) {
        LaunchSpeculation(scope->iteration + 1);
      }
      Result<RankOutput> ranked = RankPhase(scope->bound, &scope->stats);
      if (!ranked.ok()) {
        if (ranked.status().IsCancelled() &&
            (cancel_requested() || DeadlinePassed())) {
          // In-loop cancellation inside the solve: wind down as an
          // interruption after the last *completed* phase.
          if (CheckInterrupted(DebugPhase::kBind, &scope->stats, result)) {
            return StageAction::kStepDone;
          }
        }
        return ranked.status();
      }
      scope->ranked = std::move(*ranked);
      // The predictor's input for the next iteration's speculation.
      last_scores_ = scope->ranked.scores;
      NotifyPhaseComplete(scope->iteration, DebugPhase::kRank,
                          scope->stats.encode_seconds + scope->stats.rank_seconds);
      if (CheckInterrupted(DebugPhase::kRank, &scope->stats, result)) {
        return StageAction::kStepDone;
      }
      return StageAction::kContinue;
    }

    case DebugPhase::kFix: {
      if (scope->pipelined && pending_spec_ != nullptr) {
        // The pipeline's ordering guarantee: the next train is running
        // before this fix completes (inline as a last resort on a
        // saturated pool).
        WaitSpecStarted(pending_spec_.get());
        ++async_stats_.overlapped_iterations;
      }
      Timer fix_timer;
      const int removed = FixPhase(scope->ranked, scope->iteration, result);
      NotifyPhaseComplete(scope->iteration, DebugPhase::kFix,
                          fix_timer.ElapsedSeconds());
      scope->stats.deletions_after = report_.deletions.size();
      report_.iterations.push_back(scope->stats);
      ++iterations_completed_;
      result->stats = scope->stats;
      if (removed == 0) {  // nothing left to delete
        Finish(StepStatus::kNoProgress);
        result->status = StepStatus::kNoProgress;
      } else {
        result->status = StepStatus::kIterated;
      }
      return StageAction::kStepDone;
    }
  }
  return Status::Internal("unknown debug stage");
}

Result<StepResult> DebugSession::StepImpl(bool pipelined) {
  StepResult result;
  if (finished_) {
    result.status = StepStatus::kAlreadyFinished;
    result.complaints_resolved = report_.complaints_resolved;
    return result;
  }
  if (static_cast<int>(report_.deletions.size()) >= config_.max_deletions) {
    Finish(StepStatus::kBudgetExhausted);
    result.status = StepStatus::kBudgetExhausted;
    return result;
  }
  if (iterations_completed_ >= config_.max_iterations) {
    Finish(StepStatus::kIterationLimit);
    result.status = StepStatus::kIterationLimit;
    return result;
  }
  // Interruption before any phase ran: nothing to record.
  if (cancel_requested()) {
    Finish(StepStatus::kCancelled);
    result.status = StepStatus::kCancelled;
    return result;
  }
  if (DeadlinePassed()) {
    Finish(StepStatus::kDeadlineExceeded);
    result.status = StepStatus::kDeadlineExceeded;
    return result;
  }

  StageScope scope;
  scope.iteration = iterations_completed_;
  scope.pipelined = pipelined;
  scope.result = &result;
  NotifyIterationStart(scope.iteration);
  for (const StageSpec& stage : Stages()) {
    RAIN_ASSIGN_OR_RETURN(StageAction action, RunStage(stage.phase, &scope));
    if (action == StageAction::kStepDone) break;
  }
  return result;
}

Result<StepResult> DebugSession::Step() {
  CheckNotInObserverCallback("DebugSession::Step");
  if (async_in_flight()) {
    return Status::InvalidArgument(
        "DebugSession::Step: an async drive is in flight; wait on its future");
  }
  return StepImpl(/*pipelined=*/false);
}

Result<DebugReport> DebugSession::RunToCompletion(const StopCondition& stop) {
  CheckNotInObserverCallback("DebugSession::RunToCompletion");
  if (async_in_flight()) {
    return Status::InvalidArgument(
        "DebugSession::RunToCompletion: an async drive is in flight; wait on "
        "its future");
  }
  // The stop condition is consulted BEFORE each step: resuming with an
  // already-satisfied condition must not run (and irreversibly delete
  // records in) an extra iteration.
  while (!finished_) {
    if (stop && stop(report_)) break;
    RAIN_ASSIGN_OR_RETURN(StepResult step, StepImpl(/*pipelined=*/false));
    if (step.status != StepStatus::kIterated) break;
  }
  return report_;
}

// ------------------------------------------------------------ async drive

void DebugSession::ReapDriverThread() {
  if (driver_thread_.joinable()) driver_thread_.join();
}

Result<DebugReport> DebugSession::DriveLoop(const StopCondition& stop,
                                            AsyncOptions options) {
  while (!finished_) {
    if (stop && stop(report_)) break;
    Result<StepResult> step = StepImpl(options.speculate);
    RAIN_RETURN_NOT_OK(step.status());
    if (step->status != StepStatus::kIterated) break;
  }
  // A pause (stop condition) keeps any pending speculation alive: the
  // next drive — or a synchronous Step — validates and consumes it with
  // the exact same rule. Terminal states abandoned it in Finish().
  return report_;
}

Future<Result<StepResult>> DebugSession::StepAsync(AsyncOptions options) {
  CheckNotInObserverCallback("DebugSession::StepAsync");
  Promise<Result<StepResult>> promise;
  Future<Result<StepResult>> future = promise.future();
  if (async_active_.exchange(true, std::memory_order_acq_rel)) {
    promise.Set(Status::InvalidArgument(
        "DebugSession::StepAsync: an async drive is already in flight"));
    return future;
  }
  ReapDriverThread();
  driver_thread_ = std::thread([this, options, promise]() mutable {
    Result<StepResult> out = StepImpl(options.speculate);
    async_active_.store(false, std::memory_order_release);
    promise.Set(std::move(out));
  });
  return future;
}

Future<Result<DebugReport>> DebugSession::RunToCompletionAsync(
    StopCondition stop, AsyncOptions options) {
  CheckNotInObserverCallback("DebugSession::RunToCompletionAsync");
  Promise<Result<DebugReport>> promise;
  Future<Result<DebugReport>> future = promise.future();
  if (async_active_.exchange(true, std::memory_order_acq_rel)) {
    promise.Set(Status::InvalidArgument(
        "DebugSession::RunToCompletionAsync: an async drive is already in "
        "flight"));
    return future;
  }
  ReapDriverThread();
  driver_thread_ =
      std::thread([this, stop = std::move(stop), options, promise]() mutable {
        Result<DebugReport> out = DriveLoop(stop, options);
        async_active_.store(false, std::memory_order_release);
        promise.Set(std::move(out));
      });
  return future;
}

// ---------------------------------------------------------------- builder

DebugSessionBuilder& DebugSessionBuilder::ranker(const std::string& name) {
  auto made = MakeRanker(name);
  if (made.ok()) {
    owned_ranker_ = std::move(*made);
    borrowed_ranker_ = nullptr;
    ranker_status_ = Status::OK();
  } else {
    ranker_status_ = made.status();
  }
  return *this;
}

Result<std::unique_ptr<DebugSession>> DebugSessionBuilder::Build() {
  if (pipeline_ == nullptr) {
    return Status::InvalidArgument("DebugSessionBuilder: pipeline is required");
  }
  RAIN_RETURN_NOT_OK(ranker_status_);
  Ranker* ranker = borrowed_ranker_ != nullptr ? borrowed_ranker_ : owned_ranker_.get();
  if (ranker == nullptr) {
    return Status::InvalidArgument(
        "DebugSessionBuilder: a ranker is required (use .ranker(...))");
  }

  // The single place where the session-level parallelism fans out: the
  // pipeline's TrainConfig always tracks it (so 1 restores the exact
  // sequential path), while the finer-grained influence / CG knobs
  // inherit it only when left at their default of 1.
  DebugConfig resolved = config_;
  resolved.parallelism = pipeline_->set_parallelism(resolved.parallelism);
  if (resolved.influence.parallelism <= 1) {
    resolved.influence.parallelism = resolved.parallelism;
  }
  // Also the single place the shard plan is installed: the pipeline owns
  // the ShardedDataset view; train inherits it via TrainConfig::shards
  // and the rank phase via InfluenceOptions::shards. A builder left at
  // the default (0) ADOPTS a plan already installed on the pipeline —
  // via Query2Pipeline::set_num_shards directly or by a previous
  // session — instead of silently clearing it (and dangling that
  // session's view); clear explicitly with
  // pipeline->set_num_shards(0). Under sharding the CG vector kernels
  // stay sequential (worker-invariant arithmetic), so the cg knob does
  // not inherit the session parallelism.
  if (resolved.num_shards <= 0 && pipeline_->shards() != nullptr) {
    resolved.num_shards = static_cast<int>(pipeline_->shards()->num_shards());
  }
  resolved.num_shards = pipeline_->set_num_shards(resolved.num_shards);
  if (resolved.num_shards > 0) {
    resolved.influence.shards = pipeline_->shards();
    resolved.influence.cg.parallelism = 1;
  } else {
    resolved.influence.shards = nullptr;
    if (resolved.influence.cg.parallelism <= 1) {
      resolved.influence.cg.parallelism = resolved.influence.parallelism;
    }
  }

  // Resolve the execution bundle: fold the relative timeout into the
  // absolute deadline (earlier wins) and mirror the resolved parallelism /
  // shard values back so the session ctor receives one coherent value.
  ExecutionOptions exec = std::move(exec_);
  exec.parallelism = resolved.parallelism;
  exec.num_shards = resolved.num_shards;
  if (exec.timeout_seconds.has_value()) {
    const auto timeout_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(*exec.timeout_seconds));
    if (!exec.deadline.has_value() || timeout_deadline < *exec.deadline) {
      exec.deadline = timeout_deadline;
    }
    exec.timeout_seconds.reset();
  }

  return std::unique_ptr<DebugSession>(
      new DebugSession(pipeline_, std::move(owned_ranker_), ranker, resolved,
                       std::move(workload_), std::move(exec)));
}

}  // namespace rain
