#include "core/session.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace rain {

const char* DebugPhaseName(DebugPhase phase) {
  switch (phase) {
    case DebugPhase::kTrain:
      return "train";
    case DebugPhase::kBind:
      return "bind";
    case DebugPhase::kRank:
      return "rank";
    case DebugPhase::kFix:
      return "fix";
  }
  return "?";
}

const char* StepStatusName(StepStatus status) {
  switch (status) {
    case StepStatus::kIterated:
      return "iterated";
    case StepStatus::kResolved:
      return "resolved";
    case StepStatus::kNoProgress:
      return "no-progress";
    case StepStatus::kBudgetExhausted:
      return "budget-exhausted";
    case StepStatus::kIterationLimit:
      return "iteration-limit";
    case StepStatus::kCancelled:
      return "cancelled";
    case StepStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case StepStatus::kAlreadyFinished:
      return "already-finished";
  }
  return "?";
}

StopCondition StopAfterIterations(int n) {
  // Baselined on first evaluation, so the same condition object pauses
  // again immediately if re-used on a resumed run.
  return [n, baseline = std::optional<size_t>()](const DebugReport& report) mutable {
    if (!baseline.has_value()) baseline = report.iterations.size();
    return report.iterations.size() >= *baseline + static_cast<size_t>(n);
  };
}

StopCondition StopAfterDeletions(size_t n) {
  return [n](const DebugReport& report) { return report.deletions.size() >= n; };
}

DebugSession::DebugSession(
    Query2Pipeline* pipeline, std::unique_ptr<Ranker> owned_ranker, Ranker* ranker,
    DebugConfig config, std::vector<QueryComplaints> workload,
    std::vector<DebugObserver*> observers,
    std::optional<std::chrono::steady_clock::time_point> deadline)
    : pipeline_(pipeline),
      owned_ranker_(std::move(owned_ranker)),
      ranker_(ranker),
      config_(config),
      workload_(std::move(workload)),
      observers_(std::move(observers)),
      deadline_(deadline) {
  RAIN_CHECK(pipeline_ != nullptr && ranker_ != nullptr);
}

void DebugSession::set_deadline(std::chrono::steady_clock::time_point deadline) {
  deadline_ = deadline;
  if (finished_ && finish_status_ == StepStatus::kDeadlineExceeded &&
      std::chrono::steady_clock::now() < deadline) {
    finished_ = false;
    finish_status_ = StepStatus::kAlreadyFinished;
  }
}

void DebugSession::clear_deadline() {
  deadline_.reset();
  if (finished_ && finish_status_ == StepStatus::kDeadlineExceeded) {
    finished_ = false;
    finish_status_ = StepStatus::kAlreadyFinished;
  }
}

size_t DebugSession::AddComplaints(QueryComplaints batch) {
  workload_.push_back(std::move(batch));
  // New complaints may be violated: a resolved session has work again.
  if (finished_ && finish_status_ == StepStatus::kResolved) {
    finished_ = false;
    finish_status_ = StepStatus::kAlreadyFinished;
  }
  return workload_.size() - 1;
}

bool DebugSession::RemoveQuery(size_t index) {
  if (index >= workload_.size()) return false;
  workload_.erase(workload_.begin() + static_cast<ptrdiff_t>(index));
  if (finished_ && finish_status_ == StepStatus::kResolved) {
    finished_ = false;
    finish_status_ = StepStatus::kAlreadyFinished;
  }
  return true;
}

void DebugSession::NotifyIterationStart(int iteration) {
  for (DebugObserver* obs : observers_) obs->OnIterationStart(iteration, report_);
}

void DebugSession::NotifyPhaseComplete(int iteration, DebugPhase phase,
                                       double seconds) {
  for (DebugObserver* obs : observers_) obs->OnPhaseComplete(iteration, phase, seconds);
}

bool DebugSession::CheckInterrupted(DebugPhase last_phase, IterationStats* stats,
                                    StepResult* result) {
  StepStatus status;
  if (cancel_requested()) {
    status = StepStatus::kCancelled;
  } else if (deadline_.has_value() &&
             std::chrono::steady_clock::now() >= *deadline_) {
    status = StepStatus::kDeadlineExceeded;
  } else {
    return false;
  }
  // Record the partially completed iteration so the report stays a
  // faithful account of the work actually done.
  if (!stats->note.empty()) stats->note += "; ";
  stats->note += std::string(StepStatusName(status)) + " after " +
                 DebugPhaseName(last_phase) + " phase";
  stats->deletions_after = report_.deletions.size();
  report_.iterations.push_back(*stats);
  ++iterations_completed_;
  Finish(status);
  result->status = status;
  result->stats = *stats;
  return true;
}

Status DebugSession::TrainPhase(IterationStats* stats) {
  Timer timer;
  RAIN_RETURN_NOT_OK(pipeline_->Train().status());
  stats->train_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Result<std::vector<BoundComplaint>> BindWorkload(
    Query2Pipeline* pipeline, const std::vector<QueryComplaints>& workload,
    int parallelism) {
  /// Per-query staging state: a private arena plus the complaints bound
  /// against it (their `poly` ids are staging-local until the splice).
  struct Staged {
    std::unique_ptr<PolyArena> arena;
    std::vector<BoundComplaint> bound;
    Status status = Status::OK();
  };
  std::vector<Staged> staged(workload.size());
  ParallelForEach(parallelism, workload.size(), [&](size_t i) {
    Staged& s = staged[i];
    s.arena = std::make_unique<PolyArena>();
    const QueryComplaints& qc = workload[i];
    ExecResult result;  // empty placeholder for point-only workloads
    if (qc.query != nullptr) {
      auto exec = pipeline->ExecuteInto(qc.query, s.arena.get(), /*debug=*/true);
      if (!exec.ok()) {
        s.status = exec.status();
        return;
      }
      result = std::move(*exec);
    }
    for (const ComplaintSpec& spec : qc.complaints) {
      auto bc = BindComplaint(spec, result, s.arena.get(), pipeline->predictions(),
                              pipeline->catalog());
      if (!bc.ok()) {
        s.status = bc.status();
        return;
      }
      s.bound.insert(s.bound.end(), bc->begin(), bc->end());
    }
  });

  // Surface the first error in workload order BEFORE touching the shared
  // arena, so a failed bind leaves the pipeline's debug state unchanged.
  for (const Staged& s : staged) RAIN_RETURN_NOT_OK(s.status);

  // Single ordered splice into the shared arena: workload order, never
  // completion order, so `bound` and the arena are bitwise-stable.
  std::vector<BoundComplaint> bound;
  PolyArena* arena = pipeline->arena();
  for (Staged& s : staged) {
    const PolyArena::SpliceMap map = arena->Splice(*s.arena);
    for (BoundComplaint c : s.bound) {
      if (c.poly != kInvalidPoly) c.poly = map.node_map[c.poly];
      bound.push_back(c);
    }
  }
  return bound;
}

Result<std::vector<BoundComplaint>> DebugSession::BindPhase(IterationStats* stats) {
  Timer timer;
  // One fresh arena per iteration, shared by every query so multi-query
  // complaints combine (Section 6.5).
  pipeline_->ResetDebugState();
  RAIN_ASSIGN_OR_RETURN(std::vector<BoundComplaint> bound,
                        BindWorkload(pipeline_, workload_, config_.parallelism));
  stats->query_seconds = timer.ElapsedSeconds();
  for (const BoundComplaint& c : bound) stats->violated_complaints += c.violated;
  return bound;
}

Result<RankOutput> DebugSession::RankPhase(const std::vector<BoundComplaint>& bound,
                                           IterationStats* stats) {
  RankContext ctx;
  ctx.model = pipeline_->model();
  ctx.train = pipeline_->train_data();
  ctx.catalog = &pipeline_->catalog();
  ctx.arena = pipeline_->arena();
  ctx.predictions = &pipeline_->predictions();
  ctx.complaints = &bound;
  ctx.influence = config_.influence;
  ctx.ilp = config_.ilp;
  ctx.relax_mode = config_.relax_mode;
  ctx.twostep_encode_all = config_.twostep_encode_all;
  ctx.parallelism = config_.parallelism;
  RAIN_ASSIGN_OR_RETURN(RankOutput ranked, ranker_->Rank(ctx));
  stats->encode_seconds = ranked.encode_seconds;
  stats->rank_seconds = ranked.rank_seconds;
  stats->note = ranked.note;
  return ranked;
}

int DebugSession::FixPhase(const RankOutput& ranked, int iteration,
                           StepResult* result) {
  Dataset* train = pipeline_->train_data();
  std::vector<size_t> order(train->size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ranked.scores[a] > ranked.scores[b];
  });
  int removed = 0;
  const int budget =
      std::min(config_.top_k_per_iter,
               config_.max_deletions - static_cast<int>(report_.deletions.size()));
  for (size_t idx : order) {
    if (removed >= budget) break;
    if (!train->active(idx)) continue;
    train->Deactivate(idx);
    report_.deletions.push_back(idx);
    result->new_deletions.push_back(idx);
    ++removed;
    for (DebugObserver* obs : observers_) {
      obs->OnDeletion(iteration, idx, ranked.scores[idx]);
    }
  }
  return removed;
}

Result<StepResult> DebugSession::Step() {
  StepResult result;
  if (finished_) {
    result.status = StepStatus::kAlreadyFinished;
    result.complaints_resolved = report_.complaints_resolved;
    return result;
  }
  if (static_cast<int>(report_.deletions.size()) >= config_.max_deletions) {
    Finish(StepStatus::kBudgetExhausted);
    result.status = StepStatus::kBudgetExhausted;
    return result;
  }
  if (iterations_completed_ >= config_.max_iterations) {
    Finish(StepStatus::kIterationLimit);
    result.status = StepStatus::kIterationLimit;
    return result;
  }
  // Interruption before any phase ran: nothing to record.
  if (cancel_requested()) {
    Finish(StepStatus::kCancelled);
    result.status = StepStatus::kCancelled;
    return result;
  }
  if (deadline_.has_value() && std::chrono::steady_clock::now() >= *deadline_) {
    Finish(StepStatus::kDeadlineExceeded);
    result.status = StepStatus::kDeadlineExceeded;
    return result;
  }

  const int iteration = iterations_completed_;
  NotifyIterationStart(iteration);
  IterationStats stats;

  // (0) (Re)train on surviving records, warm start.
  RAIN_RETURN_NOT_OK(TrainPhase(&stats));
  NotifyPhaseComplete(iteration, DebugPhase::kTrain, stats.train_seconds);
  if (CheckInterrupted(DebugPhase::kTrain, &stats, &result)) return result;

  // (1-2) Re-run every complained-about query and bind complaints.
  RAIN_ASSIGN_OR_RETURN(std::vector<BoundComplaint> bound, BindPhase(&stats));
  NotifyPhaseComplete(iteration, DebugPhase::kBind, stats.query_seconds);

  result.complaints_resolved = stats.violated_complaints == 0;
  if (stats.violated_complaints == 0) {
    report_.complaints_resolved = true;
    if (config_.stop_when_resolved) {
      stats.deletions_after = report_.deletions.size();
      report_.iterations.push_back(stats);
      ++iterations_completed_;
      Finish(StepStatus::kResolved);
      result.status = StepStatus::kResolved;
      result.stats = stats;
      return result;
    }
  } else {
    report_.complaints_resolved = false;
  }
  if (CheckInterrupted(DebugPhase::kBind, &stats, &result)) return result;

  // (4-10) Rank the training records.
  RAIN_ASSIGN_OR_RETURN(RankOutput ranked, RankPhase(bound, &stats));
  NotifyPhaseComplete(iteration, DebugPhase::kRank,
                      stats.encode_seconds + stats.rank_seconds);
  if (CheckInterrupted(DebugPhase::kRank, &stats, &result)) return result;

  // Fix: delete the top-k active records.
  Timer fix_timer;
  const int removed = FixPhase(ranked, iteration, &result);
  NotifyPhaseComplete(iteration, DebugPhase::kFix, fix_timer.ElapsedSeconds());

  stats.deletions_after = report_.deletions.size();
  report_.iterations.push_back(stats);
  ++iterations_completed_;
  result.stats = stats;
  if (removed == 0) {  // nothing left to delete
    Finish(StepStatus::kNoProgress);
    result.status = StepStatus::kNoProgress;
  } else {
    result.status = StepStatus::kIterated;
  }
  return result;
}

Result<DebugReport> DebugSession::RunToCompletion(const StopCondition& stop) {
  // The stop condition is consulted BEFORE each step: resuming with an
  // already-satisfied condition must not run (and irreversibly delete
  // records in) an extra iteration.
  while (!finished_) {
    if (stop && stop(report_)) break;
    RAIN_ASSIGN_OR_RETURN(StepResult step, Step());
    if (step.status != StepStatus::kIterated) break;
  }
  return report_;
}

DebugSessionBuilder& DebugSessionBuilder::ranker(const std::string& name) {
  auto made = MakeRanker(name);
  if (made.ok()) {
    owned_ranker_ = std::move(*made);
    borrowed_ranker_ = nullptr;
    ranker_status_ = Status::OK();
  } else {
    ranker_status_ = made.status();
  }
  return *this;
}

DebugSessionBuilder& DebugSessionBuilder::timeout_seconds(double seconds) {
  timeout_seconds_ = seconds;
  return *this;
}

Result<std::unique_ptr<DebugSession>> DebugSessionBuilder::Build() {
  if (pipeline_ == nullptr) {
    return Status::InvalidArgument("DebugSessionBuilder: pipeline is required");
  }
  RAIN_RETURN_NOT_OK(ranker_status_);
  Ranker* ranker = borrowed_ranker_ != nullptr ? borrowed_ranker_ : owned_ranker_.get();
  if (ranker == nullptr) {
    return Status::InvalidArgument(
        "DebugSessionBuilder: a ranker is required (use .ranker(...))");
  }

  // The single place where the session-level parallelism fans out: the
  // pipeline's TrainConfig always tracks it (so 1 restores the exact
  // sequential path), while the finer-grained influence / CG knobs
  // inherit it only when left at their default of 1.
  DebugConfig resolved = config_;
  resolved.parallelism = pipeline_->set_parallelism(resolved.parallelism);
  if (resolved.influence.parallelism <= 1) {
    resolved.influence.parallelism = resolved.parallelism;
  }
  if (resolved.influence.cg.parallelism <= 1) {
    resolved.influence.cg.parallelism = resolved.influence.parallelism;
  }

  std::optional<std::chrono::steady_clock::time_point> deadline = deadline_;
  if (timeout_seconds_.has_value()) {
    const auto timeout_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(*timeout_seconds_));
    if (!deadline.has_value() || timeout_deadline < *deadline) {
      deadline = timeout_deadline;
    }
  }

  return std::unique_ptr<DebugSession>(new DebugSession(
      pipeline_, std::move(owned_ranker_), ranker, resolved, std::move(workload_),
      std::move(observers_), deadline));
}

}  // namespace rain
