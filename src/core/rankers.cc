#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/ranker.h"
#include "ilp/tiresias.h"
#include "relax/relaxed_poly.h"

namespace rain {

Status AccumulateProbaGradients(
    const Catalog& catalog, const Model& model,
    const std::map<std::pair<int32_t, int64_t>, Vec>& weights, Vec* grad,
    int parallelism) {
  // Validate and resolve every (table,row) key first, in map order: error
  // messages are deterministic regardless of parallelism, name the
  // offending table/row so multi-query failures are attributable, and a
  // failure never leaves `grad` partially accumulated.
  struct Row {
    const double* x;
    const Vec* class_weights;
  };
  std::vector<Row> rows;
  rows.reserve(weights.size());
  for (const auto& [key, class_weights] : weights) {
    const Catalog::Entry* entry = catalog.FindById(key.first);
    if (entry == nullptr) {
      return Status::Internal(StrFormat(
          "complaint gradient references unknown table id=%d (row %lld)",
          key.first, static_cast<long long>(key.second)));
    }
    if (!entry->features.has_value()) {
      return Status::Internal(StrFormat(
          "queried table '%s' (id=%d) lacks a feature dataset needed to "
          "backpropagate the complaint gradient for row %lld",
          entry->name.c_str(), key.first, static_cast<long long>(key.second)));
    }
    if (key.second < 0 ||
        static_cast<size_t>(key.second) >= entry->features->size()) {
      return Status::OutOfRange(StrFormat(
          "queried row %lld out of range for table '%s' (id=%d, %zu feature "
          "rows)",
          static_cast<long long>(key.second), entry->name.c_str(), key.first,
          entry->features->size()));
    }
    rows.push_back(
        {entry->features->row(static_cast<size_t>(key.second)), &class_weights});
  }

  if (parallelism <= 1 || rows.size() <= 1) {
    // Exact sequential path: accumulate straight into `grad`, row by row.
    for (const Row& row : rows) {
      model.AddProbaGradient(row.x, *row.class_weights, grad);
    }
    return Status::OK();
  }
  // Parallel path: per-ROW partial gradients computed concurrently, then
  // reduced into `grad` in row order. Every in-tree model's
  // AddProbaGradient touches each gradient element at most once per row,
  // so a row's partial (accumulated into zeros) is the exact addend the
  // sequential loop would have applied — the reduction reproduces the
  // sequential bit pattern for EVERY parallelism value, a stronger
  // guarantee than the chunk-ordered reductions elsewhere (required
  // because the encode phase feeds the deletion ranking, which must not
  // depend on the worker count). Rows are processed in bounded blocks so
  // the partial buffers stay small.
  const size_t block = std::min<size_t>(rows.size(), 128);
  std::vector<Vec> partial(block);
  for (size_t base = 0; base < rows.size(); base += block) {
    const size_t count = std::min(block, rows.size() - base);
    ParallelForEach(parallelism, count, [&](size_t i) {
      partial[i].assign(grad->size(), 0.0);
      model.AddProbaGradient(rows[base + i].x, *rows[base + i].class_weights,
                             &partial[i]);
    });
    for (size_t i = 0; i < count; ++i) {
      const Vec& p = partial[i];
      for (size_t j = 0; j < grad->size(); ++j) (*grad)[j] += p[j];
    }
  }
  return Status::OK();
}

Approach SelectApproach(const PolyArena& arena,
                        const std::vector<BoundComplaint>& complaints) {
  // A point complaint's polynomial is a single prediction variable: there
  // is exactly one way to satisfy it, so the ILP has a unique minimal
  // repair and TwoStep is safe. Anything else (aggregates, join tuples)
  // admits multiple satisfying repairs -> Holistic.
  for (const BoundComplaint& c : complaints) {
    if (!c.violated) continue;
    if (c.poly == kInvalidPoly) return Approach::kHolistic;
    if (arena.node(c.poly).op != PolyOp::kVar) return Approach::kHolistic;
  }
  return Approach::kTwoStep;
}

namespace {

/// Validates the common parts of a RankContext.
Status CheckContext(const RankContext& ctx, bool needs_complaints) {
  if (ctx.model == nullptr || ctx.train == nullptr) {
    return Status::InvalidArgument("RankContext requires model and train set");
  }
  if (needs_complaints &&
      (ctx.complaints == nullptr || ctx.arena == nullptr ||
       ctx.predictions == nullptr || ctx.catalog == nullptr)) {
    return Status::InvalidArgument(
        "complaint-driven rankers require arena/predictions/catalog/complaints");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Loss baseline: per-example training loss, descending.
// ---------------------------------------------------------------------------
class LossRanker : public Ranker {
 public:
  std::string name() const override { return "loss"; }

  Result<RankOutput> Rank(const RankContext& ctx) override {
    RAIN_RETURN_NOT_OK(CheckContext(ctx, /*needs_complaints=*/false));
    Timer timer;
    RankOutput out;
    out.scores.assign(ctx.train->size(), 0.0);
    for (size_t i = 0; i < ctx.train->size(); ++i) {
      if (!ctx.train->active(i)) continue;
      out.scores[i] = ctx.model->ExampleLoss(ctx.train->row(i), ctx.train->label(i));
    }
    out.rank_seconds = timer.ElapsedSeconds();
    return out;
  }
};

// ---------------------------------------------------------------------------
// InfLoss baseline: self-influence (one CG solve per record) [35].
// ---------------------------------------------------------------------------
class InfLossRanker : public Ranker {
 public:
  std::string name() const override { return "infloss"; }

  Result<RankOutput> Rank(const RankContext& ctx) override {
    RAIN_RETURN_NOT_OK(CheckContext(ctx, /*needs_complaints=*/false));
    Timer timer;
    InfluenceScorer scorer(ctx.model, ctx.train, ctx.influence);
    RAIN_ASSIGN_OR_RETURN(std::vector<double> self, scorer.SelfInfluenceAll());
    RankOutput out;
    out.scores.assign(ctx.train->size(), 0.0);
    // self(z) <= 0; the most negative values (largest own-loss increase on
    // removal) rank at the top, so negate.
    for (size_t i = 0; i < self.size(); ++i) {
      if (ctx.train->active(i)) out.scores[i] = -self[i];
    }
    out.rank_seconds = timer.ElapsedSeconds();
    return out;
  }
};

// ---------------------------------------------------------------------------
// Holistic (Section 5.3): q = sum over violated complaints of
// (rq(theta) - X)^2, differentiated through the relaxed provenance
// polynomial into the model, then one influence solve.
// ---------------------------------------------------------------------------
class HolisticRanker : public Ranker {
 public:
  std::string name() const override { return "holistic"; }

  Result<RankOutput> Rank(const RankContext& ctx) override {
    RAIN_RETURN_NOT_OK(CheckContext(ctx, /*needs_complaints=*/true));
    Timer encode_timer;
    const Vec probs = ctx.predictions->RelaxedAssignment(*ctx.arena);

    // One batched relaxation over every ranked complaint: a single shared
    // forward sweep plus per-complaint reverse sweeps dispatched across
    // ctx.parallelism workers (bitwise-stable for any worker count).
    std::vector<PolyId> roots;
    std::vector<double> targets;
    for (const BoundComplaint& c : *ctx.complaints) {
      if (!c.ShouldRank() || c.poly == kInvalidPoly) continue;
      roots.push_back(c.poly);
      targets.push_back(c.target);
    }
    RankOutput out;
    out.scores.assign(ctx.train->size(), 0.0);
    if (roots.empty()) {
      out.note = "no violated complaints";
      out.encode_seconds = encode_timer.ElapsedSeconds();
      return out;
    }
    // The batch is a pure function of (arena, roots, mode); the session's
    // encode cache replays it across iterations while the arena generation
    // and root set are unchanged (bitwise-neutral: same topological order,
    // same sweeps — only `probs` varies per iteration).
    std::shared_ptr<const RelaxedPoly> batch_holder;
    if (ctx.encode_cache != nullptr && ctx.encode_cache->relax != nullptr &&
        ctx.encode_cache->arena_generation == ctx.arena_generation &&
        ctx.encode_cache->mode == ctx.relax_mode &&
        ctx.encode_cache->roots == roots) {
      batch_holder = ctx.encode_cache->relax;
      ++ctx.encode_cache->reuses;
    } else {
      batch_holder =
          std::make_shared<const RelaxedPoly>(ctx.arena, roots, ctx.relax_mode);
      if (ctx.encode_cache != nullptr) {
        ctx.encode_cache->arena_generation = ctx.arena_generation;
        ctx.encode_cache->mode = ctx.relax_mode;
        ctx.encode_cache->roots = roots;
        ctx.encode_cache->relax = batch_holder;
      }
    }
    const RelaxedPoly& batch = *batch_holder;
    std::vector<Vec> var_grads;
    const std::vector<double> rq =
        batch.GradientBatch(probs, &var_grads, ctx.parallelism);

    // Per-(table,row) class-weight seeds accumulated over complaints, in
    // complaint order (sequential: the merge is cheap and order fixes the
    // floating-point accumulation).
    std::map<std::pair<int32_t, int64_t>, Vec> weights;
    for (size_t k = 0; k < roots.size(); ++k) {
      // q_c = (rq - X)^2  =>  dq_c/dp_v = 2 (rq - X) * d rq / d p_v.
      const double outer = 2.0 * (rq[k] - targets[k]);
      if (outer == 0.0) continue;
      const Vec& var_grad = var_grads[k];
      for (VarId v : batch.variables()) {
        if (var_grad[v] == 0.0) continue;
        const PredVar& pv = ctx.arena->var(v);
        Vec& w = weights[{pv.table_id, pv.row}];
        if (w.empty()) w.assign(ctx.predictions->NumClasses(pv.table_id), 0.0);
        w[pv.cls] += outer * var_grad[v];
      }
    }
    if (weights.empty()) {
      out.note = "no violated complaints";
      out.encode_seconds = encode_timer.ElapsedSeconds();
      return out;
    }

    Vec q_grad(ctx.model->num_params(), 0.0);
    RAIN_RETURN_NOT_OK(AccumulateProbaGradients(*ctx.catalog, *ctx.model, weights,
                                                &q_grad, ctx.parallelism));
    out.encode_seconds = encode_timer.ElapsedSeconds();

    Timer rank_timer;
    InfluenceScorer scorer(ctx.model, ctx.train, ctx.influence);
    RAIN_RETURN_NOT_OK(scorer.Prepare(q_grad));
    out.scores = scorer.ScoreAll();
    out.cg_solution = scorer.solution();
    out.rank_seconds = rank_timer.ElapsedSeconds();
    return out;
  }
};

// ---------------------------------------------------------------------------
// TwoStep (Section 5.2): ILP-repair the prediction view, mark the changed
// predictions, q = -sum p_{t_i}(x_i), then one influence solve.
// ---------------------------------------------------------------------------
class TwoStepRanker : public Ranker {
 public:
  std::string name() const override { return "twostep"; }

  Result<RankOutput> Rank(const RankContext& ctx) override {
    RAIN_RETURN_NOT_OK(CheckContext(ctx, /*needs_complaints=*/true));
    Timer encode_timer;

    std::vector<IlpComplaint> ilp_complaints;
    for (const BoundComplaint& c : *ctx.complaints) {
      // TwoStep's ILP is discrete: a concretely-satisfied equality has a
      // trivial no-flip optimum, so skip satisfied complaints entirely.
      if (!c.violated || c.poly == kInvalidPoly) continue;
      IlpComplaint ic;
      ic.poly = c.poly;
      ic.sense = c.op == ComplaintOp::kEq
                     ? ConstraintSense::kEq
                     : (c.op == ComplaintOp::kLe ? ConstraintSense::kLe
                                                 : ConstraintSense::kGe);
      ic.rhs = c.target;
      ilp_complaints.push_back(ic);
    }
    RankOutput out;
    out.scores.assign(ctx.train->size(), 0.0);
    if (ilp_complaints.empty()) {
      out.note = "no violated complaints";
      out.encode_seconds = encode_timer.ElapsedSeconds();
      return out;
    }

    RAIN_ASSIGN_OR_RETURN(
        TiresiasEncoding enc,
        EncodeTiresias(ctx.arena, *ctx.predictions, ilp_complaints));
    IlpSolveOptions ilp_opts = ctx.ilp;
    if (ilp_opts.coupling_constraint < 0) {
      ilp_opts.coupling_constraint = enc.coupling_constraint;
    }
    // Multi-complaint encodings: hand every complaint constraint to the
    // solver so the multi-coupling decomposition can fix all their slacks
    // at once, and seed branch-and-bound with a greedily repaired warm
    // start in case decomposition is inapplicable.
    if (ilp_opts.coupling_constraints.empty()) {
      ilp_opts.coupling_constraints = enc.complaint_constraints;
    }
    if (ilp_opts.warm_start.empty()) {
      ilp_opts.warm_start = BuildTiresiasWarmStart(enc);
    }
    RAIN_ASSIGN_OR_RETURN(IlpSolution sol, SolveIlp(enc.problem, ilp_opts));
    if (!sol.optimal) out.note = "ilp budget exhausted; using incumbent";
    const std::vector<MarkedPrediction> marked = DecodeMarkedPredictions(enc, sol);

    // q = -sum over marked rows of p_{t_i}(x_i): seed weight -1 on the
    // assigned class (Section 5.2, marked-mispredictions-only encoding).
    std::map<std::pair<int32_t, int64_t>, Vec> weights;
    for (const MarkedPrediction& m : marked) {
      Vec& w = weights[{m.table_id, m.row}];
      if (w.empty()) w.assign(ctx.predictions->NumClasses(m.table_id), 0.0);
      w[m.assigned_class] += -1.0;
    }
    if (ctx.twostep_encode_all) {
      // Ablation: also encode the rows whose assignment the solver kept
      // (q = -sum over all assigned rows of p_{t_i}).
      for (const auto& rv : enc.rows) {
        for (size_t c = 0; c < rv.class_vars.size(); ++c) {
          const int var = rv.class_vars[c];
          if (var >= 0 && sol.values[var] &&
              static_cast<int>(c) == rv.current_class) {
            Vec& w = weights[{rv.table_id, rv.row}];
            if (w.empty()) w.assign(ctx.predictions->NumClasses(rv.table_id), 0.0);
            w[c] += -1.0;
          }
        }
      }
    }
    if (weights.empty()) {
      out.note = "ilp repair changed no predictions";
      out.encode_seconds = encode_timer.ElapsedSeconds();
      return out;
    }
    Vec q_grad(ctx.model->num_params(), 0.0);
    RAIN_RETURN_NOT_OK(AccumulateProbaGradients(*ctx.catalog, *ctx.model, weights,
                                                &q_grad, ctx.parallelism));
    out.encode_seconds = encode_timer.ElapsedSeconds();

    Timer rank_timer;
    InfluenceScorer scorer(ctx.model, ctx.train, ctx.influence);
    RAIN_RETURN_NOT_OK(scorer.Prepare(q_grad));
    out.scores = scorer.ScoreAll();
    out.cg_solution = scorer.solution();
    out.rank_seconds = rank_timer.ElapsedSeconds();
    return out;
  }
};

// ---------------------------------------------------------------------------
// Auto (Section 5.1 optimizer): per iteration, TwoStep when the repair is
// unique (all violated complaints are point complaints), else Holistic.
// ---------------------------------------------------------------------------
class AutoRanker : public Ranker {
 public:
  AutoRanker() : twostep_(MakeTwoStepRanker()), holistic_(MakeHolisticRanker()) {}

  std::string name() const override { return "auto"; }

  Result<RankOutput> Rank(const RankContext& ctx) override {
    RAIN_RETURN_NOT_OK(CheckContext(ctx, /*needs_complaints=*/true));
    const Approach approach = SelectApproach(*ctx.arena, *ctx.complaints);
    Ranker* chosen =
        approach == Approach::kTwoStep ? twostep_.get() : holistic_.get();
    RAIN_ASSIGN_OR_RETURN(RankOutput out, chosen->Rank(ctx));
    out.note = std::string("auto->") + chosen->name() +
               (out.note.empty() ? "" : "; " + out.note);
    return out;
  }

 private:
  std::unique_ptr<Ranker> twostep_;
  std::unique_ptr<Ranker> holistic_;
};

}  // namespace

std::unique_ptr<Ranker> MakeLossRanker() { return std::make_unique<LossRanker>(); }
std::unique_ptr<Ranker> MakeInfLossRanker() {
  return std::make_unique<InfLossRanker>();
}
std::unique_ptr<Ranker> MakeTwoStepRanker() {
  return std::make_unique<TwoStepRanker>();
}
std::unique_ptr<Ranker> MakeHolisticRanker() {
  return std::make_unique<HolisticRanker>();
}

std::unique_ptr<Ranker> MakeAutoRanker() { return std::make_unique<AutoRanker>(); }

Result<std::unique_ptr<Ranker>> MakeRanker(const std::string& name) {
  if (name == "loss") return MakeLossRanker();
  if (name == "infloss") return MakeInfLossRanker();
  if (name == "twostep") return MakeTwoStepRanker();
  if (name == "holistic") return MakeHolisticRanker();
  if (name == "auto") return MakeAutoRanker();
  return Status::InvalidArgument("unknown ranker '" + name + "'");
}

}  // namespace rain
