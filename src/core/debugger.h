#ifndef RAIN_CORE_DEBUGGER_H_
#define RAIN_CORE_DEBUGGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/deprecation.h"
#include "core/complaint.h"
#include "core/pipeline.h"
#include "core/ranker.h"

namespace rain {

/// A query and the complaints the user filed against its output. `query`
/// may be null when every complaint is a point complaint (predictions are
/// complained about directly, no SQL execution needed).
struct QueryComplaints {
  PlanPtr query;
  std::vector<ComplaintSpec> complaints;
};

struct DebugConfig {
  /// Records removed per train-rank-fix iteration (paper: 10).
  int top_k_per_iter = 10;
  /// Total explanation size |D| to produce.
  int max_deletions = 100;
  int max_iterations = 10000;
  /// Stop as soon as every complaint holds.
  bool stop_when_resolved = false;
  /// Worker count applied end-to-end across a train-rank-fix iteration:
  /// retraining (pipeline TrainConfig), the batched bind phase
  /// (`BindWorkload` per-query staging), the encode phase
  /// (`RelaxedPoly::GradientBatch` + `AccumulateProbaGradients` via
  /// `RankContext::parallelism`), influence scoring, and the CG
  /// solver. Inheritance is resolved in exactly one place —
  /// `DebugSessionBuilder::Build()` (which the `Debugger` shim also goes
  /// through): the pipeline's TrainConfig always tracks this value (so 1
  /// restores the exact sequential path), `influence.parallelism` inherits
  /// it when left at its default of 1, and `influence.cg.parallelism` in
  /// turn inherits `influence.parallelism` when left at 1.
  int parallelism = 1;
  /// Shard count for the training/influence pipeline; 0 (the default)
  /// keeps the unsharded legacy path. With num_shards >= 1,
  /// `DebugSessionBuilder::Build` installs a uniform `ShardPlan` on the
  /// pipeline: retraining, the CG Hessian-vector loop, and
  /// ScoreAll/SelfInfluenceAll run one task per shard with
  /// ordered-replay reductions, and the fix phase routes deletions to
  /// the owning shard. Deletion sequences (and every intermediate
  /// gradient/loss/HVP/score) are bitwise-identical to the sequential
  /// unsharded path at every shard count x worker count.
  int num_shards = 0;
  InfluenceOptions influence;
  IlpSolveOptions ilp;
  /// Forwarded to RankContext (ablation knobs).
  RelaxMode relax_mode = RelaxMode::kIndependent;
  bool twostep_encode_all = false;
  /// Incremental bind/encode caching (docs/architecture.md, "Incremental
  /// engine"): after the first bind the provenance arena persists across
  /// iterations; later bind phases re-execute only workload entries a
  /// delta invalidated and refresh the rest by re-evaluating their cached
  /// polynomials under the fresh predictions — bitwise-identical values
  /// (the provenance *structure* of the supported query class is
  /// prediction-independent; entries with model-dependent Sort/Limit
  /// plans re-execute every iteration). `false` restores the legacy
  /// fresh-arena-per-iteration bind.
  bool bind_cache = true;
};

/// Per-iteration phase timings and bookkeeping (Figures 5 and 12 report
/// Train / Encode / Rank).
struct IterationStats {
  double train_seconds = 0.0;
  double query_seconds = 0.0;   // debug-mode provenance capture
  double encode_seconds = 0.0;  // grad q construction / ILP solve
  double rank_seconds = 0.0;    // CG Hessian solve + scoring
  int violated_complaints = 0;
  size_t deletions_after = 0;
  std::string note;
};

struct DebugReport {
  /// Training-record ids in deletion order — the explanation D.
  std::vector<size_t> deletions;
  std::vector<IterationStats> iterations;
  /// True if the last retraining satisfied every complaint.
  bool complaints_resolved = false;
};

/// \brief Legacy blocking facade over `DebugSession` (see core/session.h).
///
/// Each iteration retrains the model on the surviving training records
/// (warm start), reruns every complained-about query in debug mode,
/// re-binds the complaints to the fresh provenance, ranks training
/// records with the configured approach, and deletes the top-k. Deleted
/// records accumulate into the explanation D.
///
/// `Run` executes the whole loop as one opaque call with no stepping,
/// streaming, cancellation, or workload mutation. New code should build a
/// `DebugSession` via `DebugSessionBuilder` instead; `Run` is a thin shim
/// over it and produces identical deletion sequences.
class Debugger {
 public:
  /// `pipeline` is borrowed; `ranker` is owned.
  Debugger(Query2Pipeline* pipeline, std::unique_ptr<Ranker> ranker,
           DebugConfig config = DebugConfig());

  RAIN_DEPRECATED("use DebugSessionBuilder / DebugSession::RunToCompletion")
  Result<DebugReport> Run(const std::vector<QueryComplaints>& workload);

  const Ranker& ranker() const { return *ranker_; }

 private:
  Query2Pipeline* pipeline_;
  std::unique_ptr<Ranker> ranker_;
  DebugConfig config_;
};

}  // namespace rain

#endif  // RAIN_CORE_DEBUGGER_H_
