#ifndef RAIN_CORE_SESSION_H_
#define RAIN_CORE_SESSION_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/complaint.h"
#include "core/debugger.h"
#include "core/pipeline.h"
#include "core/ranker.h"

namespace rain {

/// The phases of one train-rank-fix iteration (Section 5.1), in execution
/// order. Cancellation and deadlines are checked at every phase boundary.
enum class DebugPhase : uint8_t { kTrain = 0, kBind, kRank, kFix };

/// Human-readable phase name ("train", "bind", "rank", "fix").
const char* DebugPhaseName(DebugPhase phase);

/// Outcome of one `DebugSession::Step()` call.
enum class StepStatus : uint8_t {
  /// A full train-rank-fix iteration ran and the session can continue.
  kIterated,
  /// Every complaint holds and `stop_when_resolved` is set; terminal.
  kResolved,
  /// The ranking produced nothing deletable (training set exhausted);
  /// terminal.
  kNoProgress,
  /// `max_deletions` records have been deleted; terminal.
  kBudgetExhausted,
  /// `max_iterations` iterations have run; terminal.
  kIterationLimit,
  /// `Cancel()` was observed at a phase boundary; terminal. The report so
  /// far (including the partially timed iteration) remains valid.
  kCancelled,
  /// The deadline passed at a phase boundary; terminal like kCancelled,
  /// but reopened by `set_deadline` with a future deadline.
  kDeadlineExceeded,
  /// `Step()` on an already-finished session: a no-op.
  kAlreadyFinished,
};

/// Human-readable status name (e.g. "iterated", "resolved").
const char* StepStatusName(StepStatus status);

/// Result of one `Step()`: what happened, the iteration's phase timings,
/// and the records deleted by this step (also appended to the session
/// report's cumulative deletion sequence).
struct StepResult {
  StepStatus status = StepStatus::kAlreadyFinished;
  IterationStats stats;
  std::vector<size_t> new_deletions;
  /// True when the step's bind phase found every complaint satisfied.
  bool complaints_resolved = false;

  /// True when the step completed a full train-rank-fix iteration.
  /// Interrupted steps (kCancelled / kDeadlineExceeded) may still have
  /// recorded a partial iteration in the session report; no-op steps
  /// recorded nothing.
  bool advanced() const {
    return status == StepStatus::kIterated || status == StepStatus::kResolved ||
           status == StepStatus::kNoProgress;
  }
};

/// Streaming progress interface. Callbacks fire synchronously on the
/// stepping thread, in phase order within an iteration; observers are
/// borrowed and must outlive the session. Observers may call
/// `DebugSession::Cancel()` (it only sets a flag), but must not mutate the
/// session otherwise from inside a callback.
class DebugObserver {
 public:
  virtual ~DebugObserver() = default;
  /// An iteration is about to run; `report` is the state so far.
  virtual void OnIterationStart(int iteration, const DebugReport& report) {
    (void)iteration;
    (void)report;
  }
  /// A phase finished. `seconds` is the phase wall time (for kFix the
  /// deletion bookkeeping time, not part of the Fig. 5 breakdown).
  virtual void OnPhaseComplete(int iteration, DebugPhase phase, double seconds) {
    (void)iteration;
    (void)phase;
    (void)seconds;
  }
  /// A training record was deleted during the fix phase, with the removal
  /// score that ranked it.
  virtual void OnDeletion(int iteration, size_t record, double score) {
    (void)iteration;
    (void)record;
    (void)score;
  }
};

/// Extra stop predicate for `RunToCompletion`: checked after every
/// iteration; returning true pauses the run (the session itself is NOT
/// finished and can be stepped or resumed later).
using StopCondition = std::function<bool(const DebugReport&)>;

/// A StopCondition pausing after `n` more iterations.
StopCondition StopAfterIterations(int n);
/// A StopCondition pausing once the cumulative explanation reaches `n`
/// deletions.
StopCondition StopAfterDeletions(size_t n);

/// \brief Batched multi-query bind (Section 6.5): executes every
/// complained-about query in debug mode and binds all complaints against
/// the fresh provenance, dispatching the per-query work across
/// `parallelism` workers.
///
/// Each query captures provenance into a thread-local staging `PolyArena`
/// (sharing only the read-only catalog and prediction views), then the
/// staging arenas are spliced into the pipeline's shared arena in workload
/// order with a single ordered pass (`PolyArena::Splice`). The resulting
/// arena, the order of the returned `BoundComplaint`s, and their remapped
/// `poly` ids are therefore bitwise-identical to sequential execution for
/// every `parallelism` value — multi-complaint workloads share one
/// provenance pass without giving up determinism.
///
/// Does not reset the pipeline's debug state; callers that want a fresh
/// arena (as `DebugSession::BindPhase` does each iteration) call
/// `Query2Pipeline::ResetDebugState` first. On error, the first failing
/// workload entry (in workload order) wins, regardless of scheduling.
///
/// \param pipeline the trained pipeline whose shared arena receives the
///        spliced provenance.
/// \param workload one entry per query with its complaints; entries with a
///        null `query` bind point complaints only.
/// \param parallelism worker count; <= 1 runs inline on the calling thread.
/// \return all bound complaints, in workload order (complaint order within
///         an entry preserved).
Result<std::vector<BoundComplaint>> BindWorkload(
    Query2Pipeline* pipeline, const std::vector<QueryComplaints>& workload,
    int parallelism);

/// \brief A resumable train-rank-fix debugging session (Section 5.1).
///
/// Where the legacy `Debugger::Run` executed the whole loop as one opaque
/// blocking call, a session makes the loop a first-class object:
///
///   - `Step()` runs exactly one train-rank-fix iteration and reports what
///     happened; stepping a finished session is a safe no-op.
///   - `RunToCompletion()` drives `Step()` until a terminal state (or an
///     optional `StopCondition` pauses it).
///   - `Cancel()` (thread-safe) and deadlines stop the loop at the next
///     phase boundary, leaving a valid partial `DebugReport`.
///   - `DebugObserver`s stream per-phase progress (the Fig. 5/12 timing
///     breakdowns) while the loop runs.
///   - `AddComplaints` / `RemoveQuery` mutate the workload between steps,
///     so Section 6.5 multi-complaint workloads can be grown incrementally
///     instead of re-run from scratch.
///
/// Sessions are created by `DebugSessionBuilder`. The pipeline is borrowed
/// and must outlive the session; the session owns its ranker (unless built
/// with a borrowed one by the `Debugger` compatibility shim).
class DebugSession {
 public:
  DebugSession(const DebugSession&) = delete;
  DebugSession& operator=(const DebugSession&) = delete;

  /// Runs one train-rank-fix iteration: train -> bind -> rank -> fix, with
  /// observer callbacks after each phase and cancellation/deadline checks
  /// at every phase boundary. Returns an error Status only on pipeline /
  /// ranker failures; loop-control outcomes (converged, cancelled,
  /// budget) are reported through `StepResult::status`.
  Result<StepResult> Step();

  /// Steps until the session finishes or `stop` (if provided) returns
  /// true. Returns a copy of the report so far; the session stays usable
  /// (resume by calling again, or mutate the workload in between).
  Result<DebugReport> RunToCompletion(const StopCondition& stop = StopCondition());

  /// Requests cancellation; safe to call from any thread or from observer
  /// callbacks. Observed at the next phase boundary.
  void Cancel() { cancel_requested_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_requested_.load(std::memory_order_relaxed);
  }

  /// Sets / replaces the deadline. A future deadline reopens a session
  /// that finished with kDeadlineExceeded.
  void set_deadline(std::chrono::steady_clock::time_point deadline);
  void clear_deadline();

  /// Appends a query+complaints batch to the workload, returning its slot
  /// index. Reopens a session that finished with kResolved (the new
  /// complaints may be violated).
  size_t AddComplaints(QueryComplaints batch);
  /// Removes the workload entry at `index` (later slots shift down by
  /// one). Returns false when out of range.
  bool RemoveQuery(size_t index);
  const std::vector<QueryComplaints>& workload() const { return workload_; }

  /// The cumulative report: deletion sequence (explanation D), one
  /// IterationStats per (possibly partial) iteration, resolution flag.
  const DebugReport& report() const { return report_; }
  /// The resolved configuration (after parallelism inheritance).
  const DebugConfig& config() const { return config_; }
  /// True once a terminal StepStatus was reached.
  bool finished() const { return finished_; }
  /// The terminal status; kAlreadyFinished until `finished()`.
  StepStatus finish_status() const { return finish_status_; }
  int iterations_completed() const { return iterations_completed_; }
  const Ranker& ranker() const { return *ranker_; }
  Query2Pipeline* pipeline() { return pipeline_; }

 private:
  friend class DebugSessionBuilder;

  DebugSession(Query2Pipeline* pipeline, std::unique_ptr<Ranker> owned_ranker,
               Ranker* ranker, DebugConfig config,
               std::vector<QueryComplaints> workload,
               std::vector<DebugObserver*> observers,
               std::optional<std::chrono::steady_clock::time_point> deadline);

  // --- The four phases of one iteration (split out of the legacy
  // monolithic Debugger::Run so a later async pipeline can overlap them).
  /// (Re)trains on surviving records, warm start.
  Status TrainPhase(IterationStats* stats);
  /// Re-runs every complained-about query in debug mode against a fresh
  /// arena and binds all complaints to the new provenance. The per-query
  /// executions are batched through `BindWorkload` at the session's
  /// parallelism; results are bitwise-independent of the worker count.
  Result<std::vector<BoundComplaint>> BindPhase(IterationStats* stats);
  /// Ranks training records with the configured approach.
  Result<RankOutput> RankPhase(const std::vector<BoundComplaint>& bound,
                               IterationStats* stats);
  /// Deletes the top-k active records by score; returns the count removed
  /// and streams OnDeletion callbacks.
  int FixPhase(const RankOutput& ranked, int iteration, StepResult* result);

  /// Cancel/deadline check at a phase boundary. When interrupted
  /// mid-iteration, records the partial stats (note says after which
  /// phase) and finishes the session; returns true if interrupted.
  bool CheckInterrupted(DebugPhase last_phase, IterationStats* stats,
                        StepResult* result);

  void Finish(StepStatus status) {
    finished_ = true;
    finish_status_ = status;
  }

  void NotifyIterationStart(int iteration);
  void NotifyPhaseComplete(int iteration, DebugPhase phase, double seconds);

  Query2Pipeline* pipeline_;
  std::unique_ptr<Ranker> owned_ranker_;
  Ranker* ranker_;  // == owned_ranker_.get() unless borrowed (shim)
  DebugConfig config_;
  std::vector<QueryComplaints> workload_;
  std::vector<DebugObserver*> observers_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;

  DebugReport report_;
  int iterations_completed_ = 0;
  bool finished_ = false;
  StepStatus finish_status_ = StepStatus::kAlreadyFinished;
  std::atomic<bool> cancel_requested_{false};
};

/// \brief Fluent constructor for `DebugSession`.
///
/// Replaces the flat `DebugConfig` field soup at call sites:
///
///   RAIN_ASSIGN_OR_RETURN(auto session,
///       DebugSessionBuilder(&pipeline)
///           .ranker("holistic")
///           .top_k_per_iter(10)
///           .max_deletions(100)
///           .parallelism(8)
///           .workload({qc})
///           .Build());
///   RAIN_ASSIGN_OR_RETURN(DebugReport report, session->RunToCompletion());
///
/// `Build()` is also the single place where the session-level
/// `parallelism` value is inherited by the finer-grained knobs: it fans
/// out to the pipeline's TrainConfig (via `Query2Pipeline::set_parallelism`),
/// to `InfluenceOptions::parallelism`, and to `CgOptions::parallelism`,
/// each only when the finer knob was left at its default of 1.
class DebugSessionBuilder {
 public:
  explicit DebugSessionBuilder(Query2Pipeline* pipeline) : pipeline_(pipeline) {}

  /// The ranking strategy (required unless `shared_ranker` is used).
  DebugSessionBuilder& ranker(std::unique_ptr<Ranker> ranker) {
    owned_ranker_ = std::move(ranker);
    borrowed_ranker_ = nullptr;
    ranker_status_ = Status::OK();  // installing a ranker supersedes a
                                    // failed ranker(name) attempt
    return *this;
  }
  /// Convenience: ranker by factory name ("loss", "infloss", "twostep",
  /// "holistic", "auto"); unknown names surface as a Build() error.
  DebugSessionBuilder& ranker(const std::string& name);
  /// A borrowed ranker the caller keeps ownership of (must outlive the
  /// session). Used by the `Debugger::Run` compatibility shim, whose
  /// ranker can span multiple Run calls.
  DebugSessionBuilder& shared_ranker(Ranker* ranker) {
    borrowed_ranker_ = ranker;
    owned_ranker_.reset();
    ranker_status_ = Status::OK();
    return *this;
  }

  /// Records removed per train-rank-fix iteration (paper: 10).
  DebugSessionBuilder& top_k_per_iter(int v) {
    config_.top_k_per_iter = v;
    return *this;
  }
  /// Total explanation size |D| to produce.
  DebugSessionBuilder& max_deletions(int v) {
    config_.max_deletions = v;
    return *this;
  }
  DebugSessionBuilder& max_iterations(int v) {
    config_.max_iterations = v;
    return *this;
  }
  /// Stop as soon as every complaint holds.
  DebugSessionBuilder& stop_when_resolved(bool v = true) {
    config_.stop_when_resolved = v;
    return *this;
  }
  /// Worker count applied end-to-end across an iteration; see class
  /// comment for the inheritance rule.
  DebugSessionBuilder& parallelism(int v) {
    config_.parallelism = v;
    return *this;
  }
  DebugSessionBuilder& influence(const InfluenceOptions& v) {
    config_.influence = v;
    return *this;
  }
  DebugSessionBuilder& ilp(const IlpSolveOptions& v) {
    config_.ilp = v;
    return *this;
  }
  /// Holistic relaxation rule (ablation knob).
  DebugSessionBuilder& relax_mode(RelaxMode v) {
    config_.relax_mode = v;
    return *this;
  }
  /// TwoStep q encoding over every ILP-touched row (ablation knob).
  DebugSessionBuilder& twostep_encode_all(bool v = true) {
    config_.twostep_encode_all = v;
    return *this;
  }
  /// Bulk import of a legacy `DebugConfig` (compatibility shim and
  /// config-sweeping benches); individual setters may refine it after.
  DebugSessionBuilder& config(const DebugConfig& c) {
    config_ = c;
    return *this;
  }

  /// Registers a streaming observer (borrowed; repeatable).
  DebugSessionBuilder& observer(DebugObserver* obs) {
    if (obs != nullptr) observers_.push_back(obs);
    return *this;
  }
  /// Absolute deadline checked between phases.
  DebugSessionBuilder& deadline(std::chrono::steady_clock::time_point tp) {
    deadline_ = tp;
    return *this;
  }
  /// Relative deadline in seconds from Build() time.
  DebugSessionBuilder& timeout_seconds(double seconds);

  /// Replaces the initial workload.
  DebugSessionBuilder& workload(std::vector<QueryComplaints> w) {
    workload_ = std::move(w);
    return *this;
  }
  /// Appends one query+complaints batch to the initial workload.
  DebugSessionBuilder& add_complaints(QueryComplaints batch) {
    workload_.push_back(std::move(batch));
    return *this;
  }

  /// Validates the configuration, resolves parallelism inheritance, and
  /// installs the session-level worker count on the pipeline.
  Result<std::unique_ptr<DebugSession>> Build();

 private:
  Query2Pipeline* pipeline_;
  std::unique_ptr<Ranker> owned_ranker_;
  Ranker* borrowed_ranker_ = nullptr;
  Status ranker_status_;  // deferred error from ranker(name)
  DebugConfig config_;
  std::vector<QueryComplaints> workload_;
  std::vector<DebugObserver*> observers_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::optional<double> timeout_seconds_;
};

}  // namespace rain

#endif  // RAIN_CORE_SESSION_H_
