#ifndef RAIN_CORE_SESSION_H_
#define RAIN_CORE_SESSION_H_

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/deprecation.h"
#include "common/task_graph.h"
#include "core/complaint.h"
#include "core/debugger.h"
#include "core/pipeline.h"
#include "core/ranker.h"
#include "incremental/update.h"

namespace rain {

/// Result of a speculative train task (defined in session.cc).
struct SpecOutcome;

/// The phases of one train-rank-fix iteration (Section 5.1), in execution
/// order. Cancellation and deadlines are checked at every phase boundary
/// and additionally polled *inside* the long train / rank loops (one poll
/// per L-BFGS iteration, per CG Hessian-vector product, and per scored
/// record), so a stuck solve no longer delays a stop by a whole phase.
enum class DebugPhase : uint8_t { kTrain = 0, kBind, kRank, kFix };

/// Human-readable phase name ("train", "bind", "rank", "fix").
const char* DebugPhaseName(DebugPhase phase);

/// Outcome of one `DebugSession::Step()` call.
enum class StepStatus : uint8_t {
  /// A full train-rank-fix iteration ran and the session can continue.
  kIterated,
  /// Every complaint holds and `stop_when_resolved` is set; terminal.
  kResolved,
  /// The ranking produced nothing deletable (training set exhausted);
  /// terminal.
  kNoProgress,
  /// `max_deletions` records have been deleted; terminal.
  kBudgetExhausted,
  /// `max_iterations` iterations have run; terminal.
  kIterationLimit,
  /// `Cancel()` was observed at a phase boundary (or inside a phase loop);
  /// terminal. The report so far (including the partially timed
  /// iteration) remains valid.
  kCancelled,
  /// The deadline passed at a phase boundary; terminal like kCancelled,
  /// but reopened by `set_deadline` with a future deadline.
  kDeadlineExceeded,
  /// `Step()` on an already-finished session: a no-op.
  kAlreadyFinished,
};

/// Human-readable status name (e.g. "iterated", "resolved").
const char* StepStatusName(StepStatus status);

/// Result of one `Step()`: what happened, the iteration's phase timings,
/// and the records deleted by this step (also appended to the session
/// report's cumulative deletion sequence).
struct StepResult {
  StepStatus status = StepStatus::kAlreadyFinished;
  IterationStats stats;
  std::vector<size_t> new_deletions;
  /// True when the step's bind phase found every complaint satisfied.
  bool complaints_resolved = false;

  /// True when the step completed a full train-rank-fix iteration.
  /// Interrupted steps (kCancelled / kDeadlineExceeded) may still have
  /// recorded a partial iteration in the session report; no-op steps
  /// recorded nothing.
  bool advanced() const {
    return status == StepStatus::kIterated || status == StepStatus::kResolved ||
           status == StepStatus::kNoProgress;
  }
};

/// Streaming progress interface. Callbacks fire synchronously on the
/// stepping thread — the caller's thread for `Step()` /
/// `RunToCompletion()`, the session's driver thread for `StepAsync()` /
/// `RunToCompletionAsync()` — and always in deterministic phase order
/// within an iteration, identical between the synchronous and pipelined
/// paths (speculative work never notifies; its timing is delivered at the
/// phase's canonical slot when it commits). Delivery is serialized under
/// a session-level mutex. Observers are borrowed and must outlive the
/// session.
///
/// ## Re-entrancy contract (enforced)
///
/// Observers must NOT re-enter the session from inside a callback: the
/// callback already runs under the session's observer mutex on the
/// stepping thread, so a nested `Step()` / `RunToCompletion()` /
/// `AddComplaints()` / `RemoveQuery()` / `set_deadline()` would deadlock
/// or corrupt in-flight stage state. The session asserts (RAIN_CHECK,
/// fatal in every build mode) that these entry points are never called
/// from the notifying thread while a callback is being delivered — which
/// is what makes service-side per-session metrics observers safe to
/// register unconditionally. The one sanctioned re-entry is
/// `DebugSession::Cancel()` (it only sets a flag, honored on the async
/// path too); reading `report()` state already handed to the callback is
/// likewise fine.
class DebugObserver {
 public:
  virtual ~DebugObserver() = default;
  /// An iteration is about to run; `report` is the state so far.
  virtual void OnIterationStart(int iteration, const DebugReport& report) {
    (void)iteration;
    (void)report;
  }
  /// A phase finished. `seconds` is the phase wall time (for kFix the
  /// deletion bookkeeping time, not part of the Fig. 5 breakdown). For a
  /// committed speculative train this is the overlapped task's own wall
  /// time, delivered at the train slot of its iteration.
  virtual void OnPhaseComplete(int iteration, DebugPhase phase, double seconds) {
    (void)iteration;
    (void)phase;
    (void)seconds;
  }
  /// A training record was deleted during the fix phase, with the removal
  /// score that ranked it.
  virtual void OnDeletion(int iteration, size_t record, double score) {
    (void)iteration;
    (void)record;
    (void)score;
  }
};

/// \brief The execution-resource knobs of a debug session, collected into
/// one value (PR 6 API redesign).
///
/// PRs 1-5 accreted these one builder setter at a time (`parallelism`,
/// `set_num_shards`, `deadline` / `timeout_seconds`, `observer`); this
/// struct collapses them so the same value can configure a standalone
/// `DebugSessionBuilder` (via `set_execution`) and a `DebugService`
/// session admission verbatim. The legacy setters survive as
/// `RAIN_DEPRECATED` shims with identical semantics (bitwise-equal
/// sessions; tested).
///
/// All fields are plain data; the fluent setters just make call sites
/// read like the old builder chains.
struct ExecutionOptions {
  /// Worker count applied end-to-end across an iteration (see
  /// `DebugConfig::parallelism` for the inheritance rule).
  int parallelism = 1;
  /// Shard count for the training/influence pipeline; 0 adopts whatever
  /// plan the pipeline already has installed (none = unsharded).
  int num_shards = 0;
  /// Absolute deadline checked between phases and inside phase loops.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Relative deadline in seconds from Build() time; combines with
  /// `deadline` by taking the earlier of the two.
  std::optional<double> timeout_seconds;
  /// Optional parent cancellation token: the session's own token becomes
  /// a child of it, so cancelling the parent (a service shutting down, a
  /// client connection dying) stops the session — while the session's
  /// `Cancel()` still stops only itself. Borrowed; must outlive Build().
  const CancellationToken* parent_cancel = nullptr;
  /// Streaming observers (borrowed; must outlive the session).
  std::vector<DebugObserver*> observers;

  ExecutionOptions& set_parallelism(int v) {
    parallelism = v;
    return *this;
  }
  ExecutionOptions& set_num_shards(int v) {
    num_shards = v;
    return *this;
  }
  ExecutionOptions& set_deadline(std::chrono::steady_clock::time_point tp) {
    deadline = tp;
    return *this;
  }
  ExecutionOptions& set_timeout_seconds(double seconds) {
    timeout_seconds = seconds;
    return *this;
  }
  ExecutionOptions& set_parent_cancel(const CancellationToken* token) {
    parent_cancel = token;
    return *this;
  }
  ExecutionOptions& add_observer(DebugObserver* obs) {
    if (obs != nullptr) observers.push_back(obs);
    return *this;
  }
};

/// Extra stop predicate for `RunToCompletion`: checked after every
/// iteration; returning true pauses the run (the session itself is NOT
/// finished and can be stepped or resumed later).
using StopCondition = std::function<bool(const DebugReport&)>;

/// A StopCondition pausing after `n` more iterations.
StopCondition StopAfterIterations(int n);
/// A StopCondition pausing once the cumulative explanation reaches `n`
/// deletions.
StopCondition StopAfterDeletions(size_t n);

/// Knobs for the pipelined stepping modes (`StepAsync`,
/// `RunToCompletionAsync`).
struct AsyncOptions {
  /// Overlap iterations: while iteration *i* runs its rank phase, start
  /// iteration *i+1*'s train phase speculatively on a snapshot of the
  /// training set with the *predicted* fix deletions applied. The
  /// speculation is validated against the actual fix deletions and
  /// replayed when it was wrong, so the deletion sequence stays bitwise
  /// identical to synchronous stepping either way. `false` keeps the
  /// async entry points but steps with strict phase barriers.
  bool speculate = true;
};

/// Bookkeeping for the speculation pipeline (cumulative per session).
struct AsyncStats {
  /// Speculative train tasks handed to the task graph.
  int speculations_launched = 0;
  /// Speculations whose predicted deletions matched the fix phase exactly
  /// and whose trained parameters were adopted (no synchronous retrain).
  int speculations_committed = 0;
  /// Speculations invalidated (or failed) and replayed synchronously.
  int speculations_replayed = 0;
  /// Iterations whose fix phase completed only after the *next*
  /// iteration's speculative train had already started — the observable
  /// phase overlap the pipeline exists for.
  int overlapped_iterations = 0;
};

/// \brief Batched multi-query bind (Section 6.5): executes every
/// complained-about query in debug mode and binds all complaints against
/// the fresh provenance, dispatching the per-query work across
/// `parallelism` workers.
///
/// Each query captures provenance into a thread-local staging `PolyArena`
/// (sharing only the read-only catalog and prediction views), then the
/// staging arenas are spliced into the pipeline's shared arena in workload
/// order with a single ordered pass (`PolyArena::Splice`). The resulting
/// arena, the order of the returned `BoundComplaint`s, and their remapped
/// `poly` ids are therefore bitwise-identical to sequential execution for
/// every `parallelism` value — multi-complaint workloads share one
/// provenance pass without giving up determinism.
///
/// Does not reset the pipeline's debug state; callers that want a fresh
/// arena (as `DebugSession::BindPhase` does each iteration) call
/// `Query2Pipeline::ResetDebugState` first. On error, the first failing
/// workload entry (in workload order) wins, regardless of scheduling.
///
/// \param pipeline the trained pipeline whose shared arena receives the
///        spliced provenance.
/// \param workload one entry per query with its complaints; entries with a
///        null `query` bind point complaints only.
/// \param parallelism worker count; <= 1 runs inline on the calling thread.
/// \return all bound complaints, in workload order (complaint order within
///         an entry preserved).
Result<std::vector<BoundComplaint>> BindWorkload(
    Query2Pipeline* pipeline, const std::vector<QueryComplaints>& workload,
    int parallelism);

/// `BindWorkload`, but keeping the per-entry grouping: element i holds the
/// bound complaints of workload[i] (ids remapped into the shared arena).
/// Concatenating the entries reproduces `BindWorkload`'s flat result
/// exactly. This is the primitive behind the session's bind cache: a
/// delta bind runs it over just the stale entries and splices their
/// staging arenas append-only into the persistent arena.
Result<std::vector<std::vector<BoundComplaint>>> BindWorkloadEntries(
    Query2Pipeline* pipeline, const std::vector<QueryComplaints>& workload,
    int parallelism);

/// Cumulative bind/encode cache counters for one session (see
/// docs/architecture.md, "Incremental engine").
struct BindCacheStats {
  /// Workload entries executed + bound (full binds count every entry).
  size_t entries_rebound = 0;
  /// Workload entries served from the cache (concrete values refreshed by
  /// re-evaluating their polynomials, no query execution).
  size_t entries_reused = 0;
  /// Full rebinds: the initial priming bind, arena compactions, and
  /// sessions with the cache disabled.
  size_t full_binds = 0;
  /// Bound complaints retracted by RemoveQuery / remove_queries deltas
  /// (their arena nodes are tombstoned in place).
  size_t tombstoned_complaints = 0;
};

/// \brief A resumable train-rank-fix debugging session (Section 5.1).
///
/// Where the legacy `Debugger::Run` executed the whole loop as one opaque
/// blocking call, a session makes the loop a first-class object:
///
///   - `Step()` runs exactly one train-rank-fix iteration and reports what
///     happened; stepping a finished session is a safe no-op.
///   - `RunToCompletion()` drives `Step()` until a terminal state (or an
///     optional `StopCondition` pauses it).
///   - `StepAsync()` / `RunToCompletionAsync()` run the same loop on a
///     session-owned driver thread and return futures, pipelining
///     iterations through the task graph (see below).
///   - `Cancel()` (thread-safe) and deadlines stop the loop at the next
///     phase boundary — or mid-phase, via the cancellation token plumbed
///     into the training and CG loops — leaving a valid partial
///     `DebugReport`.
///   - `DebugObserver`s stream per-phase progress (the Fig. 5/12 timing
///     breakdowns) while the loop runs.
///   - `AddComplaints` / `RemoveQuery` mutate the workload between steps,
///     so Section 6.5 multi-complaint workloads can be grown incrementally
///     instead of re-run from scratch.
///
/// ## Stages and the speculation/replay pipeline
///
/// An iteration is executed as four explicit stages with declared inputs
/// and outputs (see `Stages()`): train consumes the active training set
/// and produces model parameters + fresh prediction views; bind consumes
/// the workload + views and produces bound complaints over a fresh arena;
/// rank consumes the bound complaints and produces removal scores; fix
/// consumes the scores and produces deletions (mutating the active set).
/// The only cross-iteration edge is fix(i) → train(i+1), and the
/// pipelined driver breaks it *speculatively*: when rank(i) starts, it
/// predicts fix(i)'s deletions from the previous iteration's scores
/// (exactly replaying the fix selection rule; no prior scores = predict
/// none), applies them to a private snapshot of the training set, and
/// trains a `Model::Clone()` on that snapshot as a task-graph task
/// overlapping the CG solves. After fix(i) runs for real, the prediction
/// is validated against the actual deletion list: on an exact match the
/// clone's parameters are adopted (bitwise what a synchronous retrain
/// would have produced — same warm start, same active rows, same
/// deterministic L-BFGS); on a mismatch the speculation is cancelled,
/// discarded, and train(i+1) replays synchronously. Either way the
/// deletion sequence is bitwise-identical to `RunToCompletion`.
///
/// While an async drive is in flight, `Step()`/`RunToCompletion()` return
/// an error and the mutating entry points (`AddComplaints`, `RemoveQuery`,
/// `set_deadline`, `clear_deadline`) must not be called — only `Cancel()`
/// stays safe from any thread; everything else waits for the future.
///
/// Sessions are created by `DebugSessionBuilder`. The pipeline is borrowed
/// and must outlive the session; the session owns its ranker (unless built
/// with a borrowed one by the `Debugger` compatibility shim).
class DebugSession {
 public:
  DebugSession(const DebugSession&) = delete;
  DebugSession& operator=(const DebugSession&) = delete;
  /// Cancels and joins any in-flight async work.
  ~DebugSession();

  /// Declared dataflow of one iteration, in execution order.
  struct StageSpec {
    DebugPhase phase;
    const char* inputs;
    const char* outputs;
  };
  /// The four stages `Step()` drives; the strings document each stage's
  /// consumed/produced state for introspection and tests.
  static const std::array<StageSpec, 4>& Stages();

  /// Runs one train-rank-fix iteration: train -> bind -> rank -> fix, with
  /// observer callbacks after each phase and cancellation/deadline checks
  /// at every phase boundary. Returns an error Status only on pipeline /
  /// ranker failures; loop-control outcomes (converged, cancelled,
  /// budget) are reported through `StepResult::status`.
  Result<StepResult> Step();

  /// Steps until the session finishes or `stop` (if provided) returns
  /// true. Returns a copy of the report so far; the session stays usable
  /// (resume by calling again, or mutate the workload in between).
  Result<DebugReport> RunToCompletion(const StopCondition& stop = StopCondition());

  /// One iteration on the session's driver thread; with
  /// `options.speculate` it also launches the next iteration's
  /// speculative train during the rank phase (consumed by whichever step
  /// runs next). At most one async call may be in flight per session; a
  /// second call resolves immediately with an error.
  Future<Result<StepResult>> StepAsync(AsyncOptions options = AsyncOptions());

  /// `RunToCompletion` on the session's driver thread, pipelining
  /// iterations (see class comment). The deletion sequence is
  /// bitwise-identical to the synchronous path for every worker count and
  /// speculation setting.
  Future<Result<DebugReport>> RunToCompletionAsync(
      StopCondition stop = StopCondition(), AsyncOptions options = AsyncOptions());

  /// True while an async step/run is executing on the driver thread.
  bool async_in_flight() const {
    return async_active_.load(std::memory_order_acquire);
  }
  /// Speculation counters (read after the async future resolved).
  const AsyncStats& async_stats() const { return async_stats_; }

  /// Requests cancellation; safe to call from any thread or from observer
  /// callbacks. Observed at the next phase boundary, and inside the
  /// train / rank loops within one optimizer iteration / CG product.
  void Cancel() { cancel_token_.Cancel(); }
  bool cancel_requested() const { return cancel_token_.cancelled(); }
  /// The session's cancellation token (parent of every token handed to
  /// phase kernels and speculative tasks).
  const CancellationToken& cancel_token() const { return cancel_token_; }

  /// Sets / replaces the deadline. A future deadline reopens a session
  /// that finished with kDeadlineExceeded. Like the workload mutators,
  /// must not be called while an async drive is in flight (use `Cancel()`
  /// for cross-thread interruption).
  void set_deadline(std::chrono::steady_clock::time_point deadline);
  void clear_deadline();

  /// Appends a query+complaints batch to the workload, returning its slot
  /// index. Reopens a session that finished with kResolved (the new
  /// complaints may be violated). Must not be called while an async drive
  /// is in flight.
  size_t AddComplaints(QueryComplaints batch);
  /// Removes the workload entry at `index` (later slots shift down by
  /// one). Returns false when out of range.
  bool RemoveQuery(size_t index);
  const std::vector<QueryComplaints>& workload() const { return workload_; }

  /// \brief Applies a batch of deltas (label edits, row activation flips,
  /// workload mutations) and prepares the session for an O(delta)
  /// redebug (src/incremental/update.h).
  ///
  /// On the incremental path the session keeps its provenance arena, bind
  /// cache, encode cache, and warm model parameters: the next `Step()`
  /// re-executes only workload entries the batch invalidated, refreshes
  /// cached complaints by re-evaluating their polynomials, and retrains
  /// warm from the current parameters. On the full path every cache is
  /// dropped, the arena is reset, and the model is restored to the
  /// parameters captured at session construction (a cold retrain — the
  /// exact from-scratch baseline the equivalence tests compare against).
  /// `UpdateOptions::policy` picks the path; kAuto thresholds on the
  /// touched-row fraction.
  ///
  /// Determinism contract: for a given post-update state, the incremental
  /// path's redebug is bitwise-identical at every worker/shard count (the
  /// standard session discipline). Incremental vs full converge to the
  /// same deletion sequence; their floating-point trajectories may differ
  /// because warm- and cold-started L-BFGS legitimately take different
  /// paths to the same optimum (see docs/architecture.md).
  ///
  /// Reopens a session that finished kResolved when the batch is
  /// non-empty. Like the other mutators: must not be called while an
  /// async drive is in flight, nor from an observer callback. Errors
  /// (out-of-range rows/labels/indices) leave the session unchanged.
  Result<UpdateReport> ApplyUpdate(const UpdateBatch& batch,
                                   const UpdateOptions& options = UpdateOptions());

  /// Append-only journal of every delta applied (`AddComplaints`,
  /// `RemoveQuery`, `ApplyUpdate`).
  const DeltaLog& delta_log() const { return delta_log_; }
  /// Cumulative bind-cache counters (the satellite regression tests
  /// assert bind work proportional to the delta through these).
  const BindCacheStats& bind_cache_stats() const { return bind_cache_stats_; }
  /// Rank turns that reused the cached relaxed-poly batch structure.
  size_t encode_reuses() const { return encode_cache_.reuses; }
  /// The last rank turn's CG solution (empty before the first rank turn or
  /// when the ranker ran no influence solve); what `ApplyUpdate` patches
  /// touched-row influence previews against.
  const Vec& last_influence_solution() const { return last_cg_solution_; }

  /// The cumulative report: deletion sequence (explanation D), one
  /// IterationStats per (possibly partial) iteration, resolution flag.
  const DebugReport& report() const { return report_; }
  /// The resolved configuration (after parallelism inheritance).
  const DebugConfig& config() const { return config_; }
  /// True once a terminal StepStatus was reached.
  bool finished() const { return finished_; }
  /// The terminal status; kAlreadyFinished until `finished()`.
  StepStatus finish_status() const { return finish_status_; }
  int iterations_completed() const { return iterations_completed_; }
  const Ranker& ranker() const { return *ranker_; }
  Query2Pipeline* pipeline() { return pipeline_; }

 private:
  friend class DebugSessionBuilder;

  /// `exec` is the RESOLVED execution bundle: `Build()` has already folded
  /// `timeout_seconds` into `deadline` and copied parallelism / shards into
  /// `config`; the ctor consumes only deadline, parent_cancel, observers.
  DebugSession(Query2Pipeline* pipeline, std::unique_ptr<Ranker> owned_ranker,
               Ranker* ranker, DebugConfig config,
               std::vector<QueryComplaints> workload, ExecutionOptions exec);

  /// Mutable state threaded through one step's stages.
  struct StageScope;
  /// In-flight speculative train state (self-contained; the task keeps it
  /// alive through a shared_ptr even if the session dies first).
  struct Speculation;
  enum class StageAction : uint8_t { kContinue, kStepDone };

  /// One iteration through the declared stages. `pipelined` enables the
  /// speculation hooks (launch during rank, started-before-fix handoff).
  Result<StepResult> StepImpl(bool pipelined);
  Result<StageAction> RunStage(DebugPhase phase, StageScope* scope);

  // --- The four stages (split out of the legacy monolithic Debugger::Run;
  // StepImpl drives them through the declared-stage table).
  /// (Re)trains on surviving records, warm start. Consumes a pending
  /// speculation first: commit on an exact deletion-prediction match,
  /// cancel + replay otherwise.
  Status TrainPhase(IterationStats* stats);
  /// Re-runs every complained-about query in debug mode against a fresh
  /// arena and binds all complaints to the new provenance. The per-query
  /// executions are batched through `BindWorkload` at the session's
  /// parallelism; results are bitwise-independent of the worker count.
  Result<std::vector<BoundComplaint>> BindPhase(IterationStats* stats);
  /// Ranks training records with the configured approach.
  Result<RankOutput> RankPhase(const std::vector<BoundComplaint>& bound,
                               IterationStats* stats);
  /// Deletes the top-k active records by score; returns the count removed
  /// and streams OnDeletion callbacks.
  int FixPhase(const RankOutput& ranked, int iteration, StepResult* result);

  // --- Speculation pipeline.
  /// Launches the speculative train for `next_iteration` on the task
  /// graph (no-op when unprofitable: budget exhausted or iteration cap).
  void LaunchSpeculation(int next_iteration);
  /// Replays the fix selection rule on the previous iteration's scores to
  /// predict the upcoming fix deletions (empty when no scores yet).
  std::vector<size_t> PredictFixDeletions() const;
  /// Brings the snapshot dataset cache up to date with the live active
  /// mask by applying the deletions recorded since the last sync.
  void SyncSnapshotCache();
  /// Returns the snapshot to the cache with the predicted deletions
  /// rolled back.
  void ReclaimSnapshot(std::shared_ptr<Speculation> spec);
  /// Validates + commits (or cancels + discards) the pending speculation;
  /// returns true when the trained parameters were adopted.
  bool TryCommitSpeculation(IterationStats* stats);
  /// Cancels and reclaims a pending speculation without consuming it
  /// (terminal states, destruction).
  void AbandonSpeculation();
  static void WaitSpecStarted(Speculation* spec);
  /// Waits for the task's Future and returns its outcome (a failed /
  /// throwing task reads as a failed speculation).
  static SpecOutcome WaitSpecOutcome(Speculation* spec);

  /// Cancel/deadline check at a phase boundary. When interrupted
  /// mid-iteration, records the partial stats (note says after which
  /// phase) and finishes the session; returns true if interrupted.
  bool CheckInterrupted(DebugPhase last_phase, IterationStats* stats,
                        StepResult* result);
  bool DeadlinePassed() const {
    // The token check also picks up a deadline armed on a PARENT token
    // (a service-wide quota), which the session's own deadline_ mirror
    // cannot see.
    return (deadline_.has_value() &&
            std::chrono::steady_clock::now() >= *deadline_) ||
           cancel_token_.deadline_passed();
  }

  void Finish(StepStatus status);

  void NotifyIterationStart(int iteration);
  void NotifyPhaseComplete(int iteration, DebugPhase phase, double seconds);
  void NotifyDeletion(int iteration, size_t record, double score);
  /// Enforces the DebugObserver re-entrancy contract: fatal (RAIN_CHECK)
  /// when `entry` is invoked from inside an observer callback on the
  /// notifying thread.
  void CheckNotInObserverCallback(const char* entry) const;

  /// Joins a finished driver thread so a new async call can reuse it.
  void ReapDriverThread();
  Result<DebugReport> DriveLoop(const StopCondition& stop, AsyncOptions options);

  Query2Pipeline* pipeline_;
  std::unique_ptr<Ranker> owned_ranker_;
  Ranker* ranker_;  // == owned_ranker_.get() unless borrowed (shim)
  DebugConfig config_;
  std::vector<QueryComplaints> workload_;
  std::vector<DebugObserver*> observers_;
  std::mutex observer_mu_;
  /// The thread currently delivering observer callbacks (default id =
  /// none); what CheckNotInObserverCallback tests against.
  std::atomic<std::thread::id> observer_thread_{std::thread::id{}};
  std::optional<std::chrono::steady_clock::time_point> deadline_;

  DebugReport report_;
  int iterations_completed_ = 0;
  bool finished_ = false;
  StepStatus finish_status_ = StepStatus::kAlreadyFinished;
  CancellationToken cancel_token_;

  // --- Async/pipelining state (touched only by the driving thread, the
  // guarded entry points, and self-contained speculation tasks).
  TaskGraph graph_;
  std::atomic<bool> async_active_{false};
  std::thread driver_thread_;
  AsyncStats async_stats_;
  std::shared_ptr<Speculation> pending_spec_;
  /// Previous rank phase's scores — the deletion predictor's input.
  std::vector<double> last_scores_;
  /// Lazily built copy of the training set reused across speculations;
  /// `snapshot_deletions_applied_` counts the report_.deletions prefix
  /// already applied to its active mask.
  std::unique_ptr<Dataset> snapshot_cache_;
  size_t snapshot_deletions_applied_ = 0;

  // --- Incremental engine state (src/incremental/update.h;
  // docs/architecture.md, "Incremental engine").
  /// One cache slot per workload entry, index-parallel to `workload_`.
  struct BindCacheEntry {
    /// The cached `bound` (and its arena nodes) reflect the entry; false
    /// forces a re-execute + re-bind on the next bind phase.
    bool valid = false;
    /// False when the entry's provenance structure may depend on the
    /// model (a model-dependent plan under Sort/Limit): such entries
    /// re-execute every iteration instead of refreshing from the cache.
    bool cacheable = true;
    std::vector<BoundComplaint> bound;
  };
  /// Re-evaluates every valid cache entry's complaints against the
  /// current predictions (concrete assignment + polynomial evaluation —
  /// bitwise the values a re-execution would produce).
  void RefreshCachedComplaints();
  /// Drops every bind-cache entry and the encode cache (the next bind
  /// phase resets the arena and rebinds everything).
  void InvalidateBindCache();
  std::vector<BindCacheEntry> bind_cache_;
  /// True once the cache holds a full bind of the current workload (the
  /// arena is persistent from then on until invalidated).
  bool bind_cache_primed_ = false;
  BindCacheStats bind_cache_stats_;
  /// Arena node count right after the last full bind; when delta splices
  /// and tombstones grow the arena past kArenaCompactFactor times this,
  /// the next bind phase compacts (full reset + rebind).
  size_t arena_nodes_after_full_bind_ = 0;
  /// Bumped whenever the persistent arena changes (reset or splice);
  /// gates the encode cache.
  uint64_t arena_generation_ = 0;
  RankContext::EncodeCache encode_cache_;
  /// Exact train-skip memo: true while the model parameters are a
  /// converged optimum for the CURRENT training data (set by a converged
  /// uninterrupted train, cleared by deletions / data deltas). Skipping
  /// is bitwise-exact: L-BFGS re-entered at a converged point returns the
  /// parameters untouched, and the prediction refresh recomputes the
  /// identical matrix.
  bool train_memo_valid_ = false;
  /// The last rank turn's CG solution (see last_influence_solution()).
  Vec last_cg_solution_;
  /// Model parameters at session construction — the cold-start point the
  /// full-recompute path restores.
  Vec initial_params_;
  DeltaLog delta_log_;
};

/// \brief Fluent constructor for `DebugSession`.
///
/// Replaces the flat `DebugConfig` field soup at call sites:
///
///   RAIN_ASSIGN_OR_RETURN(auto session,
///       DebugSessionBuilder(&pipeline)
///           .ranker("holistic")
///           .top_k_per_iter(10)
///           .max_deletions(100)
///           .set_execution(ExecutionOptions().set_parallelism(8))
///           .workload({qc})
///           .Build());
///   RAIN_ASSIGN_OR_RETURN(DebugReport report, session->RunToCompletion());
///
/// `Build()` is also the single place where the session-level
/// `parallelism` value is inherited by the finer-grained knobs: it fans
/// out to the pipeline's TrainConfig (via `Query2Pipeline::set_parallelism`),
/// to `InfluenceOptions::parallelism`, and to `CgOptions::parallelism`,
/// each only when the finer knob was left at its default of 1.
class DebugSessionBuilder {
 public:
  explicit DebugSessionBuilder(Query2Pipeline* pipeline) : pipeline_(pipeline) {}

  /// The ranking strategy (required unless `shared_ranker` is used).
  DebugSessionBuilder& ranker(std::unique_ptr<Ranker> ranker) {
    owned_ranker_ = std::move(ranker);
    borrowed_ranker_ = nullptr;
    ranker_status_ = Status::OK();  // installing a ranker supersedes a
                                    // failed ranker(name) attempt
    return *this;
  }
  /// Convenience: ranker by factory name ("loss", "infloss", "twostep",
  /// "holistic", "auto"); unknown names surface as a Build() error.
  DebugSessionBuilder& ranker(const std::string& name);
  /// A borrowed ranker the caller keeps ownership of (must outlive the
  /// session). Used by the `Debugger::Run` compatibility shim, whose
  /// ranker can span multiple Run calls.
  DebugSessionBuilder& shared_ranker(Ranker* ranker) {
    borrowed_ranker_ = ranker;
    owned_ranker_.reset();
    ranker_status_ = Status::OK();
    return *this;
  }

  /// Records removed per train-rank-fix iteration (paper: 10).
  DebugSessionBuilder& top_k_per_iter(int v) {
    config_.top_k_per_iter = v;
    return *this;
  }
  /// Total explanation size |D| to produce.
  DebugSessionBuilder& max_deletions(int v) {
    config_.max_deletions = v;
    return *this;
  }
  DebugSessionBuilder& max_iterations(int v) {
    config_.max_iterations = v;
    return *this;
  }
  /// Stop as soon as every complaint holds.
  DebugSessionBuilder& stop_when_resolved(bool v = true) {
    config_.stop_when_resolved = v;
    return *this;
  }
  /// \brief All execution-resource knobs in one value: worker count,
  /// shard count, deadline/timeout, parent cancellation token, observers.
  ///
  /// This is the one knob surface shared with the serve layer — a
  /// `DebugService` admits sessions from exactly this struct — and the
  /// replacement for the deprecated per-knob setters below. Field
  /// semantics:
  ///
  ///   - `parallelism` / `num_shards` overwrite the corresponding
  ///     `DebugConfig` fields (same slots the deprecated setters and
  ///     `config()` write, so mixing old and new calls keeps plain
  ///     last-write-wins ordering). `Build()` then resolves inheritance
  ///     and installs the shard plan exactly as before; see the class
  ///     comment and docs/architecture.md, "Shard plan".
  ///   - `deadline` / `timeout_seconds` / `parent_cancel` / `observers`
  ///     REPLACE any previously supplied execution bundle wholesale
  ///     (including observers registered through the deprecated
  ///     `observer()` shim).
  DebugSessionBuilder& set_execution(ExecutionOptions exec) {
    config_.parallelism = exec.parallelism;
    config_.num_shards = exec.num_shards;
    exec_ = std::move(exec);
    return *this;
  }

  /// \deprecated Use `set_execution(ExecutionOptions().set_parallelism(v))`.
  /// Worker count applied end-to-end across an iteration; see class
  /// comment for the inheritance rule.
  RAIN_DEPRECATED("use set_execution(ExecutionOptions().set_parallelism(...))")
  DebugSessionBuilder& parallelism(int v) {
    config_.parallelism = v;
    exec_.parallelism = v;
    return *this;
  }
  /// \deprecated Use `set_execution(ExecutionOptions().set_num_shards(v))`.
  ///
  /// Shard count for the training/influence pipeline. The default
  /// 0 means "no opinion": `Build()` then adopts whatever plan is already
  /// installed on the pipeline (none = unsharded). Clear an installed
  /// plan explicitly with `Query2Pipeline::set_num_shards(0)`.
  ///
  /// `Build()` installs a uniform `ShardPlan` over the pipeline's
  /// training set (`Query2Pipeline::set_num_shards`) and threads the
  /// resulting `ShardedDataset` view through TrainPhase (shard-exact
  /// loss/gradient kernels), RankPhase (shard-parallel
  /// ScoreAll/SelfInfluenceAll and the CG HVP loop; per-shard score
  /// vectors merge in shard order), and FixPhase (deletions routed to
  /// the owning shard's bookkeeping). Sharded deletion sequences are
  /// bitwise-identical to the unsharded sequential path at every shard
  /// count x worker count; the CG/L-BFGS parameter-dimension vector
  /// kernels are pinned sequential under sharding to keep that
  /// worker-invariance. See docs/architecture.md, "Shard plan".
  RAIN_DEPRECATED("use set_execution(ExecutionOptions().set_num_shards(...))")
  DebugSessionBuilder& set_num_shards(int v) {
    config_.num_shards = v;
    exec_.num_shards = v;
    return *this;
  }
  DebugSessionBuilder& influence(const InfluenceOptions& v) {
    config_.influence = v;
    return *this;
  }
  DebugSessionBuilder& ilp(const IlpSolveOptions& v) {
    config_.ilp = v;
    return *this;
  }
  /// Holistic relaxation rule (ablation knob).
  DebugSessionBuilder& relax_mode(RelaxMode v) {
    config_.relax_mode = v;
    return *this;
  }
  /// TwoStep q encoding over every ILP-touched row (ablation knob).
  DebugSessionBuilder& twostep_encode_all(bool v = true) {
    config_.twostep_encode_all = v;
    return *this;
  }
  /// Incremental bind/encode caching (default on); `false` restores the
  /// legacy fresh-arena-per-iteration bind. See `DebugConfig::bind_cache`.
  DebugSessionBuilder& bind_cache(bool v) {
    config_.bind_cache = v;
    return *this;
  }
  /// Bulk import of a legacy `DebugConfig` (compatibility shim and
  /// config-sweeping benches); individual setters may refine it after.
  DebugSessionBuilder& config(const DebugConfig& c) {
    config_ = c;
    return *this;
  }

  /// \deprecated Use `set_execution(ExecutionOptions().add_observer(obs))`.
  /// Registers a streaming observer (borrowed; repeatable).
  RAIN_DEPRECATED("use set_execution(ExecutionOptions().add_observer(...))")
  DebugSessionBuilder& observer(DebugObserver* obs) {
    exec_.add_observer(obs);
    return *this;
  }
  /// \deprecated Use `set_execution(ExecutionOptions().set_deadline(tp))`.
  /// Absolute deadline checked between phases (and inside phase loops).
  RAIN_DEPRECATED("use set_execution(ExecutionOptions().set_deadline(...))")
  DebugSessionBuilder& deadline(std::chrono::steady_clock::time_point tp) {
    exec_.deadline = tp;
    return *this;
  }
  /// \deprecated Use
  /// `set_execution(ExecutionOptions().set_timeout_seconds(s))`.
  /// Relative deadline in seconds from Build() time.
  RAIN_DEPRECATED("use set_execution(ExecutionOptions().set_timeout_seconds(...))")
  DebugSessionBuilder& timeout_seconds(double seconds) {
    exec_.timeout_seconds = seconds;
    return *this;
  }

  /// Replaces the initial workload.
  DebugSessionBuilder& workload(std::vector<QueryComplaints> w) {
    workload_ = std::move(w);
    return *this;
  }
  /// Appends one query+complaints batch to the initial workload.
  DebugSessionBuilder& add_complaints(QueryComplaints batch) {
    workload_.push_back(std::move(batch));
    return *this;
  }

  /// Validates the configuration, resolves parallelism inheritance, and
  /// installs the session-level worker count on the pipeline.
  Result<std::unique_ptr<DebugSession>> Build();

 private:
  Query2Pipeline* pipeline_;
  std::unique_ptr<Ranker> owned_ranker_;
  Ranker* borrowed_ranker_ = nullptr;
  Status ranker_status_;  // deferred error from ranker(name)
  DebugConfig config_;
  std::vector<QueryComplaints> workload_;
  /// The execution bundle handed to the session. `parallelism` /
  /// `num_shards` are mirrored into `config_` at setter time (so legacy
  /// setters and `config()` interleave with last-write-wins semantics);
  /// Build() reads deadline/timeout/parent_cancel/observers from here.
  ExecutionOptions exec_;
};

}  // namespace rain

#endif  // RAIN_CORE_SESSION_H_
