#include "core/complaint.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace rain {

ComplaintSpec ComplaintSpec::ValueEq(std::string agg_name, double target,
                                     std::vector<Value> group_keys) {
  ComplaintSpec s;
  s.kind = Kind::kValue;
  s.agg_name = std::move(agg_name);
  s.op = ComplaintOp::kEq;
  s.target = target;
  s.group_keys = std::move(group_keys);
  return s;
}

ComplaintSpec ComplaintSpec::ValueGe(std::string agg_name, double target,
                                     std::vector<Value> group_keys) {
  ComplaintSpec s = ValueEq(std::move(agg_name), target, std::move(group_keys));
  s.op = ComplaintOp::kGe;
  return s;
}

ComplaintSpec ComplaintSpec::ValueLe(std::string agg_name, double target,
                                     std::vector<Value> group_keys) {
  ComplaintSpec s = ValueEq(std::move(agg_name), target, std::move(group_keys));
  s.op = ComplaintOp::kLe;
  return s;
}

ComplaintSpec ComplaintSpec::TupleNotExists(std::vector<std::string> key_cols,
                                            std::vector<Value> key_vals) {
  ComplaintSpec s;
  s.kind = Kind::kTuple;
  s.tuple_key_cols = std::move(key_cols);
  s.tuple_key_vals = std::move(key_vals);
  return s;
}

ComplaintSpec ComplaintSpec::Point(std::string table, int64_t row, int correct_class) {
  ComplaintSpec s;
  s.kind = Kind::kPoint;
  s.point_table = std::move(table);
  s.point_row = row;
  s.point_class = correct_class;
  return s;
}

bool ComplaintViolated(ComplaintOp op, double current, double target) {
  constexpr double kTol = 1e-9;
  switch (op) {
    case ComplaintOp::kEq:
      return std::fabs(current - target) > kTol;
    case ComplaintOp::kLe:
      return current > target + kTol;
    case ComplaintOp::kGe:
      return current < target - kTol;
  }
  return true;
}

namespace {

bool IsViolated(ComplaintOp op, double current, double target) {
  return ComplaintViolated(op, current, target);
}

Result<std::vector<BoundComplaint>> BindValue(const ComplaintSpec& spec,
                                              const ExecResult& result) {
  if (!result.is_aggregate) {
    return Status::InvalidArgument(
        "value complaints require an aggregate query result");
  }
  // Locate the aggregate column.
  int agg_idx = -1;
  for (size_t i = 0; i < result.agg_names.size(); ++i) {
    if (result.agg_names[i] == spec.agg_name) agg_idx = static_cast<int>(i);
  }
  if (agg_idx < 0) {
    return Status::NotFound("aggregate output '" + spec.agg_name + "' not found");
  }
  // Locate the group row.
  if (spec.group_keys.size() != result.num_group_cols) {
    return Status::InvalidArgument(StrFormat(
        "complaint provides %zu group keys but the query groups by %zu columns",
        spec.group_keys.size(), result.num_group_cols));
  }
  int row = -1;
  for (size_t r = 0; r < result.table.num_rows(); ++r) {
    bool match = true;
    for (size_t g = 0; g < spec.group_keys.size(); ++g) {
      if (!(result.table.rows[r][g] == spec.group_keys[g])) {
        match = false;
        break;
      }
    }
    if (match) {
      row = static_cast<int>(r);
      break;
    }
  }
  std::vector<BoundComplaint> out;
  if (row < 0) return out;  // group absent: nothing to complain about (yet)

  BoundComplaint b;
  b.poly = result.agg_polys[row][agg_idx];
  b.op = spec.op;
  b.target = spec.target;
  RAIN_ASSIGN_OR_RETURN(
      b.current,
      result.table.rows[row][result.num_group_cols + agg_idx].ToNumeric());
  b.violated = IsViolated(spec.op, b.current, spec.target);
  out.push_back(b);
  return out;
}

Result<std::vector<BoundComplaint>> BindTuple(const ComplaintSpec& spec,
                                              const ExecResult& result) {
  std::vector<int> col_idx;
  for (const std::string& name : spec.tuple_key_cols) {
    // Accept either "alias.col" or plain "col".
    std::string qualifier;
    std::string col = name;
    const size_t dot = name.find('.');
    if (dot != std::string::npos) {
      qualifier = name.substr(0, dot);
      col = name.substr(dot + 1);
    }
    const int idx = result.table.schema.FindField(col, qualifier);
    if (idx < 0) {
      return Status::NotFound("tuple complaint key column '" + name + "' not found");
    }
    col_idx.push_back(idx);
  }
  if (col_idx.size() != spec.tuple_key_vals.size()) {
    return Status::InvalidArgument("tuple key cols/vals arity mismatch");
  }
  std::vector<BoundComplaint> out;
  for (size_t r = 0; r < result.table.num_rows(); ++r) {
    bool match = true;
    for (size_t k = 0; k < col_idx.size(); ++k) {
      if (!(result.table.rows[r][col_idx[k]] == spec.tuple_key_vals[k])) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    // Candidate (non-concrete) rows still bind: the tuple's *relaxed*
    // existence probability stays positive, and Holistic keeps pushing it
    // toward 0 even after the tuple concretely disappears. `violated`
    // (used for resolution reporting and by the discrete TwoStep ILP)
    // reflects concrete existence.
    BoundComplaint b;
    b.poly = result.table.cond[r];
    b.op = ComplaintOp::kEq;
    b.target = 0.0;
    b.current = result.table.concrete[r] ? 1.0 : 0.0;
    b.violated = result.table.concrete[r] != 0;
    out.push_back(b);
  }
  return out;
}

Result<std::vector<BoundComplaint>> BindPoint(const ComplaintSpec& spec,
                                              PolyArena* arena,
                                              const PredictionStore& predictions,
                                              const Catalog& catalog) {
  const Catalog::Entry* entry = catalog.Find(spec.point_table);
  if (entry == nullptr) {
    return Status::NotFound("point complaint table '" + spec.point_table +
                            "' not found");
  }
  if (!predictions.HasTable(entry->table_id)) {
    return Status::InvalidArgument("no predictions for table '" + spec.point_table +
                                   "'");
  }
  if (spec.point_row < 0 ||
      static_cast<size_t>(spec.point_row) >= predictions.NumRows(entry->table_id)) {
    return Status::OutOfRange("point complaint row out of range");
  }
  if (spec.point_class < 0 || spec.point_class >= predictions.NumClasses(entry->table_id)) {
    return Status::OutOfRange("point complaint class out of range");
  }
  BoundComplaint b;
  b.poly = arena->Var(PredVar{entry->table_id, spec.point_row, spec.point_class});
  b.op = ComplaintOp::kEq;
  b.target = 1.0;
  const int cur = predictions.PredictedClass(entry->table_id, spec.point_row);
  b.current = cur == spec.point_class ? 1.0 : 0.0;
  b.violated = cur != spec.point_class;
  return std::vector<BoundComplaint>{b};
}

}  // namespace

Result<std::vector<BoundComplaint>> BindComplaint(
    const ComplaintSpec& spec, const ExecResult& result, PolyArena* arena,
    const PredictionStore& predictions, const Catalog& catalog) {
  switch (spec.kind) {
    case ComplaintSpec::Kind::kValue:
      return BindValue(spec, result);
    case ComplaintSpec::Kind::kTuple:
      return BindTuple(spec, result);
    case ComplaintSpec::Kind::kPoint:
      return BindPoint(spec, arena, predictions, catalog);
  }
  return Status::Internal("unreachable");
}

}  // namespace rain
