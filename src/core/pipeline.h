#ifndef RAIN_CORE_PIPELINE_H_
#define RAIN_CORE_PIPELINE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "ml/model.h"
#include "ml/trainer.h"
#include "provenance/poly.h"
#include "provenance/prediction_store.h"
#include "relational/catalog.h"
#include "relational/executor.h"
#include "relational/plan.h"

namespace rain {

/// \brief A Query 2.0 pipeline: training set + model + queried database
/// (Figure 2 steps 0-2).
///
/// The pipeline owns the catalog, the (single) classification model and
/// its training set, and exposes train / infer / execute. All queried
/// tables whose catalog entry carries a feature dataset get prediction
/// views refreshed after every (re)training. Debug-mode executions share
/// one PolyArena so complaints from multiple queries can be combined
/// (Section 6.5); `ResetDebugState` starts a fresh arena (done by the
/// debugger at each train-rank-fix iteration).
class Query2Pipeline {
 public:
  Query2Pipeline(Catalog catalog, std::unique_ptr<Model> model, Dataset train,
                 TrainConfig train_config = TrainConfig());

  /// Trains (warm-start) on the active training records, then refreshes
  /// every prediction view. `cancel` (borrowed, may be null) is polled
  /// once per optimizer iteration; an interrupted run returns OK with
  /// `TrainReport::interrupted = true` and skips the prediction refresh —
  /// the caller is expected to stop at its next interruption check.
  Result<TrainReport> Train(const CancellationToken* cancel = nullptr);

  /// Recomputes prediction views from the current model without training.
  void RefreshPredictions();

  /// \brief Installs externally trained parameters and refreshes the
  /// prediction views — the commit half of speculative retraining.
  ///
  /// The async debug session trains a `Model::Clone()` on a snapshot of
  /// the training set while the rank phase still runs; when the
  /// speculation validates, the clone's parameters are adopted here. For
  /// parameters produced by `TrainModel` on an identical snapshot this is
  /// bitwise-equivalent to having called `Train()` synchronously (same
  /// L-BFGS trajectory, same `PredictProbaMatrix` inputs).
  void AdoptModelParams(const Vec& params);

  /// Drops all provenance accumulated by debug executions.
  void ResetDebugState();

  /// Executes a plan; `debug` captures provenance into the shared arena.
  Result<ExecResult> Execute(const PlanPtr& plan, bool debug);
  /// Parses, plans and executes a SQL string.
  Result<ExecResult> ExecuteSql(const std::string& query, bool debug);

  /// \brief Executes a plan capturing provenance into `arena` instead of
  /// the pipeline's shared arena.
  ///
  /// This is the staging entry point of the batched `BindWorkload`: each
  /// query of a multi-query workload executes into its own thread-local
  /// staging arena (only catalog and prediction views are shared, both
  /// read-only), after which the staging arenas are spliced into the
  /// shared arena in workload order. Thread-safe for concurrent calls with
  /// distinct arenas.
  Result<ExecResult> ExecuteInto(const PlanPtr& plan, PolyArena* arena,
                                 bool debug) const;

  const Catalog& catalog() const { return catalog_; }
  Model* model() { return model_.get(); }
  const Model* model() const { return model_.get(); }
  Dataset* train_data() { return &train_; }
  const Dataset& train_data() const { return train_; }
  PolyArena* arena() { return arena_.get(); }
  const PredictionStore& predictions() const { return predictions_; }
  const TrainConfig& train_config() const { return train_config_; }

  /// Applies a worker count to retraining and batch prediction refreshes
  /// (forwarded to TrainConfig::parallelism and Model::set_parallelism).
  /// Values < 1 are clamped to 1 with a logged warning so misconfiguration
  /// is visible; returns the value actually installed.
  int set_parallelism(int parallelism);

  /// \brief Installs (num_shards >= 1) or clears (num_shards <= 0) a
  /// uniform `ShardPlan` over the training set.
  ///
  /// With a plan installed the pipeline owns a `ShardedDataset` view (see
  /// `shards()`), retraining runs through the shard-exact kernels
  /// (`TrainConfig::shards`), and results are bitwise-identical to
  /// sequential (`parallelism = 1`) execution at every shard count x
  /// worker count. `num_shards` is clamped to the training-set size;
  /// returns the shard count actually installed (0 when cleared).
  /// Reinstalling the same count keeps the existing view (pointers
  /// handed out earlier stay valid); installing a different count
  /// replaces it — a sharded session built against the old view must
  /// not be stepped afterwards (a pipeline drives one session at a
  /// time, as its training set and model are shared mutable state).
  int set_num_shards(int num_shards);
  /// The installed sharded view, nullptr when sharding is off. Owned by
  /// the pipeline, valid until the next set_num_shards call.
  const ShardedDataset* shards() const { return sharded_.get(); }
  /// Mutable view for deletion routing (`ShardedDataset::Deactivate`).
  ShardedDataset* mutable_shards() { return sharded_.get(); }

 private:
  Catalog catalog_;
  std::unique_ptr<Model> model_;
  Dataset train_;
  TrainConfig train_config_;
  PredictionStore predictions_;
  std::unique_ptr<PolyArena> arena_;
  std::unique_ptr<ShardedDataset> sharded_;
};

}  // namespace rain

#endif  // RAIN_CORE_PIPELINE_H_
