#ifndef RAIN_CORE_METRICS_H_
#define RAIN_CORE_METRICS_H_

#include <cstddef>
#include <vector>

namespace rain {

/// \brief recall@k curve (Section 6.1.5).
///
/// r_k = |top-k of `deletions` intersected with `corrupted`| / |corrupted|
/// for k = 1..K where K = |corrupted| (the paper's corruption-recall
/// curve; the deletion sequence shorter than K is padded by its end).
std::vector<double> RecallCurve(const std::vector<size_t>& deletions,
                                const std::vector<size_t>& corrupted);

/// AUCCR = (2/K) * sum_{k=1..K} r_k — normalized so the perfect curve
/// (every deletion a true corruption) scores ~1.0.
double Auccr(const std::vector<double>& recall_curve);

/// Convenience: AUCCR directly from a deletion sequence.
double Auccr(const std::vector<size_t>& deletions,
             const std::vector<size_t>& corrupted);

}  // namespace rain

#endif  // RAIN_CORE_METRICS_H_
