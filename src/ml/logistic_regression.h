#ifndef RAIN_ML_LOGISTIC_REGRESSION_H_
#define RAIN_ML_LOGISTIC_REGRESSION_H_

#include <memory>

#include "ml/model.h"

namespace rain {

/// \brief Binary logistic regression: p_1(x) = sigmoid(w . x + b).
///
/// Parameters are [w_0..w_{d-1}, b] (bias last, omitted when
/// fit_intercept=false — the theory experiments of Appendices A/C use
/// bias-free models to preserve feature orthogonality).
class LogisticRegression : public Model {
 public:
  explicit LogisticRegression(size_t num_features, bool fit_intercept = true);

  int num_classes() const override { return 2; }
  size_t num_features() const override { return d_; }
  size_t num_params() const override { return theta_.size(); }

  const Vec& params() const override { return theta_; }
  void set_params(const Vec& theta) override;

  void PredictProba(const double* x, double* probs) const override;
  double ExampleLoss(const double* x, int y) const override;
  void AddExampleLossGradient(const double* x, int y, Vec* grad) const override;
  void AddProbaGradient(const double* x, const Vec& class_weights,
                        Vec* grad) const override;
  void HessianVectorProduct(const Dataset& data, const Vec& v, double l2,
                            Vec* out) const override;
  std::unique_ptr<Model> Clone() const override;

  // Shard-exact per-row kernels: both the loss gradient and the HVP row
  // body are a single scalar coefficient times [x; 1].
  size_t loss_grad_coeff_size() const override { return 1; }
  size_t hvp_coeff_size() const override { return 1; }
  void LossGradCoeffs(const double* x, int y, double* coeffs) const override;
  void ApplyLossGradCoeffs(const double* x, const double* coeffs,
                           Vec* grad) const override;
  void HvpCoeffs(const double* x, int y, const Vec& v,
                 double* coeffs) const override;
  void ApplyHvpCoeffs(const double* x, const double* coeffs,
                      Vec* out) const override;

  bool fit_intercept() const { return fit_intercept_; }

 private:
  /// w . x + b
  double Margin(const double* x) const;

  size_t d_;
  bool fit_intercept_;
  Vec theta_;
};

/// Numerically stable sigmoid.
double Sigmoid(double z);

}  // namespace rain

#endif  // RAIN_ML_LOGISTIC_REGRESSION_H_
