#include "ml/lbfgs.h"

#include <cmath>
#include <deque>

#include "common/logging.h"

namespace rain {
namespace {

double InfNorm(const Vec& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace

LbfgsResult LbfgsMinimize(const Objective& objective, Vec x0,
                          const LbfgsOptions& options) {
  const size_t n = x0.size();
  LbfgsResult result;
  result.x = std::move(x0);

  Vec grad(n, 0.0);
  double fx = objective(result.x, &grad);

  struct Pair {
    Vec s, y;
    double rho;
  };
  std::deque<Pair> history;

  for (int iter = 0; iter < options.max_iters; ++iter) {
    result.iterations = iter;
    result.fx = fx;
    result.grad_norm = InfNorm(grad);
    if (result.grad_norm <= options.grad_tol) {
      result.converged = true;
      return result;
    }
    // Cooperative cancellation: one poll per iteration bounds the stop
    // latency to a single (objective + line search) round.
    if (options.cancel != nullptr && options.cancel->ShouldStop()) {
      result.interrupted = true;
      return result;
    }

    // Two-loop recursion: d = -H_k grad.
    const int par = options.parallelism;
    Vec q = grad;
    std::vector<double> alpha(history.size());
    for (size_t i = history.size(); i-- > 0;) {
      const Pair& p = history[i];
      alpha[i] = p.rho * vec::Dot(p.s, q, par);
      vec::Axpy(-alpha[i], p.y, &q, par);
    }
    if (!history.empty()) {
      const Pair& last = history.back();
      const double gamma =
          vec::Dot(last.s, last.y, par) / vec::Dot(last.y, last.y, par);
      vec::Scale(gamma, &q);
    }
    for (size_t i = 0; i < history.size(); ++i) {
      const Pair& p = history[i];
      const double beta = p.rho * vec::Dot(p.y, q, par);
      vec::Axpy(alpha[i] - beta, p.s, &q, par);
    }
    Vec direction = q;
    vec::Scale(-1.0, &direction);

    double dg = vec::Dot(direction, grad, par);
    if (dg >= 0.0) {
      // Not a descent direction (can happen with stale curvature on
      // non-convex objectives): fall back to steepest descent.
      direction = grad;
      vec::Scale(-1.0, &direction);
      dg = -vec::NormSq(grad, par);
      history.clear();
    }

    // Backtracking Armijo line search.
    double step = (iter == 0 && history.empty())
                      ? 1.0 / std::max(1.0, vec::Norm2(grad))
                      : 1.0;
    Vec x_new(n);
    Vec grad_new(n, 0.0);
    double fx_new = fx;
    bool accepted = false;
    while (step >= options.min_step) {
      x_new = result.x;
      vec::Axpy(step, direction, &x_new);
      fx_new = objective(x_new, &grad_new);
      if (std::isfinite(fx_new) && fx_new <= fx + options.armijo_c1 * step * dg) {
        accepted = true;
        break;
      }
      step *= options.backtrack;
    }
    if (!accepted) {
      // Line search failed; we are at (numerical) stationarity.
      return result;
    }

    Pair pair;
    pair.s = vec::Sub(x_new, result.x);
    pair.y = vec::Sub(grad_new, grad);
    const double sy = vec::Dot(pair.s, pair.y, par);
    if (sy > 1e-12) {
      pair.rho = 1.0 / sy;
      history.push_back(std::move(pair));
      if (static_cast<int>(history.size()) > options.memory) history.pop_front();
    }

    result.x = std::move(x_new);
    grad = std::move(grad_new);
    fx = fx_new;
  }
  result.fx = fx;
  result.grad_norm = InfNorm(grad);
  result.iterations = options.max_iters;
  return result;
}

}  // namespace rain
