#include "ml/dataset.h"

#include "common/logging.h"

namespace rain {

Dataset::Dataset(Matrix features, std::vector<int> labels, int num_classes)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      active_(labels_.size(), 1),
      num_active_(labels_.size()),
      num_classes_(num_classes) {
  RAIN_CHECK(features_.rows() == labels_.size()) << "feature/label row mismatch";
  RAIN_CHECK(num_classes_ >= 2) << "need at least two classes";
  for (int y : labels_) {
    RAIN_CHECK(y >= 0 && y < num_classes_) << "label out of range: " << y;
  }
}

void Dataset::set_label(size_t i, int y) {
  RAIN_CHECK(i < labels_.size() && y >= 0 && y < num_classes_);
  labels_[i] = y;
}

void Dataset::Deactivate(size_t i) {
  RAIN_CHECK(i < active_.size());
  if (active_[i]) {
    active_[i] = 0;
    --num_active_;
  }
}

void Dataset::Reactivate(size_t i) {
  RAIN_CHECK(i < active_.size());
  if (!active_[i]) {
    active_[i] = 1;
    ++num_active_;
  }
}

void Dataset::ReactivateAll() {
  for (auto& a : active_) a = 1;
  num_active_ = active_.size();
}

std::vector<size_t> Dataset::ActiveIndices() const {
  std::vector<size_t> out;
  out.reserve(num_active_);
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]) out.push_back(i);
  }
  return out;
}

}  // namespace rain
