#include "ml/dataset.h"

#include <utility>

#include "common/logging.h"

namespace rain {

// A default-constructed Dataset still carries a (tiny) storage block so the
// accessors never need a null check.
Dataset::Dataset() : storage_(std::make_shared<Storage>()) {}

Dataset::Dataset(Matrix features, std::vector<int> labels, int num_classes) {
  auto storage = std::make_shared<Storage>();
  storage->features = std::move(features);
  storage->labels = std::move(labels);
  storage->num_classes = num_classes;
  RAIN_CHECK(storage->features.rows() == storage->labels.size())
      << "feature/label row mismatch";
  RAIN_CHECK(storage->num_classes >= 2) << "need at least two classes";
  for (int y : storage->labels) {
    RAIN_CHECK(y >= 0 && y < storage->num_classes) << "label out of range: " << y;
  }
  active_.assign(storage->labels.size(), 1);
  num_active_ = storage->labels.size();
  storage_ = std::move(storage);
}

Dataset Dataset::View() const {
  Dataset view(*this);  // shares storage_, copies the mask
  view.ReactivateAll();
  return view;
}

void Dataset::DetachStorage() {
  if (storage_.use_count() == 1) return;
  auto copy = std::make_shared<Storage>(*storage_);
  storage_ = std::move(copy);
}

void Dataset::set_label(size_t i, int y) {
  RAIN_CHECK(i < storage_->labels.size() && y >= 0 && y < storage_->num_classes);
  DetachStorage();
  // The only mutation of shared state, and it happens on a block this
  // instance now owns exclusively.
  const_cast<Storage*>(storage_.get())->labels[i] = y;
}

void Dataset::Deactivate(size_t i) {
  RAIN_CHECK(i < active_.size());
  if (active_[i]) {
    active_[i] = 0;
    --num_active_;
  }
}

void Dataset::Reactivate(size_t i) {
  RAIN_CHECK(i < active_.size());
  if (!active_[i]) {
    active_[i] = 1;
    ++num_active_;
  }
}

void Dataset::ReactivateAll() {
  for (auto& a : active_) a = 1;
  num_active_ = active_.size();
}

std::vector<size_t> Dataset::ActiveIndices() const {
  std::vector<size_t> out;
  out.reserve(num_active_);
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]) out.push_back(i);
  }
  return out;
}

}  // namespace rain
