#ifndef RAIN_ML_LBFGS_H_
#define RAIN_ML_LBFGS_H_

#include <functional>

#include "common/cancellation.h"
#include "tensor/vector_ops.h"

namespace rain {

/// Objective callback: returns f(x) and writes the gradient into *grad
/// (grad is pre-sized to x.size()).
using Objective = std::function<double(const Vec& x, Vec* grad)>;

struct LbfgsOptions {
  int max_iters = 500;
  /// Convergence on the infinity norm of the gradient.
  double grad_tol = 1e-7;
  /// History size for the two-loop recursion.
  int memory = 10;
  /// Armijo sufficient-decrease constant.
  double armijo_c1 = 1e-4;
  /// Backtracking shrink factor.
  double backtrack = 0.5;
  /// Give up on the line search below this step.
  double min_step = 1e-20;
  /// Chunk count for the two-loop recursion's vector kernels (dot/axpy over
  /// num_params elements). <= 1 keeps the exact sequential arithmetic; the
  /// objective callback parallelizes over data rows independently of this.
  int parallelism = 1;
  /// Optional cooperative stop handle (borrowed; must outlive the call).
  /// Polled once per L-BFGS iteration: a stop request ends the minimize
  /// within one iteration, returning the best iterate so far with
  /// `interrupted = true`. Never changes results when it does not fire.
  const CancellationToken* cancel = nullptr;
};

struct LbfgsResult {
  Vec x;
  double fx = 0.0;
  double grad_norm = 0.0;  // infinity norm at the final point
  int iterations = 0;
  bool converged = false;
  /// True when the run ended on a cancellation/deadline rather than on
  /// convergence or the iteration cap; `x` is the last accepted iterate.
  bool interrupted = false;
};

/// \brief Limited-memory BFGS with Armijo backtracking line search.
///
/// This is the optimizer used for all model training in Rain (the paper
/// trains with L-BFGS in TensorFlow). Curvature pairs with non-positive
/// s.y are skipped to keep the implicit Hessian approximation positive
/// definite, which also makes the routine usable on the (non-convex) MLP.
LbfgsResult LbfgsMinimize(const Objective& objective, Vec x0,
                          const LbfgsOptions& options = LbfgsOptions());

}  // namespace rain

#endif  // RAIN_ML_LBFGS_H_
