#include "ml/model.h"

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rain {

int Model::PredictClass(const double* x) const {
  const int c = num_classes();
  std::vector<double> probs(c);
  PredictProba(x, probs.data());
  int best = 0;
  for (int j = 1; j < c; ++j) {
    if (probs[j] > probs[best]) best = j;
  }
  return best;
}

Matrix Model::PredictProbaMatrix(const Dataset& data) const {
  Matrix out(data.size(), static_cast<size_t>(num_classes()));
  ParallelFor(RowParallelism(data.size()), data.size(),
              [this, &data, &out](size_t begin, size_t end, size_t) {
                for (size_t i = begin; i < end; ++i) {
                  PredictProba(data.row(i), out.Row(i));
                }
              });
  return out;
}

double Model::MeanLoss(const Dataset& data, double l2) const {
  RAIN_CHECK(data.num_active() > 0) << "loss over empty dataset";
  double acc = ParallelSum(
      RowParallelism(data.size()), data.size(), [this, &data](size_t begin, size_t end) {
        double chunk_acc = 0.0;
        for (size_t i = begin; i < end; ++i) {
          if (!data.active(i)) continue;
          chunk_acc += ExampleLoss(data.row(i), data.label(i));
        }
        return chunk_acc;
      });
  acc /= static_cast<double>(data.num_active());
  acc += l2 * vec::NormSq(params());
  return acc;
}

void Model::MeanLossGradient(const Dataset& data, double l2, Vec* grad) const {
  RAIN_CHECK(data.num_active() > 0) << "gradient over empty dataset";
  grad->assign(num_params(), 0.0);
  vec::ParallelAccumulate(
      RowParallelism(data.size()), data.size(), grad,
      [this, &data](size_t begin, size_t end, Vec* acc) {
        for (size_t i = begin; i < end; ++i) {
          if (!data.active(i)) continue;
          AddExampleLossGradient(data.row(i), data.label(i), acc);
        }
      });
  const double inv_n = 1.0 / static_cast<double>(data.num_active());
  for (double& g : *grad) g *= inv_n;
  vec::Axpy(2.0 * l2, params(), grad);
}

}  // namespace rain
