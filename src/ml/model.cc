#include "ml/model.h"

#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rain {

int Model::PredictClass(const double* x) const {
  const int c = num_classes();
  std::vector<double> probs(c);
  PredictProba(x, probs.data());
  int best = 0;
  for (int j = 1; j < c; ++j) {
    if (probs[j] > probs[best]) best = j;
  }
  return best;
}

Matrix Model::PredictProbaMatrix(const Dataset& data) const {
  Matrix out(data.size(), static_cast<size_t>(num_classes()));
  ParallelFor(RowParallelism(data.size()), data.size(),
              [this, &data, &out](size_t begin, size_t end, size_t) {
                for (size_t i = begin; i < end; ++i) {
                  PredictProba(data.row(i), out.Row(i));
                }
              });
  return out;
}

double Model::MeanLoss(const Dataset& data, double l2) const {
  RAIN_CHECK(data.num_active() > 0) << "loss over empty dataset";
  double acc = ParallelSum(
      RowParallelism(data.size()), data.size(), [this, &data](size_t begin, size_t end) {
        double chunk_acc = 0.0;
        for (size_t i = begin; i < end; ++i) {
          if (!data.active(i)) continue;
          chunk_acc += ExampleLoss(data.row(i), data.label(i));
        }
        return chunk_acc;
      });
  acc /= static_cast<double>(data.num_active());
  acc += l2 * vec::NormSq(params());
  return acc;
}

void Model::MeanLossGradient(const Dataset& data, double l2, Vec* grad) const {
  RAIN_CHECK(data.num_active() > 0) << "gradient over empty dataset";
  grad->assign(num_params(), 0.0);
  vec::ParallelAccumulate(
      RowParallelism(data.size()), data.size(), grad,
      [this, &data](size_t begin, size_t end, Vec* acc) {
        for (size_t i = begin; i < end; ++i) {
          if (!data.active(i)) continue;
          AddExampleLossGradient(data.row(i), data.label(i), acc);
        }
      });
  const double inv_n = 1.0 / static_cast<double>(data.num_active());
  for (double& g : *grad) g *= inv_n;
  vec::Axpy(2.0 * l2, params(), grad);
}

// ------------------------------------------------- shard-exact kernels

void Model::LossGradCoeffs(const double*, int, double*) const {
  RAIN_CHECK(false) << "model reports loss_grad_coeff_size() > 0 but does not "
                       "implement LossGradCoeffs";
}

void Model::ApplyLossGradCoeffs(const double*, const double*, Vec*) const {
  RAIN_CHECK(false) << "model reports loss_grad_coeff_size() > 0 but does not "
                       "implement ApplyLossGradCoeffs";
}

void Model::HvpCoeffs(const double*, int, const Vec&, double*) const {
  RAIN_CHECK(false) << "model reports hvp_coeff_size() > 0 but does not "
                       "implement HvpCoeffs";
}

void Model::ApplyHvpCoeffs(const double*, const double*, Vec*) const {
  RAIN_CHECK(false) << "model reports hvp_coeff_size() > 0 but does not "
                       "implement ApplyHvpCoeffs";
}

namespace {

/// Runs `per_shard(s)` for every shard, one shard at a time across
/// `parallelism` workers, polling `cancel` before each shard. Returns
/// false when interrupted (some shards skipped; outputs are partial and
/// must be discarded by the caller's own interruption check).
bool RunShardPass(int parallelism, const ShardedDataset& data,
                  const CancellationToken* cancel,
                  const std::function<void(size_t shard)>& per_shard) {
  bool complete = ParallelForCancellable(
      parallelism, data.num_shards(), cancel,
      [&](size_t begin, size_t end, size_t) {
        for (size_t s = begin; s < end; ++s) {
          if (cancel != nullptr && cancel->ShouldStop()) return;
          per_shard(s);
        }
      });
  return complete && (cancel == nullptr || !cancel->ShouldStop());
}

}  // namespace

double Model::ShardedMeanLoss(const ShardedDataset& data, double l2,
                              const CancellationToken* cancel,
                              ShardScratch* scratch) const {
  const Dataset& base = data.base();
  RAIN_CHECK(base.num_active() > 0) << "loss over empty dataset";
  // Per-row losses computed shard-parallel, summed in global row order:
  // exactly the additions of the sequential loop, in the same order.
  // Caller-lent scratch keeps the per-shard buffers warm across calls;
  // without one, per-call buffers (pool-draining waits can re-enter this
  // function on the calling thread, so no hidden thread_local/member).
  std::vector<Vec> local;
  std::vector<Vec>& losses = scratch != nullptr ? scratch->loss : local;
  losses.resize(data.num_shards());
  const bool complete = RunShardPass(parallelism(), data, cancel, [&](size_t s) {
    const ShardPlan::Range range = data.shard_range(s);
    Vec& buf = losses[s];
    buf.assign(range.size(), 0.0);
    for (size_t i = range.begin; i < range.end; ++i) {
      if (!base.active(i)) continue;
      buf[i - range.begin] = ExampleLoss(base.row(i), base.label(i));
    }
  });
  // An interrupted pass leaves buffers unfilled. Return +inf rather than
  // a fabricated finite value: the L-BFGS line search rejects non-finite
  // objectives, so a cancelled evaluation can never be accepted as a
  // spuriously "good" iterate (the trainer then reports the run as
  // interrupted at its own poll).
  if (!complete) return std::numeric_limits<double>::infinity();
  double acc = 0.0;
  for (size_t s = 0; s < data.num_shards(); ++s) {
    const ShardPlan::Range range = data.shard_range(s);
    for (size_t i = range.begin; i < range.end; ++i) {
      if (!base.active(i)) continue;
      acc += losses[s][i - range.begin];
    }
  }
  acc /= static_cast<double>(base.num_active());
  acc += l2 * vec::NormSq(params());
  return acc;
}

void Model::ShardedMeanLossGradient(const ShardedDataset& data, double l2,
                                    Vec* grad, const CancellationToken* cancel,
                                    ShardScratch* scratch) const {
  const Dataset& base = data.base();
  RAIN_CHECK(base.num_active() > 0) << "gradient over empty dataset";
  grad->assign(num_params(), 0.0);
  const size_t csz = loss_grad_coeff_size();
  if (csz == 0) {
    // Model without shard-exact kernels: the sequential loop (bitwise
    // what MeanLossGradient does at parallelism 1), shards unused. Still
    // cancellable — poll every block of rows so a stop request does not
    // stall for a whole data pass (the partial gradient is discarded by
    // the caller's own interruption check, as in the sharded path).
    for (size_t i = 0; i < base.size(); ++i) {
      if (cancel != nullptr && i % kMinParallelRows == 0 && cancel->ShouldStop()) {
        return;
      }
      if (!base.active(i)) continue;
      AddExampleLossGradient(base.row(i), base.label(i), grad);
    }
  } else {
    // Scratch reuse is safe even across active-mask changes: the replay
    // below reads exactly the active-row blocks this call's pass wrote.
    std::vector<Vec> local;
    std::vector<Vec>& coeffs = scratch != nullptr ? scratch->grad : local;
    coeffs.resize(data.num_shards());
    const bool complete = RunShardPass(parallelism(), data, cancel, [&](size_t s) {
      const ShardPlan::Range range = data.shard_range(s);
      Vec& buf = coeffs[s];
      buf.resize(range.size() * csz);
      for (size_t i = range.begin; i < range.end; ++i) {
        if (!base.active(i)) continue;
        LossGradCoeffs(base.row(i), base.label(i),
                       buf.data() + (i - range.begin) * csz);
      }
    });
    // An interrupted pass leaves coefficient buffers unfilled; the
    // caller's interruption check discards the output, so skip the
    // replay rather than read them.
    if (!complete) return;
    // Ordered replay: one addend block per row, applied in global row
    // order — the sequential loop's exact multiply-add sequence.
    for (size_t s = 0; s < data.num_shards(); ++s) {
      const ShardPlan::Range range = data.shard_range(s);
      for (size_t i = range.begin; i < range.end; ++i) {
        if (!base.active(i)) continue;
        ApplyLossGradCoeffs(base.row(i),
                            coeffs[s].data() + (i - range.begin) * csz, grad);
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(base.num_active());
  for (double& g : *grad) g *= inv_n;
  vec::Axpy(2.0 * l2, params(), grad);
}

void Model::ShardedHessianVectorProduct(const ShardedDataset& data, const Vec& v,
                                        double l2, Vec* out,
                                        const CancellationToken* cancel,
                                        ShardScratch* scratch) const {
  const Dataset& base = data.base();
  RAIN_CHECK(v.size() == num_params()) << "HVP size mismatch";
  RAIN_CHECK(base.num_active() > 0) << "HVP over empty dataset";
  const size_t csz = hvp_coeff_size();
  if (csz == 0) {
    // Fallback for models without shard-exact kernels: the model's own
    // HVP (deterministic per its parallelism knob, but not shard-exact).
    HessianVectorProduct(base, v, l2, out);
    return;
  }
  out->assign(num_params(), 0.0);
  // Buffer ownership sits with the caller (or this frame) by design:
  // pool-draining waits can re-enter this function on the calling thread
  // (a blocked ParallelFor helps run queued tasks, which may themselves
  // score/solve), so a thread_local or member scratch would be live in
  // two frames at once. This is the hottest fixed cost in a CG solve —
  // one allocation pass per Hessian-vector product — so callers in
  // iterative loops should lend a ShardScratch.
  std::vector<Vec> local;
  std::vector<Vec>& coeffs = scratch != nullptr ? scratch->hvp : local;
  coeffs.resize(data.num_shards());
  const bool complete = RunShardPass(parallelism(), data, cancel, [&](size_t s) {
    const ShardPlan::Range range = data.shard_range(s);
    Vec& buf = coeffs[s];
    buf.resize(range.size() * csz);
    for (size_t i = range.begin; i < range.end; ++i) {
      if (!base.active(i)) continue;
      HvpCoeffs(base.row(i), base.label(i), v, buf.data() + (i - range.begin) * csz);
    }
  });
  // Interrupted: buffers may be unfilled and the caller discards the
  // output at its own poll — skip the replay.
  if (!complete) return;
  for (size_t s = 0; s < data.num_shards(); ++s) {
    const ShardPlan::Range range = data.shard_range(s);
    for (size_t i = range.begin; i < range.end; ++i) {
      if (!base.active(i)) continue;
      ApplyHvpCoeffs(base.row(i), coeffs[s].data() + (i - range.begin) * csz, out);
    }
  }
  const double inv_n = 1.0 / static_cast<double>(base.num_active());
  for (double& o : *out) o *= inv_n;
  vec::Axpy(2.0 * l2, v, out);
}

}  // namespace rain
