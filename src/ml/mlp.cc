#include "ml/mlp.h"

#include <cmath>

#include "common/logging.h"
#include "ml/softmax_regression.h"
#include "tensor/vector_ops.h"

namespace rain {

Mlp::Mlp(size_t num_features, size_t hidden_units, int num_classes, uint64_t seed)
    : d_(num_features),
      h_(hidden_units),
      c_(num_classes),
      theta_(hidden_units * num_features + hidden_units +
                 static_cast<size_t>(num_classes) * hidden_units +
                 static_cast<size_t>(num_classes),
             0.0) {
  RAIN_CHECK(num_classes >= 2 && hidden_units > 0);
  Rng rng(seed);
  const double s1 = std::sqrt(2.0 / static_cast<double>(d_));
  for (size_t i = 0; i < h_ * d_; ++i) theta_[OffW1() + i] = rng.Gaussian(0.0, s1);
  const double s2 = std::sqrt(2.0 / static_cast<double>(h_));
  for (size_t i = 0; i < static_cast<size_t>(c_) * h_; ++i) {
    theta_[OffW2() + i] = rng.Gaussian(0.0, s2);
  }
}

void Mlp::set_params(const Vec& theta) {
  RAIN_CHECK(theta.size() == theta_.size()) << "param size mismatch";
  theta_ = theta;
}

void Mlp::RunForward(const double* x, Forward* f) const {
  const double* w1 = theta_.data() + OffW1();
  const double* b1 = theta_.data() + OffB1();
  const double* w2 = theta_.data() + OffW2();
  const double* b2 = theta_.data() + OffB2();

  f->z1.assign(h_, 0.0);
  f->a1.assign(h_, 0.0);
  for (size_t i = 0; i < h_; ++i) {
    const double* row = w1 + i * d_;
    const double z = b1[i] + vec::simd::Dot(row, x, d_);
    f->z1[i] = z;
    f->a1[i] = z > 0.0 ? z : 0.0;
  }
  f->z2.assign(c_, 0.0);
  for (int k = 0; k < c_; ++k) {
    const double* row = w2 + static_cast<size_t>(k) * h_;
    f->z2[k] = b2[k] + vec::simd::Dot(row, f->a1.data(), h_);
  }
  f->p = f->z2;
  SoftmaxInPlace(f->p.data(), c_);
}

void Mlp::PredictProba(const double* x, double* probs) const {
  Forward f;
  RunForward(x, &f);
  for (int k = 0; k < c_; ++k) probs[k] = f.p[k];
}

double Mlp::ExampleLoss(const double* x, int y) const {
  Forward f;
  RunForward(x, &f);
  return -std::log(std::max(f.p[y], 1e-12));
}

void Mlp::Backprop(const double* x, const Forward& f, const Vec& dz2, Vec* grad,
                   Vec* dz1_out) const {
  const double* w2 = theta_.data() + OffW2();
  double* gw1 = grad->data() + OffW1();
  double* gb1 = grad->data() + OffB1();
  double* gw2 = grad->data() + OffW2();
  double* gb2 = grad->data() + OffB2();

  // W2 / b2 grads and da1 = W2^T dz2 — ELEMENTWISE MulAdd keeps each
  // element's rounding identical to the former interleaved statements,
  // so LossGradCoeffs/ApplyLossGradCoeffs replay this path's bits.
  Vec da1(h_, 0.0);
  for (int k = 0; k < c_; ++k) {
    const double g = dz2[k];
    gb2[k] += g;
    double* grow = gw2 + static_cast<size_t>(k) * h_;
    const double* wrow = w2 + static_cast<size_t>(k) * h_;
    vec::simd::MulAdd(g, f.a1.data(), grow, h_);
    vec::simd::MulAdd(g, wrow, da1.data(), h_);
  }
  // dz1 = da1 * relu'(z1)
  Vec dz1(h_);
  for (size_t i = 0; i < h_; ++i) dz1[i] = f.z1[i] > 0.0 ? da1[i] : 0.0;
  for (size_t i = 0; i < h_; ++i) {
    const double g = dz1[i];
    gb1[i] += g;
    if (g == 0.0) continue;
    double* grow = gw1 + i * d_;
    vec::simd::MulAdd(g, x, grow, d_);
  }
  if (dz1_out != nullptr) *dz1_out = std::move(dz1);
}

void Mlp::AddExampleLossGradient(const double* x, int y, Vec* grad) const {
  Forward f;
  RunForward(x, &f);
  Vec dz2 = f.p;
  dz2[y] -= 1.0;
  Backprop(x, f, dz2, grad);
}

void Mlp::AddProbaGradient(const double* x, const Vec& class_weights,
                           Vec* grad) const {
  RAIN_CHECK(static_cast<int>(class_weights.size()) == c_);
  Forward f;
  RunForward(x, &f);
  // dz2 = softmax Jacobian applied to w: p .* (w - w.p)
  double wp = 0.0;
  for (int k = 0; k < c_; ++k) wp += class_weights[k] * f.p[k];
  Vec dz2(c_);
  for (int k = 0; k < c_; ++k) dz2[k] = f.p[k] * (class_weights[k] - wp);
  Backprop(x, f, dz2, grad);
}

void Mlp::HessianVectorProduct(const Dataset& data, const Vec& v, double l2,
                               Vec* out) const {
  RAIN_CHECK(v.size() == theta_.size()) << "HVP size mismatch";
  RAIN_CHECK(data.num_active() > 0) << "HVP over empty dataset";
  out->assign(theta_.size(), 0.0);

  const double* w2 = theta_.data() + OffW2();
  const double* v_w1 = v.data() + OffW1();
  const double* v_b1 = v.data() + OffB1();
  const double* v_w2 = v.data() + OffW2();
  const double* v_b2 = v.data() + OffB2();

  const double* w1 = theta_.data() + OffW1();
  const double* b1 = theta_.data() + OffB1();
  const double* b2 = theta_.data() + OffB2();

  vec::ParallelAccumulate(
      RowParallelism(data.size()), data.size(), out,
      [&](size_t begin, size_t end, Vec* acc) {
        // Runs of consecutive active rows batch the three per-row matrix
        // projections — z1 = X W1^T, R{z1} = X V1^T and z2 = A1 W2^T —
        // into GemmNT calls over the run (the packed-GEMM layer's batched
        // projection kernel). Every GemmNT element is the Dot kernel with
        // the operand order commuted (per-element products are
        // rounding-identical), and the bias adds happen afterwards in the
        // same position, so each row's forward/R-forward values are
        // bitwise what RunForward and the former per-row loops produced —
        // HvpCoeffs' sharded replay still reproduces this body exactly.
        constexpr size_t kHvpRows = 16;
        const size_t cc = static_cast<size_t>(c_);
        std::vector<double> z1_blk(kHvpRows * h_);
        std::vector<double> rz1_blk(kHvpRows * h_);
        std::vector<double> a1_blk(kHvpRows * h_);
        std::vector<double> ra1_blk(kHvpRows * h_);
        std::vector<double> z2_blk(kHvpRows * cc);
        Vec p(cc), rz2(cc), dz2(cc), rdz2(cc), rda1(h_);
        size_t n = begin;
        while (n < end) {
          if (!data.active(n)) {
            ++n;
            continue;
          }
          size_t r1 = n;
          while (r1 < end && r1 - n < kHvpRows && data.active(r1)) ++r1;
          const size_t nb = r1 - n;
          const double* xb = data.row(n);

          // --- Batched forward + R-forward projections. ---
          vec::simd::GemmNT(xb, nb, d_, w1, h_, d_, d_, z1_blk.data(), h_);
          vec::simd::GemmNT(xb, nb, d_, v_w1, h_, d_, d_, rz1_blk.data(), h_);
          for (size_t r = 0; r < nb; ++r) {
            double* z1 = z1_blk.data() + r * h_;
            double* a1 = a1_blk.data() + r * h_;
            double* rz1 = rz1_blk.data() + r * h_;
            double* ra1 = ra1_blk.data() + r * h_;
            for (size_t i = 0; i < h_; ++i) {
              z1[i] = b1[i] + z1[i];
              a1[i] = z1[i] > 0.0 ? z1[i] : 0.0;
              rz1[i] = v_b1[i] + rz1[i];
              ra1[i] = z1[i] > 0.0 ? rz1[i] : 0.0;
            }
          }
          vec::simd::GemmNT(a1_blk.data(), nb, h_, w2, cc, h_, h_,
                            z2_blk.data(), cc);

          for (size_t r = 0; r < nb; ++r) {
            const double* x = xb + r * d_;
            const int y = data.label(n + r);
            const double* z1 = z1_blk.data() + r * h_;
            const double* a1 = a1_blk.data() + r * h_;
            const double* ra1 = ra1_blk.data() + r * h_;
            for (size_t k = 0; k < cc; ++k) p[k] = b2[k] + z2_blk[r * cc + k];
            SoftmaxInPlace(p.data(), c_);
            // R{z2} keeps the per-row Dot2 kernel (two-operand reduction,
            // no GEMM shape) — same as HvpCoeffs.
            for (int k = 0; k < c_; ++k) {
              const double* vrow = v_w2 + static_cast<size_t>(k) * h_;
              const double* wrow = w2 + static_cast<size_t>(k) * h_;
              rz2[k] = v_b2[k] + vec::simd::Dot2(vrow, a1, wrow, ra1, h_);
            }

            // dz2 = p - e_y; R{dz2} = R{p} = (diag(p) - p p^T) rz2.
            for (size_t k = 0; k < cc; ++k) dz2[k] = p[k];
            dz2[y] -= 1.0;
            double prz = 0.0;
            for (int k = 0; k < c_; ++k) prz += p[k] * rz2[k];
            for (int k = 0; k < c_; ++k) rdz2[k] = p[k] * (rz2[k] - prz);

            // --- R-backward pass. ---
            // RdW2 = rdz2 (x) a1 + dz2 (x) ra1; Rdb2 = rdz2.
            double* o_w1 = acc->data() + OffW1();
            double* o_b1 = acc->data() + OffB1();
            double* o_w2 = acc->data() + OffW2();
            double* o_b2 = acc->data() + OffB2();

            rda1.assign(h_, 0.0);  // R{da1} = W2^T rdz2 + V2^T dz2
            for (int k = 0; k < c_; ++k) {
              o_b2[k] += rdz2[k];
              double* orow = o_w2 + static_cast<size_t>(k) * h_;
              const double* wrow = w2 + static_cast<size_t>(k) * h_;
              const double* vrow = v_w2 + static_cast<size_t>(k) * h_;
              // ELEMENTWISE MulAdd2 keeps each element's rounding identical
              // to the former interleaved two-term statements.
              vec::simd::MulAdd2(rdz2[k], a1, dz2[k], ra1, orow, h_);
              vec::simd::MulAdd2(rdz2[k], wrow, dz2[k], vrow, rda1.data(), h_);
            }
            // R{dz1} = R{da1} .* relu'(z1); relu'' = 0 a.e.
            for (size_t i = 0; i < h_; ++i) {
              const double rg = z1[i] > 0.0 ? rda1[i] : 0.0;
              o_b1[i] += rg;
              if (rg == 0.0) continue;
              double* orow = o_w1 + i * d_;
              vec::simd::MulAdd(rg, x, orow, d_);
            }
          }
          n = r1;
        }
      });
  const double inv_n = 1.0 / static_cast<double>(data.num_active());
  for (double& o : *out) o *= inv_n;
  vec::Axpy(2.0 * l2, v, out);
}

void Mlp::LossGradCoeffs(const double* x, int y, double* coeffs) const {
  Forward f;
  RunForward(x, &f);
  double* dz2 = coeffs;                      // C
  double* a1 = coeffs + c_;                  // h
  double* dz1 = coeffs + c_ + h_;            // h
  for (int k = 0; k < c_; ++k) dz2[k] = f.p[k];
  dz2[y] -= 1.0;
  for (size_t i = 0; i < h_; ++i) a1[i] = f.a1[i];
  // da1 = W2^T dz2, accumulated with Backprop's exact MulAdd kernel.
  const double* w2 = theta_.data() + OffW2();
  Vec da1(h_, 0.0);
  for (int k = 0; k < c_; ++k) {
    const double g = dz2[k];
    const double* wrow = w2 + static_cast<size_t>(k) * h_;
    vec::simd::MulAdd(g, wrow, da1.data(), h_);
  }
  for (size_t i = 0; i < h_; ++i) dz1[i] = f.z1[i] > 0.0 ? da1[i] : 0.0;
}

void Mlp::ApplyLossGradCoeffs(const double* x, const double* coeffs,
                              Vec* grad) const {
  const double* dz2 = coeffs;
  const double* a1 = coeffs + c_;
  const double* dz1 = coeffs + c_ + h_;
  double* gw1 = grad->data() + OffW1();
  double* gb1 = grad->data() + OffB1();
  double* gw2 = grad->data() + OffW2();
  double* gb2 = grad->data() + OffB2();
  for (int k = 0; k < c_; ++k) {
    const double g = dz2[k];
    gb2[k] += g;
    double* grow = gw2 + static_cast<size_t>(k) * h_;
    vec::simd::MulAdd(g, a1, grow, h_);
  }
  for (size_t i = 0; i < h_; ++i) {
    const double g = dz1[i];
    gb1[i] += g;
    if (g == 0.0) continue;
    double* grow = gw1 + i * d_;
    vec::simd::MulAdd(g, x, grow, d_);
  }
}

void Mlp::HvpCoeffs(const double* x, int y, const Vec& v, double* coeffs) const {
  Forward f;
  RunForward(x, &f);
  const double* w2 = theta_.data() + OffW2();
  const double* v_w1 = v.data() + OffW1();
  const double* v_b1 = v.data() + OffB1();
  const double* v_w2 = v.data() + OffW2();
  const double* v_b2 = v.data() + OffB2();

  double* rdz2 = coeffs;                          // C
  double* dz2 = coeffs + c_;                      // C
  double* a1 = coeffs + 2 * static_cast<size_t>(c_);            // h
  double* ra1 = coeffs + 2 * static_cast<size_t>(c_) + h_;      // h
  double* rdz1 = coeffs + 2 * static_cast<size_t>(c_) + 2 * h_; // h

  // R-forward pass, exactly as in HessianVectorProduct's row body
  // (same Dot/Dot2 kernels, same intercept-last rounding order).
  Vec rz1(h_, 0.0);
  for (size_t i = 0; i < h_; ++i) {
    const double* vrow = v_w1 + i * d_;
    rz1[i] = v_b1[i] + vec::simd::Dot(vrow, x, d_);
  }
  for (size_t i = 0; i < h_; ++i) {
    a1[i] = f.a1[i];
    ra1[i] = f.z1[i] > 0.0 ? rz1[i] : 0.0;
  }
  Vec rz2(c_, 0.0);
  for (int k = 0; k < c_; ++k) {
    const double* vrow = v_w2 + static_cast<size_t>(k) * h_;
    const double* wrow = w2 + static_cast<size_t>(k) * h_;
    rz2[k] = v_b2[k] + vec::simd::Dot2(vrow, a1, wrow, ra1, h_);
  }
  for (int k = 0; k < c_; ++k) dz2[k] = f.p[k];
  dz2[y] -= 1.0;
  double prz = 0.0;
  for (int k = 0; k < c_; ++k) prz += f.p[k] * rz2[k];
  for (int k = 0; k < c_; ++k) rdz2[k] = f.p[k] * (rz2[k] - prz);

  // rda1 accumulated with the R-backward pass's exact MulAdd2 kernel,
  // so the replay reproduces the same bits.
  Vec rda1(h_, 0.0);
  for (int k = 0; k < c_; ++k) {
    const double* wrow = w2 + static_cast<size_t>(k) * h_;
    const double* vrow = v_w2 + static_cast<size_t>(k) * h_;
    vec::simd::MulAdd2(rdz2[k], wrow, dz2[k], vrow, rda1.data(), h_);
  }
  for (size_t i = 0; i < h_; ++i) rdz1[i] = f.z1[i] > 0.0 ? rda1[i] : 0.0;
}

void Mlp::ApplyHvpCoeffs(const double* x, const double* coeffs, Vec* out) const {
  const double* rdz2 = coeffs;
  const double* dz2 = coeffs + c_;
  const double* a1 = coeffs + 2 * static_cast<size_t>(c_);
  const double* ra1 = coeffs + 2 * static_cast<size_t>(c_) + h_;
  const double* rdz1 = coeffs + 2 * static_cast<size_t>(c_) + 2 * h_;
  double* o_w1 = out->data() + OffW1();
  double* o_b1 = out->data() + OffB1();
  double* o_w2 = out->data() + OffW2();
  double* o_b2 = out->data() + OffB2();
  for (int k = 0; k < c_; ++k) {
    o_b2[k] += rdz2[k];
    double* orow = o_w2 + static_cast<size_t>(k) * h_;
    vec::simd::MulAdd2(rdz2[k], a1, dz2[k], ra1, orow, h_);
  }
  for (size_t i = 0; i < h_; ++i) {
    const double rg = rdz1[i];
    o_b1[i] += rg;
    if (rg == 0.0) continue;
    double* orow = o_w1 + i * d_;
    vec::simd::MulAdd(rg, x, orow, d_);
  }
}

std::unique_ptr<Model> Mlp::Clone() const { return std::make_unique<Mlp>(*this); }

}  // namespace rain
