#ifndef RAIN_ML_DATASET_H_
#define RAIN_ML_DATASET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace rain {

/// \brief A labeled training or querying set with deletion support.
///
/// Rows are never physically removed: the Rain debugger "deletes" training
/// records by deactivating them, which keeps row ids stable across
/// train-rank-fix iterations (deleted ids are exactly the debugger output).
///
/// ## Copy-on-write storage
///
/// The feature matrix and labels live in a shared immutable storage block;
/// the active mask is per-instance. Copying a Dataset therefore shares the
/// (potentially large) feature storage and only duplicates the mask — a
/// copy IS a deletion view. This is what lets the serve layer host many
/// concurrent debug sessions over one registered dataset without
/// per-session dataset copies: each session gets a `View()` whose
/// deactivations are invisible to every other view.
///
/// The single mutating accessor, `set_label`, detaches (deep-copies) the
/// storage first when it is shared, so corruption injectors keep their
/// value semantics. Detach is not thread-safe against concurrent readers
/// of the *same instance*; mutate before sharing (all in-tree injectors
/// run at setup time, before any view is taken).
class Dataset {
 public:
  Dataset();
  /// Takes ownership of the feature matrix (n x d) and labels (n values in
  /// [0, num_classes)).
  Dataset(Matrix features, std::vector<int> labels, int num_classes);

  /// Copies share feature/label storage (copy-on-write) and duplicate the
  /// active mask; see class comment.
  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  /// A fresh all-active deletion view sharing this dataset's storage.
  /// O(n) in the mask, O(1) in the features.
  Dataset View() const;

  /// True when `other` shares this dataset's feature/label storage (no
  /// copy happened between them). Test / admission-control introspection.
  bool SharesStorageWith(const Dataset& other) const {
    return storage_ == other.storage_;
  }

  size_t size() const { return storage_->labels.size(); }
  size_t num_features() const { return storage_->features.cols(); }
  int num_classes() const { return storage_->num_classes; }

  const Matrix& features() const { return storage_->features; }
  const double* row(size_t i) const { return storage_->features.Row(i); }

  int label(size_t i) const { return storage_->labels[i]; }
  /// Overwrites a label (used by corruption injectors). Detaches shared
  /// storage first, so other views never observe the write.
  void set_label(size_t i, int y);
  const std::vector<int>& labels() const { return storage_->labels; }

  bool active(size_t i) const { return active_[i] != 0; }
  /// Marks record i as deleted; idempotent.
  void Deactivate(size_t i);
  /// Undoes a single Deactivate (speculative-execution rollback);
  /// idempotent.
  void Reactivate(size_t i);
  /// Re-activates every record (fresh debugging run).
  void ReactivateAll();
  size_t num_active() const { return num_active_; }
  /// Indices of currently active records, ascending.
  std::vector<size_t> ActiveIndices() const;

 private:
  /// The shared immutable half: features, labels, class count.
  struct Storage {
    Matrix features;
    std::vector<int> labels;
    int num_classes = 0;
  };

  /// Deep-copies the storage when it is shared with other instances.
  void DetachStorage();

  std::shared_ptr<const Storage> storage_;
  std::vector<uint8_t> active_;
  size_t num_active_ = 0;
};

}  // namespace rain

#endif  // RAIN_ML_DATASET_H_
