#ifndef RAIN_ML_DATASET_H_
#define RAIN_ML_DATASET_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace rain {

/// \brief A labeled training or querying set with deletion support.
///
/// Rows are never physically removed: the Rain debugger "deletes" training
/// records by deactivating them, which keeps row ids stable across
/// train-rank-fix iterations (deleted ids are exactly the debugger output).
class Dataset {
 public:
  Dataset() = default;
  /// Takes ownership of the feature matrix (n x d) and labels (n values in
  /// [0, num_classes)).
  Dataset(Matrix features, std::vector<int> labels, int num_classes);

  size_t size() const { return labels_.size(); }
  size_t num_features() const { return features_.cols(); }
  int num_classes() const { return num_classes_; }

  const Matrix& features() const { return features_; }
  const double* row(size_t i) const { return features_.Row(i); }

  int label(size_t i) const { return labels_[i]; }
  /// Overwrites a label (used by corruption injectors).
  void set_label(size_t i, int y);
  const std::vector<int>& labels() const { return labels_; }

  bool active(size_t i) const { return active_[i] != 0; }
  /// Marks record i as deleted; idempotent.
  void Deactivate(size_t i);
  /// Undoes a single Deactivate (speculative-execution rollback);
  /// idempotent.
  void Reactivate(size_t i);
  /// Re-activates every record (fresh debugging run).
  void ReactivateAll();
  size_t num_active() const { return num_active_; }
  /// Indices of currently active records, ascending.
  std::vector<size_t> ActiveIndices() const;

 private:
  Matrix features_;
  std::vector<int> labels_;
  std::vector<uint8_t> active_;
  size_t num_active_ = 0;
  int num_classes_ = 0;
};

}  // namespace rain

#endif  // RAIN_ML_DATASET_H_
