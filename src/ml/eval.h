#ifndef RAIN_ML_EVAL_H_
#define RAIN_ML_EVAL_H_

#include "ml/dataset.h"
#include "ml/model.h"

namespace rain {

/// Classification quality summary on a querying/holdout set.
struct EvalReport {
  double accuracy = 0.0;
  /// One-vs-rest precision/recall/F1 of `positive_class`.
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Evaluates `model` on every row of `data` (ignores the active mask —
/// querying sets are never deleted from). `positive_class` selects the
/// class used for the P/R/F1 columns (paper Figure 4 reports F1).
EvalReport Evaluate(const Model& model, const Dataset& data, int positive_class = 1);

}  // namespace rain

#endif  // RAIN_ML_EVAL_H_
