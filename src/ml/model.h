#ifndef RAIN_ML_MODEL_H_
#define RAIN_ML_MODEL_H_

#include <memory>
#include <vector>

#include "common/cancellation.h"
#include "ml/dataset.h"
#include "ml/sharded_dataset.h"
#include "tensor/vector_ops.h"

namespace rain {

/// \brief Reusable per-shard buffers for the Sharded* kernels.
///
/// Every sharded evaluation allocates one Vec per shard for losses or
/// coefficient blocks; in hot loops (the L-BFGS objective, every CG
/// iteration's HVP) those allocations are pure fixed cost. A caller that
/// owns a scratch and passes it to consecutive calls keeps the buffers
/// warm — results are bitwise-unchanged because the kernels fully
/// overwrite every slot they later read (losses are assign()ed; the
/// coefficient pass writes exactly the active-row blocks the ordered
/// replay reads back).
///
/// Not thread-safe and not re-entrant: a scratch must be live in at most
/// one kernel call at a time. In particular, the kernels themselves never
/// fall back to a hidden thread_local/member scratch — pool-draining
/// waits can re-enter them on the calling thread (a blocked ParallelFor
/// helps run queued tasks, which may themselves score/solve), so
/// ownership has to sit with a caller who can see its own call nesting.
struct ShardScratch {
  std::vector<Vec> loss;
  std::vector<Vec> grad;
  std::vector<Vec> hvp;
};

/// \brief Differentiable classification model.
///
/// This is the contract the influence-function machinery (Section 4.1 of
/// the paper) needs from a model:
///   * class probabilities p_c(x; theta) for relaxed provenance
///     polynomials,
///   * per-example loss gradients grad_theta l(z, theta),
///   * Hessian-vector products of the regularized mean training loss
///     L(theta) = (1/n) sum_i l(z_i, theta) + l2 * ||theta||^2,
///   * reverse-mode "probability gradients": given per-class weights w,
///     accumulate grad_theta sum_c w_c p_c(x; theta) (the chain-rule seed
///     arriving from a relaxed provenance polynomial).
///
/// Implementations: binary logistic regression, multiclass softmax
/// regression (both convex), and a one-hidden-layer MLP (non-convex,
/// Appendix D stand-in for the CNN).
class Model {
 public:
  virtual ~Model() = default;

  /// Below this many rows the data-parallel model loops run sequentially:
  /// per-row kernel work would not amortize the fork/join handshake and the
  /// per-chunk gradient buffers. Determinism is unaffected (results remain
  /// a pure function of dataset size and the parallelism knob).
  static constexpr size_t kMinParallelRows = 64;

  /// Worker count for data-parallel loops (loss, gradient, HVP, batch
  /// prediction): partitions active rows into this many deterministic
  /// chunks on the shared thread pool. 1 (the default) is the exact
  /// sequential code path. Plumbed from TrainConfig / DebugConfig by the
  /// trainer, pipeline, and debugger; Clone() preserves it.
  int parallelism() const { return parallelism_; }
  void set_parallelism(int parallelism) {
    parallelism_ = parallelism < 1 ? 1 : parallelism;
  }

  /// The effective chunk count for a loop over n data rows.
  int RowParallelism(size_t n) const {
    return n >= kMinParallelRows ? parallelism_ : 1;
  }

  virtual int num_classes() const = 0;
  virtual size_t num_features() const = 0;
  virtual size_t num_params() const = 0;

  virtual const Vec& params() const = 0;
  virtual void set_params(const Vec& theta) = 0;

  /// Writes p_0..p_{C-1} for feature row `x` into `probs` (C doubles).
  virtual void PredictProba(const double* x, double* probs) const = 0;

  /// argmax_c p_c(x).
  int PredictClass(const double* x) const;

  /// Cross-entropy loss of one example: -log p_y(x).
  virtual double ExampleLoss(const double* x, int y) const = 0;

  /// grad += grad_theta of ExampleLoss(x, y).
  virtual void AddExampleLossGradient(const double* x, int y, Vec* grad) const = 0;

  /// grad += grad_theta sum_c class_weights[c] * p_c(x; theta).
  virtual void AddProbaGradient(const double* x, const Vec& class_weights,
                                Vec* grad) const = 0;

  /// out = H(theta) v where H is the Hessian of the regularized mean loss
  /// over the *active* rows of `data` with L2 strength `l2` (the 2*l2*I
  /// term included). `out` is overwritten.
  virtual void HessianVectorProduct(const Dataset& data, const Vec& v, double l2,
                                    Vec* out) const = 0;

  virtual std::unique_ptr<Model> Clone() const = 0;

  /// Convenience: n x C probability matrix over every row of `data`
  /// (active or not; querying sets have no active mask semantics).
  Matrix PredictProbaMatrix(const Dataset& data) const;

  /// Regularized mean loss over active rows.
  double MeanLoss(const Dataset& data, double l2) const;

  /// grad_theta of MeanLoss; overwrites `grad`.
  void MeanLossGradient(const Dataset& data, double l2, Vec* grad) const;

  // ----------------------------------------------------------------------
  // Shard-exact per-row kernels (see docs/architecture.md, "Shard plan").
  //
  // A data-loop body splits into an expensive nonlinear part (forward
  // passes, softmax, backprop intermediates) and a cheap rank-structured
  // accumulation (`grad[j] += coef * x[j]`-shaped multiply-adds, each
  // gradient element touched exactly once per row). The *Coeffs kernels
  // compute the nonlinear part per row into a compact coefficient block;
  // the Apply* kernels replay the accumulation from those coefficients,
  // performing exactly the multiply-add sequence of the sequential loop.
  // Sharded drivers run the coefficient pass one shard at a time across
  // workers and replay in global row order, so their results are
  // bitwise-identical to the `parallelism = 1` unsharded loops at every
  // shard count x worker count.
  // ----------------------------------------------------------------------

  /// Doubles per row in the compact loss-gradient coefficient block;
  /// 0 means the model does not implement the shard-exact kernels (the
  /// sharded drivers then fall back to the sequential loop).
  virtual size_t loss_grad_coeff_size() const { return 0; }
  /// Doubles per row in the compact HVP coefficient block (0 = see above).
  virtual size_t hvp_coeff_size() const { return 0; }

  /// Writes the loss-gradient coefficients of example (x, y) into
  /// `coeffs` (loss_grad_coeff_size() doubles).
  virtual void LossGradCoeffs(const double* x, int y, double* coeffs) const;
  /// grad += the exact addend sequence AddExampleLossGradient(x, y, grad)
  /// would have applied, reconstructed from `coeffs`.
  virtual void ApplyLossGradCoeffs(const double* x, const double* coeffs,
                                   Vec* grad) const;
  /// Writes the HVP coefficients of example (x, y) along direction `v`
  /// into `coeffs` (hvp_coeff_size() doubles).
  virtual void HvpCoeffs(const double* x, int y, const Vec& v,
                         double* coeffs) const;
  /// out += the exact addend sequence the sequential HVP row body would
  /// have applied, reconstructed from `coeffs`.
  virtual void ApplyHvpCoeffs(const double* x, const double* coeffs,
                              Vec* out) const;

  /// Shard-parallel regularized mean loss over active rows:
  /// bitwise-identical to `MeanLoss` at parallelism 1 for every shard
  /// count and worker count. `cancel` (borrowed, may be null) is polled
  /// once per shard; on a stop request the result is meaningless and the
  /// caller must discard it at its own interruption check. `scratch`
  /// (borrowed, may be null) lends reusable per-shard buffers — see
  /// ShardScratch for the aliasing rules; results are bitwise-identical
  /// with or without it.
  double ShardedMeanLoss(const ShardedDataset& data, double l2,
                         const CancellationToken* cancel = nullptr,
                         ShardScratch* scratch = nullptr) const;
  /// Shard-parallel grad of ShardedMeanLoss; overwrites `grad`. Same
  /// bitwise, cancellation, and scratch contract as ShardedMeanLoss.
  void ShardedMeanLossGradient(const ShardedDataset& data, double l2, Vec* grad,
                               const CancellationToken* cancel = nullptr,
                               ShardScratch* scratch = nullptr) const;
  /// Shard-parallel Hessian-vector product over active rows; overwrites
  /// `out`. Same bitwise, cancellation, and scratch contract as
  /// ShardedMeanLoss.
  void ShardedHessianVectorProduct(const ShardedDataset& data, const Vec& v,
                                   double l2, Vec* out,
                                   const CancellationToken* cancel = nullptr,
                                   ShardScratch* scratch = nullptr) const;

 private:
  int parallelism_ = 1;
};

}  // namespace rain

#endif  // RAIN_ML_MODEL_H_
