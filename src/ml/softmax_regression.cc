#include "ml/softmax_regression.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/vector_ops.h"

namespace rain {

namespace {

/// w . x over d features plus the trailing intercept — the one dot
/// sequence shared by Logits, the HVP body, and the shard-exact
/// coefficient kernels (paired paths must round identically).
inline double DotIntercept(const double* w, const double* x, size_t d,
                           bool fit_intercept) {
  const double z = vec::simd::Dot(w, x, d);
  return fit_intercept ? z + w[d] : z;
}

}  // namespace

void SoftmaxInPlace(double* z, int k) {
  double m = z[0];
  for (int i = 1; i < k; ++i) m = std::max(m, z[i]);
  double sum = 0.0;
  for (int i = 0; i < k; ++i) {
    z[i] = std::exp(z[i] - m);
    sum += z[i];
  }
  const double inv = 1.0 / sum;
  for (int i = 0; i < k; ++i) z[i] *= inv;
}

SoftmaxRegression::SoftmaxRegression(size_t num_features, int num_classes,
                                     bool fit_intercept)
    : d_(num_features),
      c_(num_classes),
      fit_intercept_(fit_intercept),
      theta_(static_cast<size_t>(num_classes) * (num_features + (fit_intercept ? 1 : 0)),
             0.0) {
  RAIN_CHECK(num_classes >= 2);
}

void SoftmaxRegression::set_params(const Vec& theta) {
  RAIN_CHECK(theta.size() == theta_.size()) << "param size mismatch";
  theta_ = theta;
}

void SoftmaxRegression::Logits(const double* x, double* logits) const {
  const size_t bs = BlockSize();
  for (int c = 0; c < c_; ++c) {
    const double* w = theta_.data() + static_cast<size_t>(c) * bs;
    logits[c] = DotIntercept(w, x, d_, fit_intercept_);
  }
}

void SoftmaxRegression::PredictProba(const double* x, double* probs) const {
  Logits(x, probs);
  SoftmaxInPlace(probs, c_);
}

double SoftmaxRegression::ExampleLoss(const double* x, int y) const {
  std::vector<double> p(c_);
  PredictProba(x, p.data());
  const double py = std::max(p[y], 1e-12);
  return -std::log(py);
}

void SoftmaxRegression::AddExampleLossGradient(const double* x, int y,
                                               Vec* grad) const {
  std::vector<double> p(c_);
  PredictProba(x, p.data());
  const size_t bs = BlockSize();
  for (int c = 0; c < c_; ++c) {
    const double coef = p[c] - (c == y ? 1.0 : 0.0);
    double* g = grad->data() + static_cast<size_t>(c) * bs;
    vec::simd::MulAdd(coef, x, g, d_);
    if (fit_intercept_) g[d_] += coef;
  }
}

void SoftmaxRegression::AddProbaGradient(const double* x, const Vec& class_weights,
                                         Vec* grad) const {
  RAIN_CHECK(static_cast<int>(class_weights.size()) == c_);
  std::vector<double> p(c_);
  PredictProba(x, p.data());
  // d/dW_c sum_j w_j p_j = p_c (w_c - sum_j w_j p_j) x~
  double wp = 0.0;
  for (int j = 0; j < c_; ++j) wp += class_weights[j] * p[j];
  const size_t bs = BlockSize();
  for (int c = 0; c < c_; ++c) {
    const double coef = p[c] * (class_weights[c] - wp);
    if (coef == 0.0) continue;
    double* g = grad->data() + static_cast<size_t>(c) * bs;
    // ELEMENTWISE MulAdd: the per-row addend stays bitwise identical
    // across backends, preserving AccumulateProbaGradients' pin.
    vec::simd::MulAdd(coef, x, g, d_);
    if (fit_intercept_) g[d_] += coef;
  }
}

void SoftmaxRegression::HessianVectorProduct(const Dataset& data, const Vec& v,
                                             double l2, Vec* out) const {
  RAIN_CHECK(v.size() == theta_.size()) << "HVP size mismatch";
  RAIN_CHECK(data.num_active() > 0) << "HVP over empty dataset";
  out->assign(theta_.size(), 0.0);
  const size_t bs = BlockSize();
  vec::ParallelAccumulate(
      RowParallelism(data.size()), data.size(), out,
      [this, &data, &v, bs](size_t begin, size_t end, Vec* acc) {
        // Runs of consecutive active rows batch the per-row logits and
        // V-projections into two GemmNT calls over the run (a = feature
        // rows, b = per-class weight rows with stride bs). Every GemmNT
        // element is the Dot kernel behind DotIntercept (operand order
        // commuted — per-element products are rounding-identical), and
        // the intercept add happens afterwards in the same position, so
        // the bits match the former per-row calls exactly and HvpCoeffs'
        // sharded replay still reproduces this body.
        constexpr size_t kHvpRows = 32;
        const size_t cc = static_cast<size_t>(c_);
        std::vector<double> logit_blk(kHvpRows * cc);
        std::vector<double> a_blk(kHvpRows * cc);
        std::vector<double> p(cc);
        std::vector<double> a(cc);
        size_t i = begin;
        while (i < end) {
          if (!data.active(i)) {
            ++i;
            continue;
          }
          size_t r1 = i;
          while (r1 < end && r1 - i < kHvpRows && data.active(r1)) ++r1;
          const size_t nb = r1 - i;
          const double* xb = data.row(i);
          vec::simd::GemmNT(xb, nb, d_, theta_.data(), cc, bs, d_,
                            logit_blk.data(), cc);
          vec::simd::GemmNT(xb, nb, d_, v.data(), cc, bs, d_, a_blk.data(), cc);
          for (size_t r = 0; r < nb; ++r) {
            const double* x = xb + r * d_;
            for (int c = 0; c < c_; ++c) {
              const double z = logit_blk[r * cc + c];
              p[c] = fit_intercept_
                         ? z + theta_[static_cast<size_t>(c) * bs + d_]
                         : z;
              const double az = a_blk[r * cc + c];
              a[c] = fit_intercept_ ? az + v[static_cast<size_t>(c) * bs + d_]
                                    : az;
            }
            SoftmaxInPlace(p.data(), c_);
            double s = 0.0;
            for (int c = 0; c < c_; ++c) s += p[c] * a[c];
            // Row c of (d^2 l) V = p_c (a_c - s) x~
            for (int c = 0; c < c_; ++c) {
              const double coef = p[c] * (a[c] - s);
              double* o = acc->data() + static_cast<size_t>(c) * bs;
              vec::simd::MulAdd(coef, x, o, d_);
              if (fit_intercept_) o[d_] += coef;
            }
          }
          i = r1;
        }
      });
  const double inv_n = 1.0 / static_cast<double>(data.num_active());
  for (double& o : *out) o *= inv_n;
  vec::Axpy(2.0 * l2, v, out);
}

void SoftmaxRegression::LossGradCoeffs(const double* x, int y,
                                       double* coeffs) const {
  std::vector<double> p(c_);
  PredictProba(x, p.data());
  for (int c = 0; c < c_; ++c) {
    coeffs[c] = p[c] - (c == y ? 1.0 : 0.0);
  }
}

void SoftmaxRegression::ApplyLossGradCoeffs(const double* x, const double* coeffs,
                                            Vec* grad) const {
  const size_t bs = BlockSize();
  for (int c = 0; c < c_; ++c) {
    const double coef = coeffs[c];
    double* g = grad->data() + static_cast<size_t>(c) * bs;
    vec::simd::MulAdd(coef, x, g, d_);
    if (fit_intercept_) g[d_] += coef;
  }
}

void SoftmaxRegression::HvpCoeffs(const double* x, int /*y*/, const Vec& v,
                                  double* coeffs) const {
  const size_t bs = BlockSize();
  std::vector<double> p(c_);
  std::vector<double> a(c_);
  PredictProba(x, p.data());
  // Same dot + intercept sequence as the HessianVectorProduct body.
  for (int c = 0; c < c_; ++c) {
    const double* vc = v.data() + static_cast<size_t>(c) * bs;
    a[c] = DotIntercept(vc, x, d_, fit_intercept_);
  }
  double s = 0.0;
  for (int c = 0; c < c_; ++c) s += p[c] * a[c];
  for (int c = 0; c < c_; ++c) coeffs[c] = p[c] * (a[c] - s);
}

void SoftmaxRegression::ApplyHvpCoeffs(const double* x, const double* coeffs,
                                       Vec* out) const {
  const size_t bs = BlockSize();
  for (int c = 0; c < c_; ++c) {
    const double coef = coeffs[c];
    double* o = out->data() + static_cast<size_t>(c) * bs;
    vec::simd::MulAdd(coef, x, o, d_);
    if (fit_intercept_) o[d_] += coef;
  }
}

std::unique_ptr<Model> SoftmaxRegression::Clone() const {
  return std::make_unique<SoftmaxRegression>(*this);
}

}  // namespace rain
