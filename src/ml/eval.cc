#include "ml/eval.h"

namespace rain {

EvalReport Evaluate(const Model& model, const Dataset& data, int positive_class) {
  EvalReport report;
  if (data.size() == 0) return report;
  size_t correct = 0;
  size_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    const int pred = model.PredictClass(data.row(i));
    const int truth = data.label(i);
    if (pred == truth) ++correct;
    if (pred == positive_class && truth == positive_class) ++tp;
    if (pred == positive_class && truth != positive_class) ++fp;
    if (pred != positive_class && truth == positive_class) ++fn;
  }
  report.accuracy = static_cast<double>(correct) / static_cast<double>(data.size());
  report.precision = (tp + fp) > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  report.recall = (tp + fn) > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  report.f1 = (report.precision + report.recall) > 0
                  ? 2.0 * report.precision * report.recall /
                        (report.precision + report.recall)
                  : 0.0;
  return report;
}

}  // namespace rain
